// Detector tuning walkthrough: how an operator calibrates the
// cross-correlator threshold to a false-alarm budget and reads the
// resulting detection-probability curve — the workflow behind the paper's
// §3.2 characterisation.
//
//   $ ./detector_tuning [fa_per_s]
#include <cstdio>
#include <cstdlib>

#include "core/calibration.h"
#include "core/sweep.h"
#include "core/templates.h"
#include "phy80211/transmitter.h"

using namespace rjf;

int main(int argc, char** argv) {
  const double fa_target = argc > 1 ? std::strtod(argv[1], nullptr) : 0.083;

  std::printf("=== detector tuning: WiFi long-preamble correlator ===\n\n");

  // Step 1: generate the template offline from the standard's preamble.
  const auto tpl = core::wifi_long_preamble_template();
  std::printf("template: 64 taps of 3-bit I/Q coefficients\n");

  // Step 2: the exact noise model replaces the paper's 30-minute
  // terminated-input measurement — the per-sample exceedance distribution
  // of the sign-bit correlator under noise is computed in closed form.
  const core::XcorrNoiseModel model(tpl);
  std::printf("\nfalse-alarm landscape (terminated input, 25 MSPS):\n");
  std::printf("%12s %16s\n", "threshold", "false alarms/s");
  for (std::uint32_t t = 6000; t <= 12000; t += 1000)
    std::printf("%12u %16.4f\n", t, model.false_alarm_rate_per_s(t));

  const std::uint32_t threshold = model.threshold_for_rate(fa_target);
  std::printf("\ncalibrated threshold for %.3f triggers/s: %u\n", fa_target,
              threshold);

  // Step 3: empirical cross-check, like terminating the real receiver.
  const double check_s = 0.5;
  const auto counted = core::count_noise_triggers(tpl, threshold, check_s, 9);
  std::printf("empirical check: %llu triggers in %.1f simulated seconds\n",
              static_cast<unsigned long long>(counted), check_s);

  // Step 4: detection-probability curve at the calibrated threshold, swept
  // over all SNR points at once on the parallel sweep engine — trials
  // shard across every core, and the counts match a sequential run bit
  // for bit (same seed, any thread count).
  core::JammerConfig config;
  config.detection = core::DetectionMode::kCrossCorrelator;
  config.xcorr_template = tpl;
  config.xcorr_threshold = threshold;

  std::vector<std::uint8_t> psdu(310, 0xA5);
  phy80211::Transmitter tx({phy80211::Rate::kMbps54, 0x5D});
  const dsp::cvec frame = tx.transmit(psdu);

  const std::vector<double> snrs = {-6.0, -3.0, 0.0, 3.0, 6.0, 10.0};
  core::SweepConfig sweep;
  sweep.trials_per_point = 200;
  sweep.seed = 0xD7;
  core::DetectionRunConfig base;
  const auto report = core::run_detection_sweep(
      config, frame, core::DetectorTap::kXcorr, base, snrs, sweep);

  std::printf("\ndetection probability (full WiFi frames, 200 per point,\n"
              "%u sweep workers, %.0f trials/s):\n",
              report.threads_used, report.trials_per_second());
  std::printf("%10s %10s\n", "SNR (dB)", "P_det");
  for (const auto& point : report.points)
    std::printf("%10.1f %10.3f\n", point.snr_db, point.result.probability);
  std::printf("\nTune the trade-off by re-running with a different budget,\n"
              "e.g. ./detector_tuning 0.52\n");
  return 0;
}
