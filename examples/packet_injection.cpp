// Malicious packet injection (paper §5: "as well as malicious wireless
// packet injection to interfere with ongoing communications"): the host
// streams a forged 802.11 frame into the jammer's TX buffer (waveform
// preset (iii)) and the reactive trigger launches it with 80 ns latency —
// here aimed so the forgery lands right after a legitimate frame, where a
// fake ACK or deauth would sit.
//
//   $ ./packet_injection
#include <cstdio>

#include "core/calibration.h"
#include "core/reactive_jammer.h"
#include "core/templates.h"
#include "dsp/db.h"
#include "dsp/noise.h"
#include "dsp/resampler.h"
#include "net/mac_frame.h"
#include "phy80211/receiver.h"
#include "phy80211/transmitter.h"

using namespace rjf;

int main() {
  std::printf("=== reactive packet injection ===\n\n");

  // Forge a MAC frame and pre-render its waveform into the TX buffer.
  net::MacFrame forged;
  forged.type = net::FrameType::kData;
  forged.src = 1;  // spoofed: pretends to be the AP
  forged.dst = 2;
  forged.sequence = 0x7777;
  forged.payload.assign(46, 0xEE);
  const net::Bytes forged_psdu = net::serialize(forged);
  phy80211::Transmitter forger({phy80211::Rate::kMbps6, 0x2A});
  const dsp::cvec forged20 = forger.transmit(forged_psdu);
  dsp::cvec forged25 = dsp::resample(forged20, 20e6, 25e6);
  // Back the level off before the 16-bit TX buffer so OFDM peaks survive
  // quantisation unclipped (the real host does the same headroom scaling).
  dsp::set_mean_power(std::span<dsp::cfloat>(forged25), 0.04);
  std::printf("forged frame: %zu-byte PSDU at 6 Mb/s (%zu samples at the "
              "jammer's 25 MSPS)\n",
              forged_psdu.size(), forged25.size());

  // Configure the jammer: detect the victim's short preamble, wait until
  // the victim frame has passed (surgical delay), then stream the forgery.
  core::JammerConfig config;
  config.detection = core::DetectionMode::kCrossCorrelator;
  config.xcorr_template = core::wifi_short_preamble_template();
  config.xcorr_threshold =
      core::XcorrNoiseModel(*config.xcorr_template).threshold_for_rate(0.059);
  config.waveform = fpga::JamWaveform::kHostStream;
  config.jam_delay_samples = 3200;  // ~128 us: past a short victim frame
  config.jam_uptime_samples = static_cast<std::uint32_t>(forged25.size());
  core::ReactiveJammer jammer(config);
  jammer.radio().core().jammer().set_host_waveform(dsp::to_iq16(forged25));

  // A legitimate short frame goes by; the jammer reacts.
  std::vector<std::uint8_t> legit(100, 0x11);
  phy80211::Transmitter victim({phy80211::Rate::kMbps54, 0x5D});
  const dsp::cvec legit25 = dsp::resample(victim.transmit(legit), 20e6, 25e6);
  dsp::cvec rx = dsp::make_wgn(16384, 1e-6, 3);
  for (std::size_t k = 0; k < legit25.size(); ++k) rx[512 + k] += legit25[k] * 0.1f;

  const auto result = jammer.observe(rx);
  if (result.bursts.empty()) {
    std::printf("no injection happened (detection failed)\n");
    return 1;
  }
  const auto& burst = result.bursts.front();
  std::printf("victim frame detected; injection burst at sample %zu "
              "(%.1f us after the victim frame began)\n",
              burst.start_sample, (burst.start_sample - 512) / 25.0);

  // Decode what the jammer put on the air, as a bystander receiver would.
  const dsp::cvec injected20 = dsp::resample(
      std::span<const dsp::cfloat>(result.tx.data() + burst.start_sample,
                                   std::min(burst.length, result.tx.size() -
                                                              burst.start_sample)),
      25e6, 20e6);
  const auto decoded = phy80211::Receiver().receive(injected20);
  if (decoded.signal_valid) {
    const auto frame = net::parse(decoded.psdu);
    if (frame) {
      std::printf("bystander decode of the injected burst: VALID frame, "
                  "src=%u dst=%u seq=0x%04X, FCS ok\n",
                  frame->src, frame->dst, frame->sequence);
      std::printf("\nThe injected packet is a standard-compliant 802.11 frame\n"
                  "assembled on the host and launched by the FPGA trigger —\n"
                  "protocol awareness working in both directions.\n");
      return 0;
    }
  }
  std::printf("bystander could not decode the injected burst\n");
  return 1;
}
