// WiFi jamming lab: the paper's §4 experiment in miniature. Runs an iperf
// UDP test between a client and an AP over the 5-port wired network, with
// a jammer you choose from the command line:
//
//   $ ./wifi_jamming_lab            # jammer off
//   $ ./wifi_jamming_lab cont 1e-4  # continuous jammer, TX power 1e-4
//   $ ./wifi_jamming_lab 0.1ms 1e-2 # reactive, 0.1 ms uptime
//   $ ./wifi_jamming_lab 0.01ms 0.1 # reactive, 0.01 ms uptime
//
// When a jammer is active the run is traced end to end: it exports
// wifi_lab.trace.json (open in https://ui.perfetto.dev — a Fig. 12-style
// per-frame timeline of detections and jam bursts), wifi_lab.metrics.json
// (reaction-latency histograms, duty cycle, throughput) and
// wifi_lab.probe.csv (captured fabric signals around each trigger edge).
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/presets.h"
#include "net/wifi_network.h"
#include "obs/telemetry.h"

using namespace rjf;

int main(int argc, char** argv) {
  net::WifiNetworkConfig config;
  config.iperf.duration_s = 0.25;
  config.seed = 7;

  const char* mode = argc > 1 ? argv[1] : "off";
  const double power = argc > 2 ? std::strtod(argv[2], nullptr) : 1e-3;
  if (std::strcmp(mode, "cont") == 0) {
    config.jammer = core::continuous_preset();
    config.jammer_tx_power = power;
  } else if (std::strcmp(mode, "0.1ms") == 0) {
    config.jammer = core::energy_reactive_preset(1e-4, 10.0);
    config.jammer_tx_power = power;
  } else if (std::strcmp(mode, "0.01ms") == 0) {
    config.jammer = core::energy_reactive_preset(1e-5, 10.0);
    config.jammer_tx_power = power;
  } else if (std::strcmp(mode, "off") != 0) {
    std::fprintf(stderr, "usage: %s [off|cont|0.1ms|0.01ms] [tx_power]\n",
                 argv[0]);
    return 1;
  }

  std::printf("=== WiFi jamming lab (5-port network, channel 14) ===\n");
  std::printf("jammer: %s", mode);
  if (config.jammer) std::printf(", TX power %.2e", power);
  std::printf("\niperf: UDP %.0f Mb/s offered, %.2f s\n\n",
              config.iperf.offered_mbps, config.iperf.duration_s);

  net::WifiNetworkSim sim(config);
  obs::Telemetry telemetry;
  if (config.jammer) sim.attach_telemetry(&telemetry);
  const auto r = sim.run();
  if (config.jammer) sim.attach_telemetry(nullptr);

  std::printf("------------------------------------------------------------\n");
  std::printf("[iperf] %8.0f kbps   PRR %5.1f%%   (%llu/%llu datagrams)\n",
              r.report.bandwidth_kbps(config.iperf.datagram_bytes),
              r.report.prr_percent(),
              static_cast<unsigned long long>(r.report.datagrams_received),
              static_cast<unsigned long long>(r.report.datagrams_offered));
  std::printf("------------------------------------------------------------\n");
  if (config.jammer) {
    std::printf("SIR at AP (during bursts): %.1f dB\n", r.measured_sir_db);
    std::printf("jam triggers: %llu\n",
                static_cast<unsigned long long>(r.jam_triggers));
  }
  std::printf("MAC: %llu frames sent, %llu delivered, %llu retries, "
              "%llu ACKs lost\n",
              static_cast<unsigned long long>(r.data_frames_sent),
              static_cast<unsigned long long>(r.data_frames_delivered),
              static_cast<unsigned long long>(r.retries),
              static_cast<unsigned long long>(r.acks_lost));
  std::printf("carrier sense: %llu busy defers, %llu starved drops\n",
              static_cast<unsigned long long>(r.cca_busy_defers),
              static_cast<unsigned long long>(r.cca_starved_drops));
  std::printf("mean ARF rate: %.1f Mb/s\n", r.mean_tx_rate_mbps);
  if (config.jammer && r.cca_starved_drops == 0 && r.cca_busy_defers == 0 &&
      r.jam_triggers > 0)
    std::printf("\nNote: the client never saw a busy medium — the reactive\n"
                "jammer stayed invisible to carrier sense while killing "
                "packets.\n");

  if (config.jammer) {
    telemetry.refresh_gauges();
    const bool trace_ok = telemetry.write_chrome_trace("wifi_lab.trace.json");
    const bool metrics_ok = telemetry.write_metrics_json("wifi_lab.metrics.json");
    const bool probe_ok = telemetry.write_probe_csv("wifi_lab.probe.csv");
    std::printf("\n--- telemetry ---\n");
    std::printf("events recorded: %llu (%llu overwritten), probe captures: %zu\n",
                static_cast<unsigned long long>(telemetry.trace().recorded()),
                static_cast<unsigned long long>(telemetry.trace().overwritten()),
                telemetry.probe().captures().size());
    std::printf("jam duty cycle (streamed air time): %.4f%%\n",
                telemetry.jam_duty_cycle() * 100.0);
    if (const auto* h = telemetry.metrics().find_histogram("trigger_to_rf_ticks");
        h != nullptr && h->count() > 0)
      std::printf("trigger->RF latency: mean %.0f ns (n=%llu)\n",
                  h->mean() * 10.0, static_cast<unsigned long long>(h->count()));
    if (const auto* h = telemetry.metrics().find_histogram("detect_to_rf_ticks");
        h != nullptr && h->count() > 0)
      std::printf("detect->RF latency:  mean %.0f ns (n=%llu)\n",
                  h->mean() * 10.0, static_cast<unsigned long long>(h->count()));
    std::printf("wrote %s%s, %s%s, %s%s\n",
                "wifi_lab.trace.json", trace_ok ? "" : " (FAILED)",
                "wifi_lab.metrics.json", metrics_ok ? "" : " (FAILED)",
                "wifi_lab.probe.csv", probe_ok ? "" : " (FAILED)");
    std::printf("open the trace in https://ui.perfetto.dev\n");
  }
  return 0;
}
