// WiFi jamming lab: the paper's §4 experiment in miniature. Runs an iperf
// UDP test between a client and an AP over the 5-port wired network, with
// a jammer you choose from the command line:
//
//   $ ./wifi_jamming_lab            # jammer off
//   $ ./wifi_jamming_lab cont 1e-4  # continuous jammer, TX power 1e-4
//   $ ./wifi_jamming_lab 0.1ms 1e-2 # reactive, 0.1 ms uptime
//   $ ./wifi_jamming_lab 0.01ms 0.1 # reactive, 0.01 ms uptime
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/presets.h"
#include "net/wifi_network.h"

using namespace rjf;

int main(int argc, char** argv) {
  net::WifiNetworkConfig config;
  config.iperf.duration_s = 0.25;
  config.seed = 7;

  const char* mode = argc > 1 ? argv[1] : "off";
  const double power = argc > 2 ? std::strtod(argv[2], nullptr) : 1e-3;
  if (std::strcmp(mode, "cont") == 0) {
    config.jammer = core::continuous_preset();
    config.jammer_tx_power = power;
  } else if (std::strcmp(mode, "0.1ms") == 0) {
    config.jammer = core::energy_reactive_preset(1e-4, 10.0);
    config.jammer_tx_power = power;
  } else if (std::strcmp(mode, "0.01ms") == 0) {
    config.jammer = core::energy_reactive_preset(1e-5, 10.0);
    config.jammer_tx_power = power;
  } else if (std::strcmp(mode, "off") != 0) {
    std::fprintf(stderr, "usage: %s [off|cont|0.1ms|0.01ms] [tx_power]\n",
                 argv[0]);
    return 1;
  }

  std::printf("=== WiFi jamming lab (5-port network, channel 14) ===\n");
  std::printf("jammer: %s", mode);
  if (config.jammer) std::printf(", TX power %.2e", power);
  std::printf("\niperf: UDP %.0f Mb/s offered, %.2f s\n\n",
              config.iperf.offered_mbps, config.iperf.duration_s);

  net::WifiNetworkSim sim(config);
  const auto r = sim.run();

  std::printf("------------------------------------------------------------\n");
  std::printf("[iperf] %8.0f kbps   PRR %5.1f%%   (%llu/%llu datagrams)\n",
              r.report.bandwidth_kbps(config.iperf.datagram_bytes),
              r.report.prr_percent(),
              static_cast<unsigned long long>(r.report.datagrams_received),
              static_cast<unsigned long long>(r.report.datagrams_offered));
  std::printf("------------------------------------------------------------\n");
  if (config.jammer) {
    std::printf("SIR at AP (during bursts): %.1f dB\n", r.measured_sir_db);
    std::printf("jam triggers: %llu\n",
                static_cast<unsigned long long>(r.jam_triggers));
  }
  std::printf("MAC: %llu frames sent, %llu delivered, %llu retries, "
              "%llu ACKs lost\n",
              static_cast<unsigned long long>(r.data_frames_sent),
              static_cast<unsigned long long>(r.data_frames_delivered),
              static_cast<unsigned long long>(r.retries),
              static_cast<unsigned long long>(r.acks_lost));
  std::printf("carrier sense: %llu busy defers, %llu starved drops\n",
              static_cast<unsigned long long>(r.cca_busy_defers),
              static_cast<unsigned long long>(r.cca_starved_drops));
  std::printf("mean ARF rate: %.1f Mb/s\n", r.mean_tx_rate_mbps);
  if (config.jammer && r.cca_starved_drops == 0 && r.cca_busy_defers == 0 &&
      r.jam_triggers > 0)
    std::printf("\nNote: the client never saw a busy medium — the reactive\n"
                "jammer stayed invisible to carrier sense while killing "
                "packets.\n");
  return 0;
}
