// Secure-communication walkthrough: the two jamming-FOR-good schemes the
// paper pitches the platform for, demonstrated end to end.
//
//   $ ./secure_schemes
#include <cstdio>

#include "dsp/noise.h"
#include "dsp/rng.h"
#include "secure/friendly.h"
#include "secure/ijam.h"

using namespace rjf;

namespace {

dsp::cvec random_qpsk(std::size_t n, std::uint64_t seed) {
  dsp::Xoshiro256 rng(seed);
  dsp::cvec out(n);
  for (auto& s : out)
    s = dsp::cfloat{rng.next() & 1u ? 0.707f : -0.707f,
                    rng.next() & 1u ? 0.707f : -0.707f};
  return out;
}

double qpsk_ser(const dsp::cvec& a, const dsp::cvec& b) {
  std::size_t errors = 0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t k = 0; k < n; ++k)
    if ((a[k].real() >= 0) != (b[k].real() >= 0) ||
        (a[k].imag() >= 0) != (b[k].imag() >= 0))
      ++errors;
  return n ? static_cast<double>(errors) / static_cast<double>(n) : 0.0;
}

}  // namespace

int main() {
  std::printf("=== jamming as a defence: two schemes on one platform ===\n");

  // ---- iJam: receiver self-jams one copy of every repeated sample.
  std::printf("\n[1] iJam self-jamming secrecy\n");
  const std::size_t symbol_len = 64, num_symbols = 100;
  const dsp::cvec secret = random_qpsk(symbol_len * num_symbols, 0xDA7A);
  const dsp::cvec tx = secure::ijam_duplicate(secret, symbol_len);
  const auto mask = secure::ijam_mask(symbol_len, num_symbols, /*key=*/0xFEED);
  const dsp::cvec jam =
      secure::ijam_jamming_waveform(mask, symbol_len, /*jam_power=*/8.0, 21);
  dsp::cvec air(tx.size());
  for (std::size_t k = 0; k < tx.size(); ++k) air[k] = tx[k] + jam[k];

  const auto bob = secure::ijam_reconstruct(air, mask, symbol_len);
  const auto eve =
      secure::ijam_eavesdrop(air, symbol_len, secure::EveStrategy::kMinPower, 5);
  std::printf("    Bob (knows the mask):   SER %.4f\n", qpsk_ser(bob, secret));
  std::printf("    Eve (min-power guess):  SER %.4f\n", qpsk_ser(eve, secret));

  // ---- Ally friendly jamming: key holders cancel, intruders drown.
  std::printf("\n[2] ally-friendly key-controlled jamming\n");
  const secure::FriendlyJammer ally(/*key=*/0x50FA, /*power=*/6.0);
  const dsp::cvec message = random_qpsk(4096, 0xBEA7);
  const dsp::cvec cover = ally.waveform(/*epoch=*/42, message.size());
  dsp::cvec rx(message.size());
  dsp::NoiseSource noise(1e-4, 33);
  for (std::size_t k = 0; k < rx.size(); ++k)
    rx[k] = message[k] + dsp::cfloat{0.9f, 0.2f} * cover[k] + noise.sample();

  const auto authorized = secure::cancel_friendly_jamming(rx, ally, 42);
  std::printf("    before cancellation:    SER %.4f\n", qpsk_ser(rx, message));
  std::printf("    authorized (has key):   SER %.4f\n",
              qpsk_ser(authorized, message));
  const secure::FriendlyJammer wrong(/*key=*/0xDEAD, 6.0);
  const auto intruder = secure::cancel_friendly_jamming(rx, wrong, 42);
  std::printf("    intruder (wrong key):   SER %.4f\n",
              qpsk_ser(intruder, message));

  std::printf(
      "\nBoth schemes ride the same fabric the adversarial jammer uses —\n"
      "the point of the paper's 'jamming-based secure communication'\n"
      "agenda: an 80 ns-response platform works for defence too.\n");
  return 0;
}
