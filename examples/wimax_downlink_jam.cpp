// WiMAX downlink jamming demo (paper §5): detect and jam TDD downlink
// frames from an Airspan Air4G-style 802.16e base station, rendering the
// oscilloscope view of Fig. 12 as ASCII art.
//
//   $ ./wimax_downlink_jam [num_frames] [cell_id] [segment]
#include <cstdio>
#include <cstdlib>

#include "core/presets.h"
#include "core/reactive_jammer.h"
#include "dsp/db.h"
#include "dsp/noise.h"
#include "dsp/resampler.h"
#include "phy80216/frame.h"

using namespace rjf;

int main(int argc, char** argv) {
  const std::size_t num_frames =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4;
  const unsigned cell_id = argc > 2 ? std::atoi(argv[2]) : 1;
  const unsigned segment = argc > 3 ? std::atoi(argv[3]) : 0;

  std::printf("=== WiMAX 802.16e downlink reactive jamming ===\n");
  std::printf("base station: TDD, 10 MHz @ 2.608 GHz, FFT 1024, "
              "Cell ID %u, Segment %u\n",
              cell_id, segment);

  // The Air4G broadcasts continuously; build a stretch of air.
  phy80216::FrameConfig frame_config;
  frame_config.preamble = {cell_id, segment};
  frame_config.num_dl_symbols = 10;
  const dsp::cvec air = phy80216::broadcast(frame_config, num_frames);

  // Combined detection (cross-correlator OR energy differentiator), jam
  // uptime sized to blanket one downlink burst.
  core::ReactiveJammer jammer(
      core::wimax_combined_preset(1.2e-3, cell_id, segment));
  jammer.tune(2.608e9);

  // To the jammer's 25 MSPS front end, 15 dB SNR.
  dsp::cvec rx = dsp::resample(air, phy80216::kSampleRateHz, 25e6);
  dsp::set_mean_power(std::span<dsp::cfloat>(rx),
                      0.01 * dsp::ratio_from_db(15.0));
  dsp::NoiseSource noise(0.01, 5);
  noise.add_to(rx);

  const auto result = jammer.observe(rx);

  std::printf("\ndetections: %llu xcorr, %llu energy-rise; %zu jam bursts "
              "for %zu frames\n",
              static_cast<unsigned long long>(result.xcorr_detections),
              static_cast<unsigned long long>(result.energy_high_detections),
              result.bursts.size(), num_frames);

  // Scope rendering (Fig. 12): base station signal above, jammer below.
  const std::size_t cols = 100;
  const std::size_t per_col = rx.size() / cols;
  const dsp::cvec bs25 = dsp::resample(air, phy80216::kSampleRateHz, 25e6);
  std::string bs_row, jam_row;
  for (std::size_t c = 0; c < cols; ++c) {
    double bs = 0.0, jam = 0.0;
    for (std::size_t k = c * per_col; k < (c + 1) * per_col; ++k) {
      bs += std::norm(bs25[k]);
      jam += std::norm(result.tx[k]);
    }
    bs_row += (bs / per_col > 1e-4) ? '#' : '.';
    jam_row += (jam / per_col > 1e-6) ? '#' : '.';
  }
  std::printf("\nscope (time ->):\n");
  std::printf("  BS : %s\n", bs_row.c_str());
  std::printf("  JAM: %s\n", jam_row.c_str());
  std::printf("\nEach '#' burst on the JAM trace answers one TDD downlink\n"
              "frame — the one-to-one correspondence of the paper's Fig. 12.\n");
  return 0;
}
