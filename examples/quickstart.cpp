// Quickstart: build a protocol-aware reactive jammer, show it detecting a
// WiFi frame and putting jamming energy on the air within microseconds.
//
//   $ ./quickstart
//
// Walks through the framework's three core steps:
//   1. pick a jamming personality (here: WiFi short-preamble correlator,
//      threshold calibrated to 0.059 false alarms/s, 0.1 ms uptime),
//   2. stream receive baseband through the modelled USRP N210,
//   3. read back what the FPGA core did (detections, trigger time, burst).
#include <cstdio>

#include "core/detection_experiment.h"
#include "core/presets.h"
#include "core/reactive_jammer.h"
#include "dsp/noise.h"
#include "dsp/resampler.h"
#include "phy80211/transmitter.h"

using namespace rjf;

int main() {
  std::printf("=== reactive jamming framework quickstart ===\n\n");

  // 1. A jamming personality from the preset library. Everything in it is
  //    an ordinary register value on the modelled FPGA core — no rebuild
  //    is needed to change detection type, thresholds, delay or uptime.
  core::JammerConfig config = core::wifi_reactive_preset(/*uptime_s=*/1e-4,
                                                         /*fa_per_s=*/0.059);
  core::ReactiveJammer jammer(config);
  jammer.tune(2.484e9);  // WiFi channel 14, like the paper's testbed
  std::printf("personality: WiFi short-preamble correlator\n");
  std::printf("  threshold %u (0.059 false alarms/s), uptime %u samples\n\n",
              config.xcorr_threshold, config.jam_uptime_samples);

  // 2. Put a real 802.11g frame on the air. The victim transmits at the
  //    standard's 20 MSPS; the jammer samples at 25 MSPS — the framework
  //    resamples, exactly like RF propagation between mismatched clocks.
  std::vector<std::uint8_t> psdu(500, 0xDA);
  phy80211::Transmitter victim({phy80211::Rate::kMbps54, 0x5D});
  const dsp::cvec frame20 = victim.transmit(psdu);
  const dsp::cvec frame25 = dsp::resample(frame20, 20e6, 25e6);

  dsp::cvec rx = dsp::make_wgn(frame25.size() + 1024, 1e-6, 42);
  const std::size_t frame_start = 512;
  for (std::size_t k = 0; k < frame25.size(); ++k)
    rx[frame_start + k] += frame25[k] * 0.05f;
  std::printf("victim frame: %zu bytes at 54 Mb/s = %.0f us of airtime\n",
              psdu.size(), frame20.size() / 20e6 * 1e6);

  // 3. Stream and inspect.
  const auto result = jammer.observe(rx);
  std::printf("\nwhat the FPGA core did:\n");
  std::printf("  cross-correlator detections: %llu\n",
              static_cast<unsigned long long>(result.xcorr_detections));
  std::printf("  jam triggers:                %llu\n",
              static_cast<unsigned long long>(result.jam_triggers));
  for (const auto& burst : result.bursts) {
    const double t_after_frame =
        (static_cast<double>(burst.start_sample) - frame_start) / 25e6 * 1e6;
    std::printf("  jam burst: starts %.2f us after frame start, %zu samples "
                "(%.1f us) of white noise\n",
                t_after_frame, burst.length, burst.length / 25e6 * 1e6);
  }
  if (!result.bursts.empty()) {
    std::printf(
        "\nThe 802.11g preamble alone lasts 16 us — the jammer was on the\n"
        "air before the frame's first data symbol, which is the paper's\n"
        "headline capability.\n");
  }
  return 0;
}
