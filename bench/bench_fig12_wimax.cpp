// Fig. 12 / §5 — reactive jamming of mobile WiMAX (802.16e) downlink
// frames from an Airspan Air4G-style base station (TDD, 10 MHz at
// 2.608 GHz, FFT 1024, Cell ID 1 / Segment 0).
//
// Paper findings: the 64-sample correlator sees only the first 2.56 us of
// the 25 us preamble code, misdetecting ~2/3 of frames; combining the
// cross-correlator with the energy differentiator detects 100% of downlink
// frames, with jam bursts in one-to-one correspondence with frames (scope
// trace). An ASCII "oscilloscope" rendering of one broadcast stretch is
// printed alongside the detection table.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/calibration.h"
#include "core/detection_experiment.h"
#include "core/presets.h"
#include "core/templates.h"
#include "dsp/db.h"
#include "dsp/noise.h"
#include "dsp/resampler.h"
#include "phy80216/frame.h"
#include "phy80216/preamble.h"

using namespace rjf;

namespace {

double run_mode(const core::JammerConfig& config, const dsp::cvec& dl,
                std::size_t frames) {
  core::ReactiveJammer jammer(config);
  core::DetectionRunConfig run;
  run.num_frames = frames;
  run.snr_db = 15.0;
  run.tx_rate_hz = phy80216::kSampleRateHz;
  run.max_cfo_hz = 10000.0;  // free-running 2.6 GHz oscillators
  run.seed = 0xF12;
  return core::run_detection_experiment(jammer, dl,
                                        core::DetectorTap::kJamTrigger, run)
      .probability;
}

}  // namespace

int main() {
  bench::print_header(
      "bench_fig12_wimax — reactive jamming of WiMAX downlink frames",
      "Fig. 12 / Section 5 (Airspan Air4G downlink, Cell ID 1, Segment 0)");

  phy80216::FrameConfig frame_config;
  frame_config.num_dl_symbols = 8;
  const dsp::cvec dl = phy80216::build_downlink(frame_config);
  const std::size_t frames = bench::frames_per_point(200);
  std::printf("frames per mode: %zu, SNR 15 dB, CFO +/-10 kHz\n\n", frames);

  // (a) xcorr only, template loaded naively at the native 11.2 MSPS rate
  // (the paper had no WiMAX receiver to capture-calibrate against).
  core::JammerConfig naive;
  naive.detection = core::DetectionMode::kCrossCorrelator;
  const dsp::cvec ref = phy80216::preamble_useful_part({1, 0});
  naive.xcorr_template =
      core::template_from_waveform(ref, phy80216::kSampleRateHz, false);
  naive.xcorr_threshold =
      core::XcorrNoiseModel(*naive.xcorr_template).threshold_for_rate(0.1);

  // (b) xcorr only, capture-aligned template (25 MSPS).
  core::JammerConfig aligned = naive;
  aligned.xcorr_template = core::wimax_preamble_template(1, 0);
  aligned.xcorr_threshold =
      core::XcorrNoiseModel(*aligned.xcorr_template).threshold_for_rate(0.1);

  // (c) the paper's fix: cross-correlator OR energy differentiator.
  const auto combined = core::wimax_combined_preset(1e-4, 1, 0);

  std::printf("%-44s %10s %16s\n", "detection mode", "P_det", "paper");
  std::printf("%-44s %10.3f %16s\n", "xcorr only (native-rate template)",
              run_mode(naive, dl, frames), "~1/3 detected");
  std::printf("%-44s %10.3f %16s\n", "xcorr only (capture-aligned template)",
              run_mode(aligned, dl, frames), "(upper bound)");
  std::printf("%-44s %10.3f %16s\n", "xcorr OR energy differentiator",
              run_mode(combined, dl, frames), "100%");

  // --- Scope-style trace: BS downlink on top, jam bursts below (Fig. 12).
  std::printf("\nscope view, 3 TDD frames (top: base station, bottom: jammer)\n");
  const std::size_t n_frames = 3;
  const dsp::cvec air = phy80216::broadcast(frame_config, n_frames);
  const dsp::cvec air25 =
      dsp::resample(air, phy80216::kSampleRateHz, 25e6);

  // For the scope view, size the jam uptime to cover one DL burst (~1 ms)
  // so the trace shows the paper's one-to-one frame/jam correspondence.
  core::ReactiveJammer jammer(core::wimax_combined_preset(1e-3, 1, 0));
  dsp::cvec rx = air25;
  dsp::set_mean_power(std::span<dsp::cfloat>(rx),
                      0.01 * dsp::ratio_from_db(15.0) *
                          (static_cast<double>(phy80216::dl_active_samples(
                               frame_config)) /
                           static_cast<double>(air.size() / n_frames)));
  dsp::NoiseSource noise(0.01, 99);
  noise.add_to(rx);
  const auto result = jammer.observe(rx);

  const std::size_t cols = 96;
  const std::size_t per_col = rx.size() / cols;
  std::string bs_row, jam_row;
  for (std::size_t c = 0; c < cols; ++c) {
    double bs = 0.0, jam = 0.0;
    for (std::size_t k = c * per_col; k < (c + 1) * per_col; ++k) {
      bs += std::norm(air25[k]);
      jam += std::norm(result.tx[k]);
    }
    bs_row += (bs / per_col > 1e-4) ? '#' : '.';
    jam_row += (jam / per_col > 1e-6) ? '#' : '.';
  }
  std::printf("BS : %s\n", bs_row.c_str());
  std::printf("JAM: %s\n", jam_row.c_str());
  std::printf("\njam bursts: %zu for %zu downlink frames (paper: one-to-one)\n",
              result.bursts.size(), n_frames);
  bench::print_footer();
  return 0;
}
