// Prior-art comparison (paper §1): Wilhelm et al. (WiSec'11) built the only
// earlier real-time SDR reactive jammer, for low-rate 802.15.4 networks;
// this paper's contribution is "significantly faster RF response time" and
// coverage of high-speed standards. The bench puts both jammers against the
// same victims and reports reaction latency and what each can still hit.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "baseline/wilhelm_jammer.h"
#include "baseline/zigbee.h"
#include "bench/bench_util.h"
#include "core/calibration.h"
#include "core/templates.h"
#include "fpga/dsp_core.h"
#include "phy80211/rates.h"

using namespace rjf;

namespace {

// This framework's worst-case response: 64-sample correlation (2.56 us)
// plus the 80 ns TX init; energy detection is faster still.
constexpr double kOursXcorrResp = 2.64e-6;
constexpr double kOursEnergyResp = 1.36e-6;

}  // namespace

int main() {
  bench::print_header(
      "bench_baseline_wilhelm — prior-art reactive jammer comparison",
      "Section 1 (vs. Wilhelm et al., ACM WiSec 2011, 802.15.4 jammer)");

  baseline::WilhelmJammer prior;
  const int trials = 5000;

  // --- Reaction latency distribution.
  std::vector<double> lat(trials);
  for (auto& l : lat) l = prior.sample_reaction_s();
  std::sort(lat.begin(), lat.end());
  const auto pct = [&](double p) {
    return lat[static_cast<std::size_t>(p * (trials - 1))] * 1e6;
  };
  std::printf("reaction latency (us):\n");
  std::printf("%-34s %10s %10s %10s\n", "jammer", "p50", "p90", "p99");
  std::printf("%-34s %10.1f %10.1f %10.1f\n",
              "Wilhelm et al. (host-path model)", pct(0.5), pct(0.9),
              pct(0.99));
  std::printf("%-34s %10.2f %10.2f %10.2f\n", "this work (energy path)",
              kOursEnergyResp * 1e6, kOursEnergyResp * 1e6,
              kOursEnergyResp * 1e6);
  std::printf("%-34s %10.2f %10.2f %10.2f\n", "this work (correlation path)",
              kOursXcorrResp * 1e6, kOursXcorrResp * 1e6, kOursXcorrResp * 1e6);

  // --- What can each jammer still hit?
  struct Victim {
    const char* name;
    double frame_s;
    double preamble_deadline_s;  // when surgical/preamble jamming closes
  };
  const Victim victims[] = {
      {"802.15.4 max frame (4.256 ms)", baseline::frame_duration_s(127),
       baseline::shr_duration_s()},
      {"802.15.4 short frame (20 B)", baseline::frame_duration_s(20),
       baseline::shr_duration_s()},
      {"802.11g 1534 B @ 54 Mb/s", phy80211::frame_duration_s(
                                       phy80211::Rate::kMbps54, 1534),
       20e-6},
      {"802.11g ACK @ 24 Mb/s", phy80211::frame_duration_s(
                                    phy80211::Rate::kMbps24, 14),
       20e-6},
  };

  std::printf("\nfraction of trials the victim frame is hit at all / hit "
              "within its PHY header window:\n");
  std::printf("%-34s %16s %16s %12s\n", "victim", "Wilhelm hit",
              "Wilhelm surgical", "this work");
  for (const auto& v : victims) {
    int hit = 0, surgical = 0;
    baseline::WilhelmJammer j;
    for (int k = 0; k < trials; ++k) {
      if (j.fraction_jammable(v.frame_s) > 0.0) ++hit;
      if (j.hits_before(v.preamble_deadline_s)) ++surgical;
    }
    const bool ours_ok = kOursXcorrResp < v.preamble_deadline_s;
    std::printf("%-34s %15.1f%% %15.1f%% %12s\n", v.name,
                100.0 * hit / trials, 100.0 * surgical / trials,
                ours_ok ? "100% / 100%" : "100% / -");
  }

  std::printf(
      "\nThe 802.15.4 rows reproduce Wilhelm et al.'s finding (Zigbee\n"
      "jamming is realistic from an SDR); the 802.11 rows show why their\n"
      "host-path architecture cannot follow the paper to high-speed\n"
      "standards: the whole PLCP preamble is gone before their transport\n"
      "floor, while the FPGA-resident datapath answers in 1.4-2.6 us.\n");
  bench::print_footer();
  return 0;
}
