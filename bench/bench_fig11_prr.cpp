// Fig. 11 — packet reception ratio (iperf server report) vs measured SIR
// at the AP, for the same four jammer configurations as Fig. 10.
//
// Paper anchors: continuous jamming drops PRR 100% -> 0% around 33 dB SIR;
// the 0.1 ms reactive jammer reaches 0% at 16 dB and below (~17 dB more
// instantaneous power); the 0.01 ms jammer reaches 0% only below 3 dB SIR.
#include <cstdio>

#include "bench/wifi_sweep.h"

using namespace rjf;

int main() {
  bench::print_header("bench_fig11_prr — iperf packet reception ratio vs SIR",
                      "Fig. 11 (same runs as Fig. 10, server-side PRR)");
  const double duration = bench::iperf_duration_s();
  std::printf("iperf duration per point: %.2f s (paper used 60 s)\n",
              duration);

  const auto sweeps = bench::full_sweep(duration);
  for (const auto& sweep : sweeps) {
    std::printf("\n--- %s ---\n", sweep.label.c_str());
    std::printf("%14s %12s %14s\n", "SIR at AP (dB)", "PRR (%)",
                "jam triggers");
    for (const auto& p : sweep.points) {
      if (p.sir_db > 200.0)
        std::printf("%14s %12.1f %14llu\n", "(no jam)", p.prr_percent,
                    static_cast<unsigned long long>(p.jam_triggers));
      else
        std::printf("%14.2f %12.1f %14llu\n", p.sir_db, p.prr_percent,
                    static_cast<unsigned long long>(p.jam_triggers));
    }
  }
  std::printf(
      "\nexpected shape (paper): PRR cliffs order as continuous (highest\n"
      "SIR) > reactive 0.1 ms > reactive 0.01 ms (lowest SIR). The reactive\n"
      "jammer stays invisible to carrier sense: the AP 'always reported an\n"
      "excellent link condition' while packets died mid-air.\n");
  bench::print_footer();
  return 0;
}
