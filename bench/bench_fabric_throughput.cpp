// Simulation-performance microbenchmarks (google-benchmark): how fast the
// cycle-accurate fabric and radio layers run on the host. These bound how
// much paper-scale experimentation (10000-frame characterisations,
// 60-second iperf runs) costs in wall-clock time. PHY pipeline numbers
// (FFT, WiFi TX/RX, Viterbi) live in bench_phy / BENCH_phy.json —
// each bench binary owns its own metrics, no duplicates.
//
// Besides the console table, the run emits a machine-readable summary to
// BENCH_fabric.json (override the path with RJF_BENCH_JSON): samples/s per
// stage plus the bit-parallel and block-processing speedup ratios over the
// scalar / per-tick reference paths, so the perf trajectory is trackable
// across commits.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/templates.h"
#include "dsp/noise.h"
#include "dsp/resampler.h"
#include "fpga/dsp_core.h"
#include "obs/telemetry.h"
#include "radio/usrp_n210.h"

using namespace rjf;

namespace {

void program_detection_core(fpga::DspCore& core) {
  fpga::program_template(core.registers(), core::wifi_short_preamble_template());
  core.registers().write(fpga::Reg::kXcorrThreshold, 1u << 20);
  core.registers().set_trigger_stages(fpga::kEventXcorr, 0, 0);
  core.apply_registers();
}

void BM_DspCoreTick(benchmark::State& state) {
  fpga::DspCore core;
  program_detection_core(core);
  dsp::NoiseSource noise(0.01, 1);
  const dsp::iqvec samples = dsp::to_iq16(noise.block(4096));
  std::size_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core.tick(samples[k % samples.size()]));
    for (int c = 1; c < 4; ++c) benchmark::DoNotOptimize(core.tick(std::nullopt));
    ++k;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["baseband_samples_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DspCoreTick);

void BM_DspCoreRunBlock(benchmark::State& state) {
  fpga::DspCore core;
  program_detection_core(core);
  dsp::NoiseSource noise(0.01, 1);
  const dsp::iqvec samples = dsp::to_iq16(noise.block(4096));
  std::vector<fpga::CoreOutput> out(samples.size() * fpga::kClocksPerSample);
  for (auto _ : state) {
    core.run_block(samples, out);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(samples.size()));
  state.counters["baseband_samples_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * samples.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DspCoreRunBlock);

// Same block pass with the full telemetry bundle attached: the core keeps
// its straight-line block loop and appends event-ring records behind the
// rare-event branches plus 1-in-N sampled strobe snapshots, drained into
// the recorder/metrics/probe at block boundaries. The ratio against
// BM_DspCoreRunBlock is the price of turning tracing ON — the CI gate
// holds it at `trace_attached_slowdown` <= 1.5 — while the no-ring path
// itself must stay fast (the gate also watches BM_DspCoreRunBlock).
void BM_DspCoreRunBlockTraced(benchmark::State& state) {
  fpga::DspCore core;
  program_detection_core(core);
  obs::Telemetry telemetry;
  core.set_ring(&telemetry.ring());
  dsp::NoiseSource noise(0.01, 1);
  const dsp::iqvec samples = dsp::to_iq16(noise.block(4096));
  std::vector<fpga::CoreOutput> out(samples.size() * fpga::kClocksPerSample);
  for (auto _ : state) {
    core.run_block(samples, out);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(samples.size()));
  state.counters["baseband_samples_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * samples.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DspCoreRunBlockTraced);

// Both correlator benches sweep a whole buffer per iteration so the
// measured per-item cost is the kernel, not the bench loop bookkeeping.
void BM_CrossCorrelatorStep(benchmark::State& state) {
  fpga::CrossCorrelator corr;
  const auto tpl = core::wifi_long_preamble_template();
  corr.set_coefficients(tpl.coef_i, tpl.coef_q);
  dsp::NoiseSource noise(0.01, 2);
  const dsp::iqvec samples = dsp::to_iq16(noise.block(4096));
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (const dsp::IQ16 s : samples) acc += corr.step(s).metric;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(samples.size()));
}
BENCHMARK(BM_CrossCorrelatorStep);

void BM_CrossCorrelatorStepReference(benchmark::State& state) {
  fpga::CrossCorrelator corr;
  const auto tpl = core::wifi_long_preamble_template();
  corr.set_coefficients(tpl.coef_i, tpl.coef_q);
  dsp::NoiseSource noise(0.01, 2);
  const dsp::iqvec samples = dsp::to_iq16(noise.block(4096));
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (const dsp::IQ16 s : samples) acc += corr.step_reference(s).metric;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(samples.size()));
}
BENCHMARK(BM_CrossCorrelatorStepReference);

void BM_UsrpStream(benchmark::State& state) {
  radio::UsrpN210 radio;
  fpga::program_template(radio.core().registers(),
                         core::wifi_short_preamble_template());
  radio.write_register_now(fpga::Reg::kXcorrThreshold, 1u << 20);
  dsp::NoiseSource noise(0.001, 6);
  const dsp::cvec rx = noise.block(65536);
  for (auto _ : state) {
    benchmark::DoNotOptimize(radio.stream(rx));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rx.size()));
}
BENCHMARK(BM_UsrpStream);

void BM_Resample20to25(benchmark::State& state) {
  dsp::NoiseSource noise(1.0, 4);
  const dsp::cvec in = noise.block(4960);  // one 54 Mb/s frame's worth
  const dsp::Resampler rs(20e6, 25e6);
  for (auto _ : state) benchmark::DoNotOptimize(rs.resample(in));
  state.SetItemsProcessed(state.iterations() * in.size());
}
BENCHMARK(BM_Resample20to25);

// Console reporter that also collects each benchmark's item rate so main()
// can emit the BENCH_fabric.json summary.
class RateCollector : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end())
        rates_[run.benchmark_name()] = static_cast<double>(it->second);
    }
  }

  [[nodiscard]] double rate(const std::string& name) const {
    const auto it = rates_.find(name);
    return it == rates_.end() ? 0.0 : it->second;
  }
  [[nodiscard]] const std::map<std::string, double>& rates() const {
    return rates_;
  }

 private:
  std::map<std::string, double> rates_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  RateCollector collector;
  benchmark::RunSpecifiedBenchmarks(&collector);
  benchmark::Shutdown();

  rjf::bench::JsonWriter json;
  json.set("bench", std::string("fabric_throughput"));
  for (const auto& [name, rate] : collector.rates())
    json.set(name + "_items_per_s", rate);

  const double ref = collector.rate("BM_CrossCorrelatorStepReference");
  const double fast = collector.rate("BM_CrossCorrelatorStep");
  if (ref > 0.0 && fast > 0.0)
    json.set("xcorr_bitparallel_speedup", fast / ref);
  const double tick = collector.rate("BM_DspCoreTick");
  const double block = collector.rate("BM_DspCoreRunBlock");
  if (tick > 0.0 && block > 0.0)
    json.set("dsp_core_block_speedup", block / tick);
  const double traced = collector.rate("BM_DspCoreRunBlockTraced");
  if (traced > 0.0 && block > 0.0)
    json.set("trace_attached_slowdown", block / traced);

  const char* path = std::getenv("RJF_BENCH_JSON");
  const std::string out = path ? path : "BENCH_fabric.json";
  if (!json.write_file(out))
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
  else
    std::printf("wrote %s\n", out.c_str());
  return 0;
}
