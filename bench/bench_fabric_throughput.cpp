// Simulation-performance microbenchmarks (google-benchmark): how fast the
// cycle-accurate fabric and the PHY pipelines run on the host. These bound
// how much paper-scale experimentation (10000-frame characterisations,
// 60-second iperf runs) costs in wall-clock time.
#include <benchmark/benchmark.h>

#include "core/templates.h"
#include "dsp/fft.h"
#include "dsp/noise.h"
#include "dsp/resampler.h"
#include "fpga/dsp_core.h"
#include "phy80211/receiver.h"
#include "phy80211/transmitter.h"

using namespace rjf;

namespace {

void BM_DspCoreTick(benchmark::State& state) {
  fpga::DspCore core;
  fpga::program_template(core.registers(), core::wifi_short_preamble_template());
  core.registers().write(fpga::Reg::kXcorrThreshold, 1u << 20);
  core.registers().set_trigger_stages(fpga::kEventXcorr, 0, 0);
  core.apply_registers();
  dsp::NoiseSource noise(0.01, 1);
  const dsp::iqvec samples = dsp::to_iq16(noise.block(4096));
  std::size_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core.tick(samples[k % samples.size()]));
    for (int c = 1; c < 4; ++c) benchmark::DoNotOptimize(core.tick(std::nullopt));
    ++k;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["baseband_samples_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DspCoreTick);

void BM_CrossCorrelatorStep(benchmark::State& state) {
  fpga::CrossCorrelator corr;
  const auto tpl = core::wifi_long_preamble_template();
  corr.set_coefficients(tpl.coef_i, tpl.coef_q);
  dsp::NoiseSource noise(0.01, 2);
  const dsp::iqvec samples = dsp::to_iq16(noise.block(4096));
  std::size_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(corr.step(samples[k++ % samples.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CrossCorrelatorStep);

void BM_WifiTransmit54(benchmark::State& state) {
  const std::vector<std::uint8_t> psdu(1534, 0x42);
  phy80211::Transmitter tx({phy80211::Rate::kMbps54, 0x5D});
  for (auto _ : state) benchmark::DoNotOptimize(tx.transmit(psdu));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WifiTransmit54);

void BM_WifiReceive54(benchmark::State& state) {
  const std::vector<std::uint8_t> psdu(1534, 0x42);
  phy80211::Transmitter tx({phy80211::Rate::kMbps54, 0x5D});
  dsp::cvec wave = tx.transmit(psdu);
  dsp::NoiseSource noise(1e-4, 3);
  noise.add_to(wave);
  phy80211::Receiver rx;
  for (auto _ : state) benchmark::DoNotOptimize(rx.receive(wave));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WifiReceive54);

void BM_Resample20to25(benchmark::State& state) {
  dsp::NoiseSource noise(1.0, 4);
  const dsp::cvec in = noise.block(4960);  // one 54 Mb/s frame's worth
  const dsp::Resampler rs(20e6, 25e6);
  for (auto _ : state) benchmark::DoNotOptimize(rs.resample(in));
  state.SetItemsProcessed(state.iterations() * in.size());
}
BENCHMARK(BM_Resample20to25);

void BM_Fft1024(benchmark::State& state) {
  dsp::NoiseSource noise(1.0, 5);
  dsp::cvec buf = noise.block(1024);
  for (auto _ : state) {
    dsp::fft(buf);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fft1024);

}  // namespace

BENCHMARK_MAIN();
