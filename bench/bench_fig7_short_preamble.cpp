// Fig. 7 — cross-correlation detection of full WiFi frames using the SHORT
// preamble template, at a constant false-alarm rate of 0.059 triggers/s.
// Paper: >90% at -3 dB SNR, >99% above 3 dB.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/detection_experiment.h"
#include "core/presets.h"
#include "phy80211/transmitter.h"

using namespace rjf;

int main() {
  bench::print_header(
      "bench_fig7_short_preamble — P_det vs SNR, WiFi short preamble",
      "Fig. 7 (full frames, FA = 0.059 triggers/s)");

  auto config = core::wifi_reactive_preset(1e-4, 0.059);
  core::ReactiveJammer jammer(config);

  std::vector<std::uint8_t> psdu(310, 0xA5);
  phy80211::Transmitter tx({phy80211::Rate::kMbps54, 0x5D});
  const dsp::cvec full_frame = tx.transmit(psdu);

  const std::size_t frames = bench::frames_per_point();
  std::printf("frames per point: %zu (paper used 10000)\n", frames);
  std::printf("threshold: %u (calibrated to 0.059 triggers/s on noise)\n\n",
              config.xcorr_threshold);

  std::printf("%8s %12s %18s\n", "SNR(dB)", "P_det", "detections/frame");
  for (const double snr : {-9.0, -6.0, -3.0, 0.0, 3.0, 6.0, 10.0, 15.0}) {
    core::DetectionRunConfig run;
    run.snr_db = snr;
    run.num_frames = frames;
    run.seed = 0xF17ULL + static_cast<std::uint64_t>(snr * 10);
    const auto r = core::run_detection_experiment(
        jammer, full_frame, core::DetectorTap::kXcorr, run);
    std::printf("%8.1f %12.3f %18.2f\n", snr, r.probability,
                r.detections_per_frame);
  }
  std::printf(
      "\nexpected shape (paper): high detection well below 0 dB SNR thanks\n"
      "to 10 cyclic STS repetitions per frame (multiple trigger chances);\n"
      "saturates >99%% by ~3 dB.\n");
  bench::print_footer();
  return 0;
}
