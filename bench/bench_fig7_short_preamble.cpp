// Fig. 7 — cross-correlation detection of full WiFi frames using the SHORT
// preamble template, at a constant false-alarm rate of 0.059 triggers/s.
// Paper: >90% at -3 dB SNR, >99% above 3 dB. Runs on the deterministic
// parallel sweep engine (core/sweep.h).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/presets.h"
#include "core/sweep.h"
#include "phy80211/transmitter.h"

using namespace rjf;

int main() {
  bench::print_header(
      "bench_fig7_short_preamble — P_det vs SNR, WiFi short preamble",
      "Fig. 7 (full frames, FA = 0.059 triggers/s)");

  auto config = core::wifi_reactive_preset(1e-4, 0.059);

  std::vector<std::uint8_t> psdu(310, 0xA5);
  phy80211::Transmitter tx({phy80211::Rate::kMbps54, 0x5D});
  const dsp::cvec full_frame = tx.transmit(psdu);

  const std::size_t frames = bench::frames_per_point();
  std::printf("frames per point: %zu (paper used 10000), %u worker threads\n",
              frames, bench::resolved_sweep_threads());
  std::printf("threshold: %u (calibrated to 0.059 triggers/s on noise)\n\n",
              config.xcorr_threshold);

  const std::vector<double> snrs = {-9.0, -6.0, -3.0, 0.0, 3.0, 6.0, 10.0, 15.0};
  core::SweepConfig sweep;
  sweep.trials_per_point = frames;
  sweep.threads = bench::sweep_threads();
  sweep.seed = 0xF17;
  core::DetectionRunConfig base;
  const auto report = core::run_detection_sweep(
      config, full_frame, core::DetectorTap::kXcorr, base, snrs, sweep);

  std::printf("%8s %12s %18s\n", "SNR(dB)", "P_det", "detections/frame");
  for (const auto& point : report.points)
    std::printf("%8.1f %12.3f %18.2f\n", point.snr_db,
                point.result.probability, point.result.detections_per_frame);
  std::printf("\nsweep wall time: %.2f s (%.0f trials/s, %zu shards)\n",
              report.wall_seconds, report.trials_per_second(), report.shards);
  std::printf(
      "\nexpected shape (paper): high detection well below 0 dB SNR thanks\n"
      "to 10 cyclic STS repetitions per frame (multiple trigger chances);\n"
      "saturates >99%% by ~3 dB.\n");
  bench::print_footer();
  return 0;
}
