// Fig. 6 — cross-correlation detection of the WiFi LONG preamble vs SNR,
// for full WiFi frames and single-preamble pseudo-frames, at the paper's
// two false-alarm operating points (0.52/s and 0.083/s).
//
// Methodology mirrors §3.2: thresholds are calibrated against terminated
// (noise-only) input to the target false-alarm rates, then 10000 frames
// (RJF_BENCH_FRAMES here) are sent per SNR point and detections counted.
// The SNR sweep runs on the deterministic parallel sweep engine
// (core/sweep.h): trials shard across RJF_BENCH_THREADS workers with the
// same counts a sequential run would produce.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/calibration.h"
#include "core/presets.h"
#include "core/sweep.h"
#include "core/templates.h"
#include "phy80211/ofdm.h"
#include "phy80211/preamble.h"
#include "phy80211/transmitter.h"

using namespace rjf;

int main() {
  bench::print_header(
      "bench_fig6_long_preamble — P_det vs SNR, WiFi long preamble",
      "Fig. 6 (cross-correlator, full frames vs single preambles, two FA rates)");

  const auto tpl = core::wifi_long_preamble_template();
  const core::XcorrNoiseModel model(tpl);

  // Full WiFi frame (310-byte payload at 54 Mbps) and the single-long-
  // preamble pseudo-frame of §3.2.
  std::vector<std::uint8_t> psdu(310, 0xA5);
  phy80211::Transmitter tx({phy80211::Rate::kMbps54, 0x5D});
  const dsp::cvec full_frame = tx.transmit(psdu);
  const dsp::cvec single = phy80211::long_training_symbol();

  const std::size_t frames = bench::frames_per_point();
  std::printf("frames per point: %zu (paper used 10000), %u worker threads\n\n",
              frames, bench::resolved_sweep_threads());

  const std::vector<double> snrs = {-6, -3, 0, 3, 5, 8, 12, 16, 20};
  double wall = 0.0;
  for (const double fa : {0.52, 0.083}) {
    core::JammerConfig config;
    config.detection = core::DetectionMode::kCrossCorrelator;
    config.xcorr_template = tpl;
    config.xcorr_threshold = model.threshold_for_rate(fa);

    core::SweepConfig sweep;
    sweep.trials_per_point = frames;
    sweep.threads = bench::sweep_threads();
    core::DetectionRunConfig base;

    sweep.seed = 0xF16;
    const auto full = core::run_detection_sweep(
        config, full_frame, core::DetectorTap::kXcorr, base, snrs, sweep);
    sweep.seed = 0xF16 ^ 0x5555;
    const auto one = core::run_detection_sweep(
        config, single, core::DetectorTap::kXcorr, base, snrs, sweep);
    wall += full.wall_seconds + one.wall_seconds;

    std::printf("false alarm rate %.3f triggers/s  (threshold %u)\n", fa,
                config.xcorr_threshold);
    std::printf("%8s %18s %22s\n", "SNR(dB)", "P_det full frames",
                "P_det single preamble");
    for (std::size_t p = 0; p < snrs.size(); ++p)
      std::printf("%8.1f %18.3f %22.3f\n", snrs[p],
                  full.points[p].result.probability,
                  one.points[p].result.probability);
    std::printf("\n");
  }
  std::printf("sweep wall time: %.2f s\n\n", wall);
  std::printf(
      "expected shape (paper): full frames > single preambles (two LTS\n"
      "copies per frame give two chances); lower FA target -> lower P_det.\n"
      "Our wired-sim impairments are milder than the authors' RF chain, so\n"
      "the curves transition at lower SNR; see EXPERIMENTS.md.\n");
  bench::print_footer();
  return 0;
}
