// Shared SIR sweep for the Figs. 10-11 benches: the four jammer
// configurations of §4.3 run over the iperf UDP test rig.
//
// Each (configuration, jam-power) point is one independent WifiNetworkSim
// with a fixed seed, so the points of a sweep run in parallel on the sweep
// engine's worker pool (core::run_shards) — results land in pre-sized
// slots by point index and are identical at any RJF_BENCH_THREADS value.
#pragma once

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/presets.h"
#include "core/sweep.h"
#include "net/waveform_cache.h"
#include "net/wifi_network.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace rjf::bench {

struct SweepPoint {
  double sir_db;
  double bandwidth_kbps;
  double prr_percent;
  std::uint64_t jam_triggers;
  double mean_rate_mbps;
};

struct SweepResult {
  std::string label;
  std::vector<SweepPoint> points;
};

/// When `campaign_metrics` is non-null every point runs with a private
/// Telemetry bundle (probes off) attached to its embedded jammer; the
/// per-point fabric counters are merged into `campaign_metrics` in point
/// order after the pool drains, so the merged counters are bit-identical
/// at any thread count (stream_wall_ns, the only wall-clock-derived
/// counter, is stripped first). WaveformCache hit/miss/eviction counters
/// ride along as cross-thread diagnostics outside that guarantee.
inline SweepResult run_sweep(const std::string& label,
                             const std::optional<core::JammerConfig>& jammer,
                             const std::vector<double>& jam_powers,
                             double duration_s,
                             unsigned threads = sweep_threads(),
                             obs::MetricsRegistry* campaign_metrics = nullptr) {
  SweepResult result;
  result.label = label;
  result.points.resize(jam_powers.size());
  std::vector<obs::MetricsRegistry> point_metrics(
      campaign_metrics != nullptr ? jam_powers.size() : 0);

  // One shard per SIR point: the iperf run is the unit of work.
  core::SweepConfig sweep;
  sweep.trials_per_point = 1;
  sweep.shard_trials = 1;
  sweep.threads = threads;
  const auto tasks =
      core::make_shard_schedule(jam_powers.size(), sweep);
  core::run_shards(tasks, sweep.threads, [&](const core::ShardTask& task) {
    net::WifiNetworkConfig config;
    config.iperf.duration_s = duration_s;
    config.jammer = jammer;
    config.jammer_tx_power = jam_powers[task.point];
    config.seed = 1234;
    net::WifiNetworkSim sim(config);
    std::optional<obs::Telemetry> telemetry;
    if (campaign_metrics != nullptr) {
      obs::TelemetryConfig tc;
      tc.probe_enabled = false;  // counters only; probes cost capture memory
      telemetry.emplace(tc);
      sim.attach_telemetry(&*telemetry);
    }
    const auto run = sim.run();
    result.points[task.point] = SweepPoint{
        run.measured_sir_db,
        run.report.bandwidth_kbps(config.iperf.datagram_bytes),
        run.report.prr_percent(), run.jam_triggers, run.mean_tx_rate_mbps};
    if (telemetry.has_value()) {
      sim.attach_telemetry(nullptr);
      telemetry->flush();
      telemetry->refresh_gauges();
      point_metrics[task.point] = telemetry->metrics();
      point_metrics[task.point].erase_counter("stream_wall_ns");
      point_metrics[task.point].erase_gauge("host_throughput_msps");
    }
  });
  if (campaign_metrics != nullptr) {
    for (const obs::MetricsRegistry& m : point_metrics)
      campaign_metrics->merge(m);
    net::WaveformCache::instance().export_metrics(*campaign_metrics);
  }
  return result;
}

/// The four §4.3 configurations over SIR ranges bracketing the paper's.
inline std::vector<SweepResult> full_sweep(double duration_s) {
  std::vector<SweepResult> sweeps;
  // Jammer off: single reference point.
  sweeps.push_back(run_sweep("jammer off", std::nullopt, {0.0}, duration_s));
  // Continuous: the paper sweeps ~50 dB SIR down to the kill near 33.85 dB.
  sweeps.push_back(run_sweep(
      "continuous", core::continuous_preset(),
      {3e-7, 1e-6, 3e-6, 6e-6, 1e-5, 2e-5, 3e-5, 1e-4, 1e-3}, duration_s));
  // Reactive, 0.1 ms uptime after trigger.
  sweeps.push_back(run_sweep(
      "reactive 0.1ms", core::energy_reactive_preset(1e-4, 10.0),
      {1e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3}, duration_s));
  // Reactive, 0.01 ms uptime after trigger.
  sweeps.push_back(run_sweep(
      "reactive 0.01ms", core::energy_reactive_preset(1e-5, 10.0),
      {1e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0}, duration_s));
  return sweeps;
}

}  // namespace rjf::bench
