// §4.3 "Platform Reconfigurability" — all three jammer personalities on one
// hardware instantiation, switched at runtime with settings-bus latency
// ("hundreds of ns"), no FPGA reprogramming.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/presets.h"
#include "core/reactive_jammer.h"
#include "dsp/noise.h"

using namespace rjf;

int main() {
  bench::print_header(
      "bench_reconfig — runtime jammer personality switching",
      "Section 4.3 'Platform Reconfigurability' (single hardware build, "
      "on-the-fly personality changes)");

  core::ReactiveJammer jammer(core::continuous_preset());
  const auto bus_cycles = jammer.radio().settings_bus().latency_cycles();
  std::printf("settings-bus write latency: %u cycles = %u ns per register\n",
              bus_cycles, bus_cycles * 10);

  struct Personality {
    const char* name;
    core::JammerConfig config;
  };
  const Personality personalities[] = {
      {"continuous", core::continuous_preset()},
      {"reactive 0.1 ms uptime", core::energy_reactive_preset(1e-4, 10.0)},
      {"reactive 0.01 ms uptime", core::energy_reactive_preset(1e-5, 10.0)},
      {"WiFi protocol-aware (short preamble)",
       core::wifi_reactive_preset(1e-4, 0.059)},
      {"WiMAX combined (xcorr|energy)", core::wimax_combined_preset(1e-4)},
  };

  std::printf("\n%-40s %14s %16s\n", "personality", "registers", "switch time");
  for (const auto& p : personalities) {
    const std::uint64_t t0 = jammer.radio().now_ticks();
    jammer.reconfigure(p.config);
    const std::uint64_t completes =
        jammer.radio().settings_bus().last_completion().value_or(t0);
    // Writing the correlator template costs 16 coefficient registers on
    // top of the ~8 control registers.
    const std::uint64_t registers = (completes - t0) / bus_cycles;
    std::printf("%-40s %14llu %13llu ns\n", p.name,
                static_cast<unsigned long long>(registers),
                static_cast<unsigned long long>((completes - t0) * 10));
    // Drain the bus by streaming a little idle air before the next switch.
    (void)jammer.observe(dsp::make_wgn(4096, 1e-6, 7));
  }

  std::printf(
      "\nAll personalities run on one DspCore instance — the FPGA is never\n"
      "reprogrammed, matching the paper: 'We did not have to reprogram the\n"
      "FPGA to switch between different types of jammers.'\n");
  bench::print_footer();
  return 0;
}
