// Fault-robustness degradation curves: detection probability and trigger
// latency of the WiFi cross-correlator jammer under a deterministic fault
// schedule (ADC clip/DC-offset/sample-drop runs, overflow gaps, gain/tune
// glitches) swept over fault intensity × SNR, plus a settings-bus
// drop/stall scenario exercising the bounded-retry recovery path.
//
// Emits BENCH_fault.json (override path with RJF_FAULT_JSON) with the
// clean/heavy detection rates, latency degradation, fault totals, and two
// gates CI enforces with tools/check_bench_regression.py:
//   fault_deterministic      1 iff the faulted grid is bit-identical at
//                            1, 2 and 4 sweep threads
//   fault_zero_fault_mismatch  count deltas between the scale-0 row and the
//                            clean core::run_detection_sweep — must be 0
//                            (the zero-fault inertness contract)
//
//   RJF_BENCH_FRAMES   trials per grid point (default 400)
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/calibration.h"
#include "core/presets.h"
#include "core/sweep.h"
#include "core/templates.h"
#include "dsp/noise.h"
#include "fault/fault_experiment.h"
#include "phy80211/transmitter.h"

using namespace rjf;

namespace {

bool same_grid(const fault::FaultSweepReport& a,
               const fault::FaultSweepReport& b) {
  if (a.points.size() != b.points.size()) return false;
  for (std::size_t p = 0; p < a.points.size(); ++p) {
    const auto& pa = a.points[p];
    const auto& pb = b.points[p];
    if (pa.result.frames_detected != pb.result.frames_detected ||
        pa.result.total_detections != pb.result.total_detections ||
        pa.faults_injected != pb.faults_injected ||
        pa.overflow_gaps != pb.overflow_gaps ||
        pa.samples_lost != pb.samples_lost ||
        pa.trigger_latency_count != pb.trigger_latency_count)
      return false;
  }
  return true;
}

std::uint64_t abs_delta(std::uint64_t a, std::uint64_t b) {
  return a > b ? a - b : b - a;
}

std::uint64_t total_injected(const fault::FaultSweepReport& r) {
  std::uint64_t n = 0;
  for (const auto& p : r.points) n += p.faults_injected;
  return n;
}

std::uint64_t total_gaps(const fault::FaultSweepReport& r) {
  std::uint64_t n = 0;
  for (const auto& p : r.points) n += p.overflow_gaps;
  return n;
}

}  // namespace

int main() {
  bench::print_header(
      "bench_fault_robustness — degradation under radio faults",
      "robustness surface beyond the paper's clean-channel Figs. 6-8");

  const auto tpl = core::wifi_long_preamble_template();
  const core::XcorrNoiseModel model(tpl);
  core::JammerConfig config;
  config.detection = core::DetectionMode::kCrossCorrelator;
  config.xcorr_template = tpl;
  config.xcorr_threshold = model.threshold_for_rate(0.52);

  std::vector<std::uint8_t> psdu(310, 0xA5);
  phy80211::Transmitter tx({phy80211::Rate::kMbps54, 0x5D});
  const dsp::cvec full_frame = tx.transmit(psdu);

  const std::vector<double> snrs = {0, 6, 12};
  const std::vector<double> scales = {0.0, 0.5, 1.0, 2.0};
  core::SweepConfig sweep;
  sweep.trials_per_point = bench::frames_per_point();
  sweep.seed = 0xFA017;
  core::DetectionRunConfig base;

  // Rates at scale 1.0, per 25 MSPS sample: with ~2700-sample captures each
  // trial sees a few faults, and the 256-sample overflow runs are long
  // enough to swallow a preamble when they land on it.
  fault::FaultPlanConfig fault_base;
  fault_base.seed = 0xFA57;
  fault_base.clip_rate = 2e-4;
  fault_base.dc_rate = 2e-4;
  fault_base.drop_rate = 2e-4;
  fault_base.overflow_rate = 1e-4;
  fault_base.gain_glitch_rate = 1e-4;
  fault_base.tune_glitch_rate = 1e-4;

  std::printf("trials per point: %zu, %zu SNRs x %zu fault scales\n\n",
              sweep.trials_per_point, snrs.size(), scales.size());

  // Determinism gate: the faulted grid must be bit-identical at 1/2/4
  // worker threads (fault schedules key on logical indices only).
  bool deterministic = true;
  fault::FaultSweepReport reference;
  for (const unsigned threads : {1u, 2u, 4u}) {
    sweep.threads = threads;
    auto report = fault::run_fault_robustness_sweep(
        config, full_frame, core::DetectorTap::kXcorr, base, snrs, scales,
        fault_base, sweep);
    if (threads == 1)
      reference = std::move(report);
    else
      deterministic = deterministic && same_grid(reference, report);
  }
  std::printf("faulted grid bit-identical across 1/2/4 threads: %s\n\n",
              deterministic ? "yes" : "NO — DETERMINISM VIOLATION");

  // Inertness gate: the scale-0 row must equal the clean sweep, count for
  // count, because an empty fault plan may not perturb the radio at all.
  sweep.threads = 0;
  const auto clean = core::run_detection_sweep(
      config, full_frame, core::DetectorTap::kXcorr, base, snrs, sweep);
  std::uint64_t zero_fault_mismatch = 0;
  for (std::size_t k = 0; k < snrs.size(); ++k) {
    const auto& faulted = reference.at(0, k, snrs.size()).result;
    const auto& baseline = clean.points[k].result;
    zero_fault_mismatch +=
        abs_delta(faulted.frames_detected, baseline.frames_detected) +
        abs_delta(faulted.total_detections, baseline.total_detections);
  }

  std::printf("%8s %8s %10s %10s %12s %12s\n", "scale", "snr", "P_det",
              "det/frame", "lat(us)", "faults");
  for (std::size_t s = 0; s < scales.size(); ++s) {
    for (std::size_t k = 0; k < snrs.size(); ++k) {
      const auto& p = reference.at(s, k, snrs.size());
      std::printf("%8.1f %8.0f %10.3f %10.2f %12.3f %12llu\n", p.fault_scale,
                  p.snr_db, p.result.probability,
                  p.result.detections_per_frame,
                  p.trigger_latency_mean_ticks / 100.0,
                  static_cast<unsigned long long>(p.faults_injected));
    }
  }

  // Settings-bus fault scenario: reconfigure through a lossy bus and let
  // the bounded retry path recover, then verify the personality landed.
  fault::FaultPlanConfig bus_cfg;
  bus_cfg.seed = 0xB0B5;
  bus_cfg.bus_drop_rate = 0.25;
  bus_cfg.bus_stall_rate = 0.25;
  fault::FaultInjector bus_injector(fault::FaultPlan::generate(bus_cfg));
  core::ReactiveJammer jammer(config);
  jammer.attach_fault_hooks(nullptr, &bus_injector);
  jammer.radio().settings_bus().set_retry_limit(4);
  jammer.reconfigure(core::energy_reactive_preset(1e-4, 10.0));
  // Stream idle air until the retry traffic drains.
  while (!jammer.radio().settings_bus().idle())
    (void)jammer.observe(dsp::make_wgn(4096, 1e-6, 7));
  const auto& bus = jammer.radio().settings_bus();
  std::printf(
      "\nbus scenario: %llu writes, %llu dropped, %llu retried, %llu "
      "abandoned\n",
      static_cast<unsigned long long>(bus.writes_issued()),
      static_cast<unsigned long long>(bus.writes_dropped()),
      static_cast<unsigned long long>(bus.writes_retried()),
      static_cast<unsigned long long>(bus.writes_abandoned()));
  std::printf("zero-fault mismatch vs clean sweep: %llu\n",
              static_cast<unsigned long long>(zero_fault_mismatch));

  const std::size_t last_snr = snrs.size() - 1;
  const auto& clean_pt = reference.at(0, last_snr, snrs.size());
  const auto& heavy_pt = reference.at(scales.size() - 1, last_snr, snrs.size());
  bench::JsonWriter json;
  json.set("fault_trials_per_point",
           static_cast<std::uint64_t>(sweep.trials_per_point));
  json.set("fault_grid_points",
           static_cast<std::uint64_t>(reference.points.size()));
  json.set("fault_pdet_clean", clean_pt.result.probability);
  json.set("fault_pdet_heavy", heavy_pt.result.probability);
  json.set("fault_latency_clean_us", clean_pt.trigger_latency_mean_ticks / 100.0);
  json.set("fault_latency_heavy_us", heavy_pt.trigger_latency_mean_ticks / 100.0);
  json.set("fault_injected_total", total_injected(reference));
  json.set("fault_overflow_gaps", total_gaps(reference));
  json.set("fault_deterministic",
           static_cast<std::uint64_t>(deterministic ? 1 : 0));
  json.set("fault_zero_fault_mismatch", zero_fault_mismatch);
  json.set("fault_bus_writes_dropped", bus.writes_dropped());
  json.set("fault_bus_writes_retried", bus.writes_retried());
  json.set("fault_bus_writes_abandoned", bus.writes_abandoned());

  const char* json_path = std::getenv("RJF_FAULT_JSON");
  const std::string path =
      json_path != nullptr ? json_path : "BENCH_fault.json";
  if (json.write_file(path)) std::printf("wrote %s\n", path.c_str());

  bench::print_footer();
  return (deterministic && zero_fault_mismatch == 0) ? 0 : 1;
}
