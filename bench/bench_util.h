// Shared helpers for the reproduction benches: consistent table printing
// and environment-variable knobs so CI can run quick passes while a full
// reproduction uses paper-scale trial counts.
//
//   RJF_BENCH_FRAMES    frames per detection point   (default 400;  paper 10000)
//   RJF_BENCH_DURATION  seconds per iperf test point (default 0.12; paper 60)
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/json_writer.h"

namespace rjf::bench {

/// JSON result emission lives in the library now (src/obs/json_writer.h) so
/// library code never includes from bench/. The bench name stays for the
/// existing call sites.
using JsonWriter = rjf::obs::JsonWriter;

inline std::size_t frames_per_point(std::size_t fallback = 400) {
  if (const char* env = std::getenv("RJF_BENCH_FRAMES"))
    return static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  return fallback;
}

inline double iperf_duration_s(double fallback = 0.12) {
  if (const char* env = std::getenv("RJF_BENCH_DURATION"))
    return std::strtod(env, nullptr);
  return fallback;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

inline void print_footer() {
  std::printf("----------------------------------------------------------------\n");
}

}  // namespace rjf::bench
