// Shared helpers for the reproduction benches: consistent table printing
// and environment-variable knobs so CI can run quick passes while a full
// reproduction uses paper-scale trial counts.
//
//   RJF_BENCH_FRAMES    frames per detection point   (default 400;  paper 10000)
//   RJF_BENCH_DURATION  seconds per iperf test point (default 0.12; paper 60)
//   RJF_BENCH_THREADS   sweep-engine worker threads  (default 0 = all cores)
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "obs/json_writer.h"

namespace rjf::bench {

/// JSON result emission lives in the library now (src/obs/json_writer.h) so
/// library code never includes from bench/. The bench name stays for the
/// existing call sites.
using JsonWriter = rjf::obs::JsonWriter;

inline std::size_t frames_per_point(std::size_t fallback = 400) {
  if (const char* env = std::getenv("RJF_BENCH_FRAMES"))
    return static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  return fallback;
}

inline double iperf_duration_s(double fallback = 0.12) {
  if (const char* env = std::getenv("RJF_BENCH_DURATION"))
    return std::strtod(env, nullptr);
  return fallback;
}

/// Worker threads for the parallel sweep engine; 0 lets the engine use
/// std::thread::hardware_concurrency().
inline unsigned sweep_threads(unsigned fallback = 0) {
  if (const char* env = std::getenv("RJF_BENCH_THREADS"))
    return static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  return fallback;
}

/// Resolved thread count, for printing alongside results.
inline unsigned resolved_sweep_threads() {
  const unsigned requested = sweep_threads();
  return requested != 0 ? requested
                        : std::max(1u, std::thread::hardware_concurrency());
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

inline void print_footer() {
  std::printf("----------------------------------------------------------------\n");
}

}  // namespace rjf::bench
