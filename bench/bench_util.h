// Shared helpers for the reproduction benches: consistent table printing
// and environment-variable knobs so CI can run quick passes while a full
// reproduction uses paper-scale trial counts.
//
//   RJF_BENCH_FRAMES    frames per detection point   (default 400;  paper 10000)
//   RJF_BENCH_DURATION  seconds per iperf test point (default 0.12; paper 60)
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace rjf::bench {

inline std::size_t frames_per_point(std::size_t fallback = 400) {
  if (const char* env = std::getenv("RJF_BENCH_FRAMES"))
    return static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  return fallback;
}

inline double iperf_duration_s(double fallback = 0.12) {
  if (const char* env = std::getenv("RJF_BENCH_DURATION"))
    return std::strtod(env, nullptr);
  return fallback;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

inline void print_footer() {
  std::printf("----------------------------------------------------------------\n");
}

/// Minimal machine-readable result emitter: a flat, insertion-ordered JSON
/// object written in one shot. Used by the perf benches (BENCH_fabric.json)
/// so the throughput trajectory can be tracked across commits without
/// scraping console tables.
class JsonWriter {
 public:
  void set(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    fields_.emplace_back(key, std::string(buf));
  }
  void set(const std::string& key, std::uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void set(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + escape(value) + "\"");
  }

  /// Write `{ "k": v, ... }` to `path`. Returns false on I/O failure.
  bool write_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    std::fputs("{\n", f);
    for (std::size_t k = 0; k < fields_.size(); ++k)
      std::fprintf(f, "  \"%s\": %s%s\n", escape(fields_[k].first).c_str(),
                   fields_[k].second.c_str(),
                   k + 1 < fields_.size() ? "," : "");
    std::fputs("}\n", f);
    return std::fclose(f) == 0;
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace rjf::bench
