// Extension: the "jamming-based secure communication schemes" the paper
// pitches the platform for (§1): iJam self-jamming secrecy and ally-
// friendly key-controlled jamming, quantified as symbol-error-rate tables.
#include <cstdio>

#include "bench/bench_util.h"
#include "dsp/noise.h"
#include "dsp/rng.h"
#include "secure/friendly.h"
#include "secure/ijam.h"

using namespace rjf;

namespace {

dsp::cvec random_qpsk(std::size_t n, std::uint64_t seed) {
  dsp::Xoshiro256 rng(seed);
  dsp::cvec out(n);
  for (auto& s : out)
    s = dsp::cfloat{rng.next() & 1u ? 0.707f : -0.707f,
                    rng.next() & 1u ? 0.707f : -0.707f};
  return out;
}

double qpsk_ser(const dsp::cvec& a, const dsp::cvec& b) {
  std::size_t errors = 0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t k = 0; k < n; ++k) {
    if ((a[k].real() >= 0) != (b[k].real() >= 0) ||
        (a[k].imag() >= 0) != (b[k].imag() >= 0))
      ++errors;
  }
  return n ? static_cast<double>(errors) / static_cast<double>(n) : 0.0;
}

}  // namespace

int main() {
  bench::print_header(
      "bench_ext_secure — jamming-based secure communication (extension)",
      "the secure-scheme prototyping role described in Section 1");

  // ---------------- iJam ---------------------------------------------------
  std::printf("iJam: symbol error rate vs self-jamming power "
              "(QPSK, 64-sample symbols, 200 symbols)\n");
  std::printf("%14s %10s %12s %12s %12s\n", "jam/signal(dB)", "legit",
              "eve:first", "eve:random", "eve:minpow");
  const std::size_t symbol_len = 64;
  const std::size_t num_symbols = 200;
  for (const double jam_db : {-3.0, 0.0, 3.0, 7.0, 14.0}) {
    const double jam_power = std::pow(10.0, jam_db / 10.0);
    const dsp::cvec signal = random_qpsk(symbol_len * num_symbols, 1);
    const dsp::cvec tx = secure::ijam_duplicate(signal, symbol_len);
    const auto mask = secure::ijam_mask(symbol_len, num_symbols, 0x5EC7);
    const dsp::cvec jam =
        secure::ijam_jamming_waveform(mask, symbol_len, jam_power, 7);
    dsp::cvec rx(tx.size());
    for (std::size_t k = 0; k < tx.size(); ++k) rx[k] = tx[k] + jam[k];

    const double legit =
        qpsk_ser(secure::ijam_reconstruct(rx, mask, symbol_len), signal);
    const double e1 = qpsk_ser(
        secure::ijam_eavesdrop(rx, symbol_len, secure::EveStrategy::kFirstCopy, 3),
        signal);
    const double e2 = qpsk_ser(
        secure::ijam_eavesdrop(rx, symbol_len, secure::EveStrategy::kRandom, 5),
        signal);
    const double e3 = qpsk_ser(
        secure::ijam_eavesdrop(rx, symbol_len, secure::EveStrategy::kMinPower, 9),
        signal);
    std::printf("%14.1f %10.4f %12.4f %12.4f %12.4f\n", jam_db, legit, e1, e2,
                e3);
  }
  std::printf("-> the legitimate receiver stays at SER 0 at any jamming\n"
              "   power while every eavesdropper strategy degrades; the\n"
              "   min-power heuristic forces the jammer toward signal-level\n"
              "   power (iJam's design point).\n\n");

  // ---------------- ally friendly jamming ---------------------------------
  std::printf("ally-friendly jamming: residual interference after "
              "cancellation (4096 samples)\n");
  std::printf("%14s %18s %20s\n", "jam/signal(dB)", "authorized resid.",
              "unauthorized resid.");
  for (const double jam_db : {0.0, 6.0, 12.0, 20.0}) {
    const double jam_power = std::pow(10.0, jam_db / 10.0);
    const secure::FriendlyJammer ally(0xA117, jam_power);
    const secure::FriendlyJammer intruder_guess(0xBAD, jam_power);
    const dsp::cvec signal = random_qpsk(4096, 11);
    const dsp::cvec jam = ally.waveform(1, signal.size());
    dsp::cvec rx(signal.size());
    dsp::NoiseSource noise(1e-4, 13);
    for (std::size_t k = 0; k < rx.size(); ++k)
      rx[k] = signal[k] + dsp::cfloat{0.8f, -0.3f} * jam[k] + noise.sample();

    const dsp::cvec auth = secure::cancel_friendly_jamming(rx, ally, 1);
    const dsp::cvec unauth =
        secure::cancel_friendly_jamming(rx, intruder_guess, 1);
    std::printf("%14.1f %18.4f %20.4f\n", jam_db,
                secure::cancellation_residual(rx, auth, signal),
                secure::cancellation_residual(rx, unauth, signal));
  }
  std::printf("-> key holders cancel the jamming to a few percent residual;\n"
              "   without the key the channel stays jammed (Shen et al.'s\n"
              "   ally-friendly property).\n");
  bench::print_footer();
  return 0;
}
