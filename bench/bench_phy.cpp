// PHY hot-path microbenchmarks (google-benchmark): the SIMD DSP layer's
// headline numbers.  BM_WifiReceive54 and BM_Fft1024 are the two gated
// rates — CI compares a fresh run against the committed BENCH_phy.json
// floors — and the Viterbi pairs report the kernel-vs-reference speedup
// the dispatcher is buying on this host.
//
// Emits BENCH_phy.json (override with RJF_BENCH_JSON) with items/s per
// benchmark, the SIMD/scalar speedup ratios, and which ISA the dispatcher
// selected, so scalar-only CI runs are distinguishable in the artifacts.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "dsp/fft.h"
#include "dsp/noise.h"
#include "dsp/rng.h"
#include "dsp/simd/dispatch.h"
#include "phy80211/convolutional.h"
#include "phy80211/receiver.h"
#include "phy80211/transmitter.h"

using namespace rjf;

namespace {

// Same 1534-byte frame as bench_fabric_throughput's BM_WifiReceive54, so
// the two files' numbers stay directly comparable.
void BM_WifiReceive54(benchmark::State& state) {
  const std::vector<std::uint8_t> psdu(1534, 0x42);
  phy80211::Transmitter tx({phy80211::Rate::kMbps54, 0x5D});
  dsp::cvec wave = tx.transmit(psdu);
  dsp::NoiseSource noise(1e-4, 3);
  noise.add_to(wave);
  phy80211::Receiver rx;
  for (auto _ : state) benchmark::DoNotOptimize(rx.receive(wave));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WifiReceive54);

void BM_WifiTransmit54(benchmark::State& state) {
  const std::vector<std::uint8_t> psdu(1534, 0x42);
  phy80211::Transmitter tx({phy80211::Rate::kMbps54, 0x5D});
  for (auto _ : state) benchmark::DoNotOptimize(tx.transmit(psdu));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WifiTransmit54);

void BM_Fft64(benchmark::State& state) {
  dsp::NoiseSource noise(1.0, 5);
  dsp::cvec buf = noise.block(64);
  for (auto _ : state) {
    dsp::fft(buf);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fft64);

void BM_Fft1024(benchmark::State& state) {
  dsp::NoiseSource noise(1.0, 5);
  dsp::cvec buf = noise.block(1024);
  for (auto _ : state) {
    dsp::fft(buf);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fft1024);

// One 54 Mb/s frame's worth of mother-rate symbols (rate 3/4 depunctured:
// every third pair carries an erasure), decoded hard and soft.  Items are
// decoded information bits.
phy80211::Bits viterbi_bench_input() {
  dsp::Xoshiro256 rng(17);
  phy80211::Bits info(12288);
  for (auto& b : info) b = rng.uniform() < 0.5 ? 0 : 1;
  for (int k = 0; k < 6; ++k) info.push_back(0);
  const phy80211::Bits punctured =
      phy80211::encode_at_rate(info, phy80211::CodeRate::kThreeQuarters);
  return phy80211::depuncture(punctured, phy80211::CodeRate::kThreeQuarters,
                              info.size() * 2);
}

std::vector<float> viterbi_soft_bench_input() {
  const phy80211::Bits mother = viterbi_bench_input();
  std::vector<float> llrs(mother.size());
  for (std::size_t k = 0; k < mother.size(); ++k)
    llrs[k] = mother[k] == 2 ? 0.0f : (mother[k] ? 3.0f : -3.0f);
  return llrs;
}

void BM_ViterbiHard(benchmark::State& state) {
  const phy80211::Bits mother = viterbi_bench_input();
  for (auto _ : state)
    benchmark::DoNotOptimize(phy80211::viterbi_decode(mother));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(mother.size() / 2));
}
BENCHMARK(BM_ViterbiHard);

void BM_ViterbiHardReference(benchmark::State& state) {
  const phy80211::Bits mother = viterbi_bench_input();
  for (auto _ : state)
    benchmark::DoNotOptimize(phy80211::viterbi_decode_reference(mother));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(mother.size() / 2));
}
BENCHMARK(BM_ViterbiHardReference);

void BM_ViterbiSoft(benchmark::State& state) {
  const std::vector<float> llrs = viterbi_soft_bench_input();
  for (auto _ : state)
    benchmark::DoNotOptimize(phy80211::viterbi_decode_soft(llrs));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(llrs.size() / 2));
}
BENCHMARK(BM_ViterbiSoft);

void BM_ViterbiSoftReference(benchmark::State& state) {
  const std::vector<float> llrs = viterbi_soft_bench_input();
  for (auto _ : state)
    benchmark::DoNotOptimize(phy80211::viterbi_decode_soft_reference(llrs));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(llrs.size() / 2));
}
BENCHMARK(BM_ViterbiSoftReference);

class RateCollector : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end())
        rates_[run.benchmark_name()] = static_cast<double>(it->second);
    }
  }

  [[nodiscard]] double rate(const std::string& name) const {
    const auto it = rates_.find(name);
    return it == rates_.end() ? 0.0 : it->second;
  }
  [[nodiscard]] const std::map<std::string, double>& rates() const {
    return rates_;
  }

 private:
  std::map<std::string, double> rates_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  std::printf("simd dispatch: %s (compiled up to %s)\n",
              dsp::simd::isa_name(dsp::simd::active_isa()),
              dsp::simd::isa_name(dsp::simd::compiled_isa()));

  RateCollector collector;
  benchmark::RunSpecifiedBenchmarks(&collector);
  benchmark::Shutdown();

  rjf::bench::JsonWriter json;
  json.set("bench", std::string("phy_hot_path"));
  json.set("simd_isa", std::string(dsp::simd::isa_name(dsp::simd::active_isa())));
  for (const auto& [name, rate] : collector.rates())
    json.set(name + "_items_per_s", rate);

  const auto ratio = [&](const char* fast, const char* ref) {
    const double f = collector.rate(fast);
    const double r = collector.rate(ref);
    return (f > 0.0 && r > 0.0) ? f / r : 0.0;
  };
  if (const double s = ratio("BM_ViterbiHard", "BM_ViterbiHardReference"))
    json.set("viterbi_hard_speedup", s);
  if (const double s = ratio("BM_ViterbiSoft", "BM_ViterbiSoftReference"))
    json.set("viterbi_soft_speedup", s);

  const char* path = std::getenv("RJF_BENCH_JSON");
  const std::string out = path ? path : "BENCH_phy.json";
  if (!json.write_file(out))
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
  else
    std::printf("wrote %s\n", out.c_str());
  return 0;
}
