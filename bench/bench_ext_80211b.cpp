// Extension: multi-standard claim for 802.11b DSSS ("WiFi (802.11 a/b/g)",
// paper §1). Detection probability of 802.11b long-preamble frames using
// the deterministic scrambled-SYNC template, across DSSS rates — the same
// methodology as Figs. 6-7 applied to the DSSS leg of the standard.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/calibration.h"
#include "core/detection_experiment.h"
#include "core/reactive_jammer.h"
#include "core/templates.h"
#include "phy80211b/dsss.h"

using namespace rjf;

int main() {
  bench::print_header(
      "bench_ext_80211b — 802.11b DSSS preamble detection (extension)",
      "the multi-standard claim of Section 1 applied to 802.11b");

  const auto tpl = core::wifi_dsss_preamble_template();
  const core::XcorrNoiseModel model(tpl);
  core::JammerConfig config;
  config.detection = core::DetectionMode::kCrossCorrelator;
  config.xcorr_template = tpl;
  config.xcorr_threshold = model.threshold_for_rate(0.059);
  core::ReactiveJammer jammer(config);

  const std::size_t frames = bench::frames_per_point(300);
  std::printf("frames per point: %zu, FA target 0.059/s, threshold %u\n\n",
              frames, config.xcorr_threshold);

  std::printf("%10s", "SNR(dB)");
  const phy80211b::DsssRate rates[] = {
      phy80211b::DsssRate::kMbps1, phy80211b::DsssRate::kMbps2,
      phy80211b::DsssRate::kMbps5_5, phy80211b::DsssRate::kMbps11};
  for (const auto rate : rates)
    std::printf("   P_det@%4.1fM", phy80211b::dsss_rate_mbps(rate));
  std::printf("\n");

  for (const double snr : {-9.0, -6.0, -3.0, 0.0, 3.0, 8.0}) {
    std::printf("%10.1f", snr);
    for (const auto rate : rates) {
      std::vector<std::uint8_t> psdu(60, 0xC3);
      const phy80211b::DsssTransmitter tx(rate);
      const dsp::cvec frame = tx.transmit(psdu);
      core::DetectionRunConfig run;
      run.snr_db = snr;
      run.num_frames = frames;
      run.tx_rate_hz = phy80211b::kChipRateHz;
      run.seed = 0xB0B + static_cast<std::uint64_t>(snr * 10);
      const auto r = core::run_detection_experiment(
          jammer, frame, core::DetectorTap::kXcorr, run);
      std::printf(" %13.3f", r.probability);
    }
    std::printf("\n");
  }
  std::printf(
      "\nAll rates share the 192 us DSSS long preamble, so detection is\n"
      "rate-independent — one template covers the whole 802.11b family,\n"
      "which is what makes the jammer \"protocol aware\" rather than\n"
      "\"rate aware\". The 128 scrambled SYNC symbols give the correlator\n"
      "dozens of trigger opportunities per frame (compare Fig. 7).\n");
  bench::print_footer();
  return 0;
}
