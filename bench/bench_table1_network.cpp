// Table 1 — insertion losses of the 5-port interconnect network, swept the
// way a VNA would: inject a unit tone at each port, measure the arriving
// power at every other port through the channel model, and print the
// matrix next to the paper's measured values.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "channel/five_port.h"
#include "dsp/db.h"

using namespace rjf;

int main() {
  bench::print_header("bench_table1_network — 5-port insertion-loss matrix",
                      "Table 1 (VNA measurement of the wired test network)");

  channel::FivePortNetwork net;
  std::printf("measured through the channel model (dB), '-' = isolated:\n\n");
  std::printf("in\\out ");
  for (int out = 1; out <= 5; ++out) std::printf("%9d", out);
  std::printf("\n");

  for (int in = 1; in <= 5; ++in) {
    std::printf("%5d ", in);
    for (int out = 1; out <= 5; ++out) {
      if (in == out) {
        std::printf("%9s", "-");
        continue;
      }
      // VNA-style: unit tone in, power ratio out.
      const dsp::cvec tone(256, dsp::cfloat{1.0f, 0.0f});
      const channel::FivePortNetwork::Contribution sources[] = {{in, tone, 0}};
      const dsp::cvec rx = net.receive(out, sources, 256, 0.0, 1);
      const double loss_db = -dsp::mean_power_db(rx);
      if (!std::isfinite(loss_db))
        std::printf("%9s", "-");
      else
        std::printf("%8.1f ", -loss_db);
    }
    std::printf("\n");
  }

  std::printf("\npaper Table 1 (dB):\n");
  std::printf("       1: -, -51.0, -25.2, -38.4, -39.3\n");
  std::printf("       2: -51.0, -, -31.7, -32.0, -32.8\n");
  std::printf("       3: -25.2, -31.7, -, -19.1, -19.9\n");
  std::printf("       4: -38.4, -32.0, -19.1, -, -\n");
  std::printf("       5: -39.2, -32.8, -19.8, -, -\n");

  net.set_variable_attenuation_db(20.0);
  std::printf(
      "\nwith the port-4 variable attenuator at 20 dB, jammer->AP loss: "
      "%.1f dB (38.4 + 20)\n",
      net.loss_db(channel::kPortJammerTx, channel::kPortAp));
  bench::print_footer();
  return 0;
}
