// Fig. 10 — WiFi UDP bandwidth (iperf) vs measured SIR at the AP, for
// jammer-off / continuous / reactive-0.1ms / reactive-0.01ms.
//
// Paper anchors: ~29 Mb/s ceiling without the jammer; the continuous
// jammer kills the link at SIR 33.85 dB; the 0.1 ms reactive jammer halves
// bandwidth at 33.85 dB and kills at 15.94 dB; the 0.01 ms reactive jammer
// needs SIR 2.79 dB. Expected to hold in SHAPE: continuous dies at the
// lowest jam power (highest SIR), then 0.1 ms, then 0.01 ms.
#include <cstdio>

#include "bench/wifi_sweep.h"

using namespace rjf;

int main() {
  bench::print_header("bench_fig10_bandwidth — iperf UDP bandwidth vs SIR",
                      "Fig. 10 (60 s UDP tests at 54 Mb/s offered)");
  const double duration = bench::iperf_duration_s();
  std::printf("iperf duration per point: %.2f s (paper used 60 s)\n",
              duration);

  const auto sweeps = bench::full_sweep(duration);
  for (const auto& sweep : sweeps) {
    std::printf("\n--- %s ---\n", sweep.label.c_str());
    std::printf("%14s %18s %16s\n", "SIR at AP (dB)", "UDP bandwidth (kbps)",
                "mean rate (Mb/s)");
    for (const auto& p : sweep.points) {
      if (p.sir_db > 200.0)
        std::printf("%14s %18.0f %16.1f\n", "(no jam)", p.bandwidth_kbps,
                    p.mean_rate_mbps);
      else
        std::printf("%14.2f %18.0f %16.1f\n", p.sir_db, p.bandwidth_kbps,
                    p.mean_rate_mbps);
    }
  }
  std::printf(
      "\nexpected shape (paper): jammer-off ceiling ~29 Mb/s; continuous\n"
      "jamming collapses the network at the highest SIR (lowest power) via\n"
      "carrier-sense starvation; reactive jammers need progressively more\n"
      "instantaneous power as uptime shrinks (0.1 ms, then 0.01 ms).\n");
  bench::print_footer();
  return 0;
}
