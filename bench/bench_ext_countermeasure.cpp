// Extension: countermeasure study (paper §6: "an effective tool for
// studying and developing countermeasures"). Runs the diagnosis classifier
// over every jammer configuration and power regime and prints the verdict
// matrix — showing both what it catches and the consistency evidence that
// exposes a reactive jammer despite its carrier-sense stealth.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/presets.h"
#include "net/jamming_detector.h"

using namespace rjf;

int main() {
  bench::print_header(
      "bench_ext_countermeasure — link-layer jamming diagnosis",
      "the countermeasure-development role of Section 6");

  const double duration = bench::iperf_duration_s(0.06);
  struct Case {
    const char* name;
    std::optional<core::JammerConfig> jammer;
    double power;
  };
  const Case cases[] = {
      {"no jammer", std::nullopt, 0.0},
      {"continuous, weak (SIR ~47 dB)", core::continuous_preset(), 1e-6},
      {"continuous, lethal (SIR ~17 dB)", core::continuous_preset(), 1e-3},
      {"reactive 0.1ms, weak", core::energy_reactive_preset(1e-4, 10.0), 1e-4},
      {"reactive 0.1ms, lethal", core::energy_reactive_preset(1e-4, 10.0), 0.1},
      {"reactive 0.01ms, lethal", core::energy_reactive_preset(1e-5, 10.0), 1.0},
  };

  std::printf("%-34s %8s %10s %8s %-20s\n", "scenario", "PDR", "CCA busy",
              "SNR dB", "verdict");
  for (const auto& c : cases) {
    net::WifiNetworkConfig config;
    config.iperf.duration_s = duration;
    config.jammer = c.jammer;
    config.jammer_tx_power = c.power;
    config.seed = 99;
    net::WifiNetworkSim sim(config);
    const auto run = sim.run();
    const auto obs = net::observe(run, config);
    std::printf("%-34s %8.2f %10.2f %8.1f %-20s\n", c.name, obs.pdr,
                obs.cca_busy_fraction, obs.snr_db,
                net::verdict_name(net::diagnose(obs)));
  }
  std::printf(
      "\nThe reactive jammer defeats carrier-sense-based detection (CCA\n"
      "fraction ~0, 'excellent' link) but not the PDR/RSSI consistency\n"
      "check: packets dying on a strong, idle channel have no innocent\n"
      "explanation — the Xu et al. cross-check the conclusion calls for.\n");
  bench::print_footer();
  return 0;
}
