// Ablation: "surgical" jamming (paper §2.4/§3.1) — the programmable
// trigger-to-jam delay aims a fixed-length burst at different parts of an
// 802.11g frame. Frame error rate per aimed region quantifies why
// "this type of jamming is highly destructive": hitting the 8 us of
// channel-estimation symbols kills the frame as surely as hitting data,
// with a burst a fraction of the frame long.
#include <cstdio>

#include "bench/bench_util.h"
#include "dsp/noise.h"
#include "phy80211/receiver.h"
#include "phy80211/transmitter.h"

using namespace rjf;

namespace {

struct Region {
  const char* name;
  double start_us;  // burst start, relative to frame start
};

}  // namespace

int main() {
  bench::print_header(
      "bench_ablation_surgical — aimed jamming bursts per frame region",
      "the surgical-jamming capability of Sections 2.4/5 (delay register)");

  const std::size_t trials = bench::frames_per_point(150);
  std::vector<std::uint8_t> psdu(800, 0x6D);
  phy80211::Transmitter tx({phy80211::Rate::kMbps54, 0x5D});
  const dsp::cvec clean = tx.transmit(psdu);
  const double frame_us = clean.size() / 20e6 * 1e6;

  const Region regions[] = {
      {"short preamble (AGC/sync)", 2.0},
      {"long preamble (channel est)", 9.0},
      {"SIGNAL field", 16.5},
      {"early data symbols", 24.0},
      {"mid-frame data", frame_us / 2.0},
      {"last data symbols", frame_us - 10.0},
  };

  std::printf("frame: %zu bytes @ 54 Mb/s = %.0f us; burst: 4 us, jam power "
              "= signal power; %zu trials/region\n\n",
              psdu.size(), frame_us, trials);
  std::printf("%-30s %14s\n", "aimed region", "frame error %");
  for (const auto& region : regions) {
    const auto start =
        static_cast<std::size_t>(region.start_us * 20.0);  // samples @20M
    const std::size_t len = 80;  // 4 us
    std::size_t errors = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      dsp::cvec rx = clean;
      dsp::NoiseSource jam(1.0, 0x5A6 + t);
      for (std::size_t k = start; k < start + len && k < rx.size(); ++k)
        rx[k] += jam.sample();
      dsp::NoiseSource noise(1e-4, 0xE11 + t);
      noise.add_to(rx);
      const auto decoded = phy80211::Receiver().receive(rx);
      if (!decoded.signal_valid || decoded.psdu != psdu) ++errors;
    }
    std::printf("%-30s %13.1f%%\n", region.name,
                100.0 * static_cast<double>(errors) /
                    static_cast<double>(trials));
  }
  std::printf(
      "\nA 4 us burst is ~1.6%% of this frame's airtime, yet aimed at the\n"
      "long preamble or SIGNAL it is as lethal as continuous coverage —\n"
      "the energy argument behind reactive jamming.\n");
  bench::print_footer();
  return 0;
}
