// Fig. 5 / §3.1 — reactive jamming timelines, measured cycle-accurately on
// the FPGA core model rather than estimated:
//   T_en_det    < 1.28 us   (energy detection, <= 32 samples)
//   T_xcorr_det = 2.56 us   (64-sample correlation)
//   T_init      ~ 80 ns     (trigger + DUC fill)
//   T_resp      <= 1.36 us energy / 2.64 us correlation
#include <cstdio>

#include "bench/bench_util.h"
#include "core/calibration.h"
#include "core/fabric_units.h"
#include "core/templates.h"
#include "dsp/resampler.h"
#include "fpga/dsp_core.h"
#include "phy80211/preamble.h"

using namespace rjf;

namespace {

struct Timeline {
  double t_det_us = 0.0;
  double t_init_ns = 0.0;
  double t_resp_us = 0.0;
};

// Stream `signal` (25 MSPS) into a programmed core; measure the tick of
// first detection event and first RF-out.
Timeline measure(fpga::DspCore& core, const dsp::cvec& signal25,
                 std::size_t signal_start) {
  Timeline t;
  std::uint64_t detect_tick = 0, rf_tick = 0;
  const std::uint64_t start_tick =
      static_cast<std::uint64_t>(signal_start) * fpga::kClocksPerSample;
  for (const auto s : signal25) {
    for (std::uint32_t c = 0; c < fpga::kClocksPerSample; ++c) {
      const auto out = core.tick(c == 0
                                     ? std::optional<dsp::IQ16>(dsp::to_iq16(s))
                                     : std::nullopt);
      if ((out.xcorr_trigger || out.energy_high) && !detect_tick)
        detect_tick = out.vita_ticks;
      if (out.tx.rf_active && !rf_tick) rf_tick = out.vita_ticks;
    }
    if (rf_tick) break;
  }
  if (detect_tick) t.t_det_us = (detect_tick - start_tick) * 0.01;
  if (rf_tick && detect_tick) t.t_init_ns = (rf_tick - detect_tick) * 10.0;
  if (rf_tick) t.t_resp_us = (rf_tick - start_tick) * 0.01;
  return t;
}

}  // namespace

int main() {
  bench::print_header("bench_timelines — reactive jamming timelines",
                      "Fig. 5 and the bullet analysis of Section 3.1");

  // --- Cross-correlation path on the WiFi long preamble.
  const auto tpl = core::wifi_long_preamble_template();
  const core::XcorrNoiseModel model(tpl);
  fpga::DspCore xc_core;
  fpga::program_template(xc_core.registers(), tpl);
  xc_core.registers().write(fpga::Reg::kXcorrThreshold,
                            model.threshold_for_rate(0.5));
  xc_core.registers().set_trigger_stages(fpga::kEventXcorr, 0, 0);
  xc_core.registers().set_jammer(fpga::JamWaveform::kWhiteNoise, true, 0);
  xc_core.registers().write(fpga::Reg::kJamDuration, 64);
  xc_core.apply_registers();

  dsp::cvec lts2 = phy80211::long_training_symbol();
  {
    const auto copy = lts2;
    lts2.insert(lts2.end(), copy.begin(), copy.end());
  }
  dsp::cvec sig = dsp::resample(lts2, 20e6, 25e6);
  sig.resize(sig.size() + 16, dsp::cfloat{});
  const auto t_xcorr = measure(xc_core, sig, 0);

  // --- Energy path: quiet floor, then a strong carrier.
  fpga::DspCore en_core;
  en_core.registers().write(fpga::Reg::kEnergyThreshHigh,
                            core::energy_threshold_q88_from_db(10.0));
  en_core.registers().write(fpga::Reg::kEnergyThreshLow, ~0u);
  en_core.registers().write(fpga::Reg::kEnergyFloor, 1);
  en_core.registers().set_trigger_stages(fpga::kEventEnergyHigh, 0, 0);
  en_core.registers().set_jammer(fpga::JamWaveform::kWhiteNoise, true, 0);
  en_core.registers().write(fpga::Reg::kJamDuration, 64);
  en_core.apply_registers();

  // A 12 dB energy rise (x4 amplitude): the 32-sample moving sum needs
  // ~20 new samples to cross the 10 dB threshold — the paper's "at most
  // 32 baseband samples" case rather than an instantaneous huge step.
  dsp::cvec en_sig(400, dsp::cfloat{0.1f, 0.1f});  // idle floor
  const std::size_t rise_at = en_sig.size();
  en_sig.resize(en_sig.size() + 200, dsp::cfloat{0.4f, 0.4f});
  const auto t_en = measure(en_core, en_sig, rise_at);

  std::printf("%-28s %12s %12s\n", "quantity", "paper", "measured");
  std::printf("%-28s %12s %9.2f us\n", "T_xcorr_det", "2.56 us",
              t_xcorr.t_det_us);
  std::printf("%-28s %12s %9.2f us\n", "T_en_det", "< 1.28 us", t_en.t_det_us);
  std::printf("%-28s %12s %9.0f ns\n", "T_init (xcorr path)", "~80 ns",
              t_xcorr.t_init_ns);
  std::printf("%-28s %12s %9.0f ns\n", "T_init (energy path)", "~80 ns",
              t_en.t_init_ns);
  std::printf("%-28s %12s %9.2f us\n", "T_resp (correlation)", "< 2.64 us",
              t_xcorr.t_resp_us);
  std::printf("%-28s %12s %9.2f us\n", "T_resp (energy)", "< 1.36 us",
              t_en.t_resp_us);

  std::printf("\nJam duration range: %d ns .. %.0f s (paper: 40 ns .. ~40 s)\n",
              40, 0xFFFFFFFFu / 25e6);
  std::printf(
      "802.11g context: short+long preamble 16 us, SIGNAL 4 us -> a frame\n"
      "is jammed before its first OFDM data symbol at T_resp <= 2.64 us.\n");
  bench::print_footer();
  return 0;
}
