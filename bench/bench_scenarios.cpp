// Protocol-target registry bench: paper-style detection curves (Figs. 6-8
// methodology) for every registered target, driven entirely through the
// scenario layer (core/scenario.h) — the same handles the campaign runner
// and fault harness consume. Emits BENCH_scenarios.json (override path
// with RJF_SCENARIO_JSON):
//
//   scenario_targets                     registry size
//   scenario_<name>_pdet_high_snr        min over swept rates of P_det at
//                                        the top SNR point (CI floor)
//   scenario_<name>_duty_cycle           victim duty cycle at the default
//                                        rate and bench PSDU size
//   scenarios_deterministic              per-point counts bit-identical at
//                                        1 vs 2 sweep threads (0/1)
//
// CI gates the per-target high-SNR floors and the determinism flag via
// tools/check_bench_regression.py.
//
//   RJF_BENCH_FRAMES   trials per (rate, SNR) point (default 300)
//   RJF_BENCH_THREADS  sweep-engine worker threads (default 0 = all cores)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/scenario.h"

using namespace rjf;

namespace {

/// Rate indices a target contributes to the bench grid: every rate for
/// small tables (802.11b's four), first + default for wide ones (OFDM's
/// eight would triple the wall clock without changing the story — the
/// preamble, and therefore detection, is rate-independent).
std::vector<std::size_t> bench_rates(const core::ProtocolTarget& target) {
  if (target.rates.size() <= 4) {
    std::vector<std::size_t> all(target.rates.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    return all;
  }
  return {0, target.default_rate_index};
}

bool same_counts(const core::SweepReport& a, const core::SweepReport& b) {
  if (a.points.size() != b.points.size()) return false;
  for (std::size_t p = 0; p < a.points.size(); ++p) {
    if (a.points[p].result.frames_detected !=
            b.points[p].result.frames_detected ||
        a.points[p].result.total_detections !=
            b.points[p].result.total_detections)
      return false;
  }
  return true;
}

}  // namespace

int main() {
  bench::print_header(
      "bench_scenarios — per-target detection curves via the registry",
      "Figs. 6-8 methodology applied to every registered protocol target");

  const double snrs[] = {-9.0, -6.0, -3.0, 0.0, 3.0, 8.0};
  const std::size_t kNumSnrs = sizeof(snrs) / sizeof(snrs[0]);
  const std::size_t psdu_bytes = 60;
  const std::vector<std::uint8_t> psdu(psdu_bytes, 0xC3);

  core::SweepConfig sweep;
  sweep.trials_per_point = bench::frames_per_point(300);
  sweep.threads = bench::sweep_threads(0);
  sweep.seed = 0x5CE9;

  core::DetectionRunConfig base;
  base.lead_in = 256;
  base.tail = 256;

  std::printf("trials per point: %zu, threads %u, psdu %zu bytes\n",
              sweep.trials_per_point, bench::resolved_sweep_threads(),
              psdu_bytes);

  bench::JsonWriter json;
  json.set("scenario_targets",
           static_cast<std::uint64_t>(core::protocol_targets().size()));

  double total_wall = 0.0;
  for (const core::ProtocolTarget& target : core::protocol_targets()) {
    const core::JammerConfig jammer =
        core::target_reactive_preset(target, 100e-6);
    std::printf("\n%s — %s\n", target.name.c_str(),
                target.description.c_str());
    std::printf("  xcorr threshold %u (FA 0.059/s), native rate %.1f MHz\n",
                jammer.xcorr_threshold, target.native_rate_hz / 1e6);
    std::printf("%10s", "SNR(dB)");
    const std::vector<std::size_t> rates = bench_rates(target);
    for (const std::size_t r : rates)
      std::printf("   P_det@%4.1fM", target.rates[r].mbps);
    std::printf("\n");

    // One sweep per rate; curves print SNR-major like the paper's figures.
    std::vector<core::SweepReport> curves;
    curves.reserve(rates.size());
    for (const std::size_t r : rates) {
      curves.push_back(core::run_target_detection_sweep(
          jammer, target, r, psdu, core::DetectorTap::kXcorr, base, snrs,
          sweep));
      total_wall += curves.back().wall_seconds;
    }
    for (std::size_t k = 0; k < kNumSnrs; ++k) {
      std::printf("%10.1f", snrs[k]);
      for (const core::SweepReport& curve : curves)
        std::printf(" %13.3f", curve.points[k].result.probability);
      std::printf("\n");
    }

    double pdet_floor = 1.0;
    for (const core::SweepReport& curve : curves)
      pdet_floor =
          std::min(pdet_floor, curve.points[kNumSnrs - 1].result.probability);
    json.set("scenario_" + target.name + "_pdet_high_snr", pdet_floor);
    json.set("scenario_" + target.name + "_duty_cycle",
             target.duty_cycle(target.default_rate_index, psdu_bytes));
  }

  // Determinism across thread counts, end-to-end through the target path:
  // the 802.11b leg (new code) at its default rate, 1 vs 2 workers.
  const core::ProtocolTarget& dsss = core::target_or_throw("wifi_dsss");
  const core::JammerConfig dsss_jammer =
      core::target_reactive_preset(dsss, 100e-6);
  core::SweepConfig det = sweep;
  det.threads = 1;
  const core::SweepReport one = core::run_target_detection_sweep(
      dsss_jammer, dsss, dsss.default_rate_index, psdu,
      core::DetectorTap::kXcorr, base, snrs, det);
  det.threads = 2;
  const core::SweepReport two = core::run_target_detection_sweep(
      dsss_jammer, dsss, dsss.default_rate_index, psdu,
      core::DetectorTap::kXcorr, base, snrs, det);
  const bool deterministic = same_counts(one, two);
  std::printf("\nper-point counts identical at 1 vs 2 threads: %s\n",
              deterministic ? "yes" : "NO — DETERMINISM VIOLATION");

  json.set("scenarios_deterministic",
           static_cast<std::uint64_t>(deterministic ? 1 : 0));
  json.set("scenario_wall_s", total_wall);

  const char* json_path = std::getenv("RJF_SCENARIO_JSON");
  const std::string path =
      json_path != nullptr ? json_path : "BENCH_scenarios.json";
  if (json.write_file(path)) std::printf("wrote %s\n", path.c_str());

  bench::print_footer();
  return deterministic ? 0 : 1;
}
