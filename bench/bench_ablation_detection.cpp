// Ablations on the detection design choices DESIGN.md calls out:
//  (a) template condition: capture-aligned vs naive native-rate loading —
//      quantifying the sampling-rate-mismatch effect the paper blames for
//      Fig. 6's low single-preamble rates;
//  (b) energy threshold setting vs detection turn-on SNR (the 3-30 dB
//      range of §2.3);
//  (c) false-alarm target vs detection probability trade (Fig. 6's pair of
//      curves, denser).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/calibration.h"
#include "core/detection_experiment.h"
#include "core/presets.h"
#include "core/templates.h"
#include "phy80211/ofdm.h"
#include "phy80211/preamble.h"
#include "phy80211/transmitter.h"

using namespace rjf;

int main() {
  bench::print_header("bench_ablation_detection — detector design ablations",
                      "design choices discussed in Sections 2.3 and 3.2");

  const std::size_t frames = bench::frames_per_point(200);
  std::vector<std::uint8_t> psdu(310, 0xA5);
  phy80211::Transmitter tx({phy80211::Rate::kMbps54, 0x5D});
  const dsp::cvec frame = tx.transmit(psdu);

  // ---------------- (a) template condition --------------------------------
  std::printf("\n(a) correlator template condition (WiFi long preamble, "
              "FA 0.52/s, full frames)\n");
  dsp::cvec lts2 = phy80211::long_training_symbol();
  {
    const auto copy = lts2;
    lts2.insert(lts2.end(), copy.begin(), copy.end());
  }
  struct TemplateCase {
    const char* name;
    bool resample;
  };
  for (const auto& c : {TemplateCase{"capture-aligned (25 MSPS)", true},
                        TemplateCase{"naive native-rate (20 MSPS)", false}}) {
    core::JammerConfig config;
    config.detection = core::DetectionMode::kCrossCorrelator;
    config.xcorr_template =
        core::template_from_waveform(lts2, phy80211::kSampleRateHz, c.resample);
    config.xcorr_threshold =
        core::XcorrNoiseModel(*config.xcorr_template).threshold_for_rate(0.52);
    core::ReactiveJammer jammer(config);
    std::printf("  %-30s:", c.name);
    for (const double snr : {0.0, 5.0, 10.0, 20.0}) {
      core::DetectionRunConfig run;
      run.snr_db = snr;
      run.num_frames = frames;
      run.seed = 0xAB1;
      const auto r = core::run_detection_experiment(
          jammer, frame, core::DetectorTap::kXcorr, run);
      std::printf("  P(%2.0fdB)=%.2f", snr, r.probability);
    }
    std::printf("\n");
  }
  std::printf("  -> the raw rate mismatch destroys detection outright; the\n"
              "     paper's partial-window loss is the residual effect.\n");

  // ---------------- (b) energy threshold sweep ----------------------------
  std::printf("\n(b) energy threshold vs turn-on SNR (P_det at each SNR)\n");
  std::printf("  %10s", "thresh(dB)");
  const double snrs[] = {4, 8, 12, 16, 20, 24};
  for (const double snr : snrs) std::printf(" %7.0fdB", snr);
  std::printf("\n");
  for (const double threshold_db : {3.0, 6.0, 10.0, 15.0, 20.0}) {
    core::ReactiveJammer jammer(
        core::energy_reactive_preset(1e-4, threshold_db));
    std::printf("  %10.0f", threshold_db);
    for (const double snr : snrs) {
      core::DetectionRunConfig run;
      run.snr_db = snr;
      run.num_frames = frames / 2;
      run.seed = 0xAB2;
      const auto r = core::run_detection_experiment(
          jammer, frame, core::DetectorTap::kEnergyHigh, run);
      std::printf(" %9.2f", r.probability);
    }
    std::printf("\n");
  }
  std::printf("  -> the detector turns on roughly at its configured rise\n"
              "     threshold: lower settings detect weaker signals (at the\n"
              "     cost of false alarms on fading channels).\n");

  // ---------------- (c) false-alarm target sweep --------------------------
  std::printf("\n(c) false-alarm target vs P_det (short preamble, full "
              "frames, SNR -3 dB)\n");
  std::printf("  %12s %12s %10s\n", "FA target/s", "threshold", "P_det");
  const auto tpl = core::wifi_short_preamble_template();
  const core::XcorrNoiseModel model(tpl);
  for (const double fa : {10.0, 1.0, 0.52, 0.083, 0.059, 0.01}) {
    core::JammerConfig config;
    config.detection = core::DetectionMode::kCrossCorrelator;
    config.xcorr_template = tpl;
    config.xcorr_threshold = model.threshold_for_rate(fa);
    core::ReactiveJammer jammer(config);
    core::DetectionRunConfig run;
    run.snr_db = -3.0;
    run.num_frames = frames;
    run.seed = 0xAB3;
    const auto r = core::run_detection_experiment(jammer, frame,
                                                  core::DetectorTap::kXcorr, run);
    std::printf("  %12.3f %12u %10.3f\n", fa, config.xcorr_threshold,
                r.probability);
  }
  std::printf("  -> 'aiming for a lower false alarm rate generally decreases\n"
              "     the probability of detection' (paper Section 3.2).\n");
  bench::print_footer();
  return 0;
}
