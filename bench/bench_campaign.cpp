// Campaign-runner bench: checkpoint/resume cost and determinism.
//
// Runs the same small {rate, SNR} grid twice — once uninterrupted, once as
// two process-style windows against one shard store (the first window stops
// after half the shards, the second resumes and finishes) — and byte-
// compares the merged CSVs. Emits BENCH_campaign.json (override path with
// RJF_CAMPAIGN_JSON):
//
//   campaign_deterministic            resumed CSV == uninterrupted CSV (0/1)
//   campaign_resume_overhead          (window1 + window2 wall) / full wall
//   campaign_resume_replayed_trials   durable trials a resume redid (must be 0)
//   campaign_trials_per_s             full-run merged trial rate
//
// CI gates the determinism flag, a resume-overhead ceiling, and the
// zero-replay invariant via tools/check_bench_regression.py.
//
//   RJF_BENCH_FRAMES   trials per grid point (default 400)
//   RJF_BENCH_THREADS  worker threads (default 0 = all cores)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_util.h"
#include "core/campaign.h"
#include "core/templates.h"

using namespace rjf;

namespace {

core::CampaignSpec bench_spec() {
  core::CampaignSpec spec;
  spec.jammer.detection = core::DetectionMode::kCrossCorrelator;
  spec.jammer.xcorr_template = core::wifi_long_preamble_template();
  spec.jammer.xcorr_threshold = 9000;
  spec.tap = core::DetectorTap::kXcorr;
  spec.psdu_bytes = 64;
  spec.base.lead_in = 128;
  spec.base.tail = 128;
  spec.seed = 0xBE9C;
  spec.grid.rate_indices = {0, 7};  // wifi_ofdm: 6 and 54 Mb/s
  spec.grid.snrs_db = {-2.0, 2.0, 6.0};
  spec.grid.trials_per_point = bench::frames_per_point();
  spec.threads = bench::sweep_threads(0);
  return spec;
}

}  // namespace

int main() {
  bench::print_header(
      "bench_campaign — checkpointable campaign runner",
      "overnight-scale P_det grids with kill/resume durability (§3.2 at "
      "campaign scale)");

  core::CampaignSpec spec = bench_spec();
  std::printf("grid: %zu points x %zu trials, threads %u\n\n",
              spec.grid.num_points(), spec.grid.trials_per_point,
              bench::resolved_sweep_threads());

  const std::string dir = [] {
    const char* tmp = std::getenv("TMPDIR");
    return std::string(tmp != nullptr ? tmp : "/tmp") + "/";
  }();

  // Uninterrupted reference.
  const std::string full_path = dir + "bench_campaign_full.rjfc";
  std::remove(full_path.c_str());
  const core::CampaignReport full = core::run_campaign(spec, full_path);
  std::remove(full_path.c_str());
  const std::string golden = full.to_csv();
  std::printf("%-22s %10.2fs  %8.0f trials/s  %zu shards\n", "uninterrupted",
              full.wall_seconds,
              static_cast<double>(full.trials_run) / full.wall_seconds,
              full.shards_total);

  // Window 1: half the shards, then "die". Window 2: resume and finish.
  const std::string resume_path = dir + "bench_campaign_resume.rjfc";
  std::remove(resume_path.c_str());
  core::CampaignSpec windowed = spec;
  windowed.max_shards_this_run = full.shards_total / 2;
  const core::CampaignReport window1 = core::run_campaign(windowed, resume_path);
  windowed.max_shards_this_run = 0;
  const core::CampaignReport window2 = core::run_campaign(windowed, resume_path);
  std::remove(resume_path.c_str());
  const double resumed_wall = window1.wall_seconds + window2.wall_seconds;
  std::printf("%-22s %10.2fs  (%zu + %zu shards across two windows)\n",
              "killed + resumed", resumed_wall, window1.shards_run,
              window2.shards_run);

  const bool deterministic =
      window2.complete && !window1.complete && window2.to_csv() == golden;
  const double overhead =
      full.wall_seconds > 0.0 ? resumed_wall / full.wall_seconds : 0.0;
  std::printf(
      "\nresumed CSV byte-identical to uninterrupted: %s\n"
      "resume overhead: %.3fx, replayed trials: %llu\n",
      deterministic ? "yes" : "NO — DETERMINISM VIOLATION", overhead,
      static_cast<unsigned long long>(window2.trials_replayed));

  const char* json_path = std::getenv("RJF_CAMPAIGN_JSON");
  bench::JsonWriter json;
  json.set("campaign_points", static_cast<std::uint64_t>(spec.grid.num_points()));
  json.set("campaign_trials_per_point",
           static_cast<std::uint64_t>(spec.grid.trials_per_point));
  json.set("campaign_shards", static_cast<std::uint64_t>(full.shards_total));
  json.set("campaign_threads", static_cast<std::uint64_t>(full.threads_used));
  json.set("campaign_wall_s", full.wall_seconds);
  json.set("campaign_trials_per_s",
           full.wall_seconds > 0.0
               ? static_cast<double>(full.trials_run) / full.wall_seconds
               : 0.0);
  json.set("campaign_resume_overhead", overhead);
  json.set("campaign_resume_replayed_trials", window2.trials_replayed);
  json.set("campaign_deterministic",
           static_cast<std::uint64_t>(deterministic ? 1 : 0));
  const std::string path =
      json_path != nullptr ? json_path : "BENCH_campaign.json";
  if (json.write_file(path)) std::printf("wrote %s\n", path.c_str());

  bench::print_footer();
  return deterministic ? 0 : 1;
}
