// Sweep-engine scaling bench: a Fig. 6-style P_det-vs-SNR sweep run on the
// deterministic parallel sweep engine at 1, 2 and N worker threads.
//
// Emits BENCH_sweep.json (override path with RJF_SWEEP_JSON) with the
// single-thread and N-thread trial rates, the measured speedup, the
// parallel efficiency, and a sweep_deterministic flag proving that every
// thread count produced bit-identical aggregate counts — the engine's core
// guarantee. CI gates the flag and the efficiency floor via
// tools/check_bench_regression.py.
//
// Honesty rule: the measured thread count is clamped to the host's core
// count. Running 8 software threads on a 1-core box measures scheduler
// interleaving, not scaling — an earlier revision did exactly that and
// committed "speedup 1.06 at 8 threads" from a single-core runner, which
// read as an efficiency collapse. The JSON now records both the requested
// and the effective thread count, and the gated figure is
//   sweep_parallel_efficiency = speedup / effective_threads
// which is meaningful on any machine (≈1.0 on one core, where speedup at
// one effective thread is trivially ≈1).
//
//   RJF_BENCH_FRAMES   trials per SNR point (default 400)
//   RJF_BENCH_THREADS  N for the parallel run (default 8)
#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/calibration.h"
#include "core/sweep.h"
#include "core/templates.h"
#include "phy80211/transmitter.h"

using namespace rjf;

namespace {

bool same_counts(const core::SweepReport& a, const core::SweepReport& b) {
  if (a.points.size() != b.points.size()) return false;
  for (std::size_t p = 0; p < a.points.size(); ++p) {
    const auto& ra = a.points[p].result;
    const auto& rb = b.points[p].result;
    if (ra.frames_detected != rb.frames_detected ||
        ra.total_detections != rb.total_detections ||
        ra.frames_sent != rb.frames_sent)
      return false;
  }
  return a.metrics.counter_value("sweep.detections") ==
         b.metrics.counter_value("sweep.detections");
}

}  // namespace

int main() {
  bench::print_header(
      "bench_sweep — parallel sweep engine scaling",
      "experiment layer for Figs. 6-8 (P_det vs SNR at paper trial counts)");

  const auto tpl = core::wifi_long_preamble_template();
  const core::XcorrNoiseModel model(tpl);
  core::JammerConfig config;
  config.detection = core::DetectionMode::kCrossCorrelator;
  config.xcorr_template = tpl;
  config.xcorr_threshold = model.threshold_for_rate(0.52);

  std::vector<std::uint8_t> psdu(310, 0xA5);
  phy80211::Transmitter tx({phy80211::Rate::kMbps54, 0x5D});
  const dsp::cvec full_frame = tx.transmit(psdu);

  const std::vector<double> snrs = {-3, 0, 3, 8, 12};
  core::SweepConfig sweep;
  sweep.trials_per_point = bench::frames_per_point();
  sweep.seed = 0xF16;
  core::DetectionRunConfig base;

  const unsigned host_cores = std::max(1u, std::thread::hardware_concurrency());
  unsigned requested_threads = bench::sweep_threads(8);
  if (requested_threads == 0) requested_threads = host_cores;
  // Clamp the measurement to real cores: oversubscribed threads time-slice
  // one core and produce a meaningless "speedup" (see header comment).
  const unsigned n_threads = std::min(requested_threads, host_cores);
  std::printf(
      "trials per point: %zu, %zu points; host cores: %u; threads: %u "
      "(requested %u)\n\n",
      sweep.trials_per_point, snrs.size(), host_cores, n_threads,
      requested_threads);

  std::printf("%8s %14s %12s %10s\n", "threads", "trials/s", "wall(s)",
              "speedup");
  double rate_1t = 0.0;
  double rate_nt = 0.0;
  double wall_nt = 0.0;
  bool deterministic = true;
  core::SweepReport reference;
  // RJF_BENCH_THREADS of 1 or 2 would duplicate a count and make rate_nt /
  // the JSON's sweep_speedup come from a redundant run; the ordered set
  // runs each count once, 1-thread reference first.
  const std::set<unsigned> thread_counts{1u, 2u, n_threads};
  for (const unsigned threads : thread_counts) {
    sweep.threads = threads;
    const auto report = core::run_detection_sweep(
        config, full_frame, core::DetectorTap::kXcorr, base, snrs, sweep);
    if (threads == 1) {
      reference = report;
      rate_1t = report.trials_per_second();
    } else {
      deterministic = deterministic && same_counts(reference, report);
    }
    if (threads == n_threads) {
      rate_nt = report.trials_per_second();
      wall_nt = report.wall_seconds;
    }
    std::printf("%8u %14.0f %12.2f %9.2fx\n", threads,
                report.trials_per_second(), report.wall_seconds,
                report.trials_per_second() / rate_1t);
  }
  std::printf("\naggregates bit-identical across thread counts: %s\n",
              deterministic ? "yes" : "NO — DETERMINISM VIOLATION");

  const char* json_path = std::getenv("RJF_SWEEP_JSON");
  bench::JsonWriter json;
  json.set("sweep_trials_per_point", static_cast<std::uint64_t>(sweep.trials_per_point));
  json.set("sweep_points", static_cast<std::uint64_t>(snrs.size()));
  json.set("sweep_threads_requested", static_cast<std::uint64_t>(requested_threads));
  json.set("sweep_threads", static_cast<std::uint64_t>(n_threads));
  json.set("host_cores", static_cast<std::uint64_t>(host_cores));
  json.set("sweep_trials_per_s_1t", rate_1t);
  json.set("sweep_trials_per_s_nt", rate_nt);
  json.set("sweep_wall_s_nt", wall_nt);
  const double speedup = rate_1t > 0.0 ? rate_nt / rate_1t : 0.0;
  json.set("sweep_speedup", speedup);
  // The gated scaling figure: speedup per effective core. n_threads is
  // already clamped to host_cores, so this is well-defined everywhere.
  json.set("sweep_parallel_efficiency",
           n_threads > 0 ? speedup / static_cast<double>(n_threads) : 0.0);
  json.set("sweep_deterministic", static_cast<std::uint64_t>(deterministic ? 1 : 0));
  const std::string path = json_path != nullptr ? json_path : "BENCH_sweep.json";
  if (json.write_file(path))
    std::printf("wrote %s\n", path.c_str());

  bench::print_footer();
  return deterministic ? 0 : 1;
}
