// Fig. 8 — energy differentiator detection of full WiFi frames vs SNR at a
// 10 dB threshold. Paper shape: no detection below the floor, a band of
// MULTIPLE detections per frame where OFDM dynamic-range variations
// straddle the threshold, then exactly one clean detection per frame.
// Runs on the deterministic parallel sweep engine (core/sweep.h).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/presets.h"
#include "core/sweep.h"
#include "phy80211/transmitter.h"

using namespace rjf;

int main() {
  bench::print_header(
      "bench_fig8_energy — energy differentiator P_det vs SNR",
      "Fig. 8 (full WiFi frames, 10 dB energy threshold, FA = 0/s)");

  auto config = core::energy_reactive_preset(1e-4, 10.0);

  std::vector<std::uint8_t> psdu(310, 0xA5);
  phy80211::Transmitter tx({phy80211::Rate::kMbps54, 0x5D});
  const dsp::cvec full_frame = tx.transmit(psdu);

  const std::size_t frames = bench::frames_per_point();
  std::printf("frames per point: %zu (paper used 10000), %u worker threads\n\n",
              frames, bench::resolved_sweep_threads());

  const std::vector<double> snrs = {0.0, 3.0,  6.0,  7.0,  8.0, 9.0,
                                    10.0, 11.0, 12.0, 15.0, 20.0};
  core::SweepConfig sweep;
  sweep.trials_per_point = frames;
  sweep.threads = bench::sweep_threads();
  sweep.seed = 0xF18;
  core::DetectionRunConfig base;
  const auto report = core::run_detection_sweep(
      config, full_frame, core::DetectorTap::kEnergyHigh, base, snrs, sweep);

  std::printf("%8s %12s %18s\n", "SNR(dB)", "P_det", "detections/frame");
  for (const auto& point : report.points)
    std::printf("%8.1f %12.3f %18.2f\n", point.snr_db,
                point.result.probability, point.result.detections_per_frame);
  std::printf("\nsweep wall time: %.2f s (%.0f trials/s, %zu shards)\n",
              report.wall_seconds, report.trials_per_second(), report.shards);
  std::printf(
      "\nexpected shape (paper): zero detection below the threshold region,\n"
      "an over-triggering band (detections/frame > 1) where signal+noise\n"
      "dynamic range straddles the 10 dB threshold, settling to exactly one\n"
      "detection per frame above it. Our detector turns on near the\n"
      "configured 10 dB (physically consistent); the paper observed the\n"
      "band at lower SNR — see EXPERIMENTS.md for the discussion.\n");
  bench::print_footer();
  return 0;
}
