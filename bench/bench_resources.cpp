// Figs. 3-4 resource boxes — FPGA resource usage of the custom DSP core's
// blocks and overall utilisation of the N210's Spartan-3A DSP 3400.
#include <cstdio>

#include "bench/bench_util.h"
#include "fpga/resource_model.h"

using namespace rjf;

int main() {
  bench::print_header("bench_resources — FPGA resource report",
                      "resource boxes in Fig. 3 (correlator) and Fig. 4 "
                      "(energy differentiator)");

  std::printf("%-24s %8s %8s %8s %8s %8s %8s\n", "block", "slices", "FFs",
              "BRAMs", "LUTs", "IOBs", "DSP48");
  for (const auto& r : fpga::block_resources())
    std::printf("%-24s %8u %8u %8u %8u %8u %8u\n", r.block.c_str(), r.slices,
                r.ffs, r.brams, r.luts, r.iobs, r.dsp48);
  const auto total = fpga::total_resources();
  std::printf("%-24s %8u %8u %8u %8u %8u %8u\n", "TOTAL", total.slices,
              total.ffs, total.brams, total.luts, total.iobs, total.dsp48);

  const auto u = fpga::utilisation();
  std::printf("\nXC3SD3400A utilisation: slices %.1f%%, FFs %.1f%%, BRAMs "
              "%.1f%%, LUTs %.1f%%, DSP48 %.1f%%\n",
              u.slices_pct, u.ffs_pct, u.brams_pct, u.luts_pct, u.dsp48_pct);
  std::printf(
      "paper values: cross-correlator {2613 slices, 2647 FFs, 12 BRAMs,\n"
      "2818 LUTs, 2 DSP48}; energy differentiator {1262 slices, 1313 FFs,\n"
      "0 BRAMs, 2513 LUTs, 6 DSP48}. Remaining rows are width-derived\n"
      "estimates for blocks whose boxes the paper does not print.\n");
  bench::print_footer();
  return 0;
}
