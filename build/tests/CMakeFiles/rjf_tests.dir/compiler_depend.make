# Empty compiler generated dependencies file for rjf_tests.
# This may be replaced when dependencies are built.
