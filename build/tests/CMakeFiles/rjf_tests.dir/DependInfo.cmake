
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baseline_countermeasure.cpp" "tests/CMakeFiles/rjf_tests.dir/test_baseline_countermeasure.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_baseline_countermeasure.cpp.o.d"
  "/root/repo/tests/test_channel.cpp" "tests/CMakeFiles/rjf_tests.dir/test_channel.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_channel.cpp.o.d"
  "/root/repo/tests/test_core_jammer.cpp" "tests/CMakeFiles/rjf_tests.dir/test_core_jammer.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_core_jammer.cpp.o.d"
  "/root/repo/tests/test_core_templates_calibration.cpp" "tests/CMakeFiles/rjf_tests.dir/test_core_templates_calibration.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_core_templates_calibration.cpp.o.d"
  "/root/repo/tests/test_dsp_cic.cpp" "tests/CMakeFiles/rjf_tests.dir/test_dsp_cic.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_dsp_cic.cpp.o.d"
  "/root/repo/tests/test_dsp_db.cpp" "tests/CMakeFiles/rjf_tests.dir/test_dsp_db.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_dsp_db.cpp.o.d"
  "/root/repo/tests/test_dsp_fft.cpp" "tests/CMakeFiles/rjf_tests.dir/test_dsp_fft.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_dsp_fft.cpp.o.d"
  "/root/repo/tests/test_dsp_fir.cpp" "tests/CMakeFiles/rjf_tests.dir/test_dsp_fir.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_dsp_fir.cpp.o.d"
  "/root/repo/tests/test_dsp_misc.cpp" "tests/CMakeFiles/rjf_tests.dir/test_dsp_misc.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_dsp_misc.cpp.o.d"
  "/root/repo/tests/test_dsp_resampler.cpp" "tests/CMakeFiles/rjf_tests.dir/test_dsp_resampler.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_dsp_resampler.cpp.o.d"
  "/root/repo/tests/test_dsp_rng.cpp" "tests/CMakeFiles/rjf_tests.dir/test_dsp_rng.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_dsp_rng.cpp.o.d"
  "/root/repo/tests/test_dsp_types.cpp" "tests/CMakeFiles/rjf_tests.dir/test_dsp_types.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_dsp_types.cpp.o.d"
  "/root/repo/tests/test_event_builder.cpp" "tests/CMakeFiles/rjf_tests.dir/test_event_builder.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_event_builder.cpp.o.d"
  "/root/repo/tests/test_fpga_cross_correlator.cpp" "tests/CMakeFiles/rjf_tests.dir/test_fpga_cross_correlator.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_fpga_cross_correlator.cpp.o.d"
  "/root/repo/tests/test_fpga_dsp_core.cpp" "tests/CMakeFiles/rjf_tests.dir/test_fpga_dsp_core.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_fpga_dsp_core.cpp.o.d"
  "/root/repo/tests/test_fpga_energy_differentiator.cpp" "tests/CMakeFiles/rjf_tests.dir/test_fpga_energy_differentiator.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_fpga_energy_differentiator.cpp.o.d"
  "/root/repo/tests/test_fpga_jammer_controller.cpp" "tests/CMakeFiles/rjf_tests.dir/test_fpga_jammer_controller.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_fpga_jammer_controller.cpp.o.d"
  "/root/repo/tests/test_fpga_register_file.cpp" "tests/CMakeFiles/rjf_tests.dir/test_fpga_register_file.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_fpga_register_file.cpp.o.d"
  "/root/repo/tests/test_fpga_resource_model.cpp" "tests/CMakeFiles/rjf_tests.dir/test_fpga_resource_model.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_fpga_resource_model.cpp.o.d"
  "/root/repo/tests/test_fpga_trigger_fsm.cpp" "tests/CMakeFiles/rjf_tests.dir/test_fpga_trigger_fsm.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_fpga_trigger_fsm.cpp.o.d"
  "/root/repo/tests/test_full_path_properties.cpp" "tests/CMakeFiles/rjf_tests.dir/test_full_path_properties.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_full_path_properties.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/rjf_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_multipath.cpp" "tests/CMakeFiles/rjf_tests.dir/test_multipath.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_multipath.cpp.o.d"
  "/root/repo/tests/test_net_mac_iperf.cpp" "tests/CMakeFiles/rjf_tests.dir/test_net_mac_iperf.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_net_mac_iperf.cpp.o.d"
  "/root/repo/tests/test_net_wifi_network.cpp" "tests/CMakeFiles/rjf_tests.dir/test_net_wifi_network.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_net_wifi_network.cpp.o.d"
  "/root/repo/tests/test_phy80211_bits_scrambler.cpp" "tests/CMakeFiles/rjf_tests.dir/test_phy80211_bits_scrambler.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_phy80211_bits_scrambler.cpp.o.d"
  "/root/repo/tests/test_phy80211_convolutional.cpp" "tests/CMakeFiles/rjf_tests.dir/test_phy80211_convolutional.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_phy80211_convolutional.cpp.o.d"
  "/root/repo/tests/test_phy80211_mapping.cpp" "tests/CMakeFiles/rjf_tests.dir/test_phy80211_mapping.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_phy80211_mapping.cpp.o.d"
  "/root/repo/tests/test_phy80211_ofdm_preamble.cpp" "tests/CMakeFiles/rjf_tests.dir/test_phy80211_ofdm_preamble.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_phy80211_ofdm_preamble.cpp.o.d"
  "/root/repo/tests/test_phy80211_txrx.cpp" "tests/CMakeFiles/rjf_tests.dir/test_phy80211_txrx.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_phy80211_txrx.cpp.o.d"
  "/root/repo/tests/test_phy80211b.cpp" "tests/CMakeFiles/rjf_tests.dir/test_phy80211b.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_phy80211b.cpp.o.d"
  "/root/repo/tests/test_phy80216.cpp" "tests/CMakeFiles/rjf_tests.dir/test_phy80216.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_phy80216.cpp.o.d"
  "/root/repo/tests/test_radio_adc_dac.cpp" "tests/CMakeFiles/rjf_tests.dir/test_radio_adc_dac.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_radio_adc_dac.cpp.o.d"
  "/root/repo/tests/test_radio_chains.cpp" "tests/CMakeFiles/rjf_tests.dir/test_radio_chains.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_radio_chains.cpp.o.d"
  "/root/repo/tests/test_radio_usrp.cpp" "tests/CMakeFiles/rjf_tests.dir/test_radio_usrp.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_radio_usrp.cpp.o.d"
  "/root/repo/tests/test_secure.cpp" "tests/CMakeFiles/rjf_tests.dir/test_secure.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_secure.cpp.o.d"
  "/root/repo/tests/test_secure_sweeps.cpp" "tests/CMakeFiles/rjf_tests.dir/test_secure_sweeps.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_secure_sweeps.cpp.o.d"
  "/root/repo/tests/test_soft_decisions_psd.cpp" "tests/CMakeFiles/rjf_tests.dir/test_soft_decisions_psd.cpp.o" "gcc" "tests/CMakeFiles/rjf_tests.dir/test_soft_decisions_psd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rjf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rjf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/secure/CMakeFiles/rjf_secure.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/rjf_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/rjf_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/phy80211/CMakeFiles/rjf_phy80211.dir/DependInfo.cmake"
  "/root/repo/build/src/phy80211b/CMakeFiles/rjf_phy80211b.dir/DependInfo.cmake"
  "/root/repo/build/src/phy80216/CMakeFiles/rjf_phy80216.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/rjf_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/rjf_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/rjf_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
