file(REMOVE_RECURSE
  "CMakeFiles/packet_injection.dir/packet_injection.cpp.o"
  "CMakeFiles/packet_injection.dir/packet_injection.cpp.o.d"
  "packet_injection"
  "packet_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
