# Empty compiler generated dependencies file for packet_injection.
# This may be replaced when dependencies are built.
