# Empty dependencies file for wifi_jamming_lab.
# This may be replaced when dependencies are built.
