file(REMOVE_RECURSE
  "CMakeFiles/wifi_jamming_lab.dir/wifi_jamming_lab.cpp.o"
  "CMakeFiles/wifi_jamming_lab.dir/wifi_jamming_lab.cpp.o.d"
  "wifi_jamming_lab"
  "wifi_jamming_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wifi_jamming_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
