# Empty compiler generated dependencies file for wimax_downlink_jam.
# This may be replaced when dependencies are built.
