file(REMOVE_RECURSE
  "CMakeFiles/wimax_downlink_jam.dir/wimax_downlink_jam.cpp.o"
  "CMakeFiles/wimax_downlink_jam.dir/wimax_downlink_jam.cpp.o.d"
  "wimax_downlink_jam"
  "wimax_downlink_jam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wimax_downlink_jam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
