file(REMOVE_RECURSE
  "CMakeFiles/secure_schemes.dir/secure_schemes.cpp.o"
  "CMakeFiles/secure_schemes.dir/secure_schemes.cpp.o.d"
  "secure_schemes"
  "secure_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
