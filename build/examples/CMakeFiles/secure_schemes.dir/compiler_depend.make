# Empty compiler generated dependencies file for secure_schemes.
# This may be replaced when dependencies are built.
