# Empty dependencies file for detector_tuning.
# This may be replaced when dependencies are built.
