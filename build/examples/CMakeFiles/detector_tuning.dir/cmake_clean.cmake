file(REMOVE_RECURSE
  "CMakeFiles/detector_tuning.dir/detector_tuning.cpp.o"
  "CMakeFiles/detector_tuning.dir/detector_tuning.cpp.o.d"
  "detector_tuning"
  "detector_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detector_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
