file(REMOVE_RECURSE
  "CMakeFiles/bench_fabric_throughput.dir/bench_fabric_throughput.cpp.o"
  "CMakeFiles/bench_fabric_throughput.dir/bench_fabric_throughput.cpp.o.d"
  "bench_fabric_throughput"
  "bench_fabric_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fabric_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
