
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_energy.cpp" "bench/CMakeFiles/bench_fig8_energy.dir/bench_fig8_energy.cpp.o" "gcc" "bench/CMakeFiles/bench_fig8_energy.dir/bench_fig8_energy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rjf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rjf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/secure/CMakeFiles/rjf_secure.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/rjf_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/rjf_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/phy80211/CMakeFiles/rjf_phy80211.dir/DependInfo.cmake"
  "/root/repo/build/src/phy80211b/CMakeFiles/rjf_phy80211b.dir/DependInfo.cmake"
  "/root/repo/build/src/phy80216/CMakeFiles/rjf_phy80216.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/rjf_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/rjf_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/rjf_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
