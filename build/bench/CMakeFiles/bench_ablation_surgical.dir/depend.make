# Empty dependencies file for bench_ablation_surgical.
# This may be replaced when dependencies are built.
