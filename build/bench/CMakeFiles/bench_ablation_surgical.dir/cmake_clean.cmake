file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_surgical.dir/bench_ablation_surgical.cpp.o"
  "CMakeFiles/bench_ablation_surgical.dir/bench_ablation_surgical.cpp.o.d"
  "bench_ablation_surgical"
  "bench_ablation_surgical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_surgical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
