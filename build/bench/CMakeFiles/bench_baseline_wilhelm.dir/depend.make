# Empty dependencies file for bench_baseline_wilhelm.
# This may be replaced when dependencies are built.
