file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_wilhelm.dir/bench_baseline_wilhelm.cpp.o"
  "CMakeFiles/bench_baseline_wilhelm.dir/bench_baseline_wilhelm.cpp.o.d"
  "bench_baseline_wilhelm"
  "bench_baseline_wilhelm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_wilhelm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
