# Empty dependencies file for bench_ext_secure.
# This may be replaced when dependencies are built.
