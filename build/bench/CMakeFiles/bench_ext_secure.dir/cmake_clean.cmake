file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_secure.dir/bench_ext_secure.cpp.o"
  "CMakeFiles/bench_ext_secure.dir/bench_ext_secure.cpp.o.d"
  "bench_ext_secure"
  "bench_ext_secure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_secure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
