file(REMOVE_RECURSE
  "CMakeFiles/bench_timelines.dir/bench_timelines.cpp.o"
  "CMakeFiles/bench_timelines.dir/bench_timelines.cpp.o.d"
  "bench_timelines"
  "bench_timelines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_timelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
