# Empty compiler generated dependencies file for bench_timelines.
# This may be replaced when dependencies are built.
