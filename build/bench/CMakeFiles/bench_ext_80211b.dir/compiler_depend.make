# Empty compiler generated dependencies file for bench_ext_80211b.
# This may be replaced when dependencies are built.
