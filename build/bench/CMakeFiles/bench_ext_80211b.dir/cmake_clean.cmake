file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_80211b.dir/bench_ext_80211b.cpp.o"
  "CMakeFiles/bench_ext_80211b.dir/bench_ext_80211b.cpp.o.d"
  "bench_ext_80211b"
  "bench_ext_80211b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_80211b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
