file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_countermeasure.dir/bench_ext_countermeasure.cpp.o"
  "CMakeFiles/bench_ext_countermeasure.dir/bench_ext_countermeasure.cpp.o.d"
  "bench_ext_countermeasure"
  "bench_ext_countermeasure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_countermeasure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
