# Empty dependencies file for bench_fig7_short_preamble.
# This may be replaced when dependencies are built.
