file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_short_preamble.dir/bench_fig7_short_preamble.cpp.o"
  "CMakeFiles/bench_fig7_short_preamble.dir/bench_fig7_short_preamble.cpp.o.d"
  "bench_fig7_short_preamble"
  "bench_fig7_short_preamble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_short_preamble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
