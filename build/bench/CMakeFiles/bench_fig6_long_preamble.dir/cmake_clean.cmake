file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_long_preamble.dir/bench_fig6_long_preamble.cpp.o"
  "CMakeFiles/bench_fig6_long_preamble.dir/bench_fig6_long_preamble.cpp.o.d"
  "bench_fig6_long_preamble"
  "bench_fig6_long_preamble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_long_preamble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
