file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_prr.dir/bench_fig11_prr.cpp.o"
  "CMakeFiles/bench_fig11_prr.dir/bench_fig11_prr.cpp.o.d"
  "bench_fig11_prr"
  "bench_fig11_prr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_prr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
