# Empty dependencies file for bench_fig11_prr.
# This may be replaced when dependencies are built.
