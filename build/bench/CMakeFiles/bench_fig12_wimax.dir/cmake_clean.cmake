file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_wimax.dir/bench_fig12_wimax.cpp.o"
  "CMakeFiles/bench_fig12_wimax.dir/bench_fig12_wimax.cpp.o.d"
  "bench_fig12_wimax"
  "bench_fig12_wimax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_wimax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
