# Empty dependencies file for bench_fig12_wimax.
# This may be replaced when dependencies are built.
