# Empty compiler generated dependencies file for rjf_baseline.
# This may be replaced when dependencies are built.
