
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/wilhelm_jammer.cpp" "src/baseline/CMakeFiles/rjf_baseline.dir/wilhelm_jammer.cpp.o" "gcc" "src/baseline/CMakeFiles/rjf_baseline.dir/wilhelm_jammer.cpp.o.d"
  "/root/repo/src/baseline/zigbee.cpp" "src/baseline/CMakeFiles/rjf_baseline.dir/zigbee.cpp.o" "gcc" "src/baseline/CMakeFiles/rjf_baseline.dir/zigbee.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/rjf_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
