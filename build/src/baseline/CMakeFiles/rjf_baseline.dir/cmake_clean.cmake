file(REMOVE_RECURSE
  "CMakeFiles/rjf_baseline.dir/wilhelm_jammer.cpp.o"
  "CMakeFiles/rjf_baseline.dir/wilhelm_jammer.cpp.o.d"
  "CMakeFiles/rjf_baseline.dir/zigbee.cpp.o"
  "CMakeFiles/rjf_baseline.dir/zigbee.cpp.o.d"
  "librjf_baseline.a"
  "librjf_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rjf_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
