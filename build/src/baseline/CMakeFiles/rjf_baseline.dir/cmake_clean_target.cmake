file(REMOVE_RECURSE
  "librjf_baseline.a"
)
