file(REMOVE_RECURSE
  "CMakeFiles/rjf_phy80211.dir/bits.cpp.o"
  "CMakeFiles/rjf_phy80211.dir/bits.cpp.o.d"
  "CMakeFiles/rjf_phy80211.dir/constellation.cpp.o"
  "CMakeFiles/rjf_phy80211.dir/constellation.cpp.o.d"
  "CMakeFiles/rjf_phy80211.dir/convolutional.cpp.o"
  "CMakeFiles/rjf_phy80211.dir/convolutional.cpp.o.d"
  "CMakeFiles/rjf_phy80211.dir/interleaver.cpp.o"
  "CMakeFiles/rjf_phy80211.dir/interleaver.cpp.o.d"
  "CMakeFiles/rjf_phy80211.dir/ofdm.cpp.o"
  "CMakeFiles/rjf_phy80211.dir/ofdm.cpp.o.d"
  "CMakeFiles/rjf_phy80211.dir/preamble.cpp.o"
  "CMakeFiles/rjf_phy80211.dir/preamble.cpp.o.d"
  "CMakeFiles/rjf_phy80211.dir/rates.cpp.o"
  "CMakeFiles/rjf_phy80211.dir/rates.cpp.o.d"
  "CMakeFiles/rjf_phy80211.dir/receiver.cpp.o"
  "CMakeFiles/rjf_phy80211.dir/receiver.cpp.o.d"
  "CMakeFiles/rjf_phy80211.dir/scrambler.cpp.o"
  "CMakeFiles/rjf_phy80211.dir/scrambler.cpp.o.d"
  "CMakeFiles/rjf_phy80211.dir/signal_field.cpp.o"
  "CMakeFiles/rjf_phy80211.dir/signal_field.cpp.o.d"
  "CMakeFiles/rjf_phy80211.dir/transmitter.cpp.o"
  "CMakeFiles/rjf_phy80211.dir/transmitter.cpp.o.d"
  "librjf_phy80211.a"
  "librjf_phy80211.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rjf_phy80211.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
