# Empty dependencies file for rjf_phy80211.
# This may be replaced when dependencies are built.
