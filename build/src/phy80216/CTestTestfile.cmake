# CMake generated Testfile for 
# Source directory: /root/repo/src/phy80216
# Build directory: /root/repo/build/src/phy80216
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
