# Empty dependencies file for rjf_phy80216.
# This may be replaced when dependencies are built.
