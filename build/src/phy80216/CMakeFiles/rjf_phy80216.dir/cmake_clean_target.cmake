file(REMOVE_RECURSE
  "librjf_phy80216.a"
)
