file(REMOVE_RECURSE
  "CMakeFiles/rjf_phy80216.dir/frame.cpp.o"
  "CMakeFiles/rjf_phy80216.dir/frame.cpp.o.d"
  "CMakeFiles/rjf_phy80216.dir/pn_sequence.cpp.o"
  "CMakeFiles/rjf_phy80216.dir/pn_sequence.cpp.o.d"
  "CMakeFiles/rjf_phy80216.dir/preamble.cpp.o"
  "CMakeFiles/rjf_phy80216.dir/preamble.cpp.o.d"
  "librjf_phy80216.a"
  "librjf_phy80216.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rjf_phy80216.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
