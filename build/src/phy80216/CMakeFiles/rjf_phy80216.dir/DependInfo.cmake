
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy80216/frame.cpp" "src/phy80216/CMakeFiles/rjf_phy80216.dir/frame.cpp.o" "gcc" "src/phy80216/CMakeFiles/rjf_phy80216.dir/frame.cpp.o.d"
  "/root/repo/src/phy80216/pn_sequence.cpp" "src/phy80216/CMakeFiles/rjf_phy80216.dir/pn_sequence.cpp.o" "gcc" "src/phy80216/CMakeFiles/rjf_phy80216.dir/pn_sequence.cpp.o.d"
  "/root/repo/src/phy80216/preamble.cpp" "src/phy80216/CMakeFiles/rjf_phy80216.dir/preamble.cpp.o" "gcc" "src/phy80216/CMakeFiles/rjf_phy80216.dir/preamble.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/rjf_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
