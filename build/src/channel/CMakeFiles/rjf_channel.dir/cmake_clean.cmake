file(REMOVE_RECURSE
  "CMakeFiles/rjf_channel.dir/awgn.cpp.o"
  "CMakeFiles/rjf_channel.dir/awgn.cpp.o.d"
  "CMakeFiles/rjf_channel.dir/five_port.cpp.o"
  "CMakeFiles/rjf_channel.dir/five_port.cpp.o.d"
  "CMakeFiles/rjf_channel.dir/meters.cpp.o"
  "CMakeFiles/rjf_channel.dir/meters.cpp.o.d"
  "CMakeFiles/rjf_channel.dir/multipath.cpp.o"
  "CMakeFiles/rjf_channel.dir/multipath.cpp.o.d"
  "librjf_channel.a"
  "librjf_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rjf_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
