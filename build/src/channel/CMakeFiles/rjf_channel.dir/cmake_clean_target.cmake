file(REMOVE_RECURSE
  "librjf_channel.a"
)
