# Empty dependencies file for rjf_channel.
# This may be replaced when dependencies are built.
