# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("dsp")
subdirs("fpga")
subdirs("radio")
subdirs("phy80211")
subdirs("phy80211b")
subdirs("phy80216")
subdirs("channel")
subdirs("net")
subdirs("core")
subdirs("secure")
subdirs("baseline")
