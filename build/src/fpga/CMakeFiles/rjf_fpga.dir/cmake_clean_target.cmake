file(REMOVE_RECURSE
  "librjf_fpga.a"
)
