
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpga/cross_correlator.cpp" "src/fpga/CMakeFiles/rjf_fpga.dir/cross_correlator.cpp.o" "gcc" "src/fpga/CMakeFiles/rjf_fpga.dir/cross_correlator.cpp.o.d"
  "/root/repo/src/fpga/dsp_core.cpp" "src/fpga/CMakeFiles/rjf_fpga.dir/dsp_core.cpp.o" "gcc" "src/fpga/CMakeFiles/rjf_fpga.dir/dsp_core.cpp.o.d"
  "/root/repo/src/fpga/energy_differentiator.cpp" "src/fpga/CMakeFiles/rjf_fpga.dir/energy_differentiator.cpp.o" "gcc" "src/fpga/CMakeFiles/rjf_fpga.dir/energy_differentiator.cpp.o.d"
  "/root/repo/src/fpga/jammer_controller.cpp" "src/fpga/CMakeFiles/rjf_fpga.dir/jammer_controller.cpp.o" "gcc" "src/fpga/CMakeFiles/rjf_fpga.dir/jammer_controller.cpp.o.d"
  "/root/repo/src/fpga/register_file.cpp" "src/fpga/CMakeFiles/rjf_fpga.dir/register_file.cpp.o" "gcc" "src/fpga/CMakeFiles/rjf_fpga.dir/register_file.cpp.o.d"
  "/root/repo/src/fpga/resource_model.cpp" "src/fpga/CMakeFiles/rjf_fpga.dir/resource_model.cpp.o" "gcc" "src/fpga/CMakeFiles/rjf_fpga.dir/resource_model.cpp.o.d"
  "/root/repo/src/fpga/trigger_fsm.cpp" "src/fpga/CMakeFiles/rjf_fpga.dir/trigger_fsm.cpp.o" "gcc" "src/fpga/CMakeFiles/rjf_fpga.dir/trigger_fsm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/rjf_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
