file(REMOVE_RECURSE
  "CMakeFiles/rjf_fpga.dir/cross_correlator.cpp.o"
  "CMakeFiles/rjf_fpga.dir/cross_correlator.cpp.o.d"
  "CMakeFiles/rjf_fpga.dir/dsp_core.cpp.o"
  "CMakeFiles/rjf_fpga.dir/dsp_core.cpp.o.d"
  "CMakeFiles/rjf_fpga.dir/energy_differentiator.cpp.o"
  "CMakeFiles/rjf_fpga.dir/energy_differentiator.cpp.o.d"
  "CMakeFiles/rjf_fpga.dir/jammer_controller.cpp.o"
  "CMakeFiles/rjf_fpga.dir/jammer_controller.cpp.o.d"
  "CMakeFiles/rjf_fpga.dir/register_file.cpp.o"
  "CMakeFiles/rjf_fpga.dir/register_file.cpp.o.d"
  "CMakeFiles/rjf_fpga.dir/resource_model.cpp.o"
  "CMakeFiles/rjf_fpga.dir/resource_model.cpp.o.d"
  "CMakeFiles/rjf_fpga.dir/trigger_fsm.cpp.o"
  "CMakeFiles/rjf_fpga.dir/trigger_fsm.cpp.o.d"
  "librjf_fpga.a"
  "librjf_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rjf_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
