# Empty dependencies file for rjf_fpga.
# This may be replaced when dependencies are built.
