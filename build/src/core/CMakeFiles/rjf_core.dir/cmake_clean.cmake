file(REMOVE_RECURSE
  "CMakeFiles/rjf_core.dir/calibration.cpp.o"
  "CMakeFiles/rjf_core.dir/calibration.cpp.o.d"
  "CMakeFiles/rjf_core.dir/detection_experiment.cpp.o"
  "CMakeFiles/rjf_core.dir/detection_experiment.cpp.o.d"
  "CMakeFiles/rjf_core.dir/event_builder.cpp.o"
  "CMakeFiles/rjf_core.dir/event_builder.cpp.o.d"
  "CMakeFiles/rjf_core.dir/presets.cpp.o"
  "CMakeFiles/rjf_core.dir/presets.cpp.o.d"
  "CMakeFiles/rjf_core.dir/reactive_jammer.cpp.o"
  "CMakeFiles/rjf_core.dir/reactive_jammer.cpp.o.d"
  "CMakeFiles/rjf_core.dir/templates.cpp.o"
  "CMakeFiles/rjf_core.dir/templates.cpp.o.d"
  "librjf_core.a"
  "librjf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rjf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
