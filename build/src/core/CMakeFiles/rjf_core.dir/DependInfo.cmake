
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/calibration.cpp" "src/core/CMakeFiles/rjf_core.dir/calibration.cpp.o" "gcc" "src/core/CMakeFiles/rjf_core.dir/calibration.cpp.o.d"
  "/root/repo/src/core/detection_experiment.cpp" "src/core/CMakeFiles/rjf_core.dir/detection_experiment.cpp.o" "gcc" "src/core/CMakeFiles/rjf_core.dir/detection_experiment.cpp.o.d"
  "/root/repo/src/core/event_builder.cpp" "src/core/CMakeFiles/rjf_core.dir/event_builder.cpp.o" "gcc" "src/core/CMakeFiles/rjf_core.dir/event_builder.cpp.o.d"
  "/root/repo/src/core/presets.cpp" "src/core/CMakeFiles/rjf_core.dir/presets.cpp.o" "gcc" "src/core/CMakeFiles/rjf_core.dir/presets.cpp.o.d"
  "/root/repo/src/core/reactive_jammer.cpp" "src/core/CMakeFiles/rjf_core.dir/reactive_jammer.cpp.o" "gcc" "src/core/CMakeFiles/rjf_core.dir/reactive_jammer.cpp.o.d"
  "/root/repo/src/core/templates.cpp" "src/core/CMakeFiles/rjf_core.dir/templates.cpp.o" "gcc" "src/core/CMakeFiles/rjf_core.dir/templates.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/rjf_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/rjf_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/rjf_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/phy80211/CMakeFiles/rjf_phy80211.dir/DependInfo.cmake"
  "/root/repo/build/src/phy80211b/CMakeFiles/rjf_phy80211b.dir/DependInfo.cmake"
  "/root/repo/build/src/phy80216/CMakeFiles/rjf_phy80216.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/rjf_channel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
