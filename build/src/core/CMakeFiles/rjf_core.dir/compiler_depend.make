# Empty compiler generated dependencies file for rjf_core.
# This may be replaced when dependencies are built.
