file(REMOVE_RECURSE
  "librjf_core.a"
)
