file(REMOVE_RECURSE
  "librjf_phy80211b.a"
)
