# Empty dependencies file for rjf_phy80211b.
# This may be replaced when dependencies are built.
