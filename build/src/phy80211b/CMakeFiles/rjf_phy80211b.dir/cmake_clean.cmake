file(REMOVE_RECURSE
  "CMakeFiles/rjf_phy80211b.dir/barker.cpp.o"
  "CMakeFiles/rjf_phy80211b.dir/barker.cpp.o.d"
  "CMakeFiles/rjf_phy80211b.dir/cck.cpp.o"
  "CMakeFiles/rjf_phy80211b.dir/cck.cpp.o.d"
  "CMakeFiles/rjf_phy80211b.dir/dsss.cpp.o"
  "CMakeFiles/rjf_phy80211b.dir/dsss.cpp.o.d"
  "librjf_phy80211b.a"
  "librjf_phy80211b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rjf_phy80211b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
