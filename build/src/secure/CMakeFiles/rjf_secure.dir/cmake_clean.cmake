file(REMOVE_RECURSE
  "CMakeFiles/rjf_secure.dir/friendly.cpp.o"
  "CMakeFiles/rjf_secure.dir/friendly.cpp.o.d"
  "CMakeFiles/rjf_secure.dir/ijam.cpp.o"
  "CMakeFiles/rjf_secure.dir/ijam.cpp.o.d"
  "librjf_secure.a"
  "librjf_secure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rjf_secure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
