# Empty compiler generated dependencies file for rjf_secure.
# This may be replaced when dependencies are built.
