
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/secure/friendly.cpp" "src/secure/CMakeFiles/rjf_secure.dir/friendly.cpp.o" "gcc" "src/secure/CMakeFiles/rjf_secure.dir/friendly.cpp.o.d"
  "/root/repo/src/secure/ijam.cpp" "src/secure/CMakeFiles/rjf_secure.dir/ijam.cpp.o" "gcc" "src/secure/CMakeFiles/rjf_secure.dir/ijam.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/rjf_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
