file(REMOVE_RECURSE
  "librjf_secure.a"
)
