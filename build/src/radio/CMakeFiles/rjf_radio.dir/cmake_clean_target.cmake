file(REMOVE_RECURSE
  "librjf_radio.a"
)
