
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/radio/adc_dac.cpp" "src/radio/CMakeFiles/rjf_radio.dir/adc_dac.cpp.o" "gcc" "src/radio/CMakeFiles/rjf_radio.dir/adc_dac.cpp.o.d"
  "/root/repo/src/radio/ddc_duc.cpp" "src/radio/CMakeFiles/rjf_radio.dir/ddc_duc.cpp.o" "gcc" "src/radio/CMakeFiles/rjf_radio.dir/ddc_duc.cpp.o.d"
  "/root/repo/src/radio/frontend.cpp" "src/radio/CMakeFiles/rjf_radio.dir/frontend.cpp.o" "gcc" "src/radio/CMakeFiles/rjf_radio.dir/frontend.cpp.o.d"
  "/root/repo/src/radio/settings_bus.cpp" "src/radio/CMakeFiles/rjf_radio.dir/settings_bus.cpp.o" "gcc" "src/radio/CMakeFiles/rjf_radio.dir/settings_bus.cpp.o.d"
  "/root/repo/src/radio/usrp_n210.cpp" "src/radio/CMakeFiles/rjf_radio.dir/usrp_n210.cpp.o" "gcc" "src/radio/CMakeFiles/rjf_radio.dir/usrp_n210.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/rjf_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/rjf_fpga.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
