file(REMOVE_RECURSE
  "CMakeFiles/rjf_radio.dir/adc_dac.cpp.o"
  "CMakeFiles/rjf_radio.dir/adc_dac.cpp.o.d"
  "CMakeFiles/rjf_radio.dir/ddc_duc.cpp.o"
  "CMakeFiles/rjf_radio.dir/ddc_duc.cpp.o.d"
  "CMakeFiles/rjf_radio.dir/frontend.cpp.o"
  "CMakeFiles/rjf_radio.dir/frontend.cpp.o.d"
  "CMakeFiles/rjf_radio.dir/settings_bus.cpp.o"
  "CMakeFiles/rjf_radio.dir/settings_bus.cpp.o.d"
  "CMakeFiles/rjf_radio.dir/usrp_n210.cpp.o"
  "CMakeFiles/rjf_radio.dir/usrp_n210.cpp.o.d"
  "librjf_radio.a"
  "librjf_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rjf_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
