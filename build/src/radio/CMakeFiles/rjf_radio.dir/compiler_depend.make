# Empty compiler generated dependencies file for rjf_radio.
# This may be replaced when dependencies are built.
