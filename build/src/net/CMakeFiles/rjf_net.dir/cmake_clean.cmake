file(REMOVE_RECURSE
  "CMakeFiles/rjf_net.dir/arf.cpp.o"
  "CMakeFiles/rjf_net.dir/arf.cpp.o.d"
  "CMakeFiles/rjf_net.dir/iperf.cpp.o"
  "CMakeFiles/rjf_net.dir/iperf.cpp.o.d"
  "CMakeFiles/rjf_net.dir/jamming_detector.cpp.o"
  "CMakeFiles/rjf_net.dir/jamming_detector.cpp.o.d"
  "CMakeFiles/rjf_net.dir/mac_frame.cpp.o"
  "CMakeFiles/rjf_net.dir/mac_frame.cpp.o.d"
  "CMakeFiles/rjf_net.dir/wifi_network.cpp.o"
  "CMakeFiles/rjf_net.dir/wifi_network.cpp.o.d"
  "librjf_net.a"
  "librjf_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rjf_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
