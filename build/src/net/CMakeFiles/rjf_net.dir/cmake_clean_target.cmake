file(REMOVE_RECURSE
  "librjf_net.a"
)
