
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/arf.cpp" "src/net/CMakeFiles/rjf_net.dir/arf.cpp.o" "gcc" "src/net/CMakeFiles/rjf_net.dir/arf.cpp.o.d"
  "/root/repo/src/net/iperf.cpp" "src/net/CMakeFiles/rjf_net.dir/iperf.cpp.o" "gcc" "src/net/CMakeFiles/rjf_net.dir/iperf.cpp.o.d"
  "/root/repo/src/net/jamming_detector.cpp" "src/net/CMakeFiles/rjf_net.dir/jamming_detector.cpp.o" "gcc" "src/net/CMakeFiles/rjf_net.dir/jamming_detector.cpp.o.d"
  "/root/repo/src/net/mac_frame.cpp" "src/net/CMakeFiles/rjf_net.dir/mac_frame.cpp.o" "gcc" "src/net/CMakeFiles/rjf_net.dir/mac_frame.cpp.o.d"
  "/root/repo/src/net/wifi_network.cpp" "src/net/CMakeFiles/rjf_net.dir/wifi_network.cpp.o" "gcc" "src/net/CMakeFiles/rjf_net.dir/wifi_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/rjf_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/phy80211/CMakeFiles/rjf_phy80211.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/rjf_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rjf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/rjf_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/rjf_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/phy80211b/CMakeFiles/rjf_phy80211b.dir/DependInfo.cmake"
  "/root/repo/build/src/phy80216/CMakeFiles/rjf_phy80216.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
