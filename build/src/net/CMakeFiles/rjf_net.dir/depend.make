# Empty dependencies file for rjf_net.
# This may be replaced when dependencies are built.
