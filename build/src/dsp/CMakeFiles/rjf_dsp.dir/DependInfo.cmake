
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/cic.cpp" "src/dsp/CMakeFiles/rjf_dsp.dir/cic.cpp.o" "gcc" "src/dsp/CMakeFiles/rjf_dsp.dir/cic.cpp.o.d"
  "/root/repo/src/dsp/crc32.cpp" "src/dsp/CMakeFiles/rjf_dsp.dir/crc32.cpp.o" "gcc" "src/dsp/CMakeFiles/rjf_dsp.dir/crc32.cpp.o.d"
  "/root/repo/src/dsp/db.cpp" "src/dsp/CMakeFiles/rjf_dsp.dir/db.cpp.o" "gcc" "src/dsp/CMakeFiles/rjf_dsp.dir/db.cpp.o.d"
  "/root/repo/src/dsp/fft.cpp" "src/dsp/CMakeFiles/rjf_dsp.dir/fft.cpp.o" "gcc" "src/dsp/CMakeFiles/rjf_dsp.dir/fft.cpp.o.d"
  "/root/repo/src/dsp/fir.cpp" "src/dsp/CMakeFiles/rjf_dsp.dir/fir.cpp.o" "gcc" "src/dsp/CMakeFiles/rjf_dsp.dir/fir.cpp.o.d"
  "/root/repo/src/dsp/nco.cpp" "src/dsp/CMakeFiles/rjf_dsp.dir/nco.cpp.o" "gcc" "src/dsp/CMakeFiles/rjf_dsp.dir/nco.cpp.o.d"
  "/root/repo/src/dsp/noise.cpp" "src/dsp/CMakeFiles/rjf_dsp.dir/noise.cpp.o" "gcc" "src/dsp/CMakeFiles/rjf_dsp.dir/noise.cpp.o.d"
  "/root/repo/src/dsp/psd.cpp" "src/dsp/CMakeFiles/rjf_dsp.dir/psd.cpp.o" "gcc" "src/dsp/CMakeFiles/rjf_dsp.dir/psd.cpp.o.d"
  "/root/repo/src/dsp/resampler.cpp" "src/dsp/CMakeFiles/rjf_dsp.dir/resampler.cpp.o" "gcc" "src/dsp/CMakeFiles/rjf_dsp.dir/resampler.cpp.o.d"
  "/root/repo/src/dsp/rng.cpp" "src/dsp/CMakeFiles/rjf_dsp.dir/rng.cpp.o" "gcc" "src/dsp/CMakeFiles/rjf_dsp.dir/rng.cpp.o.d"
  "/root/repo/src/dsp/types.cpp" "src/dsp/CMakeFiles/rjf_dsp.dir/types.cpp.o" "gcc" "src/dsp/CMakeFiles/rjf_dsp.dir/types.cpp.o.d"
  "/root/repo/src/dsp/window.cpp" "src/dsp/CMakeFiles/rjf_dsp.dir/window.cpp.o" "gcc" "src/dsp/CMakeFiles/rjf_dsp.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
