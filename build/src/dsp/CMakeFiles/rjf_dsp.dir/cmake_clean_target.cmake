file(REMOVE_RECURSE
  "librjf_dsp.a"
)
