# Empty compiler generated dependencies file for rjf_dsp.
# This may be replaced when dependencies are built.
