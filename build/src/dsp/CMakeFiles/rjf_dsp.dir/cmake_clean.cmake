file(REMOVE_RECURSE
  "CMakeFiles/rjf_dsp.dir/cic.cpp.o"
  "CMakeFiles/rjf_dsp.dir/cic.cpp.o.d"
  "CMakeFiles/rjf_dsp.dir/crc32.cpp.o"
  "CMakeFiles/rjf_dsp.dir/crc32.cpp.o.d"
  "CMakeFiles/rjf_dsp.dir/db.cpp.o"
  "CMakeFiles/rjf_dsp.dir/db.cpp.o.d"
  "CMakeFiles/rjf_dsp.dir/fft.cpp.o"
  "CMakeFiles/rjf_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/rjf_dsp.dir/fir.cpp.o"
  "CMakeFiles/rjf_dsp.dir/fir.cpp.o.d"
  "CMakeFiles/rjf_dsp.dir/nco.cpp.o"
  "CMakeFiles/rjf_dsp.dir/nco.cpp.o.d"
  "CMakeFiles/rjf_dsp.dir/noise.cpp.o"
  "CMakeFiles/rjf_dsp.dir/noise.cpp.o.d"
  "CMakeFiles/rjf_dsp.dir/psd.cpp.o"
  "CMakeFiles/rjf_dsp.dir/psd.cpp.o.d"
  "CMakeFiles/rjf_dsp.dir/resampler.cpp.o"
  "CMakeFiles/rjf_dsp.dir/resampler.cpp.o.d"
  "CMakeFiles/rjf_dsp.dir/rng.cpp.o"
  "CMakeFiles/rjf_dsp.dir/rng.cpp.o.d"
  "CMakeFiles/rjf_dsp.dir/types.cpp.o"
  "CMakeFiles/rjf_dsp.dir/types.cpp.o.d"
  "CMakeFiles/rjf_dsp.dir/window.cpp.o"
  "CMakeFiles/rjf_dsp.dir/window.cpp.o.d"
  "librjf_dsp.a"
  "librjf_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rjf_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
