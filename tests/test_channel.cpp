#include <gtest/gtest.h>

#include <cmath>

#include "channel/awgn.h"
#include "channel/five_port.h"
#include "channel/meters.h"
#include "dsp/db.h"

namespace rjf::channel {
namespace {

TEST(FivePort, Table1ValuesExact) {
  const FivePortNetwork net;
  // Spot-check against the paper's Table 1.
  EXPECT_DOUBLE_EQ(net.loss_db(1, 2), 51.0);
  EXPECT_DOUBLE_EQ(net.loss_db(1, 3), 25.2);
  EXPECT_DOUBLE_EQ(net.loss_db(1, 4), 38.4);
  EXPECT_DOUBLE_EQ(net.loss_db(1, 5), 39.3);
  EXPECT_DOUBLE_EQ(net.loss_db(2, 3), 31.7);
  EXPECT_DOUBLE_EQ(net.loss_db(2, 4), 32.0);
  EXPECT_DOUBLE_EQ(net.loss_db(2, 5), 32.8);
  EXPECT_DOUBLE_EQ(net.loss_db(3, 4), 19.1);
  EXPECT_DOUBLE_EQ(net.loss_db(5, 1), 39.2);  // the table's one asymmetry
  EXPECT_DOUBLE_EQ(net.loss_db(5, 3), 19.8);
}

TEST(FivePort, JammerTxRxIsolated) {
  const FivePortNetwork net;
  EXPECT_TRUE(std::isinf(net.loss_db(4, 5)));
  EXPECT_EQ(net.path_gain(4, 5), 0.0f);
}

TEST(FivePort, SamePortIsZeroLoss) {
  const FivePortNetwork net;
  EXPECT_DOUBLE_EQ(net.loss_db(3, 3), 0.0);
}

TEST(FivePort, PortRangeValidated) {
  const FivePortNetwork net;
  EXPECT_THROW((void)net.loss_db(0, 1), std::out_of_range);
  EXPECT_THROW((void)net.loss_db(1, 6), std::out_of_range);
}

TEST(FivePort, VariableAttenuatorOnJammerPath) {
  FivePortNetwork net;
  net.set_variable_attenuation_db(20.0);
  EXPECT_DOUBLE_EQ(net.loss_db(4, 1), 58.4);  // 38.4 + 20
  EXPECT_DOUBLE_EQ(net.loss_db(2, 4), 52.0);  // also on the way in
  // Paths not involving port 4 are unaffected.
  EXPECT_DOUBLE_EQ(net.loss_db(1, 2), 51.0);
}

TEST(FivePort, PathGainMatchesLoss) {
  const FivePortNetwork net;
  const float g = net.path_gain(1, 2);
  EXPECT_NEAR(20.0 * std::log10(g), -51.0, 1e-6);
}

TEST(FivePort, ReceiveSuperimposesWithLosses) {
  FivePortNetwork net;
  const dsp::cvec a(100, dsp::cfloat{1.0f, 0.0f});
  const dsp::cvec b(100, dsp::cfloat{0.0f, 1.0f});
  const FivePortNetwork::Contribution sources[] = {
      {1, a, 0},
      {2, b, 50},
  };
  const dsp::cvec rx = net.receive(3, sources, 200, 0.0, 1);
  ASSERT_EQ(rx.size(), 200u);
  const float g13 = net.path_gain(1, 3);
  const float g23 = net.path_gain(2, 3);
  EXPECT_NEAR(rx[10].real(), g13, 1e-6f);
  EXPECT_NEAR(rx[10].imag(), 0.0f, 1e-6f);
  EXPECT_NEAR(rx[60].imag(), g23, 1e-6f);   // b offset by 50
  EXPECT_NEAR(rx[60].real(), g13, 1e-6f);   // a still present
  EXPECT_EQ(rx[150], (dsp::cfloat{}));      // past both contributions
}

TEST(FivePort, ReceiveSkipsOwnPort) {
  FivePortNetwork net;
  const dsp::cvec a(10, dsp::cfloat{1.0f, 0.0f});
  const FivePortNetwork::Contribution sources[] = {{3, a, 0}};
  const dsp::cvec rx = net.receive(3, sources, 10, 0.0, 1);
  for (const auto s : rx) EXPECT_EQ(s, (dsp::cfloat{}));
}

TEST(FivePort, ReceiveAddsCalibratedNoise) {
  FivePortNetwork net;
  const dsp::cvec rx = net.receive(1, {}, 100000, 0.04, 7);
  EXPECT_NEAR(dsp::mean_power(rx), 0.04, 0.002);
}

TEST(Awgn, LinkHitsRequestedSnr) {
  dsp::cvec signal(20000, dsp::cfloat{0.5f, -0.5f});
  for (const double snr : {0.0, 10.0, 20.0}) {
    const dsp::cvec rx = awgn_link(signal, snr, 0.01, 3);
    // Received power = signal power + noise power.
    const double expected = 0.01 * dsp::ratio_from_db(snr) + 0.01;
    EXPECT_NEAR(dsp::mean_power(rx), expected, expected * 0.05) << snr;
  }
}

TEST(Awgn, TerminatedInputIsPureNoise) {
  const dsp::cvec rx = terminated_input(50000, 0.02, 9);
  EXPECT_NEAR(dsp::mean_power(rx), 0.02, 0.001);
}

TEST(Meters, SirDb) {
  EXPECT_NEAR(sir_db(1.0, 0.01), 20.0, 1e-9);
  EXPECT_EQ(sir_db(1.0, 0.0), 300.0);
}

TEST(Meters, SirAtPort) {
  // Client at unit power through 51 dB loss vs jammer at 1e-3 through
  // 38.4 dB: SIR = -51 - (-30 - 38.4) = 17.4 dB.
  EXPECT_NEAR(sir_at_port_db(1.0, 51.0, 1e-3, 38.4), 17.4, 1e-9);
}

TEST(Meters, ActivePower) {
  dsp::cvec x(10, dsp::cfloat{});
  bool active[10] = {};
  x[3] = dsp::cfloat{2.0f, 0.0f};
  active[3] = true;
  x[7] = dsp::cfloat{0.0f, 2.0f};
  active[7] = true;
  EXPECT_NEAR(active_power(x, active), 4.0, 1e-6);
  const bool none[10] = {};
  EXPECT_EQ(active_power(x, none), 0.0);
}

}  // namespace
}  // namespace rjf::channel
