#include "fpga/trigger_fsm.h"

#include <gtest/gtest.h>

namespace rjf::fpga {
namespace {

TEST(TriggerFsm, UnconfiguredNeverFires) {
  TriggerFsm fsm;
  fsm.configure(0, 0, 0, 100);
  DetectorEvents all{true, true, true};
  for (int k = 0; k < 100; ++k) EXPECT_FALSE(fsm.clock(all));
}

TEST(TriggerFsm, SingleStageFiresImmediately) {
  TriggerFsm fsm;
  fsm.configure(kEventXcorr, 0, 0, 100);
  EXPECT_FALSE(fsm.clock({}));
  EXPECT_TRUE(fsm.clock({.xcorr = true}));
  // Rearmed: fires again on the next matching event.
  EXPECT_TRUE(fsm.clock({.xcorr = true}));
}

TEST(TriggerFsm, MaskIsSelective) {
  TriggerFsm fsm;
  fsm.configure(kEventEnergyHigh, 0, 0, 100);
  EXPECT_FALSE(fsm.clock({.xcorr = true}));
  EXPECT_FALSE(fsm.clock({.energy_low = true}));
  EXPECT_TRUE(fsm.clock({.energy_high = true}));
}

TEST(TriggerFsm, OrWithinStage) {
  TriggerFsm fsm;
  fsm.configure(kEventXcorr | kEventEnergyHigh, 0, 0, 100);
  EXPECT_TRUE(fsm.clock({.xcorr = true}));
  EXPECT_TRUE(fsm.clock({.energy_high = true}));
}

TEST(TriggerFsm, TwoStageSequence) {
  TriggerFsm fsm;
  fsm.configure(kEventXcorr, kEventEnergyHigh, 0, 1000);
  EXPECT_FALSE(fsm.clock({.xcorr = true}));      // stage 0
  EXPECT_FALSE(fsm.clock({}));                   // waiting
  EXPECT_FALSE(fsm.clock({.xcorr = true}));      // wrong event for stage 1
  EXPECT_TRUE(fsm.clock({.energy_high = true})); // completes
}

TEST(TriggerFsm, ThreeStageSequence) {
  TriggerFsm fsm;
  fsm.configure(kEventXcorr, kEventEnergyHigh, kEventEnergyLow, 1000);
  EXPECT_FALSE(fsm.clock({.xcorr = true}));
  EXPECT_FALSE(fsm.clock({.energy_high = true}));
  EXPECT_FALSE(fsm.clock({.energy_high = true}));
  EXPECT_TRUE(fsm.clock({.energy_low = true}));
}

TEST(TriggerFsm, WindowExpiryRearms) {
  TriggerFsm fsm;
  fsm.configure(kEventXcorr, kEventEnergyHigh, 0, 10);
  EXPECT_FALSE(fsm.clock({.xcorr = true}));
  for (int k = 0; k < 20; ++k) EXPECT_FALSE(fsm.clock({}));
  // The sequence expired; an energy event alone must not complete it.
  EXPECT_FALSE(fsm.clock({.energy_high = true}));
  // But a fresh full sequence within the window fires.
  EXPECT_FALSE(fsm.clock({.xcorr = true}));
  EXPECT_TRUE(fsm.clock({.energy_high = true}));
}

TEST(TriggerFsm, MatchAtExactWindowBoundaryFires) {
  // Stage-1 match with elapsed_ == window_cycles: the last in-window clock.
  TriggerFsm fsm;
  fsm.configure(kEventXcorr, kEventEnergyHigh, 0, 10);
  EXPECT_FALSE(fsm.clock({.xcorr = true}));              // stage 0, elapsed 0
  for (int k = 0; k < 9; ++k) EXPECT_FALSE(fsm.clock({}));  // elapsed 1..9
  EXPECT_TRUE(fsm.clock({.energy_high = true}));         // elapsed 10 == W
}

TEST(TriggerFsm, MatchOnExpiryClockStillFires) {
  // Regression: a match asserted on the exact clock the window expires
  // (elapsed_ == window_cycles + 1) was dropped by the pre-fix code, which
  // rearmed before testing the match. Match priority over timeout: it fires.
  TriggerFsm fsm;
  fsm.configure(kEventXcorr, kEventEnergyHigh, 0, 10);
  EXPECT_FALSE(fsm.clock({.xcorr = true}));
  for (int k = 0; k < 10; ++k) EXPECT_FALSE(fsm.clock({}));  // elapsed 1..10
  EXPECT_TRUE(fsm.clock({.energy_high = true}));             // elapsed 11
}

TEST(TriggerFsm, OneClockPastExpiryRearms) {
  // An idle clock past the window rearms; a match after that is too late.
  TriggerFsm fsm;
  fsm.configure(kEventXcorr, kEventEnergyHigh, 0, 10);
  EXPECT_FALSE(fsm.clock({.xcorr = true}));
  for (int k = 0; k < 11; ++k) EXPECT_FALSE(fsm.clock({}));  // elapsed 1..11
  EXPECT_FALSE(fsm.engaged());                               // rearmed
  EXPECT_FALSE(fsm.clock({.energy_high = true}));
}

TEST(TriggerFsm, ExpiryClockMatchCannotExtendIndefinitely) {
  // Each boundary-clock match consumes a stage, so a 3-stage sequence can
  // overrun the window by at most two consecutive matching clocks.
  TriggerFsm fsm;
  fsm.configure(kEventXcorr, kEventEnergyHigh, kEventEnergyLow, 10);
  EXPECT_FALSE(fsm.clock({.xcorr = true}));
  for (int k = 0; k < 10; ++k) EXPECT_FALSE(fsm.clock({}));
  EXPECT_FALSE(fsm.clock({.energy_high = true}));  // elapsed 11: advances
  EXPECT_TRUE(fsm.clock({.energy_low = true}));    // elapsed 12: fires
  // But an idle clock between the boundary matches rearms as usual.
  EXPECT_FALSE(fsm.clock({.xcorr = true}));
  for (int k = 0; k < 10; ++k) EXPECT_FALSE(fsm.clock({}));
  EXPECT_FALSE(fsm.clock({.energy_high = true}));  // elapsed 11: advances
  EXPECT_FALSE(fsm.clock({}));                     // elapsed 12, no match
  EXPECT_FALSE(fsm.engaged());
  EXPECT_FALSE(fsm.clock({.energy_low = true}));   // sequence is gone
}

TEST(TriggerFsm, ZeroWindowMeansUnbounded) {
  TriggerFsm fsm;
  fsm.configure(kEventXcorr, kEventEnergyHigh, 0, 0);
  EXPECT_FALSE(fsm.clock({.xcorr = true}));
  for (int k = 0; k < 100000; ++k) ASSERT_FALSE(fsm.clock({}));
  EXPECT_TRUE(fsm.clock({.energy_high = true}));
}

TEST(TriggerFsm, SimultaneousEventsAdvanceOneStagePerClock) {
  TriggerFsm fsm;
  fsm.configure(kEventXcorr, kEventEnergyHigh, 0, 100);
  // Both events in one clock: only stage 0 consumes; the FSM needs another
  // clock with energy_high for stage 1.
  EXPECT_FALSE(fsm.clock({.xcorr = true, .energy_high = true}));
  EXPECT_TRUE(fsm.clock({.energy_high = true}));
}

TEST(TriggerFsm, LoadFromRegisters) {
  RegisterFile regs;
  regs.set_trigger_stages(kEventXcorr, kEventEnergyHigh, 0);
  regs.write(Reg::kTriggerWindow, 50);
  TriggerFsm fsm;
  fsm.load_from_registers(regs);
  EXPECT_FALSE(fsm.clock({.xcorr = true}));
  EXPECT_TRUE(fsm.clock({.energy_high = true}));
}

TEST(DetectorEvents, MaskEncoding) {
  EXPECT_EQ((DetectorEvents{true, false, false}).as_mask(), kEventXcorr);
  EXPECT_EQ((DetectorEvents{false, true, false}).as_mask(), kEventEnergyHigh);
  EXPECT_EQ((DetectorEvents{false, false, true}).as_mask(), kEventEnergyLow);
  EXPECT_EQ((DetectorEvents{true, true, true}).as_mask(),
            kEventXcorr | kEventEnergyHigh | kEventEnergyLow);
}

}  // namespace
}  // namespace rjf::fpga
