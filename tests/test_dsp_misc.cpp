// Covers NCO, moving sums, delay lines, CRC32, windows, and noise sources.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/crc32.h"
#include "dsp/db.h"
#include "dsp/moving_sum.h"
#include "dsp/nco.h"
#include "dsp/noise.h"
#include "dsp/window.h"

namespace rjf::dsp {
namespace {

TEST(Nco, UnitMagnitude) {
  Nco nco(1e6, 25e6);
  for (int k = 0; k < 1000; ++k) EXPECT_NEAR(std::abs(nco.step()), 1.0f, 1e-4f);
}

TEST(Nco, PhaseIncrementMatchesFrequency) {
  const double f = 3.3e6, rate = 25e6;
  Nco nco(f, rate);
  cfloat prev = nco.step();
  const double expected = 2.0 * std::numbers::pi * f / rate;
  for (int k = 0; k < 200; ++k) {
    const cfloat cur = nco.step();
    EXPECT_NEAR(std::arg(cur * std::conj(prev)), expected, 1e-5);
    prev = cur;
  }
}

TEST(Nco, NegativeFrequencyRotatesBackwards) {
  Nco nco(-2e6, 25e6);
  (void)nco.step();
  const cfloat a = nco.step();
  Nco pos(2e6, 25e6);
  (void)pos.step();
  const cfloat b = pos.step();
  EXPECT_NEAR(a.imag(), -b.imag(), 1e-5f);
  EXPECT_NEAR(a.real(), b.real(), 1e-5f);
}

TEST(Nco, FrequencyAccessorRoundTrips) {
  Nco nco(1.5e6, 25e6);
  EXPECT_NEAR(nco.frequency(), 1.5e6, 1.0);
  nco.set_frequency(-4e6);
  EXPECT_NEAR(nco.frequency(), -4e6, 1.0);
}

TEST(Nco, RejectsBadSampleRate) {
  EXPECT_THROW(Nco(1e6, 0.0), std::invalid_argument);
}

TEST(MovingSum, MatchesBruteForce) {
  MovingSum<std::uint64_t> ms(8);
  std::vector<std::uint64_t> history;
  for (std::uint64_t k = 1; k <= 50; ++k) {
    const std::uint64_t sum = ms.push(k * k);
    history.push_back(k * k);
    std::uint64_t expected = 0;
    const std::size_t start = history.size() > 8 ? history.size() - 8 : 0;
    for (std::size_t i = start; i < history.size(); ++i) expected += history[i];
    ASSERT_EQ(sum, expected) << "k=" << k;
  }
}

TEST(MovingSum, ResetZeroes) {
  MovingSumU64 ms(4);
  (void)ms.push(10);
  ms.reset();
  EXPECT_EQ(ms.sum(), 0u);
  EXPECT_EQ(ms.push(5), 5u);
}

TEST(MovingSum, ZeroLengthClampedToOne) {
  MovingSumU64 ms(0);
  EXPECT_EQ(ms.length(), 1u);
  EXPECT_EQ(ms.push(7), 7u);
  EXPECT_EQ(ms.push(3), 3u);
}

TEST(DelayLine, DelaysByExactlyN) {
  DelayLine<int> dl(5);
  for (int k = 0; k < 5; ++k) EXPECT_EQ(dl.push(k + 1), 0);
  for (int k = 5; k < 20; ++k) EXPECT_EQ(dl.push(k + 1), k - 4);
}

TEST(Crc32, KnownVector) {
  const std::string s = "123456789";
  const std::uint32_t crc = crc32(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  EXPECT_EQ(crc, 0xCBF43926u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  std::vector<std::uint8_t> data(257);
  for (std::size_t k = 0; k < data.size(); ++k)
    data[k] = static_cast<std::uint8_t>(k * 31 + 7);
  Crc32 inc;
  inc.update(std::span<const std::uint8_t>(data.data(), 100));
  inc.update(std::span<const std::uint8_t>(data.data() + 100, 157));
  EXPECT_EQ(inc.value(), crc32(data));
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> data(64, 0x5A);
  const std::uint32_t good = crc32(data);
  data[20] ^= 0x01;
  EXPECT_NE(crc32(data), good);
}

TEST(Window, RectIsAllOnes) {
  for (const float w : make_window(WindowType::kRect, 32))
    EXPECT_FLOAT_EQ(w, 1.0f);
}

TEST(Window, HannEndpointsZeroAndSymmetric) {
  const auto w = make_window(WindowType::kHann, 65);
  EXPECT_NEAR(w.front(), 0.0f, 1e-6f);
  EXPECT_NEAR(w.back(), 0.0f, 1e-6f);
  EXPECT_NEAR(w[32], 1.0f, 1e-6f);
  for (std::size_t k = 0; k < 32; ++k) EXPECT_NEAR(w[k], w[64 - k], 1e-6f);
}

TEST(Window, HammingAndBlackmanShapes) {
  const auto h = make_window(WindowType::kHamming, 33);
  EXPECT_NEAR(h.front(), 0.08f, 1e-3f);
  const auto b = make_window(WindowType::kBlackman, 33);
  EXPECT_NEAR(b.front(), 0.0f, 1e-3f);
  EXPECT_NEAR(b[16], 1.0f, 1e-3f);
}

TEST(NoiseSource, MeanPowerMatchesSetting) {
  NoiseSource src(0.25, 99);
  const cvec block = src.block(100000);
  EXPECT_NEAR(mean_power(block), 0.25, 0.01);
}

TEST(NoiseSource, AddToSuperimposes) {
  NoiseSource src(0.01, 5);
  cvec x(10000, cfloat{1.0f, 0.0f});
  src.add_to(x);
  EXPECT_NEAR(mean_power(x), 1.01, 0.01);
}

TEST(NoiseSource, DeterministicPerSeed) {
  NoiseSource a(1.0, 123), b(1.0, 123);
  for (int k = 0; k < 100; ++k) EXPECT_EQ(a.sample(), b.sample());
}

}  // namespace
}  // namespace rjf::dsp
