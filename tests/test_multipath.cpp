// Multipath channel model, and detection/decoding behaviour "under various
// channel conditions" (paper §6's operational claim).
#include <gtest/gtest.h>

#include "channel/multipath.h"
#include "core/detection_experiment.h"
#include "core/presets.h"
#include "dsp/db.h"
#include "dsp/noise.h"
#include "phy80211/receiver.h"
#include "phy80211/transmitter.h"

namespace rjf {
namespace {

TEST(Multipath, DeterministicPerSeed) {
  const channel::MultipathProfile profile;
  const channel::MultipathChannel a(profile, 42), b(profile, 42);
  ASSERT_EQ(a.taps().size(), b.taps().size());
  for (std::size_t k = 0; k < a.taps().size(); ++k)
    EXPECT_EQ(a.taps()[k], b.taps()[k]);
  const channel::MultipathChannel c(profile, 43);
  EXPECT_NE(a.taps(), c.taps());
}

TEST(Multipath, MeanGainNearUnityAcrossRealisations) {
  const channel::MultipathProfile profile;
  double acc = 0.0;
  const int trials = 500;
  for (int t = 0; t < trials; ++t)
    acc += channel::MultipathChannel(profile, 1000 + t).realised_gain();
  EXPECT_NEAR(acc / trials, 1.0, 0.1);
}

TEST(Multipath, FadingActuallyVaries) {
  const channel::MultipathProfile profile;
  double lo = 1e9, hi = 0.0;
  for (int t = 0; t < 200; ++t) {
    const double g = channel::MultipathChannel(profile, 2000 + t).realised_gain();
    lo = std::min(lo, g);
    hi = std::max(hi, g);
  }
  EXPECT_LT(lo, 0.3);  // deep fades exist
  EXPECT_GT(hi, 2.0);  // and constructive realisations
}

TEST(Multipath, SingleTapIsAPureScale) {
  channel::MultipathProfile profile;
  profile.num_taps = 1;
  const channel::MultipathChannel ch(profile, 7);
  const dsp::cvec in(64, dsp::cfloat{1.0f, 0.0f});
  const dsp::cvec out = ch.apply(in);
  for (std::size_t k = 1; k < out.size(); ++k) {
    EXPECT_FLOAT_EQ(out[k].real(), out[0].real());
    EXPECT_FLOAT_EQ(out[k].imag(), out[0].imag());
  }
}

TEST(Multipath, DelaySpreadSmearsAnImpulse) {
  channel::MultipathProfile profile;
  profile.num_taps = 4;
  const channel::MultipathChannel ch(profile, 11);
  dsp::cvec impulse(32, dsp::cfloat{});
  impulse[0] = dsp::cfloat{1.0f, 0.0f};
  const dsp::cvec out = ch.apply(impulse);
  int nonzero = 0;
  for (const auto s : out) nonzero += std::abs(s) > 1e-6f;
  EXPECT_EQ(nonzero, 4);  // one echo per tap at 50 ns spacing (>= 1 sample)
}

TEST(Multipath, OfdmSurvivesModerateDelaySpreadViaCp) {
  // Delay spreads inside the 0.8 us cyclic prefix must be equalised away
  // by the LTS-based channel estimate.
  channel::MultipathProfile profile;
  profile.num_taps = 3;
  profile.tap_spacing_s = 100e-9;
  profile.sample_rate_hz = 20e6;

  std::vector<std::uint8_t> psdu(200, 0x5E);
  phy80211::Transmitter tx({phy80211::Rate::kMbps12, 0x3B});
  const dsp::cvec clean = tx.transmit(psdu);

  int delivered = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    const channel::MultipathChannel ch(profile, 5000 + t);
    if (ch.realised_gain() < 0.25) continue;  // skip deep fades (rate would drop)
    dsp::cvec rx = ch.apply(clean);
    dsp::NoiseSource noise(1e-4, 100 + t);
    noise.add_to(rx);
    const auto r = phy80211::Receiver().receive(rx);
    delivered += (r.psdu == psdu);
  }
  EXPECT_GE(delivered, trials * 5 / 10);
}

TEST(Multipath, ShortPreambleDetectionDegradesGracefully) {
  // The sign-bit correlator keeps working through multipath: the STS's
  // periodicity survives convolution, so detection probability stays high
  // at good SNR even though each realisation distorts the template match.
  auto config = core::wifi_reactive_preset(1e-4, 0.52);
  core::ReactiveJammer jammer(config);

  std::vector<std::uint8_t> psdu(150, 0xA1);
  phy80211::Transmitter tx({phy80211::Rate::kMbps54, 0x5D});
  const dsp::cvec frame = tx.transmit(psdu);

  channel::MultipathProfile profile;
  profile.sample_rate_hz = 20e6;
  int detected = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    const channel::MultipathChannel ch(profile, 9000 + t);
    if (ch.realised_gain() < 0.25) continue;
    dsp::cvec faded = ch.apply(frame);
    core::DetectionRunConfig run;
    run.num_frames = 1;
    run.snr_db = 12.0;
    run.seed = 300 + t;
    const auto r = core::run_detection_experiment(
        jammer, faded, core::DetectorTap::kXcorr, run);
    detected += r.frames_detected;
  }
  EXPECT_GE(detected, trials * 6 / 10);
}

}  // namespace
}  // namespace rjf
