// 802.15.4 substrate, the Wilhelm et al. baseline jammer model, and the
// jamming-diagnosis countermeasure.
#include <gtest/gtest.h>

#include "baseline/wilhelm_jammer.h"
#include "baseline/zigbee.h"
#include "core/presets.h"
#include "dsp/db.h"
#include "net/jamming_detector.h"

namespace rjf {
namespace {

TEST(Zigbee, ChipSequencesAreDistinctAndQuasiOrthogonal) {
  for (unsigned a = 0; a < 16; ++a) {
    for (unsigned b = a + 1; b < 16; ++b) {
      const auto sa = baseline::chip_sequence(a);
      const auto sb = baseline::chip_sequence(b);
      int agreement = 0;
      for (std::size_t c = 0; c < sa.size(); ++c)
        agreement += (sa[c] == sb[c]) ? 1 : -1;
      // 802.15.4 sequences keep pairwise correlation well off the peak.
      EXPECT_LT(std::abs(agreement), 24) << a << "," << b;
    }
  }
}

TEST(Zigbee, FrameTimingMatchesStandard) {
  // SHR = 8 preamble + 2 SFD symbols = 10 symbols at 62.5 ksym/s = 160 us.
  EXPECT_NEAR(baseline::shr_duration_s(), 160e-6, 1e-9);
  // Max frame (127-byte PSDU): 12 + 254 symbols = 4.256 ms.
  EXPECT_NEAR(baseline::frame_duration_s(127), 4.256e-3, 1e-6);
}

TEST(Zigbee, FrameWaveformShape) {
  const std::vector<std::uint8_t> psdu(20, 0x5A);
  const auto wave = baseline::build_frame(psdu);
  // (12 + 40 symbols) x 16 samples each.
  EXPECT_EQ(wave.size(), 52u * 16u);
  EXPECT_NEAR(dsp::mean_power(wave), 1.0, 1e-3);
}

TEST(Wilhelm, LatencyRespectsTransportFloor) {
  baseline::WilhelmJammer jammer;
  for (int k = 0; k < 1000; ++k)
    EXPECT_GE(jammer.sample_reaction_s(), jammer.model().min_latency_s);
}

TEST(Wilhelm, CanJamZigbeeButNotWifiPreambles) {
  baseline::WilhelmJammer jammer;
  // 802.15.4 max frame is 4.256 ms: a ~35 us reaction leaves >98% of the
  // frame exposed — Wilhelm et al.'s result that Zigbee jamming is viable.
  int zigbee_hits = 0, wifi_preamble_hits = 0, wifi_ack_hits = 0;
  const int trials = 2000;
  for (int k = 0; k < trials; ++k) {
    if (jammer.fraction_jammable(baseline::frame_duration_s(127)) > 0.9)
      ++zigbee_hits;
    // 802.11g: PLCP preamble + SIGNAL is over by 20 us.
    if (jammer.hits_before(20e-6)) ++wifi_preamble_hits;
    // A 24 Mb/s ACK is fully gone after 28 us.
    if (jammer.hits_before(28e-6)) ++wifi_ack_hits;
  }
  EXPECT_GT(zigbee_hits, trials * 95 / 100);
  // Hitting inside the 20 us WiFi PLCP window requires a latency two
  // sigma below the mean — rare; surgical preamble jamming is out of reach.
  EXPECT_LT(wifi_preamble_hits, trials / 10);
  EXPECT_LT(wifi_ack_hits, trials / 3);  // mostly too slow even for ACKs
}

TEST(Countermeasure, VerdictLogic) {
  using net::JammingVerdict;
  EXPECT_EQ(net::diagnose({1.0, 0.0, 40.0, 100}), JammingVerdict::kHealthy);
  EXPECT_EQ(net::diagnose({0.1, 0.95, 40.0, 5}),
            JammingVerdict::kContinuousJamming);
  EXPECT_EQ(net::diagnose({0.1, 0.3, 40.0, 100}),
            JammingVerdict::kCongestedOrWeak);
  EXPECT_EQ(net::diagnose({0.1, 0.0, 12.0, 100}),
            JammingVerdict::kCongestedOrWeak);
  EXPECT_EQ(net::diagnose({0.1, 0.0, 40.0, 100}),
            JammingVerdict::kReactiveJamming);
}

// Regression: an idle strong-SNR link (zero frames attempted, no starved
// drops, so observe() synthesises pdr = 1.0) used to fall through the
// healthy branch's frames_attempted > 0 guard all the way to
// kReactiveJamming. No traffic is no evidence.
TEST(Countermeasure, IdleLinkIsNotReactiveJamming) {
  using net::JammingVerdict;
  EXPECT_EQ(net::diagnose({1.0, 0.0, 40.0, 0}), JammingVerdict::kNoTraffic);
  // Via observe(): a default (nothing sent, nothing dropped) run.
  net::WifiRunResult idle;
  const net::WifiNetworkConfig config;
  EXPECT_EQ(net::diagnose(net::observe(idle, config)),
            JammingVerdict::kNoTraffic);
  // A saturated medium still indicts a jammer even with zero attempts (the
  // client never got to transmit at all).
  EXPECT_EQ(net::diagnose({1.0, 0.95, 40.0, 0}),
            JammingVerdict::kContinuousJamming);
  // And zero-attempt windows with starvation evidence (observe() reports
  // pdr = 0.0) keep their pre-existing classification.
  EXPECT_EQ(net::diagnose({0.0, 0.0, 40.0, 0}),
            JammingVerdict::kReactiveJamming);
}

TEST(Countermeasure, ClassifiesSimulationRuns) {
  // Healthy link.
  {
    net::WifiNetworkConfig config;
    config.iperf.duration_s = 0.04;
    net::WifiNetworkSim sim(config);
    const auto run = sim.run();
    EXPECT_EQ(net::diagnose(net::observe(run, config)),
              net::JammingVerdict::kHealthy);
  }
  // Continuous jamming above the CCA threshold.
  {
    net::WifiNetworkConfig config;
    config.iperf.duration_s = 0.04;
    config.jammer = core::continuous_preset();
    config.jammer_tx_power = 1e-3;
    net::WifiNetworkSim sim(config);
    const auto run = sim.run();
    EXPECT_EQ(net::diagnose(net::observe(run, config)),
              net::JammingVerdict::kContinuousJamming);
  }
  // Reactive jamming at lethal power: PDR collapses, carrier stays clean,
  // RSSI stays high -> the consistency check flags it.
  {
    net::WifiNetworkConfig config;
    config.iperf.duration_s = 0.04;
    config.jammer = core::energy_reactive_preset(1e-4, 10.0);
    config.jammer_tx_power = 0.2;
    net::WifiNetworkSim sim(config);
    const auto run = sim.run();
    EXPECT_EQ(net::diagnose(net::observe(run, config)),
              net::JammingVerdict::kReactiveJamming);
  }
}

}  // namespace
}  // namespace rjf
