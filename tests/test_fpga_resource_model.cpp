#include "fpga/resource_model.h"

#include <gtest/gtest.h>

namespace rjf::fpga {
namespace {

TEST(ResourceModel, PaperFig3CorrelatorNumbers) {
  for (const auto& r : block_resources()) {
    if (r.block != "cross_correlator") continue;
    EXPECT_EQ(r.slices, 2613u);
    EXPECT_EQ(r.ffs, 2647u);
    EXPECT_EQ(r.brams, 12u);
    EXPECT_EQ(r.luts, 2818u);
    EXPECT_EQ(r.iobs, 0u);
    EXPECT_EQ(r.dsp48, 2u);
    return;
  }
  FAIL() << "cross_correlator row missing";
}

TEST(ResourceModel, PaperFig4EnergyNumbers) {
  for (const auto& r : block_resources()) {
    if (r.block != "energy_differentiator") continue;
    EXPECT_EQ(r.slices, 1262u);
    EXPECT_EQ(r.ffs, 1313u);
    EXPECT_EQ(r.brams, 0u);
    EXPECT_EQ(r.luts, 2513u);
    EXPECT_EQ(r.dsp48, 6u);
    return;
  }
  FAIL() << "energy_differentiator row missing";
}

TEST(ResourceModel, TotalsAreSums) {
  const auto total = total_resources();
  std::uint32_t slices = 0;
  for (const auto& r : block_resources()) slices += r.slices;
  EXPECT_EQ(total.slices, slices);
  EXPECT_GT(total.luts, 0u);
}

TEST(ResourceModel, FitsTheSpartan3ADsp3400) {
  const auto u = utilisation();
  EXPECT_LT(u.slices_pct, 100.0);
  EXPECT_LT(u.ffs_pct, 100.0);
  EXPECT_LT(u.brams_pct, 100.0);
  EXPECT_LT(u.luts_pct, 100.0);
  EXPECT_LT(u.dsp48_pct, 100.0);
  EXPECT_GT(u.slices_pct, 0.0);
}

TEST(ResourceModel, AllSixBlocksPresent) {
  EXPECT_EQ(block_resources().size(), 6u);
}

}  // namespace
}  // namespace rjf::fpga
