#include "core/event_builder.h"

#include <gtest/gtest.h>

#include "core/reactive_jammer.h"
#include "dsp/noise.h"
#include "dsp/resampler.h"
#include "phy80211/preamble.h"

namespace rjf::core {
namespace {

TEST(EventBuilder, BuildsWifiPersonality) {
  JammingEventBuilder builder;
  const auto config = builder.detect_wifi_short_preamble(0.059)
                          .white_noise()
                          .uptime(1e-4)
                          .build();
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->detection, DetectionMode::kCrossCorrelator);
  EXPECT_TRUE(config->xcorr_template.has_value());
  EXPECT_EQ(config->jam_uptime_samples, 2500u);
}

TEST(EventBuilder, CombinedDetectionViaOr) {
  JammingEventBuilder builder;
  const auto config = builder.detect_wimax_preamble(1, 0, 0.1)
                          .or_energy_rise(10.0)
                          .white_noise()
                          .uptime(1e-3)
                          .build();
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->detection, DetectionMode::kXcorrOrEnergy);
  EXPECT_DOUBLE_EQ(config->energy_high_db, 10.0);
}

TEST(EventBuilder, RequiresDetection) {
  JammingEventBuilder builder;
  const auto config = builder.white_noise().uptime(1e-4).build();
  EXPECT_FALSE(config.has_value());
  EXPECT_NE(builder.error().find("detection"), std::string::npos);
}

TEST(EventBuilder, RequiresUptime) {
  JammingEventBuilder builder;
  const auto config = builder.detect_energy_rise(10.0).build();
  EXPECT_FALSE(config.has_value());
  EXPECT_NE(builder.error().find("uptime"), std::string::npos);
}

TEST(EventBuilder, ContinuousNeedsNoUptime) {
  JammingEventBuilder builder;
  EXPECT_TRUE(builder.continuous().white_noise().build().has_value());
}

TEST(EventBuilder, OrEnergyRequiresCorrelatorFirst) {
  JammingEventBuilder builder;
  const auto config =
      builder.detect_energy_rise(10.0).or_energy_rise(10.0).uptime(1e-4).build();
  EXPECT_FALSE(config.has_value());
}

TEST(EventBuilder, DelayRangeValidated) {
  JammingEventBuilder builder;
  const auto config = builder.detect_energy_rise(10.0)
                          .delay(1.0)  // 1 s >> 16-bit register range
                          .uptime(1e-4)
                          .build();
  EXPECT_FALSE(config.has_value());
}

TEST(EventBuilder, DescribeIsHumanReadable) {
  JammingEventBuilder builder;
  (void)builder.detect_wifi_long_preamble(0.083)
      .replay_last_samples()
      .uptime(4e-5)
      .delay(2e-6);
  const std::string line = builder.describe();
  EXPECT_NE(line.find("WiFi LTS"), std::string::npos);
  EXPECT_NE(line.find("replay"), std::string::npos);
  EXPECT_NE(line.find("40.00 us"), std::string::npos);
  EXPECT_NE(line.find("2.00 us"), std::string::npos);
}

TEST(EventBuilder, BuiltConfigDrivesARealJammer) {
  JammingEventBuilder builder;
  const auto config = builder.detect_wifi_short_preamble(0.5)
                          .white_noise()
                          .uptime(4e-6)
                          .build();
  ASSERT_TRUE(config.has_value());
  ReactiveJammer jammer(*config);

  dsp::cvec sp;
  const auto period = phy80211::short_training_symbol();
  for (int rep = 0; rep < 10; ++rep)
    sp.insert(sp.end(), period.begin(), period.end());
  const dsp::cvec sp25 = dsp::resample(sp, 20e6, 25e6);
  dsp::cvec rx = dsp::make_wgn(2048, 1e-4, 31);
  for (std::size_t k = 0; k < sp25.size(); ++k) rx[256 + k] += sp25[k] * 0.5f;

  EXPECT_GE(jammer.observe(rx).jam_triggers, 1u);
}

}  // namespace
}  // namespace rjf::core
