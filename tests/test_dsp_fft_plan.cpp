// FftPlan regression tests (DESIGN.md section 12).
//
// Accuracy is measured against a direct DFT evaluated in double: the
// legacy per-call transform generated twiddles with a recursive float
// multiply whose rounding drift grew along the butterfly chain, and the
// plan's double-generated tables are what fixed it.  The bounds below are
// expressed in "scaled ulp" — absolute error divided by the ulp of the
// spectrum's largest magnitude — which is the natural unit for FFT error
// (elements produced by heavy cancellation are tiny in absolute terms but
// their error budget is set by the whole vector, not the element).
//
// The SIMD butterfly kernels are compared against the scalar stage bodies
// (dsp/simd/fft_stages_scalar.h) run over an independently built copy of
// the plan's tables; whatever ISA the dispatcher picked must stay within
// 4 ulp of the scalar path, on the AVX2 CI job and the scalar-only one.
#include "dsp/fft_plan.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <complex>
#include <cstdint>
#include <numbers>
#include <vector>

#include "dsp/fft.h"
#include "dsp/rng.h"
#include "dsp/simd/dispatch.h"
#include "dsp/simd/fft_stages_scalar.h"

namespace rjf::dsp {
namespace {

using cdouble = std::complex<double>;

std::vector<cdouble> direct_dft(const cvec& x, bool inverse) {
  const std::size_t n = x.size();
  std::vector<cdouble> out(n);
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    cdouble acc{0.0, 0.0};
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = sign * 2.0 * std::numbers::pi *
                           static_cast<double>(k * t % n) /
                           static_cast<double>(n);
      const cdouble tw{std::cos(angle), std::sin(angle)};
      acc += cdouble{x[t].real(), x[t].imag()} * tw;
    }
    out[k] = acc;
  }
  return out;
}

// Max |err| over all re/im components, in units of ulp-at-spectrum-scale.
double scaled_ulp_error(const cvec& got, const std::vector<cdouble>& exact) {
  double peak = 0.0;
  for (const cdouble& e : exact)
    peak = std::max({peak, std::abs(e.real()), std::abs(e.imag())});
  const double ulp = static_cast<double>(peak == 0.0
                                             ? std::numeric_limits<float>::denorm_min()
                                             : std::nextafterf(static_cast<float>(peak),
                                                               std::numeric_limits<float>::infinity()) -
                                                   static_cast<float>(peak));
  double worst = 0.0;
  for (std::size_t k = 0; k < got.size(); ++k) {
    worst = std::max(worst,
                     std::abs(static_cast<double>(got[k].real()) - exact[k].real()));
    worst = std::max(worst,
                     std::abs(static_cast<double>(got[k].imag()) - exact[k].imag()));
  }
  return worst / ulp;
}

// Ordered-integer ulp distance between two floats (0 for -0 vs +0).
std::int64_t ulp_distance(float a, float b) {
  const auto ordered = [](float f) -> std::int64_t {
    const auto u = std::bit_cast<std::uint32_t>(f);
    return (u & 0x80000000u)
               ? -static_cast<std::int64_t>(u & 0x7fffffffu)
               : static_cast<std::int64_t>(u);
  };
  if (!std::isfinite(a) || !std::isfinite(b))
    return std::numeric_limits<std::int64_t>::max();
  return std::abs(ordered(a) - ordered(b));
}

std::size_t bit_reverse(std::size_t v, unsigned bits) {
  std::size_t r = 0;
  for (unsigned b = 0; b < bits; ++b) r |= ((v >> b) & 1u) << (bits - 1 - b);
  return r;
}

// Scalar replica of FftPlan::forward/inverse built entirely inside the
// test: same bit-reverse order, same double-generated twiddles, scalar
// stage bodies.  Tables are bit-identical to the plan's by construction,
// so any divergence from FftPlan output is the dispatched kernel's.
cvec scalar_reference_fft(const cvec& in, bool inverse) {
  const std::size_t n = in.size();
  unsigned lg = 0;
  while ((std::size_t{1} << lg) < n) ++lg;
  cvec x(n);
  for (std::size_t i = 0; i < n; ++i) x[bit_reverse(i, lg)] = in[i];
  float* xf = reinterpret_cast<float*>(x.data());
  const bool radix2_first = (lg % 2) != 0;
  if (radix2_first) simd::fft_radix2_stage(xf, n);
  const double two_pi = 2.0 * std::numbers::pi;
  for (std::size_t L = radix2_first ? 2 : 1; 4 * L <= n; L *= 4) {
    std::vector<float> w1(2 * L), w2(2 * L), w3(2 * L);
    const double step = two_pi / static_cast<double>(4 * L);
    for (std::size_t k = 0; k < L; ++k) {
      const double s = inverse ? 1.0 : -1.0;
      w1[2 * k] = static_cast<float>(std::cos(step * static_cast<double>(k)));
      w1[2 * k + 1] =
          static_cast<float>(s * std::sin(step * static_cast<double>(k)));
      w2[2 * k] =
          static_cast<float>(std::cos(step * static_cast<double>(2 * k)));
      w2[2 * k + 1] =
          static_cast<float>(s * std::sin(step * static_cast<double>(2 * k)));
      w3[2 * k] =
          static_cast<float>(std::cos(step * static_cast<double>(3 * k)));
      w3[2 * k + 1] =
          static_cast<float>(s * std::sin(step * static_cast<double>(3 * k)));
    }
    simd::fft_radix4_stage(xf, n, L, w1.data(), w2.data(), w3.data(), inverse);
  }
  return x;
}

cvec random_signal(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  cvec x(n);
  for (auto& s : x) s = rng.complex_gaussian();
  return x;
}

// Satellite: twiddle-drift regression.  Double-DFT comparison at the
// three sizes the rig actually uses (64-pt OFDM symbol, 256/1024-pt
// Welch PSD segments).  The bounds have ~4x headroom over measured error
// but sit far below the drift the recursive-twiddle transform showed.
TEST(FftPlan, MatchesDirectDoubleDftWithinScaledUlp) {
  const struct {
    std::size_t n;
    double bound;
  } cases[] = {{64, 16.0}, {256, 32.0}, {1024, 64.0}};
  for (const auto& c : cases) {
    const cvec x = random_signal(c.n, 0x5eed + c.n);
    const std::vector<cdouble> exact = direct_dft(x, /*inverse=*/false);
    cvec got = x;
    FftPlan::of(c.n).forward(got.data());
    EXPECT_LT(scaled_ulp_error(got, exact), c.bound) << "n=" << c.n;

    const std::vector<cdouble> exact_inv = direct_dft(x, /*inverse=*/true);
    cvec got_inv = x;
    FftPlan::of(c.n).inverse(got_inv.data());
    EXPECT_LT(scaled_ulp_error(got_inv, exact_inv), c.bound)
        << "inverse n=" << c.n;
  }
}

// Tentpole invariant: whatever kernel active_isa() dispatched to must
// stay within 4 ulp of the scalar stage bodies, forward and inverse.
TEST(FftPlan, DispatchedKernelWithin4UlpOfScalarStages) {
  for (const std::size_t n : {64u, 128u, 256u, 1024u}) {
    const cvec x = random_signal(n, 77 + n);
    for (const bool inverse : {false, true}) {
      cvec got = x;
      if (inverse)
        FftPlan::of(n).inverse(got.data());
      else
        FftPlan::of(n).forward(got.data());
      const cvec ref = scalar_reference_fft(x, inverse);
      for (std::size_t k = 0; k < n; ++k) {
        EXPECT_LE(ulp_distance(got[k].real(), ref[k].real()), 4)
            << simd::isa_name(simd::active_isa()) << " n=" << n
            << " inverse=" << inverse << " k=" << k;
        EXPECT_LE(ulp_distance(got[k].imag(), ref[k].imag()), 4)
            << simd::isa_name(simd::active_isa()) << " n=" << n
            << " inverse=" << inverse << " k=" << k;
      }
    }
  }
}

// Satellite: the plan owns the one bit-reverse permutation in the tree
// (fft()/psd.cpp route through it).  permute() must BE the plain
// bit-reversal and be an involution.
TEST(FftPlan, PermuteIsPlainBitReversal) {
  for (const std::size_t n : {8u, 64u, 128u, 1024u}) {
    unsigned lg = 0;
    while ((std::size_t{1} << lg) < n) ++lg;
    cvec x(n);
    for (std::size_t i = 0; i < n; ++i)
      x[i] = cfloat{static_cast<float>(i), 0.0f};
    const FftPlan& plan = FftPlan::of(n);
    cvec p = x;
    plan.permute(p.data());
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(static_cast<std::size_t>(p[i].real()), bit_reverse(i, lg))
          << "n=" << n << " i=" << i;
    plan.permute(p.data());
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(p[i].real(), x[i].real()) << "involution n=" << n;
  }
}

// fft()/ifft() are thin wrappers over the plan; the pair must still
// round-trip (guards the wrapper's 1/N scaling against plan changes).
TEST(FftPlan, WrapperRoundTripsThroughPlan) {
  cvec x = random_signal(512, 1234);
  const cvec orig = x;
  fft(x);
  ifft(x);
  for (std::size_t k = 0; k < x.size(); ++k) {
    EXPECT_NEAR(x[k].real(), orig[k].real(), 1e-4f);
    EXPECT_NEAR(x[k].imag(), orig[k].imag(), 1e-4f);
  }
}

}  // namespace
}  // namespace rjf::dsp
