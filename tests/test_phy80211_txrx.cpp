// SIGNAL field, rate table, and full transmitter/receiver round trips.
#include <gtest/gtest.h>

#include "dsp/noise.h"
#include "dsp/rng.h"
#include "phy80211/receiver.h"
#include "phy80211/signal_field.h"
#include "phy80211/transmitter.h"

namespace rjf::phy80211 {
namespace {

TEST(SignalField, EncodeDecodeAllRates) {
  for (const Rate rate : all_rates()) {
    const SignalField field{rate, 1534};
    const auto decoded = decode_signal(encode_signal(field));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->rate, rate);
    EXPECT_EQ(decoded->length, 1534);
  }
}

TEST(SignalField, ParityErrorDetected) {
  Bits bits = encode_signal({Rate::kMbps24, 100});
  bits[6] ^= 1;
  EXPECT_FALSE(decode_signal(bits).has_value());
}

TEST(SignalField, ReservedBitMustBeZero) {
  Bits bits = encode_signal({Rate::kMbps6, 10});
  bits[4] = 1;
  bits[17] ^= 1;  // fix parity so only the reserved bit is wrong
  EXPECT_FALSE(decode_signal(bits).has_value());
}

TEST(SignalField, ZeroLengthRejected) {
  const Bits bits = encode_signal({Rate::kMbps6, 0});
  EXPECT_FALSE(decode_signal(bits).has_value());
}

TEST(SignalField, InvalidRateRejected) {
  Bits bits = encode_signal({Rate::kMbps6, 10});
  // RATE 1101 -> corrupt to 0000 (invalid) and repair parity.
  bits[0] = 0;
  bits[1] = 0;
  bits[3] = 0;
  std::uint8_t parity = 0;
  for (std::size_t k = 0; k < 17; ++k) parity ^= bits[k];
  bits[17] = parity;
  EXPECT_FALSE(decode_signal(bits).has_value());
}

TEST(Rates, TableMatchesStandard) {
  EXPECT_EQ(rate_params(Rate::kMbps6).n_dbps, 24u);
  EXPECT_EQ(rate_params(Rate::kMbps9).n_dbps, 36u);
  EXPECT_EQ(rate_params(Rate::kMbps12).n_dbps, 48u);
  EXPECT_EQ(rate_params(Rate::kMbps18).n_dbps, 72u);
  EXPECT_EQ(rate_params(Rate::kMbps24).n_dbps, 96u);
  EXPECT_EQ(rate_params(Rate::kMbps36).n_dbps, 144u);
  EXPECT_EQ(rate_params(Rate::kMbps48).n_dbps, 192u);
  EXPECT_EQ(rate_params(Rate::kMbps54).n_dbps, 216u);
  EXPECT_EQ(rate_params(Rate::kMbps54).n_cbps, 288u);
  EXPECT_EQ(rate_params(Rate::kMbps54).signal_rate_bits, 0b0011);
}

TEST(Rates, SignalBitsRoundTrip) {
  for (const Rate rate : all_rates()) {
    const auto back = rate_from_signal_bits(rate_params(rate).signal_rate_bits);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, rate);
  }
  EXPECT_FALSE(rate_from_signal_bits(0b0000).has_value());
}

TEST(Rates, FrameDurations) {
  // 1470+64-byte class PSDU at 54 Mbps: 20 us preamble+SIGNAL plus
  // ceil((16+8*1534+6)/216) = 57 symbols x 4 us = 248 us total.
  EXPECT_EQ(num_data_symbols(Rate::kMbps54, 1534), 57u);
  EXPECT_NEAR(frame_duration_s(Rate::kMbps54, 1534), 248e-6, 1e-9);
  // An ACK (14 bytes) at 24 Mbps: 2 symbols -> 28 us.
  EXPECT_EQ(num_data_symbols(Rate::kMbps24, 14), 2u);
  EXPECT_NEAR(frame_duration_s(Rate::kMbps24, 14), 28e-6, 1e-9);
}

class TxRxRoundTrip : public ::testing::TestWithParam<Rate> {};

TEST_P(TxRxRoundTrip, HighSnr) {
  const Rate rate = GetParam();
  std::vector<std::uint8_t> psdu(317);
  dsp::Xoshiro256 rng(static_cast<std::uint64_t>(rate) * 31 + 1);
  for (auto& b : psdu) b = static_cast<std::uint8_t>(rng.next());

  Transmitter tx({rate, 0x6E});
  dsp::cvec wave = tx.transmit(psdu);
  dsp::NoiseSource noise(1e-4, 55);  // 40 dB SNR
  noise.add_to(wave);

  const auto result = Receiver().receive(wave);
  EXPECT_TRUE(result.synchronized);
  ASSERT_TRUE(result.signal_valid);
  EXPECT_EQ(result.signal->rate, rate);
  EXPECT_EQ(result.signal->length, psdu.size());
  EXPECT_EQ(result.psdu, psdu);
}

INSTANTIATE_TEST_SUITE_P(AllRates, TxRxRoundTrip,
                         ::testing::ValuesIn(std::vector<Rate>(
                             all_rates().begin(), all_rates().end())));

TEST(TxRx, RobustRateSurvivesLowSnr) {
  std::vector<std::uint8_t> psdu(100, 0x3C);
  Transmitter tx({Rate::kMbps6, 0x11});
  dsp::cvec wave = tx.transmit(psdu);
  dsp::NoiseSource noise(0.05, 77);  // ~13 dB SNR
  noise.add_to(wave);
  const auto result = Receiver().receive(wave);
  ASSERT_TRUE(result.signal_valid);
  EXPECT_EQ(result.psdu, psdu);
}

TEST(TxRx, FragileRateDiesAtLowSnr) {
  std::vector<std::uint8_t> psdu(600, 0x3C);
  Transmitter tx({Rate::kMbps54, 0x11});
  dsp::cvec wave = tx.transmit(psdu);
  dsp::NoiseSource noise(0.4, 78);  // ~4 dB SNR: 64-QAM 3/4 cannot live here
  noise.add_to(wave);
  const auto result = Receiver().receive(wave);
  EXPECT_TRUE(!result.signal_valid || result.psdu != psdu);
}

TEST(TxRx, TimingOffsetWithinSearchWindowTolerated) {
  std::vector<std::uint8_t> psdu(64, 0xA7);
  Transmitter tx({Rate::kMbps12, 0x19});
  const dsp::cvec wave = tx.transmit(psdu);
  // Prepend 5 noise samples: frame starts "late" within the +/-8 window.
  dsp::cvec shifted(5, dsp::cfloat{});
  shifted.insert(shifted.end(), wave.begin(), wave.end());
  dsp::NoiseSource noise(1e-4, 5);
  noise.add_to(shifted);
  const auto result = Receiver().receive(shifted);
  ASSERT_TRUE(result.signal_valid);
  EXPECT_EQ(result.psdu, psdu);
}

TEST(TxRx, TruncatedCaptureFailsCleanly) {
  std::vector<std::uint8_t> psdu(500, 0x55);
  Transmitter tx({Rate::kMbps54, 0x21});
  dsp::cvec wave = tx.transmit(psdu);
  wave.resize(wave.size() / 2);
  const auto result = Receiver().receive(wave);
  EXPECT_FALSE(result.signal_valid);
  EXPECT_TRUE(result.psdu.empty());
}

TEST(TxRx, NoiseOnlyCaptureDoesNotSync) {
  const dsp::cvec noise = dsp::make_wgn(4000, 0.01, 1234);
  const auto result = Receiver().receive(noise);
  EXPECT_FALSE(result.signal_valid);
}

TEST(TxRx, JammedPreambleKillsFrame) {
  // Burst interference over the LTS destroys the channel estimate — the
  // paper's "surgical jamming" rationale.
  std::vector<std::uint8_t> psdu(400, 0x13);
  Transmitter tx({Rate::kMbps54, 0x2D});
  dsp::cvec wave = tx.transmit(psdu);
  dsp::NoiseSource jam(4.0, 91);  // strong burst
  for (std::size_t k = 160; k < 320; ++k) wave[k] += jam.sample();
  dsp::NoiseSource noise(1e-4, 92);
  noise.add_to(wave);
  const auto result = Receiver().receive(wave);
  EXPECT_TRUE(!result.signal_valid || result.psdu != psdu);
}

TEST(TxRx, ScramblerSeedDoesNotMatterToReceiver) {
  std::vector<std::uint8_t> psdu(128, 0x88);
  for (const std::uint8_t seed : {0x01, 0x3B, 0x7F}) {
    Transmitter tx({Rate::kMbps24, seed});
    dsp::cvec wave = tx.transmit(psdu);
    dsp::NoiseSource noise(1e-4, seed);
    noise.add_to(wave);
    const auto result = Receiver().receive(wave);
    ASSERT_TRUE(result.signal_valid) << int(seed);
    EXPECT_EQ(result.psdu, psdu) << int(seed);
  }
}

}  // namespace
}  // namespace rjf::phy80211
