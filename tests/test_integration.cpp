// Cross-module end-to-end scenarios, including the paper's WiMAX §5 result:
// cross-correlation alone misses most downlink frames (the 25 us code is
// correlated across only its first 2.56 us), while combining it with the
// energy differentiator detects every frame.
#include <gtest/gtest.h>

#include "core/calibration.h"
#include "core/detection_experiment.h"
#include "core/presets.h"
#include "dsp/db.h"
#include "dsp/noise.h"
#include "core/reactive_jammer.h"
#include "core/templates.h"
#include "dsp/resampler.h"
#include "phy80211/receiver.h"
#include "phy80211/transmitter.h"
#include "phy80216/frame.h"
#include "phy80216/preamble.h"

namespace rjf {
namespace {

TEST(Integration, WimaxCombinedDetectionBeatsXcorrAlone) {
  phy80216::FrameConfig frame_config;
  frame_config.num_dl_symbols = 4;
  const dsp::cvec dl = phy80216::build_downlink(frame_config);

  core::DetectionRunConfig run;
  run.num_frames = 60;
  run.snr_db = 15.0;
  run.tx_rate_hz = phy80216::kSampleRateHz;
  run.seed = 23;

  // Cross-correlator alone, with the template loaded the way the paper had
  // to (no WiMAX receiver to capture-calibrate against: native-rate code
  // samples in a 25 MSPS correlator). The paper measured ~2/3 misdetection
  // in this mode; our naive-template condition is the harsher end of it.
  core::JammerConfig xcorr_only;
  xcorr_only.detection = core::DetectionMode::kCrossCorrelator;
  const dsp::cvec ref = phy80216::preamble_useful_part({1, 0});
  xcorr_only.xcorr_template = core::template_from_waveform(
      ref, phy80216::kSampleRateHz, /*resample_to_fabric_rate=*/false);
  const core::XcorrNoiseModel model(*xcorr_only.xcorr_template);
  xcorr_only.xcorr_threshold = model.threshold_for_rate(0.1);
  core::ReactiveJammer a(xcorr_only);
  const auto r_xcorr = core::run_detection_experiment(
      a, dl, core::DetectorTap::kJamTrigger, run);

  // Combined with the energy differentiator (the paper's fix).
  core::ReactiveJammer b(core::wimax_combined_preset(1e-4, 1, 0));
  const auto r_combined = core::run_detection_experiment(
      b, dl, core::DetectorTap::kJamTrigger, run);

  EXPECT_EQ(r_combined.probability, 1.0);  // "100% of all downlink packets"
  EXPECT_LT(r_xcorr.probability, 0.5);     // xcorr alone misses most frames
}

TEST(Integration, JamBurstCorruptsWifiFrameEndToEnd) {
  // Full loop at sample level: WiFi TX -> jammer detect -> jam waveform
  // superimposed -> receiver fails the decode.
  std::vector<std::uint8_t> psdu(400, 0x6B);
  phy80211::Transmitter tx({phy80211::Rate::kMbps54, 0x5D});
  const dsp::cvec w20 = tx.transmit(psdu);
  const dsp::cvec w25 = dsp::resample(w20, 20e6, 25e6);

  auto config = core::wifi_reactive_preset(1e-4, 0.059);
  core::ReactiveJammer jammer(config);

  dsp::cvec jam_rx = dsp::make_wgn(w25.size() + 256, 1e-6, 3);
  for (std::size_t k = 0; k < w25.size(); ++k) jam_rx[128 + k] += w25[k] * 0.1f;
  const auto result = jammer.observe(jam_rx);
  ASSERT_GE(result.jam_triggers, 1u);
  ASSERT_FALSE(result.bursts.empty());

  // Superimpose the jam waveform onto the victim's 20 MSPS reception at
  // power comparable to the signal.
  dsp::cvec victim = w20;
  dsp::cvec jam20 = dsp::resample(result.tx, 25e6, 20e6);
  dsp::set_mean_power(std::span<dsp::cfloat>(jam20),
                      dsp::mean_power(w20) * 4.0);
  const std::size_t offset = 128 * 20 / 25;
  for (std::size_t k = 0; k + offset < jam20.size() && k < victim.size(); ++k)
    victim[k] += jam20[k + offset];

  const auto decoded = phy80211::Receiver().receive(victim);
  EXPECT_TRUE(!decoded.signal_valid || decoded.psdu != psdu);

  // Control: without the jam the same frame decodes fine.
  const auto clean = phy80211::Receiver().receive(w20);
  ASSERT_TRUE(clean.signal_valid);
  EXPECT_EQ(clean.psdu, psdu);
}

TEST(Integration, ReplayWaveformEchoesVictimSignal) {
  // Waveform (ii): replay of the last 512 received samples. After a
  // trigger, the emitted burst must correlate with the recorded input.
  core::JammerConfig config;
  config.detection = core::DetectionMode::kEnergyRise;
  config.energy_high_db = 10.0;
  config.waveform = fpga::JamWaveform::kReplay;
  config.jam_uptime_samples = 256;
  core::ReactiveJammer jammer(config);

  // A recognisable tone burst in noise.
  dsp::cvec rx = dsp::make_wgn(4096, 1e-8, 7);
  for (std::size_t k = 512; k < 2048; ++k) {
    const float phase = 0.4f * static_cast<float>(k);
    rx[k] += dsp::cfloat{0.4f * std::cos(phase), 0.4f * std::sin(phase)};
  }
  const auto result = jammer.observe(rx);
  ASSERT_FALSE(result.bursts.empty());
  const auto& burst = result.bursts.front();
  double power = 0.0;
  for (std::size_t k = burst.start_sample;
       k < burst.start_sample + burst.length && k < result.tx.size(); ++k)
    power += std::norm(result.tx[k]);
  EXPECT_GT(power / burst.length, 0.01);  // replaying the strong tone
}

TEST(Integration, EnergyFallDetectionSeesEndOfFrame) {
  core::JammerConfig config;
  config.detection = core::DetectionMode::kEnergyFall;
  config.energy_low_db = 10.0;
  config.jam_uptime_samples = 64;
  core::ReactiveJammer jammer(config);

  dsp::cvec rx = dsp::make_wgn(4096, 1e-6, 9);
  for (std::size_t k = 256; k < 2048; ++k)
    rx[k] += dsp::cfloat{0.3f, -0.3f};

  const auto result = jammer.observe(rx);
  ASSERT_EQ(result.energy_low_detections, 1u);
  ASSERT_FALSE(result.bursts.empty());
  // The burst must start shortly after the frame END (sample 2048).
  EXPECT_GT(result.bursts.front().start_sample, 2048u);
  EXPECT_LT(result.bursts.front().start_sample, 2048u + 128u);
}

}  // namespace
}  // namespace rjf
