#include "fpga/energy_differentiator.h"

#include <gtest/gtest.h>

#include "core/fabric_units.h"
#include "dsp/noise.h"

namespace rjf::fpga {
namespace {

constexpr std::size_t kWarmup = kEnergyWindow + kEnergyRefDelay;

// Feed `n` samples of constant amplitude; returns the last output.
EnergyDifferentiator::Output feed(EnergyDifferentiator& det, std::int16_t amp,
                                  std::size_t n) {
  EnergyDifferentiator::Output out;
  for (std::size_t k = 0; k < n; ++k) out = det.step(dsp::IQ16{amp, amp});
  return out;
}

TEST(EnergyDifferentiator, SilentInputNeverTriggers) {
  EnergyDifferentiator det;
  det.set_thresholds(core::energy_threshold_q88_from_db(3.0),
                     core::energy_threshold_q88_from_db(3.0), 0);
  for (std::size_t k = 0; k < 1000; ++k) {
    const auto out = det.step(dsp::IQ16{0, 0});
    ASSERT_FALSE(out.trigger_high);
    ASSERT_FALSE(out.trigger_low);
  }
}

TEST(EnergyDifferentiator, WarmupSuppressesTriggers) {
  EnergyDifferentiator det;
  det.set_thresholds(core::energy_threshold_q88_from_db(3.0),
                     core::energy_threshold_q88_from_db(3.0), 0);
  // A strong signal from the very first sample: no trigger until the
  // 96-sample pipeline (32 sum + 64 reference delay) is full.
  for (std::size_t k = 0; k < kWarmup; ++k) {
    const auto out = det.step(dsp::IQ16{8000, 8000});
    ASSERT_FALSE(out.trigger_high) << "k=" << k;
  }
}

TEST(EnergyDifferentiator, StepUpTriggersHigh) {
  EnergyDifferentiator det;
  det.set_thresholds(core::energy_threshold_q88_from_db(10.0),
                     core::energy_threshold_q88_from_db(10.0), 1);
  feed(det, 100, 400);  // quiet baseline, fully warmed up
  // A 40x amplitude step is a 32 dB energy rise: must trigger within the
  // 32-sample window plus the 64-sample reference delay.
  bool high = false;
  for (std::size_t k = 0; k < kEnergyWindow + kEnergyRefDelay && !high; ++k)
    high = det.step(dsp::IQ16{4000, 4000}).trigger_high;
  EXPECT_TRUE(high);
}

TEST(EnergyDifferentiator, StepDownTriggersLow) {
  EnergyDifferentiator det;
  det.set_thresholds(core::energy_threshold_q88_from_db(10.0),
                     core::energy_threshold_q88_from_db(10.0), 1);
  feed(det, 4000, 400);
  bool low = false;
  for (std::size_t k = 0; k < kEnergyWindow + kEnergyRefDelay && !low; ++k)
    low = det.step(dsp::IQ16{100, 100}).trigger_low;
  EXPECT_TRUE(low);
}

TEST(EnergyDifferentiator, SmallRiseBelowThresholdIgnored) {
  EnergyDifferentiator det;
  det.set_thresholds(core::energy_threshold_q88_from_db(10.0),
                     core::energy_threshold_q88_from_db(10.0), 1);
  feed(det, 1000, 400);
  // +3 dB rise (amplitude x1.41) must NOT trip a 10 dB threshold.
  bool high = false;
  for (std::size_t k = 0; k < 300; ++k)
    high |= det.step(dsp::IQ16{1414, 1414}).trigger_high;
  EXPECT_FALSE(high);
}

TEST(EnergyDifferentiator, ThresholdBoundaryIsSharp) {
  // A rise of exactly 12 dB: triggers at a 10 dB setting, not at 14 dB.
  for (const auto& [setting_db, expect] :
       std::vector<std::pair<double, bool>>{{10.0, true}, {14.0, false}}) {
    EnergyDifferentiator det;
    det.set_thresholds(core::energy_threshold_q88_from_db(setting_db),
                       core::energy_threshold_q88_from_db(setting_db), 1);
    feed(det, 500, 400);
    bool high = false;
    for (std::size_t k = 0; k < 300; ++k)
      high |= det.step(dsp::IQ16{1990, 1990}).trigger_high;  // ~12 dB up
    EXPECT_EQ(high, expect) << "setting " << setting_db;
  }
}

TEST(EnergyDifferentiator, FloorArmsDetector) {
  EnergyDifferentiator det;
  // Enormous floor: even a big relative rise must not trigger.
  det.set_thresholds(core::energy_threshold_q88_from_db(3.0),
                     core::energy_threshold_q88_from_db(3.0), ~0u);
  feed(det, 100, 400);
  bool high = false;
  for (std::size_t k = 0; k < 300; ++k)
    high |= det.step(dsp::IQ16{4000, 4000}).trigger_high;
  EXPECT_FALSE(high);
}

TEST(EnergyDifferentiator, EnergySumMatchesWindowSum) {
  EnergyDifferentiator det;
  det.set_thresholds(~0u, ~0u, 0);
  const std::int16_t amp = 1000;
  const auto out = feed(det, amp, 200);
  const std::uint64_t per_sample =
      2ull * static_cast<std::uint64_t>(amp) * amp;
  EXPECT_EQ(out.energy_sum, per_sample * kEnergyWindow);
}

TEST(EnergyDifferentiator, LoadFromRegisters) {
  RegisterFile regs;
  regs.write(Reg::kEnergyThreshHigh, core::energy_threshold_q88_from_db(10.0));
  regs.write(Reg::kEnergyThreshLow, core::energy_threshold_q88_from_db(10.0));
  regs.write(Reg::kEnergyFloor, 1);
  EnergyDifferentiator det;
  det.load_from_registers(regs);
  feed(det, 100, 400);
  bool high = false;
  for (std::size_t k = 0; k < 300; ++k)
    high |= det.step(dsp::IQ16{4000, 4000}).trigger_high;
  EXPECT_TRUE(high);
}

TEST(EnergyDifferentiator, ResetRequiresRewarming) {
  EnergyDifferentiator det;
  det.set_thresholds(core::energy_threshold_q88_from_db(3.0),
                     core::energy_threshold_q88_from_db(3.0), 1);
  feed(det, 100, 400);
  det.reset();
  for (std::size_t k = 0; k < kWarmup; ++k) {
    const auto out = det.step(dsp::IQ16{4000, 4000});
    ASSERT_FALSE(out.trigger_high);
  }
}

// Property sweep: the detector must fire for any configured threshold when
// the actual rise exceeds it by 3 dB, across the paper's 3-30 dB range.
class EnergyThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(EnergyThresholdSweep, FiresAboveConfiguredThreshold) {
  const double threshold_db = GetParam();
  EnergyDifferentiator det;
  det.set_thresholds(core::energy_threshold_q88_from_db(threshold_db),
                     core::energy_threshold_q88_from_db(threshold_db), 1);
  feed(det, 200, 400);
  const double rise_db = threshold_db + 3.0;
  const auto amp = static_cast<std::int16_t>(
      200.0 * std::pow(10.0, rise_db / 20.0));
  bool high = false;
  for (std::size_t k = 0; k < 300; ++k)
    high |= det.step(dsp::IQ16{amp, amp}).trigger_high;
  EXPECT_TRUE(high) << "threshold " << threshold_db << " dB";
}

INSTANTIATE_TEST_SUITE_P(PaperRange, EnergyThresholdSweep,
                         ::testing::Values(3.0, 6.0, 10.0, 15.0, 20.0, 25.0,
                                           30.0));

}  // namespace
}  // namespace rjf::fpga
