// Cycle-level tests of the composed custom DSP core — including the
// latency arithmetic the paper reports in §3.1 (Fig. 5 timelines).
#include "fpga/dsp_core.h"

#include <gtest/gtest.h>

#include <cmath>
#include "core/fabric_units.h"
#include "dsp/rng.h"

#include "dsp/noise.h"

namespace rjf::fpga {
namespace {

// Pseudo-random QPSK code: negligible partial autocorrelation, so the
// metric only peaks when the whole code has entered the window.
dsp::cvec test_code() {
  dsp::cvec code(kCorrelatorLength);
  dsp::Xoshiro256 rng(0xC0DE);
  for (auto& s : code) {
    const float i = rng.uniform() < 0.5 ? -0.7f : 0.7f;
    const float q = rng.uniform() < 0.5 ? -0.7f : 0.7f;
    s = dsp::cfloat{i, q};
  }
  return code;
}

// Threshold set at 3/4 of the clean-signal peak for the test code.
std::uint32_t adaptive_threshold() {
  const auto tpl = core::make_template(test_code());
  CrossCorrelator corr;
  corr.set_coefficients(tpl.coef_i, tpl.coef_q);
  std::uint32_t peak = 0;
  for (const auto s : test_code())
    peak = std::max(peak, corr.step(dsp::to_iq16(s * 0.5f)).metric);
  return peak * 3 / 4;
}

// Program a core for xcorr-triggered jamming on the test code.
void program_xcorr_jammer(DspCore& core, std::uint32_t threshold,
                          std::uint32_t uptime = 16,
                          std::uint16_t delay = 0) {
  auto& regs = core.registers();
  program_template(regs, core::make_template(test_code()));
  regs.write(Reg::kXcorrThreshold, threshold);
  regs.set_trigger_stages(kEventXcorr, 0, 0);
  regs.write(Reg::kTriggerWindow, 0);
  regs.set_jammer(JamWaveform::kWhiteNoise, true, delay);
  regs.write(Reg::kJamDuration, uptime);
  core.apply_registers();
}

dsp::iqvec code_at_fabric(float scale = 0.5f) {
  dsp::iqvec out;
  for (const auto s : test_code()) out.push_back(dsp::to_iq16(s * scale));
  return out;
}

TEST(DspCore, SampleStrobeEveryFourTicks) {
  DspCore core;
  int strobes = 0;
  for (int k = 0; k < 40; ++k) {
    const auto out = core.tick(k % 4 == 0 ? std::optional<dsp::IQ16>(dsp::IQ16{})
                                          : std::nullopt);
    if (out.rx_strobe) ++strobes;
  }
  EXPECT_EQ(strobes, 10);
}

TEST(DspCore, VitaTimeAdvancesMonotonically) {
  DspCore core;
  std::uint64_t prev = 0;
  for (int k = 0; k < 100; ++k) {
    const auto out = core.tick(std::nullopt);
    EXPECT_EQ(out.vita_ticks, prev);
    prev = out.vita_ticks + 1;
  }
}

TEST(DspCore, XcorrDetectionAtExactly64Samples) {
  // Paper: "it takes exactly 64 samples from the start of transmission to
  // trigger a cross-correlation detection ... T_xcorr_det = 2.56 us".
  DspCore core;
  program_xcorr_jammer(core, adaptive_threshold());
  const auto samples = code_at_fabric();
  std::size_t detect_sample = 0;
  std::size_t n = 0;
  for (const auto s : samples) {
    ++n;
    const auto trace = core.tick(s);
    if (trace.xcorr_trigger && detect_sample == 0) detect_sample = n;
    for (int c = 1; c < 4; ++c) (void)core.tick(std::nullopt);
  }
  EXPECT_EQ(detect_sample, kCorrelatorLength);
  // 64 samples at 25 MSPS = 2.56 us = 256 fabric clocks.
  const double t_xcorr = static_cast<double>(detect_sample) / kBasebandRateHz;
  EXPECT_DOUBLE_EQ(t_xcorr, 2.56e-6);
}

TEST(DspCore, JamRfWithin80nsOfTrigger) {
  // Paper: "our platform can detect and jam over-the-air packets within
  // 80ns of signal detection" — 8 fabric clocks.
  DspCore core;
  program_xcorr_jammer(core, adaptive_threshold());
  std::uint64_t trigger_tick = 0;
  std::uint64_t rf_tick = 0;
  auto samples = code_at_fabric();
  samples.resize(samples.size() + 8, dsp::IQ16{});  // room for the TX init
  for (const auto s : samples) {
    for (int c = 0; c < 4; ++c) {
      const auto out = core.tick(c == 0 ? std::optional<dsp::IQ16>(s)
                                        : std::nullopt);
      if (out.jam_trigger && trigger_tick == 0) trigger_tick = out.vita_ticks;
      if (out.tx.rf_active && rf_tick == 0) rf_tick = out.vita_ticks;
    }
    if (rf_tick) break;
  }
  ASSERT_GT(trigger_tick, 0u);
  ASSERT_GT(rf_tick, 0u);
  const double t_init = static_cast<double>(rf_tick - trigger_tick) * 10e-9;
  EXPECT_LE(t_init, 80e-9);
  EXPECT_EQ(rf_tick - trigger_tick, kTxInitCycles);
}

TEST(DspCore, EnergyDetectionUnder128Clocks) {
  // Paper: "An energy high detection takes at most 32 baseband samples, or
  // 128 clock cycles, to trigger ... T_en_det < 1.28 us".
  DspCore core;
  auto& regs = core.registers();
  regs.write(Reg::kEnergyThreshHigh, core::energy_threshold_q88_from_db(10.0));
  regs.write(Reg::kEnergyThreshLow, ~0u);
  regs.write(Reg::kEnergyFloor, 1);
  regs.set_trigger_stages(kEventEnergyHigh, 0, 0);
  regs.set_jammer(JamWaveform::kWhiteNoise, true, 0);
  regs.write(Reg::kJamDuration, 8);
  core.apply_registers();

  // Warm the pipeline on the quiet floor, then hit it with a strong signal.
  for (int k = 0; k < 400; ++k) {
    (void)core.tick(dsp::IQ16{30, 30});
    for (int c = 1; c < 4; ++c) (void)core.tick(std::nullopt);
  }
  std::size_t samples_to_detect = 0;
  bool detected = false;
  for (int k = 0; k < 200 && !detected; ++k) {
    ++samples_to_detect;
    const auto out = core.tick(dsp::IQ16{12000, 12000});
    detected = out.energy_high;
    for (int c = 1; c < 4; ++c) (void)core.tick(std::nullopt);
  }
  ASSERT_TRUE(detected);
  EXPECT_LE(samples_to_detect, kEnergyWindow);  // <= 32 samples = 128 clocks
}

TEST(DspCore, FeedbackCountersAccumulate) {
  DspCore core;
  program_xcorr_jammer(core, adaptive_threshold());
  auto run_code = [&core] {
    for (const auto s : code_at_fabric()) {
      (void)core.tick(s);
      for (int c = 1; c < 4; ++c) (void)core.tick(std::nullopt);
    }
    // Separate runs with silence so the correlator history clears.
    for (int k = 0; k < 128; ++k) {
      (void)core.tick(dsp::IQ16{});
      for (int c = 1; c < 4; ++c) (void)core.tick(std::nullopt);
    }
  };
  run_code();
  run_code();
  run_code();
  EXPECT_EQ(core.feedback().xcorr_detections, 3u);
  EXPECT_EQ(core.feedback().jam_triggers, 3u);
  EXPECT_GT(core.feedback().last_trigger_vita, 0u);
}

TEST(DspCore, SurgicalDelayMovesJamBurst) {
  // Paper: "Jamming can also be initialized after a custom delay to target
  // specific portions of the packet."
  for (const std::uint16_t delay : {std::uint16_t{0}, std::uint16_t{25}}) {
    DspCore core;
    program_xcorr_jammer(core, adaptive_threshold(), 8, delay);
    std::uint64_t trigger_tick = 0, rf_tick = 0;
    dsp::iqvec stream = code_at_fabric();
    stream.resize(stream.size() + 200, dsp::IQ16{});
    for (const auto s : stream) {
      for (int c = 0; c < 4; ++c) {
        const auto out = core.tick(c == 0 ? std::optional<dsp::IQ16>(s)
                                          : std::nullopt);
        if (out.jam_trigger && !trigger_tick) trigger_tick = out.vita_ticks;
        if (out.tx.rf_active && !rf_tick) rf_tick = out.vita_ticks;
      }
    }
    ASSERT_GT(rf_tick, 0u) << "delay " << delay;
    EXPECT_EQ(rf_tick - trigger_tick,
              kTxInitCycles + delay * kClocksPerSample);
  }
}

TEST(DspCore, ProcessBlockMatchesTickByTick) {
  DspCore a, b;
  program_xcorr_jammer(a, adaptive_threshold());
  program_xcorr_jammer(b, adaptive_threshold());
  const auto samples = code_at_fabric();

  auto trace_a = a.process(samples);
  std::vector<CoreOutput> trace_b;
  for (const auto s : samples) {
    trace_b.push_back(b.tick(s));
    for (int c = 1; c < 4; ++c) trace_b.push_back(b.tick(std::nullopt));
  }
  ASSERT_EQ(trace_a.size(), trace_b.size());
  for (std::size_t k = 0; k < trace_a.size(); ++k) {
    ASSERT_EQ(trace_a[k].jam_trigger, trace_b[k].jam_trigger) << k;
    ASSERT_EQ(trace_a[k].xcorr_trigger, trace_b[k].xcorr_trigger) << k;
  }
}

TEST(DspCore, FastForwardAdvancesVitaExactly) {
  DspCore core;
  core.fast_forward(1000);
  EXPECT_EQ(core.feedback().vita_ticks, 1000u * kClocksPerSample);
}

TEST(DspCore, ResetClearsEverythingButRegisters) {
  DspCore core;
  program_xcorr_jammer(core, adaptive_threshold());
  for (const auto s : code_at_fabric()) {
    (void)core.tick(s);
    for (int c = 1; c < 4; ++c) (void)core.tick(std::nullopt);
  }
  EXPECT_GT(core.feedback().jam_triggers, 0u);
  core.reset();
  EXPECT_EQ(core.feedback().jam_triggers, 0u);
  EXPECT_EQ(core.feedback().vita_ticks, 0u);
  // Registers survive a datapath reset.
  EXPECT_NE(core.registers().read(Reg::kXcorrThreshold), 0u);
}

}  // namespace
}  // namespace rjf::fpga
