// 802.11b DSSS/CCK PHY tests: Barker properties, scrambler self-sync, CCK
// codeword algebra, PLCP CRC, and full TX/RX round trips at all four rates.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/noise.h"
#include "dsp/resampler.h"
#include "dsp/rng.h"
#include "phy80211b/barker.h"
#include "phy80211b/cck.h"
#include "phy80211b/dsss.h"

namespace rjf::phy80211b {
namespace {

TEST(Barker, SequenceValuesAndAutocorrelation) {
  const auto& code = barker_sequence();
  // The defining Barker property: off-peak aperiodic autocorrelation
  // magnitudes are at most 1 (peak is 11).
  for (std::size_t shift = 1; shift < kBarkerLength; ++shift) {
    float acc = 0.0f;
    for (std::size_t k = 0; k + shift < kBarkerLength; ++k)
      acc += code[k] * code[k + shift];
    EXPECT_LE(std::abs(acc), 1.0f) << "shift " << shift;
  }
  float peak = 0.0f;
  for (const float c : code) peak += c * c;
  EXPECT_FLOAT_EQ(peak, 11.0f);
}

TEST(Barker, SpreadAndCorrelateRecoverSymbol) {
  const dsp::cfloat symbol{0.6f, -0.8f};
  dsp::cvec chips(kBarkerLength);
  spread_symbol(symbol, chips);
  const dsp::cfloat corr = barker_correlate(chips);
  EXPECT_NEAR(corr.real(), 11.0f * symbol.real(), 1e-4f);
  EXPECT_NEAR(corr.imag(), 11.0f * symbol.imag(), 1e-4f);
}

TEST(DsssScrambler, ScrambleDescrambleRoundTrip) {
  DsssScrambler tx(0x6C);
  DsssScrambler rx(0x6C);
  dsp::Xoshiro256 rng(1);
  for (int k = 0; k < 500; ++k) {
    const auto bit = static_cast<std::uint8_t>(rng.next() & 1u);
    ASSERT_EQ(rx.descramble_bit(tx.scramble_bit(bit)), bit);
  }
}

TEST(DsssScrambler, SelfSynchronisesFromWrongSeed) {
  // The receiver's descrambler starts from an arbitrary state and must be
  // correct after 7 received bits — the property that makes the DSSS
  // scrambler "self-synchronising".
  DsssScrambler tx(0x6C);
  DsssScrambler rx(0x00);  // deliberately wrong
  dsp::Xoshiro256 rng(2);
  std::vector<std::uint8_t> sent, got;
  for (int k = 0; k < 100; ++k) {
    const auto bit = static_cast<std::uint8_t>(rng.next() & 1u);
    sent.push_back(bit);
    got.push_back(rx.descramble_bit(tx.scramble_bit(bit)));
  }
  for (std::size_t k = 7; k < sent.size(); ++k)
    ASSERT_EQ(got[k], sent[k]) << "k=" << k;
}

TEST(PlcpCrc, DetectsHeaderCorruption) {
  std::vector<std::uint8_t> bits(32, 0);
  bits[3] = 1;
  bits[17] = 1;
  const std::uint16_t good = plcp_crc16(bits);
  bits[9] ^= 1;
  EXPECT_NE(plcp_crc16(bits), good);
}

TEST(Cck, CodewordChipsAreUnitMagnitude) {
  const auto cw = cck_codeword(0.3, 1.1, 2.2, 0.7);
  for (const auto chip : cw) EXPECT_NEAR(std::abs(chip), 1.0f, 1e-5f);
}

TEST(Cck, CodewordsForDistinctPhasesAreDistinct) {
  const auto a = cck_codeword(0, 0, 0, 0);
  const auto b = cck_codeword(0, std::numbers::pi / 2, 0, 0);
  float diff = 0.0f;
  for (std::size_t c = 0; c < kCckChips; ++c) diff += std::abs(a[c] - b[c]);
  EXPECT_GT(diff, 1.0f);
}

TEST(Cck, EncodeDecode11MbpsAllInputs) {
  // Exhaustive: all 256 bit patterns decode correctly in sequence.
  double tx_ref = 0.0, rx_ref = 0.0;
  for (unsigned v = 0; v < 256; ++v) {
    std::array<std::uint8_t, 8> bits{};
    for (unsigned b = 0; b < 8; ++b) bits[b] = (v >> b) & 1u;
    const bool odd = (v % 2) == 1;
    const auto chips = cck_encode_11mbps(bits, tx_ref, odd);
    const auto decoded = cck_decode_11mbps(chips, rx_ref, odd);
    for (unsigned b = 0; b < 8; ++b)
      ASSERT_EQ(decoded[b], bits[b]) << "v=" << v << " b=" << b;
  }
}

TEST(Cck, EncodeDecode5_5MbpsAllInputs) {
  double tx_ref = 0.0, rx_ref = 0.0;
  for (unsigned v = 0; v < 16; ++v) {
    for (int rep = 0; rep < 4; ++rep) {
      std::array<std::uint8_t, 4> bits{};
      for (unsigned b = 0; b < 4; ++b) bits[b] = (v >> b) & 1u;
      const bool odd = (rep % 2) == 1;
      const auto chips = cck_encode_5_5mbps(bits, tx_ref, odd);
      const auto decoded = cck_decode_5_5mbps(chips, rx_ref, odd);
      for (unsigned b = 0; b < 4; ++b)
        ASSERT_EQ(decoded[b], bits[b]) << "v=" << v;
    }
  }
}

TEST(Dsss, PreambleHeadIsDeterministic) {
  const auto a = preamble_head_chips(128);
  const auto b = preamble_head_chips(128);
  ASSERT_EQ(a.size(), 128u);
  for (std::size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k], b[k]);
}

TEST(Dsss, PlcpLengthIs192Symbols) {
  EXPECT_EQ(kPlcpChips, 192u * 11u);
  // At 11 Mchip/s the PLCP lasts 192 us, as in the long-preamble standard.
  EXPECT_NEAR(kPlcpChips / kChipRateHz, 192e-6, 1e-9);
}

class DsssRoundTrip : public ::testing::TestWithParam<DsssRate> {};

TEST_P(DsssRoundTrip, CleanAndNoisyChannel) {
  const DsssRate rate = GetParam();
  std::vector<std::uint8_t> psdu(173);
  dsp::Xoshiro256 rng(static_cast<std::uint64_t>(rate));
  for (auto& byte : psdu) byte = static_cast<std::uint8_t>(rng.next());

  const DsssTransmitter tx(rate);
  dsp::cvec wave = tx.transmit(psdu);
  // Expected airtime: PLCP 192 us + PSDU at the data rate.
  const double expected_chips =
      kPlcpChips + psdu.size() * 8.0 / dsss_rate_mbps(rate) * 11.0;
  EXPECT_NEAR(static_cast<double>(wave.size()), expected_chips, 16.0);

  // Clean decode.
  auto clean = DsssReceiver().receive(wave);
  ASSERT_TRUE(clean.header_valid);
  EXPECT_EQ(clean.rate, rate);
  EXPECT_EQ(clean.psdu, psdu);

  // 15 dB chip SNR.
  dsp::NoiseSource noise(std::pow(10.0, -15.0 / 10.0), 7);
  noise.add_to(wave);
  auto noisy = DsssReceiver().receive(wave);
  ASSERT_TRUE(noisy.header_valid);
  EXPECT_EQ(noisy.psdu, psdu);
}

// Regression for the SFD-offset PSDU bug: receive() searches an SFD window
// to tolerate capture offsets, but used to decode the PSDU from the fixed
// nominal position plcp_symbols * kBarkerLength — a whole-symbol capture
// offset then produced a valid header with garbage PSDU. The PSDU position
// (and differential reference, and descrambler warm-up) must follow the SFD
// actually found.
TEST_P(DsssRoundTrip, OffsetCapturePsduFollowsSfd) {
  const DsssRate rate = GetParam();
  std::vector<std::uint8_t> psdu(97);
  dsp::Xoshiro256 rng(0x0FF5E7 + static_cast<std::uint64_t>(rate));
  for (auto& byte : psdu) byte = static_cast<std::uint8_t>(rng.next());
  const dsp::cvec wave = DsssTransmitter(rate).transmit(psdu);

  // Extra symbols before the SYNC (late frame), up to the search window's
  // +9 symbol limit.
  for (const std::size_t prepend : {2u, 9u}) {
    dsp::cvec shifted(prepend * kBarkerLength, dsp::cfloat{0.0f, 0.0f});
    shifted.insert(shifted.end(), wave.begin(), wave.end());
    const auto r = DsssReceiver().receive(shifted);
    ASSERT_TRUE(r.header_valid) << "prepend " << prepend;
    EXPECT_EQ(r.rate, rate) << "prepend " << prepend;
    EXPECT_EQ(r.psdu, psdu) << "prepend " << prepend;
  }

  // Missing SYNC symbols (early capture), up to the window's -7 limit.
  for (const std::size_t drop : {3u, 7u}) {
    const dsp::cvec clipped(wave.begin() + drop * kBarkerLength, wave.end());
    const auto r = DsssReceiver().receive(clipped);
    ASSERT_TRUE(r.header_valid) << "drop " << drop;
    EXPECT_EQ(r.rate, rate) << "drop " << drop;
    EXPECT_EQ(r.psdu, psdu) << "drop " << drop;
  }
}

// Loopback matrix, impairment: fractional timing offset between TX and RX
// sample clocks, modelled with the polyphase resampler's fractional-delay
// grid shift (the same mechanism the detection harness uses).
TEST_P(DsssRoundTrip, FractionalTimingOffset) {
  const DsssRate rate = GetParam();
  std::vector<std::uint8_t> psdu(131);
  dsp::Xoshiro256 rng(0x7171 + static_cast<std::uint64_t>(rate));
  for (auto& byte : psdu) byte = static_cast<std::uint8_t>(rng.next());
  const dsp::cvec wave = DsssTransmitter(rate).transmit(psdu);

  const dsp::Resampler unity(kChipRateHz, kChipRateHz);
  for (const double delay : {0.125, 0.25}) {
    const dsp::cvec offset_wave = unity.resample(wave, delay);
    const auto r = DsssReceiver().receive(offset_wave);
    ASSERT_TRUE(r.header_valid) << "delay " << delay;
    EXPECT_EQ(r.psdu, psdu) << "delay " << delay;
  }
}

// Loopback matrix, impairment: carrier frequency offset at the harness's
// |CFO| bound (3 kHz — two free-running N210 oscillators). Differential
// demodulation absorbs the per-symbol phase ramp.
TEST_P(DsssRoundTrip, CarrierFrequencyOffset) {
  const DsssRate rate = GetParam();
  std::vector<std::uint8_t> psdu(131);
  dsp::Xoshiro256 rng(0xCF0 + static_cast<std::uint64_t>(rate));
  for (auto& byte : psdu) byte = static_cast<std::uint8_t>(rng.next());
  dsp::cvec wave = DsssTransmitter(rate).transmit(psdu);

  const double w = 2.0 * std::numbers::pi * 3000.0 / kChipRateHz;
  for (std::size_t k = 0; k < wave.size(); ++k) {
    const double phase = w * static_cast<double>(k);
    wave[k] *= dsp::cfloat(static_cast<float>(std::cos(phase)),
                           static_cast<float>(std::sin(phase)));
  }
  const auto r = DsssReceiver().receive(wave);
  ASSERT_TRUE(r.header_valid);
  EXPECT_EQ(r.psdu, psdu);
}

INSTANTIATE_TEST_SUITE_P(AllRates, DsssRoundTrip,
                         ::testing::Values(DsssRate::kMbps1, DsssRate::kMbps2,
                                           DsssRate::kMbps5_5,
                                           DsssRate::kMbps11));

TEST(Dsss, DqpskOddBitCountPadsFinalSymbol) {
  // An odd bit count pads the last symbol's second bit with 0: encoding
  // {b0..b4} must equal encoding {b0..b4, 0} chip for chip, and the phase
  // state must advance identically.
  const std::uint8_t odd_bits[] = {1, 0, 1, 1, 1};
  const std::uint8_t padded_bits[] = {1, 0, 1, 1, 1, 0};
  double odd_phase = 0.3, padded_phase = 0.3;
  const dsp::cvec odd = dqpsk_spread_bits(odd_bits, odd_phase);
  const dsp::cvec padded = dqpsk_spread_bits(padded_bits, padded_phase);
  ASSERT_EQ(odd.size(), 3u * kBarkerLength);
  ASSERT_EQ(odd.size(), padded.size());
  for (std::size_t k = 0; k < odd.size(); ++k) EXPECT_EQ(odd[k], padded[k]);
  EXPECT_DOUBLE_EQ(odd_phase, padded_phase);
}

TEST(Dsss, StrongNoiseBreaksCck) {
  std::vector<std::uint8_t> psdu(120, 0x7E);
  const DsssTransmitter tx(DsssRate::kMbps11);
  dsp::cvec wave = tx.transmit(psdu);
  dsp::NoiseSource noise(4.0, 9);  // -6 dB chip SNR
  noise.add_to(wave);
  const auto r = DsssReceiver().receive(wave);
  EXPECT_TRUE(!r.header_valid || r.psdu != psdu);
}

TEST(Dsss, TruncatedCaptureFailsCleanly) {
  std::vector<std::uint8_t> psdu(200, 0x33);
  const DsssTransmitter tx(DsssRate::kMbps2);
  dsp::cvec wave = tx.transmit(psdu);
  wave.resize(kPlcpChips + 40 * 11);  // cut mid-PSDU
  const auto r = DsssReceiver().receive(wave);
  EXPECT_TRUE(r.header_valid);
  EXPECT_TRUE(r.psdu.empty());  // decode aborted, no garbage returned
}

TEST(Dsss, JammedPlcpHeaderRejected) {
  std::vector<std::uint8_t> psdu(60, 0x41);
  const DsssTransmitter tx(DsssRate::kMbps11);
  dsp::cvec wave = tx.transmit(psdu);
  // Burst over the PLCP header region (symbols 144..191).
  dsp::NoiseSource jam(9.0, 11);
  for (std::size_t k = 150 * 11; k < 190 * 11; ++k) wave[k] += jam.sample();
  const auto r = DsssReceiver().receive(wave);
  EXPECT_FALSE(r.header_valid);
}

}  // namespace
}  // namespace rjf::phy80211b
