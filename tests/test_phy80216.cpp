#include <gtest/gtest.h>

#include <cmath>

#include "dsp/db.h"
#include "dsp/fft.h"
#include "phy80216/frame.h"
#include "phy80216/pn_sequence.h"
#include "phy80216/preamble.h"

namespace rjf::phy80216 {
namespace {

TEST(PnSequence, LengthAndAlphabet) {
  const auto pn = preamble_pn(1, 0);
  ASSERT_EQ(pn.size(), kPnLength);
  for (const int v : pn) EXPECT_TRUE(v == 1 || v == -1);
}

TEST(PnSequence, Deterministic) {
  EXPECT_EQ(preamble_pn(1, 0), preamble_pn(1, 0));
  EXPECT_EQ(preamble_pn(5, 2), preamble_pn(5, 2));
}

TEST(PnSequence, DistinctAcrossSegmentsAndCells) {
  const auto a = preamble_pn(1, 0);
  EXPECT_NE(a, preamble_pn(1, 1));
  EXPECT_NE(a, preamble_pn(1, 2));
  EXPECT_NE(a, preamble_pn(2, 0));
}

TEST(PnSequence, Balanced) {
  // An m-sequence segment is nearly balanced between +1 and -1.
  const auto pn = preamble_pn(1, 0);
  int sum = 0;
  for (const int v : pn) sum += v;
  EXPECT_LT(std::abs(sum), 40);
}

TEST(PnSequence, LowCrossCorrelation) {
  // Different carrier sets must stay distinguishable to a correlator.
  const auto a = preamble_pn(1, 0);
  const auto b = preamble_pn(1, 1);
  EXPECT_LT(max_cross_correlation(a, b), 0.35);
  // Self-correlation peaks at 1 by definition.
  EXPECT_NEAR(max_cross_correlation(a, a), 1.0, 1e-12);
}

TEST(Preamble, SymbolDimensions) {
  const auto sym = preamble_symbol({1, 0});
  EXPECT_EQ(sym.size(), kPreambleSymbolLen);
  EXPECT_EQ(kPreambleSymbolLen, kFftSize + kCpLen);
  const auto useful = preamble_useful_part({1, 0});
  EXPECT_EQ(useful.size(), kFftSize);
  EXPECT_NEAR(dsp::mean_power(useful), 1.0, 1e-3);
}

TEST(Preamble, CyclicPrefixMatchesTail) {
  const auto sym = preamble_symbol({1, 0});
  for (std::size_t k = 0; k < kCpLen; ++k) {
    EXPECT_NEAR(sym[k].real(), sym[kFftSize + k].real(), 1e-5f);
    EXPECT_NEAR(sym[k].imag(), sym[kFftSize + k].imag(), 1e-5f);
  }
}

TEST(Preamble, GuardBandsEmpty) {
  // 86 guard subcarriers on each side must carry no energy.
  auto useful = preamble_useful_part({1, 0});
  dsp::fft(useful);
  for (std::size_t offset = 0; offset < kGuardEachSide; ++offset) {
    // Positive guard: carriers +426..+511; negative guard: -427..-512.
    EXPECT_NEAR(std::abs(useful[426 + offset]), 0.0f, 1e-3f);
    EXPECT_NEAR(std::abs(useful[kFftSize - 427 - offset]), 0.0f, 1e-3f);
  }
  EXPECT_NEAR(std::abs(useful[0]), 0.0f, 1e-3f);  // DC null
}

TEST(Preamble, EveryThirdSubcarrierOnly) {
  auto useful = preamble_useful_part({1, 0});
  dsp::fft(useful);
  // Segment 0 occupies used indices 0, 3, 6, ... (i.e. carriers -426+3k);
  // the other two of every three used carriers stay empty.
  std::size_t occupied = 0;
  for (std::size_t u = 0; u < 852; ++u) {
    const long carrier = static_cast<long>(u) - 426;
    if (carrier == 0) continue;
    const std::size_t bin = carrier >= 0
                                ? static_cast<std::size_t>(carrier)
                                : static_cast<std::size_t>(kFftSize + carrier);
    const bool has_energy = std::abs(useful[bin]) > 0.01f;
    if (u % 3 == 0) {
      occupied += has_energy;
    } else {
      EXPECT_FALSE(has_energy) << "used index " << u;
    }
  }
  EXPECT_GE(occupied, 280u);  // ~284 modulated carriers
}

TEST(Preamble, ThreeFoldQuasiPeriodicity) {
  // Every-3rd-subcarrier occupation makes the useful part repeat ~3 times —
  // the paper's "orthogonal code ... repeats itself 3 times". Since 1024/3
  // is fractional, test via circular autocorrelation: a strong peak at lag
  // ~N/3 and nothing at an unrelated lag.
  const auto useful = preamble_useful_part({1, 0});
  const auto autocorr = [&](std::size_t lag) {
    dsp::cfloat acc{};
    for (std::size_t k = 0; k < kFftSize; ++k)
      acc += useful[k] * std::conj(useful[(k + lag) % kFftSize]);
    return std::abs(acc) / static_cast<float>(kFftSize);
  };
  const double r0 = autocorr(0);
  EXPECT_GT(autocorr(341), 0.7 * r0);
  EXPECT_GT(autocorr(683), 0.7 * r0);  // ~2N/3
  EXPECT_LT(autocorr(171), 0.3 * r0);
}

TEST(Frame, TimingMatchesAirspanSetup) {
  const FrameConfig config;
  // 5 ms frames at 11.2 MSPS.
  EXPECT_EQ(frame_period_samples(config), 56000u);
  const std::size_t active = dl_active_samples(config);
  EXPECT_EQ(active, kPreambleSymbolLen * 27);
  EXPECT_LT(active, frame_period_samples(config));  // TDD gap exists
}

TEST(Frame, DownlinkStartsWithPreamble) {
  const FrameConfig config;
  const auto dl = build_downlink(config);
  const auto pre = preamble_symbol(config.preamble);
  ASSERT_GE(dl.size(), pre.size());
  for (std::size_t k = 0; k < pre.size(); ++k) {
    EXPECT_NEAR(dl[k].real(), pre[k].real(), 1e-6f);
    EXPECT_NEAR(dl[k].imag(), pre[k].imag(), 1e-6f);
  }
}

TEST(Frame, BroadcastLayout) {
  FrameConfig config;
  config.num_dl_symbols = 4;
  const auto air = broadcast(config, 3);
  const std::size_t period = frame_period_samples(config);
  ASSERT_EQ(air.size(), period * 3);
  const std::size_t active = dl_active_samples(config);
  // Energy during DL portions, silence in the TDD gaps.
  for (std::size_t f = 0; f < 3; ++f) {
    const std::span<const dsp::cfloat> dl(air.data() + f * period, active);
    EXPECT_GT(dsp::mean_power(dl), 0.5);
    const std::span<const dsp::cfloat> gap(air.data() + f * period + active,
                                           period - active);
    EXPECT_EQ(dsp::mean_power(gap), 0.0);
  }
}

TEST(Frame, PayloadVariesPerFrame) {
  FrameConfig config;
  config.num_dl_symbols = 2;
  const auto air = broadcast(config, 2);
  const std::size_t period = frame_period_samples(config);
  // Data symbols differ between frames (different payload seeds)...
  bool differs = false;
  for (std::size_t k = kPreambleSymbolLen; k < dl_active_samples(config); ++k)
    differs |= std::abs(air[k] - air[period + k]) > 1e-4f;
  EXPECT_TRUE(differs);
  // ...but the preamble repeats identically.
  for (std::size_t k = 0; k < kPreambleSymbolLen; ++k)
    EXPECT_NEAR(std::abs(air[k] - air[period + k]), 0.0f, 1e-5f);
}

}  // namespace
}  // namespace rjf::phy80216
