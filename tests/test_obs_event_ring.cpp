// EventRing transport tests (DESIGN.md "Observability"): FIFO delivery
// across index wraparound, drop accounting when the ring fills, the
// deterministic 1-in-N strobe decimator with its interesting-strobe bypass,
// runtime level gating, a threaded producer/consumer stress run (the suite
// name contains "EventRing" so the TSan CI job's test filter picks it up),
// and the drain-mode equivalence contract: a run consumed by a
// RingDrainThread exports a byte-identical Chrome trace to the same run
// drained inline at block boundaries.
#include "obs/event_ring.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/reactive_jammer.h"
#include "core/presets.h"
#include "dsp/noise.h"
#include "obs/telemetry.h"

namespace rjf::obs {
namespace {

// Sink that records every dispatched event/strobe in arrival order.
struct CollectingSink final : FabricSink {
  struct Event {
    EventKind kind;
    std::uint64_t vita;
    std::uint64_t value;
  };
  std::vector<Event> events;
  std::vector<FabricSignals> strobes;

  void on_event(EventKind kind, std::uint64_t vita_ticks,
                std::uint64_t value) override {
    events.push_back({kind, vita_ticks, value});
  }
  void on_strobe(const FabricSignals& signals) override {
    strobes.push_back(signals);
  }
};

RingConfig tiny_ring(std::size_t capacity) {
  RingConfig config;
  config.capacity = capacity;
  return config;
}

TEST(EventRing, FifoOrderAcrossWraparound) {
  EventRing ring(tiny_ring(16));
  CollectingSink sink;

  // Several fill/drain rounds push the head index far past the capacity,
  // so the slot arithmetic wraps repeatedly.
  std::uint64_t next_value = 0;
  std::vector<std::uint64_t> delivered;
  for (int round = 0; round < 10; ++round) {
    // 11 per round never fills the 16-slot ring.
    for (int k = 0; k < 11; ++k, ++next_value)
      ASSERT_TRUE(ring.push_event(EventKind::kJamTrigger, next_value,
                                  next_value))
          << "round " << round << " k " << k;
    EXPECT_EQ(ring.drain_into(sink), 11u);
  }

  ASSERT_EQ(sink.events.size(), 110u);
  for (std::size_t k = 0; k < sink.events.size(); ++k) {
    EXPECT_EQ(sink.events[k].value, k) << "out-of-order at " << k;
    EXPECT_EQ(sink.events[k].kind, EventKind::kJamTrigger);
  }
  EXPECT_EQ(ring.pushed(), 110u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_TRUE(ring.empty());
}

TEST(EventRing, FullRingDropsAreCountedAndPushResumesAfterDrain) {
  EventRing ring(tiny_ring(16));
  ASSERT_EQ(ring.capacity(), 16u);
  CollectingSink sink;

  for (std::uint64_t k = 0; k < 40; ++k) {
    const bool accepted = ring.push_event(EventKind::kEnergyRise, k, k);
    EXPECT_EQ(accepted, k < 16) << "k=" << k;
  }
  EXPECT_EQ(ring.pushed(), 16u);
  EXPECT_EQ(ring.dropped(), 24u);

  // The oldest records survive; the overflow was dropped at the producer.
  EXPECT_EQ(ring.drain_into(sink), 16u);
  ASSERT_EQ(sink.events.size(), 16u);
  for (std::uint64_t k = 0; k < 16; ++k) EXPECT_EQ(sink.events[k].value, k);

  // Draining freed every slot: pushes succeed again and drops stop rising.
  EXPECT_TRUE(ring.push_event(EventKind::kEnergyFall, 100, 100));
  EXPECT_EQ(ring.dropped(), 24u);
  EXPECT_EQ(ring.drain_into(sink), 1u);
  EXPECT_EQ(sink.events.back().value, 100u);
}

TEST(EventRing, StrobeSamplingIsDeterministicAndBypassKeepsPhase) {
  RingConfig config = tiny_ring(64);
  config.strobe_sample_period = 4;
  EventRing ring(config);

  // Boring strobes pass exactly once per period, starting with the first.
  std::vector<bool> pattern;
  for (int k = 0; k < 12; ++k) pattern.push_back(ring.strobe_gate(false));
  const std::vector<bool> expected = {true,  false, false, false,
                                      true,  false, false, false,
                                      true,  false, false, false};
  EXPECT_EQ(pattern, expected);
  EXPECT_EQ(ring.sampled_out(), 9u);

  // An interesting strobe in a suppressed phase passes WITHOUT resetting
  // the countdown: the next 1-in-N keeper is the same strobe index it
  // would have been anyway, so the decimation phase stays a pure function
  // of the strobe sequence.
  EXPECT_TRUE(ring.strobe_gate(true));    // index 12: keeper anyway
  EXPECT_TRUE(ring.strobe_gate(true));    // index 13: bypass
  EXPECT_FALSE(ring.strobe_gate(false));  // index 14: still suppressed
  EXPECT_FALSE(ring.strobe_gate(false));  // index 15
  EXPECT_TRUE(ring.strobe_gate(false));   // index 16: periodic keeper
  // Bypassed strobes are not "sampled out": only genuinely suppressed
  // idle strobes count.
  EXPECT_EQ(ring.sampled_out(), 11u);
}

TEST(EventRing, LevelGatesProducersAndCountsNothingWhenOff) {
  RingConfig config = tiny_ring(64);

  config.level = ObsLevel::kOff;
  EventRing off(config);
  EXPECT_FALSE(off.push_event(EventKind::kJamStart, 1, 1));
  EXPECT_FALSE(off.want_spans());
  EXPECT_FALSE(off.want_probes());
  EXPECT_FALSE(off.strobe_gate(true));
  EXPECT_EQ(off.pushed(), 0u);
  EXPECT_EQ(off.dropped(), 0u);  // silence is not loss

  config.level = ObsLevel::kCounters;
  EventRing counters(config);
  EXPECT_TRUE(counters.push_event(EventKind::kJamStart, 1, 1));
  EXPECT_FALSE(counters.want_spans());
  EXPECT_FALSE(counters.want_probes());

  config.level = ObsLevel::kSpans;
  EventRing spans(config);
  EXPECT_TRUE(spans.want_spans());
  EXPECT_FALSE(spans.want_probes());

  config.level = ObsLevel::kProbes;
  EventRing probes(config);
  EXPECT_TRUE(probes.want_spans());
  EXPECT_TRUE(probes.want_probes());

  FabricSignals signals;
  signals.vita_ticks = 7;
  signals.xcorr_metric = 9;
  signals.energy_sum = 11;
  ASSERT_TRUE(probes.strobe_gate(true));
  EXPECT_TRUE(probes.push_strobe(signals));
  CollectingSink sink;
  EXPECT_EQ(probes.drain_into(sink), 1u);
  ASSERT_EQ(sink.strobes.size(), 1u);
  EXPECT_EQ(sink.strobes[0].vita_ticks, 7u);
  EXPECT_EQ(sink.strobes[0].xcorr_metric, 9u);
  EXPECT_EQ(sink.strobes[0].energy_sum, 11u);
}

// SPSC stress: one producer pushing flat out, one consumer draining
// concurrently. Run under TSan this exercises the acquire/release pairing
// on head_/tail_; in any build it checks that no record is reordered,
// duplicated or silently lost (accepted + dropped == offered).
TEST(EventRing, ThreadedProducerConsumerStress) {
  EventRing ring(tiny_ring(1024));
  CollectingSink sink;
  std::atomic<bool> done{false};

  std::thread consumer([&] {
    while (!done.load(std::memory_order_acquire)) {
      if (ring.drain_into(sink) == 0) std::this_thread::yield();
    }
    (void)ring.drain_into(sink);  // final sweep after the producer stops
  });

  constexpr std::uint64_t kOffered = 200000;
  std::uint64_t accepted = 0;
  for (std::uint64_t k = 0; k < kOffered; ++k)
    if (ring.push_event(EventKind::kXcorrTrigger, k, k)) ++accepted;
  done.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_EQ(accepted, ring.pushed());
  EXPECT_EQ(kOffered - accepted, ring.dropped());
  ASSERT_EQ(sink.events.size(), accepted);
  // FIFO with drops = the delivered values are a strictly increasing
  // subsequence of the offered sequence.
  std::uint64_t prev = 0;
  bool have_prev = false;
  for (const auto& e : sink.events) {
    if (have_prev) {
      EXPECT_GT(e.value, prev);
    }
    prev = e.value;
    have_prev = true;
  }
  EXPECT_TRUE(ring.empty());
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Run one deterministic jam scenario through a Telemetry bundle and export
// its Chrome trace. `drain_thread` selects the consumer mode.
std::string trace_for_drain_mode(bool drain_thread, const std::string& path) {
  TelemetryConfig config;
  config.probe_enabled = false;
  config.drain_thread = drain_thread;
  config.drain_poll_us = 50;
  Telemetry telemetry(config);

  core::ReactiveJammer jammer(core::energy_reactive_preset(1e-4, 10.0));
  jammer.attach_trace(&telemetry);

  // A noise-floor lead-in, a strong burst (energy rise -> jam), silence
  // (fall), then a second burst: several spans and detector edges.
  dsp::cvec rx(16384, dsp::cfloat{});
  dsp::NoiseSource noise(1e-9, 1234);
  noise.add_to(rx);
  for (std::size_t k = 2048; k < 4096; ++k) rx[k] += dsp::cfloat{0.3f, -0.2f};
  for (std::size_t k = 9000; k < 11000; ++k) rx[k] += dsp::cfloat{-0.25f, 0.25f};
  const auto result = jammer.observe(rx);
  jammer.attach_trace(nullptr);
  EXPECT_GT(result.jam_triggers, 0u);

  EXPECT_TRUE(telemetry.write_chrome_trace(path));  // flushes first
  return read_file(path);
}

TEST(EventRing, DrainThreadTraceIsByteIdenticalToInlineDrain) {
  const std::string inline_path =
      ::testing::TempDir() + "rjf_ring_inline_trace.json";
  const std::string threaded_path =
      ::testing::TempDir() + "rjf_ring_threaded_trace.json";

  const std::string inline_trace = trace_for_drain_mode(false, inline_path);
  const std::string threaded_trace = trace_for_drain_mode(true, threaded_path);

  ASSERT_FALSE(inline_trace.empty());
  EXPECT_EQ(inline_trace, threaded_trace);
  std::remove(inline_path.c_str());
  std::remove(threaded_path.c_str());
}

}  // namespace
}  // namespace rjf::obs
