// Full-radio tests: detection-to-jam streaming and in-flight reconfiguration
// through the settings bus.
#include "radio/usrp_n210.h"

#include <gtest/gtest.h>

#include "dsp/db.h"
#include "core/fabric_units.h"
#include "dsp/noise.h"
#include "dsp/rng.h"

namespace rjf::radio {
namespace {

dsp::cvec random_code(std::uint64_t seed) {
  dsp::cvec code(fpga::kCorrelatorLength);
  dsp::Xoshiro256 rng(seed);
  for (auto& s : code)
    s = dsp::cfloat{rng.uniform() < 0.5 ? -0.5f : 0.5f,
                    rng.uniform() < 0.5 ? -0.5f : 0.5f};
  return code;
}

void program_for_code(UsrpN210& radio, const dsp::cvec& code,
                      std::uint32_t uptime) {
  const auto tpl = core::make_template(code);
  fpga::RegisterFile staged;
  fpga::program_template(staged, tpl);
  for (std::size_t r = 0; r < 16; ++r)
    radio.write_register_now(static_cast<fpga::Reg>(r),
                             staged.read(static_cast<fpga::Reg>(r)));
  // Threshold at half the clean peak.
  fpga::CrossCorrelator probe;
  probe.set_coefficients(tpl.coef_i, tpl.coef_q);
  std::uint32_t peak = 0;
  for (const auto s : code)
    peak = std::max(peak, probe.step(dsp::to_iq16(s)).metric);
  radio.write_register_now(fpga::Reg::kXcorrThreshold, peak / 2);

  staged.set_trigger_stages(fpga::kEventXcorr, 0, 0);
  radio.write_register_now(fpga::Reg::kTriggerConfig,
                           staged.read(fpga::Reg::kTriggerConfig));
  radio.write_register_now(fpga::Reg::kTriggerWindow, 0);
  staged.set_jammer(fpga::JamWaveform::kWhiteNoise, true, 0);
  radio.write_register_now(fpga::Reg::kJammerControl,
                           staged.read(fpga::Reg::kJammerControl));
  radio.write_register_now(fpga::Reg::kJamDuration, uptime);
}

TEST(UsrpN210, DetectsAndEmitsJamBurst) {
  UsrpN210 radio;
  const auto code = random_code(0xAB);
  program_for_code(radio, code, 32);

  dsp::cvec rx(512, dsp::cfloat{});
  for (std::size_t k = 0; k < code.size(); ++k) rx[100 + k] = code[k];

  const auto result = radio.stream(rx);
  EXPECT_EQ(result.jam_triggers, 1u);
  EXPECT_EQ(result.xcorr_detections, 1u);
  ASSERT_EQ(result.bursts.size(), 1u);
  // Burst begins right after the code completes (sample 163) + TX init.
  EXPECT_NEAR(static_cast<double>(result.bursts[0].start_sample), 166.0, 3.0);
  EXPECT_EQ(result.bursts[0].length, 32u);
  // And the emitted waveform is non-zero inside the burst.
  const auto& b = result.bursts[0];
  double power = 0.0;
  for (std::size_t k = b.start_sample; k < b.start_sample + b.length; ++k)
    power += std::norm(result.tx[k]);
  EXPECT_GT(power, 0.0);
}

TEST(UsrpN210, NoSignalNoJam) {
  UsrpN210 radio;
  program_for_code(radio, random_code(0xCD), 32);
  const auto result = radio.stream(dsp::cvec(2048, dsp::cfloat{}));
  EXPECT_EQ(result.jam_triggers, 0u);
  EXPECT_TRUE(result.bursts.empty());
  for (const auto s : result.tx) EXPECT_EQ(s, (dsp::cfloat{}));
}

TEST(UsrpN210, SettingsBusWriteLandsMidStream) {
  UsrpN210 radio;
  const auto code = random_code(0xEF);
  program_for_code(radio, code, 16);

  // Queue a threshold change through the bus: it applies ~400 ns in.
  radio.write_register(fpga::Reg::kXcorrThreshold, 0xFFFFFFFFu);

  // The code arrives well after the write completes -> no trigger.
  dsp::cvec rx(4096, dsp::cfloat{});
  for (std::size_t k = 0; k < code.size(); ++k) rx[2000 + k] = code[k];
  const auto result = radio.stream(rx);
  EXPECT_EQ(result.jam_triggers, 0u);
}

TEST(UsrpN210, ReconfigLatencyIsHundredsOfNanoseconds) {
  // Paper §4.3: personality switches cost the settings-bus latency.
  UsrpN210 radio;
  const auto cycles = radio.settings_bus().latency_cycles();
  const double latency_ns = cycles * 10.0;
  EXPECT_GE(latency_ns, 100.0);
  EXPECT_LT(latency_ns, 1000.0);
}

TEST(UsrpN210, RxGainAppliesBeforeDetection) {
  UsrpN210 radio;
  const auto code = random_code(0x77);
  program_for_code(radio, code, 8);
  // Signal 40 dB down: sign-bit slicing still sees it since there is no
  // noise, so detection should survive the attenuation...
  dsp::cvec rx(512, dsp::cfloat{});
  for (std::size_t k = 0; k < code.size(); ++k) rx[64 + k] = code[k] * 0.01f;
  const auto r1 = radio.stream(rx);
  EXPECT_EQ(r1.jam_triggers, 1u);
}

}  // namespace
}  // namespace rjf::radio
