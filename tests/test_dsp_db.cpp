#include "dsp/db.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rjf::dsp {
namespace {

TEST(Db, RatioConversionsInvertEachOther) {
  for (const double db : {-30.0, -10.0, 0.0, 3.0, 10.0, 20.0, 50.0}) {
    EXPECT_NEAR(db_from_ratio(ratio_from_db(db)), db, 1e-9);
  }
}

TEST(Db, KnownValues) {
  EXPECT_NEAR(ratio_from_db(10.0), 10.0, 1e-12);
  EXPECT_NEAR(ratio_from_db(3.0), 1.9953, 1e-3);
  EXPECT_NEAR(amplitude_from_db(20.0), 10.0, 1e-12);
  EXPECT_NEAR(amplitude_from_db(6.0), 1.9953, 1e-3);
}

TEST(Db, ZeroPowerIsMinusInfinity) {
  EXPECT_TRUE(std::isinf(db_from_ratio(0.0)));
  EXPECT_LT(db_from_ratio(0.0), 0.0);
  EXPECT_TRUE(std::isinf(db_from_ratio(-1.0)));
}

TEST(MeanPower, ConstantBuffer) {
  const cvec x(64, cfloat{1.0f, 0.0f});
  EXPECT_NEAR(mean_power(x), 1.0, 1e-9);
  const cvec y(64, cfloat{1.0f, 1.0f});
  EXPECT_NEAR(mean_power(y), 2.0, 1e-6);
}

TEST(MeanPower, EmptyIsZero) {
  EXPECT_EQ(mean_power({}), 0.0);
  EXPECT_TRUE(std::isinf(mean_power_db({})));
}

TEST(SetMeanPower, ScalesToTarget) {
  cvec x(128);
  for (std::size_t k = 0; k < x.size(); ++k)
    x[k] = cfloat{static_cast<float>(k % 7) - 3.0f, 1.0f};
  set_mean_power(std::span<cfloat>(x), 2.5);
  EXPECT_NEAR(mean_power(x), 2.5, 1e-5);
}

TEST(SetMeanPower, ZeroBufferUntouched) {
  cvec x(16, cfloat{});
  set_mean_power(std::span<cfloat>(x), 1.0);
  EXPECT_EQ(mean_power(x), 0.0);
}

}  // namespace
}  // namespace rjf::dsp
