// MAC framing, ARF, DCF backoff, and iperf accounting.
#include <gtest/gtest.h>

#include "net/arf.h"
#include "net/dcf.h"
#include "net/iperf.h"
#include "net/mac_frame.h"

namespace rjf::net {
namespace {

TEST(MacFrame, DataRoundTrip) {
  MacFrame frame;
  frame.type = FrameType::kData;
  frame.src = 2;
  frame.dst = 1;
  frame.sequence = 777;
  frame.payload.assign(100, 0xAB);
  const auto parsed = parse(serialize(frame));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, FrameType::kData);
  EXPECT_EQ(parsed->src, 2);
  EXPECT_EQ(parsed->dst, 1);
  EXPECT_EQ(parsed->sequence, 777);
  EXPECT_EQ(parsed->payload, frame.payload);
}

TEST(MacFrame, AckRoundTrip) {
  MacFrame ack;
  ack.type = FrameType::kAck;
  ack.src = 1;
  ack.dst = 2;
  const auto parsed = parse(serialize(ack));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, FrameType::kAck);
  EXPECT_TRUE(parsed->payload.empty());
}

TEST(MacFrame, FcsCatchesCorruption) {
  MacFrame frame;
  frame.payload.assign(64, 0x11);
  Bytes psdu = serialize(frame);
  for (const std::size_t pos : {0ul, 10ul, psdu.size() - 1}) {
    Bytes bad = psdu;
    bad[pos] ^= 0x40;
    EXPECT_FALSE(parse(bad).has_value()) << "pos " << pos;
  }
}

TEST(MacFrame, TruncationRejected) {
  MacFrame frame;
  frame.payload.assign(64, 0x22);
  Bytes psdu = serialize(frame);
  psdu.resize(psdu.size() - 10);
  EXPECT_FALSE(parse(psdu).has_value());
  EXPECT_FALSE(parse(Bytes{}).has_value());
}

TEST(MacFrame, SizesMatchHelpers) {
  MacFrame data;
  data.payload.assign(1470, 0);
  EXPECT_EQ(serialize(data).size(), data_psdu_size(1470));
  MacFrame ack;
  ack.type = FrameType::kAck;
  EXPECT_EQ(serialize(ack).size(), ack_psdu_size());
}

TEST(Arf, DropsAfterTwoFailures) {
  ArfRateControl arf(phy80211::Rate::kMbps54);
  arf.report_failure();
  EXPECT_EQ(arf.rate(), phy80211::Rate::kMbps54);
  arf.report_failure();
  EXPECT_EQ(arf.rate(), phy80211::Rate::kMbps48);
}

TEST(Arf, ClimbsAfterTenSuccesses) {
  ArfRateControl arf(phy80211::Rate::kMbps6);
  for (int k = 0; k < 9; ++k) arf.report_success();
  EXPECT_EQ(arf.rate(), phy80211::Rate::kMbps6);
  arf.report_success();
  EXPECT_EQ(arf.rate(), phy80211::Rate::kMbps9);
}

TEST(Arf, BoundedAtExtremes) {
  ArfRateControl arf(phy80211::Rate::kMbps6);
  for (int k = 0; k < 10; ++k) arf.report_failure();
  EXPECT_EQ(arf.rate(), phy80211::Rate::kMbps6);
  ArfRateControl top(phy80211::Rate::kMbps54);
  for (int k = 0; k < 100; ++k) top.report_success();
  EXPECT_EQ(top.rate(), phy80211::Rate::kMbps54);
}

TEST(Arf, SuccessResetsFailureStreak) {
  ArfRateControl arf(phy80211::Rate::kMbps54);
  arf.report_failure();
  arf.report_success();
  arf.report_failure();
  EXPECT_EQ(arf.rate(), phy80211::Rate::kMbps54);
}

TEST(Dcf, TimingConstants) {
  const DcfTiming timing;
  EXPECT_DOUBLE_EQ(timing.difs_s(), 28e-6);
  EXPECT_GT(timing.ack_timeout_s(), timing.sifs_s);
}

TEST(Dcf, BackoffWithinWindow) {
  const DcfTiming timing;
  Backoff backoff(timing, 5);
  for (int k = 0; k < 200; ++k) {
    const double b = backoff.draw();
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, timing.cw_min * timing.slot_s + 1e-12);
  }
}

TEST(Dcf, WindowDoublesAndResets) {
  const DcfTiming timing;
  Backoff backoff(timing, 5);
  EXPECT_EQ(backoff.cw(), 15u);
  backoff.on_failure();
  EXPECT_EQ(backoff.cw(), 31u);
  backoff.on_failure();
  EXPECT_EQ(backoff.cw(), 63u);
  for (int k = 0; k < 20; ++k) backoff.on_failure();
  EXPECT_EQ(backoff.cw(), 1023u);  // capped at CWmax
  backoff.on_success_or_drop();
  EXPECT_EQ(backoff.cw(), 15u);
}

TEST(Iperf, SourcePacesAtOfferedRate) {
  IperfConfig config;
  config.offered_mbps = 54.0;
  config.datagram_bytes = 1470;
  config.duration_s = 1.0;
  IperfSource source(config);
  // 54e6 / (1470*8) = 4591.8 datagrams per second.
  std::size_t count = 0;
  while (source.next_arrival_s() <= 1.0) {
    source.pop();
    ++count;
  }
  EXPECT_NEAR(static_cast<double>(count), 4591.8, 2.0);
  EXPECT_TRUE(std::isinf(source.next_arrival_s()));
}

TEST(Iperf, FinalIntervalDatagramIsSent) {
  // 1250-byte datagrams at 1 Mbps: exactly one datagram every 10 ms.
  IperfConfig config;
  config.offered_mbps = 1.0;
  config.datagram_bytes = 1250;
  config.duration_s = 0.1;
  IperfSource source(config);
  // Real iperf sends over the whole [0, 0.1] window: arrivals at
  // 0, 10, ..., 100 ms = 11 datagrams. floor(duration/interval) alone
  // (the pre-fix count) drops the final one.
  std::size_t count = 0;
  double last = -1.0;
  while (!std::isinf(source.next_arrival_s())) {
    last = source.next_arrival_s();
    source.pop();
    ++count;
  }
  EXPECT_EQ(count, 11u);
  EXPECT_NEAR(last, 0.1, 1e-9);
}

TEST(Iperf, ZeroOfferedRateProducesNoDatagrams) {
  IperfConfig config;
  config.offered_mbps = 0.0;  // -b 0: must not divide by zero
  config.duration_s = 60.0;
  IperfSource source(config);
  EXPECT_TRUE(std::isinf(source.next_arrival_s()));
}

TEST(Iperf, ZeroDurationStillSendsTheFirstDatagram) {
  IperfConfig config;
  config.offered_mbps = 54.0;
  config.duration_s = 0.0;
  IperfSource source(config);
  EXPECT_EQ(source.next_arrival_s(), 0.0);
  source.pop();
  EXPECT_TRUE(std::isinf(source.next_arrival_s()));
}

TEST(Iperf, ReportMath) {
  IperfReport report;
  report.datagrams_offered = 1000;
  report.datagrams_sent = 900;
  report.datagrams_received = 750;
  report.duration_s = 2.0;
  EXPECT_NEAR(report.bandwidth_kbps(1470), 750 * 1470 * 8 / 2.0 / 1e3, 1e-6);
  EXPECT_NEAR(report.prr_percent(), 75.0, 1e-9);
}

TEST(Iperf, EmptyReportIsZeroNotNan) {
  const IperfReport report;
  EXPECT_EQ(report.bandwidth_kbps(1470), 0.0);
  EXPECT_EQ(report.prr_percent(), 0.0);
}

}  // namespace
}  // namespace rjf::net
