// ReactiveJammer facade: presets, programming, runtime reconfiguration, and
// the detection-experiment harness.
#include <gtest/gtest.h>

#include "core/detection_experiment.h"
#include "core/presets.h"
#include "core/reactive_jammer.h"
#include "core/templates.h"
#include "dsp/noise.h"
#include "dsp/resampler.h"
#include "phy80211/preamble.h"
#include "phy80211/transmitter.h"

namespace rjf::core {
namespace {

TEST(JammerConfig, SamplesFromSeconds) {
  EXPECT_EQ(JammerConfig::samples_from_seconds(40e-9), 1u);
  EXPECT_EQ(JammerConfig::samples_from_seconds(0.0), 1u);
  EXPECT_EQ(JammerConfig::samples_from_seconds(1e-4), 2500u);   // 0.1 ms
  EXPECT_EQ(JammerConfig::samples_from_seconds(1e-5), 250u);    // 0.01 ms
  EXPECT_EQ(JammerConfig::samples_from_seconds(1000.0), 0xFFFFFFFFu);
}

TEST(Presets, WifiReactiveUsesCalibratedThreshold) {
  const auto config = wifi_reactive_preset(1e-4, 0.059);
  EXPECT_EQ(config.detection, DetectionMode::kCrossCorrelator);
  ASSERT_TRUE(config.xcorr_template.has_value());
  EXPECT_GT(config.xcorr_threshold, 0u);
  EXPECT_LT(config.xcorr_threshold, 0xFFFFFFFFu);
  EXPECT_EQ(config.jam_uptime_samples, 2500u);
}

TEST(Presets, ContinuousHasMaximalUptime) {
  const auto config = continuous_preset();
  EXPECT_EQ(config.detection, DetectionMode::kContinuous);
}

TEST(Presets, WimaxCombinesDetectors) {
  const auto config = wimax_combined_preset(1e-4, 1, 0);
  EXPECT_EQ(config.detection, DetectionMode::kXcorrOrEnergy);
  ASSERT_TRUE(config.xcorr_template.has_value());
}

TEST(ReactiveJammer, DetectsPreambleAndJams) {
  auto config = wifi_reactive_preset(4e-6, 0.059);
  ReactiveJammer jammer(config);

  // One short preamble burst at 25 MSPS inside noise.
  dsp::cvec sp;
  const auto period = phy80211::short_training_symbol();
  for (int rep = 0; rep < 10; ++rep)
    sp.insert(sp.end(), period.begin(), period.end());
  const dsp::cvec sp25 = dsp::resample(sp, 20e6, 25e6);

  dsp::cvec rx = dsp::make_wgn(2048, 1e-4, 5);
  for (std::size_t k = 0; k < sp25.size(); ++k) rx[256 + k] += sp25[k] * 0.5f;

  const auto result = jammer.observe(rx);
  EXPECT_GE(result.jam_triggers, 1u);
  ASSERT_FALSE(result.bursts.empty());
  EXPECT_EQ(result.bursts.front().length, 100u);  // 4 us = 100 samples
}

TEST(ReactiveJammer, ContinuousEngagesOnNoise) {
  ReactiveJammer jammer(continuous_preset());
  const auto result = jammer.observe(dsp::make_wgn(4096, 1e-4, 11));
  ASSERT_FALSE(result.bursts.empty());
  // Once on, it stays on to the end of the capture.
  const auto& last = result.bursts.back();
  EXPECT_EQ(last.start_sample + last.length, 4096u);
}

TEST(ReactiveJammer, ReconfigureTakesEffectAfterBusLatency) {
  auto config = energy_reactive_preset(4e-6, 10.0);
  ReactiveJammer jammer(config);

  // Disable jamming via runtime reconfiguration: switch to correlator
  // detection with an unreachable threshold (the metric caps at 384^2).
  auto off = config;
  off.detection = DetectionMode::kCrossCorrelator;
  off.xcorr_threshold = 0xFFFFFFFFu;
  jammer.reconfigure(off);

  // ...then hit the receiver with a strong burst well after the settings
  // bus has drained: no reaction expected.
  dsp::cvec rx = dsp::make_wgn(8192, 1e-6, 13);
  dsp::NoiseSource strong(0.25, 17);
  for (std::size_t k = 4096; k < 6000; ++k) rx[k] += strong.sample();
  const auto result = jammer.observe(rx);
  EXPECT_EQ(result.jam_triggers, 0u);
}

TEST(ReactiveJammer, SurgicalDelayShiftsBurst) {
  auto near_config = wifi_reactive_preset(4e-6, 0.5);
  near_config.jam_delay_samples = 0;
  auto far_config = near_config;
  far_config.jam_delay_samples = 200;

  const auto burst_start = [](ReactiveJammer& jammer) -> std::size_t {
    dsp::cvec sp;
    const auto period = phy80211::short_training_symbol();
    for (int rep = 0; rep < 10; ++rep)
      sp.insert(sp.end(), period.begin(), period.end());
    const dsp::cvec sp25 = dsp::resample(sp, 20e6, 25e6);
    dsp::cvec rx = dsp::make_wgn(2048, 1e-4, 19);
    for (std::size_t k = 0; k < sp25.size(); ++k) rx[256 + k] += sp25[k] * 0.5f;
    const auto result = jammer.observe(rx);
    return result.bursts.empty() ? 0 : result.bursts.front().start_sample;
  };

  ReactiveJammer near_jammer(near_config);
  ReactiveJammer far_jammer(far_config);
  const std::size_t near_start = burst_start(near_jammer);
  const std::size_t far_start = burst_start(far_jammer);
  ASSERT_GT(near_start, 0u);
  ASSERT_GT(far_start, 0u);
  EXPECT_EQ(far_start - near_start, 200u);
}

TEST(DetectionExperiment, PerfectAtHighSnrAbsentAtNone) {
  auto config = wifi_reactive_preset(4e-6, 0.059);
  ReactiveJammer jammer(config);

  std::vector<std::uint8_t> psdu(100, 0x77);
  phy80211::Transmitter tx({phy80211::Rate::kMbps24, 0x3D});
  const dsp::cvec frame = tx.transmit(psdu);

  DetectionRunConfig run;
  run.num_frames = 40;
  run.snr_db = 20.0;
  const auto high = run_detection_experiment(jammer, frame,
                                             DetectorTap::kXcorr, run);
  EXPECT_EQ(high.probability, 1.0);

  run.snr_db = -25.0;
  const auto low = run_detection_experiment(jammer, frame,
                                            DetectorTap::kXcorr, run);
  EXPECT_LT(low.probability, 0.1);
}

TEST(DetectionExperiment, ProbabilityMonotoneInSnr) {
  auto config = wifi_reactive_preset(4e-6, 0.5);
  ReactiveJammer jammer(config);
  std::vector<std::uint8_t> psdu(60, 0x2F);
  phy80211::Transmitter tx({phy80211::Rate::kMbps54, 0x51});
  const dsp::cvec frame = tx.transmit(psdu);

  DetectionRunConfig run;
  run.num_frames = 60;
  double prev = -0.01;
  for (const double snr : {-9.0, -3.0, 3.0, 12.0}) {
    run.snr_db = snr;
    const auto r = run_detection_experiment(jammer, frame,
                                            DetectorTap::kXcorr, run);
    EXPECT_GE(r.probability, prev - 0.15) << snr;  // allow noise wiggle
    prev = r.probability;
  }
  EXPECT_GT(prev, 0.9);
}

TEST(DetectionExperiment, EnergyTapSeesSingleDetectionAtHighSnr) {
  auto config = energy_reactive_preset(4e-6, 10.0);
  ReactiveJammer jammer(config);
  std::vector<std::uint8_t> psdu(200, 0x5C);
  phy80211::Transmitter tx({phy80211::Rate::kMbps54, 0x19});
  const dsp::cvec frame = tx.transmit(psdu);

  DetectionRunConfig run;
  run.num_frames = 50;
  run.snr_db = 16.0;
  const auto r = run_detection_experiment(jammer, frame,
                                          DetectorTap::kEnergyHigh, run);
  EXPECT_GT(r.probability, 0.95);
  EXPECT_NEAR(r.detections_per_frame, 1.0, 0.3);  // Fig. 8's plateau
}

}  // namespace
}  // namespace rjf::core
