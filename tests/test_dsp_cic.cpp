#include "dsp/cic.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/db.h"

namespace rjf::dsp {
namespace {

cvec tone(double cycles_per_sample, std::size_t n) {
  cvec x(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double p = 2.0 * std::numbers::pi * cycles_per_sample * k;
    x[k] = cfloat{static_cast<float>(std::cos(p)), static_cast<float>(std::sin(p))};
  }
  return x;
}

TEST(CicDecimator, RejectsBadParameters) {
  EXPECT_THROW(CicDecimator(0, 4), std::invalid_argument);
  EXPECT_THROW(CicDecimator(4, 0), std::invalid_argument);
}

TEST(CicDecimator, OutputLength) {
  CicDecimator cic(4, 4);
  EXPECT_EQ(cic.process(cvec(1000)).size(), 250u);
}

TEST(CicDecimator, UnityDcGainAfterCompensation) {
  CicDecimator cic(4, 4);
  const cvec out = cic.process(cvec(2000, cfloat{1.0f, 0.0f}));
  // After the transient the compensated output sits at 1.0.
  EXPECT_NEAR(out.back().real(), 1.0f, 1e-4f);
  EXPECT_NEAR(out.back().imag(), 0.0f, 1e-4f);
}

TEST(CicDecimator, PassbandTonePreserved) {
  CicDecimator cic(4, 4);
  const cvec out = cic.process(tone(0.01, 8000));
  const std::span<const cfloat> steady(out.data() + 500, out.size() - 500);
  EXPECT_NEAR(mean_power(steady), 1.0, 0.05);
}

TEST(CicDecimator, AliasBandAttenuated) {
  // CIC nulls sit at multiples of the output rate: a tone right at the
  // first null frequency (1/R cycles/sample) must be strongly suppressed.
  CicDecimator cic(4, 4);
  const cvec out = cic.process(tone(0.25, 8000));
  const std::span<const cfloat> steady(out.data() + 500, out.size() - 500);
  EXPECT_LT(mean_power_db(steady), -40.0);
}

TEST(CicDecimator, MoreStagesMoreAttenuation) {
  const auto stopband_power = [](std::size_t stages) {
    CicDecimator cic(4, stages);
    const cvec out = cic.process(tone(0.21, 8000));
    const std::span<const cfloat> steady(out.data() + 500, out.size() - 500);
    return mean_power_db(steady);
  };
  EXPECT_LT(stopband_power(4), stopband_power(2) - 10.0);
}

TEST(CicDecimator, ResetClearsState) {
  CicDecimator cic(4, 3);
  (void)cic.process(cvec(100, cfloat{1.0f, 0.0f}));
  cic.reset();
  const cvec out = cic.process(cvec(100, cfloat{}));
  for (const auto s : out) EXPECT_EQ(s, (cfloat{}));
}

TEST(CicInterpolator, OutputLengthAndDc) {
  CicInterpolator cic(4, 4);
  const cvec out = cic.process(cvec(500, cfloat{1.0f, 0.0f}));
  EXPECT_EQ(out.size(), 2000u);
  EXPECT_NEAR(out.back().real(), 1.0f, 1e-3f);
}

TEST(CicChain, DecimateInterpolateRoundTrip) {
  CicInterpolator up(4, 4);
  CicDecimator down(4, 4);
  const cvec in = tone(0.005, 2000);
  const cvec out = down.process(up.process(in));
  ASSERT_EQ(out.size(), in.size());
  const std::span<const cfloat> steady(out.data() + 400, out.size() - 400);
  EXPECT_NEAR(mean_power(steady), 1.0, 0.1);
}

}  // namespace
}  // namespace rjf::dsp
