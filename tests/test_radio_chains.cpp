// DDC/DUC chain, settings bus, and SBX front-end tests.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/db.h"
#include "radio/ddc_duc.h"
#include "radio/frontend.h"
#include "radio/settings_bus.h"

namespace rjf::radio {
namespace {

dsp::cvec tone(double freq_hz, double rate_hz, std::size_t n) {
  dsp::cvec x(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double p = 2.0 * std::numbers::pi * freq_hz * k / rate_hz;
    x[k] = dsp::cfloat{static_cast<float>(std::cos(p)),
                       static_cast<float>(std::sin(p))};
  }
  return x;
}

TEST(DdcChain, DecimatesByFour) {
  DdcChain ddc(4, 0.0, 100e6);
  const auto out = ddc.process(dsp::cvec(4000, dsp::cfloat{1.0f, 0.0f}));
  EXPECT_EQ(out.size(), 1000u);
}

TEST(DdcChain, MixesOffsetToBaseband) {
  // A tone at +5 MHz with a 5 MHz CORDIC offset lands at DC after the DDC.
  DdcChain ddc(4, 5e6, 100e6);
  const auto out = ddc.process(tone(5e6, 100e6, 8000));
  // At DC the post-transient samples barely rotate.
  for (std::size_t k = out.size() / 2; k < out.size() / 2 + 50; ++k) {
    const auto rot = out[k + 1] * std::conj(out[k]);
    EXPECT_NEAR(std::arg(rot), 0.0, 0.01);
  }
}

TEST(DucChain, InterpolatesByFour) {
  DucChain duc(4, 0.0, 100e6);
  const auto out = duc.process(dsp::cvec(500, dsp::cfloat{1.0f, 0.0f}));
  EXPECT_EQ(out.size(), 2000u);
  EXPECT_EQ(DucChain::fill_latency_cycles(), 7u);
}

TEST(DdcDuc, RoundTripPreservesTone) {
  DucChain duc(4, 0.0, 100e6);
  DdcChain ddc(4, 0.0, 100e6);
  const auto in = tone(1e6, 25e6, 2000);
  const auto out = ddc.process(duc.process(in));
  ASSERT_EQ(out.size(), in.size());
  const std::span<const dsp::cfloat> mid(out.data() + 500, 1000);
  EXPECT_NEAR(dsp::mean_power(mid), 1.0, 0.1);
}

TEST(SettingsBus, WriteAppliesAfterLatency) {
  SettingsBus bus(40);
  fpga::RegisterFile regs;
  bus.write(fpga::Reg::kXcorrThreshold, 999, 100);
  EXPECT_EQ(bus.service(regs, 100), 0u);
  EXPECT_EQ(bus.service(regs, 139), 0u);
  EXPECT_EQ(bus.service(regs, 140), 1u);
  EXPECT_EQ(regs.read(fpga::Reg::kXcorrThreshold), 999u);
  EXPECT_TRUE(bus.idle());
}

TEST(SettingsBus, BurstSerialises) {
  // Paper §4.3: switching personalities costs the bus latency per write
  // ("hundreds of ns").
  SettingsBus bus(40);
  fpga::RegisterFile regs;
  bus.write(fpga::Reg::kXcorrThreshold, 1, 0);
  bus.write(fpga::Reg::kJamDuration, 2, 0);
  bus.write(fpga::Reg::kEnergyFloor, 3, 0);
  EXPECT_EQ(bus.last_completion(), 120u);  // 3 writes x 40 cycles
  EXPECT_EQ(bus.service(regs, 40), 1u);
  EXPECT_EQ(bus.service(regs, 80), 1u);
  EXPECT_EQ(bus.service(regs, 200), 1u);
}

TEST(SettingsBus, EmptyBusHasNoCompletionTimes) {
  // Regression: an idle bus used to answer 0 from last_completion() and
  // UINT64_MAX from next_completion() — two different "nothing pending"
  // sentinels, one of which (0) is a valid fabric time. Both now return
  // nullopt, and both flip to real times together once a write is queued.
  SettingsBus bus(40);
  EXPECT_FALSE(bus.last_completion().has_value());
  EXPECT_FALSE(bus.next_completion().has_value());

  fpga::RegisterFile regs;
  bus.write(fpga::Reg::kXcorrThreshold, 1, 100);
  EXPECT_EQ(bus.next_completion(), 140u);
  EXPECT_EQ(bus.last_completion(), 140u);

  // Draining the queue returns both to nullopt, not to stale times.
  (void)bus.service(regs, 1000);
  EXPECT_TRUE(bus.idle());
  EXPECT_FALSE(bus.last_completion().has_value());
  EXPECT_FALSE(bus.next_completion().has_value());
}

TEST(SettingsBus, OrderPreserved) {
  SettingsBus bus(10);
  fpga::RegisterFile regs;
  bus.write(fpga::Reg::kJamDuration, 1, 0);
  bus.write(fpga::Reg::kJamDuration, 2, 0);
  (void)bus.service(regs, 1000);
  EXPECT_EQ(regs.read(fpga::Reg::kJamDuration), 2u);
}

TEST(SbxFrontend, TuneRangeEnforced) {
  SbxFrontend fe;
  EXPECT_NO_THROW(fe.tune(2.484e9));  // WiFi channel 14
  EXPECT_NO_THROW(fe.tune(2.608e9));  // the paper's WiMAX carrier
  EXPECT_NO_THROW(fe.tune(400e6));
  EXPECT_THROW(fe.tune(100e6), std::out_of_range);
  EXPECT_THROW(fe.tune(5.8e9), std::out_of_range);
}

TEST(SbxFrontend, GainClampsToHardwareRange) {
  SbxFrontend fe;
  fe.set_tx_gain(100.0);
  EXPECT_DOUBLE_EQ(fe.tx_gain_db(), 31.5);
  fe.set_rx_gain(-5.0);
  EXPECT_DOUBLE_EQ(fe.rx_gain_db(), 0.0);
}

TEST(SbxFrontend, GainAppliedToWaveform) {
  SbxFrontend fe;
  fe.set_tx_gain(20.0);  // x10 amplitude
  const auto out = fe.apply_tx(dsp::cvec(4, dsp::cfloat{0.01f, 0.0f}));
  EXPECT_NEAR(out[0].real(), 0.1f, 1e-5f);
}

}  // namespace
}  // namespace rjf::radio
