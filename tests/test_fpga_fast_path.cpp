// Equivalence tests for the host fast path (DESIGN.md "Host fast path"):
// the bit-parallel CrossCorrelator::step() against the scalar shift-register
// reference, and DspCore::run_block() against the per-tick cadence — both
// must be bit-identical, including trigger edges and VITA timestamps.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/fabric_units.h"
#include "core/templates.h"
#include "dsp/noise.h"
#include "dsp/resampler.h"
#include "dsp/rng.h"
#include "fpga/cross_correlator.h"
#include "fpga/dsp_core.h"
#include "phy80211/preamble.h"

namespace rjf::fpga {
namespace {

// Drive two instances of the same correlator config through the fast and
// reference paths and require identical outputs on every sample.
void expect_paths_match(const CorrelatorTemplate& tpl, std::uint32_t threshold,
                        std::span<const dsp::IQ16> stream) {
  CrossCorrelator fast;
  CrossCorrelator ref;
  fast.set_coefficients(tpl.coef_i, tpl.coef_q);
  ref.set_coefficients(tpl.coef_i, tpl.coef_q);
  fast.set_threshold(threshold);
  ref.set_threshold(threshold);
  for (std::size_t k = 0; k < stream.size(); ++k) {
    const auto a = fast.step(stream[k]);
    const auto b = ref.step_reference(stream[k]);
    ASSERT_EQ(a.metric, b.metric) << "sample " << k;
    ASSERT_EQ(a.trigger, b.trigger) << "sample " << k;
  }
}

dsp::iqvec noise_stream(std::size_t n, double power, std::uint64_t seed) {
  dsp::NoiseSource noise(power, seed);
  return dsp::to_iq16(noise.block(n));
}

// 20 MSPS standard preamble resampled to the fabric's 25 MSPS grid.
dsp::iqvec fabric_preamble(const dsp::cvec& wave, float scale) {
  const dsp::Resampler rs(20e6, 25e6);
  const dsp::cvec at25 = rs.resample(wave);
  dsp::iqvec out(at25.size());
  for (std::size_t k = 0; k < at25.size(); ++k)
    out[k] = dsp::to_iq16(at25[k] * scale);
  return out;
}

TEST(FastPathCorrelator, MatchesReferenceOnRandomNoise) {
  const auto tpl = core::wifi_long_preamble_template();
  expect_paths_match(tpl, 1u << 14, noise_stream(50000, 0.05, 11));
}

TEST(FastPathCorrelator, MatchesReferenceOnRandomTemplates) {
  // Random coefficients across the full 3-bit range (including the -4
  // boundary that exercises the sign bit-plane) against random signs.
  dsp::Xoshiro256 rng(0xFA57);
  for (int round = 0; round < 8; ++round) {
    CorrelatorTemplate tpl;
    for (std::size_t k = 0; k < kCorrelatorLength; ++k) {
      tpl.coef_i[k] = static_cast<int>(rng.uniform() * 8.0) - 4;
      tpl.coef_q[k] = static_cast<int>(rng.uniform() * 8.0) - 4;
    }
    expect_paths_match(tpl, 1u << 12,
                       noise_stream(4000, 0.2, 0x1000u + round));
  }
}

TEST(FastPathCorrelator, MatchesReferenceOnShortPreambleStream) {
  const auto tpl = core::wifi_short_preamble_template();
  dsp::iqvec stream = noise_stream(5000, 0.001, 21);
  const dsp::iqvec burst = fabric_preamble(phy80211::short_preamble(), 0.5f);
  stream.insert(stream.end(), burst.begin(), burst.end());
  const dsp::iqvec tail = noise_stream(5000, 0.001, 22);
  stream.insert(stream.end(), tail.begin(), tail.end());

  // Make sure the stream actually crosses the trigger threshold somewhere,
  // so the comparison covers the trigger path, not just quiet metrics.
  CrossCorrelator probe;
  probe.set_coefficients(tpl.coef_i, tpl.coef_q);
  std::uint32_t peak = 0;
  for (const auto s : stream) peak = std::max(peak, probe.step(s).metric);
  ASSERT_GT(peak, 0u);
  expect_paths_match(tpl, peak * 3 / 4, stream);
}

TEST(FastPathCorrelator, MatchesReferenceOnLongPreambleStream) {
  const auto tpl = core::wifi_long_preamble_template();
  dsp::iqvec stream = noise_stream(5000, 0.001, 31);
  const dsp::iqvec burst = fabric_preamble(phy80211::long_preamble(), 0.5f);
  stream.insert(stream.end(), burst.begin(), burst.end());

  CrossCorrelator probe;
  probe.set_coefficients(tpl.coef_i, tpl.coef_q);
  std::uint32_t peak = 0;
  for (const auto s : stream) peak = std::max(peak, probe.step(s).metric);
  ASSERT_GT(peak, 0u);
  expect_paths_match(tpl, peak * 3 / 4, stream);
}

TEST(FastPathCorrelator, ThresholdBoundaryAgreesAcrossPaths) {
  const auto tpl = core::wifi_short_preamble_template();
  const dsp::iqvec burst = fabric_preamble(phy80211::short_preamble(), 0.5f);

  CrossCorrelator probe;
  probe.set_coefficients(tpl.coef_i, tpl.coef_q);
  std::uint32_t peak = 0;
  for (const auto s : burst) peak = std::max(peak, probe.step(s).metric);
  ASSERT_GT(peak, 0u);

  // metric > threshold is strict: at threshold == peak neither path may
  // trigger; one below, both must.
  for (const std::uint32_t threshold : {peak, peak - 1}) {
    CrossCorrelator fast;
    CrossCorrelator ref;
    fast.set_coefficients(tpl.coef_i, tpl.coef_q);
    ref.set_coefficients(tpl.coef_i, tpl.coef_q);
    fast.set_threshold(threshold);
    ref.set_threshold(threshold);
    bool fast_fired = false;
    bool ref_fired = false;
    for (const auto s : burst) {
      fast_fired |= fast.step(s).trigger;
      ref_fired |= ref.step_reference(s).trigger;
    }
    EXPECT_EQ(fast_fired, ref_fired) << "threshold " << threshold;
    EXPECT_EQ(fast_fired, threshold < peak) << "threshold " << threshold;
  }
}

TEST(FastPathCorrelator, MaxMetricCachedAtLoadTime) {
  const auto tpl = core::wifi_long_preamble_template();
  CrossCorrelator corr;
  corr.set_coefficients(tpl.coef_i, tpl.coef_q);
  std::int64_t sum = 0;
  for (std::size_t k = 0; k < kCorrelatorLength; ++k)
    sum += std::abs(tpl.coef_i[k]) + std::abs(tpl.coef_q[k]);
  EXPECT_EQ(corr.max_metric(), static_cast<std::uint32_t>(sum * sum));

  // Reloading different coefficients must refresh the cache.
  const auto tpl2 = core::wifi_short_preamble_template();
  corr.set_coefficients(tpl2.coef_i, tpl2.coef_q);
  sum = 0;
  for (std::size_t k = 0; k < kCorrelatorLength; ++k)
    sum += std::abs(tpl2.coef_i[k]) + std::abs(tpl2.coef_q[k]);
  EXPECT_EQ(corr.max_metric(), static_cast<std::uint32_t>(sum * sum));
}

// ---------------------------------------------------------------------------
// run_block() vs per-sample tick() equivalence.

void expect_outputs_equal(const CoreOutput& a, const CoreOutput& b,
                          std::uint64_t tick_index) {
  ASSERT_EQ(a.rx_strobe, b.rx_strobe) << "tick " << tick_index;
  ASSERT_EQ(a.xcorr_trigger, b.xcorr_trigger) << "tick " << tick_index;
  ASSERT_EQ(a.energy_high, b.energy_high) << "tick " << tick_index;
  ASSERT_EQ(a.energy_low, b.energy_low) << "tick " << tick_index;
  ASSERT_EQ(a.jam_trigger, b.jam_trigger) << "tick " << tick_index;
  ASSERT_EQ(a.vita_ticks, b.vita_ticks) << "tick " << tick_index;
  ASSERT_EQ(a.tx.rf_active, b.tx.rf_active) << "tick " << tick_index;
  ASSERT_EQ(a.tx.sample_strobe, b.tx.sample_strobe) << "tick " << tick_index;
  ASSERT_EQ(a.tx.sample, b.tx.sample) << "tick " << tick_index;
}

// Program a two-stage (energy-rise then xcorr — the rise leads the
// correlator peak by the 64-tap fill) white-noise jammer so the equivalence
// run exercises the FSM window logic, the jam delay/uptime machinery and
// the TX sample path, not just the detectors.
void program_jammer(DspCore& core, std::uint32_t xcorr_threshold) {
  auto& regs = core.registers();
  program_template(regs, core::wifi_short_preamble_template());
  regs.write(Reg::kXcorrThreshold, xcorr_threshold);
  regs.write(Reg::kEnergyThreshHigh, core::energy_threshold_q88_from_db(6.0));
  regs.write(Reg::kEnergyThreshLow, core::energy_threshold_q88_from_db(6.0));
  regs.write(Reg::kEnergyFloor, 1000);
  regs.set_trigger_stages(kEventEnergyHigh, kEventXcorr, 0);
  regs.write(Reg::kTriggerWindow, 4096);
  regs.set_jammer(JamWaveform::kWhiteNoise, true, 2);
  regs.write(Reg::kJamDuration, 100);
  core.apply_registers();
}

TEST(RunBlockEquivalence, MillionSampleStreamBitIdentical) {
  // Noise floor with a short preamble burst every ~10k samples: plenty of
  // xcorr + energy events, jam triggers and TX bursts across >= 1M samples.
  const dsp::iqvec burst = fabric_preamble(phy80211::short_preamble(), 0.5f);

  // Calibrate a threshold the bursts comfortably cross.
  DspCore probe;
  program_jammer(probe, 1);
  std::uint32_t peak = 0;
  {
    CrossCorrelator c;
    const auto tpl = core::wifi_short_preamble_template();
    c.set_coefficients(tpl.coef_i, tpl.coef_q);
    for (const auto s : burst) peak = std::max(peak, c.step(s).metric);
  }
  ASSERT_GT(peak, 0u);

  DspCore tick_core;
  DspCore block_core;
  program_jammer(tick_core, peak / 2);
  program_jammer(block_core, peak / 2);

  constexpr std::size_t kTotalSamples = 1'050'000;
  constexpr std::size_t kBurstEvery = 10'000;
  // Odd chunk length so run_block boundaries sweep across burst positions.
  constexpr std::size_t kChunk = 4099;

  dsp::NoiseSource noise(0.002, 77);
  std::vector<CoreOutput> block_out(kChunk * kClocksPerSample);
  std::size_t produced = 0;
  std::size_t burst_pos = 0;  // next index within an in-progress burst
  std::size_t since_burst = 0;
  std::uint64_t tick_index = 0;

  dsp::iqvec chunk;
  chunk.reserve(kChunk);
  while (produced < kTotalSamples) {
    chunk.clear();
    const std::size_t len = std::min(kChunk, kTotalSamples - produced);
    for (std::size_t k = 0; k < len; ++k) {
      if (burst_pos < burst.size()) {
        chunk.push_back(burst[burst_pos++]);
      } else if (++since_burst >= kBurstEvery) {
        since_burst = 0;
        burst_pos = 0;
        chunk.push_back(dsp::to_iq16(noise.sample()));
      } else {
        chunk.push_back(dsp::to_iq16(noise.sample()));
      }
    }
    block_core.run_block(chunk,
                         std::span(block_out).first(len * kClocksPerSample));
    for (std::size_t k = 0; k < len; ++k) {
      for (std::uint32_t c = 0; c < kClocksPerSample; ++c) {
        const CoreOutput ref =
            tick_core.tick(c == 0 ? std::optional<dsp::IQ16>(chunk[k])
                                  : std::nullopt);
        expect_outputs_equal(block_out[k * kClocksPerSample + c], ref,
                             tick_index);
        ++tick_index;
      }
      if (::testing::Test::HasFatalFailure()) return;  // don't flood on break
    }
    produced += len;
  }

  // The run must actually have jammed, or the equivalence proved nothing.
  EXPECT_GT(block_core.feedback().jam_triggers, 0u);
  EXPECT_GT(block_core.feedback().xcorr_detections, 0u);
  EXPECT_GT(block_core.feedback().energy_high_detections, 0u);

  // Feedback counters and VITA time agree in aggregate too.
  const auto& a = block_core.feedback();
  const auto& b = tick_core.feedback();
  EXPECT_EQ(a.xcorr_detections, b.xcorr_detections);
  EXPECT_EQ(a.energy_high_detections, b.energy_high_detections);
  EXPECT_EQ(a.energy_low_detections, b.energy_low_detections);
  EXPECT_EQ(a.jam_triggers, b.jam_triggers);
  EXPECT_EQ(a.last_trigger_vita, b.last_trigger_vita);
  EXPECT_EQ(a.vita_ticks, b.vita_ticks);
}

TEST(RunBlockEquivalence, MisalignedStrobePhaseFallsBackToTickCadence) {
  DspCore tick_core;
  DspCore block_core;
  program_jammer(tick_core, 1u << 10);
  program_jammer(block_core, 1u << 10);

  // Knock both cores off strobe alignment by one raw fabric clock.
  (void)tick_core.tick(dsp::IQ16{100, -100});
  (void)block_core.tick(dsp::IQ16{100, -100});

  const dsp::iqvec stream = noise_stream(2000, 0.01, 99);
  std::vector<CoreOutput> block_out(stream.size() * kClocksPerSample);
  block_core.run_block(stream, block_out);

  std::uint64_t tick_index = 0;
  for (std::size_t k = 0; k < stream.size(); ++k) {
    for (std::uint32_t c = 0; c < kClocksPerSample; ++c) {
      const CoreOutput ref =
          tick_core.tick(c == 0 ? std::optional<dsp::IQ16>(stream[k])
                                : std::nullopt);
      expect_outputs_equal(block_out[k * kClocksPerSample + c], ref,
                           tick_index);
      ++tick_index;
    }
  }
}

TEST(RunBlockEquivalence, ProcessStillReturnsPerTickTrace) {
  DspCore core;
  program_jammer(core, 1u << 10);
  const dsp::iqvec stream = noise_stream(256, 0.01, 5);
  const auto trace = core.process(stream);
  ASSERT_EQ(trace.size(), stream.size() * kClocksPerSample);
  for (std::size_t k = 0; k < trace.size(); ++k) {
    EXPECT_EQ(trace[k].rx_strobe, k % kClocksPerSample == 0);
    EXPECT_EQ(trace[k].vita_ticks, k);
  }
}

}  // namespace
}  // namespace rjf::fpga
