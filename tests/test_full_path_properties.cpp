// Cross-cutting property tests: the full ADC -> DDC -> fabric receive path,
// register-fuzz robustness of the DSP core, and end-to-end determinism of
// the experiment harnesses (every number in EXPERIMENTS.md must be
// regenerable bit-for-bit from its seed).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/detection_experiment.h"
#include "core/presets.h"
#include "core/fabric_units.h"
#include "dsp/noise.h"
#include "dsp/rng.h"
#include "fpga/dsp_core.h"
#include "net/wifi_network.h"
#include "phy80211/transmitter.h"
#include "radio/adc_dac.h"
#include "radio/ddc_duc.h"

namespace rjf {
namespace {

TEST(FullPath, AdcDdcCoreDetectsToneBurst) {
  // 100 MSPS ADC stream with a +5 MHz tone burst -> DDC (decimate 4, mix
  // 5 MHz) -> 25 MSPS -> fabric energy detector. The full receive chain of
  // Fig. 1 in one test.
  const double adc_rate = 100e6;
  dsp::cvec rf(40000, dsp::cfloat{});
  dsp::NoiseSource floor(1e-8, 3);
  floor.add_to(rf);
  for (std::size_t k = 20000; k < 36000; ++k) {
    const double p = 2.0 * std::numbers::pi * 5e6 * k / adc_rate;
    rf[k] += dsp::cfloat{static_cast<float>(0.25 * std::cos(p)),
                         static_cast<float>(0.25 * std::sin(p))};
  }

  radio::DdcChain ddc(4, 5e6, adc_rate);
  const dsp::cvec baseband = ddc.process(rf);
  ASSERT_EQ(baseband.size(), 10000u);

  fpga::DspCore core;
  core.registers().write(fpga::Reg::kEnergyThreshHigh,
                         core::energy_threshold_q88_from_db(10.0));
  core.registers().write(fpga::Reg::kEnergyThreshLow, ~0u);
  // Floor well above the quantised noise floor so sparse-count noise
  // fluctuations can't arm the comparator before the burst.
  core.registers().write(fpga::Reg::kEnergyFloor, 1u << 16);
  core.registers().set_trigger_stages(fpga::kEventEnergyHigh, 0, 0);
  core.registers().set_jammer(fpga::JamWaveform::kWhiteNoise, true, 0);
  core.registers().write(fpga::Reg::kJamDuration, 64);
  core.apply_registers();

  const radio::Adc adc(14);
  std::uint64_t detections = 0;
  std::size_t first_detection = 0;
  std::size_t n = 0;
  for (const auto s : baseband) {
    ++n;
    const auto out = core.tick(adc.sample(s));
    if (out.energy_high) {
      ++detections;
      if (first_detection == 0) first_detection = n;
    }
    for (int c = 1; c < 4; ++c) (void)core.tick(std::nullopt);
  }
  // The detector fires at the burst onset and nowhere before it. The
  // anti-alias filter's edge ringing can re-cross the comparator a few
  // times (the same over-triggering band Fig. 8 shows near threshold).
  EXPECT_GE(detections, 1u);
  EXPECT_LE(detections, 20u);
  EXPECT_GE(first_detection, 5000u);   // burst starts at output sample 5000
  EXPECT_LE(first_detection, 5100u);
  EXPECT_GE(core.feedback().jam_triggers, 1u);
}

TEST(Fuzz, RandomRegisterContentsNeverBreakTheCore) {
  // Hostile/garbage host software must not be able to wedge the fabric:
  // whatever the 24 registers hold, ticking the core stays well-defined
  // and the feedback counters stay monotonic.
  dsp::Xoshiro256 rng(0xF022);
  for (int trial = 0; trial < 30; ++trial) {
    fpga::DspCore core;
    for (std::size_t r = 0; r < fpga::kNumUserRegisters; ++r)
      core.registers().write(static_cast<fpga::Reg>(r),
                             static_cast<std::uint32_t>(rng.next()));
    core.apply_registers();

    dsp::NoiseSource noise(0.05, rng.next());
    std::uint64_t prev_triggers = 0;
    for (int k = 0; k < 2000; ++k) {
      (void)core.tick(dsp::to_iq16(noise.sample()));
      for (int c = 1; c < 4; ++c) (void)core.tick(std::nullopt);
      ASSERT_GE(core.feedback().jam_triggers, prev_triggers);
      prev_triggers = core.feedback().jam_triggers;
    }
    ASSERT_EQ(core.feedback().vita_ticks, 8000u);
  }
}

TEST(Fuzz, FsmSurvivesRandomEventStreams) {
  dsp::Xoshiro256 rng(0xF5E);
  for (int trial = 0; trial < 20; ++trial) {
    fpga::TriggerFsm fsm;
    fsm.configure(static_cast<std::uint32_t>(rng.next()),
                  static_cast<std::uint32_t>(rng.next()),
                  static_cast<std::uint32_t>(rng.next()),
                  static_cast<std::uint32_t>(rng.next() % 1000));
    for (int k = 0; k < 5000; ++k) {
      fpga::DetectorEvents events;
      events.xcorr = rng.next() & 1u;
      events.energy_high = rng.next() & 1u;
      events.energy_low = rng.next() & 1u;
      (void)fsm.clock(events);
      ASSERT_GE(fsm.stage(), 0);
      ASSERT_LE(fsm.stage(), 2);
    }
  }
}

TEST(Determinism, DetectionExperimentRepeatsExactly) {
  auto config = core::wifi_reactive_preset(1e-4, 0.52);
  std::vector<std::uint8_t> psdu(120, 0x44);
  phy80211::Transmitter tx({phy80211::Rate::kMbps24, 0x5D});
  const dsp::cvec frame = tx.transmit(psdu);

  core::DetectionRunConfig run;
  run.num_frames = 50;
  run.snr_db = 1.0;
  run.seed = 0xDE7;

  core::ReactiveJammer a(config), b(config);
  const auto ra = core::run_detection_experiment(a, frame,
                                                 core::DetectorTap::kXcorr, run);
  const auto rb = core::run_detection_experiment(b, frame,
                                                 core::DetectorTap::kXcorr, run);
  EXPECT_EQ(ra.frames_detected, rb.frames_detected);
  EXPECT_EQ(ra.total_detections, rb.total_detections);
}

TEST(Determinism, NetworkSimRepeatsExactly) {
  net::WifiNetworkConfig config;
  config.iperf.duration_s = 0.03;
  config.jammer = core::energy_reactive_preset(1e-4, 10.0);
  config.jammer_tx_power = 3e-3;
  config.seed = 77;

  net::WifiNetworkSim a(config), b(config);
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(ra.report.datagrams_received, rb.report.datagrams_received);
  EXPECT_EQ(ra.jam_triggers, rb.jam_triggers);
  EXPECT_EQ(ra.retries, rb.retries);
  EXPECT_DOUBLE_EQ(ra.measured_sir_db, rb.measured_sir_db);
}

TEST(Determinism, DifferentSeedsDiverge) {
  net::WifiNetworkConfig config;
  config.iperf.duration_s = 0.05;
  config.jammer = core::energy_reactive_preset(1e-4, 10.0);
  config.jammer_tx_power = 1e-2;  // lossy regime: trajectories are chaotic

  // Different randomness must actually reach the simulation (backoff,
  // noise). Aggregate counters of two particular seeds can coincide, so
  // require divergence across a small seed set.
  std::vector<std::uint64_t> fingerprints;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    config.seed = seed;
    const auto r = net::WifiNetworkSim(config).run();
    fingerprints.push_back(r.retries * 1000003ull + r.data_frames_sent * 997ull +
                           r.jam_triggers);
  }
  bool any_differ = false;
  for (std::size_t k = 1; k < fingerprints.size(); ++k)
    any_differ |= fingerprints[k] != fingerprints[0];
  EXPECT_TRUE(any_differ);
}

class PayloadSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PayloadSizeSweep, OfdmRoundTripAcrossSizes) {
  const std::size_t size = GetParam();
  std::vector<std::uint8_t> psdu(size);
  dsp::Xoshiro256 rng(size);
  for (auto& b : psdu) b = static_cast<std::uint8_t>(rng.next());
  phy80211::Transmitter tx({phy80211::Rate::kMbps36, 0x47});
  dsp::cvec wave = tx.transmit(psdu);
  dsp::NoiseSource noise(1e-4, size);
  noise.add_to(wave);
  const auto r = phy80211::Receiver().receive(wave);
  ASSERT_TRUE(r.signal_valid) << size;
  EXPECT_EQ(r.psdu, psdu) << size;
}

INSTANTIATE_TEST_SUITE_P(Sizes, PayloadSizeSweep,
                         ::testing::Values(1, 2, 17, 64, 100, 333, 1024, 1534,
                                           2345, 4095));

}  // namespace
}  // namespace rjf
