// Deterministic parallel sweep engine: shard scheduling, seed derivation,
// worker-pool execution, trial independence of the detection harness, and
// the bit-identical-across-thread-counts guarantee.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <thread>
#include <map>
#include <numbers>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/detection_experiment.h"
#include "core/presets.h"
#include "core/sweep.h"
#include "core/templates.h"
#include "dsp/rng.h"
#include "phy80211/preamble.h"

namespace rjf::core {
namespace {

// A small pseudo-frame (one long training symbol) keeps each trial's
// capture short so multi-hundred-trial sweeps stay fast in CI.
dsp::cvec test_frame() { return phy80211::long_training_symbol(); }

JammerConfig xcorr_config() {
  JammerConfig config;
  config.detection = DetectionMode::kCrossCorrelator;
  config.xcorr_template = wifi_long_preamble_template();
  config.xcorr_threshold = 9000;
  return config;
}

DetectionRunConfig small_run(std::size_t frames, std::uint64_t seed) {
  DetectionRunConfig config;
  config.snr_db = 6.0;
  config.num_frames = frames;
  // No lead-in: the frame starts inside whatever the 64-tap correlator
  // window held at capture start, so any state leaking from a previous
  // capture lands directly on the detection metric.
  config.lead_in = 0;
  config.tail = 64;
  config.seed = seed;
  return config;
}

TEST(DeriveSeed, StreamsAreDistinctAndReproducible) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t s = 0; s < 1000; ++s) {
    const std::uint64_t a = dsp::derive_seed(42, s);
    EXPECT_EQ(a, dsp::derive_seed(42, s));
    seen.insert(a);
  }
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_NE(dsp::derive_seed(1, 0), dsp::derive_seed(2, 0));
}

TEST(ShardSchedule, CoversEveryTrialExactlyOnce) {
  SweepConfig sweep;
  sweep.trials_per_point = 1000;
  sweep.shard_trials = 256;
  sweep.seed = 7;
  const auto tasks = make_shard_schedule(3, sweep);
  ASSERT_EQ(tasks.size(), 12u);  // 4 shards per point (256+256+256+232)
  std::vector<std::vector<bool>> covered(3, std::vector<bool>(1000, false));
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto& task = tasks[i];
    EXPECT_EQ(task.index, i);
    EXPECT_EQ(task.seed, dsp::derive_seed(7, i));
    for (std::size_t t = task.first_trial; t < task.first_trial + task.trials;
         ++t) {
      EXPECT_FALSE(covered[task.point][t]);
      covered[task.point][t] = true;
    }
  }
  for (const auto& point : covered)
    for (const bool c : point) EXPECT_TRUE(c);
}

TEST(ShardSchedule, RemainderShardAndOversizeClamp) {
  SweepConfig sweep;
  sweep.trials_per_point = 10;
  sweep.shard_trials = 4;
  auto tasks = make_shard_schedule(1, sweep);
  ASSERT_EQ(tasks.size(), 3u);
  EXPECT_EQ(tasks.back().trials, 2u);  // 4 + 4 + 2
  sweep.shard_trials = 1000;           // bigger than the point: one shard
  tasks = make_shard_schedule(1, sweep);
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0].trials, 10u);
}

TEST(RunShards, ExecutesEveryTaskOnceAtAnyThreadCount) {
  SweepConfig sweep;
  sweep.trials_per_point = 64;
  sweep.shard_trials = 8;
  const auto tasks = make_shard_schedule(2, sweep);
  for (const unsigned threads : {1u, 2u, 8u}) {
    std::vector<std::atomic<int>> runs(tasks.size());
    run_shards(tasks, threads,
               [&](const ShardTask& task) { ++runs[task.index]; });
    for (const auto& r : runs) EXPECT_EQ(r.load(), 1);
  }
}

// Regression: a kernel exception must stop the pool from claiming further
// shards, not just surface after every remaining shard ran. Pre-fix the
// claim loop had no abort check, so a throw on shard 0 of a 64-shard
// schedule still executed the other 63 — in a million-trial campaign an
// early failure silently burned the whole grid before the rethrow. The
// non-throwing kernels stall 200 us per shard, so pre-fix the second
// worker deterministically drained all 63 remaining shards while the first
// one sat at the join; post-fix the abort flag (stored within microseconds
// of the immediate throw) caps the overrun at the few shards already
// claimed.
TEST(RunShards, StopsClaimingShardsAfterFirstThrow) {
  SweepConfig sweep;
  sweep.trials_per_point = 64;
  sweep.shard_trials = 1;
  const auto tasks = make_shard_schedule(1, sweep);
  ASSERT_EQ(tasks.size(), 64u);

  std::atomic<bool> thrown{false};
  std::atomic<std::size_t> ran_after_throw{0};
  EXPECT_THROW(
      run_shards(tasks, 2,
                 [&](const ShardTask&) {
                   if (!thrown.exchange(true))
                     throw std::runtime_error("shard failure");
                   ran_after_throw.fetch_add(1);
                   std::this_thread::sleep_for(std::chrono::microseconds(200));
                 }),
      std::runtime_error);
  EXPECT_LT(ran_after_throw.load(), tasks.size() / 2)
      << "pool kept claiming shards after the first kernel exception";
}

TEST(ShardSchedule, AdaptiveGranularityScalesWithThreadsAndClamps) {
  // ~8 shards per worker: 4 points x 10000 trials at 4 threads wants
  // 40000/32 = 1250 trials per shard.
  EXPECT_EQ(resolve_shard_trials(4, 10000, 4), 1250u);
  // Never fewer shards than points: 64 points at 1 thread targets 64
  // shards, one per point.
  EXPECT_EQ(resolve_shard_trials(64, 500, 1), 500u);
  // Clamps: tiny totals floor at kMinAutoShardTrials (bounded by the
  // point's own trial count), huge totals cap at kMaxAutoShardTrials so
  // checkpoint records stay fine-grained.
  EXPECT_EQ(resolve_shard_trials(1, 8, 4), 8u);
  EXPECT_EQ(resolve_shard_trials(2, 100, 8), kMinAutoShardTrials);
  EXPECT_EQ(resolve_shard_trials(1, 1000000, 2), kMaxAutoShardTrials);
}

TEST(ShardSchedule, ZeroShardTrialsTriggersAdaptiveResolution) {
  SweepConfig sweep;
  sweep.trials_per_point = 10000;
  sweep.shard_trials = 0;  // adaptive
  sweep.threads = 4;
  const auto tasks = make_shard_schedule(4, sweep);
  const std::size_t expected = resolve_shard_trials(4, 10000, 4);
  ASSERT_FALSE(tasks.empty());
  EXPECT_EQ(tasks[0].trials, expected);
  std::uint64_t total = 0;
  for (const auto& t : tasks) total += t.trials;
  EXPECT_EQ(total, 40000u);
}

TEST(RunShards, PropagatesKernelExceptions) {
  SweepConfig sweep;
  sweep.trials_per_point = 16;
  sweep.shard_trials = 4;
  const auto tasks = make_shard_schedule(1, sweep);
  EXPECT_THROW(
      run_shards(tasks, 4,
                 [&](const ShardTask& task) {
                   if (task.index == 2) throw std::runtime_error("boom");
                 }),
      std::runtime_error);
}

// §3.2 regression: per-trial results must not depend on which trials ran
// before. The sequenced kXcorrThenEnergy mode is the sharpest probe: each
// capture legitimately completes the sequence once (xcorr on the first
// preamble, energy rise on the burst after the gap) and then re-arms stage
// 1 on the burst's own correlation peak. Pre-fix that armed stage leaked
// into the next capture — its frame-onset energy rise completed a
// sequence that never started there, firing a spurious extra jam trigger
// on every trial except the first.
TEST(TrialIndependence, PerTrialResultsAreOrderIndependent) {
  // Preamble, a gap at the noise floor long enough for the energy
  // reference to adapt, then a second burst: one xcorr->energy sequence
  // per capture for a detector whose FSM starts disarmed.
  const auto lts = phy80211::long_training_symbol();
  dsp::cvec frame(lts.begin(), lts.end());
  frame.resize(lts.size() + 160, dsp::cfloat{0.0f, 0.0f});
  frame.insert(frame.end(), lts.begin(), lts.end());

  JammerConfig sequenced;
  sequenced.detection = DetectionMode::kXcorrThenEnergy;
  sequenced.xcorr_template = wifi_long_preamble_template();
  sequenced.xcorr_threshold = 9000;
  sequenced.energy_high_db = 10.0;

  auto config = small_run(24, 0xBEEF);
  config.snr_db = 14.0;
  config.lead_in = 128;  // the 96-sample energy pipeline arms pre-frame
  const auto plan =
      prepare_detection_trials(frame, DetectorTap::kJamTrigger, config);

  // Batch: all trials through one jammer, in order.
  ReactiveJammer batch_jammer(sequenced);
  const auto batch = run_detection_trials(batch_jammer, plan, 0, 24);
  EXPECT_EQ(batch.frames_detected, 24u);  // every capture fires its sequence

  // Isolation: each trial on its own fresh jammer, in REVERSE order.
  DetectionTrialCounts isolated;
  for (std::size_t t = 24; t-- > 0;) {
    ReactiveJammer jammer(sequenced);
    isolated.merge(run_detection_trials(jammer, plan, t, 1));
  }
  EXPECT_EQ(isolated.frames_detected, batch.frames_detected);
  EXPECT_EQ(isolated.total_detections, batch.total_detections);

  // Split at an arbitrary boundary on one reused jammer: same counts.
  ReactiveJammer split_jammer(sequenced);
  auto split = run_detection_trials(split_jammer, plan, 17, 7);
  split.merge(run_detection_trials(split_jammer, plan, 0, 17));
  EXPECT_EQ(split.frames_detected, batch.frames_detected);
  EXPECT_EQ(split.total_detections, batch.total_detections);
}

TEST(TrialIndependence, DetectorStateIsFlushedBetweenCaptures) {
  // A jammer that has already chewed through a capture must give the same
  // verdict on the next one as a factory-fresh jammer. Pre-fix, the energy
  // differentiator carried its armed warmup counter and a silent Z^-64
  // reference out of the previous capture, so the lead-in noise alone
  // fired a spurious rise on top of the real frame-onset detection.
  const auto frame = test_frame();
  auto config = small_run(1, 0x50F7);
  config.snr_db = 14.0;
  // Long enough for a reset detector's 96-sample comparator pipeline to
  // arm before the frame arrives: a fresh jammer detects exactly the
  // frame onset.
  config.lead_in = 128;
  const auto plan =
      prepare_detection_trials(frame, DetectorTap::kEnergyHigh, config);

  ReactiveJammer fresh(energy_reactive_preset(1e-5, 10.0));
  const auto clean = run_detection_trials(fresh, plan, 0, 1);
  EXPECT_EQ(clean.frames_detected, 1u);  // the flushed detector still works

  ReactiveJammer warmed(energy_reactive_preset(1e-5, 10.0));
  dsp::cvec silent(4096, dsp::cfloat{0.0f, 0.0f});  // arms warmup, ref = 0
  (void)warmed.observe(silent);
  const auto after = run_detection_trials(warmed, plan, 0, 1);
  EXPECT_EQ(after.frames_detected, clean.frames_detected);
  EXPECT_EQ(after.total_detections, clean.total_detections);
}

TEST(SweepEngine, MatchesSequentialHarnessBitForBit) {
  const auto frame = test_frame();
  SweepConfig sweep;
  sweep.trials_per_point = 60;
  sweep.shard_trials = 16;
  sweep.threads = 2;
  sweep.seed = 0xF00D;
  const double snrs[] = {0.0, 6.0};
  const auto base = small_run(0, 0);
  const auto report = run_detection_sweep(
      xcorr_config(), frame, DetectorTap::kXcorr, base, snrs, sweep);

  ASSERT_EQ(report.points.size(), 2u);
  for (std::size_t p = 0; p < 2; ++p) {
    auto config = small_run(60, dsp::derive_seed(sweep.seed, p));
    config.snr_db = snrs[p];
    ReactiveJammer jammer(xcorr_config());
    const auto sequential =
        run_detection_experiment(jammer, frame, DetectorTap::kXcorr, config);
    const auto& parallel = report.points[p].result;
    EXPECT_EQ(parallel.frames_sent, sequential.frames_sent);
    EXPECT_EQ(parallel.frames_detected, sequential.frames_detected);
    EXPECT_EQ(parallel.total_detections, sequential.total_detections);
    EXPECT_EQ(parallel.probability, sequential.probability);
    EXPECT_EQ(parallel.detections_per_frame, sequential.detections_per_frame);
  }
}

TEST(SweepEngine, BitIdenticalAcrossThreadCountsAndShardSizes) {
  const auto frame = test_frame();
  const double snrs[] = {-3.0, 3.0, 9.0};
  const auto base = small_run(0, 0);

  SweepConfig reference;
  reference.trials_per_point = 48;
  reference.shard_trials = 48;
  reference.threads = 1;
  reference.seed = 0xD5;
  const auto golden = run_detection_sweep(
      xcorr_config(), frame, DetectorTap::kXcorr, base, snrs, reference);

  struct Variant {
    unsigned threads;
    std::size_t shard_trials;
  };
  for (const auto [threads, shard_trials] :
       {Variant{1, 7}, Variant{2, 16}, Variant{8, 5}, Variant{8, 48}}) {
    SweepConfig sweep = reference;
    sweep.threads = threads;
    sweep.shard_trials = shard_trials;
    const auto report = run_detection_sweep(
        xcorr_config(), frame, DetectorTap::kXcorr, base, snrs, sweep);
    ASSERT_EQ(report.points.size(), golden.points.size());
    for (std::size_t p = 0; p < golden.points.size(); ++p) {
      const auto& a = golden.points[p].result;
      const auto& b = report.points[p].result;
      EXPECT_EQ(a.frames_detected, b.frames_detected)
          << "threads=" << threads << " shard=" << shard_trials << " p=" << p;
      EXPECT_EQ(a.total_detections, b.total_detections);
      EXPECT_EQ(a.probability, b.probability);  // derived from identical ints
    }
    // Merged metrics are part of the guarantee too.
    EXPECT_EQ(report.metrics.counter_value("sweep.trials"),
              golden.metrics.counter_value("sweep.trials"));
    EXPECT_EQ(report.metrics.counter_value("sweep.detections"),
              golden.metrics.counter_value("sweep.detections"));
    const auto* hist =
        report.metrics.find_histogram("sweep.detections_per_trial");
    const auto* golden_hist =
        golden.metrics.find_histogram("sweep.detections_per_trial");
    ASSERT_NE(hist, nullptr);
    ASSERT_NE(golden_hist, nullptr);
    EXPECT_EQ(hist->count(), golden_hist->count());
    EXPECT_EQ(hist->sum(), golden_hist->sum());
    for (std::size_t k = 0; k < hist->num_bins(); ++k)
      EXPECT_EQ(hist->bin_count(k), golden_hist->bin_count(k));
  }
}

TEST(SweepEngine, ReportBookkeeping) {
  const auto frame = test_frame();
  SweepConfig sweep;
  sweep.trials_per_point = 20;
  sweep.shard_trials = 8;
  sweep.threads = 2;
  const double snrs[] = {6.0};
  const auto report = run_detection_sweep(xcorr_config(), frame,
                                          DetectorTap::kXcorr,
                                          small_run(0, 0), snrs, sweep);
  EXPECT_EQ(report.threads_used, 2u);
  EXPECT_EQ(report.shards, 3u);  // 8 + 8 + 4
  ASSERT_EQ(report.shard_trials.size(), 3u);
  EXPECT_EQ(report.shard_trials[0], 8u);
  EXPECT_EQ(report.shard_trials[2], 4u);
  EXPECT_EQ(report.total_trials(), 20u);
  EXPECT_EQ(report.metrics.counter_value("sweep.trials"), 20u);
  EXPECT_GT(report.wall_seconds, 0.0);
}

// Campaign observability: per-shard telemetry merged into the report, the
// campaign.* aggregates, the progress side channel, and the merged
// multi-lane Chrome trace.
TEST(SweepEngine, CampaignMetricsProgressAndShardTraces) {
  const auto frame = test_frame();
  SweepConfig sweep;
  sweep.trials_per_point = 20;
  sweep.shard_trials = 8;
  sweep.threads = 2;
  sweep.trace_events_per_shard = 4096;
  sweep.progress_every_shards = 1;
  std::vector<SweepProgress> progress;
  sweep.progress = [&](const SweepProgress& p) { progress.push_back(p); };
  const double snrs[] = {6.0};
  const auto report = run_detection_sweep(xcorr_config(), frame,
                                          DetectorTap::kXcorr,
                                          small_run(0, 0), snrs, sweep);

  // Campaign aggregates: counters are schedule-derived, rates are gauges.
  EXPECT_EQ(report.metrics.counter_value("campaign.shards"), 3u);
  EXPECT_EQ(report.metrics.counter_value("campaign.trials"), 20u);
  EXPECT_EQ(report.metrics.counter_value("campaign.points"), 1u);
  ASSERT_EQ(report.metrics.gauges().count("campaign.threads"), 1u);
  EXPECT_EQ(report.metrics.gauges().at("campaign.threads"), 2.0);
  ASSERT_EQ(report.metrics.gauges().count("campaign.wall_s"), 1u);
  EXPECT_GT(report.metrics.gauges().at("campaign.wall_s"), 0.0);

  // Per-shard fabric telemetry reached the merged registry, with the
  // wall-clock counter stripped and drop accounting present.
  EXPECT_GT(report.metrics.counter_value("events.stream_start"), 0u);
  EXPECT_GT(report.metrics.counter_value("obs.ring_records"), 0u);
  EXPECT_EQ(report.metrics.counter_value("stream_wall_ns"), 0u);
  EXPECT_EQ(report.metrics.counters().count("trace.spans_truncated"), 1u);
  EXPECT_EQ(report.metrics.gauges().count("host_throughput_msps"), 0u);

  // Progress fired for every shard (every_shards = 1) and ended complete.
  ASSERT_EQ(progress.size(), 3u);
  EXPECT_EQ(progress.back().shards_done, 3u);
  EXPECT_EQ(progress.back().shards_total, 3u);
  EXPECT_EQ(progress.back().trials_done, 20u);
  EXPECT_EQ(progress.back().trials_total, 20u);
  for (std::size_t k = 1; k < progress.size(); ++k)
    EXPECT_GE(progress[k].trials_done, progress[k - 1].trials_done);

  // One trace lane per shard, merged into a loadable campaign trace.
  ASSERT_EQ(report.shard_traces.size(), 3u);
  for (const auto& lane : report.shard_traces) {
    EXPECT_NE(lane.name.find("shard"), std::string::npos);
    EXPECT_FALSE(lane.events.empty());
  }
  const std::string path = ::testing::TempDir() + "rjf_campaign_trace.json";
  ASSERT_TRUE(report.write_campaign_trace(path));
  std::ifstream in(path, std::ios::binary);
  std::ostringstream body;
  body << in.rdbuf();
  EXPECT_NE(body.str().find("\"lanes\": 3"), std::string::npos);
  EXPECT_NE(body.str().find("process_name"), std::string::npos);
  std::remove(path.c_str());

  // Without per-shard telemetry there are no lanes and no merged trace.
  SweepConfig plain = sweep;
  plain.trace_events_per_shard = 0;
  plain.progress_every_shards = 0;
  const auto bare = run_detection_sweep(xcorr_config(), frame,
                                        DetectorTap::kXcorr,
                                        small_run(0, 0), snrs, plain);
  EXPECT_TRUE(bare.shard_traces.empty());
  EXPECT_FALSE(bare.write_campaign_trace(path));
}

// The merged campaign metrics must obey the same bit-identity guarantee as
// the detection counts: with per-shard telemetry attached, every counter
// (wall-clock ones are stripped before the merge) is identical at any
// thread count, and the detection results match a telemetry-free run.
TEST(SweepEngine, TelemetryAttachedSweepIsBitIdenticalAcrossThreads) {
  const auto frame = test_frame();
  const double snrs[] = {3.0, 9.0};
  SweepConfig reference;
  reference.trials_per_point = 24;
  reference.shard_trials = 8;
  reference.threads = 1;
  reference.seed = 0xAB;
  const auto plain = run_detection_sweep(
      xcorr_config(), frame, DetectorTap::kXcorr, small_run(0, 0), snrs,
      reference);

  SweepConfig traced = reference;
  traced.trace_events_per_shard = 4096;
  std::map<std::string, std::uint64_t> golden;
  for (const unsigned threads : {1u, 2u, 4u}) {
    traced.threads = threads;
    const auto report = run_detection_sweep(
        xcorr_config(), frame, DetectorTap::kXcorr, small_run(0, 0), snrs,
        traced);
    // Attaching telemetry must not change the detection outcome.
    ASSERT_EQ(report.points.size(), plain.points.size());
    for (std::size_t p = 0; p < plain.points.size(); ++p) {
      EXPECT_EQ(report.points[p].result.frames_detected,
                plain.points[p].result.frames_detected)
          << "threads=" << threads << " p=" << p;
      EXPECT_EQ(report.points[p].result.total_detections,
                plain.points[p].result.total_detections);
    }
    if (golden.empty()) {
      golden = report.metrics.counters();
      EXPECT_GT(golden.at("obs.ring_records"), 0u);
    } else {
      EXPECT_EQ(report.metrics.counters(), golden) << "threads=" << threads;
    }
  }
}

TEST(CfoPhasor, MatchesDoubleReferenceAtWimaxLength) {
  // w for a 3 kHz CFO at 25 MSPS; phases reach ~75 rad by k = 100000
  // (a WiMAX-length capture), where the pre-fix float cast of w*k only
  // resolves ~4e-6 rad granularity per ULP and drifts milliradians.
  const double w = 2.0 * std::numbers::pi * 3000.0 / 25e6;
  double worst = 0.0;
  for (const std::uint64_t k : {1000ull, 50000ull, 100000ull, 1000000ull}) {
    const dsp::cfloat got = cfo_phasor(w, k);
    const long double phase = static_cast<long double>(w) * k;
    const auto want_re = static_cast<double>(std::cos(phase));
    const auto want_im = static_cast<double>(std::sin(phase));
    worst = std::max({worst, std::abs(got.real() - want_re),
                      std::abs(got.imag() - want_im)});
  }
  // Float storage grants ~1e-7 relative precision; the pre-fix phase error
  // at k = 1e6 was ~1e-3 rad, three orders of magnitude above this bound.
  EXPECT_LT(worst, 5e-7);
}

}  // namespace
}  // namespace rjf::core
