// Protocol-target scenario registry: lookups, decode ground truth, the
// wifi_ofdm equivalence contract (target path bit-identical to the
// hand-rolled Transmitter + run_detection_sweep path), and 802.11b DSSS as
// a first-class campaign subject (kill/resume byte-identity across thread
// counts, mirroring test_core_campaign.cpp).
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/presets.h"
#include "core/scenario.h"
#include "core/templates.h"
#include "fault/fault_experiment.h"
#include "phy80211/rates.h"
#include "phy80211/transmitter.h"
#include "phy80211b/dsss.h"

namespace rjf::core {
namespace {

std::string temp_store(const char* name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

TEST(Scenario, RegistryLooksUpKnownTargetsAndRejectsUnknown) {
  const auto& targets = protocol_targets();
  ASSERT_GE(targets.size(), 2u);
  EXPECT_EQ(targets[0].name, "wifi_ofdm");  // the default target leads

  const ProtocolTarget* ofdm = find_target("wifi_ofdm");
  ASSERT_NE(ofdm, nullptr);
  EXPECT_EQ(ofdm->rates.size(), 8u);
  EXPECT_DOUBLE_EQ(ofdm->rates.front().mbps, 6.0);
  EXPECT_DOUBLE_EQ(ofdm->rates.back().mbps, 54.0);
  EXPECT_EQ(ofdm->default_rate_index, 7u);  // 54 Mb/s, the legacy default
  EXPECT_DOUBLE_EQ(ofdm->native_rate_hz, 20e6);

  const ProtocolTarget* dsss = find_target("wifi_dsss");
  ASSERT_NE(dsss, nullptr);
  ASSERT_EQ(dsss->rates.size(), 4u);
  EXPECT_DOUBLE_EQ(dsss->rates[0].mbps, 1.0);
  EXPECT_DOUBLE_EQ(dsss->rates[1].mbps, 2.0);
  EXPECT_DOUBLE_EQ(dsss->rates[2].mbps, 5.5);
  EXPECT_DOUBLE_EQ(dsss->rates[3].mbps, 11.0);
  EXPECT_EQ(dsss->default_rate_index, 3u);
  EXPECT_DOUBLE_EQ(dsss->native_rate_hz, phy80211b::kChipRateHz);

  EXPECT_EQ(find_target("wifi_bogus"), nullptr);
  EXPECT_THROW((void)target_or_throw("wifi_bogus"), std::invalid_argument);
  const std::vector<std::string> names = target_names();
  ASSERT_GE(names.size(), 2u);
  EXPECT_EQ(names[0], "wifi_ofdm");
  EXPECT_EQ(names[1], "wifi_dsss");
}

TEST(Scenario, DecodeOkIsGroundTruthAtEveryRate) {
  const std::vector<std::uint8_t> psdu(40, 0xA5);
  for (const ProtocolTarget& target : protocol_targets()) {
    for (std::size_t i = 0; i < target.rates.size(); ++i) {
      const dsp::cvec frame = target.make_frame(i, psdu, 0x5D);
      ASSERT_FALSE(frame.empty()) << target.name << " rate " << i;
      EXPECT_TRUE(target.decode_ok(i, frame, psdu))
          << target.name << " rate " << target.rates[i].mbps;
      const dsp::cvec silence(frame.size(), dsp::cfloat{0.0f, 0.0f});
      EXPECT_FALSE(target.decode_ok(i, silence, psdu))
          << target.name << " rate " << target.rates[i].mbps;
    }
  }
}

TEST(Scenario, AirtimeAndDutyCycleModels) {
  const ProtocolTarget& ofdm = target_or_throw("wifi_ofdm");
  EXPECT_DOUBLE_EQ(ofdm.frame_airtime_s(7, 310),
                   phy80211::frame_duration_s(phy80211::Rate::kMbps54, 310));

  const ProtocolTarget& dsss = target_or_throw("wifi_dsss");
  // 192 us PLCP + 100 bytes at 11 Mb/s.
  EXPECT_NEAR(dsss.frame_airtime_s(3, 100), 192e-6 + 800.0 / 11e6, 1e-12);
  // 1 Mb/s: 192 us + 800 us.
  EXPECT_NEAR(dsss.frame_airtime_s(0, 100), 992e-6, 1e-12);
  // Duty cycle at the paper's 130 frames/s cadence.
  EXPECT_NEAR(dsss.duty_cycle(3, 100), (192e-6 + 800.0 / 11e6) * 130.0,
              1e-9);
}

TEST(Scenario, OfdmReactivePresetMatchesLegacyWifiPreset) {
  const JammerConfig legacy = wifi_reactive_preset(100e-6);
  const JammerConfig via_target =
      target_reactive_preset(target_or_throw("wifi_ofdm"), 100e-6);
  EXPECT_EQ(via_target.detection, legacy.detection);
  EXPECT_EQ(via_target.xcorr_threshold, legacy.xcorr_threshold);
  EXPECT_EQ(via_target.jam_uptime_samples, legacy.jam_uptime_samples);
  ASSERT_TRUE(via_target.xcorr_template.has_value());
  ASSERT_TRUE(legacy.xcorr_template.has_value());
  EXPECT_EQ(via_target.xcorr_template->coef_i, legacy.xcorr_template->coef_i);
  EXPECT_EQ(via_target.xcorr_template->coef_q, legacy.xcorr_template->coef_q);
}

// The refactor contract: driving the sweep through the wifi_ofdm target
// handle reproduces the pre-refactor hand-rolled path (explicit
// phy80211::Transmitter + run_detection_sweep) bit for bit.
TEST(Scenario, OfdmTargetSweepBitIdenticalToHandRolledPath) {
  JammerConfig jammer;
  jammer.detection = DetectionMode::kCrossCorrelator;
  jammer.xcorr_template = wifi_long_preamble_template();
  jammer.xcorr_threshold = 9000;

  const std::vector<std::uint8_t> psdu(16, 0xA5);
  DetectionRunConfig base;
  base.lead_in = 64;
  base.tail = 64;
  const double snrs[] = {0.0, 6.0};
  SweepConfig sweep;
  sweep.trials_per_point = 48;
  sweep.shard_trials = 16;
  sweep.threads = 2;
  sweep.seed = 0x5CE7;

  const phy80211::Transmitter tx({phy80211::Rate::kMbps54, 0x5D});
  const dsp::cvec frame = tx.transmit(psdu);
  base.tx_rate_hz = 20e6;
  const SweepReport hand_rolled = run_detection_sweep(
      jammer, frame, DetectorTap::kXcorr, base, snrs, sweep);

  const SweepReport via_target = run_target_detection_sweep(
      jammer, target_or_throw("wifi_ofdm"), 7, psdu, DetectorTap::kXcorr,
      base, snrs, sweep);

  ASSERT_EQ(via_target.points.size(), hand_rolled.points.size());
  for (std::size_t p = 0; p < hand_rolled.points.size(); ++p) {
    EXPECT_EQ(via_target.points[p].seed, hand_rolled.points[p].seed);
    EXPECT_EQ(via_target.points[p].result.frames_detected,
              hand_rolled.points[p].result.frames_detected);
    EXPECT_EQ(via_target.points[p].result.total_detections,
              hand_rolled.points[p].result.total_detections);
    EXPECT_EQ(via_target.points[p].result.probability,
              hand_rolled.points[p].result.probability);
  }
}

CampaignSpec dsss_spec() {
  CampaignSpec spec;
  spec.target = "wifi_dsss";
  spec.jammer.detection = DetectionMode::kCrossCorrelator;
  spec.jammer.xcorr_template = wifi_dsss_preamble_template();
  spec.jammer.xcorr_threshold = 9000;
  spec.tap = DetectorTap::kXcorr;
  spec.psdu_bytes = 16;
  spec.base.lead_in = 64;
  spec.base.tail = 64;
  spec.seed = 0xD555;
  spec.grid.rate_indices = {0, 1, 2, 3};  // all four DSSS rates
  spec.grid.snrs_db = {3.0};
  spec.grid.trials_per_point = 24;
  spec.shard_trials = 8;
  spec.threads = 1;
  return spec;
}

// 802.11b DSSS as a first-class campaign subject: a {rate x SNR} grid over
// all four rates, killed and resumed at varying thread counts, merges to a
// CSV byte-identical to the uninterrupted run — the same headline
// guarantee test_core_campaign.cpp proves for the OFDM default.
TEST(ScenarioCampaign, DsssKillResumeByteIdenticalAcrossThreads) {
  CampaignSpec reference_spec = dsss_spec();
  const std::string ref_path = temp_store("rjf_scenario_dsss_ref.rjfc");
  const CampaignReport reference = run_campaign(reference_spec, ref_path);
  EXPECT_TRUE(reference.complete);
  EXPECT_EQ(reference.trials_replayed, 0u);
  const std::string golden = reference.to_csv();
  std::remove(ref_path.c_str());

  // The merged report carries the target's own rate axis.
  EXPECT_NE(golden.find("target=wifi_dsss"), std::string::npos);
  ASSERT_EQ(reference.points.size(), 4u);
  EXPECT_DOUBLE_EQ(reference.points[0].rate_mbps, 1.0);
  EXPECT_DOUBLE_EQ(reference.points[1].rate_mbps, 2.0);
  EXPECT_DOUBLE_EQ(reference.points[2].rate_mbps, 5.5);
  EXPECT_DOUBLE_EQ(reference.points[3].rate_mbps, 11.0);
  for (const CampaignPointResult& p : reference.points)
    EXPECT_EQ(p.trials_done, 24u);

  struct Variant {
    unsigned threads_a, threads_b;
    std::size_t kill_after;
  };
  for (const auto [threads_a, threads_b, kill_after] :
       {Variant{1, 2, 3}, Variant{2, 4, 5}, Variant{4, 1, 1}}) {
    const std::string path = temp_store("rjf_scenario_dsss_resume.rjfc");
    CampaignSpec spec = dsss_spec();

    spec.threads = threads_a;
    spec.max_shards_this_run = kill_after;
    const CampaignReport partial = run_campaign(spec, path);
    EXPECT_FALSE(partial.complete);
    EXPECT_EQ(partial.shards_run, kill_after);

    spec.threads = threads_b;
    spec.max_shards_this_run = 0;
    const CampaignReport resumed = run_campaign(spec, path);
    EXPECT_TRUE(resumed.complete);
    EXPECT_EQ(resumed.trials_replayed, 0u);
    EXPECT_EQ(resumed.to_csv(), golden)
        << "threads " << threads_a << "->" << threads_b;
    std::remove(path.c_str());
  }
}

TEST(ScenarioCampaign, UnknownTargetAndBadRateIndexAreRejected) {
  CampaignSpec spec = dsss_spec();
  spec.target = "wifi_bogus";
  EXPECT_THROW((void)spec.fingerprint(), std::invalid_argument);
  EXPECT_THROW((void)run_campaign(spec, temp_store("rjf_scenario_bogus.rjfc")),
               std::invalid_argument);

  spec = dsss_spec();
  spec.grid.rate_indices = {4};  // wifi_dsss has rates 0..3
  EXPECT_THROW((void)run_campaign(spec, temp_store("rjf_scenario_oob.rjfc")),
               std::invalid_argument);
}

TEST(ScenarioCampaign, TargetIdentityIsPartOfTheFingerprint) {
  CampaignSpec ofdm = dsss_spec();
  ofdm.target = "wifi_ofdm";  // same grid shape, different protocol
  CampaignSpec dsss = dsss_spec();
  EXPECT_NE(ofdm.fingerprint(), dsss.fingerprint());

  // Same target, different rate selection: different campaign.
  CampaignSpec subset = dsss_spec();
  subset.grid.rate_indices = {0, 1, 2};
  EXPECT_NE(subset.fingerprint(), dsss.fingerprint());
}

// The fault harness's target overload is a pure composition: identical to
// rendering the target's frame by hand and calling the frame-based sweep.
TEST(ScenarioFault, TargetFaultSweepMatchesHandRolledFrame) {
  JammerConfig jammer;
  jammer.detection = DetectionMode::kCrossCorrelator;
  jammer.xcorr_template = wifi_dsss_preamble_template();
  jammer.xcorr_threshold = 9000;

  const std::vector<std::uint8_t> psdu(16, 0xA5);
  DetectionRunConfig base;
  base.lead_in = 64;
  base.tail = 64;
  const double snrs[] = {3.0};
  const double scales[] = {0.0, 1.0};
  fault::FaultPlanConfig fault_base;
  fault_base.seed = 0xFA57;
  fault_base.clip_rate = 2e-4;
  SweepConfig sweep;
  sweep.trials_per_point = 16;
  sweep.shard_trials = 8;
  sweep.threads = 1;
  sweep.seed = 0xFA;

  const ProtocolTarget& dsss = target_or_throw("wifi_dsss");
  const dsp::cvec frame = dsss.make_frame(3, psdu, 0x5D);
  DetectionRunConfig hand_base = base;
  hand_base.tx_rate_hz = dsss.native_rate_hz;
  const fault::FaultSweepReport hand_rolled = fault::run_fault_robustness_sweep(
      jammer, frame, DetectorTap::kXcorr, hand_base, snrs, scales, fault_base,
      sweep);
  const fault::FaultSweepReport via_target =
      fault::run_target_fault_robustness_sweep(dsss, 3, psdu, jammer,
                                               DetectorTap::kXcorr, base, snrs,
                                               scales, fault_base, sweep);

  ASSERT_EQ(via_target.points.size(), hand_rolled.points.size());
  for (std::size_t p = 0; p < hand_rolled.points.size(); ++p) {
    EXPECT_EQ(via_target.points[p].result.frames_detected,
              hand_rolled.points[p].result.frames_detected);
    EXPECT_EQ(via_target.points[p].result.total_detections,
              hand_rolled.points[p].result.total_detections);
    EXPECT_EQ(via_target.points[p].faults_injected,
              hand_rolled.points[p].faults_injected);
  }
}

}  // namespace
}  // namespace rjf::core
