#include "dsp/types.h"

#include <gtest/gtest.h>

namespace rjf::dsp {
namespace {

TEST(Q15, ZeroMapsToZero) {
  EXPECT_EQ(to_q15(0.0f), 0);
  EXPECT_FLOAT_EQ(from_q15(0), 0.0f);
}

TEST(Q15, FullScalePositiveSaturates) {
  EXPECT_EQ(to_q15(1.0f), 32767);
  EXPECT_EQ(to_q15(2.0f), 32767);
  EXPECT_EQ(to_q15(1000.0f), 32767);
}

TEST(Q15, FullScaleNegativeSaturates) {
  EXPECT_EQ(to_q15(-1.0f), -32768);
  EXPECT_EQ(to_q15(-5.0f), -32768);
}

TEST(Q15, RoundTripSmallValues) {
  for (const float x : {0.5f, -0.5f, 0.25f, -0.125f, 0.9f}) {
    EXPECT_NEAR(from_q15(to_q15(x)), x, 1.0f / 32768.0f) << "x=" << x;
  }
}

TEST(Q15, HalfScaleExact) {
  EXPECT_EQ(to_q15(0.5f), 16384);
  EXPECT_FLOAT_EQ(from_q15(16384), 0.5f);
}

TEST(IQ16, ComplexRoundTrip) {
  const cfloat x{0.25f, -0.75f};
  const cfloat back = from_iq16(to_iq16(x));
  EXPECT_NEAR(back.real(), x.real(), 1e-4f);
  EXPECT_NEAR(back.imag(), x.imag(), 1e-4f);
}

TEST(IQ16, BulkConversionPreservesSize) {
  const cvec in(100, cfloat{0.1f, 0.2f});
  const iqvec mid = to_iq16(in);
  const cvec out = from_iq16(mid);
  ASSERT_EQ(mid.size(), in.size());
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t k = 0; k < in.size(); ++k) {
    EXPECT_NEAR(out[k].real(), in[k].real(), 1e-4f);
    EXPECT_NEAR(out[k].imag(), in[k].imag(), 1e-4f);
  }
}

TEST(IQ16, Equality) {
  EXPECT_EQ((IQ16{1, 2}), (IQ16{1, 2}));
  EXPECT_FALSE((IQ16{1, 2}) == (IQ16{2, 1}));
}

}  // namespace
}  // namespace rjf::dsp
