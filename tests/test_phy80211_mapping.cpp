// Interleaver and constellation tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "dsp/rng.h"
#include "phy80211/constellation.h"
#include "phy80211/interleaver.h"
#include "phy80211/rates.h"

namespace rjf::phy80211 {
namespace {

struct RateDims {
  unsigned n_cbps;
  unsigned n_bpsc;
};

class InterleaverDims : public ::testing::TestWithParam<RateDims> {};

TEST_P(InterleaverDims, DeinterleaveInvertsInterleave) {
  const auto [n_cbps, n_bpsc] = GetParam();
  dsp::Xoshiro256 rng(n_cbps);
  Bits data(n_cbps * 3);  // three symbols
  for (auto& b : data) b = rng.uniform() < 0.5 ? 0 : 1;
  EXPECT_EQ(deinterleave(interleave(data, n_cbps, n_bpsc), n_cbps, n_bpsc),
            data);
}

TEST_P(InterleaverDims, InterleaveIsAPermutation) {
  const auto [n_cbps, n_bpsc] = GetParam();
  // Interleave a one-hot vector for every position; outputs must cover
  // every position exactly once.
  std::vector<bool> hit(n_cbps, false);
  for (unsigned k = 0; k < n_cbps; ++k) {
    Bits data(n_cbps, 0);
    data[k] = 1;
    const Bits out = interleave(data, n_cbps, n_bpsc);
    const auto it = std::find(out.begin(), out.end(), 1);
    ASSERT_NE(it, out.end());
    const auto pos = static_cast<std::size_t>(it - out.begin());
    ASSERT_FALSE(hit[pos]);
    hit[pos] = true;
  }
  EXPECT_TRUE(std::all_of(hit.begin(), hit.end(), [](bool h) { return h; }));
}

TEST_P(InterleaverDims, AdjacentBitsSpreadAcrossSubcarriers) {
  const auto [n_cbps, n_bpsc] = GetParam();
  // The first permutation guarantees adjacent coded bits map to
  // non-adjacent subcarriers: positions of bit k and k+1 differ by at
  // least n_cbps/16 bit positions.
  Bits a(n_cbps, 0), b(n_cbps, 0);
  a[0] = 1;
  b[1] = 1;
  const Bits ia = interleave(a, n_cbps, n_bpsc);
  const Bits ib = interleave(b, n_cbps, n_bpsc);
  const auto pa = std::find(ia.begin(), ia.end(), 1) - ia.begin();
  const auto pb = std::find(ib.begin(), ib.end(), 1) - ib.begin();
  EXPECT_GE(std::abs(pa - pb), static_cast<long>(n_cbps / 16));
}

INSTANTIATE_TEST_SUITE_P(AllRates, InterleaverDims,
                         ::testing::Values(RateDims{48, 1}, RateDims{96, 2},
                                           RateDims{192, 4}, RateDims{288, 6}));

class ConstellationRoundTrip : public ::testing::TestWithParam<Modulation> {};

TEST_P(ConstellationRoundTrip, DemapInvertsMap) {
  const Modulation mod = GetParam();
  dsp::Xoshiro256 rng(static_cast<std::uint64_t>(mod) + 1);
  Bits bits(bits_per_symbol(mod) * 100);
  for (auto& b : bits) b = rng.uniform() < 0.5 ? 0 : 1;
  EXPECT_EQ(demap_symbols(map_bits(bits, mod), mod), bits);
}

TEST_P(ConstellationRoundTrip, UnitMeanPower) {
  const Modulation mod = GetParam();
  // Exhaustive constellation sweep: K_mod must normalise mean power to 1.
  const unsigned bps = bits_per_symbol(mod);
  Bits all;
  for (unsigned v = 0; v < (1u << bps); ++v)
    for (unsigned b = 0; b < bps; ++b) all.push_back((v >> b) & 1u);
  const dsp::cvec symbols = map_bits(all, mod);
  double power = 0.0;
  for (const auto s : symbols) power += std::norm(s);
  EXPECT_NEAR(power / static_cast<double>(symbols.size()), 1.0, 1e-5);
}

TEST_P(ConstellationRoundTrip, SurvivesSmallNoise) {
  const Modulation mod = GetParam();
  dsp::Xoshiro256 rng(99);
  Bits bits(bits_per_symbol(mod) * 64);
  for (auto& b : bits) b = rng.uniform() < 0.5 ? 0 : 1;
  dsp::cvec symbols = map_bits(bits, mod);
  for (auto& s : symbols) s += rng.complex_gaussian(1e-4);
  EXPECT_EQ(demap_symbols(symbols, mod), bits);
}

INSTANTIATE_TEST_SUITE_P(AllModulations, ConstellationRoundTrip,
                         ::testing::Values(Modulation::kBpsk, Modulation::kQpsk,
                                           Modulation::kQam16,
                                           Modulation::kQam64));

TEST(Constellation, GrayPropertyNeighbourLevelsDifferByOneBit) {
  // For 16-QAM, the four I-axis levels sorted by amplitude must form a
  // Gray sequence (adjacent levels differ in exactly one bit).
  Bits bits;
  for (unsigned v = 0; v < 4; ++v) {
    bits.push_back(v & 1u);
    bits.push_back((v >> 1) & 1u);
    bits.push_back(0);
    bits.push_back(0);
  }
  const dsp::cvec symbols = map_bits(bits, Modulation::kQam16);
  std::vector<std::pair<float, unsigned>> by_level;
  for (unsigned v = 0; v < 4; ++v) by_level.emplace_back(symbols[v].real(), v);
  std::sort(by_level.begin(), by_level.end());
  for (std::size_t k = 0; k + 1 < by_level.size(); ++k) {
    const unsigned diff = by_level[k].second ^ by_level[k + 1].second;
    EXPECT_EQ(__builtin_popcount(diff), 1) << "levels " << k;
  }
}

TEST(Constellation, BitsPerSymbolTable) {
  EXPECT_EQ(bits_per_symbol(Modulation::kBpsk), 1u);
  EXPECT_EQ(bits_per_symbol(Modulation::kQpsk), 2u);
  EXPECT_EQ(bits_per_symbol(Modulation::kQam16), 4u);
  EXPECT_EQ(bits_per_symbol(Modulation::kQam64), 6u);
}

}  // namespace
}  // namespace rjf::phy80211
