#include "radio/adc_dac.h"

#include <gtest/gtest.h>

namespace rjf::radio {
namespace {

TEST(Adc, ZeroInZeroOut) {
  const Adc adc;
  EXPECT_EQ(adc.sample(dsp::cfloat{}), (dsp::IQ16{0, 0}));
}

TEST(Adc, FourteenBitQuantisationStep) {
  const Adc adc(14);
  // One 14-bit LSB is 1/8192 of full scale, left-justified by 2 bits.
  const auto s = adc.sample(dsp::cfloat{1.0f / 8192.0f, 0.0f});
  EXPECT_EQ(s.i, 1 << 2);
}

TEST(Adc, ClipsAndFlags) {
  const Adc adc(14);
  const dsp::cvec hot(10, dsp::cfloat{2.0f, -2.0f});
  const auto out = adc.convert(hot);
  EXPECT_TRUE(adc.clipped());
  EXPECT_EQ(out[0].i, static_cast<std::int16_t>(8191 << 2));
  EXPECT_EQ(out[0].q, static_cast<std::int16_t>(-8192 << 2));
}

TEST(Adc, CleanSignalDoesNotFlag) {
  const Adc adc(14);
  (void)adc.convert(dsp::cvec(10, dsp::cfloat{0.5f, -0.5f}));
  EXPECT_FALSE(adc.clipped());
}

TEST(Adc, TopRepresentableCodeDoesNotFlagClip) {
  // Regression: a sample that scales to exactly the top code (levels-1 =
  // 8191 at 14 bits) is quantised without loss; the pre-fix `scaled >=
  // levels-1` comparison flagged it as clipped anyway.
  const Adc adc(14);
  const auto out =
      adc.convert(dsp::cvec(1, dsp::cfloat{8191.0f / 8192.0f, 0.0f}));
  EXPECT_EQ(out[0].i, static_cast<std::int16_t>(8191 << 2));
  EXPECT_FALSE(adc.clipped());
  // Bottom representable code -levels is equally lossless.
  (void)adc.convert(dsp::cvec(1, dsp::cfloat{-1.0f, 0.0f}));
  EXPECT_FALSE(adc.clipped());
  // One code beyond the top is a genuine clip.
  (void)adc.convert(dsp::cvec(1, dsp::cfloat{8192.0f / 8192.0f, 0.0f}));
  EXPECT_TRUE(adc.clipped());
}

TEST(Adc, RoundingIntoRangeIsNotClipping) {
  // 8191.4/8192 rounds down to the top code: quantisation error only.
  const Adc adc(14);
  (void)adc.convert(dsp::cvec(1, dsp::cfloat{8191.4f / 8192.0f, 0.0f}));
  EXPECT_FALSE(adc.clipped());
  // 8191.6/8192 rounds to 8192, beyond the range: clips.
  (void)adc.convert(dsp::cvec(1, dsp::cfloat{8191.6f / 8192.0f, 0.0f}));
  EXPECT_TRUE(adc.clipped());
}

TEST(Adc, PerSampleClipFlagIsStickyUntilCleared) {
  // sample() participates in clip reporting: the flag ORs across calls and
  // clear_clip() re-arms it, matching convert()'s block semantics.
  const Adc adc(14);
  (void)adc.sample(dsp::cfloat{2.0f, 0.0f});
  EXPECT_TRUE(adc.clipped());
  (void)adc.sample(dsp::cfloat{0.1f, 0.0f});
  EXPECT_TRUE(adc.clipped());  // sticky across clean samples
  adc.clear_clip();
  EXPECT_FALSE(adc.clipped());
  (void)adc.sample(dsp::cfloat{0.1f, 0.0f});
  EXPECT_FALSE(adc.clipped());
  // convert() resets on entry, so a prior per-sample clip doesn't leak in.
  (void)adc.sample(dsp::cfloat{-3.0f, 0.0f});
  (void)adc.convert(dsp::cvec(4, dsp::cfloat{0.25f, 0.0f}));
  EXPECT_FALSE(adc.clipped());
}

TEST(Adc, BitsClamped) {
  EXPECT_EQ(Adc(1).bits(), 2u);
  EXPECT_EQ(Adc(20).bits(), 16u);
  EXPECT_EQ(Adc(14).bits(), 14u);
}

TEST(AdcDac, RoundTripWithinLsb) {
  const Adc adc(14);
  const Dac dac;
  for (const float x : {0.3f, -0.7f, 0.001f, 0.999f}) {
    const dsp::cfloat in{x, -x};
    const dsp::cfloat out = dac.sample(adc.sample(in));
    EXPECT_NEAR(out.real(), in.real(), 1.0f / 8192.0f) << x;
    EXPECT_NEAR(out.imag(), in.imag(), 1.0f / 8192.0f) << x;
  }
}

TEST(Dac, BulkConversion) {
  const Dac dac;
  const dsp::iqvec in(5, dsp::IQ16{16384, -16384});
  const auto out = dac.convert(in);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_FLOAT_EQ(out[0].real(), 0.5f);
  EXPECT_FLOAT_EQ(out[0].imag(), -0.5f);
}

}  // namespace
}  // namespace rjf::radio
