#include "dsp/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rjf::dsp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int k = 0; k < 100; ++k) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int k = 0; k < 100; ++k)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  double sum = 0.0;
  for (int k = 0; k < 100000; ++k) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, UniformIntWithinBounds) {
  Xoshiro256 rng(11);
  for (const std::uint64_t n : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int k = 0; k < 1000; ++k) ASSERT_LT(rng.uniform_int(n), n);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Xoshiro256 rng(13);
  bool seen[8] = {};
  for (int k = 0; k < 1000; ++k) seen[rng.uniform_int(8)] = true;
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, GaussianMoments) {
  Xoshiro256 rng(17);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int k = 0; k < n; ++k) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, ComplexGaussianPower) {
  Xoshiro256 rng(19);
  double power = 0.0;
  const int n = 100000;
  for (int k = 0; k < n; ++k) power += std::norm(rng.complex_gaussian(4.0));
  EXPECT_NEAR(power / n, 4.0, 0.1);
}

}  // namespace
}  // namespace rjf::dsp
