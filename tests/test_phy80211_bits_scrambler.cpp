#include <gtest/gtest.h>

#include "phy80211/bits.h"
#include "phy80211/scrambler.h"

namespace rjf::phy80211 {
namespace {

TEST(Bits, BytesRoundTrip) {
  const std::vector<std::uint8_t> bytes = {0x01, 0xFF, 0xA5, 0x00, 0x7E};
  EXPECT_EQ(bytes_from_bits(bits_from_bytes(bytes)), bytes);
}

TEST(Bits, LsbFirstOrder) {
  const std::vector<std::uint8_t> one = {0x01};
  const Bits bits = bits_from_bytes(one);
  EXPECT_EQ(bits[0], 1);
  for (int k = 1; k < 8; ++k) EXPECT_EQ(bits[k], 0);
}

TEST(Bits, AppendAndReadUint) {
  Bits bits;
  append_uint(bits, 0xABC, 12);
  EXPECT_EQ(bits.size(), 12u);
  EXPECT_EQ(read_uint(bits, 0, 12), 0xABCu);
  append_uint(bits, 0x3, 2);
  EXPECT_EQ(read_uint(bits, 12, 2), 0x3u);
}

TEST(Bits, ReadUintBeyondEndIsZeroPadded) {
  Bits bits = {1, 0, 1};
  EXPECT_EQ(read_uint(bits, 0, 8), 0b101u);
}

TEST(Scrambler, ScrambleIsItsOwnInverse) {
  Bits data(200);
  for (std::size_t k = 0; k < data.size(); ++k) data[k] = (k * 3) % 2;
  Scrambler a(0x45), b(0x45);
  EXPECT_EQ(b.process(a.process(data)), data);
}

TEST(Scrambler, PeriodIs127) {
  Scrambler s(0x7F);
  Bits first(127), second(127);
  for (auto& bit : first) bit = s.next_bit();
  for (auto& bit : second) bit = s.next_bit();
  EXPECT_EQ(first, second);
  // And it is not shorter: the first 64 bits differ from bits 64..127.
  EXPECT_NE(Bits(first.begin(), first.begin() + 63),
            Bits(first.begin() + 64, first.begin() + 127));
}

TEST(Scrambler, PilotPolaritySequenceStartsPerStandard) {
  // 802.11 p_n starts +1 +1 +1 +1 -1 -1 -1 +1; as scrambler bits that is
  // 0 0 0 0 1 1 1 0.
  const Bits seq = pilot_polarity_sequence();
  ASSERT_EQ(seq.size(), 127u);
  const Bits head(seq.begin(), seq.begin() + 8);
  EXPECT_EQ(head, (Bits{0, 0, 0, 0, 1, 1, 1, 0}));
}

TEST(Scrambler, StateRecoveryContinuesSequence) {
  // Feed 7 sequence bits to the recovery function; the reconstructed
  // scrambler must continue the original stream exactly.
  Scrambler original(0x2F);
  Bits stream(50);
  for (auto& bit : stream) bit = original.next_bit();

  Scrambler recovered(recover_scrambler_state(
      std::span<const std::uint8_t>(stream.data(), 7)));
  for (std::size_t k = 7; k < stream.size(); ++k)
    ASSERT_EQ(recovered.next_bit(), stream[k]) << "k=" << k;
}

TEST(Scrambler, AllSeedsRecoverable) {
  for (std::uint8_t seed = 1; seed < 0x7F; ++seed) {
    Scrambler original(seed);
    Bits stream(20);
    for (auto& bit : stream) bit = original.next_bit();
    Scrambler recovered(recover_scrambler_state(
        std::span<const std::uint8_t>(stream.data(), 7)));
    for (std::size_t k = 7; k < stream.size(); ++k)
      ASSERT_EQ(recovered.next_bit(), stream[k]) << "seed=" << int(seed);
  }
}

}  // namespace
}  // namespace rjf::phy80211
