#include "dsp/fft.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/rng.h"

namespace rjf::dsp {
namespace {

TEST(Fft, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(96));
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  cvec x(64, cfloat{});
  x[0] = cfloat{1.0f, 0.0f};
  fft(x);
  for (const cfloat bin : x) {
    EXPECT_NEAR(bin.real(), 1.0f, 1e-5f);
    EXPECT_NEAR(bin.imag(), 0.0f, 1e-5f);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  const int tone = 5;
  cvec x(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double p = 2.0 * std::numbers::pi * tone * static_cast<double>(k) / n;
    x[k] = cfloat{static_cast<float>(std::cos(p)), static_cast<float>(std::sin(p))};
  }
  fft(x);
  for (std::size_t bin = 0; bin < n; ++bin) {
    if (bin == static_cast<std::size_t>(tone))
      EXPECT_NEAR(std::abs(x[bin]), 64.0f, 1e-3f);
    else
      EXPECT_NEAR(std::abs(x[bin]), 0.0f, 1e-3f) << "bin " << bin;
  }
}

TEST(Fft, RoundTripIdentity) {
  Xoshiro256 rng(3);
  for (const std::size_t n : {8u, 64u, 256u, 1024u}) {
    cvec x(n);
    for (auto& s : x) s = rng.complex_gaussian();
    const cvec orig = x;
    fft(x);
    ifft(x);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(x[k].real(), orig[k].real(), 1e-3f);
      EXPECT_NEAR(x[k].imag(), orig[k].imag(), 1e-3f);
    }
  }
}

TEST(Fft, ParsevalHolds) {
  Xoshiro256 rng(5);
  cvec x(128);
  for (auto& s : x) s = rng.complex_gaussian();
  double time_energy = 0.0;
  for (const cfloat s : x) time_energy += std::norm(s);
  const cvec spectrum = fft_copy(x);
  double freq_energy = 0.0;
  for (const cfloat s : spectrum) freq_energy += std::norm(s);
  EXPECT_NEAR(freq_energy / 128.0, time_energy, time_energy * 1e-4);
}

TEST(Fft, Linearity) {
  Xoshiro256 rng(9);
  cvec a(64), b(64), sum(64);
  for (std::size_t k = 0; k < 64; ++k) {
    a[k] = rng.complex_gaussian();
    b[k] = rng.complex_gaussian();
    sum[k] = a[k] + 2.0f * b[k];
  }
  const cvec fa = fft_copy(a), fb = fft_copy(b), fsum = fft_copy(sum);
  for (std::size_t k = 0; k < 64; ++k) {
    EXPECT_NEAR(fsum[k].real(), fa[k].real() + 2.0f * fb[k].real(), 1e-2f);
    EXPECT_NEAR(fsum[k].imag(), fa[k].imag() + 2.0f * fb[k].imag(), 1e-2f);
  }
}

}  // namespace
}  // namespace rjf::dsp
