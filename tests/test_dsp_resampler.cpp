#include "dsp/resampler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <utility>

#include "dsp/db.h"

namespace rjf::dsp {
namespace {

cvec tone(double freq_hz, double rate_hz, std::size_t n) {
  cvec x(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double p = 2.0 * std::numbers::pi * freq_hz * k / rate_hz;
    x[k] = cfloat{static_cast<float>(std::cos(p)), static_cast<float>(std::sin(p))};
  }
  return x;
}

TEST(Resampler, RejectsNonPositiveRates) {
  EXPECT_THROW(Resampler(0.0, 25e6), std::invalid_argument);
  EXPECT_THROW(Resampler(20e6, -1.0), std::invalid_argument);
}

TEST(Resampler, OutputLengthMatchesRatio) {
  const Resampler rs(20e6, 25e6);
  EXPECT_EQ(rs.resample(cvec(1000)).size(), 1250u);
  const Resampler down(25e6, 20e6);
  EXPECT_EQ(down.resample(cvec(1000)).size(), 800u);
}

TEST(Resampler, EmptyInput) {
  const Resampler rs(20e6, 25e6);
  EXPECT_TRUE(rs.resample({}).empty());
}

struct RatioCase {
  double in_rate;
  double out_rate;
};

class ResamplerRatio : public ::testing::TestWithParam<RatioCase> {};

TEST_P(ResamplerRatio, TonePreservedThroughConversion) {
  const auto [in_rate, out_rate] = GetParam();
  const double f = 1e6;  // well inside both Nyquist zones
  const cvec in = tone(f, in_rate, 4000);
  const cvec out = resample(in, in_rate, out_rate);

  // The output should be the same tone at the new rate: check the phase
  // increment in the interior of the buffer.
  const double expected = 2.0 * std::numbers::pi * f / out_rate;
  for (std::size_t k = out.size() / 4; k < out.size() / 2; ++k) {
    const cfloat r = out[k + 1] * std::conj(out[k]);
    EXPECT_NEAR(std::arg(r), expected, 0.02) << "k=" << k;
  }
  // And power should be preserved in the interior.
  const std::span<const cfloat> mid(out.data() + out.size() / 4, out.size() / 2);
  EXPECT_NEAR(mean_power(mid), 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRates, ResamplerRatio,
    ::testing::Values(RatioCase{20e6, 25e6},    // WiFi TX -> jammer
                      RatioCase{25e6, 20e6},    // jammer TX -> WiFi RX
                      RatioCase{11.2e6, 25e6},  // WiMAX -> jammer
                      RatioCase{25e6, 11.2e6}));

TEST(Resampler, FractionalDelayShiftsTone) {
  const double rate = 25e6;
  const double f = 2e6;
  const cvec in = tone(f, rate, 2000);
  const Resampler rs(rate, rate);
  const cvec a = rs.resample(in, 0.0);
  const cvec b = rs.resample(in, 0.5);
  // A half-sample delay of a tone is a phase rotation of pi*f/rate... i.e.
  // b[k] ~= tone evaluated half a sample later.
  const double expected_shift = 2.0 * std::numbers::pi * f / rate * 0.5;
  for (std::size_t k = 500; k < 600; ++k) {
    const cfloat r = b[k] * std::conj(a[k]);
    EXPECT_NEAR(std::arg(r), expected_shift, 0.03);
  }
}

TEST(Resampler, DcGainNearUnityMidStream) {
  // A constant input through the Fig. 6 20->25 MSPS conversion must come
  // out at the same level once the 8-tap kernel has full support: the
  // windowed-sinc taps are not renormalised per output point, so this
  // bounds the kernel's DC ripple directly.
  const cvec in(4000, cfloat{1.0f, 0.0f});
  for (const auto& [in_rate, out_rate] :
       {std::pair{20e6, 25e6}, std::pair{25e6, 20e6}, std::pair{11.2e6, 25e6}}) {
    const cvec out = resample(in, in_rate, out_rate);
    for (std::size_t k = out.size() / 4; k < 3 * out.size() / 4; ++k) {
      EXPECT_NEAR(out[k].real(), 1.0f, 0.03f)
          << in_rate << "->" << out_rate << " k=" << k;
      EXPECT_NEAR(out[k].imag(), 0.0f, 0.03f);
    }
  }
}

TEST(Resampler, FractionalDelayMatchesAnalyticTone) {
  // Interpolating a tone at ratio r with fractional delay d must equal the
  // same tone evaluated at input instants m/r + d — amplitude and phase.
  const double in_rate = 20e6;
  const double out_rate = 25e6;
  const double f = 1.5e6;
  const cvec in = tone(f, in_rate, 4000);
  const Resampler rs(in_rate, out_rate);
  for (const double d : {0.125, 0.5, 0.875}) {
    const cvec out = rs.resample(in, d);
    const double ratio = out_rate / in_rate;
    for (std::size_t m = out.size() / 4; m < out.size() / 2; ++m) {
      const double t_in = static_cast<double>(m) / ratio + d;
      const double p = 2.0 * std::numbers::pi * f * t_in / in_rate;
      EXPECT_NEAR(out[m].real(), std::cos(p), 0.03) << "d=" << d << " m=" << m;
      EXPECT_NEAR(out[m].imag(), std::sin(p), 0.03) << "d=" << d << " m=" << m;
    }
  }
}

TEST(Resampler, EdgeErrorConfinedToKernelSupport) {
  // The buffer edges are zero-padded, so outputs near them lose kernel
  // taps and deviate from the true level (overshoot where the missing
  // lobes are negative, droop where positive). The deviation must be
  // bounded and confined to the kernel half-width (4 input samples) —
  // detection captures budget their lead-in/tail around exactly this.
  const cvec in(2000, cfloat{1.0f, 0.0f});
  // Half-sample delay keeps every output instant between input samples, so
  // edge outputs genuinely lose kernel mass (on-grid instants hit the
  // sinc's integer zeros and would mask the effect).
  const cvec out = Resampler(20e6, 25e6).resample(in, 0.5);
  const double ratio = 25.0 / 20.0;
  // The first output draws on input taps 0..4 only (half its support):
  // measurably off unity, but bounded.
  EXPECT_GT(std::abs(std::abs(out.front()) - 1.0f), 0.04f);
  EXPECT_LT(std::abs(std::abs(out.front()) - 1.0f), 0.35f);
  // The last output loses the upper half of its support, main lobe
  // included, so it droops well below full level.
  EXPECT_LT(std::abs(out.back()), 0.85f);
  // Beyond the kernel half-width (in output samples), full level again.
  const auto settled = static_cast<std::size_t>(std::ceil(4.0 * ratio)) + 1;
  for (std::size_t k = settled; k < settled + 50; ++k)
    EXPECT_NEAR(std::abs(out[k]), 1.0f, 0.03f) << "k=" << k;
  for (std::size_t k = out.size() - settled - 50; k < out.size() - settled; ++k)
    EXPECT_NEAR(std::abs(out[k]), 1.0f, 0.03f) << "k=" << k;
}

TEST(Resampler, IdentityRatioReproducesInput) {
  const cvec in = tone(1e6, 25e6, 1000);
  const cvec out = resample(in, 25e6, 25e6);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t k = 100; k < 900; ++k) {
    EXPECT_NEAR(out[k].real(), in[k].real(), 0.02f);
    EXPECT_NEAR(out[k].imag(), in[k].imag(), 0.02f);
  }
}

TEST(Resampler, DownconversionBandLimits) {
  // A tone beyond the output Nyquist must be attenuated when decimating.
  // The 8-tap kernel trades stopband depth for speed, so expect meaningful
  // (not brick-wall) suppression near the band edge.
  const cvec in = tone(11e6, 25e6, 4000);  // > 10 MHz Nyquist of 20 MSPS
  const cvec out = resample(in, 25e6, 20e6);
  const std::span<const cfloat> mid(out.data() + out.size() / 4, out.size() / 2);
  EXPECT_LT(mean_power_db(mid), -6.0);
}

}  // namespace
}  // namespace rjf::dsp
