// Unit tests for the bit-width-checked hardware integer types, validated
// against straightforward slow-reference arithmetic across the widths the
// datapath actually uses (1, 3, 8, 14, 16, 24, 32, 48, 64). The companion
// compile-failure suite (tests/compile_fail/) covers the contracts that are
// compile errors rather than runtime behaviour.
#include "fpga/hw_int.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace rjf::fpga::hw {
namespace {

// ---------------------------------------------------------------------------
// Slow reference semantics, written the obvious way.

constexpr std::uint64_t ref_mask(int w) {
  return w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w) - 1u);
}

constexpr std::int64_t ref_wrap_s(std::int64_t v, int w) {
  const std::uint64_t low = static_cast<std::uint64_t>(v) & ref_mask(w);
  const std::uint64_t sign = std::uint64_t{1} << (w - 1);
  if (w < 64 && (low & sign) != 0u)
    return static_cast<std::int64_t>(low - (sign << 1));
  return static_cast<std::int64_t>(low);
}

// Deterministic pseudo-random stream (splitmix64); no std::rand anywhere.
constexpr std::uint64_t next_rand(std::uint64_t& s) {
  s += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

template <int W>
std::vector<std::uint64_t> uint_test_values() {
  std::vector<std::uint64_t> vals = {0u, UInt<W>::kMax, UInt<W>::kMax / 2};
  if (W > 1) {
    vals.push_back(1u);
    vals.push_back(UInt<W>::kMax - 1u);
  }
  std::uint64_t s = 0xC0FFEEull + static_cast<std::uint64_t>(W);
  for (int i = 0; i < 64; ++i) vals.push_back(next_rand(s) & UInt<W>::kMax);
  return vals;
}

template <int W>
std::vector<std::int64_t> int_test_values() {
  std::vector<std::int64_t> vals = {0, Int<W>::kMin, Int<W>::kMax, -1};
  if (W > 1) {
    vals.push_back(1);
    vals.push_back(Int<W>::kMin + 1);
  }
  std::uint64_t s = 0xFACADEull + static_cast<std::uint64_t>(W);
  for (int i = 0; i < 64; ++i)
    vals.push_back(ref_wrap_s(static_cast<std::int64_t>(next_rand(s)), W));
  return vals;
}

// ---------------------------------------------------------------------------
// UInt<W> vs reference.

template <int W>
void CheckUIntWidth() {
  SCOPED_TRACE(::testing::Message() << "W=" << W);
  using U = UInt<W>;
  static_assert(U::kWidth == W);
  static_assert(U::kMax == ref_mask(W));

  for (const std::uint64_t v : uint_test_values<W>()) {
    const U x(v);
    EXPECT_EQ(x.u64(), v);
    EXPECT_EQ(x.value(), v);

    // wrap: low bits at any target width.
    EXPECT_EQ(x.template wrap<1>().u64(), v & ref_mask(1));
    EXPECT_EQ(x.template wrap<3>().u64(), v & ref_mask(3));
    EXPECT_EQ(x.template wrap<64>().u64(), v);
    EXPECT_EQ(wrap_u<5>(x).u64(), v & ref_mask(5));

    // truncate / narrow / zext where the width relation allows them.
    if constexpr (W >= 3) {
      EXPECT_EQ(x.template truncate<3>().u64(), v & ref_mask(3));
    }
    EXPECT_EQ(x.template truncate<W>().u64(), v);
    EXPECT_EQ(x.template zext<64>().u64(), v);
    EXPECT_EQ(x.template zext<64>().template narrow<W>().u64(), v);

    // sat: clamp against the target max.
    EXPECT_EQ(x.template sat<3>().u64(), std::min(v, ref_mask(3)));
    EXPECT_EQ(x.template sat<64>().u64(), v);
    EXPECT_EQ(sat_u<1>(v).u64(), std::min(v, ref_mask(1)));

    // signed-domain crossing.
    if constexpr (W < 64) {
      EXPECT_EQ(x.to_signed().i64(), static_cast<std::int64_t>(v));
      static_assert(decltype(x.to_signed())::kWidth == W + 1);
    }

    // RTL idioms.
    EXPECT_EQ(popcount(x).u64(),
              static_cast<std::uint64_t>(std::popcount(v)));
    EXPECT_EQ(wrap_inc(x).u64(), (v + 1u) & ref_mask(W));
    EXPECT_EQ(wrap_dec(x).u64(), (v - 1u) & ref_mask(W));
    EXPECT_EQ(shift_in(x, true).u64(), ((v << 1) | 1u) & ref_mask(W));
    EXPECT_EQ(shift_in(x, false).u64(), (v << 1) & ref_mask(W));

    // Bitwise logic against a second deterministic operand.
    const U y = U::from_raw_bits(~v);
    EXPECT_EQ((x & y).u64(), v & ~v & ref_mask(W));
    EXPECT_EQ((x | y).u64(), ref_mask(W));
    EXPECT_EQ((x ^ y).u64(), ref_mask(W));
    EXPECT_EQ((~x).u64(), ~v & ref_mask(W));

    // Comparisons against raw integers go through std::cmp_*.
    EXPECT_TRUE(x == v);
    EXPECT_FALSE(x < 0);
    EXPECT_FALSE(x == -1);  // sign-safe: never matches a negative
  }
}

TEST(HwUInt, MatchesReferenceAcrossWidths) {
  CheckUIntWidth<1>();
  CheckUIntWidth<3>();
  CheckUIntWidth<8>();
  CheckUIntWidth<14>();
  CheckUIntWidth<16>();
  CheckUIntWidth<24>();
  CheckUIntWidth<32>();
  CheckUIntWidth<48>();
  CheckUIntWidth<64>();
}

// ---------------------------------------------------------------------------
// Int<W> vs reference.

template <int W>
void CheckIntWidth() {
  SCOPED_TRACE(::testing::Message() << "W=" << W);
  using I = Int<W>;
  static_assert(I::kWidth == W);
  static_assert(I::kMin == -(I::kMax) - 1);
  static_assert(W >= 64 || I::kMax == static_cast<std::int64_t>(ref_mask(W) >> 1));

  for (const std::int64_t v : int_test_values<W>()) {
    const I x(v);
    EXPECT_EQ(x.i64(), v);

    // wrap: two's-complement reinterpretation at any width.
    EXPECT_EQ(x.template wrap<1>().i64(), ref_wrap_s(v, 1));
    EXPECT_EQ(x.template wrap<3>().i64(), ref_wrap_s(v, 3));
    EXPECT_EQ(x.template wrap<64>().i64(), v);
    EXPECT_EQ(wrap_s<5>(v).i64(), ref_wrap_s(v, 5));

    if constexpr (W >= 3) {
      EXPECT_EQ(x.template truncate<3>().i64(), ref_wrap_s(v, 3));
    }
    EXPECT_EQ(x.template sext<64>().i64(), v);
    EXPECT_EQ(x.template sext<64>().template narrow<W>().i64(), v);

    // sat: clamp into the target range.
    EXPECT_EQ(x.template sat<3>().i64(),
              std::clamp(v, Int<3>::kMin, Int<3>::kMax));
    EXPECT_EQ(sat_s<1>(v).i64(), std::clamp<std::int64_t>(v, -1, 0));

    // |v| is exact even at kMin (2^(W-1) fits the unsigned width).
    const std::uint64_t expect_abs =
        v < 0 ? std::uint64_t{0} - static_cast<std::uint64_t>(v)
              : static_cast<std::uint64_t>(v);
    EXPECT_EQ(x.abs().u64(), expect_abs);
    if (v >= 0) EXPECT_EQ(x.to_unsigned().u64(), static_cast<std::uint64_t>(v));

    if constexpr (W < 64) {
      EXPECT_EQ((-x).i64(), -v);  // Int<W+1> holds -kMin exactly
      static_assert(decltype(-x)::kWidth == W + 1);
    }

    EXPECT_TRUE(x == v);
    EXPECT_EQ(x < 0, v < 0);
    EXPECT_EQ(x > 0, v > 0);
  }
}

TEST(HwInt, MatchesReferenceAcrossWidths) {
  CheckIntWidth<1>();
  CheckIntWidth<3>();
  CheckIntWidth<8>();
  CheckIntWidth<14>();
  CheckIntWidth<16>();
  CheckIntWidth<24>();
  CheckIntWidth<32>();
  CheckIntWidth<48>();
  CheckIntWidth<64>();
}

// ---------------------------------------------------------------------------
// Widening arithmetic: exact full-width results, correct result types.

TEST(HwArith, WideningOpsAreExactAndCorrectlyTyped) {
  std::uint64_t s = 0xBEEF;
  for (int i = 0; i < 200; ++i) {
    const std::int64_t a = ref_wrap_s(static_cast<std::int64_t>(next_rand(s)), 14);
    const std::int64_t b = ref_wrap_s(static_cast<std::int64_t>(next_rand(s)), 14);
    const Int<14> A(a);
    const Int<14> B(b);

    static_assert(std::is_same_v<decltype(A + B), Int<15>>);
    static_assert(std::is_same_v<decltype(A - B), Int<15>>);
    static_assert(std::is_same_v<decltype(A * B), Int<28>>);
    EXPECT_EQ((A + B).i64(), a + b);
    EXPECT_EQ((A - B).i64(), a - b);
    EXPECT_EQ((A * B).i64(), a * b);

    const std::uint64_t ua = next_rand(s) & ref_mask(24);
    const std::uint64_t ub = next_rand(s) & ref_mask(24);
    const UInt<24> UA(ua);
    const UInt<24> UB(ub);
    static_assert(std::is_same_v<decltype(UA + UB), UInt<25>>);
    static_assert(std::is_same_v<decltype(UA * UB), UInt<48>>);
    // Unsigned subtraction lands in the signed domain at full width.
    static_assert(std::is_same_v<decltype(UA - UB), Int<25>>);
    EXPECT_EQ((UA + UB).u64(), ua + ub);
    EXPECT_EQ((UA * UB).u64(), ua * ub);
    EXPECT_EQ((UA - UB).i64(),
              static_cast<std::int64_t>(ua) - static_cast<std::int64_t>(ub));

    // Mixed widths widen to the exact requirement.
    const Int<3> C(ref_wrap_s(static_cast<std::int64_t>(next_rand(s)), 3));
    static_assert(std::is_same_v<decltype(A * C), Int<17>>);
    static_assert(std::is_same_v<decltype(A + C), Int<15>>);
    EXPECT_EQ((A * C).i64(), a * C.i64());
  }
}

TEST(HwArith, ProductWidthIsTightAtTheExtremes) {
  // kMin * kMin = +2^(A+B-2) needs exactly A+B bits: Int<3> spans -4..3,
  // (-4)*(-4) = 16 = Int<6>::kMax/2 + 1... i.e. it does NOT fit Int<5>.
  constexpr Int<3> m(Int<3>::kMin);
  constexpr auto p = m * m;
  static_assert(std::is_same_v<decltype(p), const Int<6>>);
  static_assert(p.i64() == 16);
  static_assert(Int<5>::kMax < 16 && Int<6>::kMax >= 16);

  constexpr UInt<4> u(UInt<4>::kMax);
  static_assert((u * u).u64() == 225);
  static_assert(UInt<8>::kMax >= 225 && UInt<7>::kMax < 225);
}

TEST(HwArith, StaticShiftsTrackWidths) {
  const UInt<14> x(0x2AAAu);
  static_assert(std::is_same_v<decltype(x.shl<2>()), UInt<16>>);
  static_assert(std::is_same_v<decltype(x.shr<2>()), UInt<12>>);
  EXPECT_EQ(x.shl<2>().u64(), 0x2AAAull << 2);
  EXPECT_EQ(x.shr<2>().u64(), 0x2AAAull >> 2);

  const Int<7> y(-33);
  static_assert(std::is_same_v<decltype(y.shl<3>()), Int<10>>);
  EXPECT_EQ(y.shl<3>().i64(), -33 * 8);
}

// ---------------------------------------------------------------------------
// The >64-bit comparator used for the Q8.8 energy-threshold compare.

TEST(HwArith, ShiftedGtMatches128BitReference) {
  std::uint64_t s = 0xD1CE;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t lhs = next_rand(s) & ref_mask(37);
    const std::uint64_t a = next_rand(s) & ref_mask(37);
    // Bias some thresholds small so both branch outcomes are exercised.
    const std::uint64_t b = next_rand(s) & ref_mask(i % 2 == 0 ? 32 : 10);
    const bool expect = (static_cast<unsigned __int128>(lhs) << 8) >
                        static_cast<unsigned __int128>(a) * b;
    EXPECT_EQ(shifted_gt<8>(UInt<37>(lhs), UInt<37>(a), UInt<32>(b)), expect);
  }
  // Saturating threshold against a tiny numerator: the 128-bit product
  // (~2^69) would overflow any 64-bit spelling.
  EXPECT_FALSE(shifted_gt<8>(UInt<37>(1u), UInt<37>(UInt<37>::kMax),
                             UInt<32>(UInt<32>::kMax)));
  EXPECT_TRUE(shifted_gt<8>(UInt<37>(UInt<37>::kMax), UInt<37>(), UInt<32>()));
}

// ---------------------------------------------------------------------------
// Enum <-> register-field helpers.

enum class Fruit : std::uint32_t { kApple = 0, kBanana = 1, kCherry = 2 };

TEST(HwEnum, RoundTripsThroughRegisterFields) {
  const UInt<2> f = from_enum<2>(Fruit::kCherry);
  EXPECT_EQ(f.u64(), 2u);
  EXPECT_EQ(to_enum<Fruit>(f), Fruit::kCherry);
  EXPECT_EQ(to_enum<Fruit>(from_enum<2>(Fruit::kApple)), Fruit::kApple);
}

// ---------------------------------------------------------------------------
// Cross-width comparisons.

TEST(HwCompare, CrossWidthCompareByValue) {
  EXPECT_TRUE(UInt<8>(200u) == UInt<32>(200u));
  EXPECT_TRUE(UInt<8>(200u) < UInt<3>(7u) + UInt<8>(255u));
  EXPECT_TRUE(Int<3>(-4) == Int<48>(-4));
  EXPECT_TRUE(Int<3>(-4) < Int<14>(0));
  EXPECT_TRUE(Int<3>(-1) != Int<14>(1));
  EXPECT_TRUE(UInt<16>(1u) >= UInt<64>(1u));
}

// ---------------------------------------------------------------------------
// Everything above is equally valid at compile time.

static_assert(UInt<8>(200u).wrap<4>().u64() == 8u);
static_assert(UInt<8>(200u).sat<4>().u64() == 15u);
static_assert(Int<8>(-100).wrap<4>().i64() == -4);
static_assert(Int<8>(-100).sat<4>().i64() == -8);
static_assert(wrap_s<3>(0xFu).i64() == -1);
static_assert((Int<14>(-8192) * Int<14>(-8192)).i64() == 67108864);
static_assert(popcount(UInt<64>(~std::uint64_t{0})).u64() == 64u);
static_assert(wrap_inc(UInt<2>(3u)).u64() == 0u);
static_assert(wrap_dec(UInt<19>()).u64() == UInt<19>::kMax);

// ---------------------------------------------------------------------------
// Debug-build range checks. Release builds compile these assertions out, so
// the death tests only exist where assert() is live.

#if !defined(NDEBUG) && defined(GTEST_HAS_DEATH_TEST)
TEST(HwIntDeathTest, OutOfRangeConstructionAsserts) {
  EXPECT_DEATH({ [[maybe_unused]] UInt<3> x(8u); }, "");
  EXPECT_DEATH({ [[maybe_unused]] UInt<3> x(-1); }, "");
  EXPECT_DEATH({ [[maybe_unused]] Int<3> x(4); }, "");
  EXPECT_DEATH({ [[maybe_unused]] Int<3> x(-5); }, "");
}

TEST(HwIntDeathTest, LossyNarrowAsserts) {
  EXPECT_DEATH(
      { [[maybe_unused]] auto y = UInt<8>(200u).narrow<4>(); }, "");
  EXPECT_DEATH(
      { [[maybe_unused]] auto y = Int<8>(-100).narrow<4>(); }, "");
  EXPECT_DEATH(
      { [[maybe_unused]] auto y = Int<8>(-1).to_unsigned(); }, "");
}
#endif

}  // namespace
}  // namespace rjf::fpga::hw
