// Telemetry-layer tests (DESIGN.md "Observability"): ring-buffer retention,
// histogram binning, Chrome-trace JSON well-formedness, the overhead
// contract (attaching a sink must not change fabric behaviour bit for bit),
// and the paper's latency arithmetic measured through the event stream
// (T_init = 8 fabric clocks = 80 ns; T_xcorr = one 64-sample window).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/event_builder.h"
#include "core/reactive_jammer.h"
#include "core/fabric_units.h"
#include "dsp/noise.h"
#include "dsp/rng.h"
#include "fpga/dsp_core.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/signal_probe.h"
#include "obs/telemetry.h"
#include "obs/trace_recorder.h"
#include "radio/usrp_n210.h"

namespace rjf::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON validator, enough to check that exported
// files are well-formed (objects, arrays, strings, numbers, literals).

bool parse_json_value(const std::string& s, std::size_t& p);

void skip_ws(const std::string& s, std::size_t& p) {
  while (p < s.size() &&
         (s[p] == ' ' || s[p] == '\t' || s[p] == '\n' || s[p] == '\r'))
    ++p;
}

bool parse_json_string(const std::string& s, std::size_t& p) {
  if (p >= s.size() || s[p] != '"') return false;
  ++p;
  while (p < s.size() && s[p] != '"') {
    if (s[p] == '\\') {
      ++p;
      if (p >= s.size()) return false;
    }
    ++p;
  }
  if (p >= s.size()) return false;
  ++p;  // closing quote
  return true;
}

bool parse_json_number(const std::string& s, std::size_t& p) {
  const std::size_t start = p;
  if (p < s.size() && (s[p] == '-' || s[p] == '+')) ++p;
  bool digits = false;
  while (p < s.size() && (std::isdigit(static_cast<unsigned char>(s[p])) ||
                          s[p] == '.' || s[p] == 'e' || s[p] == 'E' ||
                          s[p] == '-' || s[p] == '+'))
    digits = digits || std::isdigit(static_cast<unsigned char>(s[p])), ++p;
  return digits && p > start;
}

bool parse_json_object(const std::string& s, std::size_t& p) {
  if (s[p] != '{') return false;
  ++p;
  skip_ws(s, p);
  if (p < s.size() && s[p] == '}') return ++p, true;
  while (p < s.size()) {
    skip_ws(s, p);
    if (!parse_json_string(s, p)) return false;
    skip_ws(s, p);
    if (p >= s.size() || s[p] != ':') return false;
    ++p;
    if (!parse_json_value(s, p)) return false;
    skip_ws(s, p);
    if (p < s.size() && s[p] == ',') {
      ++p;
      continue;
    }
    break;
  }
  if (p >= s.size() || s[p] != '}') return false;
  ++p;
  return true;
}

bool parse_json_array(const std::string& s, std::size_t& p) {
  if (s[p] != '[') return false;
  ++p;
  skip_ws(s, p);
  if (p < s.size() && s[p] == ']') return ++p, true;
  while (p < s.size()) {
    if (!parse_json_value(s, p)) return false;
    skip_ws(s, p);
    if (p < s.size() && s[p] == ',') {
      ++p;
      skip_ws(s, p);
      continue;
    }
    break;
  }
  if (p >= s.size() || s[p] != ']') return false;
  ++p;
  return true;
}

bool parse_json_value(const std::string& s, std::size_t& p) {
  skip_ws(s, p);
  if (p >= s.size()) return false;
  if (s[p] == '{') return parse_json_object(s, p);
  if (s[p] == '[') return parse_json_array(s, p);
  if (s[p] == '"') return parse_json_string(s, p);
  if (s.compare(p, 4, "true") == 0) return p += 4, true;
  if (s.compare(p, 5, "false") == 0) return p += 5, true;
  if (s.compare(p, 4, "null") == 0) return p += 4, true;
  return parse_json_number(s, p);
}

bool is_valid_json(const std::string& s) {
  std::size_t p = 0;
  if (!parse_json_value(s, p)) return false;
  skip_ws(s, p);
  return p == s.size();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---------------------------------------------------------------------------
// Detection scenario shared by the end-to-end tests: a 64-sample random
// bipolar code programmed as the correlator template (threshold at half the
// clean peak, like the radio tests), injected into an otherwise silent
// stream. Detection timing is then exact: the correlator window fills over
// the code's 64 samples and the trigger edge lands at its final sample.

dsp::cvec random_code(std::uint64_t seed) {
  dsp::cvec code(fpga::kCorrelatorLength);
  dsp::Xoshiro256 rng(seed);
  for (auto& s : code)
    s = dsp::cfloat{rng.uniform() < 0.5 ? -0.5f : 0.5f,
                    rng.uniform() < 0.5 ? -0.5f : 0.5f};
  return code;
}

core::JammerConfig code_config(const dsp::cvec& code, std::uint32_t uptime) {
  const auto tpl = core::make_template(code);
  fpga::CrossCorrelator probe;
  probe.set_coefficients(tpl.coef_i, tpl.coef_q);
  std::uint32_t peak = 0;
  for (const auto s : code)
    peak = std::max(peak, probe.step(dsp::to_iq16(s)).metric);

  core::JammerConfig config;
  config.detection = core::DetectionMode::kCrossCorrelator;
  config.xcorr_template = tpl;
  config.xcorr_threshold = peak / 2;
  config.waveform = fpga::JamWaveform::kWhiteNoise;
  config.jam_uptime_samples = uptime;
  config.description = "test: 64-sample code jammer";
  return config;
}

dsp::cvec code_stream(const dsp::cvec& code, std::size_t inject_at,
                      std::size_t total) {
  dsp::cvec rx(total, dsp::cfloat{});
  for (std::size_t k = 0; k < code.size(); ++k) rx[inject_at + k] = code[k];
  return rx;
}

// ---------------------------------------------------------------------------
// TraceRecorder

TEST(TraceRecorder, RingKeepsNewestEventsInOrder) {
  TraceRecorder ring(8);
  for (std::uint64_t k = 0; k < 20; ++k)
    ring.record(EventKind::kFsmStage, /*vita=*/k, /*value=*/k * 10);

  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.recorded(), 20u);
  EXPECT_EQ(ring.overwritten(), 12u);

  const auto events = ring.events();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t k = 0; k < events.size(); ++k) {
    EXPECT_EQ(events[k].vita_ticks, 12u + k) << "slot " << k;
    EXPECT_EQ(events[k].value, (12u + k) * 10) << "slot " << k;
  }
}

TEST(TraceRecorder, ClearResetsRetentionButNotNothingElse) {
  TraceRecorder ring(4);
  ring.record(EventKind::kJamStart, 1, 0);
  ring.record(EventKind::kJamEnd, 2, 0);
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.events().empty());
}

TEST(TraceRecorder, CapacityRoundsUpToTwo) {
  TraceRecorder ring(0);
  EXPECT_GE(ring.capacity(), 2u);
  ring.record(EventKind::kJamStart, 5, 0);
  ring.record(EventKind::kJamEnd, 6, 0);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].vita_ticks, 5u);
  EXPECT_EQ(events[1].vita_ticks, 6u);
}

// ---------------------------------------------------------------------------
// Histogram

TEST(Histogram, BinEdgesAndOverflowBuckets) {
  // Bins: [10,15) [15,20) [20,25) [25,30); under <10, over >=30.
  Histogram h(10, 5, 4);
  EXPECT_EQ(h.bin_edge(0), 10u);
  EXPECT_EQ(h.bin_edge(1), 15u);
  EXPECT_EQ(h.bin_edge(3), 25u);

  h.record(9);    // underflow
  h.record(10);   // bin 0 (inclusive lower edge)
  h.record(14);   // bin 0
  h.record(15);   // bin 1 (exclusive upper edge of bin 0)
  h.record(29);   // bin 3
  h.record(30);   // overflow (exclusive top edge)
  h.record(1000); // overflow

  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(2), 0u);
  EXPECT_EQ(h.bin_count(3), 1u);
  EXPECT_EQ(h.overflow(), 2u);

  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.min_seen(), 9u);
  EXPECT_EQ(h.max_seen(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), (9.0 + 10 + 14 + 15 + 29 + 30 + 1000) / 7.0);
}

TEST(MetricsRegistry, HistogramCreatedOnceCountersAccumulate) {
  MetricsRegistry metrics;
  metrics.histogram("lat", 0, 1, 16).record(3);
  // Second lookup with different binning returns the same instance.
  metrics.histogram("lat", 99, 99, 99).record(5);
  const Histogram* h = metrics.find_histogram("lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2u);
  EXPECT_EQ(h->bin_width(), 1u);
  EXPECT_EQ(metrics.find_histogram("nope"), nullptr);

  metrics.add("n", 2);
  metrics.add("n", 3);
  EXPECT_EQ(metrics.counter_value("n"), 5u);
  EXPECT_EQ(metrics.counter_value("unset"), 0u);
}

TEST(Histogram, MergeCombinesCompatibleBinnings) {
  Histogram a(0, 5, 4);
  a.record(2);
  a.record(7);
  a.record(100);  // overflow
  Histogram b(0, 5, 4);
  b.record(3);
  b.record(19);
  Histogram whole(0, 5, 4);
  for (const std::uint64_t v : {2u, 7u, 100u, 3u, 19u}) whole.record(v);

  ASSERT_TRUE(a.merge(b));
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_EQ(a.sum(), whole.sum());
  EXPECT_EQ(a.overflow(), whole.overflow());
  EXPECT_EQ(a.min_seen(), whole.min_seen());
  EXPECT_EQ(a.max_seen(), whole.max_seen());
  for (std::size_t k = 0; k < whole.num_bins(); ++k)
    EXPECT_EQ(a.bin_count(k), whole.bin_count(k));
}

TEST(Histogram, MergeRejectsBinningMismatch) {
  Histogram a(0, 5, 4);
  a.record(2);
  Histogram narrower(0, 1, 4);
  Histogram shifted(1, 5, 4);
  Histogram fewer(0, 5, 3);
  EXPECT_FALSE(a.merge(narrower));
  EXPECT_FALSE(a.merge(shifted));
  EXPECT_FALSE(a.merge(fewer));
  EXPECT_EQ(a.count(), 1u);  // unchanged by rejected merges
}

TEST(MetricsRegistry, MergeFoldsShardRegistries) {
  MetricsRegistry total;
  total.add("trials", 10);
  total.set_gauge("rate", 1.0);
  total.histogram("lat", 0, 1, 8).record(2);

  MetricsRegistry shard;
  shard.add("trials", 7);
  shard.add("detections", 3);
  shard.set_gauge("rate", 2.5);
  shard.histogram("lat", 0, 1, 8).record(5);
  shard.histogram("duty", 0, 10, 4).record(15);

  EXPECT_EQ(total.merge(shard), 0u);
  EXPECT_EQ(total.counter_value("trials"), 17u);
  EXPECT_EQ(total.counter_value("detections"), 3u);
  EXPECT_EQ(total.gauges().at("rate"), 2.5);  // gauges: last merge wins
  const Histogram* lat = total.find_histogram("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count(), 2u);
  ASSERT_NE(total.find_histogram("duty"), nullptr);  // copied when absent

  // A shard whose histogram binning conflicts is reported, not merged.
  MetricsRegistry bad;
  bad.histogram("lat", 0, 99, 8).record(1);
  EXPECT_EQ(total.merge(bad), 1u);
  EXPECT_EQ(total.find_histogram("lat")->count(), 2u);
}

// ---------------------------------------------------------------------------
// JsonWriter

TEST(JsonWriter, NestedObjectsRenderValidJson) {
  JsonWriter json;
  json.set("name", std::string("va\"lue\\with escapes"));
  json.set("rate", 1.5);
  json.set("count", std::uint64_t{42});
  json.set("flag", true);
  auto& child = json.object("nested");
  child.set("inner", 7);
  json.object("nested").set("again", 8);  // same child, not a duplicate key
  json.set("rate", 2.5);                  // scalar overwrite, not a dup key

  const std::string body = json.to_string();
  EXPECT_TRUE(is_valid_json(body)) << body;
  EXPECT_NE(body.find("\"inner\": 7"), std::string::npos);
  EXPECT_NE(body.find("\"again\": 8"), std::string::npos);
  EXPECT_NE(body.find("2.5"), std::string::npos);
  // The overwritten value is gone and the key appears once.
  EXPECT_EQ(body.find("1.5"), std::string::npos);
}

// ---------------------------------------------------------------------------
// SignalProbe

FabricSignals strobe_at(std::uint64_t vita, bool trigger = false) {
  FabricSignals s;
  s.vita_ticks = vita;
  s.xcorr_metric = static_cast<std::uint32_t>(vita);
  s.xcorr_trigger = trigger;
  return s;
}

TEST(SignalProbe, CapturesPreAndPostWindowAroundTrigger) {
  ProbeConfig config;
  config.pre_samples = 4;
  config.post_samples = 6;
  config.max_captures = 2;
  SignalProbe probe(config);

  for (std::uint64_t v = 0; v < 20; ++v) probe.on_strobe(strobe_at(v));
  probe.on_strobe(strobe_at(20, /*trigger=*/true));
  for (std::uint64_t v = 21; v < 40; ++v) probe.on_strobe(strobe_at(v));

  ASSERT_EQ(probe.captures().size(), 1u);
  const auto& cap = probe.captures()[0];
  EXPECT_EQ(cap.trigger_vita, 20u);
  // 4 pre + trigger + 6 post.
  ASSERT_EQ(cap.samples.size(), 11u);
  EXPECT_EQ(cap.samples[cap.trigger_index].vita_ticks, 20u);
  EXPECT_EQ(cap.samples.front().vita_ticks, 16u);
  EXPECT_EQ(cap.samples.back().vita_ticks, 26u);
  for (std::size_t k = 1; k < cap.samples.size(); ++k)
    EXPECT_EQ(cap.samples[k].vita_ticks, cap.samples[k - 1].vita_ticks + 1);
}

TEST(SignalProbe, StopsArmingAtMaxCaptures) {
  ProbeConfig config;
  config.pre_samples = 1;
  config.post_samples = 1;
  config.max_captures = 2;
  SignalProbe probe(config);

  std::uint64_t vita = 0;
  for (int round = 0; round < 5; ++round) {
    probe.on_strobe(strobe_at(vita++));
    probe.on_strobe(strobe_at(vita++, /*trigger=*/true));
    probe.on_strobe(strobe_at(vita++));
    probe.on_strobe(strobe_at(vita++));
  }
  EXPECT_EQ(probe.captures().size(), 2u);
  EXPECT_EQ(probe.triggers_seen(), 5u);

  probe.clear();
  EXPECT_TRUE(probe.captures().empty());
  EXPECT_EQ(probe.triggers_seen(), 0u);
}

// ---------------------------------------------------------------------------
// Overhead contract: attaching a sink must not change the fabric outputs.

TEST(TelemetrySink, AttachedCoreIsBitIdenticalToPlainCore) {
  const auto config = code_config(random_code(0x5EED), /*uptime=*/48);

  core::ReactiveJammer plain(config);
  core::ReactiveJammer traced(config);
  Telemetry telemetry;
  traced.attach_trace(&telemetry);

  dsp::NoiseSource noise(1e-4, 77);
  dsp::cvec rx = code_stream(random_code(0x5EED), 500, 4096);
  noise.add_to(rx);

  const auto a = plain.observe(rx);
  const auto b = traced.observe(rx);
  traced.attach_trace(nullptr);

  // Bit-identical TX waveform, burst schedule and counters.
  ASSERT_EQ(a.tx.size(), b.tx.size());
  for (std::size_t k = 0; k < a.tx.size(); ++k)
    ASSERT_EQ(a.tx[k], b.tx[k]) << "sample " << k;
  ASSERT_EQ(a.bursts.size(), b.bursts.size());
  for (std::size_t k = 0; k < a.bursts.size(); ++k) {
    EXPECT_EQ(a.bursts[k].start_sample, b.bursts[k].start_sample);
    EXPECT_EQ(a.bursts[k].length, b.bursts[k].length);
  }
  EXPECT_EQ(a.jam_triggers, b.jam_triggers);
  EXPECT_EQ(a.xcorr_detections, b.xcorr_detections);
  EXPECT_EQ(plain.feedback().vita_ticks, traced.feedback().vita_ticks);
  EXPECT_EQ(plain.feedback().last_trigger_vita,
            traced.feedback().last_trigger_vita);

  // The equivalence must have exercised a real detection and jam burst.
  EXPECT_GT(a.jam_triggers, 0u);
  EXPECT_GT(telemetry.trace().recorded(), 0u);
}

// ---------------------------------------------------------------------------
// Paper latency arithmetic through the event stream.

TEST(TelemetryLatency, TriggerToRfIsTInit80ns) {
  const auto code = random_code(0xBEEF);
  core::ReactiveJammer jammer(code_config(code, /*uptime=*/32));
  Telemetry telemetry;
  jammer.attach_trace(&telemetry);

  const auto result = jammer.observe(code_stream(code, 300, 2048));
  jammer.attach_trace(nullptr);
  ASSERT_EQ(result.jam_triggers, 1u);

  // T_init: the jammer controller counts the trigger clock as the first of
  // kTxInitCycles = 8 init cycles, so RF rises 8 fabric clocks = 80 ns
  // after the trigger (paper: "fixed number of cycles ~= 80 ns").
  const Histogram* h = telemetry.metrics().find_histogram("trigger_to_rf_ticks");
  ASSERT_NE(h, nullptr);
  ASSERT_EQ(h->count(), 1u);
  EXPECT_EQ(h->min_seen(), 8u);
  EXPECT_EQ(h->max_seen(), 8u);
  EXPECT_DOUBLE_EQ(h->mean() * kTickNs, 80.0);

  // T_xcorr: the correlator fires when its 64-sample window has seen the
  // whole code, i.e. at the code's last sample — one 2.56 us window after
  // the code started entering the detector.
  std::uint64_t xcorr_vita = 0;
  for (const auto& e : telemetry.trace().events())
    if (e.kind == EventKind::kXcorrTrigger) {
      xcorr_vita = e.vita_ticks;
      break;
    }
  ASSERT_GT(xcorr_vita, 0u);
  const double us = ticks_to_us(xcorr_vita);
  const double code_start_us = 300.0 / 25.0;  // sample 300 at 25 MSPS
  EXPECT_NEAR(us - code_start_us, 2.56, 0.1);

  // detect->RF arms on the FIRST detector edge of the sequence — here the
  // energy-rise edge, which fires as soon as the code's energy arrives,
  // a full correlator window before the xcorr trigger. The measured span is
  // therefore the whole paper chain: T_xcorr (256 ticks = 2.56 us) +
  // T_init (8 ticks = 80 ns), minus the few samples the energy window
  // needs to cross its threshold.
  const Histogram* d = telemetry.metrics().find_histogram("detect_to_rf_ticks");
  ASSERT_NE(d, nullptr);
  ASSERT_EQ(d->count(), 1u);
  EXPECT_NEAR(static_cast<double>(d->max_seen()), 256.0 + 8.0, 40.0);
}

TEST(TelemetryLatency, SettingsBusWritesMeasureTheModelledLatency) {
  const auto code = random_code(0xD00D);
  core::ReactiveJammer jammer(code_config(code, /*uptime=*/16));
  Telemetry telemetry;
  jammer.attach_trace(&telemetry);

  // Reconfigure mid-run: every register write crosses the bus model.
  jammer.reconfigure(code_config(code, /*uptime=*/24));
  const auto unused = jammer.observe(dsp::cvec(8192, dsp::cfloat{}));
  (void)unused;
  jammer.attach_trace(nullptr);

  const std::uint32_t bus_cycles =
      jammer.radio().settings_bus().latency_cycles();
  const Histogram* h =
      telemetry.metrics().find_histogram("settings_bus_latency_ticks");
  ASSERT_NE(h, nullptr);
  ASSERT_GT(h->count(), 0u);
  // Writes serialise, so the k-th write in the burst waits k*latency; the
  // fastest write saw exactly one bus crossing.
  EXPECT_EQ(h->min_seen(), bus_cycles);
  EXPECT_EQ(h->max_seen() % bus_cycles, 0u);
  EXPECT_EQ(telemetry.metrics().counter_value("events.settings_write_issued"),
            telemetry.metrics().counter_value("events.settings_write_applied"));
}

// ---------------------------------------------------------------------------
// Exports

TEST(TelemetryExport, ChromeTraceIsWellFormedAndNamesThePersonality) {
  core::JammingEventBuilder builder;
  const auto config = builder.detect_energy_rise(10.0).white_noise()
                          .uptime(10e-6)
                          .build();
  ASSERT_TRUE(config.has_value());
  // Satellite check: build() stamps the describe() string into the config.
  EXPECT_EQ(config->description, builder.describe());
  EXPECT_NE(config->description.find("energy-rise"), std::string::npos);

  core::ReactiveJammer jammer(*config);
  Telemetry telemetry;
  jammer.attach_trace(&telemetry);

  // An energy step triggers the jammer; a couple of host actions land in
  // the host lane of the trace.
  jammer.tune(2.484e9);
  jammer.set_tx_gain(20.0);
  dsp::cvec rx(4096, dsp::cfloat{});
  dsp::NoiseSource noise(0.2, 5);
  for (std::size_t k = 1024; k < 2048; ++k)
    rx[k] = noise.block(1)[0];
  const auto result = jammer.observe(rx);
  jammer.attach_trace(nullptr);
  ASSERT_GT(result.jam_triggers, 0u);

  const std::string path = ::testing::TempDir() + "rjf_trace.json";
  ASSERT_TRUE(telemetry.write_chrome_trace(path));
  const std::string body = slurp(path);
  ASSERT_FALSE(body.empty());
  EXPECT_TRUE(is_valid_json(body)) << body.substr(0, 400);
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(body.find("jam_burst"), std::string::npos);
  // The personality annotation names what produced the trace.
  EXPECT_NE(body.find(JsonWriter::escape(config->description)),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(TelemetryExport, MetricsJsonIsWellFormedWithDerivedGauges) {
  const auto code = random_code(0xFACE);
  core::ReactiveJammer jammer(code_config(code, /*uptime=*/64));
  Telemetry telemetry;
  jammer.attach_trace(&telemetry);
  const auto result = jammer.observe(code_stream(code, 200, 4096));
  jammer.attach_trace(nullptr);
  ASSERT_GT(result.jam_triggers, 0u);

  // The jammer was on the air for 64 of ~4096 samples.
  const double duty = telemetry.jam_duty_cycle();
  EXPECT_GT(duty, 0.0);
  EXPECT_LE(duty, 1.0);
  EXPECT_NEAR(duty, 64.0 / 4096.0, 0.01);

  const std::string path = ::testing::TempDir() + "rjf_metrics.json";
  ASSERT_TRUE(telemetry.write_metrics_json(path));
  const std::string body = slurp(path);
  EXPECT_TRUE(is_valid_json(body)) << body.substr(0, 400);
  EXPECT_NE(body.find("\"histograms\""), std::string::npos);
  EXPECT_NE(body.find("\"trigger_to_rf_ticks\""), std::string::npos);
  EXPECT_NE(body.find("\"jam_duty_cycle\""), std::string::npos);
  std::remove(path.c_str());

  // The probe captured fabric signals around the trigger edge, and the CSV
  // export round-trips.
  ASSERT_GE(telemetry.probe().captures().size(), 1u);
  const std::string csv_path = ::testing::TempDir() + "rjf_probe.csv";
  ASSERT_TRUE(telemetry.write_probe_csv(csv_path));
  const std::string csv = slurp(csv_path);
  EXPECT_NE(csv.find("xcorr_metric"), std::string::npos);
  EXPECT_GT(std::count(csv.begin(), csv.end(), '\n'), 2);
  std::remove(csv_path.c_str());
}

}  // namespace
}  // namespace rjf::obs
