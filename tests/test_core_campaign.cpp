// Campaign runner: grid indexing, shard-store durability (torn tails,
// corrupt records, identity mismatch), and the headline guarantee — a
// campaign killed at any shard boundary and resumed, at any thread count
// and any shard granularity, merges to a report byte-identical to an
// uninterrupted single-process run.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/templates.h"
#include "fault/fault_experiment.h"

namespace rjf::core {
namespace {

std::string temp_store(const char* name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

/// Short frames (16-byte PSDU at 54 Mbps ≈ 700 fabric samples) and short
/// noise flanks keep even the 10^5-trial acceptance grid tractable.
CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.jammer.detection = DetectionMode::kCrossCorrelator;
  spec.jammer.xcorr_template = wifi_long_preamble_template();
  spec.jammer.xcorr_threshold = 9000;
  spec.tap = DetectorTap::kXcorr;
  spec.psdu_bytes = 16;
  spec.base.lead_in = 64;
  spec.base.tail = 64;
  spec.seed = 0xCA4;
  spec.grid.snrs_db = {0.0, 6.0};
  spec.grid.trials_per_point = 48;
  spec.shard_trials = 16;
  spec.threads = 1;
  return spec;
}

TEST(CampaignGrid, CoordsAndPointOfRoundTrip) {
  CampaignGrid grid;
  grid.rate_indices = {0, 7};  // wifi_ofdm: 6 and 54 Mb/s
  grid.fault_scales = {0.0, 1.0, 2.0};
  grid.snrs_db = {-4.0, 0.0, 4.0, 8.0};
  ASSERT_EQ(grid.num_points(), 24u);
  for (std::size_t p = 0; p < grid.num_points(); ++p) {
    const auto c = grid.coords(p);
    EXPECT_LT(c.rate_index, grid.rate_indices.size());
    EXPECT_LT(c.scale_index, grid.fault_scales.size());
    EXPECT_LT(c.snr_index, grid.snrs_db.size());
    EXPECT_EQ(grid.point_of(c), p);
  }
  // Rate-major, SNR fastest: point 0..3 walk the SNR axis of (rate 0,
  // scale 0), point 4 starts (rate 0, scale 1).
  EXPECT_EQ(grid.coords(3).snr_index, 3u);
  EXPECT_EQ(grid.coords(4).scale_index, 1u);
  EXPECT_EQ(grid.coords(12).rate_index, 1u);
  EXPECT_EQ(grid.total_trials(), 24u * 1000u);
}

TEST(ShardStore, RecordsRoundTripThroughCreateAppendLoad) {
  const std::string path = temp_store("rjf_store_roundtrip.rjfc");
  ShardStoreHeader header;
  header.fingerprint = 0xF00D;
  header.campaign_seed = 7;
  header.num_points = 3;
  header.trials_per_point = 100;
  header.shard_trials = 25;
  header.num_shards = 12;
  {
    auto store = ShardStore::create(path, header);
    ASSERT_NE(store, nullptr);
    for (std::uint64_t i = 0; i < 5; ++i) {
      ShardRecord r;
      r.point = i % 3;
      r.shard_index = i;
      r.first_trial = 25 * (i / 3);
      r.trials = 25;
      r.frames_detected = 20 + i;
      r.total_detections = 40 + i;
      r.faults_injected = i;
      r.trigger_latency_sum = 1000 * i;
      r.trigger_latency_count = 20 + i;
      ASSERT_TRUE(store->append(r));
    }
  }
  const auto loaded = ShardStore::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->header.fingerprint, 0xF00Du);
  EXPECT_EQ(loaded->header.campaign_seed, 7u);
  EXPECT_EQ(loaded->header.num_points, 3u);
  EXPECT_EQ(loaded->header.trials_per_point, 100u);
  EXPECT_EQ(loaded->header.shard_trials, 25u);
  EXPECT_EQ(loaded->header.num_shards, 12u);
  EXPECT_EQ(loaded->dropped_bytes, 0u);
  ASSERT_EQ(loaded->records.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    const ShardRecord& r = loaded->records[i];
    EXPECT_EQ(r.shard_index, i);
    EXPECT_EQ(r.frames_detected, 20 + i);
    EXPECT_EQ(r.total_detections, 40 + i);
    EXPECT_EQ(r.checksum, r.compute_checksum());
  }
  std::remove(path.c_str());
}

TEST(ShardStore, TornTrailingRecordIsDroppedNotFatal) {
  const std::string path = temp_store("rjf_store_torn.rjfc");
  ShardStoreHeader header;
  header.num_shards = 4;
  {
    auto store = ShardStore::create(path, header);
    ASSERT_NE(store, nullptr);
    ShardRecord a;
    a.shard_index = 0;
    a.trials = 10;
    ShardRecord b;
    b.shard_index = 1;
    b.trials = 10;
    ASSERT_TRUE(store->append(a));
    ASSERT_TRUE(store->append(b));
  }
  // Simulate a SIGKILL mid-append: chop the second record in half.
  const std::uintmax_t full = std::filesystem::file_size(path);
  const std::uintmax_t record_bytes =
      ShardRecord::kWords * sizeof(std::uint64_t);
  std::filesystem::resize_file(path, full - record_bytes / 2);

  const auto loaded = ShardStore::load(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->records.size(), 1u);
  EXPECT_EQ(loaded->records[0].shard_index, 0u);
  EXPECT_EQ(loaded->dropped_bytes, record_bytes / 2);
  std::remove(path.c_str());
}

TEST(ShardStore, CorruptRecordInvalidatesItselfAndEverythingAfter) {
  const std::string path = temp_store("rjf_store_corrupt.rjfc");
  ShardStoreHeader header;
  header.num_shards = 4;
  {
    auto store = ShardStore::create(path, header);
    ASSERT_NE(store, nullptr);
    for (std::uint64_t i = 0; i < 3; ++i) {
      ShardRecord r;
      r.shard_index = i;
      r.trials = 10;
      ASSERT_TRUE(store->append(r));
    }
  }
  // Flip one byte inside the SECOND record's payload.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    const std::streamoff header_bytes = 8 * sizeof(std::uint64_t);
    const std::streamoff record_bytes =
        ShardRecord::kWords * sizeof(std::uint64_t);
    f.seekp(header_bytes + record_bytes + 3 * sizeof(std::uint64_t));
    const char junk = 0x5A;
    f.write(&junk, 1);
  }
  const auto loaded = ShardStore::load(path);
  ASSERT_TRUE(loaded.has_value());
  // Only the record before the corruption survives; the checksum rejects
  // the damaged one and nothing after it is trusted.
  ASSERT_EQ(loaded->records.size(), 1u);
  EXPECT_EQ(loaded->records[0].shard_index, 0u);
  EXPECT_GT(loaded->dropped_bytes, 0u);
  std::remove(path.c_str());
}

TEST(Campaign, MismatchedStoreIsRejectedNotMerged) {
  const std::string path = temp_store("rjf_campaign_mismatch.rjfc");
  CampaignSpec spec = small_spec();
  spec.max_shards_this_run = 1;
  (void)run_campaign(spec, path);

  CampaignSpec other = small_spec();
  other.seed = spec.seed + 1;  // different campaign identity
  EXPECT_THROW((void)run_campaign(other, path), std::runtime_error);

  other = small_spec();
  other.grid.snrs_db.push_back(12.0);  // different grid
  EXPECT_THROW((void)run_campaign(other, path), std::runtime_error);

  other = small_spec();
  other.jammer.xcorr_threshold = 12345;  // retuned detector
  EXPECT_THROW((void)run_campaign(other, path), std::runtime_error);
  std::remove(path.c_str());
}

// The headline guarantee. One uninterrupted single-thread run is the
// reference; each variant runs a window of shards (the deterministic kill
// switch), "dies", and resumes with a DIFFERENT thread count — the merged
// CSV must match the reference byte for byte. Shard granularity varies
// per variant too, so the split itself is proven irrelevant.
TEST(Campaign, KilledAndResumedRunsAreByteIdenticalToUninterrupted) {
  CampaignSpec reference_spec = small_spec();
  const std::string ref_path = temp_store("rjf_campaign_ref.rjfc");
  const CampaignReport reference = run_campaign(reference_spec, ref_path);
  EXPECT_TRUE(reference.complete);
  EXPECT_EQ(reference.trials_replayed, 0u);
  const std::string golden = reference.to_csv();
  std::remove(ref_path.c_str());

  struct Variant {
    unsigned threads_a, threads_b;
    std::size_t shard_trials;
    std::size_t kill_after;
  };
  for (const auto [threads_a, threads_b, shard_trials, kill_after] :
       {Variant{1, 2, 16, 3}, Variant{2, 4, 7, 5}, Variant{4, 1, 32, 1}}) {
    const std::string path = temp_store("rjf_campaign_resume.rjfc");
    CampaignSpec spec = small_spec();
    spec.shard_trials = shard_trials;

    spec.threads = threads_a;
    spec.max_shards_this_run = kill_after;
    const CampaignReport partial = run_campaign(spec, path);
    EXPECT_FALSE(partial.complete);
    EXPECT_EQ(partial.shards_run, kill_after);

    spec.threads = threads_b;
    spec.max_shards_this_run = 0;
    const CampaignReport resumed = run_campaign(spec, path);
    EXPECT_TRUE(resumed.complete);
    EXPECT_EQ(resumed.shards_already_complete, kill_after);
    EXPECT_EQ(resumed.trials_replayed, 0u)
        << "resume re-ran shards that were already durable";
    EXPECT_EQ(resumed.to_csv(), golden)
        << "shard=" << shard_trials << " threads=" << threads_a << "->"
        << threads_b;
    std::remove(path.c_str());
  }
}

// Resume must not pay point-preparation costs for finished points: with one
// shard per point, a run that completed point 0 leaves exactly point 1's
// plan to build on resume.
TEST(Campaign, ResumePreparesOnlyOutstandingPoints) {
  const std::string path = temp_store("rjf_campaign_lazy.rjfc");
  CampaignSpec spec = small_spec();
  spec.shard_trials = spec.grid.trials_per_point;  // 1 shard per point
  spec.max_shards_this_run = 1;

  const CampaignReport first = run_campaign(spec, path);
  EXPECT_EQ(first.plans_built, 1u);
  EXPECT_EQ(first.shards_run, 1u);
  EXPECT_EQ(first.points[0].trials_done, spec.grid.trials_per_point);
  EXPECT_EQ(first.points[1].trials_done, 0u);

  spec.max_shards_this_run = 0;
  const CampaignReport second = run_campaign(spec, path);
  EXPECT_TRUE(second.complete);
  EXPECT_EQ(second.plans_built, 1u)
      << "resume rebuilt plans for already-completed points";
  EXPECT_EQ(second.points[0].trials_done, spec.grid.trials_per_point);
  EXPECT_EQ(second.points[1].trials_done, spec.grid.trials_per_point);
  std::remove(path.c_str());
}

// Fault axis: the scale-0.0 row of a hooked campaign must be byte-for-byte
// the row a hookless campaign produces (zero-fault inertness), while a
// heavy scale visibly injects.
TEST(Campaign, FaultAxisZeroScaleRowIsInertAndHeavyScaleInjects) {
  CampaignSpec clean = small_spec();
  clean.grid.snrs_db = {3.0};
  const std::string clean_path = temp_store("rjf_campaign_clean.rjfc");
  const CampaignReport clean_report = run_campaign(clean, clean_path);
  std::remove(clean_path.c_str());

  CampaignSpec hooked = small_spec();
  hooked.grid.snrs_db = {3.0};
  hooked.grid.fault_scales = {0.0, 8.0};
  fault::FaultPlanConfig fault_base;
  fault_base.seed = 0xFA;
  fault_base.clip_rate = 2e-4;
  fault_base.drop_rate = 2e-4;
  fault_base.overflow_rate = 2e-4;
  hooked.make_trial_hook =
      fault::campaign_fault_hook_factory(hooked.grid, fault_base);
  const std::string hooked_path = temp_store("rjf_campaign_fault.rjfc");
  const CampaignReport hooked_report = run_campaign(hooked, hooked_path);
  std::remove(hooked_path.c_str());

  ASSERT_EQ(hooked_report.points.size(), 2u);
  const CampaignPointResult& zero = hooked_report.points[0];
  const CampaignPointResult& heavy = hooked_report.points[1];
  EXPECT_EQ(zero.faults_injected, 0u);
  EXPECT_EQ(zero.result.frames_detected,
            clean_report.points[0].result.frames_detected);
  EXPECT_EQ(zero.result.total_detections,
            clean_report.points[0].result.total_detections);
  EXPECT_GT(heavy.faults_injected, 0u);
  EXPECT_GT(heavy.overflow_gaps + heavy.samples_lost, 0u);
}

// Acceptance grid: >= 10^5 trials, killed mid-run, resumed, byte-compared
// to the uninterrupted run. Deliberately outside the "Campaign." prefix the
// sanitizer jobs filter on — at TSan's slowdown this would dominate the CI
// wall clock without adding coverage beyond the small variants above.
TEST(BigGridResume, HundredThousandTrialKillResumeByteIdentical) {
  CampaignSpec spec = small_spec();
  spec.grid.snrs_db = {-2.0, 2.0};
  spec.grid.trials_per_point = 50000;  // 10^5 total
  spec.shard_trials = 0;               // adaptive granularity
  spec.threads = 2;

  const std::string full_path = temp_store("rjf_campaign_full.rjfc");
  const CampaignReport full = run_campaign(spec, full_path);
  EXPECT_TRUE(full.complete);
  std::remove(full_path.c_str());

  const std::string path = temp_store("rjf_campaign_bigresume.rjfc");
  CampaignSpec windowed = spec;
  windowed.threads = 4;
  windowed.max_shards_this_run = 13;  // "killed" mid-grid
  const CampaignReport partial = run_campaign(windowed, path);
  EXPECT_FALSE(partial.complete);

  windowed.threads = 2;
  windowed.max_shards_this_run = 0;
  const CampaignReport resumed = run_campaign(windowed, path);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.trials_replayed, 0u);
  EXPECT_EQ(resumed.to_csv(), full.to_csv());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rjf::core
