// Fault-injection subsystem tests: plan determinism, the zero-fault
// inertness contract, overflow-gap VITA accounting, settings-bus
// drop/retry recovery, and thread/shard independence of faulted sweeps.
#include "fault/fault_experiment.h"

#include <gtest/gtest.h>

#include "core/calibration.h"
#include "core/templates.h"
#include "core/fabric_units.h"
#include "dsp/noise.h"
#include "dsp/rng.h"
#include "obs/telemetry.h"
#include "phy80211/transmitter.h"
#include "radio/fault_hooks.h"
#include "radio/usrp_n210.h"

namespace rjf::fault {
namespace {

dsp::cvec random_code(std::uint64_t seed) {
  dsp::cvec code(fpga::kCorrelatorLength);
  dsp::Xoshiro256 rng(seed);
  for (auto& s : code)
    s = dsp::cfloat{rng.uniform() < 0.5 ? -0.5f : 0.5f,
                    rng.uniform() < 0.5 ? -0.5f : 0.5f};
  return code;
}

void program_for_code(radio::UsrpN210& radio, const dsp::cvec& code,
                      std::uint32_t uptime) {
  const auto tpl = core::make_template(code);
  fpga::RegisterFile staged;
  fpga::program_template(staged, tpl);
  for (std::size_t r = 0; r < 16; ++r)
    radio.write_register_now(static_cast<fpga::Reg>(r),
                             staged.read(static_cast<fpga::Reg>(r)));
  fpga::CrossCorrelator probe;
  probe.set_coefficients(tpl.coef_i, tpl.coef_q);
  std::uint32_t peak = 0;
  for (const auto s : code)
    peak = std::max(peak, probe.step(dsp::to_iq16(s)).metric);
  radio.write_register_now(fpga::Reg::kXcorrThreshold, peak / 2);
  staged.set_trigger_stages(fpga::kEventXcorr, 0, 0);
  radio.write_register_now(fpga::Reg::kTriggerConfig,
                           staged.read(fpga::Reg::kTriggerConfig));
  radio.write_register_now(fpga::Reg::kTriggerWindow, 0);
  staged.set_jammer(fpga::JamWaveform::kWhiteNoise, true, 0);
  radio.write_register_now(fpga::Reg::kJammerControl,
                           staged.read(fpga::Reg::kJammerControl));
  radio.write_register_now(fpga::Reg::kJamDuration, uptime);
}

FaultPlanConfig busy_config(std::uint64_t seed) {
  FaultPlanConfig cfg;
  cfg.seed = seed;
  cfg.horizon_samples = 1 << 16;
  cfg.clip_rate = 1e-3;
  cfg.dc_rate = 1e-3;
  cfg.drop_rate = 1e-3;
  cfg.overflow_rate = 5e-4;
  cfg.gain_glitch_rate = 5e-4;
  cfg.tune_glitch_rate = 5e-4;
  return cfg;
}

TEST(FaultPlan, GenerationIsPure) {
  const FaultPlanConfig cfg = busy_config(0x11);
  const FaultPlan a = FaultPlan::generate(cfg);
  const FaultPlan b = FaultPlan::generate(cfg);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t k = 0; k < a.events().size(); ++k) {
    EXPECT_EQ(a.events()[k].at_sample, b.events()[k].at_sample);
    EXPECT_EQ(a.events()[k].length, b.events()[k].length);
    EXPECT_EQ(a.events()[k].kind, b.events()[k].kind);
    EXPECT_EQ(a.events()[k].magnitude, b.events()[k].magnitude);
  }
}

TEST(FaultPlan, EventsSortedAndWithinHorizon) {
  const FaultPlan plan = FaultPlan::generate(busy_config(0x22));
  ASSERT_FALSE(plan.empty());
  const auto& events = plan.events();
  for (std::size_t k = 0; k < events.size(); ++k) {
    if (k > 0) {
      EXPECT_GE(events[k].at_sample, events[k - 1].at_sample);
    }
    EXPECT_LE(events[k].at_sample + events[k].length,
              plan.config().horizon_samples);
    EXPECT_GE(events[k].length, 1u);
    EXPECT_LE(events[k].length, plan.max_run());
  }
}

TEST(FaultPlan, KindStreamsAreIndependent) {
  // Zeroing one kind's rate must not perturb another kind's schedule: each
  // kind draws from its own derive_seed(seed, kind) substream.
  FaultPlanConfig with_all = busy_config(0x33);
  FaultPlanConfig clip_only = with_all;
  clip_only.dc_rate = clip_only.drop_rate = clip_only.overflow_rate = 0.0;
  clip_only.gain_glitch_rate = clip_only.tune_glitch_rate = 0.0;

  const FaultPlan a = FaultPlan::generate(with_all);
  const FaultPlan b = FaultPlan::generate(clip_only);
  std::vector<std::uint64_t> clips_a;
  std::vector<std::uint64_t> clips_b;
  for (const FaultEvent& ev : a.events())
    if (ev.kind == FaultKind::kAdcClip) clips_a.push_back(ev.at_sample);
  for (const FaultEvent& ev : b.events())
    if (ev.kind == FaultKind::kAdcClip) clips_b.push_back(ev.at_sample);
  ASSERT_FALSE(clips_a.empty());
  EXPECT_EQ(clips_a, clips_b);
}

TEST(FaultPlan, ScaleZeroIsEmpty) {
  const FaultPlan plan = FaultPlan::generate(busy_config(0x44).scaled(0.0));
  EXPECT_TRUE(plan.empty());
  for (std::size_t k = 0; k < kNumFaultKinds; ++k)
    EXPECT_EQ(plan.count(static_cast<FaultKind>(k)), 0u);
}

// The inertness contract: an attached injector whose plan is empty must be
// indistinguishable from no injector — same StreamResult (tx waveform,
// bursts, counts) and byte-identical telemetry trace.
TEST(FaultInjector, ZeroFaultPlanIsInert) {
  const auto code = random_code(0xAB);
  dsp::cvec rx = dsp::make_wgn(2048, 1e-4, 99);
  for (std::size_t k = 0; k < code.size(); ++k) rx[700 + k] += code[k];

  radio::UsrpN210 baseline;
  program_for_code(baseline, code, 32);
  obs::Telemetry tel_base;
  baseline.attach_ring(&tel_base.ring());

  radio::UsrpN210 hooked;
  program_for_code(hooked, code, 32);
  obs::Telemetry tel_hooked;
  hooked.attach_ring(&tel_hooked.ring());
  FaultPlanConfig cfg;
  cfg.horizon_samples = rx.size();  // all rates zero -> empty plan
  FaultInjector injector(FaultPlan::generate(cfg));
  hooked.attach_fault_hooks(&injector, &injector);

  const auto a = baseline.stream(rx);
  const auto b = hooked.stream(rx);

  EXPECT_EQ(a.jam_triggers, b.jam_triggers);
  EXPECT_EQ(a.xcorr_detections, b.xcorr_detections);
  EXPECT_EQ(a.energy_high_detections, b.energy_high_detections);
  EXPECT_EQ(a.energy_low_detections, b.energy_low_detections);
  EXPECT_EQ(a.last_trigger_vita, b.last_trigger_vita);
  EXPECT_EQ(b.overflow_gaps, 0u);
  EXPECT_EQ(b.samples_lost, 0u);
  EXPECT_EQ(a.adc_clipped, b.adc_clipped);
  ASSERT_EQ(a.bursts.size(), b.bursts.size());
  for (std::size_t k = 0; k < a.bursts.size(); ++k) {
    EXPECT_EQ(a.bursts[k].start_sample, b.bursts[k].start_sample);
    EXPECT_EQ(a.bursts[k].length, b.bursts[k].length);
  }
  ASSERT_EQ(a.tx.size(), b.tx.size());
  for (std::size_t k = 0; k < a.tx.size(); ++k) EXPECT_EQ(a.tx[k], b.tx[k]);

  const auto ev_a = tel_base.trace().events();
  const auto ev_b = tel_hooked.trace().events();
  ASSERT_EQ(ev_a.size(), ev_b.size());
  for (std::size_t k = 0; k < ev_a.size(); ++k) {
    EXPECT_EQ(ev_a[k].kind, ev_b[k].kind);
    EXPECT_EQ(ev_a[k].vita_ticks, ev_b[k].vita_ticks);
    EXPECT_EQ(ev_a[k].value, ev_b[k].value);
  }
  EXPECT_EQ(injector.injected_total(), 0u);
}

// Fixed-gap hook for exact-placement tests of the stream loop.
struct FixedGapHook final : radio::RxFaultHook {
  std::vector<radio::OverflowGap> gaps;
  void mutate_rx(std::span<dsp::cfloat>, std::uint64_t) override {}
  void overflow_gaps(std::uint64_t start, std::uint64_t length,
                     std::vector<radio::OverflowGap>& out) const override {
    for (const auto& g : gaps)
      if (g.start_sample < start + length &&
          g.start_sample + g.length > start)
        out.push_back(g);
  }
};

TEST(UsrpN210Fault, OverflowGapKeepsVitaExact) {
  radio::UsrpN210 radio;
  const auto code = random_code(0xEE);
  program_for_code(radio, code, 16);

  FixedGapHook hook;
  hook.gaps = {{200, 100}, {400, 50}};
  radio.attach_fault_hooks(&hook, nullptr);

  // Code placed after the gaps: the detector must still see it, and VITA
  // time must advance exactly rx.size() * 4 ticks despite the skips.
  dsp::cvec rx(1024, dsp::cfloat{});
  for (std::size_t k = 0; k < code.size(); ++k) rx[600 + k] = code[k];
  const std::uint64_t t0 = radio.now_ticks();
  const auto result = radio.stream(rx);
  EXPECT_EQ(radio.now_ticks() - t0, rx.size() * fpga::kClocksPerSample);
  EXPECT_EQ(result.overflow_gaps, 2u);
  EXPECT_EQ(result.samples_lost, 150u);
  EXPECT_EQ(result.jam_triggers, 1u);
}

TEST(UsrpN210Fault, GapStraddlingStreamCallsIsClipped) {
  radio::UsrpN210 radio;
  program_for_code(radio, random_code(0x21), 16);
  FixedGapHook hook;
  hook.gaps = {{96, 64}};  // covers samples 96..159 of the absolute stream
  radio.attach_fault_hooks(&hook, nullptr);

  const auto first = radio.stream(dsp::cvec(128, dsp::cfloat{}));
  EXPECT_EQ(first.overflow_gaps, 1u);
  EXPECT_EQ(first.samples_lost, 32u);  // 96..127
  const auto second = radio.stream(dsp::cvec(128, dsp::cfloat{}));
  EXPECT_EQ(second.overflow_gaps, 1u);
  EXPECT_EQ(second.samples_lost, 32u);  // 128..159
}

TEST(FaultInjector, ClipFaultSaturatesAdc) {
  radio::UsrpN210 radio;
  program_for_code(radio, random_code(0x55), 16);

  FaultPlanConfig cfg;
  cfg.seed = 0x66;
  cfg.horizon_samples = 4096;
  cfg.clip_rate = 2e-3;
  cfg.clip_drive = 20.0;
  FaultInjector injector(FaultPlan::generate(cfg));
  ASSERT_GT(injector.plan().count(FaultKind::kAdcClip), 0u);
  radio.attach_fault_hooks(&injector, nullptr);

  // 0.5-amplitude air: clean it never clips; the drive fault saturates.
  const auto result = radio.stream(dsp::cvec(4096, dsp::cfloat{0.5f, 0.0f}));
  EXPECT_TRUE(result.adc_clipped);
  EXPECT_EQ(injector.injected(FaultKind::kAdcClip),
            injector.plan().count(FaultKind::kAdcClip));
}

// Bus hook that drops the first `drops` writes it sees, then behaves.
struct DropFirstHook final : radio::BusFaultHook {
  unsigned drops = 0;
  unsigned seen = 0;
  WriteFault on_write(fpga::Reg, std::uint64_t) override {
    WriteFault f;
    if (seen++ < drops) f.dropped = true;
    return f;
  }
};

TEST(SettingsBusFault, DroppedWriteRetriesUntilApplied) {
  radio::SettingsBus bus(40);
  fpga::RegisterFile regs;
  DropFirstHook hook;
  hook.drops = 2;
  bus.set_fault_hook(&hook);

  bus.write(fpga::Reg::kXcorrThreshold, 777, 0);
  // First attempt completes (and is discovered dropped) at 40; retry at 80
  // is also dropped; the third attempt lands at 120.
  EXPECT_EQ(bus.service(regs, 39), 0u);
  EXPECT_EQ(bus.service(regs, 200), 1u);
  EXPECT_EQ(regs.read(fpga::Reg::kXcorrThreshold), 777u);
  EXPECT_EQ(bus.writes_dropped(), 2u);
  EXPECT_EQ(bus.writes_retried(), 2u);
  EXPECT_EQ(bus.writes_abandoned(), 0u);
  EXPECT_TRUE(bus.idle());
}

struct AlwaysDropHook final : radio::BusFaultHook {
  WriteFault on_write(fpga::Reg, std::uint64_t) override {
    WriteFault f;
    f.dropped = true;
    return f;
  }
};

TEST(SettingsBusFault, RetryBudgetBoundsAndAbandons) {
  radio::SettingsBus bus(40);
  fpga::RegisterFile regs;
  AlwaysDropHook hook;
  bus.set_fault_hook(&hook);
  bus.set_retry_limit(3);

  bus.write(fpga::Reg::kJamDuration, 1234, 0);
  EXPECT_EQ(bus.service(regs, 1'000'000), 0u);  // never applies
  EXPECT_TRUE(bus.idle());                      // ...but terminates
  EXPECT_EQ(regs.read(fpga::Reg::kJamDuration), 0u);
  EXPECT_EQ(bus.writes_dropped(), 4u);  // initial + 3 retries
  EXPECT_EQ(bus.writes_retried(), 3u);
  EXPECT_EQ(bus.writes_abandoned(), 1u);
}

struct StallHook final : radio::BusFaultHook {
  std::uint32_t extra = 0;
  WriteFault on_write(fpga::Reg, std::uint64_t) override {
    WriteFault f;
    f.extra_latency_cycles = extra;
    return f;
  }
};

TEST(SettingsBusFault, StallExtendsCompletionTime) {
  radio::SettingsBus bus(40);
  StallHook hook;
  hook.extra = 60;
  bus.set_fault_hook(&hook);
  bus.write(fpga::Reg::kEnergyFloor, 5, 100);
  EXPECT_EQ(bus.next_completion(), 200u);  // 100 + 40 + 60
}

TEST(ReactiveJammerFault, RecoveryCountersMatchInjectedFaults) {
  core::JammerConfig config;
  config.detection = core::DetectionMode::kEnergyRise;
  core::ReactiveJammer jammer(config);
  obs::Telemetry telemetry;
  jammer.attach_trace(&telemetry);

  FaultPlanConfig cfg;
  cfg.seed = 0x77;
  cfg.horizon_samples = 8192;
  cfg.overflow_rate = 1e-3;
  cfg.overflow_run = 64;
  FaultInjector injector(FaultPlan::generate(cfg));
  const std::uint64_t scheduled =
      injector.plan().count(FaultKind::kOverflowRun);
  ASSERT_GT(scheduled, 0u);
  jammer.attach_fault_hooks(&injector, &injector);

  const auto result = jammer.observe(dsp::make_wgn(8192, 1e-4, 3));
  // Every scheduled gap lies inside the streamed horizon, so schedule,
  // injector count, stream result and metrics must all agree.
  EXPECT_EQ(result.overflow_gaps, scheduled);
  EXPECT_EQ(injector.injected(FaultKind::kOverflowRun), scheduled);
  auto& metrics = telemetry.metrics();
  EXPECT_EQ(metrics.counter_value("fault.overflow_gaps"), scheduled);
  EXPECT_EQ(metrics.counter_value("fault.samples_lost"),
            result.samples_lost);
  EXPECT_EQ(metrics.counter_value("events.overflow_gap"), scheduled);
  EXPECT_EQ(metrics.counter_value("events.detector_flush"), scheduled);
  EXPECT_EQ(metrics.counter_value("fault.detector_resets"), 1u);
  EXPECT_EQ(metrics.counter_value("fault.streams_degraded"), 1u);
}

// --- Faulted sweep determinism ------------------------------------------

struct SweepFixture {
  core::JammerConfig config;
  dsp::cvec frame;
  std::vector<double> snrs{6.0, 12.0};
  std::vector<double> scales{0.0, 2.0};
  FaultPlanConfig fault_base;

  SweepFixture() {
    const auto tpl = core::wifi_long_preamble_template();
    const core::XcorrNoiseModel model(tpl);
    config.detection = core::DetectionMode::kCrossCorrelator;
    config.xcorr_template = tpl;
    config.xcorr_threshold = model.threshold_for_rate(0.52);
    std::vector<std::uint8_t> psdu(80, 0xA5);
    phy80211::Transmitter tx({phy80211::Rate::kMbps54, 0x5D});
    frame = tx.transmit(psdu);
    fault_base.seed = 0xFA57;
    fault_base.clip_rate = 2e-4;
    fault_base.drop_rate = 2e-4;
    fault_base.overflow_rate = 1e-4;
  }

  FaultSweepReport run(unsigned threads, std::size_t shard_trials) const {
    core::SweepConfig sweep;
    sweep.trials_per_point = 12;
    sweep.shard_trials = shard_trials;
    sweep.threads = threads;
    sweep.seed = 0xF457;
    core::DetectionRunConfig base;
    return run_fault_robustness_sweep(config, frame,
                                      core::DetectorTap::kXcorr, base, snrs,
                                      scales, fault_base, sweep);
  }
};

void expect_same_grid(const FaultSweepReport& a, const FaultSweepReport& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t p = 0; p < a.points.size(); ++p) {
    EXPECT_EQ(a.points[p].result.frames_detected,
              b.points[p].result.frames_detected);
    EXPECT_EQ(a.points[p].result.total_detections,
              b.points[p].result.total_detections);
    EXPECT_EQ(a.points[p].faults_injected, b.points[p].faults_injected);
    EXPECT_EQ(a.points[p].overflow_gaps, b.points[p].overflow_gaps);
    EXPECT_EQ(a.points[p].samples_lost, b.points[p].samples_lost);
    EXPECT_EQ(a.points[p].trigger_latency_count,
              b.points[p].trigger_latency_count);
  }
}

TEST(FaultSweep, ThreadCountIndependent) {
  const SweepFixture fx;
  const auto r1 = fx.run(1, 5);
  const auto r2 = fx.run(2, 5);
  const auto r4 = fx.run(4, 5);
  expect_same_grid(r1, r2);
  expect_same_grid(r1, r4);
  // The faulted rows actually injected something.
  std::uint64_t injected = 0;
  for (const auto& p : r1.points) injected += p.faults_injected;
  EXPECT_GT(injected, 0u);
}

TEST(FaultSweep, ShardSizeIndependent) {
  const SweepFixture fx;
  const auto a = fx.run(2, 5);
  const auto b = fx.run(2, 3);
  const auto c = fx.run(1, 12);
  expect_same_grid(a, b);
  expect_same_grid(a, c);
}

TEST(FaultSweep, ZeroFaultRowMatchesCleanSweep) {
  const SweepFixture fx;
  const auto faulted = fx.run(2, 5);

  core::SweepConfig sweep;
  sweep.trials_per_point = 12;
  sweep.shard_trials = 5;
  sweep.threads = 2;
  sweep.seed = 0xF457;
  core::DetectionRunConfig base;
  const auto clean = core::run_detection_sweep(
      fx.config, fx.frame, core::DetectorTap::kXcorr, base, fx.snrs, sweep);

  for (std::size_t k = 0; k < fx.snrs.size(); ++k) {
    const auto& zero_row = faulted.at(0, k, fx.snrs.size());
    EXPECT_EQ(zero_row.faults_injected, 0u);
    EXPECT_EQ(zero_row.overflow_gaps, 0u);
    EXPECT_EQ(zero_row.result.frames_detected,
              clean.points[k].result.frames_detected);
    EXPECT_EQ(zero_row.result.total_detections,
              clean.points[k].result.total_detections);
  }
}

}  // namespace
}  // namespace rjf::fault
