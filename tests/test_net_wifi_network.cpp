// Integration tests of the full jammed-network simulation (the Figs. 10-11
// rig). Durations are kept short; the bench binaries run the full sweeps.
#include "net/wifi_network.h"

#include <gtest/gtest.h>

#include "core/presets.h"

namespace rjf::net {
namespace {

WifiNetworkConfig base_config(double duration_s = 0.05) {
  WifiNetworkConfig config;
  config.iperf.duration_s = duration_s;
  config.seed = 42;
  return config;
}

TEST(WifiNetwork, BaselineThroughputNearPaperCeiling) {
  // Paper: "the maximum achieved UDP bandwidth ... was around 29 Mbps".
  WifiNetworkSim sim(base_config(0.1));
  const auto r = sim.run();
  const double mbps = r.report.bandwidth_kbps(1470) / 1e3;
  EXPECT_GT(mbps, 26.0);
  EXPECT_LT(mbps, 36.0);
  EXPECT_NEAR(r.report.prr_percent(), 100.0, 0.5);
  EXPECT_EQ(r.retries, 0u);
}

TEST(WifiNetwork, NominalSirMatchesLossBudget) {
  auto config = base_config();
  config.jammer = core::continuous_preset();
  config.jammer_tx_power = 1e-4;
  WifiNetworkSim sim(config);
  // SIR = (P_c / 10^5.1) / (P_j / 10^3.84) = -12.6 dB - 10log10(P_j).
  EXPECT_NEAR(sim.nominal_sir_db(), -12.6 + 40.0, 0.01);
}

TEST(WifiNetwork, ContinuousJammerStarvesViaCarrierSense) {
  auto config = base_config();
  config.jammer = core::continuous_preset();
  config.jammer_tx_power = 1e-3;  // far above the CCA threshold at port 2
  WifiNetworkSim sim(config);
  const auto r = sim.run();
  EXPECT_GT(r.cca_busy_defers, 0u);
  EXPECT_LT(r.report.bandwidth_kbps(1470), 1000.0);
}

TEST(WifiNetwork, ContinuousJammerHarmlessAtVeryLowPower) {
  auto config = base_config();
  config.jammer = core::continuous_preset();
  config.jammer_tx_power = 1e-7;  // ~57 dB SIR
  WifiNetworkSim sim(config);
  const auto r = sim.run();
  EXPECT_GT(r.report.bandwidth_kbps(1470) / 1e3, 25.0);
  EXPECT_NEAR(r.report.prr_percent(), 100.0, 1.0);
}

TEST(WifiNetwork, ReactiveJammerInvisibleToCarrierSense) {
  // The paper's stealth point: reactive bursts don't hold the medium busy.
  auto config = base_config();
  config.jammer = core::energy_reactive_preset(1e-4, 10.0);
  config.jammer_tx_power = 1e-3;
  WifiNetworkSim sim(config);
  const auto r = sim.run();
  EXPECT_EQ(r.cca_starved_drops, 0u);
  EXPECT_GT(r.jam_triggers, 0u);
}

TEST(WifiNetwork, ReactiveJammerKillsLinkAtHighPower) {
  auto config = base_config();
  config.jammer = core::energy_reactive_preset(1e-4, 10.0);
  config.jammer_tx_power = 0.2;  // SIR ~ -19.6 dB
  WifiNetworkSim sim(config);
  const auto r = sim.run();
  EXPECT_EQ(r.report.datagrams_received, 0u);
  EXPECT_EQ(r.report.prr_percent(), 0.0);
}

TEST(WifiNetwork, ShorterUptimeNeedsMorePower) {
  // At equal, moderate jam power the 0.1 ms jammer must do at least as
  // much damage as the 0.01 ms jammer (Fig. 10's central ordering).
  const double power = 3e-3;
  double bw_long = 0.0, bw_short = 0.0;
  {
    auto config = base_config();
    config.jammer = core::energy_reactive_preset(1e-4, 10.0);
    config.jammer_tx_power = power;
    bw_long = WifiNetworkSim(config).run().report.bandwidth_kbps(1470);
  }
  {
    auto config = base_config();
    config.jammer = core::energy_reactive_preset(1e-5, 10.0);
    config.jammer_tx_power = power;
    bw_short = WifiNetworkSim(config).run().report.bandwidth_kbps(1470);
  }
  EXPECT_LE(bw_long, bw_short + 2000.0);
}

TEST(WifiNetwork, MeasuredSirTracksNominal) {
  auto config = base_config();
  config.jammer = core::energy_reactive_preset(1e-4, 10.0);
  config.jammer_tx_power = 1e-3;
  WifiNetworkSim sim(config);
  const auto r = sim.run();
  EXPECT_NEAR(r.measured_sir_db, sim.nominal_sir_db(), 2.0);
}

TEST(WifiNetwork, ArfFallsBackUnderJamming) {
  auto config = base_config(0.08);
  config.jammer = core::energy_reactive_preset(1e-4, 10.0);
  config.jammer_tx_power = 1e-2;
  WifiNetworkSim sim(config);
  const auto r = sim.run();
  EXPECT_LT(r.mean_tx_rate_mbps, 54.0);
  EXPECT_GT(r.retries, 0u);
}

}  // namespace
}  // namespace rjf::net
