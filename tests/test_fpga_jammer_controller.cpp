#include "fpga/jammer_controller.h"

#include <gtest/gtest.h>

namespace rjf::fpga {
namespace {

TEST(JammerController, IdleUntilTriggered) {
  JammerController ctl;
  ctl.configure(JamWaveform::kWhiteNoise, true, 0, 10);
  for (int k = 0; k < 100; ++k) {
    const auto out = ctl.clock(false);
    ASSERT_FALSE(out.rf_active);
  }
  EXPECT_EQ(ctl.jam_count(), 0u);
}

TEST(JammerController, DisabledIgnoresTriggers) {
  JammerController ctl;
  ctl.configure(JamWaveform::kWhiteNoise, false, 0, 10);
  const auto out = ctl.clock(true);
  EXPECT_FALSE(out.rf_active);
  for (int k = 0; k < 100; ++k) ASSERT_FALSE(ctl.clock(false).rf_active);
  EXPECT_EQ(ctl.jam_count(), 0u);
}

TEST(JammerController, RfWithinEightCyclesOfTrigger) {
  // Paper §2.4: 1 cycle to initiate + ~7 cycles to fill the DUC = 80 ns.
  JammerController ctl;
  ctl.configure(JamWaveform::kWhiteNoise, true, 0, 4);
  (void)ctl.clock(true);  // trigger cycle
  int cycles_to_rf = 1;
  bool active = false;
  for (; cycles_to_rf <= 16; ++cycles_to_rf) {
    if (ctl.clock(false).rf_active) {
      active = true;
      break;
    }
  }
  EXPECT_TRUE(active);
  EXPECT_EQ(cycles_to_rf, static_cast<int>(kTxInitCycles));
}

TEST(JammerController, UptimeCountsExactSamples) {
  JammerController ctl;
  const std::uint32_t uptime = 25;
  ctl.configure(JamWaveform::kWhiteNoise, true, 0, uptime);
  (void)ctl.clock(true);
  std::uint32_t strobes = 0;
  for (int k = 0; k < 4000; ++k)
    if (ctl.clock(false).sample_strobe) ++strobes;
  EXPECT_EQ(strobes, uptime);
  EXPECT_FALSE(ctl.busy());
}

TEST(JammerController, MinimumUptimeIsOneSample) {
  // Paper: jamming duration from 1 sample time (40 ns).
  JammerController ctl;
  ctl.configure(JamWaveform::kWhiteNoise, true, 0, 0);  // clamped to 1
  (void)ctl.clock(true);
  std::uint32_t strobes = 0;
  for (int k = 0; k < 100; ++k)
    if (ctl.clock(false).sample_strobe) ++strobes;
  EXPECT_EQ(strobes, 1u);
}

TEST(JammerController, DelayPostponesJamming) {
  JammerController ctl;
  const std::uint32_t delay_samples = 10;
  ctl.configure(JamWaveform::kWhiteNoise, true, delay_samples, 4);
  (void)ctl.clock(true);
  int cycles = 1;
  while (!ctl.clock(false).rf_active && cycles < 1000) ++cycles;
  // Delay (in sample periods) plus the 8-cycle TX init.
  EXPECT_EQ(cycles,
            static_cast<int>(delay_samples * kClocksPerSample + kTxInitCycles));
}

TEST(JammerController, TriggersIgnoredWhileBusy) {
  JammerController ctl;
  ctl.configure(JamWaveform::kWhiteNoise, true, 0, 100);
  (void)ctl.clock(true);
  for (int k = 0; k < 50; ++k) (void)ctl.clock(true);  // re-trigger attempts
  EXPECT_EQ(ctl.jam_count(), 1u);
}

TEST(JammerController, ReplayPlaysBackRecordedSamples) {
  JammerController ctl;
  ctl.configure(JamWaveform::kReplay, true, 0, 8);
  // Record a recognisable ramp.
  for (std::int16_t k = 0; k < 512; ++k)
    ctl.record_rx(dsp::IQ16{k, static_cast<std::int16_t>(-k)});
  (void)ctl.clock(true);
  std::vector<dsp::IQ16> played;
  for (int k = 0; k < 200 && played.size() < 8; ++k) {
    const auto out = ctl.clock(false);
    if (out.sample_strobe) played.push_back(out.sample);
  }
  ASSERT_EQ(played.size(), 8u);
  // Playback starts at the oldest recorded sample (write cursor position).
  for (std::size_t k = 0; k < played.size(); ++k) {
    EXPECT_EQ(played[k].i, static_cast<std::int16_t>(k));
    EXPECT_EQ(played[k].q, static_cast<std::int16_t>(-static_cast<int>(k)));
  }
}

TEST(JammerController, HostStreamWaveformCycles) {
  JammerController ctl;
  ctl.configure(JamWaveform::kHostStream, true, 0, 6);
  ctl.set_host_waveform({dsp::IQ16{100, 0}, dsp::IQ16{0, 100}, dsp::IQ16{-100, 0}});
  (void)ctl.clock(true);
  std::vector<dsp::IQ16> played;
  for (int k = 0; k < 200 && played.size() < 6; ++k) {
    const auto out = ctl.clock(false);
    if (out.sample_strobe) played.push_back(out.sample);
  }
  ASSERT_EQ(played.size(), 6u);
  EXPECT_EQ(played[0], (dsp::IQ16{100, 0}));
  EXPECT_EQ(played[3], (dsp::IQ16{100, 0}));  // wrapped around
}

TEST(JammerController, EmptyHostStreamEmitsSilence) {
  JammerController ctl;
  ctl.configure(JamWaveform::kHostStream, true, 0, 3);
  (void)ctl.clock(true);
  for (int k = 0; k < 100; ++k) {
    const auto out = ctl.clock(false);
    if (out.sample_strobe) {
      EXPECT_EQ(out.sample, (dsp::IQ16{0, 0}));
    }
  }
}

TEST(JammerController, WhiteNoiseIsNonConstantAndBounded) {
  JammerController ctl;
  ctl.configure(JamWaveform::kWhiteNoise, true, 0, 256);
  (void)ctl.clock(true);
  std::vector<dsp::IQ16> samples;
  for (int k = 0; k < 4000 && samples.size() < 256; ++k) {
    const auto out = ctl.clock(false);
    if (out.sample_strobe) samples.push_back(out.sample);
  }
  ASSERT_EQ(samples.size(), 256u);
  bool varies = false;
  for (std::size_t k = 1; k < samples.size(); ++k)
    varies |= !(samples[k] == samples[0]);
  EXPECT_TRUE(varies);
  for (const auto s : samples) {
    EXPECT_LT(std::abs(static_cast<int>(s.i)), 32768);
    EXPECT_LT(std::abs(static_cast<int>(s.q)), 32768);
  }
}

TEST(JammerController, FastForwardMatchesClockedUptime) {
  // fast_forward must land in the same state as explicit clocking.
  JammerController a, b;
  for (auto* ctl : {&a, &b})
    ctl->configure(JamWaveform::kWhiteNoise, true, 5, 50);
  (void)a.clock(true);
  (void)b.clock(true);

  // a: clocked for 30 sample periods; b: fast-forwarded the same span.
  for (std::uint32_t k = 0; k < 30 * kClocksPerSample; ++k) (void)a.clock(false);
  b.fast_forward(30);
  EXPECT_EQ(a.busy(), b.busy());

  // Continue both to completion and compare total jam extent.
  for (std::uint32_t k = 0; k < 200 * kClocksPerSample; ++k) (void)a.clock(false);
  b.fast_forward(200);
  EXPECT_FALSE(a.busy());
  EXPECT_FALSE(b.busy());
}

TEST(JammerController, FastForwardThroughIdleIsNoop) {
  JammerController ctl;
  ctl.configure(JamWaveform::kWhiteNoise, true, 0, 10);
  ctl.fast_forward(100000);
  EXPECT_FALSE(ctl.busy());
  EXPECT_EQ(ctl.jam_count(), 0u);
}

TEST(JammerController, LoadFromRegisters) {
  RegisterFile regs;
  regs.set_jammer(JamWaveform::kReplay, true, 7);
  regs.write(Reg::kJamDuration, 123);
  JammerController ctl;
  ctl.load_from_registers(regs);
  (void)ctl.clock(true);
  EXPECT_TRUE(ctl.busy());
  EXPECT_EQ(ctl.jam_count(), 1u);
}

}  // namespace
}  // namespace rjf::fpga
