#include <gtest/gtest.h>

#include "core/calibration.h"
#include "core/templates.h"
#include "dsp/resampler.h"
#include "fpga/dsp_core.h"
#include "phy80211/preamble.h"

namespace rjf::core {
namespace {

TEST(Templates, WifiTemplatesNonTrivial) {
  for (const auto& tpl :
       {wifi_long_preamble_template(), wifi_short_preamble_template()}) {
    int nonzero = 0;
    int at_limit = 0;
    for (std::size_t k = 0; k < fpga::kCorrelatorLength; ++k) {
      EXPECT_GE(tpl.coef_i[k], -4);
      EXPECT_LE(tpl.coef_i[k], 3);
      nonzero += (tpl.coef_i[k] != 0) + (tpl.coef_q[k] != 0);
      at_limit += (std::abs(tpl.coef_i[k]) == 3) + (std::abs(tpl.coef_q[k]) == 3);
    }
    EXPECT_GT(nonzero, 40);   // the template really uses its taps
    EXPECT_GT(at_limit, 0);   // scaling reaches the 3-bit limit
  }
}

TEST(Templates, WimaxTemplateDependsOnCellAndSegment) {
  const auto a = wimax_preamble_template(1, 0);
  const auto b = wimax_preamble_template(1, 1);
  const auto c = wimax_preamble_template(2, 0);
  EXPECT_NE(a.coef_i, b.coef_i);
  EXPECT_NE(a.coef_i, c.coef_i);
  // Deterministic.
  const auto a2 = wimax_preamble_template(1, 0);
  EXPECT_EQ(a.coef_i, a2.coef_i);
  EXPECT_EQ(a.coef_q, a2.coef_q);
}

TEST(Templates, ResampledTemplateMatchesFabricRateSignal) {
  // The resample-aware template must out-correlate the naive native-rate
  // template against a 25 MSPS version of the WiFi long preamble — the
  // core of the paper's sampling-mismatch discussion.
  dsp::cvec lts2 = phy80211::long_training_symbol();
  {
    const dsp::cvec copy = lts2;
    lts2.insert(lts2.end(), copy.begin(), copy.end());
  }
  const auto aware = template_from_waveform(lts2, 20e6, true);
  const auto naive = template_from_waveform(lts2, 20e6, false);

  const dsp::cvec sig25 = dsp::resample(lts2, 20e6, 25e6);
  const auto peak_for = [&](const fpga::CorrelatorTemplate& tpl) {
    fpga::CrossCorrelator corr;
    corr.set_coefficients(tpl.coef_i, tpl.coef_q);
    std::uint32_t peak = 0;
    for (const auto s : sig25)
      peak = std::max(peak, corr.step(dsp::to_iq16(s * 0.5f)).metric);
    return peak;
  };
  EXPECT_GT(peak_for(aware), 3 * peak_for(naive));
}

TEST(Calibration, ExceedanceProbabilityMonotone) {
  const XcorrNoiseModel model(wifi_long_preamble_template());
  double prev = 1.0;
  for (std::uint32_t t = 0; t < 20000; t += 500) {
    const double p = model.exceedance_probability(t);
    EXPECT_LE(p, prev);
    EXPECT_GE(p, 0.0);
    prev = p;
  }
  // P(metric > 0) = 1 - P(metric == 0); a small point mass at zero exists.
  EXPECT_GT(model.exceedance_probability(0), 0.99);
  EXPECT_EQ(model.exceedance_probability(0xFFFFFFFFu), 0.0);
}

TEST(Calibration, ThresholdForRateIsConsistent) {
  const XcorrNoiseModel model(wifi_short_preamble_template());
  for (const double target : {0.52, 0.083, 0.059}) {
    const std::uint32_t threshold = model.threshold_for_rate(target);
    EXPECT_LE(model.false_alarm_rate_per_s(threshold), target);
    // One distribution step below the returned threshold the rate
    // exceeds the target (tightness) — check via a slightly lower value.
    if (threshold > 500) {
      EXPECT_GT(model.false_alarm_rate_per_s(threshold - 500), target * 0.8);
    }
  }
}

TEST(Calibration, PaperFalseAlarmRatesGiveSaneThresholds) {
  const XcorrNoiseModel model(wifi_long_preamble_template());
  const auto t_low_fa = model.threshold_for_rate(0.083);
  const auto t_high_fa = model.threshold_for_rate(0.52);
  // Lower false-alarm target -> higher threshold (paper Fig. 6 narrative).
  EXPECT_GT(t_low_fa, t_high_fa);
  EXPECT_GT(t_high_fa, 1000u);
  EXPECT_LT(t_low_fa, 50000u);
}

TEST(Calibration, EmpiricalCountAgreesWithModelOrderOfMagnitude) {
  // Pick a threshold with a deliberately HIGH false-alarm rate so a short
  // empirical run has statistics, then compare against the exact model.
  const auto tpl = wifi_long_preamble_template();
  const XcorrNoiseModel model(tpl);
  const std::uint32_t threshold = model.threshold_for_rate(2000.0);
  const double seconds = 0.2;
  const auto counted = count_noise_triggers(tpl, threshold, seconds, 31);
  const double expected = model.false_alarm_rate_per_s(threshold) * seconds;
  EXPECT_GT(static_cast<double>(counted), expected * 0.2);
  EXPECT_LT(static_cast<double>(counted), expected * 5.0 + 10.0);
}

}  // namespace
}  // namespace rjf::core
