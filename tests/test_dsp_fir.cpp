#include "dsp/fir.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/db.h"

namespace rjf::dsp {
namespace {

cvec tone(double freq_cycles_per_sample, std::size_t n) {
  cvec x(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double p = 2.0 * std::numbers::pi * freq_cycles_per_sample * k;
    x[k] = cfloat{static_cast<float>(std::cos(p)), static_cast<float>(std::sin(p))};
  }
  return x;
}

TEST(LowpassDesign, UnityDcGain) {
  const auto taps = design_lowpass(0.2, 63);
  double sum = 0.0;
  for (const float t : taps) sum += t;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(LowpassDesign, OddTapCountForced) {
  EXPECT_EQ(design_lowpass(0.1, 64).size(), 65u);
  EXPECT_EQ(design_lowpass(0.1, 63).size(), 63u);
}

TEST(LowpassDesign, RejectsBadCutoff) {
  EXPECT_THROW(design_lowpass(0.0, 31), std::invalid_argument);
  EXPECT_THROW(design_lowpass(0.5, 31), std::invalid_argument);
  EXPECT_THROW(design_lowpass(-0.1, 31), std::invalid_argument);
}

TEST(FirFilter, EmptyTapsRejected) {
  EXPECT_THROW(FirFilter({}), std::invalid_argument);
}

TEST(FirFilter, PassbandToneSurvives) {
  FirFilter filter(design_lowpass(0.25, 63));
  const cvec in = tone(0.05, 2000);
  const cvec out = filter.process_block(in);
  // Skip the transient, then compare power.
  const std::span<const cfloat> steady(out.data() + 200, out.size() - 200);
  EXPECT_NEAR(mean_power(steady), 1.0, 0.02);
}

TEST(FirFilter, StopbandToneAttenuated) {
  FirFilter filter(design_lowpass(0.1, 63));
  const cvec in = tone(0.35, 2000);
  const cvec out = filter.process_block(in);
  const std::span<const cfloat> steady(out.data() + 200, out.size() - 200);
  EXPECT_LT(mean_power_db(steady), -40.0);
}

TEST(FirFilter, ResetClearsState) {
  FirFilter filter(design_lowpass(0.2, 31));
  (void)filter.process(cfloat{1.0f, 0.0f});
  filter.reset();
  // After reset, an all-zero input yields all-zero output.
  for (int k = 0; k < 40; ++k)
    EXPECT_EQ(filter.process(cfloat{}), (cfloat{}));
}

TEST(Decimator, OutputLength) {
  Decimator dec(5);
  const cvec out = dec.process_block(cvec(1000, cfloat{1.0f, 0.0f}));
  EXPECT_EQ(out.size(), 200u);
}

TEST(Decimator, DcPreserved) {
  Decimator dec(4);
  const cvec out = dec.process_block(cvec(2000, cfloat{1.0f, 0.0f}));
  EXPECT_NEAR(out.back().real(), 1.0f, 0.01f);
}

TEST(Decimator, RejectsZeroFactor) {
  EXPECT_THROW(Decimator(0), std::invalid_argument);
}

TEST(Interpolator, OutputLengthAndDc) {
  Interpolator interp(4);
  const cvec out = interp.process_block(cvec(500, cfloat{1.0f, 0.0f}));
  EXPECT_EQ(out.size(), 2000u);
  EXPECT_NEAR(out.back().real(), 1.0f, 0.02f);
}

TEST(Interpolator, RejectsZeroFactor) {
  EXPECT_THROW(Interpolator(0), std::invalid_argument);
}

TEST(DecimatorInterpolator, RoundTripToneAtLowFrequency) {
  Interpolator up(4);
  Decimator down(4);
  const cvec in = tone(0.02, 1000);
  const cvec recovered = down.process_block(up.process_block(in));
  ASSERT_EQ(recovered.size(), in.size());
  const std::span<const cfloat> steady(recovered.data() + 100,
                                       recovered.size() - 100);
  EXPECT_NEAR(mean_power(steady), 1.0, 0.05);
}

}  // namespace
}  // namespace rjf::dsp
