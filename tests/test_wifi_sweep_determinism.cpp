// bench::run_sweep (Figs. 10-11 rig) parallelizes independent
// WifiNetworkSim points over core::run_shards, and its contract is that
// every point is bit-identical at any RJF_BENCH_THREADS value. Regression:
// thread_local waveform/verdict caches in WifiNetworkSim::exchange consumed
// per-sim rng_.next() draws only when cold, so a sim's RNG stream depended
// on which points had previously run on the same worker thread — a
// single-thread run (all points share one warm thread) disagreed with an
// N-thread run (points land on cold threads).
//
// The suite name contains "SweepEngine" so the TSan CI job's test filter
// also runs it.
#include "bench/wifi_sweep.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/presets.h"
#include "net/waveform_cache.h"
#include "obs/metrics.h"

namespace rjf::bench {
namespace {

// Run each config through its own WifiNetworkSim, sequentially on ONE
// fresh thread (mimicking a sweep-engine worker draining several shards),
// and return the last result.
net::WifiRunResult run_chain_on_fresh_thread(
    const std::vector<net::WifiNetworkConfig>& configs) {
  net::WifiRunResult last;
  std::thread worker([&] {
    for (const auto& config : configs) {
      net::WifiNetworkSim sim(config);
      last = sim.run();
    }
  });
  worker.join();
  return last;
}

// A WifiNetworkSim must be a pure function of its config: its result may
// not depend on which sims previously ran on the same worker thread.
// Regression: the decode-verdict caches in exchange() were thread_local,
// so a sim inherited another config's cached clean-channel verdicts (and
// skipped the rng_ draws that produced them) whenever its shard landed on
// a warm thread.
TEST(WifiSweepEngine, SimResultIndependentOfThreadHistory) {
  net::WifiNetworkConfig probe;
  probe.iperf.duration_s = 0.02;
  probe.seed = 42;

  // Same probe, but preceded on the thread by a sim whose AP noise floor
  // drowns every data frame (clean-channel verdict: bad, at every rate
  // ARF falls back to).
  net::WifiNetworkConfig deaf = probe;
  deaf.ap_noise_power = 1e-3;

  const auto isolated = run_chain_on_fresh_thread({probe});
  const auto after_deaf = run_chain_on_fresh_thread({deaf, probe});

  EXPECT_GT(isolated.report.datagrams_received, 0u);
  EXPECT_EQ(after_deaf.report.datagrams_received,
            isolated.report.datagrams_received);
  EXPECT_EQ(after_deaf.report.datagrams_sent, isolated.report.datagrams_sent);
  EXPECT_EQ(after_deaf.data_frames_delivered, isolated.data_frames_delivered);
  EXPECT_EQ(after_deaf.retries, isolated.retries);
  EXPECT_EQ(after_deaf.mean_tx_rate_mbps, isolated.mean_tx_rate_mbps);
}

TEST(WifiSweepEngine, RunSweepBitIdenticalAcrossThreadCounts) {
  const std::vector<double> powers = {1e-4, 1e-3, 3e-3, 1e-2};
  const double duration_s = 0.02;
  const auto jammer = core::energy_reactive_preset(1e-4, 10.0);

  const auto single = run_sweep("1 thread", jammer, powers, duration_s, 1);
  ASSERT_EQ(single.points.size(), powers.size());

  for (const unsigned threads : {2u, 4u}) {
    const auto parallel =
        run_sweep("N threads", jammer, powers, duration_s, threads);
    ASSERT_EQ(parallel.points.size(), single.points.size());
    for (std::size_t p = 0; p < powers.size(); ++p) {
      const auto& a = single.points[p];
      const auto& b = parallel.points[p];
      EXPECT_EQ(a.jam_triggers, b.jam_triggers)
          << "threads=" << threads << " point=" << p;
      EXPECT_EQ(a.sir_db, b.sir_db) << "threads=" << threads << " point=" << p;
      EXPECT_EQ(a.bandwidth_kbps, b.bandwidth_kbps)
          << "threads=" << threads << " point=" << p;
      EXPECT_EQ(a.prr_percent, b.prr_percent)
          << "threads=" << threads << " point=" << p;
      EXPECT_EQ(a.mean_rate_mbps, b.mean_rate_mbps)
          << "threads=" << threads << " point=" << p;
    }
  }
}

// The merged campaign metrics ride the same guarantee as the sweep points:
// every counter that survives the wall-clock strip (stream_wall_ns) and the
// cache diagnostics (cache.*: hit/miss splits depend on which thread built
// an entry first) must be bit-identical at any thread count, because they
// are derived purely from each point's deterministic fabric event stream
// and merged in point order.
TEST(WifiSweepEngine, CampaignMetricsBitIdenticalAcrossThreadCounts) {
  const std::vector<double> powers = {1e-4, 1e-3, 3e-3};
  const double duration_s = 0.02;
  const auto jammer = core::energy_reactive_preset(1e-4, 10.0);

  const auto deterministic_counters = [](const obs::MetricsRegistry& m) {
    std::map<std::string, std::uint64_t> out;
    for (const auto& [name, value] : m.counters())
      if (name.rfind("cache.", 0) != 0) out[name] = value;
    return out;
  };

  obs::MetricsRegistry single_metrics;
  const auto single =
      run_sweep("1 thread", jammer, powers, duration_s, 1, &single_metrics);
  const auto golden = deterministic_counters(single_metrics);

  // The sweep must actually have produced fabric telemetry (else the
  // comparison below is vacuous), and no record may have been lost.
  EXPECT_GT(single_metrics.counter_value("obs.ring_records"), 0u);
  EXPECT_GT(single_metrics.counter_value("events.jam_trigger"), 0u);
  EXPECT_EQ(single_metrics.counter_value("obs.ring_dropped"), 0u);
  EXPECT_EQ(single_metrics.counter_value("stream_wall_ns"), 0u);

  for (const unsigned threads : {2u, 4u}) {
    obs::MetricsRegistry parallel_metrics;
    const auto parallel = run_sweep("N threads", jammer, powers, duration_s,
                                    threads, &parallel_metrics);
    ASSERT_EQ(parallel.points.size(), single.points.size());
    for (std::size_t p = 0; p < powers.size(); ++p) {
      EXPECT_EQ(single.points[p].jam_triggers, parallel.points[p].jam_triggers)
          << "threads=" << threads << " point=" << p;
      EXPECT_EQ(single.points[p].prr_percent, parallel.points[p].prr_percent)
          << "threads=" << threads << " point=" << p;
    }
    EXPECT_EQ(deterministic_counters(parallel_metrics), golden)
        << "threads=" << threads;
  }
}

// The process-wide WaveformCache must be an invisible optimization: a
// sweep run with the cache disabled (every exchange re-synthesises its
// waveform) must be bit-identical to one that shares cached samples
// across all points and threads. The cached value is a pure function of
// its key and consumes no per-sim RNG draws, so any divergence here means
// the cache key is missing a dimension or the build path leaks state.
TEST(WifiSweepEngine, RunSweepBitIdenticalWithWaveformCacheOnAndOff) {
  const std::vector<double> powers = {1e-4, 1e-3, 3e-3};
  const double duration_s = 0.02;
  const auto jammer = core::energy_reactive_preset(1e-4, 10.0);

  auto& cache = net::WaveformCache::instance();
  const bool was_enabled = cache.enabled();

  // Both runs carry campaign metrics, so this doubles as the guarantee
  // that attaching counters perturbs nothing.
  cache.set_enabled(false);
  cache.clear();
  cache.reset_counters();
  obs::MetricsRegistry uncached_metrics;
  const auto uncached =
      run_sweep("cache off", jammer, powers, duration_s, 2, &uncached_metrics);

  cache.set_enabled(true);
  cache.clear();
  cache.reset_counters();
  obs::MetricsRegistry cached_metrics;
  const auto cached =
      run_sweep("cache on", jammer, powers, duration_s, 2, &cached_metrics);

  // The sweep transmits the same datagram/ACK at every point, so a warm
  // cache must actually be serving hits (else this test proves nothing),
  // and the hit/miss counters must surface in the campaign metrics.
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_GT(cache.size(), 0u);
  EXPECT_EQ(cached_metrics.counter_value("cache.waveform_hits"), cache.hits());
  EXPECT_EQ(cached_metrics.counter_value("cache.waveform_misses"),
            cache.misses());
  EXPECT_EQ(uncached_metrics.counter_value("cache.waveform_hits"), 0u);

  cache.set_enabled(was_enabled);

  ASSERT_EQ(cached.points.size(), uncached.points.size());
  for (std::size_t p = 0; p < powers.size(); ++p) {
    const auto& a = uncached.points[p];
    const auto& b = cached.points[p];
    EXPECT_EQ(a.jam_triggers, b.jam_triggers) << "point=" << p;
    EXPECT_EQ(a.sir_db, b.sir_db) << "point=" << p;
    EXPECT_EQ(a.bandwidth_kbps, b.bandwidth_kbps) << "point=" << p;
    EXPECT_EQ(a.prr_percent, b.prr_percent) << "point=" << p;
    EXPECT_EQ(a.mean_rate_mbps, b.mean_rate_mbps) << "point=" << p;
  }
}

}  // namespace
}  // namespace rjf::bench
