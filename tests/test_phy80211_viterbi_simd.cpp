// SIMD Viterbi equivalence and golden-vector tests (DESIGN.md section 12).
//
// viterbi_decode / viterbi_decode_soft dispatch to the lane-parallel ACS
// kernels when the CPU supports them; the scalar loops exposed as
// viterbi_decode_reference / viterbi_decode_soft_reference are the
// semantic authority.  Hard decisions must be BIT-IDENTICAL to the
// reference on every input (the u8 kernel's saturating renormalisation is
// exact, not approximate); the soft kernel replicates the reference's
// float arithmetic operation-for-operation, so its outputs are
// bit-identical too.
//
// The suite names contain "Viterbi" so the ASan+UBSan CI job's test
// filter picks them up: the u8 kernel leans on saturating arithmetic and
// reinterpreted vector lanes, exactly the territory UBSan watches.
#include "phy80211/convolutional.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "dsp/rng.h"
#include "dsp/simd/dispatch.h"

namespace rjf::phy80211 {
namespace {

Bits random_bits(std::size_t n, std::uint64_t seed) {
  Bits bits(n);
  dsp::Xoshiro256 rng(seed);
  for (auto& b : bits) b = rng.uniform() < 0.5 ? 0 : 1;
  return bits;
}

Bits with_tail(Bits data) {
  for (int k = 0; k < 6; ++k) data.push_back(0);
  return data;
}

// Ideal LLRs for a hard mother-rate stream: bit 1 -> +mag, bit 0 -> -mag,
// erasure (2) -> 0.
std::vector<float> to_llrs(const Bits& mother, float mag) {
  std::vector<float> llrs(mother.size());
  for (std::size_t k = 0; k < mother.size(); ++k)
    llrs[k] = mother[k] == 2 ? 0.0f : (mother[k] ? mag : -mag);
  return llrs;
}

// ---- hard-decision kernel vs reference -------------------------------------

TEST(ViterbiSimd, HardBitIdenticalToReferenceOnRandomNoisyInputs) {
  dsp::Xoshiro256 rng(21);
  for (int trial = 0; trial < 8; ++trial) {
    const Bits data = with_tail(random_bits(240, 100 + trial));
    Bits mother = convolutional_encode(data);
    // Sprinkle errors and erasures well past the correction radius: the
    // decoded bits may be wrong, but SIMD and reference must be wrong
    // IDENTICALLY.
    for (auto& b : mother) {
      const double r = rng.uniform();
      if (r < 0.15)
        b ^= 1;
      else if (r < 0.25)
        b = 2;
    }
    EXPECT_EQ(viterbi_decode(mother), viterbi_decode_reference(mother))
        << "trial " << trial << " on "
        << dsp::simd::isa_name(dsp::simd::active_isa());
  }
}

TEST(ViterbiSimd, HardBitIdenticalAcrossRenormBoundary) {
  // The u8 kernel renormalises its path metrics every 64 steps; inputs
  // shorter, equal to, and far past that interval must all match the
  // reference exactly (the renorm subtracts a common term and cannot
  // change any comparison).
  for (const std::size_t n_info : {3u, 5u, 32u, 64u, 65u, 400u, 2000u}) {
    const Bits data = random_bits(n_info, n_info);
    Bits mother = convolutional_encode(data);
    for (std::size_t k = 7; k < mother.size(); k += 13) mother[k] ^= 1;
    EXPECT_EQ(viterbi_decode(mother), viterbi_decode_reference(mother))
        << "n_info=" << n_info;
  }
}

TEST(ViterbiSimd, HardHandlesOutOfRangeSymbolsLikeReference) {
  // Symbol values > 2 are not produced by depuncture() but must not
  // diverge if they ever appear; both paths treat them alike.
  Bits mother = convolutional_encode(with_tail(random_bits(60, 3)));
  mother[4] = 3;
  mother[17] = 200;
  mother[33] = 255;
  EXPECT_EQ(viterbi_decode(mother), viterbi_decode_reference(mother));
}

// ---- soft-decision golden vectors ------------------------------------------

class ViterbiSoftGolden : public ::testing::TestWithParam<CodeRate> {};

// Clean punctured LLR stream: depuncture_soft() zeroes the punctured
// positions (the 2/3 and 3/4 erasure masks) and the decoder must return
// exactly the transmitted bits — the golden output is the message itself.
TEST_P(ViterbiSoftGolden, PuncturedCleanStreamDecodesToMessage) {
  const CodeRate rate = GetParam();
  const Bits data = with_tail(random_bits(240, 31));
  const Bits mother = convolutional_encode(data);
  const Bits punctured = puncture(mother, rate);
  std::vector<float> llrs(punctured.size());
  for (std::size_t k = 0; k < punctured.size(); ++k)
    llrs[k] = punctured[k] ? 4.0f : -4.0f;
  const std::vector<float> full =
      depuncture_soft(llrs, rate, mother.size());
  const Bits decoded = viterbi_decode_soft(full);
  EXPECT_EQ(decoded, data);
  EXPECT_EQ(decoded, viterbi_decode_soft_reference(full));
}

// All-erasure tail: zero out the LLRs of the entire 6-bit (12 mother
// positions) tail on top of the puncture mask.  The tail carries no
// information of its own, so the message bits must still decode exactly.
TEST_P(ViterbiSoftGolden, AllErasureTailStillDecodesMessage) {
  const CodeRate rate = GetParam();
  const Bits data = with_tail(random_bits(120, 37));
  const Bits mother = convolutional_encode(data);
  const Bits punctured = puncture(mother, rate);
  std::vector<float> llrs(punctured.size());
  for (std::size_t k = 0; k < punctured.size(); ++k)
    llrs[k] = punctured[k] ? 2.5f : -2.5f;
  std::vector<float> full = depuncture_soft(llrs, rate, mother.size());
  for (std::size_t k = full.size() - 12; k < full.size(); ++k) full[k] = 0.0f;
  const Bits decoded = viterbi_decode_soft(full);
  const Bits reference = viterbi_decode_soft_reference(full);
  EXPECT_EQ(decoded, reference);
  for (std::size_t k = 0; k < data.size() - 6; ++k)
    EXPECT_EQ(decoded[k], data[k]) << "message bit " << k;
}

// Max-metric saturation: +/-1e30 LLRs drive the accumulated path metrics
// toward float infinity; the kernel's clamp must saturate exactly like
// the reference's and a clean stream must still decode to the message.
TEST_P(ViterbiSoftGolden, SaturatedMetricsMatchReference) {
  const CodeRate rate = GetParam();
  const Bits data = with_tail(random_bits(240, 41));
  const Bits mother = convolutional_encode(data);
  const Bits punctured = puncture(mother, rate);
  std::vector<float> llrs(punctured.size());
  for (std::size_t k = 0; k < punctured.size(); ++k)
    llrs[k] = punctured[k] ? 1e30f : -1e30f;
  const std::vector<float> full =
      depuncture_soft(llrs, rate, mother.size());
  const Bits decoded = viterbi_decode_soft(full);
  EXPECT_EQ(decoded, viterbi_decode_soft_reference(full));
  EXPECT_EQ(decoded, data);
}

INSTANTIATE_TEST_SUITE_P(PuncturedRates, ViterbiSoftGolden,
                         ::testing::Values(CodeRate::kTwoThirds,
                                           CodeRate::kThreeQuarters));

// ---- soft kernel vs reference on adversarial inputs ------------------------

TEST(ViterbiSimd, SoftBitIdenticalOnNoisyTiedAndNanInputs) {
  dsp::Xoshiro256 rng(55);
  const Bits data = with_tail(random_bits(240, 61));
  const Bits mother = convolutional_encode(data);
  std::vector<float> llrs = to_llrs(mother, 1.0f);
  for (auto& v : llrs) {
    const double r = rng.uniform();
    if (r < 0.2)
      v = 0.0f;  // exact tie
    else if (r < 0.3)
      v = -v;  // hard error
    else
      v *= static_cast<float>(rng.uniform() * 2.0);
  }
  // A NaN LLR poisons comparisons; the vector kernel must resolve every
  // min/survivor choice exactly as the reference's std::max/< do.
  llrs[19] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(viterbi_decode_soft(llrs), viterbi_decode_soft_reference(llrs));
}

TEST(ViterbiSimd, SoftShortInputsMatchReference) {
  for (const std::size_t n_info : {1u, 2u, 4u, 5u}) {
    const Bits data = random_bits(n_info, 70 + n_info);
    const Bits mother = convolutional_encode(data);
    const std::vector<float> llrs = to_llrs(mother, 3.0f);
    EXPECT_EQ(viterbi_decode_soft(llrs), viterbi_decode_soft_reference(llrs))
        << "n_info=" << n_info;
  }
}

}  // namespace
}  // namespace rjf::phy80211
