// Fast-path demod equivalence tests (DESIGN.md section 12).
//
// The whole-frame receive path replaced the per-bit linear scans of the
// Gray tables with closed-form slicers and fused the deinterleaver into
// the demapper through a scatter table.  These tests pin the fast paths
// to the straightforward formulations: first-minimum scan semantics for
// the slicers (ties resolve to the lower table index, NaN to index 0),
// interleaver_mapped_index() for the tables, and demap+deinterleave for
// the fused scatter pass.
#include "phy80211/constellation.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>
#include <vector>

#include "dsp/rng.h"
#include "phy80211/interleaver.h"

namespace rjf::phy80211 {
namespace {

// The standard's Gray-coded PAM tables (duplicated from constellation.cpp
// on purpose: the reference scan below must not share code with the
// closed-form slicers it checks).
constexpr std::array<float, 4> kPam4 = {-3.0f, -1.0f, 3.0f, 1.0f};
constexpr std::array<float, 8> kPam8 = {-7.0f, -5.0f, -1.0f, -3.0f,
                                        7.0f,  5.0f,  1.0f,  3.0f};

float kmod(Modulation mod) {
  switch (mod) {
    case Modulation::kBpsk: return 1.0f;
    case Modulation::kQpsk: return 1.0f / std::sqrt(2.0f);
    case Modulation::kQam16: return 1.0f / std::sqrt(10.0f);
    case Modulation::kQam64: return 1.0f / std::sqrt(42.0f);
  }
  return 1.0f;
}

// First-minimum linear scan: the semantics the closed-form slicers must
// reproduce exactly. `d < best` (strict) keeps the FIRST minimum on a
// tie, and NaN distances compare false so NaN stays at index 0.
template <std::size_t N>
unsigned scan_slice(const std::array<float, N>& pam, float x) {
  unsigned best_idx = 0;
  float best = std::numeric_limits<float>::infinity();
  for (unsigned level = 0; level < N; ++level) {
    const float d = (x - pam[level]) * (x - pam[level]);
    if (d < best) {
      best = d;
      best_idx = level;
    }
  }
  return best_idx;
}

// Scan-based hard demap of one symbol, replicating the exact float
// arithmetic of the production path (multiply by 1/kmod first) so both
// sides slice the same scaled value.  BPSK/QPSK keep the demapper's
// long-standing sign rule (tie at 0 resolves to bit 1, NaN to bit 0);
// the first-minimum scan is the reference for the QAM slicers only.
void scan_demap(dsp::cfloat s, Modulation mod, std::uint8_t* out) {
  const float inv_k = 1.0f / kmod(mod);
  const float i = s.real() * inv_k;
  const float q = s.imag() * inv_k;
  switch (mod) {
    case Modulation::kBpsk:
      out[0] = i >= 0.0f ? 1 : 0;
      break;
    case Modulation::kQpsk:
      out[0] = i >= 0.0f ? 1 : 0;
      out[1] = q >= 0.0f ? 1 : 0;
      break;
    case Modulation::kQam16: {
      const unsigned gi = scan_slice(kPam4, i);
      const unsigned gq = scan_slice(kPam4, q);
      for (unsigned b = 0; b < 2; ++b) out[b] = (gi >> b) & 1u;
      for (unsigned b = 0; b < 2; ++b) out[2 + b] = (gq >> b) & 1u;
      break;
    }
    case Modulation::kQam64: {
      const unsigned gi = scan_slice(kPam8, i);
      const unsigned gq = scan_slice(kPam8, q);
      for (unsigned b = 0; b < 3; ++b) out[b] = (gi >> b) & 1u;
      for (unsigned b = 0; b < 3; ++b) out[3 + b] = (gq >> b) & 1u;
      break;
    }
  }
}

// Axis values that exercise every decision boundary of both PAM tables:
// the levels themselves, the exact midpoints (ties), a few ulp around
// each midpoint, far saturation, zero, and NaN/inf.
std::vector<float> boundary_axis_values() {
  std::vector<float> xs;
  for (const float v : {-7.0f, -6.0f, -5.0f, -4.0f, -3.0f, -2.0f, -1.0f,
                        0.0f, 1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f, 7.0f}) {
    xs.push_back(v);
    xs.push_back(std::nextafterf(v, -std::numeric_limits<float>::infinity()));
    xs.push_back(std::nextafterf(v, std::numeric_limits<float>::infinity()));
  }
  for (float v = -9.0f; v <= 9.0f; v += 0.0625f) xs.push_back(v);
  // Keep the grid within the range where the float squared distances are
  // exact enough to order the levels; beyond ~2^26 every distance rounds
  // to x and the scan degenerates to a rounding-tie artifact (the
  // closed-form slicers return the genuinely nearest level there — see
  // SaturatedInputsSliceToNearestLevel).
  xs.push_back(-1e6f);
  xs.push_back(1e6f);
  xs.push_back(std::numeric_limits<float>::quiet_NaN());
  return xs;
}

TEST(DemodFast, ClosedFormSlicersMatchFirstMinimumScan) {
  const std::vector<float> xs = boundary_axis_values();
  for (const Modulation mod : {Modulation::kBpsk, Modulation::kQpsk,
                               Modulation::kQam16, Modulation::kQam64}) {
    const unsigned bps = bits_per_symbol(mod);
    const float k = kmod(mod);
    for (const float xi : xs) {
      for (const float xq : {xs[0], 0.5f, xs.back()}) {
        // Scale by kmod so the production inv_k multiply lands near (and
        // often exactly on) the boundary value; both sides then slice
        // the identical float.
        const dsp::cfloat s{xi * k, xq * k};
        const Bits got = demap_symbols(std::span(&s, 1), mod);
        std::array<std::uint8_t, 6> want{};
        scan_demap(s, mod, want.data());
        ASSERT_EQ(got.size(), bps);
        for (unsigned b = 0; b < bps; ++b)
          EXPECT_EQ(got[b], want[b])
              << "mod=" << static_cast<int>(mod) << " xi=" << xi
              << " xq=" << xq << " bit=" << b;
      }
    }
  }
}

// Far outside the constellation the closed-form slicers clamp to the
// nearest outer level.  (The legacy scan's float distances all rounded to
// |x| out here, so its first-minimum tie-break returned the -3/-7 level
// even for huge POSITIVE inputs; such magnitudes cannot survive the
// equalizer's dead-bin guard, and nearest-level is the defensible answer.)
TEST(DemodFast, SaturatedInputsSliceToNearestLevel) {
  const float k16 = kmod(Modulation::kQam16);
  const float k64 = kmod(Modulation::kQam64);
  for (const float big : {1e10f, 1e30f, std::numeric_limits<float>::infinity()}) {
    const dsp::cfloat pos16{big * k16, -big * k16};
    const Bits b16 = demap_symbols(std::span(&pos16, 1), Modulation::kQam16);
    // +big -> level +3 (Gray index 2 -> bits 0,1); -big -> level -3
    // (index 0 -> bits 0,0).
    EXPECT_EQ(b16, (Bits{0, 1, 0, 0})) << "big=" << big;

    const dsp::cfloat pos64{big * k64, -big * k64};
    const Bits b64 = demap_symbols(std::span(&pos64, 1), Modulation::kQam64);
    // +big -> level +7 (index 4 -> bits 0,0,1); -big -> level -7 (index 0).
    EXPECT_EQ(b64, (Bits{0, 0, 1, 0, 0, 0})) << "big=" << big;
  }
}

TEST(DemodFast, IntoVariantsMatchAllocatingDemap) {
  dsp::Xoshiro256 rng(7);
  for (const Modulation mod : {Modulation::kBpsk, Modulation::kQpsk,
                               Modulation::kQam16, Modulation::kQam64}) {
    const unsigned bps = bits_per_symbol(mod);
    dsp::cvec symbols(48);
    for (auto& s : symbols) s = rng.complex_gaussian();

    const Bits hard = demap_symbols(symbols, mod);
    Bits hard_into(symbols.size() * bps);
    demap_symbols_into(symbols, mod, hard_into.data());
    EXPECT_EQ(hard_into, hard);

    const std::vector<float> soft = demap_soft(symbols, mod, 0.25f);
    std::vector<float> soft_into(symbols.size() * bps);
    demap_soft_into(symbols, mod, 0.25f, soft_into.data());
    EXPECT_EQ(soft_into, soft);
  }
}

struct RatePair {
  unsigned n_cbps;
  unsigned n_bpsc;
  Modulation mod;
};

constexpr RatePair kStandardPairs[] = {
    {48, 1, Modulation::kBpsk},
    {96, 2, Modulation::kQpsk},
    {192, 4, Modulation::kQam16},
    {288, 6, Modulation::kQam64},
};

// The scatter table must be the inverse of the closed-form two-permutation
// map: interleave() writes source bit k to mapped_index(k), so received
// bit mapped_index(k) deinterleaves back to k.
TEST(DemodFast, ScatterTableInvertsMappedIndex) {
  for (const RatePair& p : kStandardPairs) {
    const std::uint16_t* table = deinterleave_scatter(p.n_cbps, p.n_bpsc);
    ASSERT_NE(table, nullptr) << "n_cbps=" << p.n_cbps;
    std::vector<bool> covered(p.n_cbps, false);
    for (std::size_t k = 0; k < p.n_cbps; ++k) {
      const std::size_t j = interleaver_mapped_index(k, p.n_cbps, p.n_bpsc);
      ASSERT_LT(j, p.n_cbps);
      EXPECT_EQ(table[j], k) << "n_cbps=" << p.n_cbps << " k=" << k;
      covered[table[j]] = true;
    }
    for (std::size_t k = 0; k < p.n_cbps; ++k)
      EXPECT_TRUE(covered[k]) << "not a permutation at " << k;
  }
}

TEST(DemodFast, NonStandardPairHasNoScatterTable) {
  EXPECT_EQ(deinterleave_scatter(96, 1), nullptr);
  EXPECT_EQ(deinterleave_scatter(48, 6), nullptr);
}

// Fused demap+deinterleave must equal the two-pass formulation for every
// standard (n_cbps, n_bpsc) pair, hard and soft.
TEST(DemodFast, ScatterDemapEqualsDemapThenDeinterleave) {
  dsp::Xoshiro256 rng(11);
  for (const RatePair& p : kStandardPairs) {
    const std::size_t n_sym = p.n_cbps / p.n_bpsc;
    dsp::cvec symbols(n_sym);
    for (auto& s : symbols) s = rng.complex_gaussian();
    const std::uint16_t* table = deinterleave_scatter(p.n_cbps, p.n_bpsc);
    ASSERT_NE(table, nullptr);

    const Bits raw = demap_symbols(symbols, p.mod);
    const Bits two_pass = deinterleave(raw, p.n_cbps, p.n_bpsc);
    Bits fused(p.n_cbps);
    demap_symbols_scatter(symbols, p.mod, table, fused.data());
    EXPECT_EQ(fused, two_pass) << "n_cbps=" << p.n_cbps;

    const std::vector<float> raw_soft = demap_soft(symbols, p.mod, 1.0f);
    const std::vector<float> two_pass_soft =
        deinterleave_soft(raw_soft, p.n_cbps, p.n_bpsc);
    std::vector<float> fused_soft(p.n_cbps);
    demap_soft_scatter(symbols, p.mod, 1.0f, table, fused_soft.data());
    EXPECT_EQ(fused_soft, two_pass_soft) << "soft n_cbps=" << p.n_cbps;
  }
}

// The table-backed interleave/deinterleave must stay exact inverses, and
// the closed-form fallback must still serve nonstandard parameter pairs.
TEST(DemodFast, InterleaveRoundTripsWithAndWithoutTables) {
  dsp::Xoshiro256 rng(13);
  const auto round_trip = [&](unsigned n_cbps, unsigned n_bpsc) {
    Bits bits(n_cbps);
    for (auto& b : bits) b = rng.uniform() < 0.5 ? 0 : 1;
    const Bits mixed = interleave(bits, n_cbps, n_bpsc);
    EXPECT_EQ(deinterleave(mixed, n_cbps, n_bpsc), bits)
        << "n_cbps=" << n_cbps << " n_bpsc=" << n_bpsc;
  };
  for (const RatePair& p : kStandardPairs) round_trip(p.n_cbps, p.n_bpsc);
  round_trip(96, 1);  // nonstandard: closed-form path
}

}  // namespace
}  // namespace rjf::phy80211
