// Soft-decision receive path (LLR demap + soft Viterbi) and the Welch PSD
// estimator.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/noise.h"
#include "dsp/psd.h"
#include "dsp/rng.h"
#include "phy80211/receiver.h"
#include "phy80211/transmitter.h"

namespace rjf::phy80211 {
namespace {

TEST(SoftDemap, SignsMatchHardDecisionsOnCleanSymbols) {
  dsp::Xoshiro256 rng(1);
  for (const Modulation mod : {Modulation::kBpsk, Modulation::kQpsk,
                               Modulation::kQam16, Modulation::kQam64}) {
    Bits bits(bits_per_symbol(mod) * 64);
    for (auto& b : bits) b = rng.uniform() < 0.5 ? 0 : 1;
    const dsp::cvec symbols = map_bits(bits, mod);
    const std::vector<float> llrs = demap_soft(symbols, mod);
    ASSERT_EQ(llrs.size(), bits.size());
    for (std::size_t k = 0; k < bits.size(); ++k) {
      EXPECT_EQ(llrs[k] > 0.0f, bits[k] == 1)
          << "mod " << static_cast<int>(mod) << " bit " << k;
      EXPECT_GT(std::abs(llrs[k]), 1e-4f);
    }
  }
}

TEST(SoftDemap, ConfidenceScalesWithDistanceFromBoundary) {
  // A 16-QAM symbol near the decision boundary must yield a weaker LLR
  // than one deep inside a region.
  // Bit 1 of the 16-QAM I axis is the sign bit (levels {-3,-1} vs {+1,+3}),
  // whose decision boundary is x = 0: a symbol near zero must carry a
  // weaker sign-bit LLR than one deep inside the positive half.
  const dsp::cvec near_boundary = {dsp::cfloat{0.02f, 0.02f}};
  const dsp::cvec deep = {dsp::cfloat{0.9f, 0.9f}};
  const auto weak = demap_soft(near_boundary, Modulation::kQam16);
  const auto strong = demap_soft(deep, Modulation::kQam16);
  EXPECT_LT(std::abs(weak[1]), std::abs(strong[1]));
}

class SoftViterbi : public ::testing::TestWithParam<CodeRate> {};

TEST_P(SoftViterbi, RoundTripMatchesHardOnCleanInput) {
  const CodeRate rate = GetParam();
  dsp::Xoshiro256 rng(7);
  Bits data(246);
  for (auto& b : data) b = rng.uniform() < 0.5 ? 0 : 1;
  for (int k = 0; k < 6; ++k) data.push_back(0);

  const Bits coded = encode_at_rate(data, rate);
  std::vector<float> llrs(coded.size());
  for (std::size_t k = 0; k < coded.size(); ++k)
    llrs[k] = coded[k] ? 4.0f : -4.0f;
  EXPECT_EQ(decode_at_rate_soft(llrs, rate, data.size()), data);
}

INSTANTIATE_TEST_SUITE_P(AllRates, SoftViterbi,
                         ::testing::Values(CodeRate::kHalf,
                                           CodeRate::kTwoThirds,
                                           CodeRate::kThreeQuarters));

TEST(SoftViterbi, WeakLlrsLoseToStrongOnes) {
  // One corrupted position with low confidence must be overridden by the
  // code structure, while the same corruption at high confidence causes a
  // (contained) error event — the essence of soft decoding.
  Bits data(100, 0);
  data[10] = 1;
  data[40] = 1;
  for (int k = 0; k < 6; ++k) data.push_back(0);
  const Bits coded = encode_at_rate(data, CodeRate::kHalf);

  std::vector<float> llrs(coded.size());
  for (std::size_t k = 0; k < coded.size(); ++k)
    llrs[k] = coded[k] ? 4.0f : -4.0f;
  // Corrupt five adjacent coded bits, but with tiny confidence.
  for (std::size_t k = 30; k < 35; ++k) llrs[k] = llrs[k] > 0 ? -0.1f : 0.1f;
  EXPECT_EQ(viterbi_decode_soft(llrs), data);
}

TEST(SoftReceiver, BeatsHardReceiverAtLowSnr) {
  // At an SNR where hard decisions fail regularly, soft decisions must
  // succeed strictly more often (the classic ~2 dB coding gain).
  std::vector<std::uint8_t> psdu(400, 0x3A);
  Transmitter tx({Rate::kMbps36, 0x55});
  const dsp::cvec clean = tx.transmit(psdu);

  int hard_ok = 0, soft_ok = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    dsp::cvec wave = clean;
    dsp::NoiseSource noise(0.04, 100 + t);  // ~14 dB SNR, 16-QAM 3/4
    noise.add_to(wave);
    if (Receiver(8, false).receive(wave).psdu == psdu) ++hard_ok;
    if (Receiver(8, true).receive(wave).psdu == psdu) ++soft_ok;
  }
  EXPECT_GT(soft_ok, hard_ok);
  EXPECT_GT(soft_ok, trials / 2);
}

}  // namespace
}  // namespace rjf::phy80211

namespace rjf::dsp {
namespace {

TEST(Psd, WhiteNoiseIsFlatAndSumsToPower) {
  NoiseSource noise(0.5, 9);
  const cvec x = noise.block(65536);
  const auto psd = welch_psd(x);
  ASSERT_EQ(psd.size(), 256u);
  // Total power conservation.
  double total = 0.0;
  for (const double p : psd) total += p;
  EXPECT_NEAR(total / 256.0, 0.5, 0.05);
  // Flatness: no bin deviates wildly from the mean.
  for (const double p : psd) {
    EXPECT_GT(p, 0.5 * 0.3);
    EXPECT_LT(p, 0.5 * 3.0);
  }
}

TEST(Psd, TonePeaksInTheRightBin) {
  cvec x(32768);
  const double f = 0.125;  // cycles/sample
  for (std::size_t k = 0; k < x.size(); ++k) {
    const double p = 2.0 * std::numbers::pi * f * k;
    x[k] = cfloat{static_cast<float>(std::cos(p)), static_cast<float>(std::sin(p))};
  }
  const auto psd = welch_psd(x);
  const auto peak =
      std::max_element(psd.begin(), psd.end()) - psd.begin();
  // f = 0.125 -> bin 128 + 0.125*256 = 160 in the DC-centred layout.
  EXPECT_NEAR(static_cast<double>(peak), 160.0, 1.0);
}

TEST(Psd, BandPowerSelectsTheBand) {
  cvec x(32768);
  const double f = 0.125;
  for (std::size_t k = 0; k < x.size(); ++k) {
    const double p = 2.0 * std::numbers::pi * f * k;
    x[k] = cfloat{static_cast<float>(std::cos(p)), static_cast<float>(std::sin(p))};
  }
  const auto psd = welch_psd(x);
  EXPECT_GT(band_power(psd, 0.1, 0.15), 0.8);
  EXPECT_LT(band_power(psd, -0.4, -0.2), 0.01);
}

TEST(Psd, DegenerateInputs) {
  EXPECT_TRUE(welch_psd(cvec(10)).empty());      // shorter than fft_size
  EXPECT_EQ(band_power({}, -0.5, 0.5), 0.0);
  PsdConfig bad;
  bad.fft_size = 100;                            // not a power of two
  EXPECT_TRUE(welch_psd(cvec(4096), bad).empty());
}

}  // namespace
}  // namespace rjf::dsp
