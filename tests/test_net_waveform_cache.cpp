// WaveformCache contract: clear() drops entries but preserves the
// hit/miss/eviction counters; reset_counters() zeroes the counters but
// preserves the entries. Pre-split, clear() did both at once, so any rig
// that dropped stale entries mid-run also silently erased its cumulative
// cache statistics and export_metrics() under-reported.
//
// The cache is process-wide, so each test snapshots and restores the
// enabled flag and leaves the store cleared; the tests read counter DELTAS
// from their own operations, never absolute values, so they are immune to
// other tests (or each other) having used the cache first.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/waveform_cache.h"

namespace rjf::net {
namespace {

std::vector<std::uint8_t> psdu_of(std::uint8_t fill) {
  return std::vector<std::uint8_t>(64, fill);
}

TEST(WaveformCache, ClearDropsEntriesButKeepsCounters) {
  auto& cache = WaveformCache::instance();
  const bool was_enabled = cache.enabled();
  cache.set_enabled(true);
  cache.clear();

  const auto psdu = psdu_of(0x11);
  const std::uint64_t misses0 = cache.misses();
  const std::uint64_t hits0 = cache.hits();
  const auto a =
      cache.get_or_build(psdu, phy80211::Rate::kMbps54, 0x5D, 1e-3, 0);
  const auto b =
      cache.get_or_build(psdu, phy80211::Rate::kMbps54, 0x5D, 1e-3, 0);
  ASSERT_EQ(a.get(), b.get());  // second call was a hit
  EXPECT_EQ(cache.misses() - misses0, 1u);
  EXPECT_EQ(cache.hits() - hits0, 1u);
  ASSERT_GE(cache.size(), 1u);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u) << "clear() must drop the entries";
  EXPECT_EQ(cache.misses() - misses0, 1u)
      << "clear() must not reset the miss counter";
  EXPECT_EQ(cache.hits() - hits0, 1u)
      << "clear() must not reset the hit counter";

  // The dropped entry rebuilds on next use (a miss, not a hit).
  const auto c =
      cache.get_or_build(psdu, phy80211::Rate::kMbps54, 0x5D, 1e-3, 0);
  EXPECT_EQ(cache.misses() - misses0, 2u);
  EXPECT_EQ(c->w20.size(), a->w20.size());

  cache.clear();
  cache.set_enabled(was_enabled);
}

TEST(WaveformCache, ResetCountersZeroesCountersButKeepsEntries) {
  auto& cache = WaveformCache::instance();
  const bool was_enabled = cache.enabled();
  cache.set_enabled(true);
  cache.clear();

  const auto psdu = psdu_of(0x22);
  const auto a =
      cache.get_or_build(psdu, phy80211::Rate::kMbps24, 0x5D, 1e-3, 0);
  const std::size_t entries = cache.size();
  ASSERT_GE(entries, 1u);

  cache.reset_counters();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(cache.size(), entries)
      << "reset_counters() must not drop the entries";

  // The surviving entry still serves: the very next lookup is a pure hit.
  const auto b =
      cache.get_or_build(psdu, phy80211::Rate::kMbps24, 0x5D, 1e-3, 0);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 0u);

  cache.clear();
  cache.set_enabled(was_enabled);
}

}  // namespace
}  // namespace rjf::net
