#include "fpga/register_file.h"

#include <gtest/gtest.h>

namespace rjf::fpga {
namespace {

TEST(RegisterFile, StartsZeroed) {
  const RegisterFile regs;
  for (std::size_t r = 0; r < kNumUserRegisters; ++r)
    EXPECT_EQ(regs.read(static_cast<Reg>(r)), 0u);
}

TEST(RegisterFile, ReadBackAfterWrite) {
  RegisterFile regs;
  regs.write(Reg::kXcorrThreshold, 0xDEADBEEFu);
  EXPECT_EQ(regs.read(Reg::kXcorrThreshold), 0xDEADBEEFu);
}

TEST(RegisterFile, RegisterBudgetMatchesPaper) {
  // Paper §2.2: "Our current design makes use of 24 of these user registers."
  EXPECT_EQ(kNumUserRegisters, 24u);
  EXPECT_EQ(static_cast<std::size_t>(Reg::kJamDuration), 23u);
}

TEST(Coefficients, RoundTripAllPositions) {
  RegisterFile regs;
  for (std::size_t k = 0; k < 64; ++k) {
    const int v = static_cast<int>(k % 7) - 3;  // -3..3
    regs.set_coefficient(false, k, v);
    regs.set_coefficient(true, k, -v);
  }
  for (std::size_t k = 0; k < 64; ++k) {
    const int v = static_cast<int>(k % 7) - 3;
    EXPECT_EQ(regs.coefficient(false, k), v) << "I coef " << k;
    EXPECT_EQ(regs.coefficient(true, k), -v) << "Q coef " << k;
  }
}

TEST(Coefficients, ClampToThreeBitSigned) {
  RegisterFile regs;
  regs.set_coefficient(false, 0, 100);
  EXPECT_EQ(regs.coefficient(false, 0), 3);
  regs.set_coefficient(false, 1, -100);
  EXPECT_EQ(regs.coefficient(false, 1), -4);
}

TEST(Coefficients, OutOfRangeIndexIgnored) {
  RegisterFile regs;
  regs.set_coefficient(false, 64, 3);  // silently ignored
  EXPECT_EQ(regs.coefficient(false, 64), 0);
}

TEST(Coefficients, PackingDoesNotDisturbNeighbours) {
  RegisterFile regs;
  for (std::size_t k = 0; k < 8; ++k) regs.set_coefficient(false, k, 2);
  regs.set_coefficient(false, 3, -1);
  for (std::size_t k = 0; k < 8; ++k)
    EXPECT_EQ(regs.coefficient(false, k), k == 3 ? -1 : 2);
}

TEST(JammerField, EncodeDecode) {
  RegisterFile regs;
  regs.set_jammer(JamWaveform::kReplay, true, 1234);
  EXPECT_EQ(regs.jam_waveform(), JamWaveform::kReplay);
  EXPECT_TRUE(regs.jam_enabled());
  EXPECT_EQ(regs.jam_delay_samples(), 1234);

  regs.set_jammer(JamWaveform::kHostStream, false, 0);
  EXPECT_EQ(regs.jam_waveform(), JamWaveform::kHostStream);
  EXPECT_FALSE(regs.jam_enabled());
}

TEST(TriggerStages, CountAndMasks) {
  RegisterFile regs;
  regs.set_trigger_stages(kEventXcorr, kEventEnergyHigh, 0);
  EXPECT_EQ(regs.num_trigger_stages(), 2);
  EXPECT_EQ(regs.trigger_stage_mask(0), kEventXcorr);
  EXPECT_EQ(regs.trigger_stage_mask(1), kEventEnergyHigh);
  EXPECT_EQ(regs.trigger_stage_mask(2), 0u);
  EXPECT_EQ(regs.trigger_stage_mask(3), 0u);  // out of range
}

TEST(TriggerStages, ThreeStagesMax) {
  RegisterFile regs;
  regs.set_trigger_stages(1, 2, 4);
  EXPECT_EQ(regs.num_trigger_stages(), 3);
}

TEST(EnergyThreshold, Q88ConversionRoundTrips) {
  // Paper: "any energy level change between 3dB and 30dB".
  for (const double db : {3.0, 6.0, 10.0, 20.0, 30.0}) {
    const auto q88 = energy_threshold_q88_from_db(db);
    EXPECT_NEAR(energy_threshold_db_from_q88(q88), db, 0.05) << db;
  }
}

TEST(EnergyThreshold, TenDbIsFactorTenQ88) {
  EXPECT_EQ(energy_threshold_q88_from_db(10.0), 2560u);  // 10.0 * 256
}

}  // namespace
}  // namespace rjf::fpga
