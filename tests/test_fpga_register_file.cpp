#include "fpga/register_file.h"

#include <gtest/gtest.h>

#include "core/fabric_units.h"

namespace rjf::fpga {
namespace {

TEST(RegisterFile, StartsZeroed) {
  const RegisterFile regs;
  for (std::size_t r = 0; r < kNumUserRegisters; ++r)
    EXPECT_EQ(regs.read(static_cast<Reg>(r)), 0u);
}

TEST(RegisterFile, ReadBackAfterWrite) {
  RegisterFile regs;
  regs.write(Reg::kXcorrThreshold, 0xDEADBEEFu);
  EXPECT_EQ(regs.read(Reg::kXcorrThreshold), 0xDEADBEEFu);
}

TEST(RegisterFile, RegisterBudgetMatchesPaper) {
  // Paper §2.2: "Our current design makes use of 24 of these user registers."
  EXPECT_EQ(kNumUserRegisters, 24u);
  EXPECT_EQ(static_cast<std::size_t>(Reg::kJamDuration), 23u);
}

TEST(Coefficients, RoundTripAllPositions) {
  RegisterFile regs;
  for (std::size_t k = 0; k < 64; ++k) {
    const int v = static_cast<int>(k % 7) - 3;  // -3..3
    regs.set_coefficient(false, k, v);
    regs.set_coefficient(true, k, -v);
  }
  for (std::size_t k = 0; k < 64; ++k) {
    const int v = static_cast<int>(k % 7) - 3;
    EXPECT_EQ(regs.coefficient(false, k), v) << "I coef " << k;
    EXPECT_EQ(regs.coefficient(true, k), -v) << "Q coef " << k;
  }
}

TEST(Coefficients, ClampToThreeBitSigned) {
  RegisterFile regs;
  regs.set_coefficient(false, 0, 100);
  EXPECT_EQ(regs.coefficient(false, 0), 3);
  regs.set_coefficient(false, 1, -100);
  EXPECT_EQ(regs.coefficient(false, 1), -4);
}

TEST(Coefficients, RogueRawWriteDecodesLikeTheFabric) {
  // Regression test: coefficient() used to sign-extend the full 4-bit bus
  // field ([-8, 7]) while the correlator's bit-plane decomposition only ever
  // reads the low 3 bits, so a raw register write with the spare bit set
  // made the host readout disagree with what the fabric computed. The
  // decode now wraps to 3-bit two's complement, matching the datapath.
  RegisterFile regs;
  regs.write(Reg::kXcorrCoefI0, 0x88888888u);  // every field 0b1000
  for (std::size_t k = 0; k < 8; ++k)
    EXPECT_EQ(regs.coefficient(false, k), 0) << "I coef " << k;

  regs.write(Reg::kXcorrCoefQ0, 0xFCFCFCFCu);  // fields alternate 0xC, 0xF
  for (std::size_t k = 0; k < 8; ++k) {
    // 0xC -> low bits 100 -> -4; 0xF -> 111 -> -1. Both in contract range,
    // identical to what the bit planes decode for the same raw bits.
    EXPECT_EQ(regs.coefficient(true, k), (k % 2 == 0) ? -4 : -1)
        << "Q coef " << k;
  }

  // Values written through the packing helper are unaffected: the spare bit
  // is never set, so 3-bit and 4-bit decodes agree for every legal value.
  for (int v = -4; v <= 3; ++v) {
    regs.set_coefficient(false, 0, v);
    EXPECT_EQ(regs.coefficient(false, 0), v);
  }
}

TEST(Coefficients, OutOfRangeIndexIgnored) {
  RegisterFile regs;
  regs.set_coefficient(false, 64, 3);  // silently ignored
  EXPECT_EQ(regs.coefficient(false, 64), 0);
}

TEST(Coefficients, PackingDoesNotDisturbNeighbours) {
  RegisterFile regs;
  for (std::size_t k = 0; k < 8; ++k) regs.set_coefficient(false, k, 2);
  regs.set_coefficient(false, 3, -1);
  for (std::size_t k = 0; k < 8; ++k)
    EXPECT_EQ(regs.coefficient(false, k), k == 3 ? -1 : 2);
}

TEST(JammerField, EncodeDecode) {
  RegisterFile regs;
  regs.set_jammer(JamWaveform::kReplay, true, 1234);
  EXPECT_EQ(regs.jam_waveform(), JamWaveform::kReplay);
  EXPECT_TRUE(regs.jam_enabled());
  EXPECT_EQ(regs.jam_delay_samples(), 1234);

  regs.set_jammer(JamWaveform::kHostStream, false, 0);
  EXPECT_EQ(regs.jam_waveform(), JamWaveform::kHostStream);
  EXPECT_FALSE(regs.jam_enabled());
}

TEST(TriggerStages, CountAndMasks) {
  RegisterFile regs;
  regs.set_trigger_stages(kEventXcorr, kEventEnergyHigh, 0);
  EXPECT_EQ(regs.num_trigger_stages(), 2);
  EXPECT_EQ(regs.trigger_stage_mask(0), kEventXcorr);
  EXPECT_EQ(regs.trigger_stage_mask(1), kEventEnergyHigh);
  EXPECT_EQ(regs.trigger_stage_mask(2), 0u);
  EXPECT_EQ(regs.trigger_stage_mask(3), 0u);  // out of range
}

TEST(TriggerStages, ThreeStagesMax) {
  RegisterFile regs;
  regs.set_trigger_stages(1, 2, 4);
  EXPECT_EQ(regs.num_trigger_stages(), 3);
}

TEST(EnergyThreshold, Q88ConversionRoundTrips) {
  // Paper: "any energy level change between 3dB and 30dB".
  for (const double db : {3.0, 6.0, 10.0, 20.0, 30.0}) {
    const auto q88 = core::energy_threshold_q88_from_db(db);
    EXPECT_NEAR(core::energy_threshold_db_from_q88(q88), db, 0.05) << db;
  }
}

TEST(EnergyThreshold, TenDbIsFactorTenQ88) {
  EXPECT_EQ(core::energy_threshold_q88_from_db(10.0), 2560u);  // 10.0 * 256
}

}  // namespace
}  // namespace rjf::fpga
