// Secure-communication schemes built on the jamming platform: iJam
// self-jamming secrecy and ally-friendly key-controlled jamming.
#include <gtest/gtest.h>

#include "dsp/db.h"
#include "dsp/noise.h"
#include "phy80211/constellation.h"
#include "secure/friendly.h"
#include "secure/ijam.h"

namespace rjf::secure {
namespace {

// Count symbol errors between two QPSK streams after hard slicing.
std::size_t qpsk_errors(const dsp::cvec& a, const dsp::cvec& b) {
  std::size_t errors = 0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t k = 0; k < n; ++k) {
    const bool ia = a[k].real() >= 0, qa = a[k].imag() >= 0;
    const bool ib = b[k].real() >= 0, qb = b[k].imag() >= 0;
    if (ia != ib || qa != qb) ++errors;
  }
  return errors;
}

dsp::cvec random_qpsk(std::size_t n, std::uint64_t seed) {
  dsp::Xoshiro256 rng(seed);
  dsp::cvec out(n);
  for (auto& s : out)
    s = dsp::cfloat{rng.next() & 1u ? 0.707f : -0.707f,
                    rng.next() & 1u ? 0.707f : -0.707f};
  return out;
}

TEST(Ijam, DuplicationLayout) {
  const dsp::cvec wave = random_qpsk(64, 1);
  const dsp::cvec dup = ijam_duplicate(wave, 16);
  ASSERT_EQ(dup.size(), 128u);
  // Block k appears twice back to back.
  for (std::size_t k = 0; k < 16; ++k) {
    EXPECT_EQ(dup[k], wave[k]);
    EXPECT_EQ(dup[16 + k], wave[k]);
    EXPECT_EQ(dup[32 + k], wave[16 + k]);
  }
}

TEST(Ijam, MaskDeterministicPerKey) {
  const auto a = ijam_mask(16, 4, 0x0E1A);
  const auto b = ijam_mask(16, 4, 0x0E1A);
  EXPECT_EQ(a, b);
  const auto c = ijam_mask(16, 4, 0x0E1B);
  EXPECT_NE(a, c);
}

TEST(Ijam, LegitimateReceiverReconstructsPerfectly) {
  const std::size_t symbol_len = 64;
  const std::size_t num_symbols = 20;
  const dsp::cvec signal = random_qpsk(symbol_len * num_symbols, 3);

  const dsp::cvec tx = ijam_duplicate(signal, symbol_len);
  const auto mask = ijam_mask(symbol_len, num_symbols, 0x5EC7);
  const dsp::cvec jam = ijam_jamming_waveform(mask, symbol_len, 25.0, 7);

  dsp::cvec rx(tx.size());
  for (std::size_t k = 0; k < tx.size(); ++k) rx[k] = tx[k] + jam[k];

  const dsp::cvec recovered = ijam_reconstruct(rx, mask, symbol_len);
  EXPECT_EQ(qpsk_errors(recovered, signal), 0u);
}

TEST(Ijam, EavesdropperSuffersHighErrorRate) {
  const std::size_t symbol_len = 64;
  const std::size_t num_symbols = 50;
  const dsp::cvec signal = random_qpsk(symbol_len * num_symbols, 5);
  const dsp::cvec tx = ijam_duplicate(signal, symbol_len);
  const auto mask = ijam_mask(symbol_len, num_symbols, 0xBEEF);
  const dsp::cvec jam = ijam_jamming_waveform(mask, symbol_len, 25.0, 9);
  dsp::cvec rx(tx.size());
  for (std::size_t k = 0; k < tx.size(); ++k) rx[k] = tx[k] + jam[k];

  for (const auto strategy :
       {EveStrategy::kFirstCopy, EveStrategy::kRandom}) {
    const dsp::cvec eve = ijam_eavesdrop(rx, symbol_len, strategy, 11);
    const double ser = static_cast<double>(qpsk_errors(eve, signal)) /
                       static_cast<double>(signal.size());
    // Half the picked samples are jammed at -14 dB SIR: SER near 0.35-0.5.
    EXPECT_GT(ser, 0.25) << static_cast<int>(strategy);
  }
}

TEST(Ijam, MinPowerEavesdropperBeatenByPowerControl) {
  // The min-power heuristic only helps when jamming is much stronger than
  // the signal; iJam counters with jamming near signal level. At 3 dB
  // jam-to-signal the heuristic still mispicks heavily.
  const std::size_t symbol_len = 64;
  const std::size_t num_symbols = 50;
  const dsp::cvec signal = random_qpsk(symbol_len * num_symbols, 13);
  const dsp::cvec tx = ijam_duplicate(signal, symbol_len);
  const auto mask = ijam_mask(symbol_len, num_symbols, 0xCAFE);
  const dsp::cvec jam = ijam_jamming_waveform(mask, symbol_len, 2.0, 15);
  dsp::cvec rx(tx.size());
  for (std::size_t k = 0; k < tx.size(); ++k) rx[k] = tx[k] + jam[k];

  const dsp::cvec eve =
      ijam_eavesdrop(rx, symbol_len, EveStrategy::kMinPower, 17);
  const double ser = static_cast<double>(qpsk_errors(eve, signal)) /
                     static_cast<double>(signal.size());
  EXPECT_GT(ser, 0.1);
  // While the legitimate receiver is still clean.
  const dsp::cvec recovered = ijam_reconstruct(rx, mask, symbol_len);
  EXPECT_EQ(qpsk_errors(recovered, signal), 0u);
}

TEST(Friendly, WaveformDeterministicPerKeyAndEpoch) {
  const FriendlyJammer jammer(0x1234, 1.0);
  const auto a = jammer.waveform(5, 256);
  const auto b = jammer.waveform(5, 256);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k], b[k]);
  const auto c = jammer.waveform(6, 256);
  bool differs = false;
  for (std::size_t k = 0; k < c.size(); ++k) differs |= !(a[k] == c[k]);
  EXPECT_TRUE(differs);
}

TEST(Friendly, AuthorizedReceiverCancelsJamming) {
  const FriendlyJammer jammer(0xA117, 4.0);
  const dsp::cvec signal = random_qpsk(4096, 19);
  const dsp::cvec jam = jammer.waveform(1, signal.size());

  dsp::cvec rx(signal.size());
  const dsp::cfloat channel_gain{0.8f, -0.3f};  // unknown to the receiver
  dsp::NoiseSource noise(1e-4, 21);
  for (std::size_t k = 0; k < rx.size(); ++k)
    rx[k] = signal[k] + channel_gain * jam[k] + noise.sample();

  const dsp::cvec cleaned = cancel_friendly_jamming(rx, jammer, 1);
  const double residual = cancellation_residual(rx, cleaned, signal);
  EXPECT_LT(residual, 0.05);  // >13 dB of jamming removed
  EXPECT_EQ(qpsk_errors(cleaned, signal), 0u);
}

TEST(Friendly, UnauthorizedReceiverCannotCancel) {
  const FriendlyJammer real(0xA117, 4.0);
  const FriendlyJammer wrong_key(0xBAD, 4.0);
  const dsp::cvec signal = random_qpsk(4096, 23);
  const dsp::cvec jam = real.waveform(2, signal.size());
  dsp::cvec rx(signal.size());
  for (std::size_t k = 0; k < rx.size(); ++k)
    rx[k] = signal[k] + 0.9f * jam[k];

  const dsp::cvec attempt = cancel_friendly_jamming(rx, wrong_key, 2);
  const double residual = cancellation_residual(rx, attempt, signal);
  EXPECT_GT(residual, 0.8);  // essentially nothing cancelled
  const double ser = static_cast<double>(qpsk_errors(attempt, signal)) /
                     static_cast<double>(signal.size());
  EXPECT_GT(ser, 0.1);
}

TEST(Friendly, WrongEpochAlsoFails) {
  const FriendlyJammer jammer(0xA117, 4.0);
  const dsp::cvec signal = random_qpsk(2048, 29);
  const dsp::cvec jam = jammer.waveform(3, signal.size());
  dsp::cvec rx(signal.size());
  for (std::size_t k = 0; k < rx.size(); ++k) rx[k] = signal[k] + jam[k];
  const dsp::cvec attempt = cancel_friendly_jamming(rx, jammer, 4);
  EXPECT_GT(cancellation_residual(rx, attempt, signal), 0.8);
}

}  // namespace
}  // namespace rjf::secure
