#include "fpga/cross_correlator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/fabric_units.h"
#include "dsp/noise.h"

namespace rjf::fpga {
namespace {

// A 64-sample complex test code with 4-phase structure.
dsp::cvec test_code() {
  dsp::cvec code(kCorrelatorLength);
  for (std::size_t k = 0; k < code.size(); ++k) {
    const double phase =
        2.0 * std::numbers::pi * static_cast<double>((k * 7) % 13) / 13.0;
    code[k] = dsp::cfloat{static_cast<float>(std::cos(phase)),
                          static_cast<float>(std::sin(phase))};
  }
  return code;
}

dsp::iqvec to_fabric(const dsp::cvec& x, float scale = 0.5f) {
  dsp::iqvec out(x.size());
  for (std::size_t k = 0; k < x.size(); ++k) out[k] = dsp::to_iq16(x[k] * scale);
  return out;
}

TEST(MakeTemplate, CoefficientsWithinThreeBits) {
  const auto tpl = core::make_template(test_code());
  for (std::size_t k = 0; k < kCorrelatorLength; ++k) {
    EXPECT_GE(tpl.coef_i[k], -4);
    EXPECT_LE(tpl.coef_i[k], 3);
    EXPECT_GE(tpl.coef_q[k], -4);
    EXPECT_LE(tpl.coef_q[k], 3);
  }
}

TEST(MakeTemplate, ZeroReferenceGivesZeroTemplate) {
  const auto tpl = core::make_template(dsp::cvec(64, dsp::cfloat{}));
  for (std::size_t k = 0; k < kCorrelatorLength; ++k) {
    EXPECT_EQ(tpl.coef_i[k], 0);
    EXPECT_EQ(tpl.coef_q[k], 0);
  }
}

TEST(MakeTemplate, ShortReferencePadsWithZeros) {
  const dsp::cvec code = test_code();
  const auto tpl = core::make_template(
      std::span<const dsp::cfloat>(code.data(), 16));
  bool any_nonzero_head = false;
  for (std::size_t k = 0; k < 16; ++k)
    any_nonzero_head |= tpl.coef_i[k] != 0 || tpl.coef_q[k] != 0;
  EXPECT_TRUE(any_nonzero_head);
  for (std::size_t k = 16; k < kCorrelatorLength; ++k) {
    EXPECT_EQ(tpl.coef_i[k], 0);
    EXPECT_EQ(tpl.coef_q[k], 0);
  }
}

TEST(CrossCorrelator, PeaksWhenCodeFullyEntered) {
  const dsp::cvec code = test_code();
  const auto tpl = core::make_template(code);
  CrossCorrelator corr;
  corr.set_coefficients(tpl.coef_i, tpl.coef_q);

  std::uint32_t peak = 0;
  std::size_t peak_at = 0;
  const auto samples = to_fabric(code);
  for (std::size_t k = 0; k < samples.size(); ++k) {
    const auto out = corr.step(samples[k]);
    if (out.metric > peak) {
      peak = out.metric;
      peak_at = k;
    }
  }
  // The metric must peak exactly when the last code sample enters (sample
  // 63), which is what makes T_xcorr_det = 64 samples = 2.56 us.
  EXPECT_EQ(peak_at, kCorrelatorLength - 1);
  // And the peak must be a large fraction of the theoretical maximum.
  EXPECT_GT(peak, corr.max_metric() / 3);
}

TEST(CrossCorrelator, TriggerRespectsThreshold) {
  const dsp::cvec code = test_code();
  const auto tpl = core::make_template(code);
  CrossCorrelator corr;
  corr.set_coefficients(tpl.coef_i, tpl.coef_q);

  // First find the peak, then re-run with thresholds around it.
  std::uint32_t peak = 0;
  for (const auto s : to_fabric(code))
    peak = std::max(peak, corr.step(s).metric);

  corr.reset();
  corr.set_threshold(peak - 1);
  bool triggered = false;
  for (const auto s : to_fabric(code)) triggered |= corr.step(s).trigger;
  EXPECT_TRUE(triggered);

  corr.reset();
  corr.set_threshold(peak);
  triggered = false;
  for (const auto s : to_fabric(code)) triggered |= corr.step(s).trigger;
  EXPECT_FALSE(triggered);  // strict comparison: metric > threshold
}

TEST(CrossCorrelator, LoadFromRegistersMatchesDirect) {
  const auto tpl = core::make_template(test_code());
  RegisterFile regs;
  program_template(regs, tpl);
  regs.write(Reg::kXcorrThreshold, 500);

  CrossCorrelator via_regs;
  via_regs.load_from_registers(regs);
  CrossCorrelator direct;
  direct.set_coefficients(tpl.coef_i, tpl.coef_q);
  direct.set_threshold(500);

  for (const auto s : to_fabric(test_code())) {
    const auto a = via_regs.step(s);
    const auto b = direct.step(s);
    ASSERT_EQ(a.metric, b.metric);
    ASSERT_EQ(a.trigger, b.trigger);
  }
}

TEST(CrossCorrelator, SignSlicingIgnoresAmplitude) {
  // The datapath slices sign bits, so scaling the input by 100x must not
  // change the metric (as long as signs survive quantisation).
  const dsp::cvec code = test_code();
  const auto tpl = core::make_template(code);
  CrossCorrelator small, large;
  small.set_coefficients(tpl.coef_i, tpl.coef_q);
  large.set_coefficients(tpl.coef_i, tpl.coef_q);
  for (std::size_t k = 0; k < code.size(); ++k) {
    const auto a = small.step(dsp::to_iq16(code[k] * 0.01f));
    const auto b = large.step(dsp::to_iq16(code[k] * 0.9f));
    ASSERT_EQ(a.metric, b.metric) << "k=" << k;
  }
}

TEST(CrossCorrelator, NoiseStaysWellBelowSignalPeak) {
  const dsp::cvec code = test_code();
  const auto tpl = core::make_template(code);
  CrossCorrelator corr;
  corr.set_coefficients(tpl.coef_i, tpl.coef_q);

  std::uint32_t signal_peak = 0;
  for (const auto s : to_fabric(code))
    signal_peak = std::max(signal_peak, corr.step(s).metric);

  corr.reset();
  dsp::NoiseSource noise(0.01, 42);
  std::uint32_t noise_peak = 0;
  for (int k = 0; k < 20000; ++k)
    noise_peak =
        std::max(noise_peak, corr.step(dsp::to_iq16(noise.sample())).metric);
  EXPECT_GT(signal_peak, noise_peak * 2);
}

TEST(CrossCorrelator, ResetClearsHistory) {
  const auto tpl = core::make_template(test_code());
  CrossCorrelator corr;
  corr.set_coefficients(tpl.coef_i, tpl.coef_q);
  for (const auto s : to_fabric(test_code())) (void)corr.step(s);
  corr.reset();
  CrossCorrelator fresh;
  fresh.set_coefficients(tpl.coef_i, tpl.coef_q);
  const dsp::IQ16 probe{1000, -1000};
  EXPECT_EQ(corr.step(probe).metric, fresh.step(probe).metric);
}

TEST(CrossCorrelator, MaxCorrelationInputHitsPeakWithoutOverflow) {
  // Regression test for the re*re / im*im squaring: the metric used to be
  // computed as static_cast<uint32_t>(re * re), squaring in plain int — a
  // signed-overflow UB pattern the width-checked types make impossible (the
  // squares now widen to Int<28> and the sum wraps into the 32-bit metric
  // register explicitly). Drive the absolute worst-case datapath excursion —
  // every coefficient at max magnitude (-4), every sign aligned — and check
  // the squared metric is exact at the peak. The CI UBSan job runs this
  // test, so any reintroduced unwidened square trips -fsanitize=undefined.
  CrossCorrelator corr;
  std::array<int, kCorrelatorLength> coef{};
  coef.fill(-4);
  corr.set_coefficients(coef, coef);
  // max_metric = (sum_k |ci|+|cq|)^2 = (64*8)^2 = 2^18: the largest value
  // this datapath can produce.
  EXPECT_EQ(corr.max_metric(), 512u * 512u);

  // All-negative samples align every sign with the all-negative template:
  // each rail's dot product saturates at +512 once the window fills.
  CrossCorrelator ref;
  ref.set_coefficients(coef, coef);
  std::uint32_t peak_fast = 0;
  std::uint32_t peak_ref = 0;
  for (std::size_t k = 0; k < kCorrelatorLength; ++k) {
    const dsp::IQ16 s{-30000, -30000};
    peak_fast = std::max(peak_fast, corr.step(s).metric);
    peak_ref = std::max(peak_ref, ref.step_reference(s).metric);
  }
  EXPECT_EQ(peak_fast, corr.max_metric());
  EXPECT_EQ(peak_ref, corr.max_metric());
}

TEST(CrossCorrelator, MaxMetricBound) {
  const auto tpl = core::make_template(test_code());
  CrossCorrelator corr;
  corr.set_coefficients(tpl.coef_i, tpl.coef_q);
  // max_metric is (sum |ci|+|cq|)^2 <= (64*6)^2.
  EXPECT_LE(corr.max_metric(), 384u * 384u);
  EXPECT_GT(corr.max_metric(), 0u);
}

}  // namespace
}  // namespace rjf::fpga
