// Parameterised property sweeps over the secure-communication schemes:
// the invariants must hold across symbol lengths, keys, and jam powers,
// not just at the single operating points of test_secure.cpp.
#include <gtest/gtest.h>

#include "dsp/rng.h"
#include "secure/friendly.h"
#include "secure/ijam.h"

namespace rjf::secure {
namespace {

dsp::cvec random_qpsk(std::size_t n, std::uint64_t seed) {
  dsp::Xoshiro256 rng(seed);
  dsp::cvec out(n);
  for (auto& s : out)
    s = dsp::cfloat{rng.next() & 1u ? 0.707f : -0.707f,
                    rng.next() & 1u ? 0.707f : -0.707f};
  return out;
}

std::size_t qpsk_errors(const dsp::cvec& a, const dsp::cvec& b) {
  std::size_t errors = 0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t k = 0; k < n; ++k)
    if ((a[k].real() >= 0) != (b[k].real() >= 0) ||
        (a[k].imag() >= 0) != (b[k].imag() >= 0))
      ++errors;
  return errors;
}

struct IjamCase {
  std::size_t symbol_len;
  double jam_power;
  std::uint64_t key;
};

class IjamSweep : public ::testing::TestWithParam<IjamCase> {};

TEST_P(IjamSweep, LegitPerfectEveDegraded) {
  const auto [symbol_len, jam_power, key] = GetParam();
  const std::size_t num_symbols = 2048 / symbol_len;
  const dsp::cvec signal = random_qpsk(symbol_len * num_symbols, key);
  const dsp::cvec tx = ijam_duplicate(signal, symbol_len);
  const auto mask = ijam_mask(symbol_len, num_symbols, key);
  const dsp::cvec jam = ijam_jamming_waveform(mask, symbol_len, jam_power, key);
  dsp::cvec rx(tx.size());
  for (std::size_t k = 0; k < tx.size(); ++k) rx[k] = tx[k] + jam[k];

  // Invariant 1: the mask holder always reconstructs exactly.
  EXPECT_EQ(qpsk_errors(ijam_reconstruct(rx, mask, symbol_len), signal), 0u);

  // Invariant 2: a mask-blind eavesdropper is measurably degraded whenever
  // the jamming is at least signal-level.
  if (jam_power >= 1.0) {
    const auto eve = ijam_eavesdrop(rx, symbol_len, EveStrategy::kRandom, key);
    EXPECT_GT(qpsk_errors(eve, signal), signal.size() / 20);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, IjamSweep,
    ::testing::Values(IjamCase{16, 1.0, 0x11}, IjamCase{16, 16.0, 0x22},
                      IjamCase{64, 1.0, 0x33}, IjamCase{64, 16.0, 0x44},
                      IjamCase{128, 4.0, 0x55}, IjamCase{256, 0.5, 0x66}));

class FriendlySweep : public ::testing::TestWithParam<double> {};

TEST_P(FriendlySweep, CancellationHoldsAcrossJamPowers) {
  const double jam_power = GetParam();
  const FriendlyJammer ally(0xF00D, jam_power);
  const dsp::cvec signal = random_qpsk(4096, 0x77);
  const dsp::cvec jam = ally.waveform(9, signal.size());
  dsp::cvec rx(signal.size());
  for (std::size_t k = 0; k < rx.size(); ++k)
    rx[k] = signal[k] + dsp::cfloat{0.6f, 0.5f} * jam[k];

  const auto cleaned = cancel_friendly_jamming(rx, ally, 9);
  // Stronger jamming is actually EASIER to estimate and cancel; the
  // residual must stay small across the whole range.
  EXPECT_LT(cancellation_residual(rx, cleaned, signal), 0.12) << jam_power;
  EXPECT_EQ(qpsk_errors(cleaned, signal), 0u) << jam_power;
}

INSTANTIATE_TEST_SUITE_P(Powers, FriendlySweep,
                         ::testing::Values(0.5, 1.0, 4.0, 16.0, 64.0));

}  // namespace
}  // namespace rjf::secure
