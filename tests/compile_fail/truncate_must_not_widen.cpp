// truncate<W2>() is a declared lossy bit-drop; widening through it must not
// compile (use zext()/sext() to widen).
#include "fpga/hw_int.h"

int main() {
  const rjf::fpga::hw::Int<8> x(-1);
#ifdef RJF_EXPECT_COMPILE_FAIL
  [[maybe_unused]] const auto y = x.truncate<16>();
#endif
  return static_cast<int>(x.i64());
}
