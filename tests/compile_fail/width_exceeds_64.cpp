// Hardware integers model at most the 64-bit word of the C++ model; wider
// signals must be decomposed (or compared via shifted_gt's 128-bit path).
#include "fpga/hw_int.h"

int main() {
#ifdef RJF_EXPECT_COMPILE_FAIL
  [[maybe_unused]] rjf::fpga::hw::UInt<65> x;
#else
  [[maybe_unused]] rjf::fpga::hw::UInt<64> x;
#endif
  return 0;
}
