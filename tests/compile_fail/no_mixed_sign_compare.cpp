// Comparing signed and unsigned hardware integers has no single RTL
// meaning; the caller must cross the domain explicitly (to_signed() /
// to_unsigned()) before comparing.
#include "fpga/hw_int.h"

int main() {
  const rjf::fpga::hw::UInt<8> u(1u);
  const rjf::fpga::hw::Int<8> s(1);
#ifdef RJF_EXPECT_COMPILE_FAIL
  [[maybe_unused]] const bool eq = (u == s);
#endif
  return static_cast<int>(u.u64() + static_cast<unsigned>(s.i64() > 0));
}
