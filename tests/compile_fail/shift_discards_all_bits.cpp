// A static right shift by the full width would discard every bit — in RTL
// terms, wiring nothing to something. Rejected at compile time.
#include "fpga/hw_int.h"

int main() {
  const rjf::fpga::hw::UInt<4> x(9u);
#ifdef RJF_EXPECT_COMPILE_FAIL
  [[maybe_unused]] const auto y = x.shr<4>();
#else
  [[maybe_unused]] const auto y = x.shr<3>();
#endif
  return static_cast<int>(x.u64());
}
