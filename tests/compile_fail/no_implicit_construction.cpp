// Construction from a raw integer is explicit: a plain assignment would be
// an implicit width decision, which the type system exists to forbid.
#include "fpga/hw_int.h"

int main() {
#ifdef RJF_EXPECT_COMPILE_FAIL
  rjf::fpga::hw::UInt<8> x = 5;
#else
  rjf::fpga::hw::UInt<8> x(5u);
#endif
  return static_cast<int>(x.u64());
}
