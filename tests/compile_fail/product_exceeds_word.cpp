// Widening multiply carries the exact A+B-bit result type; a product whose
// true width exceeds the 64-bit model word is a compile error at the
// operator, not a runtime wrap.
#include "fpga/hw_int.h"

int main() {
  const rjf::fpga::hw::UInt<40> a(1u);
  const rjf::fpga::hw::UInt<40> b(2u);
#ifdef RJF_EXPECT_COMPILE_FAIL
  [[maybe_unused]] const auto p = a * b;  // needs 80 bits
#endif
  return static_cast<int>(a.u64() + b.u64());
}
