// narrow<W2>() is a declared-lossless *narrowing*; widening through it must
// not compile (use zext()/sext() to widen).
#include "fpga/hw_int.h"

int main() {
  const rjf::fpga::hw::UInt<8> x(1u);
#ifdef RJF_EXPECT_COMPILE_FAIL
  [[maybe_unused]] const auto y = x.narrow<16>();
#endif
  return static_cast<int>(x.u64());
}
