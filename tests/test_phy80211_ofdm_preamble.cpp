#include <gtest/gtest.h>

#include <cmath>

#include "dsp/db.h"
#include "dsp/fft.h"
#include "dsp/rng.h"
#include "phy80211/constellation.h"
#include "phy80211/ofdm.h"
#include "phy80211/preamble.h"

namespace rjf::phy80211 {
namespace {

TEST(Ofdm, DataCarrierLayout) {
  const auto& carriers = data_carriers();
  EXPECT_EQ(carriers.size(), kNumDataCarriers);
  for (const int k : carriers) {
    EXPECT_NE(k, 0);
    EXPECT_NE(std::abs(k), 7);
    EXPECT_NE(std::abs(k), 21);
    EXPECT_LE(std::abs(k), 26);
  }
  // Strictly increasing.
  for (std::size_t n = 1; n < carriers.size(); ++n)
    EXPECT_GT(carriers[n], carriers[n - 1]);
}

TEST(Ofdm, FftBinMapping) {
  EXPECT_EQ(fft_bin(1), 1u);
  EXPECT_EQ(fft_bin(26), 26u);
  EXPECT_EQ(fft_bin(-1), 63u);
  EXPECT_EQ(fft_bin(-26), 38u);
}

TEST(Ofdm, SymbolLengthAndCp) {
  dsp::Xoshiro256 rng(1);
  dsp::cvec data(48);
  for (auto& s : data) s = rng.complex_gaussian();
  const dsp::cvec sym = modulate_symbol(data, 0);
  ASSERT_EQ(sym.size(), kSymbolLen);
  // The cyclic prefix equals the tail of the useful part.
  for (std::size_t k = 0; k < kCpLen; ++k) {
    EXPECT_NEAR(sym[k].real(), sym[kFftSize + k].real(), 1e-5f);
    EXPECT_NEAR(sym[k].imag(), sym[kFftSize + k].imag(), 1e-5f);
  }
}

TEST(Ofdm, ModulateDemodulateRoundTrip) {
  dsp::Xoshiro256 rng(2);
  for (std::size_t symbol_index : {0u, 1u, 5u, 126u, 127u}) {
    dsp::cvec data(48);
    for (auto& s : data) s = rng.complex_gaussian();
    const dsp::cvec sym = modulate_symbol(data, symbol_index);
    const dsp::cvec flat(kFftSize, dsp::cfloat{1.0f, 0.0f});
    const dsp::cvec back = demodulate_symbol(sym, flat, symbol_index);
    ASSERT_EQ(back.size(), 48u);
    for (std::size_t k = 0; k < 48; ++k) {
      EXPECT_NEAR(back[k].real(), data[k].real(), 1e-3f) << k;
      EXPECT_NEAR(back[k].imag(), data[k].imag(), 1e-3f) << k;
    }
  }
}

TEST(Ofdm, PilotPolarityFollowsSequence) {
  // p0..p3 are +1, p4..p6 are -1 per the 802.11 sequence.
  EXPECT_FLOAT_EQ(pilot_polarity(0), 1.0f);
  EXPECT_FLOAT_EQ(pilot_polarity(3), 1.0f);
  EXPECT_FLOAT_EQ(pilot_polarity(4), -1.0f);
  EXPECT_FLOAT_EQ(pilot_polarity(6), -1.0f);
  // Periodic with 127.
  EXPECT_EQ(pilot_polarity(5), pilot_polarity(5 + 127));
}

TEST(Ofdm, PhaseErrorCorrectedByPilots) {
  dsp::Xoshiro256 rng(3);
  dsp::cvec data(48);
  for (auto& s : data) s = rng.complex_gaussian();
  dsp::cvec sym = modulate_symbol(data, 1);
  // A common phase rotation (e.g. residual CFO) must be removed.
  const dsp::cfloat rot{std::cos(0.3f), std::sin(0.3f)};
  for (auto& s : sym) s *= rot;
  const dsp::cvec flat(kFftSize, dsp::cfloat{1.0f, 0.0f});
  const dsp::cvec back = demodulate_symbol(sym, flat, 1);
  for (std::size_t k = 0; k < 48; ++k) {
    EXPECT_NEAR(back[k].real(), data[k].real(), 5e-3f);
    EXPECT_NEAR(back[k].imag(), data[k].imag(), 5e-3f);
  }
}

TEST(Preamble, ShortSymbolPeriodicity) {
  // The STS has period 16 at 20 MSPS; the full short preamble is 10 copies.
  const dsp::cvec sp = short_preamble();
  ASSERT_EQ(sp.size(), kShortPreambleLen);
  for (std::size_t k = 0; k + 16 < sp.size(); ++k) {
    EXPECT_NEAR(sp[k].real(), sp[k + 16].real(), 1e-4f);
    EXPECT_NEAR(sp[k].imag(), sp[k + 16].imag(), 1e-4f);
  }
}

TEST(Preamble, LongPreambleStructure) {
  const dsp::cvec lp = long_preamble();
  const dsp::cvec lts = long_training_symbol();
  ASSERT_EQ(lp.size(), kLongPreambleLen);
  // GI2 is the last 32 samples of the LTS.
  for (std::size_t k = 0; k < 32; ++k)
    EXPECT_NEAR(lp[k].real(), lts[32 + k].real(), 1e-5f);
  // Two identical LTS copies follow.
  for (std::size_t k = 0; k < kLongSymbolLen; ++k) {
    EXPECT_NEAR(lp[32 + k].real(), lts[k].real(), 1e-5f);
    EXPECT_NEAR(lp[32 + 64 + k].real(), lts[k].real(), 1e-5f);
  }
}

TEST(Preamble, UnitMeanPower) {
  EXPECT_NEAR(dsp::mean_power(short_training_symbol()), 1.0, 1e-3);
  EXPECT_NEAR(dsp::mean_power(long_training_symbol()), 1.0, 1e-3);
}

TEST(Preamble, PlcpPreambleIs16Microseconds) {
  // 320 samples at 20 MSPS = 16 us (8 us short + 8 us long).
  EXPECT_EQ(plcp_preamble().size(), 320u);
}

TEST(Preamble, LtsSpectrumIsPlusMinusOne) {
  const dsp::cvec freq = lts_frequency_domain();
  ASSERT_EQ(freq.size(), kFftSize);
  int active = 0;
  for (std::size_t bin = 0; bin < kFftSize; ++bin) {
    const float re = freq[bin].real();
    EXPECT_FLOAT_EQ(freq[bin].imag(), 0.0f);
    if (re != 0.0f) {
      EXPECT_NEAR(std::abs(re), 1.0f, 1e-6f);
      ++active;
    }
  }
  EXPECT_EQ(active, 52);
  EXPECT_FLOAT_EQ(freq[0].real(), 0.0f);  // DC null
}

TEST(Preamble, StsOccupiesEveryFourthCarrier) {
  const dsp::cvec sts = short_training_symbol();
  // Period-16 waveform at 64-FFT granularity -> energy only in bins that
  // are multiples of 4.
  dsp::cvec four_periods;
  for (int rep = 0; rep < 4; ++rep)
    four_periods.insert(four_periods.end(), sts.begin(), sts.end());
  dsp::fft(four_periods);
  for (std::size_t bin = 0; bin < 64; ++bin) {
    if (bin % 4 != 0) {
      EXPECT_NEAR(std::abs(four_periods[bin]), 0.0f, 1e-3f) << bin;
    }
  }
}

}  // namespace
}  // namespace rjf::phy80211
