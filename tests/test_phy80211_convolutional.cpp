#include "phy80211/convolutional.h"

#include <gtest/gtest.h>

#include "dsp/rng.h"

namespace rjf::phy80211 {
namespace {

Bits random_bits(std::size_t n, std::uint64_t seed) {
  Bits bits(n);
  dsp::Xoshiro256 rng(seed);
  for (auto& b : bits) b = rng.uniform() < 0.5 ? 0 : 1;
  return bits;
}

Bits with_tail(Bits data) {
  for (int k = 0; k < 6; ++k) data.push_back(0);
  return data;
}

TEST(Convolutional, RateOutputSizes) {
  const Bits data = with_tail(random_bits(96, 1));
  EXPECT_EQ(convolutional_encode(data).size(), data.size() * 2);
  EXPECT_EQ(encode_at_rate(data, CodeRate::kHalf).size(), data.size() * 2);
  EXPECT_EQ(encode_at_rate(data, CodeRate::kTwoThirds).size(),
            data.size() * 3 / 2);
  EXPECT_EQ(encode_at_rate(data, CodeRate::kThreeQuarters).size(),
            data.size() * 4 / 3);
}

TEST(Convolutional, RateFractions) {
  EXPECT_EQ(rate_fraction(CodeRate::kHalf).num, 1u);
  EXPECT_EQ(rate_fraction(CodeRate::kHalf).den, 2u);
  EXPECT_EQ(rate_fraction(CodeRate::kTwoThirds).num, 2u);
  EXPECT_EQ(rate_fraction(CodeRate::kThreeQuarters).den, 4u);
}

TEST(Convolutional, KnownEncoderOutput) {
  // A single 1 followed by zeros reads out the generator polynomials.
  const Bits impulse = {1, 0, 0, 0, 0, 0, 0};
  const Bits coded = convolutional_encode(impulse);
  // g0 = 133 octal = 1011011, g1 = 171 octal = 1111001 (MSB = oldest tap).
  // With the impulse sliding through, output pairs read the taps in order.
  const Bits expected_a = {1, 1, 0, 1, 1, 0, 1};  // g0 taps, newest first
  const Bits expected_b = {1, 0, 0, 1, 1, 1, 1};  // g1 taps, newest first
  for (std::size_t k = 0; k < 7; ++k) {
    EXPECT_EQ(coded[2 * k], expected_a[k]) << "a" << k;
    EXPECT_EQ(coded[2 * k + 1], expected_b[k]) << "b" << k;
  }
}

class ViterbiRoundTrip : public ::testing::TestWithParam<CodeRate> {};

TEST_P(ViterbiRoundTrip, CleanChannel) {
  const CodeRate rate = GetParam();
  const Bits data = with_tail(random_bits(240, 7));
  const Bits coded = encode_at_rate(data, rate);
  const Bits decoded = decode_at_rate(coded, rate, data.size());
  EXPECT_EQ(decoded, data);
}

TEST_P(ViterbiRoundTrip, CorrectsScatteredBitErrors) {
  const CodeRate rate = GetParam();
  const Bits data = with_tail(random_bits(240, 11));
  Bits coded = encode_at_rate(data, rate);
  // Flip well-separated bits — within the code's correction ability.
  for (std::size_t k = 20; k < coded.size(); k += 97) coded[k] ^= 1;
  const Bits decoded = decode_at_rate(coded, rate, data.size());
  EXPECT_EQ(decoded, data);
}

INSTANTIATE_TEST_SUITE_P(AllRates, ViterbiRoundTrip,
                         ::testing::Values(CodeRate::kHalf,
                                           CodeRate::kTwoThirds,
                                           CodeRate::kThreeQuarters));

TEST(Viterbi, BurstErrorBreaksDecoding) {
  // A long enough corrupted burst must defeat the decoder — this is
  // exactly why short jamming bursts kill whole frames.
  const Bits data = with_tail(random_bits(240, 13));
  Bits coded = encode_at_rate(data, CodeRate::kHalf);
  for (std::size_t k = 100; k < 260; ++k) coded[k] ^= (k % 2);
  const Bits decoded = decode_at_rate(coded, CodeRate::kHalf, data.size());
  EXPECT_NE(decoded, data);
}

TEST(Viterbi, ErasuresAloneRecoverable) {
  // Depuncturing inserts erasures; rate 3/4 drops 1/3 of the mother bits
  // and the decoder must still recover error-free input.
  const Bits data = with_tail(random_bits(120, 17));
  const Bits punctured = encode_at_rate(data, CodeRate::kThreeQuarters);
  const Bits mother = depuncture(punctured, CodeRate::kThreeQuarters,
                                 data.size() * 2);
  std::size_t erasures = 0;
  for (const auto b : mother) erasures += (b == 2);
  EXPECT_EQ(erasures, mother.size() / 3);
  EXPECT_EQ(viterbi_decode(mother), data);
}

TEST(Puncture, DepunctureRestoresPositions) {
  const Bits data = with_tail(random_bits(48, 19));
  const Bits mother = convolutional_encode(data);
  for (const CodeRate rate :
       {CodeRate::kHalf, CodeRate::kTwoThirds, CodeRate::kThreeQuarters}) {
    const Bits punctured = puncture(mother, rate);
    const Bits restored = depuncture(punctured, rate, mother.size());
    ASSERT_EQ(restored.size(), mother.size());
    for (std::size_t k = 0; k < mother.size(); ++k) {
      if (restored[k] != 2) {
        ASSERT_EQ(restored[k], mother[k]) << "k=" << k;
      }
    }
  }
}

TEST(Viterbi, AllZeroInput) {
  const Bits data(100, 0);
  const Bits decoded =
      decode_at_rate(encode_at_rate(data, CodeRate::kHalf), CodeRate::kHalf,
                     data.size());
  EXPECT_EQ(decoded, data);
}

}  // namespace
}  // namespace rjf::phy80211
