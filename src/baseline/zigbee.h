// Minimal 802.15.4 (Zigbee) 2.4 GHz O-QPSK PHY — the waveform substrate
// for the prior-art comparison: Wilhelm et al. (WiSec'11) demonstrated the
// only earlier real-time SDR reactive jammer, "capable of operating in
// low-rate, Zigbee-based 802.15.4 networks" (paper §1). Reproducing their
// operating regime requires the 802.15.4 frame timing: 2 Mchip/s DSSS,
// 32-chip PN per 4-bit symbol, 62.5 ksym/s, SHR = 8 preamble symbols + SFD.
//
// Modulation is modelled at one complex sample per two chips (even chips
// on I, odd on Q), which preserves the spreading structure and timing; the
// half-sine pulse shaping of true O-QPSK adds nothing to these experiments.
#pragma once

#include <array>
#include <cstdint>

#include "dsp/types.h"

namespace rjf::baseline {

inline constexpr double kChipRateHz = 2e6;
inline constexpr double kSampleRateHz = 1e6;  // 2 chips per complex sample
inline constexpr std::size_t kChipsPerSymbol = 32;
inline constexpr double kSymbolRateHz = 62500.0;

/// The 32-chip PN sequence for data symbol 0..15.
[[nodiscard]] std::array<int, kChipsPerSymbol> chip_sequence(unsigned symbol);

/// Map 4-bit symbols to the complex baseband stream (16 samples/symbol).
[[nodiscard]] dsp::cvec modulate_symbols(std::span<const std::uint8_t> symbols);

/// Build a full PPDU: SHR (8 zero-symbols + SFD 0xA7) | PHR (frame length)
/// | PSDU. Returns the 1 MSPS complex waveform, unit mean power.
[[nodiscard]] dsp::cvec build_frame(std::span<const std::uint8_t> psdu);

/// Duration helpers.
[[nodiscard]] double shr_duration_s() noexcept;               // 160 us + SFD
[[nodiscard]] double frame_duration_s(std::size_t psdu_bytes) noexcept;

}  // namespace rjf::baseline
