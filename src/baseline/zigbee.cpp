#include "baseline/zigbee.h"

#include <cmath>

#include "dsp/db.h"

namespace rjf::baseline {
namespace {

// 802.15.4 symbol-0 chip sequence (clause 10.2.4 table); symbols 1..7 are
// 4-chip cyclic shifts, symbols 8..15 conjugate the odd-indexed chips.
constexpr std::array<int, kChipsPerSymbol> kPn0 = {
    1, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1, 1,
    0, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0};

}  // namespace

std::array<int, kChipsPerSymbol> chip_sequence(unsigned symbol) {
  symbol &= 0xF;
  const unsigned base = symbol & 0x7;
  std::array<int, kChipsPerSymbol> chips{};
  for (std::size_t c = 0; c < kChipsPerSymbol; ++c)
    chips[c] = kPn0[(c + 4 * base) % kChipsPerSymbol];
  if (symbol >= 8)
    for (std::size_t c = 1; c < kChipsPerSymbol; c += 2) chips[c] ^= 1;
  return chips;
}

dsp::cvec modulate_symbols(std::span<const std::uint8_t> symbols) {
  dsp::cvec out;
  out.reserve(symbols.size() * kChipsPerSymbol / 2);
  const float a = 1.0f / std::sqrt(2.0f);
  for (const std::uint8_t symbol : symbols) {
    const auto chips = chip_sequence(symbol);
    for (std::size_t c = 0; c + 1 < kChipsPerSymbol; c += 2) {
      out.emplace_back(chips[c] ? a : -a, chips[c + 1] ? a : -a);
    }
  }
  return out;
}

dsp::cvec build_frame(std::span<const std::uint8_t> psdu) {
  std::vector<std::uint8_t> symbols;
  symbols.reserve(2 * (6 + psdu.size()));
  // SHR: preamble = 8 symbols of 0, SFD = 0xA7 low nibble first.
  for (int k = 0; k < 8; ++k) symbols.push_back(0);
  symbols.push_back(0x7);
  symbols.push_back(0xA);
  // PHR: 7-bit frame length, low nibble first.
  const auto len = static_cast<std::uint8_t>(psdu.size() & 0x7F);
  symbols.push_back(len & 0xF);
  symbols.push_back((len >> 4) & 0xF);
  for (const std::uint8_t byte : psdu) {
    symbols.push_back(byte & 0xF);
    symbols.push_back((byte >> 4) & 0xF);
  }
  dsp::cvec wave = modulate_symbols(symbols);
  dsp::set_mean_power(std::span<dsp::cfloat>(wave), 1.0);
  return wave;
}

double shr_duration_s() noexcept { return 10.0 / kSymbolRateHz; }  // 160 us

double frame_duration_s(std::size_t psdu_bytes) noexcept {
  const double symbols = 12.0 + 2.0 * static_cast<double>(psdu_bytes);
  return symbols / kSymbolRateHz;
}

}  // namespace rjf::baseline
