#include "baseline/wilhelm_jammer.h"

#include <algorithm>

namespace rjf::baseline {

double WilhelmJammer::sample_reaction_s() {
  const double latency =
      model_.mean_latency_s + model_.jitter_s * rng_.gaussian();
  return std::max(latency, model_.min_latency_s);
}

double WilhelmJammer::fraction_jammable(double frame_duration_s) {
  const double reaction = sample_reaction_s();
  if (reaction >= frame_duration_s) return 0.0;
  return 1.0 - reaction / frame_duration_s;
}

bool WilhelmJammer::hits_before(double deadline_s) {
  return sample_reaction_s() < deadline_s;
}

}  // namespace rjf::baseline
