// Model of the prior-art reactive jammer: Wilhelm, Martinovic, Schmitt &
// Lenders, "Reactive Jamming in Wireless Networks: How Realistic is the
// Threat?" (WiSec 2011) — the single earlier study the paper found that
// performs real-time SDR reactive jamming, on low-rate 802.15.4 networks.
//
// Its detection runs in the USRP2's host/driver path, so the reaction time
// is dominated by sample buffering across the Gigabit-Ethernet transport
// plus host processing and the TX-side buffer drain: tens of microseconds
// with jitter, rather than this paper's 8 fabric clocks. The model samples
// a reaction latency per event from a truncated Gaussian whose defaults
// follow the WiSec'11 operating regime, then asks the usual question: how
// much of the victim frame is still in the air when jamming energy lands?
#pragma once

#include <cstdint>

#include "dsp/rng.h"

namespace rjf::baseline {

struct WilhelmModel {
  // USRP2 transport buffering + host detection + TX path, seconds.
  double mean_latency_s = 35e-6;
  double jitter_s = 10e-6;     // 1-sigma
  double min_latency_s = 15e-6;  // transport floor
};

class WilhelmJammer {
 public:
  explicit WilhelmJammer(WilhelmModel model = {}, std::uint64_t seed = 0x1514)
      : model_(model), rng_(seed) {}

  /// Sample one detect-to-RF latency (seconds).
  [[nodiscard]] double sample_reaction_s();

  /// Fraction of a frame of `frame_duration_s` still on the air when the
  /// jamming burst starts (0 = missed entirely), for a frame whose
  /// detectable energy starts at t = 0.
  [[nodiscard]] double fraction_jammable(double frame_duration_s);

  /// Can the jammer hit the frame before time `deadline_s` (e.g. the end
  /// of the PHY header, for surgical preamble attacks)?
  [[nodiscard]] bool hits_before(double deadline_s);

  [[nodiscard]] const WilhelmModel& model() const noexcept { return model_; }

 private:
  WilhelmModel model_;
  dsp::Xoshiro256 rng_;
};

}  // namespace rjf::baseline
