// Full USRP N210 jammer radio: SBX front-end, 14-bit ADC, the custom FPGA
// DSP core at the 25 MSPS point of the DDC chain, 16-bit DAC, and the UHD
// settings bus for host control (paper Fig. 1).
//
// Both TX and RX chains are initialised together at start-up (paper §2.1)
// so there is no RX->TX switching cost; stream() is therefore full-duplex:
// it consumes receive baseband and produces the transmit baseband emitted
// over the same time span, sample-aligned, which is exactly what the
// channel model needs to superimpose jamming onto ongoing traffic.
#pragma once

#include <cstdint>
#include <vector>

#include "dsp/types.h"
#include "fpga/dsp_core.h"
#include "obs/event_ring.h"
#include "radio/adc_dac.h"
#include "radio/frontend.h"
#include "radio/settings_bus.h"

namespace rjf::radio {

class RxFaultHook;
class BusFaultHook;

/// One contiguous interval of RF jamming energy, in 25 MSPS sample units
/// relative to the start of the stream() call.
struct JamBurst {
  std::size_t start_sample = 0;
  std::size_t length = 0;
};

class UsrpN210 {
 public:
  UsrpN210();

  [[nodiscard]] SbxFrontend& frontend() noexcept { return frontend_; }
  [[nodiscard]] fpga::DspCore& core() noexcept { return core_; }
  [[nodiscard]] const fpga::DspCore& core() const noexcept { return core_; }

  /// Host register write through the settings bus (applies after latency).
  void write_register(fpga::Reg addr, std::uint32_t value);

  /// Setup-time write: applies immediately and re-latches the datapath.
  /// Use before streaming starts, like programming the device at start-up.
  void write_register_now(fpga::Reg addr, std::uint32_t value);

  struct StreamResult {
    dsp::cvec tx;                  // emitted jamming baseband, rx-aligned
    std::vector<JamBurst> bursts;  // where the jammer was on the air
    std::uint64_t jam_triggers = 0;
    std::uint64_t xcorr_detections = 0;
    std::uint64_t energy_high_detections = 0;
    std::uint64_t energy_low_detections = 0;
    // Fault/recovery accounting for this block. last_trigger_vita is
    // captured here (not read back from feedback()) so callers that reset
    // detection state after a degraded stream still see the trigger time.
    std::uint64_t last_trigger_vita = 0;
    std::uint64_t overflow_gaps = 0;   // gaps skipped in this block
    std::uint64_t samples_lost = 0;    // rx samples inside those gaps
    bool adc_clipped = false;          // any sample clipped in the ADC
  };

  /// Run the radio over a block of receive baseband at 25 MSPS. The whole
  /// block is ADC-converted up front and pushed through the DSP core with
  /// DspCore::run_block(), chunked only where an in-flight settings-bus
  /// write lands (so mid-stream reconfiguration keeps its exact latency).
  StreamResult stream(std::span<const dsp::cfloat> rx);

  /// Same full-duplex pass over samples already in the fabric (DDC-output)
  /// representation, skipping the front-end gain and ADC models. Network
  /// simulations that synthesise fabric-domain baseband directly use this
  /// to avoid the float round-trip.
  StreamResult stream_fabric(std::span<const dsp::IQ16> rx);

  [[nodiscard]] const fpga::HostFeedback& feedback() const noexcept {
    return core_.feedback();
  }
  [[nodiscard]] std::uint64_t now_ticks() const noexcept {
    return feedback().vita_ticks;
  }
  [[nodiscard]] const SettingsBus& settings_bus() const noexcept { return bus_; }
  [[nodiscard]] SettingsBus& settings_bus() noexcept { return bus_; }

  /// Attach the telemetry event ring to the whole radio (nullptr
  /// detaches): the fabric core pushes trigger/jam events and sampled
  /// per-strobe snapshots, the settings bus reports write issue/completion,
  /// and each stream call is bracketed by kStreamStart/kStreamEnd events
  /// carrying the sample count. Inline-drain rings are drained at each
  /// stream boundary, so by the time stream() returns the consumer has
  /// seen every record.
  void attach_ring(obs::EventRing* ring) noexcept {
    ring_ = ring;
    core_.set_ring(ring);
    bus_.set_ring(ring);
  }
  [[nodiscard]] obs::EventRing* ring() const noexcept { return ring_; }

  /// Attach fault hooks (nullptr detaches either). The rx hook mutates the
  /// receive baseband and declares overflow gaps; the bus hook stalls or
  /// drops register writes. Attaching rewinds the absolute rx stream cursor
  /// to 0, so a hook's sample-indexed fault plan starts at the next
  /// stream() call. With both hooks null — or hooks whose plans are empty —
  /// the radio is bit-identical to an unhooked one.
  void attach_fault_hooks(RxFaultHook* rx_hook, BusFaultHook* bus_hook) noexcept {
    rx_fault_ = rx_hook;
    bus_.set_fault_hook(bus_hook);
    rx_cursor_ = 0;
  }
  /// Absolute rx stream position (samples consumed by stream() since the
  /// last attach_fault_hooks()).
  [[nodiscard]] std::uint64_t rx_cursor() const noexcept { return rx_cursor_; }

 private:
  SbxFrontend frontend_;
  Adc adc_;
  Dac dac_;
  fpga::DspCore core_;
  SettingsBus bus_;
  obs::EventRing* ring_ = nullptr;
  RxFaultHook* rx_fault_ = nullptr;
  std::uint64_t rx_cursor_ = 0;
};

}  // namespace rjf::radio
