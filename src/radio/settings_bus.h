// UHD settings-bus latency model.
//
// Register writes from the host cross the gigabit-Ethernet + settings-bus
// path before they land in the fabric register file. The paper leans on
// this for its reconfigurability claim: "on-the-fly jamming personalities
// can be changed with a small latency equivalent to the latency of the UHD
// user setting bus (hundreds of ns)". This model queues writes with a
// per-transaction latency and applies them when fabric time passes the
// completion timestamp.
#pragma once

#include <cstdint>
#include <deque>

#include "fpga/register_file.h"
#include "obs/events.h"

namespace rjf::radio {

class SettingsBus {
 public:
  /// `latency_cycles`: fabric clocks (10 ns each) per register write.
  /// Default 40 cycles = 400 ns, inside the paper's "hundreds of ns".
  explicit SettingsBus(std::uint32_t latency_cycles = 40) noexcept
      : latency_cycles_(latency_cycles) {}

  /// Enqueue a write issued at fabric time `now_ticks`.
  void write(fpga::Reg addr, std::uint32_t value,
             std::uint64_t now_ticks);

  /// Apply every write whose completion time has passed. Returns the number
  /// of writes applied (callers re-latch the datapath when > 0).
  std::size_t service(fpga::RegisterFile& regs, std::uint64_t now_ticks);

  [[nodiscard]] bool idle() const noexcept { return pending_.empty(); }
  [[nodiscard]] std::uint32_t latency_cycles() const noexcept {
    return latency_cycles_;
  }

  /// Completion time of the last enqueued write (0 when none pending).
  [[nodiscard]] std::uint64_t last_completion() const noexcept;

  /// Completion time of the earliest pending write (UINT64_MAX when none).
  /// The block-streaming path uses this to chop a receive block exactly at
  /// the sample before which the next in-flight write lands.
  [[nodiscard]] std::uint64_t next_completion() const noexcept;

  /// Attach a telemetry sink (nullptr detaches): each write is reported
  /// when issued and again when it lands in the register file, with the
  /// register address as the event value.
  void set_sink(obs::FabricSink* sink) noexcept { sink_ = sink; }

 private:
  struct Pending {
    fpga::Reg addr;
    std::uint32_t value;
    std::uint64_t completes_at;
  };
  std::uint32_t latency_cycles_;
  std::deque<Pending> pending_;
  obs::FabricSink* sink_ = nullptr;
};

}  // namespace rjf::radio
