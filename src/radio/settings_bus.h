// UHD settings-bus latency model.
//
// Register writes from the host cross the gigabit-Ethernet + settings-bus
// path before they land in the fabric register file. The paper leans on
// this for its reconfigurability claim: "on-the-fly jamming personalities
// can be changed with a small latency equivalent to the latency of the UHD
// user setting bus (hundreds of ns)". This model queues writes with a
// per-transaction latency and applies them when fabric time passes the
// completion timestamp.
//
// Fault model: a BusFaultHook (see radio/fault_hooks.h) may stall a write
// (extra latency cycles) or drop it in transit. The host discovers a drop
// at the write's completion deadline — its acknowledgement timeout — and
// re-issues it at the back of the queue, up to retry_limit() attempts, then
// abandons it. Every outcome is pushed into the attached telemetry ring.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "fpga/register_file.h"
#include "obs/event_ring.h"

namespace rjf::radio {

class BusFaultHook;

class SettingsBus {
 public:
  /// `latency_cycles`: fabric clocks (10 ns each) per register write.
  /// Default 40 cycles = 400 ns, inside the paper's "hundreds of ns".
  explicit SettingsBus(std::uint32_t latency_cycles = 40) noexcept
      : latency_cycles_(latency_cycles) {}

  /// Enqueue a write issued at fabric time `now_ticks`.
  void write(fpga::Reg addr, std::uint32_t value,
             std::uint64_t now_ticks);

  /// Apply every write whose completion time has passed; re-issue dropped
  /// writes whose deadline has passed (bounded by retry_limit()). Returns
  /// the number of writes applied (callers re-latch the datapath when > 0).
  std::size_t service(fpga::RegisterFile& regs, std::uint64_t now_ticks);

  [[nodiscard]] bool idle() const noexcept { return pending_.empty(); }
  [[nodiscard]] std::uint32_t latency_cycles() const noexcept {
    return latency_cycles_;
  }

  /// Completion time of the last enqueued write; nullopt when the bus is
  /// idle. (Historically an idle bus returned 0 here and UINT64_MAX from
  /// next_completion(); the mismatched sentinels were a bug magnet, so both
  /// now answer "is there a completion time at all?" the same way.)
  [[nodiscard]] std::optional<std::uint64_t> last_completion() const noexcept;

  /// Completion time of the earliest pending write; nullopt when idle.
  /// The block-streaming path uses this to chop a receive block exactly at
  /// the sample before which the next in-flight write lands.
  [[nodiscard]] std::optional<std::uint64_t> next_completion() const noexcept;

  /// Attach the telemetry event ring (nullptr detaches): each write is
  /// reported when issued and again when it lands in the register file,
  /// with the register address as the event value.
  void set_ring(obs::EventRing* ring) noexcept { ring_ = ring; }

  /// Attach a fault hook (nullptr detaches). Consulted once per write,
  /// including host retries.
  void set_fault_hook(BusFaultHook* hook) noexcept { fault_hook_ = hook; }

  /// Maximum re-issues of a dropped write before the host gives up.
  void set_retry_limit(std::uint32_t limit) noexcept { retry_limit_ = limit; }
  [[nodiscard]] std::uint32_t retry_limit() const noexcept {
    return retry_limit_;
  }

  // Lifetime fault/recovery accounting (survives queue drain).
  [[nodiscard]] std::uint64_t writes_issued() const noexcept {
    return writes_issued_;
  }
  [[nodiscard]] std::uint64_t writes_dropped() const noexcept {
    return writes_dropped_;
  }
  [[nodiscard]] std::uint64_t writes_retried() const noexcept {
    return writes_retried_;
  }
  [[nodiscard]] std::uint64_t writes_abandoned() const noexcept {
    return writes_abandoned_;
  }

 private:
  struct Pending {
    fpga::Reg addr;
    std::uint32_t value;
    std::uint64_t completes_at;
    std::uint32_t attempt = 0;  // 0 = first issue, n = nth retry
    bool dropped = false;       // lost in transit; discovered at deadline
  };

  void enqueue(fpga::Reg addr, std::uint32_t value, std::uint64_t now_ticks,
               std::uint32_t attempt);

  std::uint32_t latency_cycles_;
  std::uint32_t retry_limit_ = 3;
  std::deque<Pending> pending_;
  obs::EventRing* ring_ = nullptr;
  BusFaultHook* fault_hook_ = nullptr;
  std::uint64_t writes_issued_ = 0;
  std::uint64_t writes_dropped_ = 0;
  std::uint64_t writes_retried_ = 0;
  std::uint64_t writes_abandoned_ = 0;
};

}  // namespace rjf::radio
