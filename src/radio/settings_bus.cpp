#include "radio/settings_bus.h"

#include "radio/fault_hooks.h"

namespace rjf::radio {

void SettingsBus::enqueue(fpga::Reg addr, std::uint32_t value,
                          std::uint64_t now_ticks, std::uint32_t attempt) {
  BusFaultHook::WriteFault fault;
  if (fault_hook_ != nullptr) fault = fault_hook_->on_write(addr, now_ticks);
  // Writes serialise on the bus: each one starts after the previous
  // completes, so a burst of N writes costs N * latency. A stall fault adds
  // to this write's transaction time (and delays everything behind it).
  const std::uint64_t start =
      pending_.empty() ? now_ticks : pending_.back().completes_at;
  pending_.push_back(Pending{addr, value,
                             start + latency_cycles_ +
                                 fault.extra_latency_cycles,
                             attempt, fault.dropped});
  ++writes_issued_;
  if (ring_ != nullptr)
    ring_->push_event(obs::EventKind::kSettingsWriteIssued, now_ticks,
                      static_cast<std::uint64_t>(addr));
}

void SettingsBus::write(fpga::Reg addr, std::uint32_t value,
                        std::uint64_t now_ticks) {
  enqueue(addr, value, now_ticks, 0);
}

std::size_t SettingsBus::service(fpga::RegisterFile& regs,
                                 std::uint64_t now_ticks) {
  std::size_t applied = 0;
  // Terminates: each iteration either applies a write, abandons one, or
  // re-enqueues with attempt+1 (bounded by retry_limit_); retries land at
  // the back with a completion time strictly after `now_ticks` only when
  // the queue drains past them, and attempts are finite.
  while (!pending_.empty() && pending_.front().completes_at <= now_ticks) {
    const Pending w = pending_.front();
    pending_.pop_front();
    if (!w.dropped) {
      regs.write(w.addr, w.value);
      if (ring_ != nullptr)
        // Timestamped at the modelled completion tick, not the (possibly
        // later) fabric time at which the host happened to service the bus.
        ring_->push_event(obs::EventKind::kSettingsWriteApplied,
                          w.completes_at, static_cast<std::uint64_t>(w.addr));
      ++applied;
      continue;
    }
    // Lost in transit. The host's acknowledgement timeout fires at the
    // write's completion deadline; it then re-issues the write at the back
    // of the queue (a fresh transaction, so the fault hook is consulted
    // again) or gives up once the retry budget is spent.
    ++writes_dropped_;
    if (ring_ != nullptr)
      ring_->push_event(obs::EventKind::kSettingsWriteDropped, w.completes_at,
                        static_cast<std::uint64_t>(w.addr));
    if (w.attempt >= retry_limit_) {
      ++writes_abandoned_;
      if (ring_ != nullptr)
        ring_->push_event(obs::EventKind::kSettingsWriteAbandoned,
                          w.completes_at, static_cast<std::uint64_t>(w.addr));
      continue;
    }
    ++writes_retried_;
    enqueue(w.addr, w.value, w.completes_at, w.attempt + 1);
    if (ring_ != nullptr)
      ring_->push_event(obs::EventKind::kSettingsWriteRetried, w.completes_at,
                        static_cast<std::uint64_t>(w.addr));
  }
  return applied;
}

std::optional<std::uint64_t> SettingsBus::last_completion() const noexcept {
  if (pending_.empty()) return std::nullopt;
  return pending_.back().completes_at;
}

std::optional<std::uint64_t> SettingsBus::next_completion() const noexcept {
  if (pending_.empty()) return std::nullopt;
  return pending_.front().completes_at;
}

}  // namespace rjf::radio
