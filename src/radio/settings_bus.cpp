#include "radio/settings_bus.h"

namespace rjf::radio {

void SettingsBus::write(fpga::Reg addr, std::uint32_t value,
                        std::uint64_t now_ticks) {
  // Writes serialise on the bus: each one starts after the previous
  // completes, so a burst of N writes costs N * latency.
  const std::uint64_t start =
      pending_.empty() ? now_ticks : pending_.back().completes_at;
  pending_.push_back(Pending{addr, value, start + latency_cycles_});
  if (sink_ != nullptr)
    sink_->on_event(obs::EventKind::kSettingsWriteIssued, now_ticks,
                    static_cast<std::uint64_t>(addr));
}

std::size_t SettingsBus::service(fpga::RegisterFile& regs,
                                 std::uint64_t now_ticks) {
  std::size_t applied = 0;
  while (!pending_.empty() && pending_.front().completes_at <= now_ticks) {
    regs.write(pending_.front().addr, pending_.front().value);
    if (sink_ != nullptr)
      // Timestamped at the modelled completion tick, not the (possibly
      // later) fabric time at which the host happened to service the bus.
      sink_->on_event(obs::EventKind::kSettingsWriteApplied,
                      pending_.front().completes_at,
                      static_cast<std::uint64_t>(pending_.front().addr));
    pending_.pop_front();
    ++applied;
  }
  return applied;
}

std::uint64_t SettingsBus::last_completion() const noexcept {
  return pending_.empty() ? 0 : pending_.back().completes_at;
}

std::uint64_t SettingsBus::next_completion() const noexcept {
  return pending_.empty() ? ~std::uint64_t{0} : pending_.front().completes_at;
}

}  // namespace rjf::radio
