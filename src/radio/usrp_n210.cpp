#include "radio/usrp_n210.h"

#include <algorithm>

namespace rjf::radio {

namespace {

// Samples per run_block() chunk. Bounds the per-tick scratch buffer
// (kChunkSamples * kClocksPerSample CoreOutputs) while keeping the inner
// loop long enough to amortise the chunking overhead.
constexpr std::size_t kChunkSamples = 8192;

}  // namespace

UsrpN210::UsrpN210() = default;

void UsrpN210::write_register(fpga::Reg addr, std::uint32_t value) {
  bus_.write(addr, value, now_ticks());
}

void UsrpN210::write_register_now(fpga::Reg addr, std::uint32_t value) {
  core_.registers().write(addr, value);
  core_.apply_registers();
}

UsrpN210::StreamResult UsrpN210::stream_fabric(std::span<const dsp::IQ16> rx) {
  StreamResult result;
  result.tx.assign(rx.size(), dsp::cfloat{});

  if (sink_ != nullptr)
    sink_->on_event(obs::EventKind::kStreamStart, now_ticks(), rx.size());

  const auto before = core_.feedback();
  std::vector<fpga::CoreOutput> trace(
      std::min(rx.size(), kChunkSamples) * fpga::kClocksPerSample);

  bool burst_open = false;
  std::size_t n = 0;
  while (n < rx.size()) {
    // Service any in-flight settings-bus writes; re-latch on application.
    if (!bus_.idle() && bus_.service(core_.registers(), now_ticks()) > 0)
      core_.apply_registers();

    // Run up to a full chunk, but never across the fabric tick where the
    // next pending register write lands: the per-sample model serviced the
    // bus before every sample, so the block model must re-check exactly at
    // the first sample whose start tick reaches the completion time.
    std::size_t end = std::min(rx.size(), n + kChunkSamples);
    if (!bus_.idle()) {
      const std::uint64_t due = bus_.next_completion();
      const std::uint64_t base = now_ticks();
      if (due > base) {
        const std::uint64_t ahead = (due - base + fpga::kClocksPerSample - 1) /
                                    fpga::kClocksPerSample;
        end = std::min<std::uint64_t>(end, n + std::max<std::uint64_t>(ahead, 1));
      } else {
        end = n + 1;  // unreachable after service(); stay exact regardless
      }
    }

    const std::size_t len = end - n;
    const auto chunk =
        std::span(trace).first(len * fpga::kClocksPerSample);
    core_.run_block(rx.subspan(n, len), chunk);

    // Scan the per-tick outputs for TX strobes and jam-burst boundaries.
    for (std::size_t m = 0; m < len; ++m) {
      bool rf_active = false;
      for (std::uint32_t c = 0; c < fpga::kClocksPerSample; ++c) {
        const auto& out = chunk[m * fpga::kClocksPerSample + c];
        rf_active = rf_active || out.tx.rf_active;
        if (out.tx.sample_strobe) result.tx[n + m] = dac_.sample(out.tx.sample);
      }
      if (rf_active && !burst_open) {
        result.bursts.push_back(JamBurst{n + m, 0});
        burst_open = true;
      } else if (!rf_active && burst_open) {
        burst_open = false;
      }
      if (burst_open) ++result.bursts.back().length;
    }
    n = end;
  }

  result.tx = frontend_.apply_tx(result.tx);
  const auto after = core_.feedback();
  result.jam_triggers = after.jam_triggers - before.jam_triggers;
  result.xcorr_detections = after.xcorr_detections - before.xcorr_detections;
  result.energy_high_detections =
      after.energy_high_detections - before.energy_high_detections;
  result.energy_low_detections =
      after.energy_low_detections - before.energy_low_detections;

  if (sink_ != nullptr)
    sink_->on_event(obs::EventKind::kStreamEnd, now_ticks(), rx.size());
  return result;
}

UsrpN210::StreamResult UsrpN210::stream(std::span<const dsp::cfloat> rx) {
  const dsp::cvec rx_gained = frontend_.apply_rx(rx);
  const dsp::iqvec iq = adc_.convert(rx_gained);
  return stream_fabric(iq);
}

}  // namespace rjf::radio
