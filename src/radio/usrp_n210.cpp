#include "radio/usrp_n210.h"

namespace rjf::radio {

UsrpN210::UsrpN210() = default;

void UsrpN210::write_register(fpga::Reg addr, std::uint32_t value) {
  bus_.write(addr, value, now_ticks());
}

void UsrpN210::write_register_now(fpga::Reg addr, std::uint32_t value) {
  core_.registers().write(addr, value);
  core_.apply_registers();
}

UsrpN210::StreamResult UsrpN210::stream(std::span<const dsp::cfloat> rx) {
  StreamResult result;
  result.tx.assign(rx.size(), dsp::cfloat{});

  const auto before = core_.feedback();
  const dsp::cvec rx_gained = frontend_.apply_rx(rx);

  bool burst_open = false;
  for (std::size_t n = 0; n < rx_gained.size(); ++n) {
    // Service any in-flight settings-bus writes; re-latch on application.
    if (!bus_.idle() && bus_.service(core_.registers(), now_ticks()) > 0)
      core_.apply_registers();

    const dsp::IQ16 sample = adc_.sample(rx_gained[n]);
    bool rf_active = false;
    for (std::uint32_t c = 0; c < fpga::kClocksPerSample; ++c) {
      const auto out = core_.tick(c == 0 ? std::optional<dsp::IQ16>(sample)
                                         : std::nullopt);
      rf_active = rf_active || out.tx.rf_active;
      if (out.tx.sample_strobe) result.tx[n] = dac_.sample(out.tx.sample);
    }
    if (rf_active && !burst_open) {
      result.bursts.push_back(JamBurst{n, 0});
      burst_open = true;
    } else if (!rf_active && burst_open) {
      burst_open = false;
    }
    if (burst_open) ++result.bursts.back().length;
  }

  result.tx = frontend_.apply_tx(result.tx);
  const auto after = core_.feedback();
  result.jam_triggers = after.jam_triggers - before.jam_triggers;
  result.xcorr_detections = after.xcorr_detections - before.xcorr_detections;
  result.energy_high_detections =
      after.energy_high_detections - before.energy_high_detections;
  result.energy_low_detections =
      after.energy_low_detections - before.energy_low_detections;
  return result;
}

}  // namespace rjf::radio
