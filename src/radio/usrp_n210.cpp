#include "radio/usrp_n210.h"

#include <algorithm>
#include <chrono>

#include "radio/fault_hooks.h"

namespace rjf::radio {

namespace {

// Samples per run_block() chunk. Bounds the per-tick scratch buffer
// (kChunkSamples * kClocksPerSample CoreOutputs) while keeping the inner
// loop long enough to amortise the chunking overhead.
constexpr std::size_t kChunkSamples = 8192;

}  // namespace

UsrpN210::UsrpN210() = default;

void UsrpN210::write_register(fpga::Reg addr, std::uint32_t value) {
  bus_.write(addr, value, now_ticks());
}

void UsrpN210::write_register_now(fpga::Reg addr, std::uint32_t value) {
  core_.registers().write(addr, value);
  core_.apply_registers();
}

UsrpN210::StreamResult UsrpN210::stream_fabric(std::span<const dsp::IQ16> rx) {
  StreamResult result;
  result.tx.assign(rx.size(), dsp::cfloat{});

  // Wall time is measured here on the producer side: once records are
  // drained after the fact, dispatch time no longer says anything about
  // how long the stream call took.
  const auto wall_start = std::chrono::steady_clock::now();
  if (ring_ != nullptr)
    ring_->push_event(obs::EventKind::kStreamStart, now_ticks(), rx.size());

  const auto before = core_.feedback();
  std::vector<fpga::CoreOutput> trace(
      std::min(rx.size(), kChunkSamples) * fpga::kClocksPerSample);

  // Receive-overflow gaps declared by the fault hook for this block,
  // converted to block-relative sample indices. The host never saw those
  // samples, so the core skips them with exact VITA accounting
  // (fast_forward) instead of processing stale data.
  std::vector<OverflowGap> gaps;
  if (rx_fault_ != nullptr) {
    std::vector<OverflowGap> declared;
    rx_fault_->overflow_gaps(rx_cursor_, rx.size(), declared);
    for (const OverflowGap& g : declared) {
      // Clip to this block; a gap may straddle either block boundary.
      const std::uint64_t lo = std::max(g.start_sample, rx_cursor_);
      const std::uint64_t hi =
          std::min(g.start_sample + g.length, rx_cursor_ + rx.size());
      if (hi > lo) gaps.push_back(OverflowGap{lo - rx_cursor_, hi - lo});
    }
  }
  std::size_t gap_next = 0;

  bool burst_open = false;
  std::size_t n = 0;
  while (n < rx.size()) {
    // Service any in-flight settings-bus writes; re-latch on application.
    if (!bus_.idle() && bus_.service(core_.registers(), now_ticks()) > 0)
      core_.apply_registers();

    // An overflow gap starting at (or spilling over) this sample: flush the
    // skipped span through the core without samples. The burst scan cannot
    // observe RF state across the gap, so any open burst ends here.
    if (gap_next < gaps.size() && gaps[gap_next].start_sample <= n) {
      const std::uint64_t gap_end = std::min<std::uint64_t>(
          gaps[gap_next].start_sample + gaps[gap_next].length, rx.size());
      ++gap_next;
      if (gap_end > n) {
        const std::uint64_t lost = gap_end - n;
        if (ring_ != nullptr)
          ring_->push_event(obs::EventKind::kOverflowGap, now_ticks(), lost);
        core_.fast_forward(lost);
        if (ring_ != nullptr)
          ring_->push_event(obs::EventKind::kDetectorFlush, now_ticks(),
                            lost * fpga::kClocksPerSample);
        ++result.overflow_gaps;
        result.samples_lost += lost;
        burst_open = false;
        n = static_cast<std::size_t>(gap_end);
      }
      continue;
    }

    // Run up to a full chunk, but never across the fabric tick where the
    // next pending register write lands: the per-sample model serviced the
    // bus before every sample, so the block model must re-check exactly at
    // the first sample whose start tick reaches the completion time.
    std::size_t end = std::min(rx.size(), n + kChunkSamples);
    if (!bus_.idle()) {
      const std::uint64_t due = *bus_.next_completion();
      const std::uint64_t base = now_ticks();
      if (due > base) {
        const std::uint64_t ahead = (due - base + fpga::kClocksPerSample - 1) /
                                    fpga::kClocksPerSample;
        end = std::min<std::uint64_t>(end, n + std::max<std::uint64_t>(ahead, 1));
      } else {
        end = n + 1;  // unreachable after service(); stay exact regardless
      }
    }
    // ... and never across the start of the next overflow gap.
    if (gap_next < gaps.size())
      end = std::min<std::uint64_t>(end, gaps[gap_next].start_sample);

    const std::size_t len = end - n;
    const auto chunk =
        std::span(trace).first(len * fpga::kClocksPerSample);
    core_.run_block(rx.subspan(n, len), chunk);

    // Scan the per-tick outputs for TX strobes and jam-burst boundaries.
    for (std::size_t m = 0; m < len; ++m) {
      bool rf_active = false;
      for (std::uint32_t c = 0; c < fpga::kClocksPerSample; ++c) {
        const auto& out = chunk[m * fpga::kClocksPerSample + c];
        rf_active = rf_active || out.tx.rf_active;
        if (out.tx.sample_strobe) result.tx[n + m] = dac_.sample(out.tx.sample);
      }
      if (rf_active && !burst_open) {
        result.bursts.push_back(JamBurst{n + m, 0});
        burst_open = true;
      } else if (!rf_active && burst_open) {
        burst_open = false;
      }
      if (burst_open) ++result.bursts.back().length;
    }
    n = end;
  }
  rx_cursor_ += rx.size();

  result.tx = frontend_.apply_tx(result.tx);
  const auto after = core_.feedback();
  result.jam_triggers = after.jam_triggers - before.jam_triggers;
  result.xcorr_detections = after.xcorr_detections - before.xcorr_detections;
  result.energy_high_detections =
      after.energy_high_detections - before.energy_high_detections;
  result.energy_low_detections =
      after.energy_low_detections - before.energy_low_detections;
  result.last_trigger_vita = after.last_trigger_vita;

  if (ring_ != nullptr) {
    ring_->push_event(
        obs::EventKind::kStreamWall, now_ticks(),
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - wall_start)
                .count()));
    ring_->push_event(obs::EventKind::kStreamEnd, now_ticks(), rx.size());
    // In inline-drain mode the consumer has now seen the whole stream.
    ring_->drain_if_inline();
  }
  return result;
}

UsrpN210::StreamResult UsrpN210::stream(std::span<const dsp::cfloat> rx) {
  dsp::cvec rx_gained = frontend_.apply_rx(rx);
  if (rx_fault_ != nullptr) {
    rx_fault_->mutate_rx(rx_gained, rx_cursor_);
    if (ring_ != nullptr) {
      // Annotate the trace with each fault applied in this block, stamped
      // at the fabric tick of the fault's first sample.
      std::vector<RxFaultView> views;
      rx_fault_->applied_faults(rx_cursor_, rx.size(), views);
      const std::uint64_t base_vita = now_ticks();
      for (const RxFaultView& v : views)
        ring_->push_event(obs::EventKind::kFaultInjected,
                          base_vita + (v.at_sample - rx_cursor_) *
                                          fpga::kClocksPerSample,
                          v.kind_id);
    }
  }
  const dsp::iqvec iq = adc_.convert(rx_gained);
  StreamResult result = stream_fabric(iq);
  result.adc_clipped = adc_.clipped();
  return result;
}

}  // namespace rjf::radio
