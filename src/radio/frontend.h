// SBX daughterboard front-end model.
//
// The SBX gives the N210 40 MHz of instantaneous bandwidth and a tunable
// centre frequency between 400 MHz and 4.4 GHz, which is what lets a single
// jammer hardware build cover both WiFi channel 14 (2.484 GHz) and the
// WiMAX carrier (2.608 GHz). The model enforces the tuning range and
// applies TX/RX gain; frequency selectivity itself lives in the channel
// model (signals only couple between front-ends tuned to the same carrier).
#pragma once

#include <stdexcept>

#include "dsp/types.h"

namespace rjf::radio {

class SbxFrontend {
 public:
  static constexpr double kMinFreqHz = 400e6;
  static constexpr double kMaxFreqHz = 4.4e9;
  static constexpr double kMaxBandwidthHz = 40e6;
  static constexpr double kMaxGainDb = 31.5;

  /// Throws std::out_of_range if the frequency is outside the SBX range.
  void tune(double freq_hz);
  [[nodiscard]] double frequency() const noexcept { return freq_hz_; }

  /// Gains clamp to [0, 31.5] dB like the real driver.
  void set_tx_gain(double db) noexcept;
  void set_rx_gain(double db) noexcept;
  [[nodiscard]] double tx_gain_db() const noexcept { return tx_gain_db_; }
  [[nodiscard]] double rx_gain_db() const noexcept { return rx_gain_db_; }

  /// Apply TX gain to an outgoing baseband buffer.
  [[nodiscard]] dsp::cvec apply_tx(std::span<const dsp::cfloat> in) const;
  /// Apply RX gain to an incoming baseband buffer.
  [[nodiscard]] dsp::cvec apply_rx(std::span<const dsp::cfloat> in) const;

 private:
  double freq_hz_ = 2.484e9;  // WiFi channel 14 default
  double tx_gain_db_ = 0.0;
  double rx_gain_db_ = 0.0;
};

}  // namespace rjf::radio
