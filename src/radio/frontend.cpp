#include "radio/frontend.h"

#include <algorithm>
#include <cmath>

#include "dsp/db.h"

namespace rjf::radio {
namespace {

dsp::cvec scale(std::span<const dsp::cfloat> in, double gain_db) {
  const auto g = static_cast<float>(dsp::amplitude_from_db(gain_db));
  dsp::cvec out(in.size());
  std::transform(in.begin(), in.end(), out.begin(),
                 [g](dsp::cfloat s) { return s * g; });
  return out;
}

}  // namespace

void SbxFrontend::tune(double freq_hz) {
  if (freq_hz < kMinFreqHz || freq_hz > kMaxFreqHz)
    throw std::out_of_range("SbxFrontend::tune: frequency outside SBX range");
  freq_hz_ = freq_hz;
}

void SbxFrontend::set_tx_gain(double db) noexcept {
  tx_gain_db_ = std::clamp(db, 0.0, kMaxGainDb);
}

void SbxFrontend::set_rx_gain(double db) noexcept {
  rx_gain_db_ = std::clamp(db, 0.0, kMaxGainDb);
}

dsp::cvec SbxFrontend::apply_tx(std::span<const dsp::cfloat> in) const {
  return scale(in, tx_gain_db_);
}

dsp::cvec SbxFrontend::apply_rx(std::span<const dsp::cfloat> in) const {
  return scale(in, rx_gain_db_);
}

}  // namespace rjf::radio
