// Fault-injection seams for the radio layer.
//
// The radio models (UsrpN210, SettingsBus) consult these abstract hooks at
// well-defined points in the sample and register-write paths; the concrete
// implementation lives in src/fault (FaultInjector), keeping the dependency
// arrow fault -> radio. With no hook attached — or a hook whose plan is
// empty — every call site is a skipped branch or an identity transform, so
// the clean path stays bit-identical (the same "overhead contract" the
// telemetry layer honours).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsp/types.h"
#include "fpga/register_file.h"

namespace rjf::radio {

/// A run of receive samples lost to a stream overflow (UHD's "O"): the host
/// never sees them, so the fabric model must skip them with exact VITA-time
/// accounting rather than process stale data. Sample indices are absolute
/// positions in the receive stream (monotonic across stream() calls).
struct OverflowGap {
  std::uint64_t start_sample = 0;
  std::uint64_t length = 0;
};

/// View of an amplitude/phase fault the hook applied to the rx path, for
/// trace annotation (kFaultInjected events). kind_id is opaque to the radio
/// layer; src/fault maps it to its FaultKind taxonomy.
struct RxFaultView {
  std::uint64_t at_sample = 0;
  std::uint64_t length = 0;
  std::uint32_t kind_id = 0;
};

/// Receive-path hook. mutate_rx() is called once per stream() block, after
/// front-end gain and before ADC quantisation, with the absolute stream
/// position of the block's first sample.
class RxFaultHook {
 public:
  virtual ~RxFaultHook() = default;

  /// Apply amplitude/phase faults in place. Must be deterministic in
  /// (start_sample, rx.size()) — never in call count or thread schedule.
  virtual void mutate_rx(std::span<dsp::cfloat> rx,
                         std::uint64_t start_sample) = 0;

  /// Append the overflow gaps intersecting [start_sample, start_sample +
  /// length) in ascending start order. Gaps must not overlap each other.
  virtual void overflow_gaps(std::uint64_t start_sample, std::uint64_t length,
                             std::vector<OverflowGap>& out) const = 0;

  /// Append views of the faults whose first sample lies in [start_sample,
  /// start_sample + length), for trace annotation. Default: none.
  virtual void applied_faults(std::uint64_t start_sample, std::uint64_t length,
                              std::vector<RxFaultView>& out) const {
    (void)start_sample;
    (void)length;
    (void)out;
  }
};

/// Settings-bus hook, consulted once per register write (including host
/// retries of dropped writes, which count as fresh writes).
class BusFaultHook {
 public:
  /// What the bus should do to this write. extra_latency_cycles models a
  /// stalled transaction; dropped models a write lost in transit (the bus
  /// discovers the loss at the write's completion deadline).
  struct WriteFault {
    std::uint32_t extra_latency_cycles = 0;
    bool dropped = false;
  };

  virtual ~BusFaultHook() = default;
  virtual WriteFault on_write(fpga::Reg addr, std::uint64_t now_ticks) = 0;
};

}  // namespace rjf::radio
