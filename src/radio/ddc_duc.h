// Digital down-conversion and up-conversion chain models.
//
// The N210's DDC takes the 100 MSPS ADC stream, mixes it to baseband with a
// CORDIC (modelled by an NCO), and decimates to the host rate; the custom
// DSP core sits at the 25 MSPS point of this chain (decimation 4). The DUC
// mirrors the path upward. The ~7-cycle DUC fill latency the paper counts
// into T_init comes from the pipeline depth modelled here.
#pragma once

#include <cstddef>

#include "dsp/fir.h"
#include "dsp/nco.h"
#include "dsp/types.h"

namespace rjf::radio {

class DdcChain {
 public:
  /// `decimation` >= 1; `offset_hz` is the CORDIC fine-tune frequency
  /// relative to the ADC rate `adc_rate_hz`.
  DdcChain(std::size_t decimation, double offset_hz, double adc_rate_hz);

  /// Process a block of ADC-rate samples into host-rate samples.
  [[nodiscard]] dsp::cvec process(std::span<const dsp::cfloat> in);

  [[nodiscard]] std::size_t decimation() const noexcept { return decimation_; }
  void reset();

 private:
  std::size_t decimation_;
  dsp::Nco nco_;
  dsp::Decimator decimator_;
};

class DucChain {
 public:
  DucChain(std::size_t interpolation, double offset_hz, double dac_rate_hz);

  [[nodiscard]] dsp::cvec process(std::span<const dsp::cfloat> in);

  /// Pipeline depth in fabric clocks — the "approximately seven more
  /// cycles required to populate the DUC" of paper §2.4.
  [[nodiscard]] static constexpr std::size_t fill_latency_cycles() { return 7; }

  void reset();

 private:
  std::size_t interpolation_;
  dsp::Interpolator interpolator_;
  dsp::Nco nco_;
};

}  // namespace rjf::radio
