#include "radio/ddc_duc.h"

namespace rjf::radio {

DdcChain::DdcChain(std::size_t decimation, double offset_hz, double adc_rate_hz)
    : decimation_(decimation),
      nco_(-offset_hz, adc_rate_hz),
      decimator_(decimation) {}

dsp::cvec DdcChain::process(std::span<const dsp::cfloat> in) {
  const dsp::cvec mixed = nco_.mix(in);
  return decimator_.process_block(mixed);
}

void DdcChain::reset() {
  nco_.reset_phase();
  decimator_.reset();
}

DucChain::DucChain(std::size_t interpolation, double offset_hz,
                   double dac_rate_hz)
    : interpolation_(interpolation),
      interpolator_(interpolation),
      nco_(offset_hz, dac_rate_hz) {}

dsp::cvec DucChain::process(std::span<const dsp::cfloat> in) {
  const dsp::cvec up = interpolator_.process_block(in);
  return nco_.mix(up);
}

void DucChain::reset() {
  interpolator_.reset();
  nco_.reset_phase();
}

}  // namespace rjf::radio
