#include "radio/adc_dac.h"

#include <algorithm>
#include <cmath>

namespace rjf::radio {

Adc::Adc(unsigned bits) noexcept : bits_(std::clamp(bits, 2u, 16u)) {}

dsp::IQ16 Adc::sample(dsp::cfloat in) const noexcept {
  const int levels = 1 << (bits_ - 1);
  const auto quantise = [&](float x) -> std::int16_t {
    const float scaled = x * static_cast<float>(levels);
    // Clip only when the rounded code falls outside the representable
    // two's-complement range [-levels, levels-1]. A sample that rounds to
    // exactly the top code is quantised without loss and must not flag.
    const long rounded = std::lrintf(scaled);
    if (rounded > levels - 1 || rounded < -levels) clipped_ = true;
    const long code = std::clamp<long>(rounded, -levels, levels - 1);
    // Left-justify into the 16-bit fabric word.
    return static_cast<std::int16_t>(code << (16 - bits_));
  };
  return dsp::IQ16{quantise(in.real()), quantise(in.imag())};
}

dsp::iqvec Adc::convert(std::span<const dsp::cfloat> in) const {
  clear_clip();
  dsp::iqvec out(in.size());
  std::transform(in.begin(), in.end(), out.begin(),
                 [&](dsp::cfloat s) { return sample(s); });
  return out;
}

dsp::cfloat Dac::sample(dsp::IQ16 in) const noexcept {
  return dsp::from_iq16(in);
}

dsp::cvec Dac::convert(std::span<const dsp::IQ16> in) const {
  dsp::cvec out(in.size());
  std::transform(in.begin(), in.end(), out.begin(),
                 [&](dsp::IQ16 s) { return sample(s); });
  return out;
}

}  // namespace rjf::radio
