// Converter models for the USRP N210: 14-bit ADC (ADS62P44) and 16-bit DAC
// (AD9777). Quantisation and clipping here bound the dynamic range the
// detection datapath sees, which matters for correlator behaviour at high
// input levels (receiver saturation is why the paper pads its test network
// with 20 dB attenuators).
#pragma once

#include "dsp/types.h"

namespace rjf::radio {

/// Quantise a float baseband stream to `bits`-bit two's-complement samples,
/// returned left-justified in the 16-bit fabric representation.
class Adc {
 public:
  explicit Adc(unsigned bits = 14) noexcept;

  [[nodiscard]] dsp::IQ16 sample(dsp::cfloat in) const noexcept;
  [[nodiscard]] dsp::iqvec convert(std::span<const dsp::cfloat> in) const;

  /// True if any sample clipped since the last clear_clip(). The flag is
  /// sticky: per-sample sample() calls OR into it, and convert() clears it
  /// on entry, so after a convert() it reports on that block only.
  [[nodiscard]] bool clipped() const noexcept { return clipped_; }
  /// Re-arm the clip flag (per-sample callers bracket their own blocks the
  /// way convert() does).
  void clear_clip() const noexcept { clipped_ = false; }
  [[nodiscard]] unsigned bits() const noexcept { return bits_; }

 private:
  unsigned bits_;
  mutable bool clipped_ = false;
};

/// 16-bit DAC: fabric samples back to float baseband.
class Dac {
 public:
  [[nodiscard]] dsp::cfloat sample(dsp::IQ16 in) const noexcept;
  [[nodiscard]] dsp::cvec convert(std::span<const dsp::IQ16> in) const;
};

}  // namespace rjf::radio
