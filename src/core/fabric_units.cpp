#include "core/fabric_units.h"

#include <algorithm>
#include <cmath>

namespace rjf::core {

std::uint32_t energy_threshold_q88_from_db(double db) noexcept {
  const double ratio = std::pow(10.0, db / 10.0);
  const double q88 = std::clamp(ratio * 256.0, 0.0, 4294967295.0);
  return static_cast<std::uint32_t>(std::lround(q88));
}

double energy_threshold_db_from_q88(std::uint32_t q88) noexcept {
  if (q88 == 0) return -300.0;
  return 10.0 * std::log10(static_cast<double>(q88) / 256.0);
}

fpga::CorrelatorTemplate make_template(std::span<const dsp::cfloat> reference) {
  fpga::CorrelatorTemplate tpl;
  float peak = 0.0f;
  const std::size_t n = std::min(reference.size(), fpga::kCorrelatorLength);
  for (std::size_t k = 0; k < n; ++k)
    peak = std::max({peak, std::abs(reference[k].real()),
                     std::abs(reference[k].imag())});
  if (peak <= 0.0f) return tpl;
  for (std::size_t k = 0; k < n; ++k) {
    // The reference itself is quantised; the correlator datapath applies
    // the conjugate (s * conj(c)), completing the matched filter.
    const float scale = 3.0f / peak;
    tpl.coef_i[k] = std::clamp(
        static_cast<int>(std::lround(reference[k].real() * scale)), -4, 3);
    tpl.coef_q[k] = std::clamp(
        static_cast<int>(std::lround(reference[k].imag() * scale)), -4, 3);
  }
  return tpl;
}

}  // namespace rjf::core
