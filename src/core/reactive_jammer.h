// ReactiveJammer — the framework's top-level facade.
//
// Owns a modelled USRP N210 (SBX front end + custom FPGA core) and exposes
// the operations the paper's host application performs: program a jamming
// personality, retune/regain the front end, stream receive baseband through
// the detector, and read back detection/jam statistics. Personalities can
// be switched at runtime without "reprogramming the FPGA": reconfigure()
// goes through the settings-bus model and costs only its latency.
#pragma once

#include "core/jammer_config.h"
#include "radio/usrp_n210.h"

namespace rjf::obs {
class Telemetry;
class MetricsRegistry;
}  // namespace rjf::obs

namespace rjf::core {

class ReactiveJammer {
 public:
  /// Program the initial personality at start-up (immediate writes).
  explicit ReactiveJammer(const JammerConfig& config);

  /// Switch personality at runtime through the settings bus; the new
  /// settings take effect mid-stream after the bus latency.
  void reconfigure(const JammerConfig& config);

  /// Attach a telemetry bundle (nullptr detaches). Wires the bundle's
  /// event ring through the radio into the fabric core and settings bus,
  /// and records the current personality description as a trace
  /// annotation. Instrumented streaming keeps the straight-line fast path
  /// (see DspCore::set_ring()).
  void attach_trace(obs::Telemetry* telemetry);
  [[nodiscard]] obs::Telemetry* telemetry() const noexcept {
    return telemetry_;
  }
  /// Metrics of the attached telemetry bundle, nullptr when detached.
  [[nodiscard]] obs::MetricsRegistry* metrics() const noexcept;

  /// Flush all detector and jammer pipeline state — energy-differentiator
  /// moving sums, correlator shift registers, trigger-FSM stage, TX
  /// countdowns, feedback counters and VITA time — while preserving the
  /// programmed personality (register contents survive a fabric reset and
  /// are re-latched into the datapath). Experiment harnesses call this
  /// between captures so trials are independent (§3.2); do not call while
  /// a settings-bus write is in flight.
  void reset_detection_state();

  /// Tune both TX and RX front ends (they start together; paper §2.1).
  void tune(double freq_hz);
  void set_tx_gain(double db);

  /// Degradation-recovery policy applied after each observe() call.
  struct RecoveryPolicy {
    /// After a stream with overflow gaps, flush detector state via
    /// reset_detection_state() so half-formed correlator/FSM state built
    /// from pre-gap samples cannot mis-trigger on post-gap data. Skipped
    /// while a settings-bus write is in flight (the reset would race the
    /// write's completion time).
    bool reset_after_overflow = true;
  };
  void set_recovery_policy(const RecoveryPolicy& policy) noexcept {
    policy_ = policy;
  }
  [[nodiscard]] const RecoveryPolicy& recovery_policy() const noexcept {
    return policy_;
  }

  /// Attach fault hooks to the radio (nullptr detaches; see
  /// radio/fault_hooks.h). observe() then absorbs whatever the hooks
  /// inject: overflow gaps are skipped with exact VITA accounting inside
  /// the stream, recovery counters land in the attached metrics registry,
  /// and the recovery policy decides whether to flush detector state.
  void attach_fault_hooks(radio::RxFaultHook* rx_hook,
                          radio::BusFaultHook* bus_hook) noexcept {
    radio_.attach_fault_hooks(rx_hook, bus_hook);
  }

  /// Run the radio over receive baseband at 25 MSPS; returns the emitted
  /// jamming waveform and per-call statistics. The whole block is pushed
  /// through the cycle-accurate core with the block-processing fast path.
  /// Applies the recovery policy when the stream reports degradation.
  radio::UsrpN210::StreamResult observe(std::span<const dsp::cfloat> rx);

  /// Same pass over DDC-domain fabric samples, skipping the front-end gain
  /// and ADC models (for simulations that synthesise IQ16 directly).
  radio::UsrpN210::StreamResult observe(std::span<const dsp::IQ16> rx);

  [[nodiscard]] radio::UsrpN210& radio() noexcept { return radio_; }
  [[nodiscard]] const fpga::HostFeedback& feedback() const noexcept {
    return radio_.feedback();
  }
  [[nodiscard]] const JammerConfig& config() const noexcept { return config_; }

 private:
  /// Translate a JammerConfig to register writes via `write`.
  template <typename WriteFn>
  void program(const JammerConfig& config, WriteFn&& write);

  /// Record fault metrics and apply the recovery policy after a stream.
  /// A clean result (no gaps, no clipping) returns immediately, keeping
  /// the zero-fault path identical to the unhooked one.
  void absorb_stream_faults(const radio::UsrpN210::StreamResult& result);

  JammerConfig config_;
  radio::UsrpN210 radio_;
  obs::Telemetry* telemetry_ = nullptr;
  RecoveryPolicy policy_;
};

}  // namespace rjf::core
