// ReactiveJammer — the framework's top-level facade.
//
// Owns a modelled USRP N210 (SBX front end + custom FPGA core) and exposes
// the operations the paper's host application performs: program a jamming
// personality, retune/regain the front end, stream receive baseband through
// the detector, and read back detection/jam statistics. Personalities can
// be switched at runtime without "reprogramming the FPGA": reconfigure()
// goes through the settings-bus model and costs only its latency.
#pragma once

#include "core/jammer_config.h"
#include "radio/usrp_n210.h"

namespace rjf::obs {
class Telemetry;
class MetricsRegistry;
}  // namespace rjf::obs

namespace rjf::core {

class ReactiveJammer {
 public:
  /// Program the initial personality at start-up (immediate writes).
  explicit ReactiveJammer(const JammerConfig& config);

  /// Switch personality at runtime through the settings bus; the new
  /// settings take effect mid-stream after the bus latency.
  void reconfigure(const JammerConfig& config);

  /// Attach a telemetry bundle (nullptr detaches). Wires the sink through
  /// the radio into the fabric core and settings bus, and records the
  /// current personality description as a trace annotation. While detached
  /// the streaming fast path is untouched (see DspCore::set_sink()).
  void attach_trace(obs::Telemetry* telemetry);
  [[nodiscard]] obs::Telemetry* telemetry() const noexcept {
    return telemetry_;
  }
  /// Metrics of the attached telemetry bundle, nullptr when detached.
  [[nodiscard]] obs::MetricsRegistry* metrics() const noexcept;

  /// Flush all detector and jammer pipeline state — energy-differentiator
  /// moving sums, correlator shift registers, trigger-FSM stage, TX
  /// countdowns, feedback counters and VITA time — while preserving the
  /// programmed personality (register contents survive a fabric reset and
  /// are re-latched into the datapath). Experiment harnesses call this
  /// between captures so trials are independent (§3.2); do not call while
  /// a settings-bus write is in flight.
  void reset_detection_state();

  /// Tune both TX and RX front ends (they start together; paper §2.1).
  void tune(double freq_hz);
  void set_tx_gain(double db);

  /// Run the radio over receive baseband at 25 MSPS; returns the emitted
  /// jamming waveform and per-call statistics. The whole block is pushed
  /// through the cycle-accurate core with the block-processing fast path.
  radio::UsrpN210::StreamResult observe(std::span<const dsp::cfloat> rx) {
    return radio_.stream(rx);
  }

  /// Same pass over DDC-domain fabric samples, skipping the front-end gain
  /// and ADC models (for simulations that synthesise IQ16 directly).
  radio::UsrpN210::StreamResult observe(std::span<const dsp::IQ16> rx) {
    return radio_.stream_fabric(rx);
  }

  [[nodiscard]] radio::UsrpN210& radio() noexcept { return radio_; }
  [[nodiscard]] const fpga::HostFeedback& feedback() const noexcept {
    return radio_.feedback();
  }
  [[nodiscard]] const JammerConfig& config() const noexcept { return config_; }

 private:
  /// Translate a JammerConfig to register writes via `write`.
  template <typename WriteFn>
  void program(const JammerConfig& config, WriteFn&& write);

  JammerConfig config_;
  radio::UsrpN210 radio_;
  obs::Telemetry* telemetry_ = nullptr;
};

}  // namespace rjf::core
