#include "core/calibration.h"

#include <algorithm>
#include <map>

#include "dsp/noise.h"
#include "fpga/dsp_core.h"

namespace rjf::core {
namespace {

constexpr int kMaxAcc = 384;  // 64 taps * max |ci|+|cq| = 6
constexpr int kDim = 2 * kMaxAcc + 1;

}  // namespace

XcorrNoiseModel::XcorrNoiseModel(const fpga::CorrelatorTemplate& tpl) {
  // Joint DP over (re, im). Each tap contributes one of four equally likely
  // (dre, dim) pairs depending on the two sign bits.
  std::vector<double> cur(static_cast<std::size_t>(kDim) * kDim, 0.0);
  std::vector<double> next(cur.size(), 0.0);
  const auto at = [](std::vector<double>& v, int re, int im) -> double& {
    return v[static_cast<std::size_t>(re + kMaxAcc) * kDim + (im + kMaxAcc)];
  };
  at(cur, 0, 0) = 1.0;

  for (std::size_t k = 0; k < fpga::kCorrelatorLength; ++k) {
    const int ci = tpl.coef_i[k];
    const int cq = tpl.coef_q[k];
    // (si, sq) in {+1,-1}^2 -> (si*ci + sq*cq, sq*ci - si*cq)
    const int dre[4] = {ci + cq, ci - cq, -ci + cq, -ci - cq};
    const int dim[4] = {ci - cq, -ci - cq, ci + cq, -ci + cq};
    std::fill(next.begin(), next.end(), 0.0);
    const int reach = static_cast<int>(k + 1) * 6;
    for (int re = -reach; re <= reach; ++re) {
      for (int im = -reach; im <= reach; ++im) {
        const double p = at(cur, re, im);
        if (p == 0.0) continue;
        for (int c = 0; c < 4; ++c) {
          const int nre = std::clamp(re + dre[c], -kMaxAcc, kMaxAcc);
          const int nim = std::clamp(im + dim[c], -kMaxAcc, kMaxAcc);
          at(next, nre, nim) += 0.25 * p;
        }
      }
    }
    cur.swap(next);
  }

  // Collapse the joint distribution to the metric re^2 + im^2.
  std::map<std::uint32_t, double> pmf;
  for (int re = -kMaxAcc; re <= kMaxAcc; ++re)
    for (int im = -kMaxAcc; im <= kMaxAcc; ++im) {
      const double p = at(cur, re, im);
      if (p > 0.0)
        pmf[static_cast<std::uint32_t>(re * re + im * im)] += p;
    }

  metric_values_.reserve(pmf.size());
  survival_.reserve(pmf.size());
  double tail = 1.0;
  for (const auto& [metric, p] : pmf) {
    tail -= p;
    metric_values_.push_back(metric);
    survival_.push_back(std::max(tail, 0.0));
  }
}

double XcorrNoiseModel::exceedance_probability(std::uint32_t threshold) const {
  // survival_[k] = P(metric > metric_values_[k]); find the largest value
  // <= threshold.
  const auto it = std::upper_bound(metric_values_.begin(), metric_values_.end(),
                                   threshold);
  if (it == metric_values_.begin()) return 1.0;
  return survival_[static_cast<std::size_t>(it - metric_values_.begin()) - 1];
}

double XcorrNoiseModel::false_alarm_rate_per_s(std::uint32_t threshold,
                                               double cluster) const {
  return exceedance_probability(threshold) * fpga::kBasebandRateHz / cluster;
}

std::uint32_t XcorrNoiseModel::threshold_for_rate(double target_per_s,
                                                  double cluster) const {
  for (std::size_t k = 0; k < metric_values_.size(); ++k)
    if (false_alarm_rate_per_s(metric_values_[k], cluster) <= target_per_s)
      return metric_values_[k];
  return metric_values_.empty() ? 0xFFFFFFFFu : metric_values_.back();
}

std::uint64_t count_noise_triggers(const fpga::CorrelatorTemplate& tpl,
                                   std::uint32_t threshold, double seconds,
                                   std::uint64_t seed) {
  fpga::CrossCorrelator corr;
  corr.set_coefficients(tpl.coef_i, tpl.coef_q);
  corr.set_threshold(threshold);
  const auto n = static_cast<std::uint64_t>(seconds * fpga::kBasebandRateHz);
  dsp::NoiseSource noise(0.01, seed);
  std::uint64_t triggers = 0;
  bool prev = false;
  for (std::uint64_t k = 0; k < n; ++k) {
    const auto out = corr.step(dsp::to_iq16(noise.sample()));
    if (out.trigger && !prev) ++triggers;
    prev = out.trigger;
  }
  return triggers;
}

}  // namespace rjf::core
