// Deterministic parallel sweep engine.
//
// Every headline result in the paper is a sweep — P_det vs SNR over 10000
// frames per point (Figs. 6-8), iperf bandwidth/PRR vs SIR (Figs. 10-11) —
// and each trial within a point is independent by construction (§3.2).
// The engine exploits that: a sweep of P points × T trials is cut into
// shards of at most `shard_trials` consecutive trials, the shards are
// executed by a pool of worker threads, and the per-shard outcomes are
// merged back in shard-index order.
//
// Determinism guarantee: the aggregate counts of a sweep depend only on
// (seed, points, trials_per_point) — NOT on the thread count, the shard
// size, or the order in which the scheduler happened to run the shards.
// Three properties enforce it:
//
//   1. Seeds derive from logical indices. A shard's RNG stream is
//      dsp::derive_seed(config.seed, shard_index) (splitmix64); the
//      detection kernel goes one level finer and derives per-TRIAL streams
//      from the point seed, so even re-sharding cannot change a trial's
//      random draws.
//   2. Shards share no mutable state. Each shard gets its own jammer /
//      fabric instance (built from the same JammerConfig), its own noise
//      and impairment RNGs, and its own obs::MetricsRegistry; the
//      read-only DetectionTrialPlan is the only shared data.
//   3. Merging is associative bookkeeping. Shard outcomes land in a
//      pre-sized slot vector keyed by shard index; the engine folds them
//      sequentially in index order after the pool drains, so floating
//      summaries are computed from identical integer totals every run.
//
// See DESIGN.md "Sweep engine" for the full scheme.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/detection_experiment.h"
#include "obs/metrics.h"
#include "obs/trace_recorder.h"

namespace rjf::core {

/// Snapshot handed to the progress callback as shards complete: campaign
/// throughput, ETA and the fault counters accumulated so far, so a long
/// run is observable without waiting for the report.
struct SweepProgress {
  std::size_t shards_done = 0;
  std::size_t shards_total = 0;
  std::uint64_t trials_done = 0;
  std::uint64_t trials_total = 0;
  double elapsed_seconds = 0.0;
  double trials_per_second = 0.0;
  double eta_seconds = 0.0;          // remaining trials / current rate
  std::uint64_t faults = 0;          // sum of fault.* counters so far
};

struct SweepConfig {
  std::size_t trials_per_point = 1000;
  /// Work-unit granularity. Smaller shards balance better across workers;
  /// the aggregate result is the same for ANY value (determinism does not
  /// ride on it). 0 picks an adaptive size from the grid dimensions and
  /// worker count (see resolve_shard_trials).
  std::size_t shard_trials = 250;
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  unsigned threads = 0;
  std::uint64_t seed = 1;
  /// Report progress every N completed shards (0 = silent). Reports go to
  /// `progress`, or to a one-line stderr ticker when `progress` is empty.
  /// Progress is a side channel: it never affects the deterministic result.
  std::size_t progress_every_shards = 0;
  std::function<void(const SweepProgress&)> progress;
  /// Attach a per-shard Telemetry bundle (trace ring of this many events,
  /// probes off) to every shard's jammer (0 = no per-shard telemetry).
  /// Shard event counters and latency histograms merge into
  /// SweepReport::metrics (minus wall-clock counters, keeping the merge
  /// bit-identical across thread counts), and each shard's trace becomes a
  /// lane of SweepReport::shard_traces / write_campaign_trace().
  std::size_t trace_events_per_shard = 0;
};

/// One schedulable unit: a contiguous range of trials of one sweep point.
struct ShardTask {
  std::size_t point = 0;        // index into the sweep's point axis
  std::size_t index = 0;        // global shard index (result slot + seed stream)
  std::uint64_t seed = 0;       // dsp::derive_seed(config.seed, index)
  std::size_t first_trial = 0;  // offset of the shard's first trial in its point
  std::size_t trials = 0;
};

/// Adaptive shard granularity bounds: shards never shrink below
/// kMinAutoShardTrials (a ReactiveJammer build per shard must amortise)
/// and never grow beyond kMaxAutoShardTrials (a killed campaign loses at
/// most one shard of work per worker; see core/campaign.h).
inline constexpr std::size_t kMinAutoShardTrials = 16;
inline constexpr std::size_t kMaxAutoShardTrials = 4096;

/// Pick a shard size for a num_points × trials_per_point grid drained by
/// `threads` workers (0 => hardware concurrency): enough shards to balance
/// the pool (~8 per worker, at least one per point) without paying a
/// per-shard setup cost on tiny slices. Results never depend on the choice
/// — only scheduling overhead and checkpoint granularity do.
[[nodiscard]] std::size_t resolve_shard_trials(std::size_t num_points,
                                               std::size_t trials_per_point,
                                               unsigned threads);

/// Cut num_points × trials_per_point into the deterministic shard list:
/// points in order, each point's trials in contiguous shards of at most
/// config.shard_trials, global shard indices (and therefore seed streams)
/// assigned in schedule order. config.shard_trials == 0 resolves an
/// adaptive size via resolve_shard_trials(num_points, trials_per_point,
/// config.threads).
[[nodiscard]] std::vector<ShardTask> make_shard_schedule(
    std::size_t num_points, const SweepConfig& config);

/// Execute every task exactly once on a pool of `threads` workers (0 =>
/// hardware concurrency; 1 => run inline in index order, no threads
/// spawned). The kernel must write its outcome into caller-owned storage
/// keyed by task.index or task.point — slots are never contended because
/// indices are unique. The first exception thrown by a kernel aborts the
/// pool: workers stop claiming new shards (shards already in flight finish),
/// and the exception is rethrown here after the pool drains — a fatal error
/// early in a 10^6-trial campaign must not burn the rest of the grid.
/// Returns the worker count actually used — the requested count clamped to
/// tasks.size() (0 when there is no work).
unsigned run_shards(std::span<const ShardTask> tasks, unsigned threads,
                    const std::function<void(const ShardTask&)>& kernel);

struct SweepPointReport {
  double snr_db = 0.0;
  std::uint64_t seed = 0;  // per-point base seed the trials derived from
  DetectionRunResult result;
};

struct SweepReport {
  std::vector<SweepPointReport> points;
  unsigned threads_used = 1;
  std::size_t shards = 0;
  double wall_seconds = 0.0;
  /// Trials executed per shard, by shard index (diagnostics: the schedule
  /// is deterministic, so this vector is too).
  std::vector<std::uint64_t> shard_trials;
  /// Per-shard registries merged in shard-index order: sweep.trials,
  /// sweep.frames_detected, sweep.detections counters and the
  /// sweep.detections_per_trial histogram. With trace_events_per_shard set,
  /// also the merged fabric event counters and latency histograms from the
  /// per-shard telemetry, plus the campaign.* aggregates (shards, trials,
  /// threads, wall_s, trials_per_s) stamped by the engine.
  obs::MetricsRegistry metrics;
  /// One trace lane per shard (trace_events_per_shard > 0), keyed by shard
  /// index, each named after its shard and SNR point.
  std::vector<obs::TraceRecorder::TraceLane> shard_traces;

  /// Merge the shard lanes into one Chrome trace (one process per shard;
  /// see TraceRecorder::write_merged_chrome_trace). False when there are
  /// no lanes or the file cannot be written.
  [[nodiscard]] bool write_campaign_trace(const std::string& path) const {
    if (shard_traces.empty()) return false;
    return obs::TraceRecorder::write_merged_chrome_trace(path, shard_traces);
  }

  [[nodiscard]] std::size_t total_trials() const noexcept {
    std::size_t n = 0;
    for (const auto& p : points) n += p.result.frames_sent;
    return n;
  }
  [[nodiscard]] double trials_per_second() const noexcept {
    return wall_seconds > 0.0
               ? static_cast<double>(total_trials()) / wall_seconds
               : 0.0;
  }
};

/// Fig. 6/7/8-style parallel detection sweep: for each SNR point, run
/// `sweep.trials_per_point` independent trials of `frame_native` against a
/// fresh jammer programmed with `jammer_config`, sharded across the worker
/// pool. `base` supplies the non-swept knobs (noise floor, lead-in, rates,
/// CFO bound); its snr_db / num_frames / seed are overridden per point.
/// Point p's trials derive from seed dsp::derive_seed(sweep.seed, p), so
/// the per-point aggregates equal a sequential run_detection_experiment()
/// with that seed, bit for bit.
[[nodiscard]] SweepReport run_detection_sweep(
    const JammerConfig& jammer_config,
    std::span<const dsp::cfloat> frame_native, DetectorTap tap,
    const DetectionRunConfig& base, std::span<const double> snr_points_db,
    const SweepConfig& sweep);

}  // namespace rjf::core
