#include "core/event_builder.h"

#include <cstdio>

#include "core/calibration.h"
#include "core/templates.h"

namespace rjf::core {
namespace {

std::uint32_t calibrated_threshold(const fpga::CorrelatorTemplate& tpl,
                                   double false_alarms_per_s) {
  return XcorrNoiseModel(tpl).threshold_for_rate(false_alarms_per_s);
}

}  // namespace

JammingEventBuilder& JammingEventBuilder::detect_wifi_short_preamble(
    double false_alarms_per_s) {
  config_.detection = DetectionMode::kCrossCorrelator;
  config_.xcorr_template = wifi_short_preamble_template();
  config_.xcorr_threshold =
      calibrated_threshold(*config_.xcorr_template, false_alarms_per_s);
  detection_set_ = true;
  detection_label_ = "xcorr(WiFi STS)";
  return *this;
}

JammingEventBuilder& JammingEventBuilder::detect_wifi_long_preamble(
    double false_alarms_per_s) {
  config_.detection = DetectionMode::kCrossCorrelator;
  config_.xcorr_template = wifi_long_preamble_template();
  config_.xcorr_threshold =
      calibrated_threshold(*config_.xcorr_template, false_alarms_per_s);
  detection_set_ = true;
  detection_label_ = "xcorr(WiFi LTS)";
  return *this;
}

JammingEventBuilder& JammingEventBuilder::detect_wifi_dsss_preamble(
    double false_alarms_per_s) {
  config_.detection = DetectionMode::kCrossCorrelator;
  config_.xcorr_template = wifi_dsss_preamble_template();
  config_.xcorr_threshold =
      calibrated_threshold(*config_.xcorr_template, false_alarms_per_s);
  detection_set_ = true;
  detection_label_ = "xcorr(802.11b SYNC)";
  return *this;
}

JammingEventBuilder& JammingEventBuilder::detect_wimax_preamble(
    unsigned cell_id, unsigned segment, double false_alarms_per_s) {
  config_.detection = DetectionMode::kCrossCorrelator;
  config_.xcorr_template = wimax_preamble_template(cell_id, segment);
  config_.xcorr_threshold =
      calibrated_threshold(*config_.xcorr_template, false_alarms_per_s);
  detection_set_ = true;
  detection_label_ = "xcorr(WiMAX preamble)";
  return *this;
}

JammingEventBuilder& JammingEventBuilder::detect_energy_rise(
    double threshold_db) {
  config_.detection = DetectionMode::kEnergyRise;
  config_.energy_high_db = threshold_db;
  detection_set_ = true;
  detection_label_ = "energy-rise";
  return *this;
}

JammingEventBuilder& JammingEventBuilder::detect_energy_fall(
    double threshold_db) {
  config_.detection = DetectionMode::kEnergyFall;
  config_.energy_low_db = threshold_db;
  detection_set_ = true;
  detection_label_ = "energy-fall";
  return *this;
}

JammingEventBuilder& JammingEventBuilder::or_energy_rise(double threshold_db) {
  if (config_.detection != DetectionMode::kCrossCorrelator) {
    error_ = "or_energy_rise() requires a correlator detection first";
    return *this;
  }
  config_.detection = DetectionMode::kXcorrOrEnergy;
  config_.energy_high_db = threshold_db;
  detection_label_ += " | energy-rise";
  return *this;
}

JammingEventBuilder& JammingEventBuilder::continuous() {
  config_.detection = DetectionMode::kContinuous;
  detection_set_ = true;
  uptime_set_ = true;  // continuous mode manages its own uptime
  detection_label_ = "continuous";
  return *this;
}

JammingEventBuilder& JammingEventBuilder::white_noise() {
  config_.waveform = fpga::JamWaveform::kWhiteNoise;
  return *this;
}

JammingEventBuilder& JammingEventBuilder::replay_last_samples() {
  config_.waveform = fpga::JamWaveform::kReplay;
  return *this;
}

JammingEventBuilder& JammingEventBuilder::host_stream() {
  config_.waveform = fpga::JamWaveform::kHostStream;
  return *this;
}

JammingEventBuilder& JammingEventBuilder::uptime(double seconds) {
  if (seconds <= 0.0) {
    error_ = "uptime must be positive";
    return *this;
  }
  config_.jam_uptime_samples = JammerConfig::samples_from_seconds(seconds);
  uptime_set_ = true;
  return *this;
}

JammingEventBuilder& JammingEventBuilder::delay(double seconds) {
  if (seconds < 0.0 || seconds > 65535.0 / 25e6) {
    error_ = "delay out of the 16-bit register range (0 .. 2.6 ms)";
    return *this;
  }
  config_.jam_delay_samples =
      static_cast<std::uint32_t>(seconds * 25e6);
  return *this;
}

std::optional<JammerConfig> JammingEventBuilder::build() {
  if (!error_.empty()) return std::nullopt;
  if (!detection_set_) {
    error_ = "no detection selected";
    return std::nullopt;
  }
  if (!uptime_set_) {
    error_ = "no jam uptime selected";
    return std::nullopt;
  }
  config_.description = describe();
  return config_;
}

std::string JammingEventBuilder::describe() const {
  char line[256];
  std::snprintf(line, sizeof line,
                "detect=%s waveform=%s uptime=%.2f us delay=%.2f us",
                detection_label_.c_str(),
                config_.waveform == fpga::JamWaveform::kWhiteNoise ? "WGN"
                : config_.waveform == fpga::JamWaveform::kReplay   ? "replay"
                                                                   : "host",
                config_.jam_uptime_samples / 25.0,
                config_.jam_delay_samples / 25.0);
  return line;
}

}  // namespace rjf::core
