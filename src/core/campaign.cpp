#include "core/campaign.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "core/scenario.h"
#include "dsp/rng.h"
#include "fpga/dsp_core.h"

namespace rjf::core {

namespace {

/// FNV-1a over a sequence of 64-bit words (store checksums and the spec
/// fingerprint share it).
std::uint64_t fnv1a_words(const std::uint64_t* words, std::size_t n,
                          std::uint64_t h = 0xcbf29ce484222325ull) noexcept {
  for (std::size_t w = 0; w < n; ++w) {
    std::uint64_t v = words[w];
    for (int b = 0; b < 8; ++b) {
      h ^= v & 0xFFu;
      h *= 0x100000001b3ull;
      v >>= 8;
    }
  }
  return h;
}

std::uint64_t fold_double(std::uint64_t h, double v) noexcept {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  return fnv1a_words(&bits, 1, h);
}

std::uint64_t fold_word(std::uint64_t h, std::uint64_t v) noexcept {
  return fnv1a_words(&v, 1, h);
}

bool read_words(std::FILE* f, std::uint64_t* out, std::size_t n) {
  return std::fread(out, sizeof(std::uint64_t), n, f) == n;
}

/// Per-point totals folded from shard records; plain unsigned adds, so the
/// fold is associative and commutative — record order can never matter.
struct PointTotals {
  std::uint64_t trials = 0;
  std::uint64_t frames_detected = 0;
  std::uint64_t total_detections = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t overflow_gaps = 0;
  std::uint64_t samples_lost = 0;
  std::uint64_t trigger_latency_sum = 0;
  std::uint64_t trigger_latency_count = 0;

  void fold(const ShardRecord& r) noexcept {
    trials += r.trials;
    frames_detected += r.frames_detected;
    total_detections += r.total_detections;
    faults_injected += r.faults_injected;
    overflow_gaps += r.overflow_gaps;
    samples_lost += r.samples_lost;
    trigger_latency_sum += r.trigger_latency_sum;
    trigger_latency_count += r.trigger_latency_count;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// ShardRecord / ShardStore

std::uint64_t ShardRecord::compute_checksum() const noexcept {
  const std::uint64_t words[kWords - 1] = {
      point,          shard_index,    first_trial,
      trials,         frames_detected, total_detections,
      faults_injected, overflow_gaps,  samples_lost,
      trigger_latency_sum, trigger_latency_count};
  return fnv1a_words(words, kWords - 1);
}

std::unique_ptr<ShardStore> ShardStore::create(const std::string& path,
                                               const ShardStoreHeader& header) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return nullptr;
  const std::uint64_t words[8] = {kMagic,
                                  kVersion,
                                  header.fingerprint,
                                  header.campaign_seed,
                                  header.num_points,
                                  header.trials_per_point,
                                  header.shard_trials,
                                  header.num_shards};
  if (std::fwrite(words, sizeof(std::uint64_t), 8, f) != 8 ||
      std::fflush(f) != 0) {
    std::fclose(f);
    return nullptr;
  }
  return std::unique_ptr<ShardStore>(new ShardStore(f));
}

std::optional<ShardStore::Loaded> ShardStore::load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::uint64_t words[8];
  if (!read_words(f, words, 8) || words[0] != kMagic || words[1] != kVersion) {
    std::fclose(f);
    return std::nullopt;
  }
  Loaded loaded;
  loaded.header.fingerprint = words[2];
  loaded.header.campaign_seed = words[3];
  loaded.header.num_points = words[4];
  loaded.header.trials_per_point = words[5];
  loaded.header.shard_trials = words[6];
  loaded.header.num_shards = words[7];

  // Records until EOF; a short read or checksum mismatch means the writer
  // died mid-append — everything from that point on is discarded.
  for (;;) {
    std::uint64_t rec[ShardRecord::kWords];
    const std::size_t got =
        std::fread(rec, sizeof(std::uint64_t), ShardRecord::kWords, f);
    if (got == 0) break;
    ShardRecord record;
    if (got == ShardRecord::kWords) {
      record.point = rec[0];
      record.shard_index = rec[1];
      record.first_trial = rec[2];
      record.trials = rec[3];
      record.frames_detected = rec[4];
      record.total_detections = rec[5];
      record.faults_injected = rec[6];
      record.overflow_gaps = rec[7];
      record.samples_lost = rec[8];
      record.trigger_latency_sum = rec[9];
      record.trigger_latency_count = rec[10];
      record.checksum = rec[11];
    }
    if (got != ShardRecord::kWords ||
        record.checksum != record.compute_checksum()) {
      loaded.dropped_bytes = got * sizeof(std::uint64_t);
      long pos = std::ftell(f);
      if (pos >= 0) {
        // Count whatever trails the bad record too.
        std::fseek(f, 0, SEEK_END);
        const long end = std::ftell(f);
        if (end > pos) loaded.dropped_bytes += static_cast<std::uint64_t>(end - pos);
      }
      break;
    }
    loaded.records.push_back(record);
  }
  std::fclose(f);
  return loaded;
}

std::unique_ptr<ShardStore> ShardStore::open_append(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return nullptr;
  return std::unique_ptr<ShardStore>(new ShardStore(f));
}

ShardStore::~ShardStore() {
  if (file_ != nullptr) std::fclose(file_);
}

bool ShardStore::append(ShardRecord record) {
  record.checksum = record.compute_checksum();
  const std::uint64_t words[ShardRecord::kWords] = {
      record.point,          record.shard_index,
      record.first_trial,    record.trials,
      record.frames_detected, record.total_detections,
      record.faults_injected, record.overflow_gaps,
      record.samples_lost,   record.trigger_latency_sum,
      record.trigger_latency_count, record.checksum};
  const std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return false;
  if (std::fwrite(words, sizeof(std::uint64_t), ShardRecord::kWords, file_) !=
      ShardRecord::kWords)
    return false;
  return std::fflush(file_) == 0;
}

// ---------------------------------------------------------------------------
// CampaignSpec

std::uint64_t CampaignSpec::fingerprint() const {
  const ProtocolTarget& tgt = target_or_throw(target);
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fold_word(h, tgt.name.size());
  for (const char c : tgt.name)
    h = fold_word(h, static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  h = fold_double(h, tgt.native_rate_hz);
  h = fold_word(h, grid.rate_indices.size());
  for (const std::size_t idx : grid.rate_indices) {
    h = fold_word(h, idx);
    h = fold_word(h, idx < tgt.rates.size() ? tgt.rates[idx].id : ~0ull);
  }
  h = fold_word(h, grid.fault_scales.size());
  for (const double s : grid.fault_scales) h = fold_double(h, s);
  h = fold_word(h, grid.snrs_db.size());
  for (const double s : grid.snrs_db) h = fold_double(h, s);
  h = fold_word(h, grid.trials_per_point);
  h = fold_word(h, seed);
  h = fold_word(h, static_cast<std::uint64_t>(tap));
  h = fold_word(h, psdu_bytes);
  h = fold_word(h, psdu_fill);
  h = fold_word(h, scrambler_seed);
  h = fold_double(h, base.noise_power);
  h = fold_word(h, base.lead_in);
  h = fold_word(h, base.tail);
  h = fold_double(h, base.tx_rate_hz);
  h = fold_word(h, base.timing_phases);
  h = fold_double(h, base.max_cfo_hz);
  // Detector identity: mode + thresholds. Template taps are derived from
  // the config's template vector; fold its values too so a retuned
  // detector cannot silently resume an old store.
  h = fold_word(h, static_cast<std::uint64_t>(jammer.detection));
  h = fold_word(h, static_cast<std::uint64_t>(jammer.xcorr_threshold));
  h = fold_double(h, jammer.energy_high_db);
  h = fold_double(h, jammer.energy_low_db);
  h = fold_word(h, jammer.energy_floor);
  h = fold_word(h, jammer.trigger_window_cycles);
  h = fold_word(h, jammer.xcorr_template.has_value() ? 1u : 0u);
  if (jammer.xcorr_template.has_value()) {
    for (const int c : jammer.xcorr_template->coef_i)
      h = fold_word(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(c)));
    for (const int c : jammer.xcorr_template->coef_q)
      h = fold_word(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(c)));
  }
  return h;
}

// ---------------------------------------------------------------------------
// CampaignReport

std::string CampaignReport::to_csv() const {
  char line[512];
  std::string out;
  std::snprintf(line, sizeof line,
                "# rjf-campaign-v1 target=%s points=%zu trials_per_point=%zu "
                "complete=%d\n",
                target.c_str(), points.size(), grid.trials_per_point,
                complete ? 1 : 0);
  out += line;
  out +=
      "rate_mbps,fault_scale,snr_db,trials,frames_detected,total_detections,"
      "p_det,detections_per_frame,faults_injected,overflow_gaps,samples_lost,"
      "trigger_latency_count,trigger_latency_mean_ticks\n";
  for (const CampaignPointResult& p : points) {
    std::snprintf(line, sizeof line,
                  "%g,%.9g,%.9g,%llu,%zu,%llu,%.9f,%.9f,%llu,%llu,%llu,%llu,"
                  "%.6f\n",
                  p.rate_mbps, p.fault_scale, p.snr_db,
                  static_cast<unsigned long long>(p.trials_done),
                  p.result.frames_detected,
                  static_cast<unsigned long long>(p.result.total_detections),
                  p.result.probability, p.result.detections_per_frame,
                  static_cast<unsigned long long>(p.faults_injected),
                  static_cast<unsigned long long>(p.overflow_gaps),
                  static_cast<unsigned long long>(p.samples_lost),
                  static_cast<unsigned long long>(p.trigger_latency_count),
                  p.trigger_latency_mean_ticks);
    out += line;
  }
  return out;
}

// ---------------------------------------------------------------------------
// run_campaign

CampaignReport run_campaign(const CampaignSpec& spec,
                            const std::string& store_path) {
  const auto started = std::chrono::steady_clock::now();  // fabric-lint: allow(wall-clock-or-rand) elapsed-time report only
  const CampaignGrid& grid = spec.grid;
  const std::size_t num_points = grid.num_points();
  if (num_points == 0 || grid.trials_per_point == 0)
    throw std::invalid_argument("run_campaign: empty grid");
  const ProtocolTarget& target = target_or_throw(spec.target);
  for (const std::size_t idx : grid.rate_indices)
    if (idx >= target.rates.size())
      throw std::invalid_argument("run_campaign: rate index out of range for "
                                  "target '" + target.name + "'");

  const unsigned threads =
      spec.threads != 0 ? spec.threads
                        : std::max(1u, std::thread::hardware_concurrency());

  ShardStoreHeader header;
  header.fingerprint = spec.fingerprint();
  header.campaign_seed = spec.seed;
  header.num_points = num_points;
  header.trials_per_point = grid.trials_per_point;
  header.shard_trials =
      spec.shard_trials != 0
          ? spec.shard_trials
          : resolve_shard_trials(num_points, grid.trials_per_point, threads);

  // Resume or create. On resume the stored shard granularity wins (the
  // schedule must match the records), and every identity field must agree.
  std::vector<ShardRecord> prior_records;
  bool resuming = false;
  if (auto loaded = ShardStore::load(store_path)) {
    resuming = true;
    const ShardStoreHeader& on_disk = loaded->header;
    if (on_disk.fingerprint != header.fingerprint ||
        on_disk.campaign_seed != header.campaign_seed ||
        on_disk.num_points != header.num_points ||
        on_disk.trials_per_point != header.trials_per_point)
      throw std::runtime_error(
          "run_campaign: shard store '" + store_path +
          "' belongs to a different campaign (fingerprint mismatch); "
          "move it aside or rerun with the original spec");
    header.shard_trials = on_disk.shard_trials;
    prior_records = std::move(loaded->records);
  }

  SweepConfig schedule_config;
  schedule_config.trials_per_point = grid.trials_per_point;
  schedule_config.shard_trials = static_cast<std::size_t>(header.shard_trials);
  schedule_config.seed = spec.seed;
  const std::vector<ShardTask> schedule =
      make_shard_schedule(num_points, schedule_config);
  header.num_shards = schedule.size();

  // Fold durable records into per-point totals; duplicates (there should
  // never be any — resume skips recorded shards) count as replayed work and
  // are excluded from the totals so the merge stays exact.
  std::vector<PointTotals> totals(num_points);
  std::vector<bool> recorded(schedule.size(), false);
  std::uint64_t trials_replayed = 0;
  for (const ShardRecord& r : prior_records) {
    if (r.shard_index >= schedule.size() || r.point >= num_points ||
        recorded[r.shard_index]) {
      trials_replayed += r.trials;
      continue;
    }
    recorded[r.shard_index] = true;
    totals[r.point].fold(r);
  }
  std::size_t shards_already_complete = 0;
  for (const bool done : recorded) shards_already_complete += done ? 1 : 0;

  // The work that remains, in schedule order; an optional batch window
  // bounds how much of it THIS invocation runs.
  std::vector<ShardTask> remaining;
  remaining.reserve(schedule.size() - shards_already_complete);
  for (const ShardTask& task : schedule)
    if (!recorded[task.index]) remaining.push_back(task);
  if (spec.max_shards_this_run > 0 &&
      remaining.size() > spec.max_shards_this_run)
    remaining.resize(spec.max_shards_this_run);

  std::unique_ptr<ShardStore> store =
      resuming ? ShardStore::open_append(store_path)
               : ShardStore::create(store_path, header);
  if (store == nullptr)
    throw std::runtime_error("run_campaign: cannot open shard store '" +
                             store_path + "'");

  // Frames build lazily per rate (shared by every scale×SNR point of that
  // rate), and plans lazily per point — a resumed campaign only prepares
  // the points that still have shards outstanding.
  const std::vector<std::uint8_t> psdu(std::max<std::size_t>(spec.psdu_bytes, 1),
                                       spec.psdu_fill);
  std::vector<dsp::cvec> frames(grid.rate_indices.size());
  std::unique_ptr<std::once_flag[]> frame_once(
      new std::once_flag[grid.rate_indices.size()]);
  auto frame_for_rate = [&](std::size_t rate_index) -> const dsp::cvec& {
    std::call_once(frame_once[rate_index], [&] {
      frames[rate_index] = target.make_frame(grid.rate_indices[rate_index],
                                             psdu, spec.scrambler_seed);
    });
    return frames[rate_index];
  };

  LazyPlanTable plans(num_points, [&](std::size_t point) {
    const CampaignGrid::Coords c = grid.coords(point);
    DetectionRunConfig config = spec.base;
    config.snr_db = grid.snrs_db[c.snr_index];
    config.num_frames = grid.trials_per_point;
    config.seed = dsp::derive_seed(spec.seed, point);
    config.tx_rate_hz = target.native_rate_hz;
    return prepare_detection_trials(frame_for_rate(c.rate_index), spec.tap,
                                    config);
  });

  // Progress accounting (side channel; never feeds the report's
  // deterministic fields). Totals fold under a mutex — shards are coarse,
  // so contention is negligible next to the trials themselves.
  std::uint64_t trials_remaining = 0;
  for (const ShardTask& task : remaining) trials_remaining += task.trials;
  std::atomic<std::size_t> shards_done{0};
  std::atomic<std::uint64_t> trials_done{0};
  std::atomic<std::uint64_t> faults_seen{0};
  std::atomic<std::uint64_t> trials_run{0};
  std::mutex merge_mutex;
  bool append_failed = false;

  const unsigned pool_size =
      run_shards(remaining, threads, [&](const ShardTask& task) {
        const DetectionTrialPlan& plan = plans.get(task.point);
        std::size_t max_variant = 0;
        for (const dsp::cvec& v : plan.variants)
          max_variant = std::max(max_variant, v.size());
        const std::uint64_t horizon = plan.lead_in + max_variant + plan.tail;
        const std::uint64_t lead_ticks =
            static_cast<std::uint64_t>(plan.lead_in) * fpga::kClocksPerSample;

        ReactiveJammer jammer(spec.jammer);
        std::unique_ptr<CampaignTrialHook> hook;
        if (spec.make_trial_hook) hook = spec.make_trial_hook();

        ShardRecord record;
        record.point = task.point;
        record.shard_index = task.index;
        record.first_trial = task.first_trial;
        record.trials = task.trials;
        for (std::size_t t = task.first_trial;
             t < task.first_trial + task.trials; ++t) {
          if (hook != nullptr)
            hook->before_trial(jammer, task.point, t, horizon);
          const DetectionTrialOutcome trial =
              run_detection_trial(jammer, plan, t);
          if (hook != nullptr)
            record.faults_injected += hook->after_trial(jammer);
          record.total_detections += trial.events;
          if (trial.events > 0) ++record.frames_detected;
          record.overflow_gaps += trial.overflow_gaps;
          record.samples_lost += trial.samples_lost;
          if (trial.jam_triggers > 0 && trial.last_trigger_vita >= lead_ticks) {
            record.trigger_latency_sum += trial.last_trigger_vita - lead_ticks;
            ++record.trigger_latency_count;
          }
        }

        // Durable first, merged second: a kill between the two re-runs
        // nothing (the record is already on disk; the in-memory fold is
        // rebuilt from it on resume).
        const bool appended = store->append(record);

        {
          const std::lock_guard<std::mutex> lock(merge_mutex);
          totals[task.point].fold(record);
          if (!appended) append_failed = true;
        }
        trials_run.fetch_add(task.trials, std::memory_order_relaxed);
        faults_seen.fetch_add(record.faults_injected,
                              std::memory_order_relaxed);

        const std::size_t done =
            shards_done.fetch_add(1, std::memory_order_relaxed) + 1;
        trials_done.fetch_add(task.trials, std::memory_order_relaxed);
        if (spec.progress_every_shards > 0 && spec.progress &&
            (done % spec.progress_every_shards == 0 ||
             done == remaining.size())) {
          SweepProgress prog;
          prog.shards_done = shards_already_complete + done;
          prog.shards_total = schedule.size();
          prog.trials_done = trials_done.load(std::memory_order_relaxed);
          prog.trials_total = trials_remaining;
          prog.faults = faults_seen.load(std::memory_order_relaxed);
          prog.elapsed_seconds =
              std::chrono::duration<double>(std::chrono::steady_clock::now() - started)  // fabric-lint: allow(wall-clock-or-rand) elapsed-time report only
                  .count();
          if (prog.elapsed_seconds > 0.0)
            prog.trials_per_second =
                static_cast<double>(prog.trials_done) / prog.elapsed_seconds;
          if (prog.trials_per_second > 0.0)
            prog.eta_seconds =
                static_cast<double>(trials_remaining - prog.trials_done) /
                prog.trials_per_second;
          spec.progress(prog);
        }
      });

  if (append_failed)
    throw std::runtime_error(
        "run_campaign: shard store append failed (disk full?); completed "
        "shards up to the failure are durable");

  CampaignReport report;
  report.grid = grid;
  report.target = spec.target;
  report.threads_used = std::max(1u, pool_size);
  report.shards_total = schedule.size();
  report.shards_already_complete = shards_already_complete;
  report.shards_run = remaining.size();
  report.trials_run = trials_run.load(std::memory_order_relaxed);
  report.trials_replayed = trials_replayed;
  report.plans_built = plans.plans_built();
  report.complete =
      shards_already_complete + remaining.size() == schedule.size();

  report.points.resize(num_points);
  for (std::size_t p = 0; p < num_points; ++p) {
    const CampaignGrid::Coords c = grid.coords(p);
    CampaignPointResult& point = report.points[p];
    const TargetRate& rate = target.rates[grid.rate_indices[c.rate_index]];
    point.rate_mbps = rate.mbps;
    point.rate_id = rate.id;
    point.fault_scale = grid.fault_scales[c.scale_index];
    point.snr_db = grid.snrs_db[c.snr_index];
    const PointTotals& tot = totals[p];
    point.trials_done = tot.trials;
    point.result.frames_sent = static_cast<std::size_t>(tot.trials);
    point.result.frames_detected =
        static_cast<std::size_t>(tot.frames_detected);
    point.result.total_detections = tot.total_detections;
    if (tot.trials > 0) {
      point.result.probability = static_cast<double>(tot.frames_detected) /
                                 static_cast<double>(tot.trials);
      point.result.detections_per_frame =
          static_cast<double>(tot.total_detections) /
          static_cast<double>(tot.trials);
    }
    point.faults_injected = tot.faults_injected;
    point.overflow_gaps = tot.overflow_gaps;
    point.samples_lost = tot.samples_lost;
    point.trigger_latency_count = tot.trigger_latency_count;
    if (tot.trigger_latency_count > 0)
      point.trigger_latency_mean_ticks =
          static_cast<double>(tot.trigger_latency_sum) /
          static_cast<double>(tot.trigger_latency_count);
  }

  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)  // fabric-lint: allow(wall-clock-or-rand) elapsed-time report only
          .count();
  return report;
}

}  // namespace rjf::core
