// Checkpointable million-trial campaign runner.
//
// A campaign is the sweep engine (core/sweep.h) scaled to overnight runs: a
// full grid over {protocol rate, fault scale, SNR} axes, cut into shards
// whose seeds derive from dsp::derive_seed(campaign_seed, point) and — one
// level finer — per-trial streams from the point seed, exactly the
// discipline DESIGN §9 proved for the sweep engine. The merged result is
// therefore bit-identical however the campaign is split: across worker
// threads, across shard sizes, across sequential process invocations
// (batch windows via max_shards_this_run), and across kill/resume
// boundaries.
//
// Durability comes from the shard store: every completed shard appends one
// fixed-width, checksummed record (point id, shard index, trial range,
// DetectionTrialCounts, fault counters) to a flat binary file and flushes
// it. A killed run resumes from the last durable record — the schedule is
// recomputed, already-recorded shards are skipped, and the merged report is
// a streaming fold over (stored records + freshly run shards) in which
// every accumulator is an unsigned integer, so fold order cannot change a
// byte of the output. Reports never materialise per-trial rows: memory is
// O(points), not O(trials).
//
// See DESIGN.md §13 "Campaign runner" for the store format and the
// seed-space partitioning argument.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/detection_experiment.h"
#include "core/sweep.h"

namespace rjf::core {

/// The swept axes. Point ids are rate-major:
///   point = (rate_index * fault_scales.size() + scale_index) * snrs_db.size()
///         + snr_index
/// so the SNR axis is contiguous within one (rate, scale) row, mirroring
/// the fault sweep's scale-major layout.
struct CampaignGrid {
  /// Rate axis: indices into the campaign target's rate table
  /// (ProtocolTarget::rates, see core/scenario.h). {0} is the target's
  /// first rate; tools resolve Mb/s values to indices against the table.
  std::vector<std::size_t> rate_indices{0};
  std::vector<double> fault_scales{0.0};
  std::vector<double> snrs_db{0.0};
  std::size_t trials_per_point = 1000;

  struct Coords {
    std::size_t rate_index = 0;
    std::size_t scale_index = 0;
    std::size_t snr_index = 0;
  };

  [[nodiscard]] std::size_t num_points() const noexcept {
    return rate_indices.size() * fault_scales.size() * snrs_db.size();
  }
  [[nodiscard]] std::uint64_t total_trials() const noexcept {
    return static_cast<std::uint64_t>(num_points()) * trials_per_point;
  }
  [[nodiscard]] Coords coords(std::size_t point) const noexcept {
    Coords c;
    c.snr_index = point % snrs_db.size();
    const std::size_t row = point / snrs_db.size();
    c.scale_index = row % fault_scales.size();
    c.rate_index = row / fault_scales.size();
    return c;
  }
  [[nodiscard]] std::size_t point_of(const Coords& c) const noexcept {
    return (c.rate_index * fault_scales.size() + c.scale_index) *
               snrs_db.size() +
           c.snr_index;
  }
};

// ---------------------------------------------------------------------------
// Shard store: durable fixed-width records + header.

/// One durable record per completed shard. All fields are unsigned 64-bit
/// words written native-endian; `checksum` is FNV-1a over the preceding
/// words so a torn append (process killed mid-write) is detected and the
/// partial tail record dropped on load.
struct ShardRecord {
  std::uint64_t point = 0;
  std::uint64_t shard_index = 0;
  std::uint64_t first_trial = 0;
  std::uint64_t trials = 0;
  std::uint64_t frames_detected = 0;
  std::uint64_t total_detections = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t overflow_gaps = 0;
  std::uint64_t samples_lost = 0;
  std::uint64_t trigger_latency_sum = 0;    // fabric ticks, triggered trials
  std::uint64_t trigger_latency_count = 0;
  std::uint64_t checksum = 0;

  static constexpr std::size_t kWords = 12;
  [[nodiscard]] std::uint64_t compute_checksum() const noexcept;
};

/// Identity of the campaign a store belongs to. `fingerprint` folds the
/// grid axes and every result-relevant config field (see
/// CampaignSpec::fingerprint), so resuming with a different campaign
/// definition is rejected instead of silently merging incompatible counts.
struct ShardStoreHeader {
  std::uint64_t fingerprint = 0;
  std::uint64_t campaign_seed = 0;
  std::uint64_t num_points = 0;
  std::uint64_t trials_per_point = 0;
  /// Shard granularity the schedule was cut with. Resume adopts this value
  /// (the spec's may differ, e.g. adaptive resolution under a different
  /// thread count) so record trial ranges always match the schedule.
  std::uint64_t shard_trials = 0;
  std::uint64_t num_shards = 0;
};

/// Append-only store of completed-shard records. One writer at a time;
/// appends are internally serialised and flushed so a SIGKILL loses at most
/// the record being written (never a previously appended one).
class ShardStore {
 public:
  struct Loaded {
    ShardStoreHeader header;
    std::vector<ShardRecord> records;   // valid records, file order
    std::uint64_t dropped_bytes = 0;    // torn/corrupt tail discarded on load
  };

  /// Create a fresh store (truncates any existing file) and write the
  /// header. Null on I/O failure.
  [[nodiscard]] static std::unique_ptr<ShardStore> create(
      const std::string& path, const ShardStoreHeader& header);

  /// Parse an existing store. Nullopt when the file is missing or its
  /// magic/version/header is unreadable. Records with a bad checksum (torn
  /// tail) and anything after them are dropped, not errors.
  [[nodiscard]] static std::optional<Loaded> load(const std::string& path);

  /// Reopen an existing store for appending (after load()).
  [[nodiscard]] static std::unique_ptr<ShardStore> open_append(
      const std::string& path);

  ~ShardStore();
  ShardStore(const ShardStore&) = delete;
  ShardStore& operator=(const ShardStore&) = delete;

  /// Append one record (checksum stamped here) and flush it to the OS.
  /// Thread-safe. Returns false on I/O failure.
  bool append(ShardRecord record);

  static constexpr std::uint64_t kMagic = 0x31504D41434A5246ull;  // "RJFCAMP1"
  static constexpr std::uint64_t kVersion = 1;

 private:
  explicit ShardStore(std::FILE* file) : file_(file) {}
  std::FILE* file_ = nullptr;
  std::mutex mu_;
};

// ---------------------------------------------------------------------------
// Campaign execution.

/// Per-trial fault-axis seam. The campaign core stays independent of
/// src/fault: implementations (see fault::campaign_fault_hook_factory) wire
/// a deterministic FaultInjector keyed on (point, trial) only. One hook
/// instance is created per shard, so implementations need no internal
/// locking.
class CampaignTrialHook {
 public:
  virtual ~CampaignTrialHook() = default;
  /// Called before each trial with the capture horizon in fabric samples.
  virtual void before_trial(ReactiveJammer& jammer, std::size_t point,
                            std::size_t trial,
                            std::uint64_t horizon_samples) = 0;
  /// Called after the trial; detaches and returns faults injected.
  virtual std::uint64_t after_trial(ReactiveJammer& jammer) = 0;
};

struct CampaignSpec {
  CampaignGrid grid;
  JammerConfig jammer;
  /// Protocol-target registry key (core/scenario.h): supplies the frame
  /// factory and native sample rate for every rate-axis entry. The default
  /// reproduces the original hard-coded 802.11a/g OFDM path.
  std::string target = "wifi_ofdm";
  /// Non-swept trial knobs; snr_db / num_frames / seed overridden per
  /// point, tx_rate_hz overridden with the target's native rate.
  DetectionRunConfig base;
  DetectorTap tap = DetectorTap::kXcorr;

  /// Frame synthesised per rate-axis entry: psdu_bytes of psdu_fill through
  /// the target's transmitter at that rate.
  std::size_t psdu_bytes = 310;
  std::uint8_t psdu_fill = 0xA5;
  std::uint8_t scrambler_seed = 0x5D;

  std::uint64_t seed = 1;
  /// 0 = adaptive (resolve_shard_trials over the whole grid).
  std::size_t shard_trials = 0;
  unsigned threads = 0;
  /// Stop after completing this many shards in THIS process invocation
  /// (0 = run to completion). The deterministic "kill switch": batch
  /// windows, tests, and CI kill/resume smoke all use it; rerunning the
  /// same command resumes where the window closed.
  std::size_t max_shards_this_run = 0;

  std::size_t progress_every_shards = 0;
  std::function<void(const SweepProgress&)> progress;

  /// Per-shard trial-hook factory (empty = no fault axis; fault_scales
  /// other than 0.0 then have no effect on trials).
  std::function<std::unique_ptr<CampaignTrialHook>()> make_trial_hook;

  /// Everything that can change a trial's outcome, folded to one word for
  /// the store header: the target identity (name + resolved rate ids +
  /// native rate) is included, so a store cannot resume under a different
  /// protocol. Throws std::invalid_argument on an unknown target.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

struct CampaignPointResult {
  double rate_mbps = 0.0;
  std::uint64_t rate_id = 0;  // target-private rate encoding (TargetRate::id)
  double fault_scale = 0.0;
  double snr_db = 0.0;
  std::uint64_t trials_done = 0;        // == grid.trials_per_point when complete
  DetectionRunResult result;
  std::uint64_t faults_injected = 0;
  std::uint64_t overflow_gaps = 0;
  std::uint64_t samples_lost = 0;
  std::uint64_t trigger_latency_count = 0;
  double trigger_latency_mean_ticks = 0.0;
};

struct CampaignReport {
  CampaignGrid grid;
  std::string target;  // registry key the campaign ran against
  std::vector<CampaignPointResult> points;
  bool complete = false;
  unsigned threads_used = 0;
  std::size_t shards_total = 0;
  std::size_t shards_already_complete = 0;  // durable before this run
  std::size_t shards_run = 0;               // executed by this run
  std::uint64_t trials_run = 0;
  /// Trials covered by duplicate shard records in the store — durable work
  /// a later run redid. Stays 0: resume skips every recorded shard.
  std::uint64_t trials_replayed = 0;
  /// Trial plans prepared this run; on resume this is the number of points
  /// that still had shards outstanding, not the whole grid.
  std::size_t plans_built = 0;
  double wall_seconds = 0.0;

  /// Deterministic merged report: header line + one CSV row per point in
  /// point-id order. Every value derives from the integer totals, so the
  /// bytes are identical for any thread count, shard split, or resume
  /// history that reaches the same trials. Partial campaigns render too
  /// (rows carry trials_done), but byte-identity is only meaningful for
  /// complete ones.
  [[nodiscard]] std::string to_csv() const;
};

/// Run (or resume) the campaign against the shard store at `store_path`.
/// Missing file: a fresh store is created. Existing file: the header must
/// match the spec's fingerprint/seed/grid (else std::runtime_error), its
/// shard_trials is adopted, and only unrecorded shards execute. Returns the
/// merged report over everything durable so far.
[[nodiscard]] CampaignReport run_campaign(const CampaignSpec& spec,
                                          const std::string& store_path);

}  // namespace rjf::core
