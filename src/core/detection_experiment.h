// Detection-probability measurement harness (paper §3.2 methodology).
//
// "For probability of detection, we generate and send 10000 WiFi frames
// (or pseudo frames), at 130 frames per second, and count the number of
// detections." Frames are far enough apart (7.7 ms) that each one is an
// independent trial; the harness therefore runs one capture per frame —
// lead-in noise, the frame at the target SNR, tail noise — and counts
// detector events inside it, which is statistically identical and tractable.
//
// Trials are *strictly* independent: every trial seeds its own RNG stream
// (dsp::derive_seed(config.seed, trial_index)) and the fabric's detector
// state is flushed before each capture (ReactiveJammer::
// reset_detection_state()), so trial N's moving sums, correlator pipeline
// and trigger-FSM stage can never leak into trial N+1, and per-trial
// results depend only on the trial index — not on execution order. That
// property is what lets the sweep engine (core/sweep.h) shard a run across
// worker threads and still reproduce the sequential counts bit-for-bit.
//
// The transmitter runs at its standard's native rate; the harness converts
// each frame to the jammer's 25 MSPS sampling domain with a per-trial
// random fractional timing offset (independent TX/RX sample clocks) and a
// per-trial carrier frequency offset (two free-running N210 oscillators),
// then sets the SNR where the paper measures it: at the receiver.
//
// This layer is protocol-agnostic: callers hand in the frame waveform and
// its native rate. The protocol-target registry (core/scenario.h) supplies
// both from a target handle — run_target_detection_experiment /
// run_target_detection_sweep are the entry points experiments should use.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/reactive_jammer.h"

namespace rjf::obs {
class MetricsRegistry;
}  // namespace rjf::obs

namespace rjf::core {

struct DetectionRunConfig {
  double snr_db = 10.0;
  double noise_power = 0.01;     // receiver noise floor (linear)
  std::size_t num_frames = 1000;
  std::size_t lead_in = 256;     // noise-only samples before the frame
  std::size_t tail = 256;        // and after
  double tx_rate_hz = 20e6;      // native rate of the supplied frame
  unsigned timing_phases = 8;    // distinct fractional timing offsets
  double max_cfo_hz = 3000.0;    // |CFO| bound, uniform per trial
  std::uint64_t seed = 1;
};

struct DetectionRunResult {
  std::size_t frames_sent = 0;
  std::size_t frames_detected = 0;      // >= 1 event during the frame
  std::uint64_t total_detections = 0;   // events summed over all frames
  double probability = 0.0;             // frames_detected / frames_sent
  double detections_per_frame = 0.0;    // total / frames (Fig. 8 over-trigger)
};

enum class DetectorTap { kXcorr, kEnergyHigh, kJamTrigger };

/// Everything a trial needs that is shared (read-only) across trials: the
/// frame pre-rendered at the fabric rate for each fractional timing phase,
/// scaled to the target receive power, plus the per-trial impairment
/// bounds. Immutable after prepare_detection_trials(), so any number of
/// worker threads may run trials against the same plan concurrently.
struct DetectionTrialPlan {
  std::vector<dsp::cvec> variants;  // one per timing phase, fabric rate
  std::size_t lead_in = 0;
  std::size_t tail = 0;
  double noise_power = 0.0;
  double max_cfo_hz = 0.0;
  std::uint64_t seed = 0;           // base seed; trial t uses derive_seed(seed, t)
  DetectorTap tap = DetectorTap::kXcorr;
};

/// Pre-render `frame_native` for every timing phase at the experiment's SNR.
[[nodiscard]] DetectionTrialPlan prepare_detection_trials(
    std::span<const dsp::cfloat> frame_native, DetectorTap tap,
    const DetectionRunConfig& config);

/// Thread-safe lazily built table of per-point trial plans.
///
/// prepare_detection_trials() resamples and power-scales the frame once per
/// timing phase — the dominant per-point setup cost. Building every point's
/// plan up front serialises that work before the worker pool even starts
/// (on wide campaign grids, seconds of single-threaded stall), and a
/// resumed campaign would pay it again for points whose shards are already
/// checkpointed. The table instead builds each plan on first use from
/// whichever worker touches the point first (std::call_once per point), so
/// plan prep overlaps shard execution across the pool and fully completed
/// points are never prepared at all.
///
/// The builder must be a pure function of the point index (the plans here
/// always are: they depend only on the sweep config and derived seeds), so
/// which worker builds a plan can never affect its contents.
class LazyPlanTable {
 public:
  using Builder = std::function<DetectionTrialPlan(std::size_t point)>;

  LazyPlanTable(std::size_t num_points, Builder builder);

  /// The point's plan, building it on first use. Safe to call from any
  /// number of workers concurrently; the reference stays valid for the
  /// table's lifetime.
  [[nodiscard]] const DetectionTrialPlan& get(std::size_t point);

  [[nodiscard]] std::size_t num_points() const noexcept {
    return plans_.size();
  }
  /// Plans actually built so far (diagnostics: a campaign resume should
  /// build only the points that still had shards to run).
  [[nodiscard]] std::size_t plans_built() const noexcept {
    return built_.load(std::memory_order_relaxed);
  }

 private:
  Builder builder_;
  std::unique_ptr<std::once_flag[]> once_;
  std::vector<DetectionTrialPlan> plans_;
  std::atomic<std::size_t> built_{0};
};

/// Partial counts from a contiguous range of trials. Counts merge by plain
/// addition, so shard outcomes combine associatively and commutatively —
/// the aggregate is identical for any partition of the trial range.
struct DetectionTrialCounts {
  std::size_t frames_detected = 0;
  std::uint64_t total_detections = 0;
  void merge(const DetectionTrialCounts& other) noexcept {
    frames_detected += other.frames_detected;
    total_detections += other.total_detections;
  }
};

/// Everything one trial produced, for harnesses (e.g. the fault-robustness
/// sweep) that need per-trial detail beyond the aggregated counts.
/// last_trigger_vita is capture-relative because the detector state (and
/// VITA clock) is flushed at the start of every trial.
struct DetectionTrialOutcome {
  std::uint64_t events = 0;             // detector events at the plan's tap
  std::uint64_t jam_triggers = 0;
  std::uint64_t last_trigger_vita = 0;
  std::uint64_t overflow_gaps = 0;      // fault accounting; 0 on clean runs
  std::uint64_t samples_lost = 0;
};

/// Run exactly one trial of `plan`. Draws the trial's impairments from the
/// derived stream dsp::derive_seed(plan.seed, trial), flushes the fabric's
/// detector state, streams the capture, and reads the tap. The outcome
/// depends only on (plan.seed, trial) and the jammer's programmed state —
/// run_detection_trials() is a loop over this kernel.
[[nodiscard]] DetectionTrialOutcome run_detection_trial(
    ReactiveJammer& jammer, const DetectionTrialPlan& plan, std::size_t trial);

/// The per-trial kernel: run trials [first_trial, first_trial + num_trials)
/// of `plan` through `jammer`. Each trial flushes the fabric's detector
/// state and draws its impairments from its own derived RNG stream, so the
/// result depends only on (plan.seed, trial index). When `metrics` is
/// non-null the kernel records trial/detection counters and a
/// detections-per-trial histogram into it (callers running shards give each
/// shard its own registry and merge afterwards).
[[nodiscard]] DetectionTrialCounts run_detection_trials(
    ReactiveJammer& jammer, const DetectionTrialPlan& plan,
    std::size_t first_trial, std::size_t num_trials,
    obs::MetricsRegistry* metrics = nullptr);

/// Unit phasor e^{j·w·k} for the per-trial CFO rotation, evaluated in
/// double precision with the phase wrapped to [-pi, pi] before the cast to
/// float. Accumulating w·k in float loses ~milliradians of phase by the
/// end of a WiMAX-length capture (24-bit mantissa at phase magnitudes of
/// thousands of radians); wrapping first keeps the error at double
/// round-off regardless of capture length.
[[nodiscard]] dsp::cfloat cfo_phasor(double w, std::uint64_t k) noexcept;

/// Run the experiment: `frame_native` is the frame waveform at
/// `config.tx_rate_hz` with arbitrary scale (re-scaled per-trial).
/// Equivalent to prepare_detection_trials() + one run_detection_trials()
/// over the whole range — the sweep engine's sharded execution reproduces
/// this sequential path bit-for-bit.
[[nodiscard]] DetectionRunResult run_detection_experiment(
    ReactiveJammer& jammer, std::span<const dsp::cfloat> frame_native,
    DetectorTap tap, const DetectionRunConfig& config);

}  // namespace rjf::core
