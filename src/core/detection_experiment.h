// Detection-probability measurement harness (paper §3.2 methodology).
//
// "For probability of detection, we generate and send 10000 WiFi frames
// (or pseudo frames), at 130 frames per second, and count the number of
// detections." Frames are far enough apart (7.7 ms) that each one is an
// independent trial; the harness therefore runs one capture per frame —
// lead-in noise, the frame at the target SNR, tail noise — and counts
// detector events inside it, which is statistically identical and tractable.
//
// The transmitter runs at its standard's native rate; the harness converts
// each frame to the jammer's 25 MSPS sampling domain with a per-trial
// random fractional timing offset (independent TX/RX sample clocks) and a
// per-trial carrier frequency offset (two free-running N210 oscillators),
// then sets the SNR where the paper measures it: at the receiver.
#pragma once

#include <cstdint>

#include "core/reactive_jammer.h"

namespace rjf::core {

struct DetectionRunConfig {
  double snr_db = 10.0;
  double noise_power = 0.01;     // receiver noise floor (linear)
  std::size_t num_frames = 1000;
  std::size_t lead_in = 256;     // noise-only samples before the frame
  std::size_t tail = 256;        // and after
  double tx_rate_hz = 20e6;      // native rate of the supplied frame
  unsigned timing_phases = 8;    // distinct fractional timing offsets
  double max_cfo_hz = 3000.0;    // |CFO| bound, uniform per trial
  std::uint64_t seed = 1;
};

struct DetectionRunResult {
  std::size_t frames_sent = 0;
  std::size_t frames_detected = 0;      // >= 1 event during the frame
  std::uint64_t total_detections = 0;   // events summed over all frames
  double probability = 0.0;             // frames_detected / frames_sent
  double detections_per_frame = 0.0;    // total / frames (Fig. 8 over-trigger)
};

enum class DetectorTap { kXcorr, kEnergyHigh, kJamTrigger };

/// Run the experiment: `frame_native` is the frame waveform at
/// `config.tx_rate_hz` with arbitrary scale (re-scaled per-trial).
[[nodiscard]] DetectionRunResult run_detection_experiment(
    ReactiveJammer& jammer, std::span<const dsp::cfloat> frame_native,
    DetectorTap tap, const DetectionRunConfig& config);

}  // namespace rjf::core
