#include "core/scenario.h"

#include <algorithm>
#include <stdexcept>

#include "core/calibration.h"
#include "core/templates.h"
#include "phy80211/rates.h"
#include "phy80211/receiver.h"
#include "phy80211/transmitter.h"
#include "phy80211b/dsss.h"

namespace rjf::core {

namespace {

constexpr phy80211b::DsssRate kDsssRates[] = {
    phy80211b::DsssRate::kMbps1, phy80211b::DsssRate::kMbps2,
    phy80211b::DsssRate::kMbps5_5, phy80211b::DsssRate::kMbps11};

ProtocolTarget make_wifi_ofdm_target() {
  ProtocolTarget t;
  t.name = "wifi_ofdm";
  t.description = "802.11a/g OFDM, 6-54 Mb/s, short-preamble correlator";
  t.native_rate_hz = 20e6;
  for (const phy80211::Rate r : phy80211::all_rates())
    t.rates.push_back({phy80211::rate_params(r).mbps,
                       static_cast<std::uint64_t>(r)});
  t.default_rate_index = t.rates.size() - 1;  // 54 Mb/s, the legacy default
  t.make_frame = [](std::size_t rate_index,
                    std::span<const std::uint8_t> psdu,
                    std::uint8_t scrambler_seed) {
    const phy80211::Rate rate = phy80211::all_rates()[rate_index];
    return phy80211::Transmitter({rate, scrambler_seed}).transmit(psdu);
  };
  t.make_template = [] { return wifi_short_preamble_template(); };
  t.decode_ok = [](std::size_t, std::span<const dsp::cfloat> capture,
                   std::span<const std::uint8_t> psdu) {
    const phy80211::RxResult rx = phy80211::Receiver().receive(capture);
    return rx.signal_valid && rx.psdu.size() == psdu.size() &&
           std::equal(rx.psdu.begin(), rx.psdu.end(), psdu.begin());
  };
  t.frame_airtime_s = [](std::size_t rate_index, std::size_t psdu_bytes) {
    return phy80211::frame_duration_s(phy80211::all_rates()[rate_index],
                                      psdu_bytes);
  };
  return t;
}

ProtocolTarget make_wifi_dsss_target() {
  ProtocolTarget t;
  t.name = "wifi_dsss";
  t.description = "802.11b DSSS/CCK, 1-11 Mb/s, long-preamble correlator";
  t.native_rate_hz = phy80211b::kChipRateHz;
  for (const phy80211b::DsssRate r : kDsssRates)
    t.rates.push_back({phy80211b::dsss_rate_mbps(r),
                       static_cast<std::uint64_t>(r)});
  t.default_rate_index = t.rates.size() - 1;  // 11 Mb/s
  t.make_frame = [](std::size_t rate_index,
                    std::span<const std::uint8_t> psdu, std::uint8_t) {
    // The 802.11b scrambler is self-synchronising with a state fixed by the
    // long-preamble definition; the seed knob does not apply.
    return phy80211b::DsssTransmitter(kDsssRates[rate_index]).transmit(psdu);
  };
  t.make_template = [] { return wifi_dsss_preamble_template(); };
  t.decode_ok = [](std::size_t, std::span<const dsp::cfloat> capture,
                   std::span<const std::uint8_t> psdu) {
    const phy80211b::DsssRxResult rx =
        phy80211b::DsssReceiver().receive(capture);
    return rx.header_valid && rx.psdu.size() == psdu.size() &&
           std::equal(rx.psdu.begin(), rx.psdu.end(), psdu.begin());
  };
  t.frame_airtime_s = [](std::size_t rate_index, std::size_t psdu_bytes) {
    // 192 us PLCP preamble + header at 1 Mb/s, then the PSDU at the data
    // rate (exact for Barker and CCK symbol timings alike).
    const double mbps = phy80211b::dsss_rate_mbps(kDsssRates[rate_index]);
    return 192e-6 +
           static_cast<double>(psdu_bytes) * 8.0 / (mbps * 1e6);
  };
  return t;
}

}  // namespace

const std::vector<ProtocolTarget>& protocol_targets() {
  static const std::vector<ProtocolTarget> kTargets = [] {
    std::vector<ProtocolTarget> targets;
    targets.push_back(make_wifi_ofdm_target());
    targets.push_back(make_wifi_dsss_target());
    return targets;
  }();
  return kTargets;
}

const ProtocolTarget* find_target(std::string_view name) noexcept {
  for (const ProtocolTarget& t : protocol_targets())
    if (t.name == name) return &t;
  return nullptr;
}

const ProtocolTarget& target_or_throw(std::string_view name) {
  if (const ProtocolTarget* t = find_target(name)) return *t;
  std::string known;
  for (const std::string& n : target_names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw std::invalid_argument("unknown protocol target '" +
                              std::string(name) + "' (known: " + known + ")");
}

std::vector<std::string> target_names() {
  std::vector<std::string> names;
  for (const ProtocolTarget& t : protocol_targets()) names.push_back(t.name);
  return names;
}

dsp::cvec target_frame(const ProtocolTarget& target, std::size_t rate_index,
                       std::size_t psdu_bytes, std::uint8_t psdu_fill,
                       std::uint8_t scrambler_seed) {
  const std::vector<std::uint8_t> psdu(std::max<std::size_t>(psdu_bytes, 1),
                                       psdu_fill);
  return target.make_frame(rate_index, psdu, scrambler_seed);
}

JammerConfig target_reactive_preset(const ProtocolTarget& target,
                                    double uptime_s,
                                    double false_alarm_per_s) {
  JammerConfig config;
  config.detection = DetectionMode::kCrossCorrelator;
  config.xcorr_template = target.make_template();
  const XcorrNoiseModel model(*config.xcorr_template);
  config.xcorr_threshold = model.threshold_for_rate(false_alarm_per_s);
  config.waveform = fpga::JamWaveform::kWhiteNoise;
  config.jam_uptime_samples = JammerConfig::samples_from_seconds(uptime_s);
  config.description = "preset: " + target.name + "-reactive xcorr WGN";
  return config;
}

DetectionRunResult run_target_detection_experiment(
    ReactiveJammer& jammer, const ProtocolTarget& target,
    std::size_t rate_index, std::span<const std::uint8_t> psdu,
    DetectorTap tap, DetectionRunConfig config) {
  const dsp::cvec frame = target.make_frame(rate_index, psdu, 0x5D);
  config.tx_rate_hz = target.native_rate_hz;
  return run_detection_experiment(jammer, frame, tap, config);
}

SweepReport run_target_detection_sweep(const JammerConfig& jammer_config,
                                       const ProtocolTarget& target,
                                       std::size_t rate_index,
                                       std::span<const std::uint8_t> psdu,
                                       DetectorTap tap,
                                       DetectionRunConfig base,
                                       std::span<const double> snr_points_db,
                                       const SweepConfig& sweep) {
  const dsp::cvec frame = target.make_frame(rate_index, psdu, 0x5D);
  base.tx_rate_hz = target.native_rate_hz;
  return run_detection_sweep(jammer_config, frame, tap, base, snr_points_db,
                             sweep);
}

}  // namespace rjf::core
