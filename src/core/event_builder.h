// Fluent "jamming event builder" — the programmatic twin of the paper's
// GNU Radio Companion GUI (§2.5): "users can specifically control detection
// types and desired jamming reactions during run time". Produces validated
// JammerConfig objects and human-readable descriptions for operator logs.
#pragma once

#include <optional>
#include <string>

#include "core/jammer_config.h"

namespace rjf::core {

class JammingEventBuilder {
 public:
  JammingEventBuilder() = default;

  // -- Detection ------------------------------------------------------------
  JammingEventBuilder& detect_wifi_short_preamble(double false_alarms_per_s);
  JammingEventBuilder& detect_wifi_long_preamble(double false_alarms_per_s);
  JammingEventBuilder& detect_wifi_dsss_preamble(double false_alarms_per_s);
  JammingEventBuilder& detect_wimax_preamble(unsigned cell_id, unsigned segment,
                                             double false_alarms_per_s);
  JammingEventBuilder& detect_energy_rise(double threshold_db);
  JammingEventBuilder& detect_energy_fall(double threshold_db);
  /// OR the energy detector into an already-selected correlator detection.
  JammingEventBuilder& or_energy_rise(double threshold_db);
  JammingEventBuilder& continuous();

  // -- Reaction ---------------------------------------------------------------
  JammingEventBuilder& white_noise();
  JammingEventBuilder& replay_last_samples();
  JammingEventBuilder& host_stream();
  JammingEventBuilder& uptime(double seconds);
  /// Surgical delay between trigger and RF (paper §2.4).
  JammingEventBuilder& delay(double seconds);

  /// Validate and build. Returns nullopt with a populated error() when the
  /// combination is inconsistent (e.g. correlator mode with no template).
  [[nodiscard]] std::optional<JammerConfig> build();

  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  /// One-line operator description of the current configuration.
  [[nodiscard]] std::string describe() const;

 private:
  JammerConfig config_;
  bool detection_set_ = false;
  bool uptime_set_ = false;
  std::string error_;
  std::string detection_label_ = "unset";
};

}  // namespace rjf::core
