// Protocol-target scenario registry (the paper's protocol-awareness as a
// datatype).
//
// The framework's core claim is that one reactive fabric retargets any
// standard by swapping correlator coefficients; everything else about an
// experiment — which waveform the victim transmits, at what native sample
// rate, how "the frame got through" is judged, how often frames go on air —
// is protocol-specific. A ProtocolTarget bundles exactly those pieces:
//
//   * a native-rate frame factory (the victim transmitter),
//   * a correlator-template factory (the jammer's offline host role),
//   * a native receiver / decode-success predicate (link-layer ground
//     truth for countermeasure and impact studies),
//   * a MAC cadence model (frame airtime + the paper's 130 frames/s
//     trial cadence, for duty-cycle accounting).
//
// The detection harness, the sweep engine, the campaign runner and the
// fault harness all consume a target handle instead of hard-coding the
// 802.11a/g OFDM path; `wifi_ofdm` reproduces that path bit-for-bit, and
// `wifi_dsss` makes 802.11b DSSS/CCK a first-class sweep subject. Adding a
// standard (802.11p, 5G PUSCH, BLE) means adding one registry entry — see
// DESIGN.md §14.
//
// The registry is a function-local `static const` table: immutable after
// construction, so lookups are lock-free, data-race-free, and inside the
// fabric-lint deterministic scope.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/sweep.h"

namespace rjf::core {

/// One entry on a target's rate axis. `id` is the target-private encoding
/// of the rate (the 802.11a/g Rate enum value, the 802.11b SIGNAL field
/// value, ...) and is folded into campaign fingerprints, so it must be
/// stable across builds.
struct TargetRate {
  double mbps = 0.0;
  std::uint64_t id = 0;
};

struct ProtocolTarget {
  std::string name;         // registry key, e.g. "wifi_ofdm"
  std::string description;  // one line for --list-targets / reports
  /// Native sample rate of frames from `make_frame`; the detection harness
  /// resamples to the fabric's 25 MSPS from here.
  double native_rate_hz = 20e6;
  /// Paper §3.2 trial cadence ("10000 WiFi frames ... at 130 frames per
  /// second"): used for duty-cycle accounting, not trial pacing.
  double frames_per_second = 130.0;

  std::vector<TargetRate> rates;
  std::size_t default_rate_index = 0;

  /// Victim frame at the native rate. Targets without a scrambler-seed
  /// notion (802.11b's scrambler state is fixed by the long preamble)
  /// ignore `scrambler_seed`.
  std::function<dsp::cvec(std::size_t rate_index,
                          std::span<const std::uint8_t> psdu,
                          std::uint8_t scrambler_seed)>
      make_frame;

  /// The jammer's 64-tap correlator coefficients for this standard.
  std::function<fpga::CorrelatorTemplate()> make_template;

  /// Ground truth: does the standard's own receiver recover `psdu` from
  /// `capture` (native rate, frame nominally at capture[0])?
  std::function<bool(std::size_t rate_index,
                     std::span<const dsp::cfloat> capture,
                     std::span<const std::uint8_t> psdu)>
      decode_ok;

  /// On-air time of one frame carrying `psdu_bytes` at the given rate.
  std::function<double(std::size_t rate_index, std::size_t psdu_bytes)>
      frame_airtime_s;

  /// Fraction of air the victim occupies at the trial cadence.
  [[nodiscard]] double duty_cycle(std::size_t rate_index,
                                  std::size_t psdu_bytes) const {
    return frame_airtime_s(rate_index, psdu_bytes) * frames_per_second;
  }
};

/// The registry, in a fixed order ("wifi_ofdm" first — it is the default
/// target everywhere). Built once, immutable afterwards.
[[nodiscard]] const std::vector<ProtocolTarget>& protocol_targets();

/// Lookup by name; nullptr when unknown.
[[nodiscard]] const ProtocolTarget* find_target(std::string_view name) noexcept;

/// Lookup by name; throws std::invalid_argument listing known targets.
[[nodiscard]] const ProtocolTarget& target_or_throw(std::string_view name);

/// Registry keys in registry order.
[[nodiscard]] std::vector<std::string> target_names();

/// The standard filled-PSDU frame the campaign and benches use:
/// `psdu_bytes` (min 1) of `psdu_fill` through the target's transmitter.
[[nodiscard]] dsp::cvec target_frame(const ProtocolTarget& target,
                                     std::size_t rate_index,
                                     std::size_t psdu_bytes,
                                     std::uint8_t psdu_fill,
                                     std::uint8_t scrambler_seed);

/// Reactive-jammer personality for a target: cross-correlator loaded with
/// the target's template, threshold calibrated to the false-alarm rate
/// (paper Fig. 7 uses 0.059 triggers/s), white-noise bursts of `uptime_s`.
/// target_reactive_preset(wifi_ofdm, t) == wifi_reactive_preset(t).
[[nodiscard]] JammerConfig target_reactive_preset(
    const ProtocolTarget& target, double uptime_s,
    double false_alarm_per_s = 0.059);

/// run_detection_experiment with the frame and native rate supplied by the
/// target: `config.tx_rate_hz` is overridden with target.native_rate_hz.
[[nodiscard]] DetectionRunResult run_target_detection_experiment(
    ReactiveJammer& jammer, const ProtocolTarget& target,
    std::size_t rate_index, std::span<const std::uint8_t> psdu,
    DetectorTap tap, DetectionRunConfig config);

/// run_detection_sweep with the frame and native rate supplied by the
/// target. For wifi_ofdm this reproduces the hand-rolled Transmitter +
/// run_detection_sweep path bit-for-bit (same frame bytes, same seeds).
[[nodiscard]] SweepReport run_target_detection_sweep(
    const JammerConfig& jammer_config, const ProtocolTarget& target,
    std::size_t rate_index, std::span<const std::uint8_t> psdu,
    DetectorTap tap, DetectionRunConfig base,
    std::span<const double> snr_points_db, const SweepConfig& sweep);

}  // namespace rjf::core
