// False-alarm calibration for the cross-correlator, the way the paper does
// it ("we terminate the receiver with a 50-ohm terminator and count the
// number of false triggers that occur in 30 minutes") — except that instead
// of waiting 30 simulated minutes we exploit a property of the datapath:
// under terminated (noise-only) input the sliced sign bits are i.i.d.
// uniform +/-1, so the exact joint distribution of the correlator's (re,
// im) accumulators is computable by dynamic programming over the 64 taps.
// That yields the exact per-sample exceedance probability for ANY
// threshold, from which thresholds matching the paper's reported
// false-alarm rates (0.52/s, 0.083/s, 0.059/s) are derived in closed form.
#pragma once

#include <cstdint>
#include <vector>

#include "fpga/cross_correlator.h"

namespace rjf::core {

/// Exact distribution of the correlator metric under noise-only input.
/// survival[t] = P(metric > t) for integer thresholds; the vector is
/// indexed sparsely via the helper below.
class XcorrNoiseModel {
 public:
  explicit XcorrNoiseModel(const fpga::CorrelatorTemplate& tpl);

  /// P(metric > threshold) for a single sample instant, exact.
  [[nodiscard]] double exceedance_probability(std::uint32_t threshold) const;

  /// Expected false-alarm triggers per second at 25 MSPS. `cluster`
  /// compensates for consecutive exceedances collapsing into one trigger
  /// (measured to be ~1-2 samples for these templates).
  [[nodiscard]] double false_alarm_rate_per_s(std::uint32_t threshold,
                                              double cluster = 1.0) const;

  /// Smallest threshold whose false-alarm rate is <= `target_per_s`.
  [[nodiscard]] std::uint32_t threshold_for_rate(double target_per_s,
                                                 double cluster = 1.0) const;

 private:
  // P(metric == m^2 bucket) accumulated as survival over sorted metric values.
  std::vector<std::uint32_t> metric_values_;  // ascending distinct metrics
  std::vector<double> survival_;              // P(metric > metric_values_[k])
};

/// Empirical cross-check: run a DspCore-style correlator over `seconds` of
/// simulated terminated input and count triggers (edge events).
[[nodiscard]] std::uint64_t count_noise_triggers(
    const fpga::CorrelatorTemplate& tpl, std::uint32_t threshold,
    double seconds, std::uint64_t seed);

}  // namespace rjf::core
