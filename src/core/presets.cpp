#include "core/presets.h"

#include "core/calibration.h"
#include "core/templates.h"

namespace rjf::core {

JammerConfig wifi_reactive_preset(double uptime_s, double false_alarm_per_s) {
  JammerConfig config;
  config.detection = DetectionMode::kCrossCorrelator;
  config.xcorr_template = wifi_short_preamble_template();
  const XcorrNoiseModel model(*config.xcorr_template);
  config.xcorr_threshold = model.threshold_for_rate(false_alarm_per_s);
  config.waveform = fpga::JamWaveform::kWhiteNoise;
  config.jam_uptime_samples = JammerConfig::samples_from_seconds(uptime_s);
  config.description = "preset: wifi-reactive xcorr(WiFi STS) WGN";
  return config;
}

JammerConfig energy_reactive_preset(double uptime_s, double threshold_db) {
  JammerConfig config;
  config.detection = DetectionMode::kEnergyRise;
  config.energy_high_db = threshold_db;
  config.waveform = fpga::JamWaveform::kWhiteNoise;
  config.jam_uptime_samples = JammerConfig::samples_from_seconds(uptime_s);
  config.description = "preset: energy-reactive energy-rise WGN";
  return config;
}

JammerConfig continuous_preset() {
  JammerConfig config;
  config.detection = DetectionMode::kContinuous;
  config.waveform = fpga::JamWaveform::kWhiteNoise;
  config.description = "preset: continuous WGN";
  return config;
}

JammerConfig wimax_combined_preset(double uptime_s, unsigned cell_id,
                                   unsigned segment) {
  JammerConfig config;
  config.detection = DetectionMode::kXcorrOrEnergy;
  config.xcorr_template = wimax_preamble_template(cell_id, segment);
  const XcorrNoiseModel model(*config.xcorr_template);
  config.xcorr_threshold = model.threshold_for_rate(0.1);
  config.energy_high_db = 10.0;
  config.waveform = fpga::JamWaveform::kWhiteNoise;
  config.jam_uptime_samples = JammerConfig::samples_from_seconds(uptime_s);
  config.description = "preset: wimax-combined xcorr|energy-rise WGN";
  return config;
}

}  // namespace rjf::core
