// Offline correlator-template generation (the host-side role in the paper:
// "coefficients are generated offline on the host based on knowledge of the
// wireless standards' preambles or inferred from the low-entropy portions
// of the samples of incoming signals").
//
// Templates are rendered from the standard's preamble definition and
// converted to the jammer's fixed 25 MSPS sampling grid before 3-bit
// quantisation — equivalent to deriving coefficients from received-signal
// captures, which is the only way the hardware's fixed-rate correlator can
// be fed time-aligned coefficients. The paper's residual impairment
// remains: the 64-tap window spans just 2.56 us, so a 3.2 us (WiFi LTS) or
// 25 us (WiMAX) orthogonal code is correlated across only its head,
// which is what limits Figs. 6 and 12.
//
// template_from_waveform() with `resample_to_fabric_rate = false` gives the
// naive alternative (native-rate code samples loaded verbatim); the
// ablation bench shows that this mismatch destroys detection outright.
#pragma once

#include "fpga/cross_correlator.h"

namespace rjf::core {

/// WiFi 802.11a/g long training symbol at the fabric rate: the 64-tap
/// window covers the first 2.56 us of the 3.2 us code (Fig. 6 condition).
[[nodiscard]] fpga::CorrelatorTemplate wifi_long_preamble_template();

/// WiFi short training sequence at the fabric rate: the 64-tap window
/// spans 3.2 periods of the 0.8 us code (Fig. 7 condition).
[[nodiscard]] fpga::CorrelatorTemplate wifi_short_preamble_template();

/// WiFi 802.11b DSSS long preamble at the fabric rate: the deterministic
/// scrambled-ones SYNC pattern (Barker-spread at 11 Mchip/s), of which the
/// 64-tap window covers the first 2.56 us (~2.5 DBPSK symbols).
[[nodiscard]] fpga::CorrelatorTemplate wifi_dsss_preamble_template();

/// Mobile WiMAX 802.16e downlink preamble for the given cell/segment:
/// the 25 us code correlated across its first 2.56 us (paper §5).
[[nodiscard]] fpga::CorrelatorTemplate wimax_preamble_template(
    unsigned cell_id = 1, unsigned segment = 0);

/// Template from an arbitrary reference waveform at `reference_rate_hz`.
[[nodiscard]] fpga::CorrelatorTemplate template_from_waveform(
    std::span<const dsp::cfloat> reference, double reference_rate_hz,
    bool resample_to_fabric_rate = true);

}  // namespace rjf::core
