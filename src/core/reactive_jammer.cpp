#include "core/reactive_jammer.h"

#include <cmath>

#include "core/fabric_units.h"
#include "obs/telemetry.h"

namespace rjf::core {
namespace {

// Register-level encoding of a detection mode as trigger FSM stage masks.
struct StageMasks {
  std::uint32_t m0 = 0;
  std::uint32_t m1 = 0;
  std::uint32_t m2 = 0;
};

StageMasks stage_masks(DetectionMode mode) {
  switch (mode) {
    case DetectionMode::kCrossCorrelator:
      return {fpga::kEventXcorr, 0, 0};
    case DetectionMode::kEnergyRise:
      return {fpga::kEventEnergyHigh, 0, 0};
    case DetectionMode::kEnergyFall:
      return {fpga::kEventEnergyLow, 0, 0};
    case DetectionMode::kXcorrOrEnergy:
      return {fpga::kEventXcorr | fpga::kEventEnergyHigh, 0, 0};
    case DetectionMode::kXcorrThenEnergy:
      return {fpga::kEventXcorr, fpga::kEventEnergyHigh, 0};
    case DetectionMode::kContinuous:
      return {0, 0, 0};  // handled separately: jam uptime = max, trigger on energy floor
  }
  return {};
}

}  // namespace

template <typename WriteFn>
void ReactiveJammer::program(const JammerConfig& config, WriteFn&& write) {
  using fpga::Reg;

  // Correlator template + threshold.
  if (config.xcorr_template) {
    fpga::RegisterFile staging;
    fpga::program_template(staging, *config.xcorr_template);
    for (std::size_t r = 0; r < 16; ++r)
      write(static_cast<Reg>(r), staging.read(static_cast<Reg>(r)));
  }
  write(Reg::kXcorrThreshold, config.xcorr_threshold);

  // Energy thresholds.
  write(Reg::kEnergyThreshHigh,
        energy_threshold_q88_from_db(config.energy_high_db));
  write(Reg::kEnergyThreshLow,
        energy_threshold_q88_from_db(config.energy_low_db));
  write(Reg::kEnergyFloor, config.energy_floor);

  // Trigger FSM.
  const StageMasks masks = stage_masks(config.detection);
  fpga::RegisterFile staging;
  staging.set_trigger_stages(masks.m0, masks.m1, masks.m2);
  write(Reg::kTriggerConfig, staging.read(Reg::kTriggerConfig));
  write(Reg::kTriggerWindow, config.trigger_window_cycles);

  // Jammer response. Continuous mode: trigger immediately on any energy
  // (threshold 0 dB, floor 0) and hold the waveform for the maximum uptime.
  if (config.detection == DetectionMode::kContinuous) {
    staging.set_trigger_stages(fpga::kEventEnergyHigh | fpga::kEventEnergyLow |
                                   fpga::kEventXcorr,
                               0, 0);
    write(Reg::kTriggerConfig, staging.read(Reg::kTriggerConfig));
    write(Reg::kEnergyThreshLow, energy_threshold_q88_from_db(-3.0));
    write(Reg::kEnergyFloor, 0);
    staging.set_jammer(config.waveform, true, 0);
    write(Reg::kJammerControl, staging.read(Reg::kJammerControl));
    write(Reg::kJamDuration, 0xFFFFFFFFu);
    return;
  }

  staging.set_jammer(config.waveform, true,
                     static_cast<std::uint16_t>(config.jam_delay_samples));
  write(Reg::kJammerControl, staging.read(Reg::kJammerControl));
  write(Reg::kJamDuration, config.jam_uptime_samples);
}

ReactiveJammer::ReactiveJammer(const JammerConfig& config) : config_(config) {
  program(config, [this](fpga::Reg addr, std::uint32_t value) {
    radio_.write_register_now(addr, value);
  });
}

void ReactiveJammer::reconfigure(const JammerConfig& config) {
  config_ = config;
  program(config, [this](fpga::Reg addr, std::uint32_t value) {
    radio_.write_register(addr, value);
  });
  if (telemetry_ != nullptr)
    telemetry_->set_personality(config_.description, radio_.now_ticks());
}

void ReactiveJammer::attach_trace(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
  radio_.attach_ring(telemetry != nullptr ? &telemetry->ring() : nullptr);
  if (telemetry_ != nullptr)
    telemetry_->set_personality(config_.description, radio_.now_ticks());
}

obs::MetricsRegistry* ReactiveJammer::metrics() const noexcept {
  return telemetry_ != nullptr ? &telemetry_->metrics() : nullptr;
}

void ReactiveJammer::reset_detection_state() {
  radio_.core().reset();
  radio_.core().apply_registers();
}

void ReactiveJammer::absorb_stream_faults(
    const radio::UsrpN210::StreamResult& result) {
  if (result.overflow_gaps == 0 && !result.adc_clipped) return;

  obs::MetricsRegistry* m = metrics();
  if (m != nullptr) {
    if (result.overflow_gaps > 0) {
      m->add("fault.streams_degraded", 1);
      m->add("fault.overflow_gaps", result.overflow_gaps);
      m->add("fault.samples_lost", result.samples_lost);
    }
    if (result.adc_clipped) m->add("fault.clipped_streams", 1);
  }
  // In-stream recovery (DspCore::fast_forward) already kept VITA time exact
  // and flushed the detector pipelines across each gap; the policy reset
  // additionally returns the whole fabric to a known-clean state for the
  // next capture. Never while a write is in flight: reset_detection_state()
  // re-latches registers, which would apply the write early.
  if (result.overflow_gaps > 0 && policy_.reset_after_overflow &&
      radio_.settings_bus().idle()) {
    reset_detection_state();
    if (m != nullptr) m->add("fault.detector_resets", 1);
  }
}

radio::UsrpN210::StreamResult ReactiveJammer::observe(
    std::span<const dsp::cfloat> rx) {
  radio::UsrpN210::StreamResult result = radio_.stream(rx);
  absorb_stream_faults(result);
  return result;
}

radio::UsrpN210::StreamResult ReactiveJammer::observe(
    std::span<const dsp::IQ16> rx) {
  radio::UsrpN210::StreamResult result = radio_.stream_fabric(rx);
  absorb_stream_faults(result);
  return result;
}

void ReactiveJammer::tune(double freq_hz) {
  radio_.frontend().tune(freq_hz);
  if (telemetry_ != nullptr)
    telemetry_->ring().push_event(
        obs::EventKind::kRetune, radio_.now_ticks(),
        static_cast<std::uint64_t>(radio_.frontend().frequency()));
}

void ReactiveJammer::set_tx_gain(double db) {
  radio_.frontend().set_tx_gain(db);
  if (telemetry_ != nullptr)
    // Value is the clamped front-end gain in centi-dB so the integer event
    // payload keeps one decimal of the 0.5 dB SBX gain steps.
    telemetry_->ring().push_event(
        obs::EventKind::kGainChange, radio_.now_ticks(),
        static_cast<std::uint64_t>(
            std::lround(radio_.frontend().tx_gain_db() * 100.0)));
}

}  // namespace rjf::core
