// User-facing jammer configuration — the programmatic equivalent of the
// paper's GNU Radio Companion GUI ("a reactive jamming event builder, where
// users can specifically control detection types and desired jamming
// reactions during run time").
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "fpga/cross_correlator.h"
#include "fpga/register_file.h"

namespace rjf::core {

enum class DetectionMode {
  kCrossCorrelator,   // template match only (protocol-aware)
  kEnergyRise,        // coarse: any energy increase on the band
  kEnergyFall,        // coarse: energy decrease (end-of-packet)
  kXcorrOrEnergy,     // either detector may fire (paper's WiMAX combo)
  kXcorrThenEnergy,   // sequenced: xcorr followed by energy within a window
  kContinuous,        // no detection: jam permanently (baseline jammer)
};

struct JammerConfig {
  DetectionMode detection = DetectionMode::kEnergyRise;

  // Cross-correlator settings (ignored for energy-only modes).
  std::optional<fpga::CorrelatorTemplate> xcorr_template;
  std::uint32_t xcorr_threshold = 0xFFFFFFFFu;

  // Energy differentiator settings.
  double energy_high_db = 10.0;   // paper's validation setting
  double energy_low_db = 10.0;
  std::uint32_t energy_floor = 1u << 16;

  // Sequenced-trigger window (kXcorrThenEnergy), in fabric clock cycles.
  std::uint32_t trigger_window_cycles = 25000;  // 250 us

  // Human-readable personality name, surfaced in telemetry traces so an
  // exported timeline identifies which jamming event produced each burst.
  // JammingEventBuilder::build() stamps its describe() string here; presets
  // carry their own labels. Never parsed — purely for trace annotation.
  std::string description;

  // Jamming response.
  fpga::JamWaveform waveform = fpga::JamWaveform::kWhiteNoise;
  std::uint32_t jam_delay_samples = 0;       // "surgical" offset, 40 ns units
  std::uint32_t jam_uptime_samples = 2500;   // 0.1 ms default

  /// Uptime helper: seconds -> 25 MSPS samples (paper range 40 ns .. ~40 s).
  static std::uint32_t samples_from_seconds(double seconds) noexcept {
    const double s = seconds * 25e6;
    if (s <= 1.0) return 1;
    if (s >= 4294967295.0) return 0xFFFFFFFFu;
    return static_cast<std::uint32_t>(s);
  }
};

}  // namespace rjf::core
