// Host-boundary unit conversions for programming the fabric registers.
//
// The fabric model in src/fpga is pure fixed-point — no float or double
// survives past the register bus (tools/fabric_lint.py enforces this). The
// operator-facing units, however, are continuous: energy thresholds are
// specified in dB (paper: "any energy level change between 3dB and 30dB")
// and correlator templates start life as float baseband waveforms rendered
// from the standards' preamble definitions. These helpers perform the
// lossy float-to-fixed-point quantisation once, on the host side of the
// bus, exactly like the paper's offline coefficient generation (§2.3).
#pragma once

#include <cstdint>
#include <span>

#include "dsp/types.h"
#include "fpga/cross_correlator.h"

namespace rjf::core {

/// Convert an energy-change threshold in dB (paper: 3..30 dB) to the Q8.8
/// linear power-ratio encoding stored in kEnergyThreshHigh/Low.
[[nodiscard]] std::uint32_t energy_threshold_q88_from_db(double db) noexcept;
[[nodiscard]] double energy_threshold_db_from_q88(std::uint32_t q88) noexcept;

/// Offline coefficient generation (paper §2.3): quantise the reference
/// waveform's first 64 samples to 3-bit signed values per rail, scaled so
/// the largest rail magnitude is 3.
[[nodiscard]] fpga::CorrelatorTemplate make_template(
    std::span<const dsp::cfloat> reference);

}  // namespace rjf::core
