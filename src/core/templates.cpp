#include "core/templates.h"

#include "core/fabric_units.h"
#include "dsp/resampler.h"
#include "fpga/dsp_core.h"
#include "phy80211/ofdm.h"
#include "phy80211/preamble.h"
#include "phy80211b/dsss.h"
#include "phy80216/preamble.h"

namespace rjf::core {

fpga::CorrelatorTemplate template_from_waveform(
    std::span<const dsp::cfloat> reference, double reference_rate_hz,
    bool resample_to_fabric_rate) {
  if (!resample_to_fabric_rate) return make_template(reference);
  const dsp::cvec at_fabric_rate =
      dsp::resample(reference, reference_rate_hz, fpga::kBasebandRateHz);
  return make_template(at_fabric_rate);
}

fpga::CorrelatorTemplate wifi_long_preamble_template() {
  // Render two LTS copies so the resampler has clean context past the
  // 64 output samples the template keeps.
  dsp::cvec ref = phy80211::long_training_symbol();
  const dsp::cvec second = ref;
  ref.insert(ref.end(), second.begin(), second.end());
  return template_from_waveform(ref, phy80211::kSampleRateHz);
}

fpga::CorrelatorTemplate wifi_short_preamble_template() {
  // ~4 periods of the STS cover the 64-tap window at the fabric rate.
  const dsp::cvec period = phy80211::short_training_symbol();
  dsp::cvec ref;
  for (int rep = 0; rep < 6; ++rep)
    ref.insert(ref.end(), period.begin(), period.end());
  return template_from_waveform(ref, phy80211::kSampleRateHz);
}

fpga::CorrelatorTemplate wifi_dsss_preamble_template() {
  const dsp::cvec ref = phy80211b::preamble_head_chips(192);
  return template_from_waveform(ref, phy80211b::kChipRateHz);
}

fpga::CorrelatorTemplate wimax_preamble_template(unsigned cell_id,
                                                 unsigned segment) {
  const dsp::cvec ref = phy80216::preamble_useful_part({cell_id, segment});
  return template_from_waveform(ref, phy80216::kSampleRateHz);
}

}  // namespace rjf::core
