// Ready-made jamming personalities matching the paper's experiments.
#pragma once

#include "core/jammer_config.h"

namespace rjf::core {

/// WiFi-aware reactive jammer triggering on the short-preamble correlator,
/// threshold calibrated to the given false-alarm rate (paper Fig. 7 uses
/// 0.059 triggers/s).
[[nodiscard]] JammerConfig wifi_reactive_preset(double uptime_s,
                                                double false_alarm_per_s = 0.059);

/// Energy-rise reactive jammer (protocol-agnostic), 10 dB threshold as in
/// the paper's Fig. 8 characterisation.
[[nodiscard]] JammerConfig energy_reactive_preset(double uptime_s,
                                                  double threshold_db = 10.0);

/// Continuous jammer baseline of §4.3.
[[nodiscard]] JammerConfig continuous_preset();

/// WiMAX downlink jammer combining cross-correlation with the energy
/// differentiator (paper §5: detects "100% of all downlink packets").
[[nodiscard]] JammerConfig wimax_combined_preset(double uptime_s,
                                                 unsigned cell_id = 1,
                                                 unsigned segment = 0);

}  // namespace rjf::core
