#include "core/detection_experiment.h"

#include <cmath>
#include <numbers>

#include "dsp/db.h"
#include "dsp/noise.h"
#include "dsp/resampler.h"
#include "dsp/rng.h"
#include "fpga/dsp_core.h"

namespace rjf::core {

DetectionRunResult run_detection_experiment(
    ReactiveJammer& jammer, std::span<const dsp::cfloat> frame_native,
    DetectorTap tap, const DetectionRunConfig& config) {
  DetectionRunResult result;
  result.frames_sent = config.num_frames;

  // Pre-render the frame at the fabric rate for each fractional timing
  // phase; trials then pick a phase at random, modelling the free-running
  // TX/RX sample clocks.
  const unsigned phases = std::max(config.timing_phases, 1u);
  const dsp::Resampler to_fabric(config.tx_rate_hz, fpga::kBasebandRateHz);
  std::vector<dsp::cvec> variants(phases);
  const double target_power =
      config.noise_power * dsp::ratio_from_db(config.snr_db);
  for (unsigned p = 0; p < phases; ++p) {
    variants[p] = to_fabric.resample(
        frame_native, static_cast<double>(p) / static_cast<double>(phases));
    dsp::set_mean_power(std::span<dsp::cfloat>(variants[p]), target_power);
  }

  dsp::Xoshiro256 rng(config.seed);
  dsp::NoiseSource noise(config.noise_power, config.seed ^ 0xA5A5A5A5ULL);

  for (std::size_t f = 0; f < config.num_frames; ++f) {
    const dsp::cvec& frame = variants[rng.uniform_int(phases)];
    dsp::cvec capture(config.lead_in + frame.size() + config.tail);
    for (auto& s : capture) s = noise.sample();

    // Per-trial carrier frequency offset.
    const double cfo =
        (2.0 * rng.uniform() - 1.0) * config.max_cfo_hz;
    const double w = 2.0 * std::numbers::pi * cfo / fpga::kBasebandRateHz;
    for (std::size_t k = 0; k < frame.size(); ++k) {
      const auto rot = static_cast<float>(w * static_cast<double>(k));
      capture[config.lead_in + k] +=
          frame[k] * dsp::cfloat{std::cos(rot), std::sin(rot)};
    }

    const auto run = jammer.observe(capture);
    std::uint64_t events = 0;
    switch (tap) {
      case DetectorTap::kXcorr: events = run.xcorr_detections; break;
      case DetectorTap::kEnergyHigh: events = run.energy_high_detections; break;
      case DetectorTap::kJamTrigger: events = run.jam_triggers; break;
    }
    result.total_detections += events;
    if (events > 0) ++result.frames_detected;
  }

  result.probability = static_cast<double>(result.frames_detected) /
                       static_cast<double>(result.frames_sent);
  result.detections_per_frame =
      static_cast<double>(result.total_detections) /
      static_cast<double>(result.frames_sent);
  return result;
}

}  // namespace rjf::core
