#include "core/detection_experiment.h"

#include <cmath>
#include <numbers>

#include "dsp/db.h"
#include "dsp/noise.h"
#include "dsp/resampler.h"
#include "dsp/rng.h"
#include "fpga/dsp_core.h"
#include "obs/metrics.h"

namespace rjf::core {

DetectionTrialPlan prepare_detection_trials(
    std::span<const dsp::cfloat> frame_native, DetectorTap tap,
    const DetectionRunConfig& config) {
  DetectionTrialPlan plan;
  plan.lead_in = config.lead_in;
  plan.tail = config.tail;
  plan.noise_power = config.noise_power;
  plan.max_cfo_hz = config.max_cfo_hz;
  plan.seed = config.seed;
  plan.tap = tap;

  // Pre-render the frame at the fabric rate for each fractional timing
  // phase; trials then pick a phase at random, modelling the free-running
  // TX/RX sample clocks.
  const unsigned phases = std::max(config.timing_phases, 1u);
  const dsp::Resampler to_fabric(config.tx_rate_hz, fpga::kBasebandRateHz);
  const double target_power =
      config.noise_power * dsp::ratio_from_db(config.snr_db);
  plan.variants.resize(phases);
  for (unsigned p = 0; p < phases; ++p) {
    plan.variants[p] = to_fabric.resample(
        frame_native, static_cast<double>(p) / static_cast<double>(phases));
    dsp::set_mean_power(std::span<dsp::cfloat>(plan.variants[p]),
                        target_power);
  }
  return plan;
}

LazyPlanTable::LazyPlanTable(std::size_t num_points, Builder builder)
    : builder_(std::move(builder)),
      once_(std::make_unique<std::once_flag[]>(num_points)),
      plans_(num_points) {}

const DetectionTrialPlan& LazyPlanTable::get(std::size_t point) {
  std::call_once(once_[point], [&] {
    plans_[point] = builder_(point);
    built_.fetch_add(1, std::memory_order_relaxed);
  });
  return plans_[point];
}

dsp::cfloat cfo_phasor(double w, std::uint64_t k) noexcept {
  const double phase =
      std::remainder(w * static_cast<double>(k), 2.0 * std::numbers::pi);
  return dsp::cfloat{static_cast<float>(std::cos(phase)),
                     static_cast<float>(std::sin(phase))};
}

DetectionTrialOutcome run_detection_trial(ReactiveJammer& jammer,
                                          const DetectionTrialPlan& plan,
                                          std::size_t trial) {
  // Each trial owns a derived RNG stream: impairments depend only on the
  // trial index, never on which trials ran before (or on which thread).
  dsp::Xoshiro256 rng(dsp::derive_seed(plan.seed, trial));
  const std::uint64_t noise_seed = rng.next();
  const dsp::cvec& frame = plan.variants[rng.uniform_int(plan.variants.size())];

  dsp::NoiseSource noise(plan.noise_power, noise_seed);
  dsp::cvec capture(plan.lead_in + frame.size() + plan.tail);
  for (auto& s : capture) s = noise.sample();

  // Per-trial carrier frequency offset; phase evaluated in double and
  // wrapped, so long captures keep full precision (see cfo_phasor()).
  const double cfo = (2.0 * rng.uniform() - 1.0) * plan.max_cfo_hz;
  const double w = 2.0 * std::numbers::pi * cfo / fpga::kBasebandRateHz;
  for (std::size_t k = 0; k < frame.size(); ++k)
    capture[plan.lead_in + k] += frame[k] * cfo_phasor(w, k);

  // §3.2 requires independent trials: flush the energy differentiator's
  // moving sums, the correlator pipeline and the trigger FSM so nothing
  // carries over from the previous capture.
  jammer.reset_detection_state();

  const auto run = jammer.observe(capture);
  DetectionTrialOutcome outcome;
  switch (plan.tap) {
    case DetectorTap::kXcorr: outcome.events = run.xcorr_detections; break;
    case DetectorTap::kEnergyHigh:
      outcome.events = run.energy_high_detections;
      break;
    case DetectorTap::kJamTrigger: outcome.events = run.jam_triggers; break;
  }
  outcome.jam_triggers = run.jam_triggers;
  outcome.last_trigger_vita = run.last_trigger_vita;
  outcome.overflow_gaps = run.overflow_gaps;
  outcome.samples_lost = run.samples_lost;
  return outcome;
}

DetectionTrialCounts run_detection_trials(ReactiveJammer& jammer,
                                          const DetectionTrialPlan& plan,
                                          std::size_t first_trial,
                                          std::size_t num_trials,
                                          obs::MetricsRegistry* metrics) {
  DetectionTrialCounts counts;
  obs::Histogram* per_trial = nullptr;
  if (metrics != nullptr)
    // 0..14 events per trial, then overflow; covers Fig. 8's over-trigger
    // band (a few detections/frame) with headroom.
    per_trial = &metrics->histogram("sweep.detections_per_trial", 0, 1, 15);

  for (std::size_t t = first_trial; t < first_trial + num_trials; ++t) {
    const std::uint64_t events = run_detection_trial(jammer, plan, t).events;
    counts.total_detections += events;
    if (events > 0) ++counts.frames_detected;
    if (per_trial != nullptr) per_trial->record(events);
  }

  if (metrics != nullptr) {
    metrics->add("sweep.trials", num_trials);
    metrics->add("sweep.frames_detected", counts.frames_detected);
    metrics->add("sweep.detections", counts.total_detections);
  }
  return counts;
}

DetectionRunResult run_detection_experiment(
    ReactiveJammer& jammer, std::span<const dsp::cfloat> frame_native,
    DetectorTap tap, const DetectionRunConfig& config) {
  const DetectionTrialPlan plan =
      prepare_detection_trials(frame_native, tap, config);
  const DetectionTrialCounts counts =
      run_detection_trials(jammer, plan, 0, config.num_frames);

  DetectionRunResult result;
  result.frames_sent = config.num_frames;
  result.frames_detected = counts.frames_detected;
  result.total_detections = counts.total_detections;
  result.probability = static_cast<double>(result.frames_detected) /
                       static_cast<double>(result.frames_sent);
  result.detections_per_frame =
      static_cast<double>(result.total_detections) /
      static_cast<double>(result.frames_sent);
  return result;
}

}  // namespace rjf::core
