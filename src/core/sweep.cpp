#include "core/sweep.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "dsp/rng.h"

namespace rjf::core {

std::vector<ShardTask> make_shard_schedule(std::size_t num_points,
                                           const SweepConfig& config) {
  const std::size_t shard_trials = std::max<std::size_t>(config.shard_trials, 1);
  std::vector<ShardTask> tasks;
  std::size_t index = 0;
  for (std::size_t p = 0; p < num_points; ++p) {
    for (std::size_t first = 0; first < config.trials_per_point;
         first += shard_trials) {
      ShardTask task;
      task.point = p;
      task.index = index;
      task.seed = dsp::derive_seed(config.seed, index);
      task.first_trial = first;
      task.trials = std::min(shard_trials, config.trials_per_point - first);
      tasks.push_back(task);
      ++index;
    }
  }
  return tasks;
}

unsigned run_shards(std::span<const ShardTask> tasks, unsigned threads,
                    const std::function<void(const ShardTask&)>& kernel) {
  if (tasks.empty()) return 0;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, tasks.size()));

  if (threads <= 1) {
    for (const ShardTask& task : tasks) kernel(task);
    return 1;
  }

  // Dynamic work-stealing off one atomic cursor: workers pull the next
  // unclaimed shard, so a slow shard (long frame, high-SNR over-triggering)
  // never stalls the rest of the schedule. Result placement is by
  // task.index, so claim order cannot affect the merged report.
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks.size()) return;
      try {
        kernel(tasks[i]);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return threads;
}

SweepReport run_detection_sweep(const JammerConfig& jammer_config,
                                std::span<const dsp::cfloat> frame_native,
                                DetectorTap tap,
                                const DetectionRunConfig& base,
                                std::span<const double> snr_points_db,
                                const SweepConfig& sweep) {
  const auto started = std::chrono::steady_clock::now();  // fabric-lint: allow(wall-clock-or-rand) elapsed-time report only

  // Per-point read-only trial plans (pre-rendered, power-scaled variants).
  // Point p's trials derive from derive_seed(sweep.seed, p), matching a
  // sequential run_detection_experiment with that seed.
  std::vector<DetectionTrialPlan> plans;
  plans.reserve(snr_points_db.size());
  for (std::size_t p = 0; p < snr_points_db.size(); ++p) {
    DetectionRunConfig config = base;
    config.snr_db = snr_points_db[p];
    config.num_frames = sweep.trials_per_point;
    config.seed = dsp::derive_seed(sweep.seed, p);
    plans.push_back(prepare_detection_trials(frame_native, tap, config));
  }

  const std::vector<ShardTask> tasks =
      make_shard_schedule(snr_points_db.size(), sweep);

  // Outcome slots keyed by shard index: workers write disjoint entries.
  std::vector<DetectionTrialCounts> outcomes(tasks.size());
  std::vector<obs::MetricsRegistry> shard_metrics(tasks.size());
  std::vector<std::uint64_t> shard_trials(tasks.size(), 0);

  const unsigned pool_size =
      run_shards(tasks, sweep.threads, [&](const ShardTask& task) {
        // Every shard programs its own jammer/fabric instance from the
        // shared personality: no mutable state crosses shard boundaries.
        ReactiveJammer jammer(jammer_config);
        outcomes[task.index] =
            run_detection_trials(jammer, plans[task.point], task.first_trial,
                                 task.trials, &shard_metrics[task.index]);
        shard_trials[task.index] = task.trials;
      });

  SweepReport report;
  report.threads_used = std::max(1u, pool_size);
  report.shards = tasks.size();
  report.shard_trials = std::move(shard_trials);
  report.points.resize(snr_points_db.size());
  for (std::size_t p = 0; p < snr_points_db.size(); ++p) {
    report.points[p].snr_db = snr_points_db[p];
    report.points[p].seed = plans[p].seed;
    report.points[p].result.frames_sent = sweep.trials_per_point;
  }

  // Deterministic merge: fold shard outcomes and metrics in index order.
  std::vector<DetectionTrialCounts> totals(snr_points_db.size());
  for (const ShardTask& task : tasks) {
    totals[task.point].merge(outcomes[task.index]);
    report.metrics.merge(shard_metrics[task.index]);
  }
  for (std::size_t p = 0; p < snr_points_db.size(); ++p) {
    auto& result = report.points[p].result;
    result.frames_detected = totals[p].frames_detected;
    result.total_detections = totals[p].total_detections;
    if (result.frames_sent > 0) {
      result.probability = static_cast<double>(result.frames_detected) /
                           static_cast<double>(result.frames_sent);
      result.detections_per_frame =
          static_cast<double>(result.total_detections) /
          static_cast<double>(result.frames_sent);
    }
  }

  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)  // fabric-lint: allow(wall-clock-or-rand) elapsed-time report only
          .count();
  return report;
}

}  // namespace rjf::core
