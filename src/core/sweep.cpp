#include "core/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>

#include "dsp/rng.h"
#include "obs/telemetry.h"

namespace rjf::core {

namespace {

/// Default progress sink: a one-line stderr ticker for long campaigns.
void print_progress_line(const SweepProgress& p) {
  std::fprintf(stderr,
               "[sweep] shards %zu/%zu  trials %" PRIu64 "/%" PRIu64
               "  %.0f trials/s  eta %.1fs  faults %" PRIu64 "\n",
               p.shards_done, p.shards_total, p.trials_done, p.trials_total,
               p.trials_per_second, p.eta_seconds, p.faults);
}

/// Sum of the fault.* counters in one shard's registry.
std::uint64_t count_faults(const obs::MetricsRegistry& metrics) {
  std::uint64_t faults = 0;
  for (const auto& [name, value] : metrics.counters())
    if (name.rfind("fault.", 0) == 0) faults += value;
  return faults;
}

std::string lane_name(const ShardTask& task, double snr_db) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "shard %zu / snr %g dB", task.index, snr_db);
  return std::string(buf);
}

}  // namespace

std::size_t resolve_shard_trials(std::size_t num_points,
                                 std::size_t trials_per_point,
                                 unsigned threads) {
  if (num_points == 0 || trials_per_point == 0) return 1;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  const std::uint64_t total =
      static_cast<std::uint64_t>(num_points) * trials_per_point;
  // ~8 shards per worker keeps the dynamic claim loop balanced even when
  // per-shard cost varies (long frames, over-triggering points); never fewer
  // shards than points, since a shard cannot span two points.
  const std::uint64_t target_shards = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(threads) * 8, num_points);
  std::uint64_t shard = total / target_shards;
  shard = std::clamp<std::uint64_t>(shard, kMinAutoShardTrials,
                                    kMaxAutoShardTrials);
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(shard, trials_per_point));
}

std::vector<ShardTask> make_shard_schedule(std::size_t num_points,
                                           const SweepConfig& config) {
  const std::size_t shard_trials =
      config.shard_trials > 0
          ? config.shard_trials
          : resolve_shard_trials(num_points, config.trials_per_point,
                                 config.threads);
  std::vector<ShardTask> tasks;
  std::size_t index = 0;
  for (std::size_t p = 0; p < num_points; ++p) {
    for (std::size_t first = 0; first < config.trials_per_point;
         first += shard_trials) {
      ShardTask task;
      task.point = p;
      task.index = index;
      task.seed = dsp::derive_seed(config.seed, index);
      task.first_trial = first;
      task.trials = std::min(shard_trials, config.trials_per_point - first);
      tasks.push_back(task);
      ++index;
    }
  }
  return tasks;
}

unsigned run_shards(std::span<const ShardTask> tasks, unsigned threads,
                    const std::function<void(const ShardTask&)>& kernel) {
  if (tasks.empty()) return 0;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, tasks.size()));

  if (threads <= 1) {
    for (const ShardTask& task : tasks) kernel(task);
    return 1;
  }

  // Dynamic work-stealing off one atomic cursor: workers pull the next
  // unclaimed shard, so a slow shard (long frame, high-SNR over-triggering)
  // never stalls the rest of the schedule. Result placement is by
  // task.index, so claim order cannot affect the merged report.
  //
  // The abort flag makes a kernel exception fatal to the whole pool: once a
  // shard throws, no worker claims another shard (in-flight shards finish),
  // so an early failure in a huge campaign cannot silently burn the rest of
  // the grid before the rethrow at join.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> abort{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&]() {
    for (;;) {
      if (abort.load(std::memory_order_acquire)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks.size()) return;
      try {
        kernel(tasks[i]);
      } catch (...) {
        abort.store(true, std::memory_order_release);
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return threads;
}

SweepReport run_detection_sweep(const JammerConfig& jammer_config,
                                std::span<const dsp::cfloat> frame_native,
                                DetectorTap tap,
                                const DetectionRunConfig& base,
                                std::span<const double> snr_points_db,
                                const SweepConfig& sweep) {
  const auto started = std::chrono::steady_clock::now();  // fabric-lint: allow(wall-clock-or-rand) elapsed-time report only

  // Per-point read-only trial plans (pre-rendered, power-scaled variants).
  // Point p's trials derive from derive_seed(sweep.seed, p), matching a
  // sequential run_detection_experiment with that seed. Plans build lazily
  // from whichever worker reaches the point first, so the per-point
  // resample/scale prep overlaps shard execution instead of running
  // serially up front (each plan is a pure function of its index, so the
  // builder's thread cannot affect its contents).
  LazyPlanTable plans(snr_points_db.size(), [&](std::size_t p) {
    DetectionRunConfig config = base;
    config.snr_db = snr_points_db[p];
    config.num_frames = sweep.trials_per_point;
    config.seed = dsp::derive_seed(sweep.seed, p);
    return prepare_detection_trials(frame_native, tap, config);
  });

  const std::vector<ShardTask> tasks =
      make_shard_schedule(snr_points_db.size(), sweep);

  // Outcome slots keyed by shard index: workers write disjoint entries.
  std::vector<DetectionTrialCounts> outcomes(tasks.size());
  std::vector<obs::MetricsRegistry> shard_metrics(tasks.size());
  std::vector<std::uint64_t> shard_trials(tasks.size(), 0);
  std::vector<obs::TraceRecorder::TraceLane> shard_lanes(
      sweep.trace_events_per_shard > 0 ? tasks.size() : 0);

  // Progress accounting (side channel only — never feeds the report's
  // deterministic fields).
  std::uint64_t trials_total = 0;
  for (const ShardTask& task : tasks) trials_total += task.trials;
  std::atomic<std::size_t> shards_done{0};
  std::atomic<std::uint64_t> trials_done{0};
  std::atomic<std::uint64_t> faults_seen{0};
  std::mutex progress_mutex;

  const unsigned pool_size =
      run_shards(tasks, sweep.threads, [&](const ShardTask& task) {
        // Every shard programs its own jammer/fabric instance from the
        // shared personality: no mutable state crosses shard boundaries.
        ReactiveJammer jammer(jammer_config);
        std::optional<obs::Telemetry> telemetry;
        if (sweep.trace_events_per_shard > 0) {
          obs::TelemetryConfig tc;
          tc.trace_capacity = sweep.trace_events_per_shard;
          tc.probe_enabled = false;
          telemetry.emplace(tc);
          jammer.attach_trace(&*telemetry);
        }
        outcomes[task.index] =
            run_detection_trials(jammer, plans.get(task.point),
                                 task.first_trial, task.trials,
                                 &shard_metrics[task.index]);
        shard_trials[task.index] = task.trials;
        if (telemetry.has_value()) {
          jammer.attach_trace(nullptr);
          telemetry->flush();
          telemetry->refresh_gauges();
          // Fold the shard's fabric event counters/histograms into its
          // metrics slot, minus the wall-clock-derived entries: merged
          // campaign metrics must depend only on the deterministic event
          // stream.
          obs::MetricsRegistry fabric_metrics = telemetry->metrics();
          fabric_metrics.erase_counter("stream_wall_ns");
          fabric_metrics.erase_gauge("host_throughput_msps");
          shard_metrics[task.index].merge(fabric_metrics);
          obs::TraceRecorder::TraceLane& lane = shard_lanes[task.index];
          lane.name = lane_name(task, snr_points_db[task.point]);
          lane.events = telemetry->trace().events();
          lane.annotations = telemetry->personalities();
        }

        const std::size_t done =
            shards_done.fetch_add(1, std::memory_order_relaxed) + 1;
        trials_done.fetch_add(task.trials, std::memory_order_relaxed);
        faults_seen.fetch_add(count_faults(shard_metrics[task.index]),
                              std::memory_order_relaxed);
        if (sweep.progress_every_shards > 0 &&
            (done % sweep.progress_every_shards == 0 ||
             done == tasks.size())) {
          SweepProgress prog;
          prog.shards_done = done;
          prog.shards_total = tasks.size();
          prog.trials_done = trials_done.load(std::memory_order_relaxed);
          prog.trials_total = trials_total;
          prog.faults = faults_seen.load(std::memory_order_relaxed);
          prog.elapsed_seconds =
              std::chrono::duration<double>(std::chrono::steady_clock::now() - started)  // fabric-lint: allow(wall-clock-or-rand) elapsed-time report only
                  .count();
          if (prog.elapsed_seconds > 0.0)
            prog.trials_per_second =
                static_cast<double>(prog.trials_done) / prog.elapsed_seconds;
          if (prog.trials_per_second > 0.0)
            prog.eta_seconds =
                static_cast<double>(trials_total - prog.trials_done) /
                prog.trials_per_second;
          const std::lock_guard<std::mutex> lock(progress_mutex);
          if (sweep.progress)
            sweep.progress(prog);
          else
            print_progress_line(prog);
        }
      });

  SweepReport report;
  report.threads_used = std::max(1u, pool_size);
  report.shards = tasks.size();
  report.shard_trials = std::move(shard_trials);
  report.points.resize(snr_points_db.size());
  for (std::size_t p = 0; p < snr_points_db.size(); ++p) {
    report.points[p].snr_db = snr_points_db[p];
    report.points[p].seed = dsp::derive_seed(sweep.seed, p);
    report.points[p].result.frames_sent = sweep.trials_per_point;
  }

  // Deterministic merge: fold shard outcomes and metrics in index order.
  std::vector<DetectionTrialCounts> totals(snr_points_db.size());
  for (const ShardTask& task : tasks) {
    totals[task.point].merge(outcomes[task.index]);
    report.metrics.merge(shard_metrics[task.index]);
  }
  for (std::size_t p = 0; p < snr_points_db.size(); ++p) {
    auto& result = report.points[p].result;
    result.frames_detected = totals[p].frames_detected;
    result.total_detections = totals[p].total_detections;
    if (result.frames_sent > 0) {
      result.probability = static_cast<double>(result.frames_detected) /
                           static_cast<double>(result.frames_sent);
      result.detections_per_frame =
          static_cast<double>(result.total_detections) /
          static_cast<double>(result.frames_sent);
    }
  }

  report.shard_traces = std::move(shard_lanes);

  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)  // fabric-lint: allow(wall-clock-or-rand) elapsed-time report only
          .count();

  // Campaign-level aggregates ride the same registry as the merged shard
  // counters. Counters stay deterministic (schedule-derived); wall-clock
  // rates are gauges, which merges treat as point-in-time readings.
  report.metrics.counter("campaign.shards") = report.shards;
  report.metrics.counter("campaign.trials") = report.total_trials();
  report.metrics.counter("campaign.points") = report.points.size();
  report.metrics.set_gauge("campaign.threads",
                           static_cast<double>(report.threads_used));
  report.metrics.set_gauge("campaign.wall_s", report.wall_seconds);
  report.metrics.set_gauge("campaign.trials_per_s", report.trials_per_second());
  return report;
}

}  // namespace rjf::core
