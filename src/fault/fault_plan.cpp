#include "fault/fault_plan.h"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "dsp/rng.h"

namespace rjf::fault {

FaultPlanConfig FaultPlanConfig::scaled(double factor) const noexcept {
  FaultPlanConfig out = *this;
  out.clip_rate *= factor;
  out.dc_rate *= factor;
  out.drop_rate *= factor;
  out.overflow_rate *= factor;
  out.gain_glitch_rate *= factor;
  out.tune_glitch_rate *= factor;
  out.bus_stall_rate *= factor;
  out.bus_drop_rate *= factor;
  return out;
}

namespace {

struct TimelineSpec {
  FaultKind kind;
  double rate;
  std::uint32_t run;
  double magnitude;
};

// Geometric inter-arrival: the gap before the next fault start, for a
// per-sample start probability `rate`. Inverse-CDF so one uniform draw maps
// to one gap — the draw count per event is fixed, keeping streams aligned.
std::uint64_t geometric_gap(dsp::Xoshiro256& rng, double rate) {
  const double u = std::min(rng.uniform(), 1.0 - 1e-12);
  const double draw = std::log1p(-u) / std::log1p(-rate);
  return 1 + static_cast<std::uint64_t>(draw);
}

}  // namespace

FaultPlan FaultPlan::generate(const FaultPlanConfig& config) {
  FaultPlan plan;
  plan.config_ = config;

  const TimelineSpec specs[] = {
      {FaultKind::kAdcClip, config.clip_rate, config.clip_run,
       config.clip_drive},
      {FaultKind::kDcOffset, config.dc_rate, config.dc_run, config.dc_offset},
      {FaultKind::kSampleDrop, config.drop_rate, config.drop_run, 0.0},
      {FaultKind::kOverflowRun, config.overflow_rate, config.overflow_run,
       0.0},
      {FaultKind::kGainGlitch, config.gain_glitch_rate, config.gain_glitch_run,
       config.gain_glitch_db},
      {FaultKind::kTuneGlitch, config.tune_glitch_rate, config.tune_glitch_run,
       config.tune_glitch_hz},
  };

  for (const TimelineSpec& spec : specs) {
    if (spec.rate <= 0.0 || spec.run == 0 || config.horizon_samples == 0)
      continue;
    // A start probability above 0.5 would schedule back-to-back runs
    // anyway; clamping keeps log1p(-rate) finite.
    const double rate = std::min(spec.rate, 0.5);
    // One splitmix substream per fault kind, so adding a kind (or changing
    // one kind's rate) never perturbs the others' schedules.
    dsp::Xoshiro256 rng(
        dsp::derive_seed(config.seed, static_cast<std::uint64_t>(spec.kind)));
    std::uint64_t pos = 0;
    while (true) {
      pos += geometric_gap(rng, rate);
      if (pos >= config.horizon_samples) break;
      FaultEvent ev;
      ev.kind = spec.kind;
      ev.at_sample = pos;
      ev.length = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(spec.run, config.horizon_samples - pos));
      ev.magnitude = spec.magnitude;
      // Kind-specific resolution, still one extra draw per event at most.
      if (spec.kind == FaultKind::kDcOffset ||
          spec.kind == FaultKind::kTuneGlitch)
        ev.magnitude = rng.uniform() < 0.5 ? -ev.magnitude : ev.magnitude;
      if (spec.kind == FaultKind::kGainGlitch)
        ev.magnitude = std::pow(10.0, ev.magnitude / 20.0);  // dB -> linear
      plan.events_.push_back(ev);
      plan.max_run_ = std::max(plan.max_run_, ev.length);
      pos += ev.length;  // runs of one kind never overlap
    }
  }

  std::sort(plan.events_.begin(), plan.events_.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return std::tie(a.at_sample, a.kind) <
                     std::tie(b.at_sample, b.kind);
            });
  return plan;
}

std::uint64_t FaultPlan::count(FaultKind kind) const noexcept {
  std::uint64_t n = 0;
  for (const FaultEvent& ev : events_)
    if (ev.kind == kind) ++n;
  return n;
}

}  // namespace rjf::fault
