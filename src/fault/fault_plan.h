// Deterministic fault schedules.
//
// A FaultPlan is a pre-computed, immutable timeline of radio misbehaviour —
// ADC-saturating level jumps, DC offset steps, dropped IQ samples, UHD-style
// overflow ("O") gaps, front-end gain/tune glitches — plus per-write
// settings-bus fault probabilities. Generation is keyed entirely on
// (config.seed, fault kind, event ordinal) through dsp::derive_seed
// splitmix streams, the same discipline the sweep engine uses for trials:
// a plan is a pure function of its config, bit-identical at any sweep
// thread count, shard size, or call order. A plan with every rate at zero
// generates no events and must be indistinguishable from having no
// injector attached at all (the zero-fault inertness contract, tested in
// test_fault_injection.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rjf::fault {

enum class FaultKind : std::uint32_t {
  kAdcClip = 0,   // input level jump that saturates the ADC
  kDcOffset,      // DC offset step on both I and Q
  kSampleDrop,    // short run of zeroed IQ samples
  kOverflowRun,   // stream overflow: samples never reach the host
  kGainGlitch,    // front-end gain step (dB), e.g. AGC hiccup
  kTuneGlitch,    // transient frequency offset (Hz), e.g. PLL wander
  kBusStall,      // settings-bus write takes extra cycles
  kBusDrop,       // settings-bus write lost in transit
};

inline constexpr std::size_t kNumFaultKinds = 8;

[[nodiscard]] constexpr const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kAdcClip: return "adc_clip";
    case FaultKind::kDcOffset: return "dc_offset";
    case FaultKind::kSampleDrop: return "sample_drop";
    case FaultKind::kOverflowRun: return "overflow_run";
    case FaultKind::kGainGlitch: return "gain_glitch";
    case FaultKind::kTuneGlitch: return "tune_glitch";
    case FaultKind::kBusStall: return "bus_stall";
    case FaultKind::kBusDrop: return "bus_drop";
  }
  return "unknown";
}

/// Rates are per-sample start probabilities (timeline faults, geometric
/// inter-arrival) or per-write probabilities (bus faults). Runs give each
/// fault's duration in samples; magnitudes are kind-specific.
struct FaultPlanConfig {
  std::uint64_t seed = 1;
  std::uint64_t horizon_samples = 0;  // timeline length the plan covers

  double clip_rate = 0.0;
  std::uint32_t clip_run = 16;
  double clip_drive = 8.0;            // amplitude multiplier during the jump

  double dc_rate = 0.0;
  std::uint32_t dc_run = 64;
  double dc_offset = 0.25;            // added to I and Q (sign randomised)

  double drop_rate = 0.0;
  std::uint32_t drop_run = 4;

  double overflow_rate = 0.0;
  std::uint32_t overflow_run = 256;

  double gain_glitch_rate = 0.0;
  std::uint32_t gain_glitch_run = 128;
  double gain_glitch_db = -12.0;      // gain step in dB

  double tune_glitch_rate = 0.0;
  std::uint32_t tune_glitch_run = 128;
  double tune_glitch_hz = 200e3;      // frequency offset (sign randomised)

  double bus_stall_rate = 0.0;
  std::uint32_t bus_stall_cycles = 160;
  double bus_drop_rate = 0.0;

  /// Every rate multiplied by `factor` (degradation-curve x-axis). A factor
  /// of 0 yields a provably inert plan.
  [[nodiscard]] FaultPlanConfig scaled(double factor) const noexcept;
};

/// One scheduled timeline fault. `magnitude` is pre-resolved at generation
/// time: clip -> amplitude multiplier, dc -> signed offset, gain -> linear
/// gain factor, tune -> signed frequency offset in Hz, drop/overflow -> 0.
struct FaultEvent {
  std::uint64_t at_sample = 0;
  std::uint32_t length = 1;
  FaultKind kind = FaultKind::kAdcClip;
  double magnitude = 0.0;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Generate the schedule for `config`. Pure: same config -> same plan.
  [[nodiscard]] static FaultPlan generate(const FaultPlanConfig& config);

  /// Timeline events, sorted by (at_sample, kind); runs of the same kind
  /// never overlap each other.
  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] const FaultPlanConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::uint64_t count(FaultKind kind) const noexcept;
  /// Longest scheduled run, for windowed lookups over the event list.
  [[nodiscard]] std::uint32_t max_run() const noexcept { return max_run_; }

 private:
  FaultPlanConfig config_{};
  std::vector<FaultEvent> events_;
  std::uint32_t max_run_ = 0;
};

}  // namespace rjf::fault
