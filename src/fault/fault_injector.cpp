#include "fault/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <numeric>

#include "dsp/rng.h"
#include "fpga/dsp_core.h"

namespace rjf::fault {

namespace {

// Substream tag separating per-write bus draws from the timeline kinds
// (which use derive_seed(seed, kind) with kind in [0, 6)).
constexpr std::uint64_t kBusStreamTag = 0xB5;

// First event index that could overlap a range starting at `start`, given
// the plan's longest run. Events are sorted by at_sample.
std::size_t first_candidate(const std::vector<FaultEvent>& events,
                            std::uint64_t start, std::uint32_t max_run) {
  const std::uint64_t floor = start > max_run ? start - max_run : 0;
  const auto it = std::lower_bound(
      events.begin(), events.end(), floor,
      [](const FaultEvent& ev, std::uint64_t v) { return ev.at_sample < v; });
  return static_cast<std::size_t>(it - events.begin());
}

}  // namespace

void FaultInjector::mutate_rx(std::span<dsp::cfloat> rx,
                              std::uint64_t start_sample) {
  const auto& events = plan_.events();
  const std::uint64_t end_sample = start_sample + rx.size();
  for (std::size_t k = first_candidate(events, start_sample, plan_.max_run());
       k < events.size() && events[k].at_sample < end_sample; ++k) {
    const FaultEvent& ev = events[k];
    const std::uint64_t ev_end = ev.at_sample + ev.length;
    if (ev_end <= start_sample) continue;

    // Count each event once: when its first sample enters a block. Blocks
    // never overlap (the cursor is monotonic), so this is exact.
    if (ev.at_sample >= start_sample)
      ++injected_[static_cast<std::size_t>(ev.kind)];
    if (ev.kind == FaultKind::kOverflowRun)
      continue;  // applied by the stream loop via overflow_gaps()

    const std::uint64_t lo = std::max(ev.at_sample, start_sample);
    const std::uint64_t hi = std::min(ev_end, end_sample);
    for (std::uint64_t s = lo; s < hi; ++s) {
      dsp::cfloat& x = rx[static_cast<std::size_t>(s - start_sample)];
      switch (ev.kind) {
        case FaultKind::kAdcClip:
        case FaultKind::kGainGlitch:
          x *= static_cast<float>(ev.magnitude);
          break;
        case FaultKind::kDcOffset:
          x += dsp::cfloat{static_cast<float>(ev.magnitude),
                           static_cast<float>(ev.magnitude)};
          break;
        case FaultKind::kSampleDrop:
          x = dsp::cfloat{};
          break;
        case FaultKind::kTuneGlitch: {
          // Progressive rotation from the glitch onset, like a PLL pulling
          // off frequency and back.
          const double w = 2.0 * std::numbers::pi * ev.magnitude /
                           fpga::kBasebandRateHz;
          const double phase = std::remainder(
              w * static_cast<double>(s - ev.at_sample),
              2.0 * std::numbers::pi);
          x *= dsp::cfloat{static_cast<float>(std::cos(phase)),
                           static_cast<float>(std::sin(phase))};
          break;
        }
        case FaultKind::kOverflowRun:
        case FaultKind::kBusStall:
        case FaultKind::kBusDrop:
          break;  // not amplitude faults
      }
    }
  }
}

void FaultInjector::overflow_gaps(std::uint64_t start_sample,
                                  std::uint64_t length,
                                  std::vector<radio::OverflowGap>& out) const {
  const auto& events = plan_.events();
  const std::uint64_t end_sample = start_sample + length;
  for (std::size_t k = first_candidate(events, start_sample, plan_.max_run());
       k < events.size() && events[k].at_sample < end_sample; ++k) {
    const FaultEvent& ev = events[k];
    if (ev.kind != FaultKind::kOverflowRun) continue;
    if (ev.at_sample + ev.length <= start_sample) continue;
    out.push_back(radio::OverflowGap{ev.at_sample, ev.length});
  }
}

void FaultInjector::applied_faults(std::uint64_t start_sample,
                                   std::uint64_t length,
                                   std::vector<radio::RxFaultView>& out) const {
  const auto& events = plan_.events();
  const std::uint64_t end_sample = start_sample + length;
  for (std::size_t k = first_candidate(events, start_sample, 0);
       k < events.size() && events[k].at_sample < end_sample; ++k) {
    const FaultEvent& ev = events[k];
    if (ev.at_sample < start_sample) continue;
    out.push_back(radio::RxFaultView{
        ev.at_sample, ev.length, static_cast<std::uint32_t>(ev.kind)});
  }
}

FaultInjector::WriteFault FaultInjector::on_write(fpga::Reg /*addr*/,
                                                  std::uint64_t /*now_ticks*/) {
  WriteFault out;
  const FaultPlanConfig& c = plan_.config();
  const std::uint64_t index = write_index_++;
  if (c.bus_drop_rate <= 0.0 && c.bus_stall_rate <= 0.0) return out;
  // One substream per write ordinal: the decision for write N is the same
  // whether writes are issued in one burst or across reconfigurations.
  dsp::Xoshiro256 rng(
      dsp::derive_seed(dsp::derive_seed(c.seed, kBusStreamTag), index));
  if (rng.uniform() < c.bus_drop_rate) {
    out.dropped = true;
    ++injected_[static_cast<std::size_t>(FaultKind::kBusDrop)];
  } else if (rng.uniform() < c.bus_stall_rate) {
    out.extra_latency_cycles = c.bus_stall_cycles;
    ++injected_[static_cast<std::size_t>(FaultKind::kBusStall)];
  }
  return out;
}

std::uint64_t FaultInjector::injected_total() const noexcept {
  return std::accumulate(injected_.begin(), injected_.end(),
                         std::uint64_t{0});
}

}  // namespace rjf::fault
