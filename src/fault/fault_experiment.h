// Fault-robustness sweep: detection probability and trigger latency as a
// function of fault intensity × SNR.
//
// Reuses the deterministic sweep engine (core/sweep.h) over a fault-major
// grid: point index p = scale_index * num_snrs + snr_index. Trial plans
// derive from dsp::derive_seed(sweep.seed, p) exactly like the clean
// detection sweep, so the scale-0 row of the grid reproduces
// core::run_detection_sweep bit-for-bit (the zero-fault inertness
// contract). Each trial generates its own FaultPlan from
// derive_seed(derive_seed(fault_base.seed, p), trial) — fault schedules,
// like impairments, depend only on logical indices, never on thread count
// or shard size.
#pragma once

#include "core/campaign.h"
#include "core/scenario.h"
#include "core/sweep.h"
#include "fault/fault_injector.h"

namespace rjf::fault {

struct FaultSweepPoint {
  double fault_scale = 0.0;
  double snr_db = 0.0;
  core::DetectionRunResult result;
  std::uint64_t faults_injected = 0;   // timeline faults entering captures
  std::uint64_t overflow_gaps = 0;
  std::uint64_t samples_lost = 0;
  // Frame-start -> jam-trigger latency over trials that triggered, in
  // fabric ticks (10 ns); measured to the trial's last trigger.
  std::uint64_t trigger_latency_count = 0;
  double trigger_latency_mean_ticks = 0.0;
};

struct FaultSweepReport {
  /// Fault-major grid: points[s * num_snrs + k] is scale s, SNR k.
  std::vector<FaultSweepPoint> points;
  unsigned threads_used = 1;
  std::size_t shards = 0;
  double wall_seconds = 0.0;
  /// Per-shard registries merged in shard-index order; carries the clean
  /// sweep.* series plus fault.* counters and the
  /// fault.trigger_latency_ticks histogram when faults were injected.
  obs::MetricsRegistry metrics;

  [[nodiscard]] const FaultSweepPoint& at(std::size_t scale_index,
                                          std::size_t snr_index,
                                          std::size_t num_snrs) const {
    return points[scale_index * num_snrs + snr_index];
  }
};

/// Run the grid. `fault_base` holds the rates at scale 1.0 (its
/// horizon_samples is overridden per point to cover the capture, its seed
/// is the root of the per-trial schedule streams); `fault_scales` is the
/// degradation-curve x-axis — include 0.0 to anchor the clean baseline.
[[nodiscard]] FaultSweepReport run_fault_robustness_sweep(
    const core::JammerConfig& jammer_config,
    std::span<const dsp::cfloat> frame_native, core::DetectorTap tap,
    const core::DetectionRunConfig& base, std::span<const double> snr_points_db,
    std::span<const double> fault_scales, const FaultPlanConfig& fault_base,
    const core::SweepConfig& sweep);

/// Run the grid against a registered protocol target (core/scenario.h):
/// the victim frame is `psdu` through the target's transmitter at
/// `rate_index`, and `base.tx_rate_hz` is overridden with the target's
/// native rate. Everything else matches run_fault_robustness_sweep.
[[nodiscard]] FaultSweepReport run_target_fault_robustness_sweep(
    const core::ProtocolTarget& target, std::size_t rate_index,
    std::span<const std::uint8_t> psdu, const core::JammerConfig& jammer_config,
    core::DetectorTap tap, core::DetectionRunConfig base,
    std::span<const double> snr_points_db, std::span<const double> fault_scales,
    const FaultPlanConfig& fault_base, const core::SweepConfig& sweep);

/// The campaign runner's fault axis. Returns a CampaignSpec::make_trial_hook
/// factory whose hooks attach a per-trial FaultInjector built from
/// `fault_base` scaled by the point's grid.fault_scales entry, seeded
/// derive_seed(derive_seed(fault_base.seed, point), trial) — the same
/// (point, trial) keying as run_fault_robustness_sweep, so campaign results
/// are index-deterministic and the scale-0.0 rows stay byte-identical to a
/// hookless campaign (zero-fault inertness). One hook is created per shard;
/// hooks hold no shared state, so no locking is involved.
[[nodiscard]] std::function<std::unique_ptr<core::CampaignTrialHook>()>
campaign_fault_hook_factory(core::CampaignGrid grid,
                            FaultPlanConfig fault_base);

}  // namespace rjf::fault
