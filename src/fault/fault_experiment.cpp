#include "fault/fault_experiment.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

#include "dsp/rng.h"
#include "fpga/dsp_core.h"

namespace rjf::fault {

namespace {

// Latency histogram binning: 64 ticks (640 ns) per bin out to ~164 us,
// matching telemetry's fault_recovery_ticks shape.
constexpr std::uint64_t kLatencyWidth = 64;
constexpr std::uint64_t kLatencyBins = 256;

// Per-shard accumulation beyond the standard detection counts.
struct ShardOutcome {
  core::DetectionTrialCounts counts;
  std::uint64_t injected = 0;
  std::uint64_t overflow_gaps = 0;
  std::uint64_t samples_lost = 0;
  std::uint64_t latency_sum = 0;
  std::uint64_t latency_count = 0;
};

}  // namespace

FaultSweepReport run_fault_robustness_sweep(
    const core::JammerConfig& jammer_config,
    std::span<const dsp::cfloat> frame_native, core::DetectorTap tap,
    const core::DetectionRunConfig& base, std::span<const double> snr_points_db,
    std::span<const double> fault_scales, const FaultPlanConfig& fault_base,
    const core::SweepConfig& sweep) {
  const auto started = std::chrono::steady_clock::now();  // fabric-lint: allow(wall-clock-or-rand) elapsed-time report only
  const std::size_t num_snrs = snr_points_db.size();
  const std::size_t num_points = fault_scales.size() * num_snrs;

  // Per-point read-only state: the trial plan (shared with the clean sweep
  // seeding scheme, so scale 0 reproduces run_detection_sweep), the scaled
  // fault config (its horizon is set per shard from the plan's capture
  // length), and the root seed of the point's per-trial fault streams.
  // Plans build lazily from the worker pool — the resample/scale prep is
  // the expensive part of per-point setup and used to run serially up
  // front; the cheap fault configs stay precomputed.
  core::LazyPlanTable plans(num_points, [&](std::size_t p) {
    core::DetectionRunConfig config = base;
    config.snr_db = snr_points_db[p % num_snrs];
    config.num_frames = sweep.trials_per_point;
    config.seed = dsp::derive_seed(sweep.seed, p);
    return core::prepare_detection_trials(frame_native, tap, config);
  });
  std::vector<FaultPlanConfig> fault_configs;
  std::vector<std::uint64_t> fault_seeds;
  fault_configs.reserve(num_points);
  fault_seeds.reserve(num_points);
  for (std::size_t s = 0; s < fault_scales.size(); ++s) {
    for (std::size_t k = 0; k < num_snrs; ++k) {
      const std::size_t p = s * num_snrs + k;
      fault_configs.push_back(fault_base.scaled(fault_scales[s]));
      fault_seeds.push_back(dsp::derive_seed(fault_base.seed, p));
    }
  }

  const std::vector<core::ShardTask> tasks =
      core::make_shard_schedule(num_points, sweep);

  std::vector<ShardOutcome> outcomes(tasks.size());
  std::vector<obs::MetricsRegistry> shard_metrics(tasks.size());

  const unsigned pool_size =
      core::run_shards(tasks, sweep.threads, [&](const core::ShardTask& task) {
        core::ReactiveJammer jammer(jammer_config);
        ShardOutcome& out = outcomes[task.index];
        obs::MetricsRegistry& reg = shard_metrics[task.index];
        obs::Histogram& per_trial =
            reg.histogram("sweep.detections_per_trial", 0, 1, 15);
        const core::DetectionTrialPlan& plan = plans.get(task.point);
        const std::uint64_t lead_ticks =
            static_cast<std::uint64_t>(plan.lead_in) * fpga::kClocksPerSample;
        std::size_t max_variant = 0;
        for (const dsp::cvec& v : plan.variants)
          max_variant = std::max(max_variant, v.size());
        const std::uint64_t horizon = plan.lead_in + max_variant + plan.tail;

        for (std::size_t t = task.first_trial;
             t < task.first_trial + task.trials; ++t) {
          // The trial's own fault schedule, keyed on (point, trial) alone.
          FaultPlanConfig fc = fault_configs[task.point];
          fc.horizon_samples = horizon;
          fc.seed = dsp::derive_seed(fault_seeds[task.point], t);
          FaultInjector injector(FaultPlan::generate(fc));
          jammer.attach_fault_hooks(&injector, &injector);

          const core::DetectionTrialOutcome trial =
              core::run_detection_trial(jammer, plan, t);
          jammer.attach_fault_hooks(nullptr, nullptr);

          out.counts.total_detections += trial.events;
          if (trial.events > 0) ++out.counts.frames_detected;
          per_trial.record(trial.events);
          out.injected += injector.injected_total();
          out.overflow_gaps += trial.overflow_gaps;
          out.samples_lost += trial.samples_lost;
          if (trial.jam_triggers > 0 &&
              trial.last_trigger_vita >= lead_ticks) {
            const std::uint64_t latency = trial.last_trigger_vita - lead_ticks;
            out.latency_sum += latency;
            ++out.latency_count;
            reg.histogram("fault.trigger_latency_ticks", 0, kLatencyWidth,
                          kLatencyBins)
                .record(latency);
          }
        }

        reg.add("sweep.trials", task.trials);
        reg.add("sweep.frames_detected", out.counts.frames_detected);
        reg.add("sweep.detections", out.counts.total_detections);
        // Fault counters only when something happened, so the scale-0 row's
        // registries match the clean sweep's exactly.
        if (out.injected > 0) reg.add("fault.injected", out.injected);
        if (out.overflow_gaps > 0) {
          reg.add("fault.overflow_gaps", out.overflow_gaps);
          reg.add("fault.samples_lost", out.samples_lost);
        }
      });

  FaultSweepReport report;
  report.threads_used = std::max(1u, pool_size);
  report.shards = tasks.size();
  report.points.resize(num_points);

  std::vector<ShardOutcome> totals(num_points);
  for (const core::ShardTask& task : tasks) {
    ShardOutcome& tot = totals[task.point];
    const ShardOutcome& shard = outcomes[task.index];
    tot.counts.merge(shard.counts);
    tot.injected += shard.injected;
    tot.overflow_gaps += shard.overflow_gaps;
    tot.samples_lost += shard.samples_lost;
    tot.latency_sum += shard.latency_sum;
    tot.latency_count += shard.latency_count;
    report.metrics.merge(shard_metrics[task.index]);
  }

  for (std::size_t s = 0; s < fault_scales.size(); ++s) {
    for (std::size_t k = 0; k < num_snrs; ++k) {
      const std::size_t p = s * num_snrs + k;
      FaultSweepPoint& point = report.points[p];
      point.fault_scale = fault_scales[s];
      point.snr_db = snr_points_db[k];
      point.result.frames_sent = sweep.trials_per_point;
      point.result.frames_detected = totals[p].counts.frames_detected;
      point.result.total_detections = totals[p].counts.total_detections;
      if (point.result.frames_sent > 0) {
        point.result.probability =
            static_cast<double>(point.result.frames_detected) /
            static_cast<double>(point.result.frames_sent);
        point.result.detections_per_frame =
            static_cast<double>(point.result.total_detections) /
            static_cast<double>(point.result.frames_sent);
      }
      point.faults_injected = totals[p].injected;
      point.overflow_gaps = totals[p].overflow_gaps;
      point.samples_lost = totals[p].samples_lost;
      point.trigger_latency_count = totals[p].latency_count;
      if (totals[p].latency_count > 0)
        point.trigger_latency_mean_ticks =
            static_cast<double>(totals[p].latency_sum) /
            static_cast<double>(totals[p].latency_count);
    }
  }

  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)  // fabric-lint: allow(wall-clock-or-rand) elapsed-time report only
          .count();
  return report;
}

FaultSweepReport run_target_fault_robustness_sweep(
    const core::ProtocolTarget& target, std::size_t rate_index,
    std::span<const std::uint8_t> psdu, const core::JammerConfig& jammer_config,
    core::DetectorTap tap, core::DetectionRunConfig base,
    std::span<const double> snr_points_db, std::span<const double> fault_scales,
    const FaultPlanConfig& fault_base, const core::SweepConfig& sweep) {
  const dsp::cvec frame = target.make_frame(rate_index, psdu, 0x5D);
  base.tx_rate_hz = target.native_rate_hz;
  return run_fault_robustness_sweep(jammer_config, frame, tap, base,
                                    snr_points_db, fault_scales, fault_base,
                                    sweep);
}

namespace {

/// One per shard; builds the trial's injector in before_trial and detaches
/// it in after_trial. A scale of exactly 0.0 attaches nothing at all, so
/// the zero-fault row exercises the identical code path as a campaign with
/// no hook factory (inertness is structural, not just numerical).
class CampaignFaultHook final : public core::CampaignTrialHook {
 public:
  CampaignFaultHook(core::CampaignGrid grid, FaultPlanConfig base)
      : grid_(std::move(grid)), base_(std::move(base)) {}

  void before_trial(core::ReactiveJammer& jammer, std::size_t point,
                    std::size_t trial,
                    std::uint64_t horizon_samples) override {
    const core::CampaignGrid::Coords c = grid_.coords(point);
    const double scale = grid_.fault_scales[c.scale_index];
    if (scale == 0.0) return;
    FaultPlanConfig fc = base_.scaled(scale);
    fc.horizon_samples = horizon_samples;
    fc.seed = dsp::derive_seed(dsp::derive_seed(base_.seed, point), trial);
    injector_.emplace(FaultPlan::generate(fc));
    jammer.attach_fault_hooks(&*injector_, &*injector_);
  }

  std::uint64_t after_trial(core::ReactiveJammer& jammer) override {
    if (!injector_.has_value()) return 0;
    jammer.attach_fault_hooks(nullptr, nullptr);
    const std::uint64_t injected = injector_->injected_total();
    injector_.reset();
    return injected;
  }

 private:
  core::CampaignGrid grid_;
  FaultPlanConfig base_;
  std::optional<FaultInjector> injector_;
};

}  // namespace

std::function<std::unique_ptr<core::CampaignTrialHook>()>
campaign_fault_hook_factory(core::CampaignGrid grid,
                            FaultPlanConfig fault_base) {
  return [grid = std::move(grid), fault_base = std::move(fault_base)]() {
    return std::unique_ptr<core::CampaignTrialHook>(
        new CampaignFaultHook(grid, fault_base));
  };
}

}  // namespace rjf::fault
