// FaultInjector — executes a FaultPlan against the radio's fault seams.
//
// One object implements both radio hooks: RxFaultHook (amplitude/phase
// faults on the receive baseband, overflow-gap declarations) and
// BusFaultHook (per-write stall/drop decisions). Attach it with
// ReactiveJammer::attach_fault_hooks(&inj, &inj) — or either seam alone.
//
// Determinism: rx-path behaviour is a pure function of the plan and the
// absolute sample range passed in; bus behaviour is a pure function of the
// plan seed and the write ordinal. Neither depends on wall time, thread
// schedule or call batching, so faulted sweeps shard like clean ones.
#pragma once

#include <array>
#include <cstdint>

#include "fault/fault_plan.h"
#include "radio/fault_hooks.h"

namespace rjf::fault {

class FaultInjector final : public radio::RxFaultHook,
                            public radio::BusFaultHook {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  // RxFaultHook
  void mutate_rx(std::span<dsp::cfloat> rx,
                 std::uint64_t start_sample) override;
  void overflow_gaps(std::uint64_t start_sample, std::uint64_t length,
                     std::vector<radio::OverflowGap>& out) const override;
  void applied_faults(std::uint64_t start_sample, std::uint64_t length,
                      std::vector<radio::RxFaultView>& out) const override;

  // BusFaultHook
  WriteFault on_write(fpga::Reg addr, std::uint64_t now_ticks) override;

  /// Faults actually injected so far (timeline kinds count when their first
  /// sample enters a mutate_rx() block; bus kinds count per faulted write).
  [[nodiscard]] std::uint64_t injected(FaultKind kind) const noexcept {
    return injected_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] std::uint64_t injected_total() const noexcept;
  [[nodiscard]] std::uint64_t bus_writes_seen() const noexcept {
    return write_index_;
  }

 private:
  FaultPlan plan_;
  std::array<std::uint64_t, kNumFaultKinds> injected_{};
  std::uint64_t write_index_ = 0;
};

}  // namespace rjf::fault
