// Jamming transmit controller (paper §2.4).
//
// On a trigger from the TriggerFsm the controller (optionally after a
// programmable delay used for "surgical" jamming of specific packet
// locations) schedules the TX pipeline: 1 cycle to initiate plus ~7 cycles
// to populate the DUC — 8 clock cycles (~80 ns) before RF energy leaves the
// antenna. It then emits one of three user-selectable waveforms for the
// programmed uptime:
//   (i)  pseudorandom 25 MHz white Gaussian noise,
//   (ii) repetitive replay of up to the 512 most recently received samples,
//   (iii) the waveform currently streamed to the TX buffer from the host.
// Uptime ranges from 1 sample (40 ns) to 2^32 samples.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "dsp/types.h"
#include "fpga/hw_int.h"
#include "fpga/register_file.h"

namespace rjf::fpga {

inline constexpr std::size_t kReplayDepth = 512;
// The replay ring is indexed with a power-of-two mask, not `%`.
static_assert(std::has_single_bit(kReplayDepth));
inline constexpr std::size_t kReplayMask = kReplayDepth - 1;
inline constexpr std::uint32_t kTxInitCycles = 8;  // 1 trigger + 7 DUC fill
inline constexpr std::uint32_t kClocksPerSample = 4;  // 100 MHz / 25 MSPS

class JammerController {
 public:
  JammerController();

  void load_from_registers(const RegisterFile& regs) noexcept;

  /// Direct configuration (tests/ablations).
  void configure(JamWaveform waveform, bool enable,
                 std::uint32_t delay_samples, std::uint32_t uptime_samples) noexcept;

  /// Replace the host-streamed TX buffer (waveform (iii)).
  void set_host_waveform(std::vector<dsp::IQ16> samples);

  /// Record one received sample into the replay ring (runs continuously).
  void record_rx(dsp::IQ16 sample) noexcept;

  struct TxOut {
    bool rf_active = false;     // true while jamming energy is on the air
    dsp::IQ16 sample{};         // valid when rf_active and sample_strobe
    bool sample_strobe = false; // true on the clock a new TX sample is issued
  };

  /// Advance one 100 MHz clock. `trigger` is the FSM's jam pulse.
  TxOut clock(bool trigger) noexcept;

  /// Advance `samples` baseband sample periods without per-clock work,
  /// resolving delay/init/uptime countdowns arithmetically. Used by the
  /// network simulation to skip idle air time; exact w.r.t. jam scheduling.
  void fast_forward(std::uint64_t samples) noexcept;

  /// True while jamming energy is on the air.
  [[nodiscard]] bool rf_active() const noexcept {
    return state_ == State::kJamming;
  }

  [[nodiscard]] bool busy() const noexcept { return state_ != State::kIdle; }
  [[nodiscard]] std::uint64_t jam_count() const noexcept { return jam_count_; }
  [[nodiscard]] std::uint64_t cycles_jamming() const noexcept {
    return cycles_jamming_;
  }

  void reset() noexcept;

 private:
  enum class State { kIdle, kDelay, kInit, kJamming };

  [[nodiscard]] dsp::IQ16 next_waveform_sample() noexcept;

  State state_ = State::kIdle;
  JamWaveform waveform_ = JamWaveform::kWhiteNoise;
  bool enabled_ = false;
  hw::UInt<16> delay_samples_;   // the kJammerControl field is bits[31:16]
  hw::UInt<32> uptime_samples_;

  // kDelay / kInit phase timer: at most delay * 4 clocks, so 18 bits, plus
  // one for the kTxInitCycles reload path.
  hw::UInt<19> countdown_cycles_;
  hw::UInt<32> remaining_samples_;  // kJamming phase sample counter
  // 100 MHz clock / 25 MSPS strobe divider: a free-running 2-bit counter
  // whose wrap IS the mod-4 divide.
  static_assert(kClocksPerSample == 4);
  hw::UInt<2> strobe_phase_;

  std::array<dsp::IQ16, kReplayDepth> replay_{};
  std::size_t replay_write_ = 0;
  std::size_t playback_pos_ = 0;
  std::vector<dsp::IQ16> host_waveform_;

  // On-fabric noise generator: 32-bit Galois LFSR feeding a CLT shaper.
  hw::UInt<32> lfsr_{0xACE1ACE1u};
  [[nodiscard]] std::int16_t lfsr_gaussian() noexcept;

  std::uint64_t jam_count_ = 0;
  std::uint64_t cycles_jamming_ = 0;
};

}  // namespace rjf::fpga
