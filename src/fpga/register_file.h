// Model of the UHD user-register bus exposed to host applications.
//
// The paper's core is controlled through the UHD "user register" interface:
// a 32-bit data bus plus an 8-bit address bus, giving up to 255 programmable
// 32-bit registers; the design uses 24 of them (paper §2.2). This file
// defines that exact register map and a RegisterFile the host writes
// through (see radio/settings_bus.h for the latency model of the write path).
#pragma once

#include <array>
#include <cstdint>

namespace rjf::fpga {

/// Register map of the custom DSP core. 24 registers, mirroring the paper:
/// run-time loadable cross-correlator coefficients, detection thresholds,
/// jammer settings, and antenna control.
enum class Reg : std::uint8_t {
  // 64 3-bit signed I coefficients packed 8-per-register (4-bit fields).
  kXcorrCoefI0 = 0,
  kXcorrCoefI1,
  kXcorrCoefI2,
  kXcorrCoefI3,
  kXcorrCoefI4,
  kXcorrCoefI5,
  kXcorrCoefI6,
  kXcorrCoefI7,
  // 64 3-bit signed Q coefficients, same packing.
  kXcorrCoefQ0 = 8,
  kXcorrCoefQ1,
  kXcorrCoefQ2,
  kXcorrCoefQ3,
  kXcorrCoefQ4,
  kXcorrCoefQ5,
  kXcorrCoefQ6,
  kXcorrCoefQ7,
  kXcorrThreshold = 16,   // unsigned correlation-magnitude^2 threshold
  kEnergyThreshHigh = 17, // Q8.8 linear ratio for energy-rise detection
  kEnergyThreshLow = 18,  // Q8.8 linear ratio for energy-fall detection
  kEnergyFloor = 19,      // minimum 32-sample energy sum to arm the detector
  kTriggerConfig = 20,    // 3-stage FSM: 3x4-bit event masks + enables
  kTriggerWindow = 21,    // max clock cycles for the full trigger sequence
  kJammerControl = 22,    // bits[1:0] waveform, bit2 enable, bits[31:16] delay
  kJamDuration = 23,      // jam uptime in baseband samples (40 ns units)
};

inline constexpr std::size_t kNumUserRegisters = 24;

/// Trigger event bit positions inside each kTriggerConfig 4-bit mask.
enum TriggerEventBit : std::uint32_t {
  kEventXcorr = 1u << 0,
  kEventEnergyHigh = 1u << 1,
  kEventEnergyLow = 1u << 2,
};

/// Jamming waveform selector values (paper §2.4).
enum class JamWaveform : std::uint32_t {
  kWhiteNoise = 0,   // pseudorandom 25 MHz WGN
  kReplay = 1,       // repetitive replay of up to 512 recent RX samples
  kHostStream = 2,   // waveform streamed to the TX buffer from host
};

/// Simple dual-port register file: host writes, fabric reads every cycle.
class RegisterFile {
 public:
  RegisterFile() noexcept { regs_.fill(0); }

  void write(Reg addr, std::uint32_t value) noexcept {
    regs_[static_cast<std::size_t>(addr)] = value;
  }
  [[nodiscard]] std::uint32_t read(Reg addr) const noexcept {
    return regs_[static_cast<std::size_t>(addr)];
  }

  // -- Packed coefficient helpers ------------------------------------------
  /// Pack one 3-bit signed coefficient (clamped to [-4, 3]) into its register.
  void set_coefficient(bool q_bank, std::size_t index, int value) noexcept;
  [[nodiscard]] int coefficient(bool q_bank, std::size_t index) const noexcept;

  // -- Field helpers for the composite registers ---------------------------
  void set_jammer(JamWaveform waveform, bool enable,
                  std::uint16_t delay_samples) noexcept;
  [[nodiscard]] JamWaveform jam_waveform() const noexcept;
  [[nodiscard]] bool jam_enabled() const noexcept;
  [[nodiscard]] std::uint16_t jam_delay_samples() const noexcept;

  /// Configure the 3-stage trigger FSM. Unused stages take mask 0.
  void set_trigger_stages(std::uint32_t mask0, std::uint32_t mask1,
                          std::uint32_t mask2) noexcept;
  [[nodiscard]] std::uint32_t trigger_stage_mask(int stage) const noexcept;
  [[nodiscard]] int num_trigger_stages() const noexcept;

 private:
  std::array<std::uint32_t, kNumUserRegisters> regs_{};
};

// The dB <-> Q8.8 threshold conversions live on the host side of the
// register bus: core/fabric_units.h. The fabric only ever sees the fixed
// point encoding.

}  // namespace rjf::fpga
