#include "fpga/trigger_fsm.h"

namespace rjf::fpga {

void TriggerFsm::load_from_registers(const RegisterFile& regs) noexcept {
  configure(regs.trigger_stage_mask(0), regs.trigger_stage_mask(1),
            regs.trigger_stage_mask(2), regs.read(Reg::kTriggerWindow));
}

void TriggerFsm::configure(std::uint32_t mask0, std::uint32_t mask1,
                           std::uint32_t mask2,
                           std::uint32_t window_cycles) noexcept {
  masks_[0] = hw::wrap_u<4>(mask0);
  masks_[1] = hw::wrap_u<4>(mask1);
  masks_[2] = hw::wrap_u<4>(mask2);
  window_cycles_ = hw::UInt<32>(window_cycles);
  num_stages_ = 0;
  for (int s = 0; s < 3; ++s)
    if (masks_[s] != 0) num_stages_ = s + 1;
  reset();
}

bool TriggerFsm::clock(const DetectorEvents& events) noexcept {
  if (num_stages_ == 0) return false;

  const hw::UInt<4> asserted = hw::wrap_u<4>(events.as_mask());
  // Window timeout: abandon a partially-matched sequence and rearm — unless
  // a masked event for the pending stage is asserted on this same clock. In
  // the RTL the stage-advance and expiry comparisons are evaluated on the
  // same edge and the advance path wins, so a match landing on the expiry
  // tick still completes (see the header's window-semantics note).
  if (stage_ > 0) {
    elapsed_ = hw::wrap_inc(elapsed_);
    if (window_cycles_ > 0 && elapsed_ > window_cycles_ &&
        (asserted & masks_[stage_]) == 0)
      reset();
  }
  // A stage whose mask is 0 in the middle of the sequence can never fire;
  // configure() guarantees contiguous stages by construction of num_stages_.
  if ((asserted & masks_[stage_]) == 0) return false;

  if (stage_ + 1 >= num_stages_) {
    reset();
    return true;  // final stage matched -> jam trigger pulse
  }
  ++stage_;
  if (stage_ == 1) elapsed_ = hw::UInt<32>();
  return false;
}

void TriggerFsm::reset() noexcept {
  stage_ = 0;
  elapsed_ = hw::UInt<32>();
}

}  // namespace rjf::fpga
