#include "fpga/trigger_fsm.h"

namespace rjf::fpga {

void TriggerFsm::load_from_registers(const RegisterFile& regs) noexcept {
  configure(regs.trigger_stage_mask(0), regs.trigger_stage_mask(1),
            regs.trigger_stage_mask(2), regs.read(Reg::kTriggerWindow));
}

void TriggerFsm::configure(std::uint32_t mask0, std::uint32_t mask1,
                           std::uint32_t mask2,
                           std::uint32_t window_cycles) noexcept {
  masks_[0] = mask0 & 0xFu;
  masks_[1] = mask1 & 0xFu;
  masks_[2] = mask2 & 0xFu;
  window_cycles_ = window_cycles;
  num_stages_ = 0;
  for (int s = 0; s < 3; ++s)
    if (masks_[s] != 0) num_stages_ = s + 1;
  reset();
}

bool TriggerFsm::clock(const DetectorEvents& events) noexcept {
  if (num_stages_ == 0) return false;

  // Window timeout: abandon a partially-matched sequence and rearm.
  if (stage_ > 0) {
    ++elapsed_;
    if (window_cycles_ != 0 && elapsed_ > window_cycles_) reset();
  }

  const std::uint32_t asserted = events.as_mask();
  // A stage whose mask is 0 in the middle of the sequence can never fire;
  // configure() guarantees contiguous stages by construction of num_stages_.
  if ((asserted & masks_[stage_]) == 0) return false;

  if (stage_ + 1 >= num_stages_) {
    reset();
    return true;  // final stage matched -> jam trigger pulse
  }
  ++stage_;
  if (stage_ == 1) elapsed_ = 0;
  return false;
}

void TriggerFsm::reset() noexcept {
  stage_ = 0;
  elapsed_ = 0;
}

}  // namespace rjf::fpga
