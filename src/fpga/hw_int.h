// Bit-width-checked hardware integer types for the cycle-accurate fabric
// model.
//
// The paper's custom DSP core is a fixed-point System Generator datapath:
// 1-bit sign slices, 3-bit correlator coefficients, Q8.8 energy thresholds,
// a squared-magnitude metric compared against a 32-bit threshold register.
// Every one of those width decisions is load-bearing — RTL wraps, truncates
// and saturates exactly where the designer said so, never implicitly. This
// header makes the same contracts machine-checked in the C++ model:
//
//   UInt<W> / Int<W>   value types that hold exactly W bits (W in 1..64);
//                      trivially copyable, zero storage overhead beyond the
//                      smallest standard integer that fits W.
//
//   widening ops       a + b and a * b return the exact full-width result
//                      type (max(A,B)+1 and A+B bits, static_asserted to
//                      fit 64), so intermediate overflow is impossible by
//                      construction — the compiler rejects any expression
//                      whose true width exceeds the model's word size.
//
//   explicit narrowing a value only gets narrower through one of four
//                      spelled-out RTL conversions:
//                        wrap<W2>()     keep low W2 bits, any W2 (the RTL
//                                       register assignment / mod-2^W2)
//                        truncate<W2>() keep low W2 bits, W2 <= W only
//                                       (a declared lossy bit-drop)
//                        sat<W2>()      clamp into the W2 range
//                        narrow<W2>()   value-preserving narrowing; debug
//                                       builds assert the value fits, the
//                                       RTL analogue is a truncate the
//                                       designer proved lossless
//                      There are no implicit conversions in or out.
//
//   debug range checks construction from a raw integer asserts the value is
//                      representable when NDEBUG is not defined; release
//                      builds compile every operation down to plain 64-bit
//                      integer arithmetic (the <5% BM_DspCoreRunBlock bench
//                      gate in CI enforces the zero-overhead claim).
//
// Raw arithmetic casts (static_cast between integer types) inside the
// fabric model are confined to this header — tools/fabric_lint.py fails the
// build on any that appear elsewhere in src/fpga.
#pragma once

#include <bit>
#include <cassert>
#include <concepts>
#include <cstdint>
#include <type_traits>
#include <utility>

namespace rjf::fpga::hw {

// Range checks ride on assert(): active in Debug builds (and any build that
// defines RJF_HW_INT_FORCE_CHECKS), compiled out under NDEBUG.
#if defined(RJF_HW_INT_FORCE_CHECKS) && defined(NDEBUG)
#error "RJF_HW_INT_FORCE_CHECKS requires a build with assert() enabled"
#endif
#define RJF_HW_ASSERT(cond) assert(cond)

namespace detail {

template <int W>
using uint_storage_t =
    std::conditional_t<(W <= 8), std::uint8_t,
                       std::conditional_t<(W <= 16), std::uint16_t,
                                          std::conditional_t<(W <= 32), std::uint32_t,
                                                             std::uint64_t>>>;

template <int W>
using int_storage_t =
    std::conditional_t<(W <= 8), std::int8_t,
                       std::conditional_t<(W <= 16), std::int16_t,
                                          std::conditional_t<(W <= 32), std::int32_t,
                                                             std::int64_t>>>;

[[nodiscard]] constexpr std::uint64_t mask_bits(int w) noexcept {
  return w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w) - 1u);
}

// Number of bits needed to hold the count of set bits in a W-bit word
// (e.g. W=64 -> counts 0..64 -> 7 bits).
[[nodiscard]] constexpr int popcount_width(int w) noexcept {
  int bits = 0;
  while ((1 << bits) <= w) ++bits;
  return bits;
}

}  // namespace detail

template <int W>
class Int;

/// Unsigned hardware integer holding exactly W bits, W in 1..64.
template <int W>
class UInt {
  static_assert(W >= 1 && W <= 64, "hardware integers are 1..64 bits wide");

 public:
  using storage_type = detail::uint_storage_t<W>;
  static constexpr int kWidth = W;
  static constexpr std::uint64_t kMax = detail::mask_bits(W);

  constexpr UInt() noexcept = default;

  /// Explicit construction from a raw integer. Debug builds assert the
  /// value is representable in W bits; release builds keep the low bits.
  template <std::integral T>
  explicit constexpr UInt(T v) noexcept
      : v_(static_cast<storage_type>(static_cast<std::uint64_t>(v) & kMax)) {
    RJF_HW_ASSERT(std::cmp_greater_equal(v, 0) &&
                  std::cmp_less_equal(v, kMax));
  }

  [[nodiscard]] constexpr storage_type value() const noexcept { return v_; }
  [[nodiscard]] constexpr std::uint64_t u64() const noexcept { return v_; }

  // -- RTL conversions ------------------------------------------------------
  /// Keep the low W2 bits (register assignment / mod-2^W2). Any W2.
  template <int W2>
  [[nodiscard]] constexpr UInt<W2> wrap() const noexcept {
    return UInt<W2>::from_raw_bits(u64());
  }
  /// Declared lossy bit-drop; only narrowing is allowed.
  template <int W2>
  [[nodiscard]] constexpr UInt<W2> truncate() const noexcept {
    static_assert(W2 <= W, "truncate<W2>() must narrow; use zext() to widen");
    return UInt<W2>::from_raw_bits(u64());
  }
  /// Clamp into the W2 range.
  template <int W2>
  [[nodiscard]] constexpr UInt<W2> sat() const noexcept {
    return u64() > UInt<W2>::kMax ? UInt<W2>::from_raw_bits(UInt<W2>::kMax)
                                  : UInt<W2>::from_raw_bits(u64());
  }
  /// Value-preserving narrowing: debug builds assert the value fits.
  template <int W2>
  [[nodiscard]] constexpr UInt<W2> narrow() const noexcept {
    static_assert(W2 <= W, "narrow<W2>() must narrow; use zext() to widen");
    RJF_HW_ASSERT(u64() <= UInt<W2>::kMax);
    return UInt<W2>::from_raw_bits(u64());
  }
  /// Zero-extend to W2 >= W bits.
  template <int W2>
  [[nodiscard]] constexpr UInt<W2> zext() const noexcept {
    static_assert(W2 >= W, "zext<W2>() must widen; use a narrowing op");
    return UInt<W2>::from_raw_bits(u64());
  }
  /// Exact conversion to the signed domain (one extra bit for the sign).
  [[nodiscard]] constexpr Int<W + 1> to_signed() const noexcept {
    static_assert(W < 64, "UInt<64> has no 65-bit signed container");
    return Int<W + 1>::from_raw_value(static_cast<std::int64_t>(u64()));
  }

  // -- Static shifts (width-tracked, like RTL wiring) -----------------------
  template <int S>
  [[nodiscard]] constexpr UInt<W + S> shl() const noexcept {
    static_assert(S >= 0 && W + S <= 64, "left shift exceeds 64 bits");
    return UInt<W + S>::from_raw_bits(u64() << S);
  }
  template <int S>
  [[nodiscard]] constexpr UInt<(W - S > 1 ? W - S : 1)> shr() const noexcept {
    static_assert(S >= 0 && S < W, "right shift discards every bit");
    return UInt<(W - S > 1 ? W - S : 1)>::from_raw_bits(u64() >> S);
  }

  // -- Same-width bitwise logic --------------------------------------------
  friend constexpr UInt operator&(UInt a, UInt b) noexcept {
    return from_raw_bits(a.u64() & b.u64());
  }
  friend constexpr UInt operator|(UInt a, UInt b) noexcept {
    return from_raw_bits(a.u64() | b.u64());
  }
  friend constexpr UInt operator^(UInt a, UInt b) noexcept {
    return from_raw_bits(a.u64() ^ b.u64());
  }
  friend constexpr UInt operator~(UInt a) noexcept {
    return from_raw_bits(~a.u64());
  }

  /// Trusted constructor for values already reduced to W bits. Used by the
  /// conversion/arithmetic machinery; masks, never checks.
  [[nodiscard]] static constexpr UInt from_raw_bits(std::uint64_t bits) noexcept {
    UInt out;
    out.v_ = static_cast<storage_type>(bits & kMax);
    return out;
  }

 private:
  storage_type v_ = 0;
};

/// Signed (two's-complement) hardware integer holding exactly W bits.
/// Int<3> is the paper's coefficient type: range -4..3.
template <int W>
class Int {
  static_assert(W >= 1 && W <= 64, "hardware integers are 1..64 bits wide");

 public:
  using storage_type = detail::int_storage_t<W>;
  static constexpr int kWidth = W;
  static constexpr std::int64_t kMax =
      W >= 64 ? std::int64_t{0x7FFFFFFFFFFFFFFF}
              : static_cast<std::int64_t>((std::uint64_t{1} << (W - 1)) - 1u);
  static constexpr std::int64_t kMin = -kMax - 1;

  constexpr Int() noexcept = default;

  template <std::integral T>
  explicit constexpr Int(T v) noexcept
      : v_(static_cast<storage_type>(reduce(static_cast<std::int64_t>(v)))) {
    RJF_HW_ASSERT(std::cmp_greater_equal(v, kMin) &&
                  std::cmp_less_equal(v, kMax));
  }

  [[nodiscard]] constexpr storage_type value() const noexcept { return v_; }
  [[nodiscard]] constexpr std::int64_t i64() const noexcept { return v_; }

  // -- RTL conversions ------------------------------------------------------
  /// Keep the low W2 bits, reinterpreted as W2-bit two's complement.
  template <int W2>
  [[nodiscard]] constexpr Int<W2> wrap() const noexcept {
    return Int<W2>::from_raw_value(Int<W2>::reduce(i64()));
  }
  /// Declared lossy bit-drop (low W2 bits, sign from bit W2-1); W2 <= W.
  template <int W2>
  [[nodiscard]] constexpr Int<W2> truncate() const noexcept {
    static_assert(W2 <= W, "truncate<W2>() must narrow; use sext() to widen");
    return Int<W2>::from_raw_value(Int<W2>::reduce(i64()));
  }
  /// Clamp into the W2 range.
  template <int W2>
  [[nodiscard]] constexpr Int<W2> sat() const noexcept {
    const std::int64_t v = i64();
    return Int<W2>::from_raw_value(v < Int<W2>::kMin   ? Int<W2>::kMin
                                   : v > Int<W2>::kMax ? Int<W2>::kMax
                                                       : v);
  }
  /// Value-preserving narrowing: debug builds assert the value fits.
  template <int W2>
  [[nodiscard]] constexpr Int<W2> narrow() const noexcept {
    static_assert(W2 <= W, "narrow<W2>() must narrow; use sext() to widen");
    RJF_HW_ASSERT(i64() >= Int<W2>::kMin && i64() <= Int<W2>::kMax);
    return Int<W2>::from_raw_value(i64());
  }
  /// Sign-extend to W2 >= W bits.
  template <int W2>
  [[nodiscard]] constexpr Int<W2> sext() const noexcept {
    static_assert(W2 >= W, "sext<W2>() must widen; use a narrowing op");
    return Int<W2>::from_raw_value(i64());
  }
  /// Checked conversion to the unsigned domain: debug builds assert the
  /// value is non-negative (a non-negative Int<W> always fits UInt<W>).
  [[nodiscard]] constexpr UInt<W> to_unsigned() const noexcept {
    RJF_HW_ASSERT(i64() >= 0);
    return UInt<W>::from_raw_bits(static_cast<std::uint64_t>(i64()));
  }
  /// |v| as an unsigned value; exact even for kMin (2^(W-1) fits W bits).
  [[nodiscard]] constexpr UInt<W> abs() const noexcept {
    const std::int64_t v = i64();
    return UInt<W>::from_raw_bits(
        v < 0 ? std::uint64_t{0} - static_cast<std::uint64_t>(v)
              : static_cast<std::uint64_t>(v));
  }

  // -- Static shifts --------------------------------------------------------
  template <int S>
  [[nodiscard]] constexpr Int<W + S> shl() const noexcept {
    static_assert(S >= 0 && W + S <= 64, "left shift exceeds 64 bits");
    return Int<W + S>::from_raw_value(i64() * (std::int64_t{1} << S));
  }

  /// Trusted constructor for values already known to be in range.
  [[nodiscard]] static constexpr Int from_raw_value(std::int64_t v) noexcept {
    Int out;
    out.v_ = static_cast<storage_type>(v);
    return out;
  }

  /// Two's-complement reduction of an arbitrary value into the W-bit range.
  [[nodiscard]] static constexpr std::int64_t reduce(std::int64_t v) noexcept {
    const std::uint64_t low = static_cast<std::uint64_t>(v) & detail::mask_bits(W);
    const std::uint64_t sign_bit = std::uint64_t{1} << (W - 1);
    if (W < 64 && (low & sign_bit) != 0u)
      return static_cast<std::int64_t>(low) -
             static_cast<std::int64_t>(sign_bit << 1);
    return static_cast<std::int64_t>(low);
  }

 private:
  storage_type v_ = 0;
};

// ---------------------------------------------------------------------------
// Comparisons: any width pair of the same signedness compares by value;
// comparisons against raw integers use the sign-safe std::cmp_* helpers.

template <int A, int B>
[[nodiscard]] constexpr bool operator==(UInt<A> a, UInt<B> b) noexcept {
  return a.u64() == b.u64();
}
template <int A, int B>
[[nodiscard]] constexpr auto operator<=>(UInt<A> a, UInt<B> b) noexcept {
  return a.u64() <=> b.u64();
}
template <int A, int B>
[[nodiscard]] constexpr bool operator==(Int<A> a, Int<B> b) noexcept {
  return a.i64() == b.i64();
}
template <int A, int B>
[[nodiscard]] constexpr auto operator<=>(Int<A> a, Int<B> b) noexcept {
  return a.i64() <=> b.i64();
}
template <int A, std::integral T>
[[nodiscard]] constexpr bool operator==(UInt<A> a, T b) noexcept {
  return std::cmp_equal(a.u64(), b);
}
template <int A, std::integral T>
[[nodiscard]] constexpr bool operator<(UInt<A> a, T b) noexcept {
  return std::cmp_less(a.u64(), b);
}
template <int A, std::integral T>
[[nodiscard]] constexpr bool operator>(UInt<A> a, T b) noexcept {
  return std::cmp_greater(a.u64(), b);
}
template <int A, std::integral T>
[[nodiscard]] constexpr bool operator==(Int<A> a, T b) noexcept {
  return std::cmp_equal(a.i64(), b);
}
template <int A, std::integral T>
[[nodiscard]] constexpr bool operator<(Int<A> a, T b) noexcept {
  return std::cmp_less(a.i64(), b);
}
template <int A, std::integral T>
[[nodiscard]] constexpr bool operator>(Int<A> a, T b) noexcept {
  return std::cmp_greater(a.i64(), b);
}

// ---------------------------------------------------------------------------
// Widening arithmetic: results carry the exact full-width type, so they can
// never overflow — and any expression whose true width would exceed 64 bits
// is a compile error at the operator, not a runtime surprise.

namespace detail {
constexpr int add_width(int a, int b) { return (a > b ? a : b) + 1; }
}  // namespace detail

template <int A, int B>
[[nodiscard]] constexpr UInt<detail::add_width(A, B)> operator+(
    UInt<A> a, UInt<B> b) noexcept {
  static_assert(detail::add_width(A, B) <= 64,
                "sum width exceeds 64 bits; wrap/truncate an operand first");
  return UInt<detail::add_width(A, B)>::from_raw_bits(a.u64() + b.u64());
}

/// Unsigned subtraction can go negative in value terms, so it lands in the
/// signed domain at full width, like an RTL subtractor's sign-extended out.
template <int A, int B>
[[nodiscard]] constexpr Int<detail::add_width(A, B)> operator-(
    UInt<A> a, UInt<B> b) noexcept {
  static_assert(detail::add_width(A, B) <= 64,
                "difference width exceeds 64 bits");
  return Int<detail::add_width(A, B)>::from_raw_value(
      static_cast<std::int64_t>(a.u64()) - static_cast<std::int64_t>(b.u64()));
}

template <int A, int B>
[[nodiscard]] constexpr UInt<A + B> operator*(UInt<A> a, UInt<B> b) noexcept {
  static_assert(A + B <= 64,
                "product width exceeds 64 bits; use shifted_gt/mul_wide");
  return UInt<A + B>::from_raw_bits(a.u64() * b.u64());
}

template <int A, int B>
[[nodiscard]] constexpr Int<detail::add_width(A, B)> operator+(
    Int<A> a, Int<B> b) noexcept {
  static_assert(detail::add_width(A, B) <= 64,
                "sum width exceeds 64 bits; wrap/truncate an operand first");
  return Int<detail::add_width(A, B)>::from_raw_value(a.i64() + b.i64());
}

template <int A, int B>
[[nodiscard]] constexpr Int<detail::add_width(A, B)> operator-(
    Int<A> a, Int<B> b) noexcept {
  static_assert(detail::add_width(A, B) <= 64,
                "difference width exceeds 64 bits");
  return Int<detail::add_width(A, B)>::from_raw_value(a.i64() - b.i64());
}

/// Signed product needs exactly A+B bits (tight at kMin*kMin = +2^(A+B-2)).
template <int A, int B>
[[nodiscard]] constexpr Int<A + B> operator*(Int<A> a, Int<B> b) noexcept {
  static_assert(A + B <= 64,
                "product width exceeds 64 bits; use shifted_gt/mul_wide");
  return Int<A + B>::from_raw_value(a.i64() * b.i64());
}

template <int A>
[[nodiscard]] constexpr Int<A + 1> operator-(Int<A> a) noexcept {
  static_assert(A + 1 <= 64, "negation width exceeds 64 bits");
  return Int<A + 1>::from_raw_value(-a.i64());
}

// ---------------------------------------------------------------------------
// Free conversion helpers for raw integers and cross-signedness wraps.

/// Mask an arbitrary integer (or hardware integer) into W unsigned bits.
template <int W, std::integral T>
[[nodiscard]] constexpr UInt<W> wrap_u(T raw) noexcept {
  return UInt<W>::from_raw_bits(static_cast<std::uint64_t>(raw));
}
template <int W, int A>
[[nodiscard]] constexpr UInt<W> wrap_u(UInt<A> v) noexcept {
  return UInt<W>::from_raw_bits(v.u64());
}
template <int W, int A>
[[nodiscard]] constexpr UInt<W> wrap_u(Int<A> v) noexcept {
  return UInt<W>::from_raw_bits(static_cast<std::uint64_t>(v.i64()));
}

/// Mask an arbitrary integer into W bits, reinterpreted as two's complement.
template <int W, std::integral T>
[[nodiscard]] constexpr Int<W> wrap_s(T raw) noexcept {
  return Int<W>::from_raw_value(Int<W>::reduce(static_cast<std::int64_t>(
      static_cast<std::uint64_t>(raw))));
}
template <int W, int A>
[[nodiscard]] constexpr Int<W> wrap_s(UInt<A> v) noexcept {
  return Int<W>::from_raw_value(Int<W>::reduce(static_cast<std::int64_t>(v.u64())));
}
template <int W, int A>
[[nodiscard]] constexpr Int<W> wrap_s(Int<A> v) noexcept {
  return v.template wrap<W>();
}

/// Clamp an arbitrary integer into the W-bit unsigned/signed range.
template <int W, std::integral T>
[[nodiscard]] constexpr UInt<W> sat_u(T raw) noexcept {
  if (std::cmp_less(raw, 0)) return UInt<W>::from_raw_bits(0);
  if (std::cmp_greater(raw, UInt<W>::kMax))
    return UInt<W>::from_raw_bits(UInt<W>::kMax);
  return UInt<W>::from_raw_bits(static_cast<std::uint64_t>(raw));
}
template <int W, std::integral T>
[[nodiscard]] constexpr Int<W> sat_s(T raw) noexcept {
  if (std::cmp_less(raw, Int<W>::kMin))
    return Int<W>::from_raw_value(Int<W>::kMin);
  if (std::cmp_greater(raw, Int<W>::kMax))
    return Int<W>::from_raw_value(Int<W>::kMax);
  return Int<W>::from_raw_value(static_cast<std::int64_t>(raw));
}

/// Encode an enum's underlying value as a W-bit hardware register field
/// (debug-asserts the enumerator actually fits the field).
template <int W, typename E>
  requires std::is_enum_v<E>
[[nodiscard]] constexpr UInt<W> from_enum(E e) noexcept {
  return UInt<W>(static_cast<std::underlying_type_t<E>>(e));
}

/// Decode a W-bit register field back into an enum value.
template <typename E, int W>
  requires std::is_enum_v<E>
[[nodiscard]] constexpr E to_enum(UInt<W> v) noexcept {
  return static_cast<E>(static_cast<std::underlying_type_t<E>>(v.u64()));
}

// ---------------------------------------------------------------------------
// RTL idioms used by the datapath blocks.

/// Set-bit count of a W-bit word, in the exact width that can hold it.
template <int W>
[[nodiscard]] constexpr UInt<detail::popcount_width(W)> popcount(
    UInt<W> v) noexcept {
  return UInt<detail::popcount_width(W)>::from_raw_bits(
      static_cast<std::uint64_t>(std::popcount(v.u64())));
}

/// RTL up/down counter update: wraps at the register width by definition.
template <int W>
[[nodiscard]] constexpr UInt<W> wrap_inc(UInt<W> v) noexcept {
  return UInt<W>::from_raw_bits(v.u64() + 1u);
}
template <int W>
[[nodiscard]] constexpr UInt<W> wrap_dec(UInt<W> v) noexcept {
  return UInt<W>::from_raw_bits(v.u64() - 1u);
}

/// Shift-register update: shift the word left one tap and insert `bit`; the
/// tap that ages out of the W-sample window falls off the top.
template <int W>
[[nodiscard]] constexpr UInt<W> shift_in(UInt<W> reg, bool bit) noexcept {
  return UInt<W>::from_raw_bits((reg.u64() << 1) | (bit ? 1u : 0u));
}

/// (lhs << Shift) > a * b, evaluated exactly in 128-bit arithmetic — for
/// threshold compares whose full-width intermediate exceeds 64 bits (the
/// RTL keeps such comparators in carry-save form rather than materialising
/// the product). This is the Q8.8 energy-threshold compare of paper Fig. 4.
template <int Shift, int A, int B, int C>
[[nodiscard]] constexpr bool shifted_gt(UInt<A> lhs, UInt<B> a,
                                        UInt<C> b) noexcept {
  static_assert(A + Shift <= 127 && B + C <= 127,
                "128-bit comparator width exceeded");
  return (static_cast<unsigned __int128>(lhs.u64()) << Shift) >
         static_cast<unsigned __int128>(a.u64()) * b.u64();
}

// The whole point of these types is that they cost nothing at runtime.
static_assert(sizeof(UInt<1>) == 1 && sizeof(UInt<8>) == 1);
static_assert(sizeof(UInt<16>) == 2 && sizeof(UInt<32>) == 4);
static_assert(sizeof(UInt<33>) == 8 && sizeof(UInt<64>) == 8);
static_assert(sizeof(Int<3>) == 1 && sizeof(Int<16>) == 2);
static_assert(std::is_trivially_copyable_v<UInt<48>> &&
              std::is_trivially_copyable_v<Int<48>>);
static_assert(std::is_standard_layout_v<UInt<14>> &&
              std::is_standard_layout_v<Int<14>>);

}  // namespace rjf::fpga::hw
