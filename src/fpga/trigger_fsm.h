// Three-stage jamming-event trigger state machine (paper §2.4).
//
// "A three-stage hardware state machine allows the user to select up to
// three trigger event combinations, all of which must occur within a
// user-assigned time interval."
//
// Each stage is a 4-bit mask over the detector outputs (xcorr, energy-high,
// energy-low). A stage fires when any masked event is asserted on the
// current clock. When the final configured stage fires within the window,
// the FSM emits a one-cycle jam trigger pulse and rearms.
//
// Window semantics: the window bounds the WHOLE sequence — `elapsed_`
// starts counting on the clock after stage 0 matches, and every later
// stage must match while `elapsed_ <= window_cycles`. The boundary is
// match-priority-over-timeout: a stage match asserted on the exact clock
// the window expires (`elapsed_ == window_cycles + 1`) still advances or
// fires, because the RTL evaluates the stage-advance path and the expiry
// comparison on the same edge and the advance wins; the timeout only
// rearms when no masked event is present on that clock. Since each such
// match consumes a stage, the sequence can overrun the window by at most
// num_stages - 1 consecutive matching clocks — it cannot be extended
// indefinitely. A window of 0 means unbounded.
#pragma once

#include <cstdint>

#include "fpga/hw_int.h"
#include "fpga/register_file.h"

namespace rjf::fpga {

struct DetectorEvents {
  bool xcorr = false;
  bool energy_high = false;
  bool energy_low = false;

  [[nodiscard]] std::uint32_t as_mask() const noexcept {
    return (xcorr ? kEventXcorr : 0u) | (energy_high ? kEventEnergyHigh : 0u) |
           (energy_low ? kEventEnergyLow : 0u);
  }
  [[nodiscard]] bool any() const noexcept {
    return xcorr || energy_high || energy_low;
  }
};

class TriggerFsm {
 public:
  void load_from_registers(const RegisterFile& regs) noexcept;

  /// Direct configuration. Stages with mask 0 are unused; window is in
  /// 100 MHz clock cycles and bounds the whole sequence.
  void configure(std::uint32_t mask0, std::uint32_t mask1, std::uint32_t mask2,
                 std::uint32_t window_cycles) noexcept;

  /// Advance one fabric clock. Returns true on the cycle the jam trigger fires.
  bool clock(const DetectorEvents& events) noexcept;

  [[nodiscard]] int stage() const noexcept { return stage_; }

  /// True while a partially-matched trigger sequence is pending. When not
  /// engaged, clock() with no asserted events is a provable no-op, which
  /// lets the block-processing fast path skip the call entirely.
  [[nodiscard]] bool engaged() const noexcept { return stage_ > 0; }

  void reset() noexcept;

 private:
  hw::UInt<4> masks_[3];     // one 4-bit event mask per stage
  hw::UInt<32> window_cycles_;
  int num_stages_ = 0;
  int stage_ = 0;
  hw::UInt<32> elapsed_;     // cycles since stage 0 fired
};

}  // namespace rjf::fpga
