#include "fpga/resource_model.h"

namespace rjf::fpga {

std::vector<ResourceUsage> block_resources() {
  return {
      // Paper Fig. 3 resource box.
      {"cross_correlator", 2613, 2647, 12, 2818, 0, 2},
      // Paper Fig. 4 resource box.
      {"energy_differentiator", 1262, 1313, 0, 2513, 0, 6},
      // Estimates for the blocks whose boxes the paper does not print,
      // sized from their register/arithmetic content.
      {"trigger_fsm", 96, 118, 0, 142, 0, 0},
      {"jammer_controller", 412, 486, 2, 655, 0, 0},
      {"register_file", 210, 772, 0, 388, 0, 0},
      {"timing_and_io", 148, 205, 0, 231, 0, 0},
  };
}

ResourceUsage total_resources() {
  ResourceUsage total;
  total.block = "total";
  for (const auto& r : block_resources()) {
    total.slices += r.slices;
    total.ffs += r.ffs;
    total.brams += r.brams;
    total.luts += r.luts;
    total.iobs += r.iobs;
    total.dsp48 += r.dsp48;
  }
  return total;
}

Utilisation utilisation(const DeviceCapacity& device) {
  const ResourceUsage t = total_resources();
  Utilisation u;
  u.slices_pct = 100.0 * t.slices / device.slices;  // fabric-lint: allow(float-in-datapath)
  u.ffs_pct = 100.0 * t.ffs / device.ffs;  // fabric-lint: allow(float-in-datapath)
  u.brams_pct = 100.0 * t.brams / device.brams;  // fabric-lint: allow(float-in-datapath)
  u.luts_pct = 100.0 * t.luts / device.luts;  // fabric-lint: allow(float-in-datapath)
  u.dsp48_pct = 100.0 * t.dsp48 / device.dsp48;  // fabric-lint: allow(float-in-datapath)
  return u;
}

}  // namespace rjf::fpga
