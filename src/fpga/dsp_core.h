// The custom DSP core nested inside the USRP N210 DDC chain (paper Figs. 1-2).
//
// Composes the four main functional blocks — cross-correlator, energy
// differentiator, jamming event builder (trigger FSM) and transmit
// controller — plus the smaller logic for timing (VITA time) and host
// feedback. The core is cycle-accurate: tick() advances one 100 MHz fabric
// clock, and a receive sample strobe arrives every 4th tick (25 MSPS),
// matching the paper's clock/sample-rate relationship that underlies all
// of its latency arithmetic.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dsp/types.h"
#include "fpga/cross_correlator.h"
#include "fpga/energy_differentiator.h"
#include "fpga/jammer_controller.h"
#include "fpga/register_file.h"
#include "fpga/trigger_fsm.h"
#include "obs/event_ring.h"
#include "obs/events.h"

namespace rjf::fpga {

// Host-facing rate constants (Hz). These parameterise latency arithmetic
// and resampling on the host side; the fabric itself only knows the 4:1
// clock-to-strobe ratio (kClocksPerSample).
inline constexpr double kFabricClockHz = 100e6;   // fabric-lint: allow(float-in-datapath)
inline constexpr double kBasebandRateHz = 25e6;   // fabric-lint: allow(float-in-datapath)

struct CoreOutput {
  bool rx_strobe = false;       // this tick consumed a baseband sample
  bool xcorr_trigger = false;
  bool energy_high = false;
  bool energy_low = false;
  bool jam_trigger = false;     // FSM fired this tick
  JammerController::TxOut tx;   // TX path output
  std::uint64_t vita_ticks = 0; // fabric clock count (VITA time, GPS locked)
};

/// Host-visible feedback flags and counters (the "Host Feedback
/// (Synchro Flags)" path in Fig. 1).
struct HostFeedback {
  std::uint64_t xcorr_detections = 0;
  std::uint64_t energy_high_detections = 0;
  std::uint64_t energy_low_detections = 0;
  std::uint64_t jam_triggers = 0;
  std::uint64_t last_trigger_vita = 0;
  std::uint64_t vita_ticks = 0;
};

class DspCore {
 public:
  DspCore();

  /// The host-side register file. Writes take effect at the next
  /// apply_registers() (the radio layer calls this after each settings-bus
  /// transaction completes, modelling the propagation latency).
  [[nodiscard]] RegisterFile& registers() noexcept { return regs_; }
  [[nodiscard]] const RegisterFile& registers() const noexcept { return regs_; }

  /// Latch all register values into the datapath blocks.
  void apply_registers() noexcept;

  /// Advance one fabric clock. `rx` must be present exactly on strobe ticks
  /// (every 4th tick); pass std::nullopt between strobes. Thin wrapper over
  /// the strobe/idle tick bodies that run_block() drives in bulk.
  CoreOutput tick(std::optional<dsp::IQ16> rx) noexcept;

  /// Block-processing fast path: feed `rx.size()` baseband samples
  /// (kClocksPerSample fabric clocks each) and write the per-tick outputs
  /// into `out`, which must hold rx.size() * kClocksPerSample entries.
  /// Bit-identical to calling tick(sample) + (kClocksPerSample-1) idle
  /// ticks per sample — trigger edges, VITA timestamps, TX samples and
  /// feedback counters all match — but hoists the strobe-phase arithmetic,
  /// std::optional plumbing and idle-datapath calls out of the inner loop.
  void run_block(std::span<const dsp::IQ16> rx,
                 std::span<CoreOutput> out) noexcept;

  /// Convenience: feed a block of baseband samples (4 ticks each) and
  /// collect the per-tick outputs. Keeps full cycle accuracy.
  std::vector<CoreOutput> process(std::span<const dsp::IQ16> rx);

  [[nodiscard]] const HostFeedback& feedback() const noexcept { return feedback_; }
  [[nodiscard]] JammerController& jammer() noexcept { return jammer_; }
  [[nodiscard]] const CrossCorrelator& correlator() const noexcept {
    return correlator_;
  }

  /// Skip `samples` baseband sample periods of idle air (network-sim
  /// optimisation): VITA time and the jammer's delay/uptime countdowns
  /// advance exactly; the detector pipelines are flushed, which is
  /// equivalent to them having refilled with idle-channel samples.
  void fast_forward(std::uint64_t samples) noexcept;

  /// Full reset (reprogramming the FPGA). Register contents survive.
  void reset() noexcept;

  /// Attach the telemetry event ring (nullptr detaches). Producers write
  /// fixed-size records into the ring on trigger edges, FSM transitions,
  /// jam bursts and sampled strobes; outputs stay bit-identical to an
  /// untraced run because the traced run_block() instantiation keeps the
  /// same straight-line compute path and only appends records behind the
  /// existing rare-event branches (the overhead contract; see DESIGN.md
  /// "Observability"). Inline-drain rings are drained at block boundaries.
  void set_ring(obs::EventRing* ring) noexcept { ring_ = ring; }
  [[nodiscard]] obs::EventRing* ring() const noexcept { return ring_; }

 private:
  /// Strobe-tick body: detectors + edge logic + FSM/jammer clocks.
  CoreOutput strobe_tick(dsp::IQ16 sample) noexcept;
  /// Idle-tick body: detectors hold; FSM window and jammer timers advance.
  CoreOutput idle_tick() noexcept;
  /// Shared tail of every tick: FSM, jam bookkeeping, TX path, VITA time.
  void finish_tick(CoreOutput& out) noexcept;
  /// Publish this tick's events/snapshot to the ring (ring_ != nullptr).
  /// Kept out of line and cold so the no-ring tick path stays inlinable.
#if defined(__GNUC__) || defined(__clang__)
  __attribute__((noinline, cold))
#endif
  void emit_tick(const CoreOutput& out) noexcept;
  /// The block loop, compiled twice: the kTraced instantiation interleaves
  /// ring emission behind the existing rare-event branches, the plain one
  /// is the untouched fast path. Both run the same datapath computations in
  /// the same order, which is what makes traced-vs-plain bit-identity hold
  /// by construction.
  template <bool kTraced>
  void run_block_body(std::span<const dsp::IQ16> rx,
                      std::span<CoreOutput> out) noexcept;

  RegisterFile regs_;
  CrossCorrelator correlator_;
  EnergyDifferentiator energy_;
  TriggerFsm fsm_;
  JammerController jammer_;
  HostFeedback feedback_;
  std::uint64_t vita_ticks_ = 0;  // 64-bit VITA clock count (GPS locked)
  // 100 MHz clock / 25 MSPS strobe divider; the 2-bit wrap is the mod-4.
  static_assert(kClocksPerSample == 4);
  hw::UInt<2> strobe_phase_;
  // Latched detector outputs: detectors update on sample strobes, but the
  // FSM samples them every clock, so levels are held between strobes.
  DetectorEvents held_events_;
  bool prev_xcorr_ = false;
  bool prev_high_ = false;
  bool prev_low_ = false;

  // Telemetry tap. The probe_* mirrors are only written while a ring is
  // attached; they exist because the strobe-tick locals (metric, energy
  // sum) are consumed before the FSM/TX state the snapshot also needs.
  obs::EventRing* ring_ = nullptr;
  std::uint32_t probe_xcorr_metric_ = 0;
  std::uint64_t probe_energy_sum_ = 0;
  dsp::IQ16 probe_rx_{};
  dsp::IQ16 probe_tx_{};
  bool prev_rf_ = false;
  int prev_stage_ = 0;
};

}  // namespace rjf::fpga
