#include "fpga/cross_correlator.h"

namespace rjf::fpga {

CrossCorrelator::CrossCorrelator() noexcept {
  sign_i_.fill(hw::Int<2>(1));
  sign_q_.fill(hw::Int<2>(1));
}

void CrossCorrelator::load_from_registers(const RegisterFile& regs) noexcept {
  for (std::size_t k = 0; k < kCorrelatorLength; ++k) {
    // RegisterFile::coefficient() decodes to the 3-bit signed range by
    // contract; the checked constructor enforces it in debug builds.
    coef_i_[k] = Coef(regs.coefficient(false, k));
    coef_q_[k] = Coef(regs.coefficient(true, k));
  }
  threshold_ = regs.read(Reg::kXcorrThreshold);
  rebuild_derived();
}

void CrossCorrelator::set_coefficients(std::span<const int> coef_i,
                                       std::span<const int> coef_q) noexcept {
  for (std::size_t k = 0; k < kCorrelatorLength; ++k) {
    coef_i_[k] = hw::sat_s<3>(k < coef_i.size() ? coef_i[k] : 0);
    coef_q_[k] = hw::sat_s<3>(k < coef_q.size() ? coef_q[k] : 0);
  }
  rebuild_derived();
}

void CrossCorrelator::rebuild_derived() noexcept {
  planes_i_ = BitPlanes{};
  planes_q_ = BitPlanes{};
  hw::UInt<10> peak;  // sum of |ci| + |cq| over 64 taps, at most 512
  for (std::size_t k = 0; k < kCorrelatorLength; ++k) {
    // Coefficient k aligns with the sample that is (kCorrelatorLength-1-k)
    // strobes old, i.e. bit (kCorrelatorLength-1-k) of the sign words.
    const SignHistory bit(std::uint64_t{1} << (kCorrelatorLength - 1 - k));
    const hw::UInt<3> ci = hw::wrap_u<3>(coef_i_[k]);  // two's-complement bits
    const hw::UInt<3> cq = hw::wrap_u<3>(coef_q_[k]);
    if ((ci.u64() & 1u) != 0) planes_i_.b0 = planes_i_.b0 | bit;
    if ((ci.u64() & 2u) != 0) planes_i_.b1 = planes_i_.b1 | bit;
    if ((ci.u64() & 4u) != 0) planes_i_.b2 = planes_i_.b2 | bit;
    if ((cq.u64() & 1u) != 0) planes_q_.b0 = planes_q_.b0 | bit;
    if ((cq.u64() & 2u) != 0) planes_q_.b1 = planes_q_.b1 | bit;
    if ((cq.u64() & 4u) != 0) planes_q_.b2 = planes_q_.b2 | bit;
    planes_i_.coef_sum = (planes_i_.coef_sum + coef_i_[k]).narrow<9>();
    planes_q_.coef_sum = (planes_q_.coef_sum + coef_q_[k]).narrow<9>();
    // If every sign pair aligns with the template phase, both rails
    // contribute their magnitudes fully to the real accumulator.
    peak = (peak + coef_i_[k].abs() + coef_q_[k].abs()).narrow<10>();
  }
  max_metric_ = (peak * peak).zext<32>().value();
}

CrossCorrelator::Output CrossCorrelator::step_reference(
    dsp::IQ16 sample) noexcept {
  // MSB slice: 1-bit signed representation of each rail (Fig. 3).
  sign_i_[pos_] = hw::Int<2>(sample.i < 0 ? -1 : 1);
  sign_q_[pos_] = hw::Int<2>(sample.q < 0 ? -1 : 1);
  pos_ = (pos_ + 1) & kCorrelatorMask;

  // Correlate the last 64 sign pairs against the template. Coefficient
  // index 0 corresponds to the oldest sample in the window, matching how
  // the preamble template streams through the shift register. Each tap term
  // is sign*coef in Int<5>; the running rails stay within +/-512, held in
  // Int<12> with a checked narrow per tap.
  hw::Int<12> re;
  hw::Int<12> im;
  std::size_t idx = pos_;  // oldest sample in the circular buffers
  for (std::size_t k = 0; k < kCorrelatorLength; ++k) {
    const hw::Int<2> si = sign_i_[idx];
    const hw::Int<2> sq = sign_q_[idx];
    // s * conj(c): re = si*ci + sq*cq, im = sq*ci - si*cq
    re = (re + si * coef_i_[k] + sq * coef_q_[k]).narrow<12>();
    im = (im + sq * coef_i_[k] - si * coef_q_[k]).narrow<12>();
    idx = (idx + 1) & kCorrelatorMask;
  }
  Output out;
  out.metric = hw::wrap_u<32>(re * re + im * im).value();
  out.trigger = out.metric > threshold_;
  return out;
}

void CrossCorrelator::reset() noexcept {
  sign_i_.fill(hw::Int<2>(1));
  sign_q_.fill(hw::Int<2>(1));
  pos_ = 0;
  neg_i_ = SignHistory();
  neg_q_ = SignHistory();
}

void program_template(RegisterFile& regs, const CorrelatorTemplate& tpl) noexcept {
  for (std::size_t k = 0; k < kCorrelatorLength; ++k) {
    regs.set_coefficient(false, k, tpl.coef_i[k]);
    regs.set_coefficient(true, k, tpl.coef_q[k]);
  }
}

}  // namespace rjf::fpga
