#include "fpga/cross_correlator.h"

#include <algorithm>
#include <cmath>

namespace rjf::fpga {

CrossCorrelator::CrossCorrelator() noexcept {
  sign_i_.fill(1);
  sign_q_.fill(1);
}

void CrossCorrelator::load_from_registers(const RegisterFile& regs) noexcept {
  for (std::size_t k = 0; k < kCorrelatorLength; ++k) {
    coef_i_[k] = static_cast<std::int8_t>(regs.coefficient(false, k));
    coef_q_[k] = static_cast<std::int8_t>(regs.coefficient(true, k));
  }
  threshold_ = regs.read(Reg::kXcorrThreshold);
  rebuild_derived();
}

void CrossCorrelator::set_coefficients(std::span<const int> coef_i,
                                       std::span<const int> coef_q) noexcept {
  for (std::size_t k = 0; k < kCorrelatorLength; ++k) {
    const int ci = k < coef_i.size() ? coef_i[k] : 0;
    const int cq = k < coef_q.size() ? coef_q[k] : 0;
    coef_i_[k] = static_cast<std::int8_t>(std::clamp(ci, -4, 3));
    coef_q_[k] = static_cast<std::int8_t>(std::clamp(cq, -4, 3));
  }
  rebuild_derived();
}

void CrossCorrelator::rebuild_derived() noexcept {
  planes_i_ = BitPlanes{};
  planes_q_ = BitPlanes{};
  std::int64_t peak = 0;
  for (std::size_t k = 0; k < kCorrelatorLength; ++k) {
    // Coefficient k aligns with the sample that is (kCorrelatorLength-1-k)
    // strobes old, i.e. bit (kCorrelatorLength-1-k) of the sign words.
    const std::uint64_t bit = 1ull << (kCorrelatorLength - 1 - k);
    const auto ci = static_cast<std::uint32_t>(coef_i_[k]) & 0x7u;
    const auto cq = static_cast<std::uint32_t>(coef_q_[k]) & 0x7u;
    if (ci & 1u) planes_i_.b0 |= bit;
    if (ci & 2u) planes_i_.b1 |= bit;
    if (ci & 4u) planes_i_.b2 |= bit;
    if (cq & 1u) planes_q_.b0 |= bit;
    if (cq & 2u) planes_q_.b1 |= bit;
    if (cq & 4u) planes_q_.b2 |= bit;
    planes_i_.coef_sum += coef_i_[k];
    planes_q_.coef_sum += coef_q_[k];
    // If every sign pair aligns with the template phase, both rails
    // contribute their magnitudes fully to the real accumulator.
    peak += std::abs(static_cast<int>(coef_i_[k])) +
            std::abs(static_cast<int>(coef_q_[k]));
  }
  max_metric_ = static_cast<std::uint32_t>(peak * peak);
}

CrossCorrelator::Output CrossCorrelator::step_reference(
    dsp::IQ16 sample) noexcept {
  // MSB slice: 1-bit signed representation of each rail (Fig. 3).
  sign_i_[pos_] = (sample.i < 0) ? -1 : 1;
  sign_q_[pos_] = (sample.q < 0) ? -1 : 1;
  pos_ = (pos_ + 1) & kCorrelatorMask;

  // Correlate the last 64 sign pairs against the template. Coefficient
  // index 0 corresponds to the oldest sample in the window, matching how
  // the preamble template streams through the shift register.
  std::int32_t re = 0;
  std::int32_t im = 0;
  std::size_t idx = pos_;  // oldest sample in the circular buffers
  for (std::size_t k = 0; k < kCorrelatorLength; ++k) {
    const std::int32_t si = sign_i_[idx];
    const std::int32_t sq = sign_q_[idx];
    // s * conj(c): re = si*ci + sq*cq, im = sq*ci - si*cq
    re += si * coef_i_[k] + sq * coef_q_[k];
    im += sq * coef_i_[k] - si * coef_q_[k];
    idx = (idx + 1) & kCorrelatorMask;
  }
  Output out;
  out.metric = static_cast<std::uint32_t>(re * re) +
               static_cast<std::uint32_t>(im * im);
  out.trigger = out.metric > threshold_;
  return out;
}

void CrossCorrelator::reset() noexcept {
  sign_i_.fill(1);
  sign_q_.fill(1);
  pos_ = 0;
  neg_i_ = 0;
  neg_q_ = 0;
}

CorrelatorTemplate make_template(std::span<const dsp::cfloat> reference) {
  CorrelatorTemplate tpl;
  float peak = 0.0f;
  const std::size_t n = std::min(reference.size(), kCorrelatorLength);
  for (std::size_t k = 0; k < n; ++k)
    peak = std::max({peak, std::abs(reference[k].real()),
                     std::abs(reference[k].imag())});
  if (peak <= 0.0f) return tpl;
  for (std::size_t k = 0; k < n; ++k) {
    // The reference itself is quantised; the correlator datapath applies
    // the conjugate (s * conj(c)), completing the matched filter.
    const float scale = 3.0f / peak;
    tpl.coef_i[k] = std::clamp(
        static_cast<int>(std::lround(reference[k].real() * scale)), -4, 3);
    tpl.coef_q[k] = std::clamp(
        static_cast<int>(std::lround(reference[k].imag() * scale)), -4, 3);
  }
  return tpl;
}

void program_template(RegisterFile& regs, const CorrelatorTemplate& tpl) noexcept {
  for (std::size_t k = 0; k < kCorrelatorLength; ++k) {
    regs.set_coefficient(false, k, tpl.coef_i[k]);
    regs.set_coefficient(true, k, tpl.coef_q[k]);
  }
}

}  // namespace rjf::fpga
