#include "fpga/dsp_core.h"

namespace rjf::fpga {

DspCore::DspCore() = default;

void DspCore::apply_registers() noexcept {
  correlator_.load_from_registers(regs_);
  energy_.load_from_registers(regs_);
  fsm_.load_from_registers(regs_);
  jammer_.load_from_registers(regs_);
}

void DspCore::finish_tick(CoreOutput& out) noexcept {
  out.jam_trigger = fsm_.clock(held_events_);
  if (out.jam_trigger) {
    ++feedback_.jam_triggers;
    feedback_.last_trigger_vita = vita_ticks_;
  }
  // Event pulses are single-strobe; clear after the FSM consumed them.
  held_events_ = DetectorEvents{};

  out.tx = jammer_.clock(out.jam_trigger);

  if (ring_ != nullptr) [[unlikely]]
    emit_tick(out);

  ++vita_ticks_;
  feedback_.vita_ticks = vita_ticks_;
}

// rjf: realtime
void DspCore::emit_tick(const CoreOutput& out) noexcept {
  const std::uint64_t vita = vita_ticks_;
  using obs::EventKind;
  if (out.xcorr_trigger)
    ring_->push_event(EventKind::kXcorrTrigger, vita, probe_xcorr_metric_);
  if (out.energy_high)
    ring_->push_event(EventKind::kEnergyRise, vita, probe_energy_sum_);
  if (out.energy_low)
    ring_->push_event(EventKind::kEnergyFall, vita, probe_energy_sum_);
  const int stage = fsm_.stage();
  if (stage != prev_stage_) {
    prev_stage_ = stage;
    if (ring_->want_spans())
      ring_->push_event(EventKind::kFsmStage, vita, hw::UInt<8>(stage).u64());
  }
  if (out.jam_trigger) ring_->push_event(EventKind::kJamTrigger, vita, 0);
  if (out.tx.rf_active != prev_rf_) {
    ring_->push_event(out.tx.rf_active ? EventKind::kJamStart
                                       : EventKind::kJamEnd,
                      vita, 0);
    prev_rf_ = out.tx.rf_active;
  }
  if (out.tx.sample_strobe) probe_tx_ = out.tx.sample;

  if (out.rx_strobe) {
    const bool interesting = out.xcorr_trigger || out.energy_high ||
                             out.energy_low || out.jam_trigger;
    if (ring_->strobe_gate(interesting)) {
      obs::FabricSignals s;
      s.vita_ticks = vita;
      s.rx = probe_rx_;
      s.xcorr_metric = probe_xcorr_metric_;
      s.energy_sum = probe_energy_sum_;
      s.fsm_stage = hw::UInt<8>(stage).value();
      s.xcorr_trigger = out.xcorr_trigger;
      s.energy_high = out.energy_high;
      s.energy_low = out.energy_low;
      s.jam_trigger = out.jam_trigger;
      s.rf_active = out.tx.rf_active;
      s.tx = probe_tx_;
      ring_->push_strobe(s);
    }
  }
}

CoreOutput DspCore::strobe_tick(dsp::IQ16 sample) noexcept {
  CoreOutput out;
  out.vita_ticks = vita_ticks_;
  out.rx_strobe = true;

  const auto xc = correlator_.step(sample);
  const auto en = energy_.step(sample);
  jammer_.record_rx(sample);

  if (ring_ != nullptr) [[unlikely]] {
    probe_xcorr_metric_ = xc.metric;
    probe_energy_sum_ = en.energy_sum;
    probe_rx_ = sample;
  }

  // Edge-detect so one packet produces one event per detector, not one
  // per sample while the metric stays above threshold.
  held_events_.xcorr = xc.trigger && !prev_xcorr_;
  held_events_.energy_high = en.trigger_high && !prev_high_;
  held_events_.energy_low = en.trigger_low && !prev_low_;
  prev_xcorr_ = xc.trigger;
  prev_high_ = en.trigger_high;
  prev_low_ = en.trigger_low;

  if (held_events_.xcorr) ++feedback_.xcorr_detections;
  if (held_events_.energy_high) ++feedback_.energy_high_detections;
  if (held_events_.energy_low) ++feedback_.energy_low_detections;

  out.xcorr_trigger = held_events_.xcorr;
  out.energy_high = held_events_.energy_high;
  out.energy_low = held_events_.energy_low;

  finish_tick(out);
  return out;
}

CoreOutput DspCore::idle_tick() noexcept {
  CoreOutput out;
  out.vita_ticks = vita_ticks_;
  // held_events_ were cleared when the previous tick's FSM consumed them,
  // so detector outputs read false between strobes.
  finish_tick(out);
  return out;
}

// rjf: realtime
CoreOutput DspCore::tick(std::optional<dsp::IQ16> rx) noexcept {
  const bool strobe = (strobe_phase_ == 0);
  strobe_phase_ = hw::wrap_inc(strobe_phase_);  // 2-bit wrap == mod 4
  return strobe ? strobe_tick(rx.value_or(dsp::IQ16{})) : idle_tick();
}

template <bool kTraced>
void DspCore::run_block_body(std::span<const dsp::IQ16> rx,
                             std::span<CoreOutput> out) noexcept {
  std::size_t o = 0;
  for (const dsp::IQ16 sample : rx) {
    // --- Strobe clock: detectors + edge logic (same body as strobe_tick,
    // with the event latch kept in a local so held_events_ stays clear).
    CoreOutput& s = out[o++];
    s = CoreOutput{};
    s.vita_ticks = vita_ticks_;
    s.rx_strobe = true;

    const auto xc = correlator_.step(sample);
    const auto en = energy_.step(sample);
    jammer_.record_rx(sample);

    DetectorEvents ev;
    ev.xcorr = xc.trigger && !prev_xcorr_;
    ev.energy_high = en.trigger_high && !prev_high_;
    ev.energy_low = en.trigger_low && !prev_low_;
    prev_xcorr_ = xc.trigger;
    prev_high_ = en.trigger_high;
    prev_low_ = en.trigger_low;

    if (ev.xcorr) ++feedback_.xcorr_detections;
    if (ev.energy_high) ++feedback_.energy_high_detections;
    if (ev.energy_low) ++feedback_.energy_low_detections;

    s.xcorr_trigger = ev.xcorr;
    s.energy_high = ev.energy_high;
    s.energy_low = ev.energy_low;

    // When the FSM is disengaged and no event is asserted, clock() cannot
    // change state or fire, so the call is skipped outright.
    bool jam = false;
    if (fsm_.engaged() || ev.any()) jam = fsm_.clock(ev);
    if (jam) {
      ++feedback_.jam_triggers;
      feedback_.last_trigger_vita = vita_ticks_;
    }
    s.jam_trigger = jam;
    // An idle jammer ignores a false trigger; skip the virtual clocking.
    if (jam || jammer_.busy()) s.tx = jammer_.clock(jam);

    if constexpr (kTraced) {
      using obs::EventKind;
      const std::uint64_t vita = vita_ticks_;
      if (ev.xcorr) ring_->push_event(EventKind::kXcorrTrigger, vita, xc.metric);
      if (ev.energy_high)
        ring_->push_event(EventKind::kEnergyRise, vita, en.energy_sum);
      if (ev.energy_low)
        ring_->push_event(EventKind::kEnergyFall, vita, en.energy_sum);
      const int stage = fsm_.stage();
      if (stage != prev_stage_) {
        prev_stage_ = stage;
        if (ring_->want_spans())
          ring_->push_event(EventKind::kFsmStage, vita,
                            hw::UInt<8>(stage).u64());
      }
      if (jam) ring_->push_event(EventKind::kJamTrigger, vita, 0);
      if (s.tx.rf_active != prev_rf_) {
        ring_->push_event(s.tx.rf_active ? EventKind::kJamStart
                                         : EventKind::kJamEnd,
                          vita, 0);
        prev_rf_ = s.tx.rf_active;
      }
      if (s.tx.sample_strobe) probe_tx_ = s.tx.sample;
      const bool interesting =
          ev.xcorr || ev.energy_high || ev.energy_low || jam;
      if (ring_->strobe_gate(interesting)) {
        obs::FabricSignals snap;
        snap.vita_ticks = vita;
        snap.rx = sample;
        snap.xcorr_metric = xc.metric;
        snap.energy_sum = en.energy_sum;
        snap.fsm_stage = hw::UInt<8>(stage).value();
        snap.xcorr_trigger = ev.xcorr;
        snap.energy_high = ev.energy_high;
        snap.energy_low = ev.energy_low;
        snap.jam_trigger = jam;
        snap.rf_active = s.tx.rf_active;
        snap.tx = probe_tx_;
        ring_->push_strobe(snap);
      }
      // Keep the probe mirrors coherent for a later per-tick entry.
      probe_xcorr_metric_ = xc.metric;
      probe_energy_sum_ = en.energy_sum;
      probe_rx_ = sample;
    }
    ++vita_ticks_;

    // --- Idle clocks: detector outputs hold low; only the FSM window
    // countdown and the jammer's cycle timers can advance. With no events
    // asserted the FSM can time out but never fire, so jam_trigger is
    // provably false here.
    for (std::uint32_t c = 1; c < kClocksPerSample; ++c) {
      CoreOutput& t = out[o++];
      t = CoreOutput{};
      t.vita_ticks = vita_ticks_;
      if (fsm_.engaged()) (void)fsm_.clock(DetectorEvents{});
      if (jammer_.busy()) t.tx = jammer_.clock(false);
      if constexpr (kTraced) {
        using obs::EventKind;
        const int stage = fsm_.stage();
        if (stage != prev_stage_) {
          prev_stage_ = stage;
          if (ring_->want_spans())
            ring_->push_event(EventKind::kFsmStage, vita_ticks_,
                              hw::UInt<8>(stage).u64());
        }
        if (t.tx.rf_active != prev_rf_) {
          ring_->push_event(t.tx.rf_active ? EventKind::kJamStart
                                           : EventKind::kJamEnd,
                            vita_ticks_, 0);
          prev_rf_ = t.tx.rf_active;
        }
        if (t.tx.sample_strobe) probe_tx_ = t.tx.sample;
      }
      ++vita_ticks_;
    }
  }
  feedback_.vita_ticks = vita_ticks_;
}

// rjf: realtime
void DspCore::run_block(std::span<const dsp::IQ16> rx,
                        std::span<CoreOutput> out) noexcept {
  if (out.size() < rx.size() * kClocksPerSample) {
    rx = rx.first(out.size() / kClocksPerSample);
  }

  if (strobe_phase_ != 0) {
    // Misaligned entry (a caller interleaved raw tick()s): replay the exact
    // per-tick cadence. Bit-identical to the straight-line pass.
    std::size_t o = 0;
    for (const dsp::IQ16 sample : rx) {
      out[o++] = tick(sample);
      for (std::uint32_t c = 1; c < kClocksPerSample; ++c)
        out[o++] = tick(std::nullopt);
    }
    // Inline drain is the single-thread consumer seam: it runs at the block
    // boundary, outside the wait-free producer window.
    if (ring_ != nullptr) ring_->drain_if_inline();  // rjf-analyze: allow(realtime.call)
    return;
  }

  if (ring_ != nullptr) {
    run_block_body<true>(rx, out);
    ring_->drain_if_inline();  // rjf-analyze: allow(realtime.call)
  } else {
    run_block_body<false>(rx, out);
  }
}

std::vector<CoreOutput> DspCore::process(std::span<const dsp::IQ16> rx) {
  std::vector<CoreOutput> trace(rx.size() * kClocksPerSample);
  run_block(rx, trace);
  return trace;
}

void DspCore::fast_forward(std::uint64_t samples) noexcept {
  jammer_.fast_forward(samples);
  correlator_.reset();
  energy_.reset();
  fsm_.reset();
  held_events_ = DetectorEvents{};
  prev_xcorr_ = prev_high_ = prev_low_ = false;
  vita_ticks_ += samples * kClocksPerSample;
  feedback_.vita_ticks = vita_ticks_;
  strobe_phase_ = hw::UInt<2>();
  if (ring_ != nullptr) {
    // A jam burst whose edge fell inside the skipped air time still needs
    // that edge; the exact tick is unobservable here, so stamp it at the
    // end of the gap (duty-cycle error bounded by the skip length).
    if (prev_rf_ != jammer_.rf_active()) {
      prev_rf_ = jammer_.rf_active();
      ring_->push_event(prev_rf_ ? obs::EventKind::kJamStart
                                 : obs::EventKind::kJamEnd,
                        vita_ticks_, 0);
    }
    prev_stage_ = fsm_.stage();
  }
}

void DspCore::reset() noexcept {
  correlator_.reset();
  energy_.reset();
  fsm_.reset();
  jammer_.reset();
  feedback_ = HostFeedback{};
  vita_ticks_ = 0;
  strobe_phase_ = hw::UInt<2>();
  held_events_ = DetectorEvents{};
  prev_xcorr_ = prev_high_ = prev_low_ = false;
  probe_xcorr_metric_ = 0;
  probe_energy_sum_ = 0;
  probe_rx_ = dsp::IQ16{};
  probe_tx_ = dsp::IQ16{};
  prev_rf_ = false;
  prev_stage_ = 0;
}

}  // namespace rjf::fpga
