#include "fpga/dsp_core.h"

namespace rjf::fpga {

DspCore::DspCore() = default;

void DspCore::apply_registers() noexcept {
  correlator_.load_from_registers(regs_);
  energy_.load_from_registers(regs_);
  fsm_.load_from_registers(regs_);
  jammer_.load_from_registers(regs_);
}

void DspCore::finish_tick(CoreOutput& out) noexcept {
  out.jam_trigger = fsm_.clock(held_events_);
  if (out.jam_trigger) {
    ++feedback_.jam_triggers;
    feedback_.last_trigger_vita = vita_ticks_;
  }
  // Event pulses are single-strobe; clear after the FSM consumed them.
  held_events_ = DetectorEvents{};

  out.tx = jammer_.clock(out.jam_trigger);

  ++vita_ticks_;
  feedback_.vita_ticks = vita_ticks_;
}

CoreOutput DspCore::strobe_tick(dsp::IQ16 sample) noexcept {
  CoreOutput out;
  out.vita_ticks = vita_ticks_;
  out.rx_strobe = true;

  const auto xc = correlator_.step(sample);
  const auto en = energy_.step(sample);
  jammer_.record_rx(sample);

  // Edge-detect so one packet produces one event per detector, not one
  // per sample while the metric stays above threshold.
  held_events_.xcorr = xc.trigger && !prev_xcorr_;
  held_events_.energy_high = en.trigger_high && !prev_high_;
  held_events_.energy_low = en.trigger_low && !prev_low_;
  prev_xcorr_ = xc.trigger;
  prev_high_ = en.trigger_high;
  prev_low_ = en.trigger_low;

  if (held_events_.xcorr) ++feedback_.xcorr_detections;
  if (held_events_.energy_high) ++feedback_.energy_high_detections;
  if (held_events_.energy_low) ++feedback_.energy_low_detections;

  out.xcorr_trigger = held_events_.xcorr;
  out.energy_high = held_events_.energy_high;
  out.energy_low = held_events_.energy_low;

  finish_tick(out);
  return out;
}

CoreOutput DspCore::idle_tick() noexcept {
  CoreOutput out;
  out.vita_ticks = vita_ticks_;
  // held_events_ were cleared when the previous tick's FSM consumed them,
  // so detector outputs read false between strobes.
  finish_tick(out);
  return out;
}

CoreOutput DspCore::tick(std::optional<dsp::IQ16> rx) noexcept {
  const bool strobe = (strobe_phase_ == 0);
  strobe_phase_ = (strobe_phase_ + 1) % kClocksPerSample;
  return strobe ? strobe_tick(rx.value_or(dsp::IQ16{})) : idle_tick();
}

void DspCore::run_block(std::span<const dsp::IQ16> rx,
                        std::span<CoreOutput> out) noexcept {
  if (out.size() < rx.size() * kClocksPerSample) {
    rx = rx.first(out.size() / kClocksPerSample);
  }

  if (strobe_phase_ != 0) {
    // Misaligned entry (a caller interleaved raw tick()s): replay the exact
    // per-tick cadence instead of the straight-line pass.
    std::size_t o = 0;
    for (const dsp::IQ16 sample : rx) {
      out[o++] = tick(sample);
      for (std::uint32_t c = 1; c < kClocksPerSample; ++c)
        out[o++] = tick(std::nullopt);
    }
    return;
  }

  std::size_t o = 0;
  for (const dsp::IQ16 sample : rx) {
    // --- Strobe clock: detectors + edge logic (same body as strobe_tick,
    // with the event latch kept in a local so held_events_ stays clear).
    CoreOutput& s = out[o++];
    s = CoreOutput{};
    s.vita_ticks = vita_ticks_;
    s.rx_strobe = true;

    const auto xc = correlator_.step(sample);
    const auto en = energy_.step(sample);
    jammer_.record_rx(sample);

    DetectorEvents ev;
    ev.xcorr = xc.trigger && !prev_xcorr_;
    ev.energy_high = en.trigger_high && !prev_high_;
    ev.energy_low = en.trigger_low && !prev_low_;
    prev_xcorr_ = xc.trigger;
    prev_high_ = en.trigger_high;
    prev_low_ = en.trigger_low;

    if (ev.xcorr) ++feedback_.xcorr_detections;
    if (ev.energy_high) ++feedback_.energy_high_detections;
    if (ev.energy_low) ++feedback_.energy_low_detections;

    s.xcorr_trigger = ev.xcorr;
    s.energy_high = ev.energy_high;
    s.energy_low = ev.energy_low;

    // When the FSM is disengaged and no event is asserted, clock() cannot
    // change state or fire, so the call is skipped outright.
    bool jam = false;
    if (fsm_.engaged() || ev.any()) jam = fsm_.clock(ev);
    if (jam) {
      ++feedback_.jam_triggers;
      feedback_.last_trigger_vita = vita_ticks_;
    }
    s.jam_trigger = jam;
    // An idle jammer ignores a false trigger; skip the virtual clocking.
    if (jam || jammer_.busy()) s.tx = jammer_.clock(jam);
    ++vita_ticks_;

    // --- Idle clocks: detector outputs hold low; only the FSM window
    // countdown and the jammer's cycle timers can advance. With no events
    // asserted the FSM can time out but never fire, so jam_trigger is
    // provably false here.
    for (std::uint32_t c = 1; c < kClocksPerSample; ++c) {
      CoreOutput& t = out[o++];
      t = CoreOutput{};
      t.vita_ticks = vita_ticks_;
      if (fsm_.engaged()) (void)fsm_.clock(DetectorEvents{});
      if (jammer_.busy()) t.tx = jammer_.clock(false);
      ++vita_ticks_;
    }
  }
  feedback_.vita_ticks = vita_ticks_;
}

std::vector<CoreOutput> DspCore::process(std::span<const dsp::IQ16> rx) {
  std::vector<CoreOutput> trace(rx.size() * kClocksPerSample);
  run_block(rx, trace);
  return trace;
}

void DspCore::fast_forward(std::uint64_t samples) noexcept {
  jammer_.fast_forward(samples);
  correlator_.reset();
  energy_.reset();
  fsm_.reset();
  held_events_ = DetectorEvents{};
  prev_xcorr_ = prev_high_ = prev_low_ = false;
  vita_ticks_ += samples * kClocksPerSample;
  feedback_.vita_ticks = vita_ticks_;
  strobe_phase_ = 0;
}

void DspCore::reset() noexcept {
  correlator_.reset();
  energy_.reset();
  fsm_.reset();
  jammer_.reset();
  feedback_ = HostFeedback{};
  vita_ticks_ = 0;
  strobe_phase_ = 0;
  held_events_ = DetectorEvents{};
  prev_xcorr_ = prev_high_ = prev_low_ = false;
}

}  // namespace rjf::fpga
