#include "fpga/dsp_core.h"

namespace rjf::fpga {

DspCore::DspCore() = default;

void DspCore::apply_registers() noexcept {
  correlator_.load_from_registers(regs_);
  energy_.load_from_registers(regs_);
  fsm_.load_from_registers(regs_);
  jammer_.load_from_registers(regs_);
}

CoreOutput DspCore::tick(std::optional<dsp::IQ16> rx) noexcept {
  CoreOutput out;
  out.vita_ticks = vita_ticks_;

  const bool strobe = (strobe_phase_ == 0);
  strobe_phase_ = (strobe_phase_ + 1) % kClocksPerSample;

  if (strobe) {
    const dsp::IQ16 sample = rx.value_or(dsp::IQ16{});
    out.rx_strobe = true;

    const auto xc = correlator_.step(sample);
    const auto en = energy_.step(sample);
    jammer_.record_rx(sample);

    // Edge-detect so one packet produces one event per detector, not one
    // per sample while the metric stays above threshold.
    held_events_.xcorr = xc.trigger && !prev_xcorr_;
    held_events_.energy_high = en.trigger_high && !prev_high_;
    held_events_.energy_low = en.trigger_low && !prev_low_;
    prev_xcorr_ = xc.trigger;
    prev_high_ = en.trigger_high;
    prev_low_ = en.trigger_low;

    if (held_events_.xcorr) ++feedback_.xcorr_detections;
    if (held_events_.energy_high) ++feedback_.energy_high_detections;
    if (held_events_.energy_low) ++feedback_.energy_low_detections;
  }

  out.xcorr_trigger = held_events_.xcorr;
  out.energy_high = held_events_.energy_high;
  out.energy_low = held_events_.energy_low;

  out.jam_trigger = fsm_.clock(held_events_);
  if (out.jam_trigger) {
    ++feedback_.jam_triggers;
    feedback_.last_trigger_vita = vita_ticks_;
  }
  // Event pulses are single-strobe; clear after the FSM consumed them.
  held_events_ = DetectorEvents{};

  out.tx = jammer_.clock(out.jam_trigger);

  ++vita_ticks_;
  feedback_.vita_ticks = vita_ticks_;
  return out;
}

std::vector<CoreOutput> DspCore::process(std::span<const dsp::IQ16> rx) {
  std::vector<CoreOutput> trace;
  trace.reserve(rx.size() * kClocksPerSample);
  for (const dsp::IQ16 sample : rx) {
    trace.push_back(tick(sample));
    for (std::uint32_t c = 1; c < kClocksPerSample; ++c)
      trace.push_back(tick(std::nullopt));
  }
  return trace;
}

void DspCore::fast_forward(std::uint64_t samples) noexcept {
  jammer_.fast_forward(samples);
  correlator_.reset();
  energy_.reset();
  fsm_.reset();
  held_events_ = DetectorEvents{};
  prev_xcorr_ = prev_high_ = prev_low_ = false;
  vita_ticks_ += samples * kClocksPerSample;
  feedback_.vita_ticks = vita_ticks_;
  strobe_phase_ = 0;
}

void DspCore::reset() noexcept {
  correlator_.reset();
  energy_.reset();
  fsm_.reset();
  jammer_.reset();
  feedback_ = HostFeedback{};
  vita_ticks_ = 0;
  strobe_phase_ = 0;
  held_events_ = DetectorEvents{};
  prev_xcorr_ = prev_high_ = prev_low_ = false;
}

}  // namespace rjf::fpga
