#include "fpga/jammer_controller.h"

namespace rjf::fpga {

JammerController::JammerController() = default;

void JammerController::load_from_registers(const RegisterFile& regs) noexcept {
  waveform_ = regs.jam_waveform();
  enabled_ = regs.jam_enabled();
  delay_samples_ = hw::UInt<16>(regs.jam_delay_samples());
  uptime_samples_ = hw::UInt<32>(regs.read(Reg::kJamDuration));
}

void JammerController::configure(JamWaveform waveform, bool enable,
                                 std::uint32_t delay_samples,
                                 std::uint32_t uptime_samples) noexcept {
  waveform_ = waveform;
  enabled_ = enable;
  // The register field for the delay is 16 bits (kJammerControl[31:16]);
  // the checked constructor rejects configs the hardware couldn't hold.
  delay_samples_ = hw::UInt<16>(delay_samples);
  uptime_samples_ = hw::UInt<32>(uptime_samples);
}

void JammerController::set_host_waveform(std::vector<dsp::IQ16> samples) {
  host_waveform_ = std::move(samples);
}

void JammerController::record_rx(dsp::IQ16 sample) noexcept {
  replay_[replay_write_] = sample;
  replay_write_ = (replay_write_ + 1) & kReplayMask;
}

std::int16_t JammerController::lfsr_gaussian() noexcept {
  // Sum of four 8-bit uniform variates, centred: a cheap CLT Gaussian
  // approximation matching what fits in fabric logic.
  hw::UInt<10> acc;  // 4 * 255 tops out at 1020
  for (int k = 0; k < 4; ++k) {
    const bool lsb = lfsr_.truncate<1>() == 1u;
    // Galois step: logical shift right (the top bit refills with zero),
    // then conditionally apply the tap mask.
    lfsr_ = lfsr_.shr<1>().zext<32>();
    if (lsb) lfsr_ = lfsr_ ^ hw::UInt<32>(0xB4BCD35Cu);  // taps 32,31,29,1
    acc = (acc + lfsr_.truncate<8>()).narrow<10>();
  }
  // acc in [0, 1020]; centre and scale to ~1/4 full scale RMS. The centred
  // value rides in Int<12>, the scaled product in Int<18>, and |result|
  // <= 12240 fits the 16-bit DAC rail exactly.
  return ((acc.to_signed() - hw::Int<11>(510)) * hw::Int<6>(24))
      .narrow<16>()
      .value();
}

dsp::IQ16 JammerController::next_waveform_sample() noexcept {
  switch (waveform_) {
    case JamWaveform::kWhiteNoise:
      return dsp::IQ16{lfsr_gaussian(), lfsr_gaussian()};
    case JamWaveform::kReplay: {
      const dsp::IQ16 s = replay_[playback_pos_];
      playback_pos_ = (playback_pos_ + 1) & kReplayMask;
      return s;
    }
    case JamWaveform::kHostStream: {
      if (host_waveform_.empty()) return dsp::IQ16{};
      const dsp::IQ16 s = host_waveform_[playback_pos_ % host_waveform_.size()];
      playback_pos_ = (playback_pos_ + 1) % host_waveform_.size();
      return s;
    }
  }
  return dsp::IQ16{};
}

JammerController::TxOut JammerController::clock(bool trigger) noexcept {
  TxOut out;
  switch (state_) {
    case State::kIdle:
      if (trigger && enabled_) {
        ++jam_count_;
        // Replay starts at the oldest recorded sample; the host-stream
        // buffer always plays from its beginning.
        playback_pos_ =
            (waveform_ == JamWaveform::kReplay) ? replay_write_ : 0;
        // The trigger clock itself is the "1 cycle to initiate"; the
        // remaining kTxInitCycles-1 clocks fill the DUC, so RF energy is on
        // the air exactly kTxInitCycles (80 ns) after the trigger.
        if (delay_samples_ > 0) {
          state_ = State::kDelay;
          countdown_cycles_ = delay_samples_ * hw::UInt<3>(kClocksPerSample);
        } else {
          state_ = State::kInit;
          countdown_cycles_ = hw::UInt<19>(kTxInitCycles - 1);
        }
      }
      break;
    case State::kDelay:
      countdown_cycles_ = hw::wrap_dec(countdown_cycles_);
      if (countdown_cycles_ == 0) {
        state_ = State::kInit;
        countdown_cycles_ = hw::UInt<19>(kTxInitCycles - 1);
      }
      break;
    case State::kInit:
      countdown_cycles_ = hw::wrap_dec(countdown_cycles_);
      if (countdown_cycles_ == 0) {
        state_ = State::kJamming;
        remaining_samples_ = uptime_samples_ == 0 ? hw::UInt<32>(1u)
                                                  : uptime_samples_;
        strobe_phase_ = hw::UInt<2>();
      }
      break;
    case State::kJamming:
      out.rf_active = true;
      ++cycles_jamming_;
      if (strobe_phase_ == 0) {
        out.sample_strobe = true;
        out.sample = next_waveform_sample();
        remaining_samples_ = hw::wrap_dec(remaining_samples_);
        if (remaining_samples_ == 0) state_ = State::kIdle;
      }
      strobe_phase_ = hw::wrap_inc(strobe_phase_);  // 2-bit wrap == mod 4
      break;
  }
  return out;
}

void JammerController::fast_forward(std::uint64_t samples) noexcept {
  std::uint64_t cycles = samples * kClocksPerSample;
  while (cycles > 0 && state_ != State::kIdle) {
    switch (state_) {
      case State::kDelay:
      case State::kInit: {
        const std::uint64_t used =
            std::min<std::uint64_t>(cycles, countdown_cycles_.u64());
        countdown_cycles_ = hw::UInt<19>(countdown_cycles_.u64() - used);
        cycles -= used;
        if (countdown_cycles_ == 0) {
          if (state_ == State::kDelay) {
            state_ = State::kInit;
            countdown_cycles_ = hw::UInt<19>(kTxInitCycles - 1);
          } else {
            state_ = State::kJamming;
            remaining_samples_ = uptime_samples_ == 0 ? hw::UInt<32>(1u)
                                                      : uptime_samples_;
            strobe_phase_ = hw::UInt<2>();
          }
        }
        break;
      }
      case State::kJamming: {
        const std::uint64_t avail = cycles / kClocksPerSample;
        const std::uint64_t used = std::min(avail, remaining_samples_.u64());
        remaining_samples_ = hw::UInt<32>(remaining_samples_.u64() - used);
        cycles -= used * kClocksPerSample;
        cycles_jamming_ += used * kClocksPerSample;
        if (remaining_samples_ == 0) {
          state_ = State::kIdle;
        } else {
          // Fewer than one full sample period left in the gap.
          cycles = 0;
        }
        break;
      }
      case State::kIdle:
        break;
    }
  }
}

void JammerController::reset() noexcept {
  state_ = State::kIdle;
  countdown_cycles_ = hw::UInt<19>();
  remaining_samples_ = hw::UInt<32>();
  strobe_phase_ = hw::UInt<2>();
  playback_pos_ = 0;
  jam_count_ = 0;
  cycles_jamming_ = 0;
}

}  // namespace rjf::fpga
