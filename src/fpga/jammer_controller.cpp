#include "fpga/jammer_controller.h"

namespace rjf::fpga {

JammerController::JammerController() = default;

void JammerController::load_from_registers(const RegisterFile& regs) noexcept {
  waveform_ = regs.jam_waveform();
  enabled_ = regs.jam_enabled();
  delay_samples_ = regs.jam_delay_samples();
  uptime_samples_ = regs.read(Reg::kJamDuration);
}

void JammerController::configure(JamWaveform waveform, bool enable,
                                 std::uint32_t delay_samples,
                                 std::uint32_t uptime_samples) noexcept {
  waveform_ = waveform;
  enabled_ = enable;
  delay_samples_ = delay_samples;
  uptime_samples_ = uptime_samples;
}

void JammerController::set_host_waveform(std::vector<dsp::IQ16> samples) {
  host_waveform_ = std::move(samples);
}

void JammerController::record_rx(dsp::IQ16 sample) noexcept {
  replay_[replay_write_] = sample;
  replay_write_ = (replay_write_ + 1) & kReplayMask;
}

std::int16_t JammerController::lfsr_gaussian() noexcept {
  // Sum of four 8-bit uniform variates, centred: a cheap CLT Gaussian
  // approximation matching what fits in fabric logic.
  int acc = 0;
  for (int k = 0; k < 4; ++k) {
    const bool lsb = lfsr_ & 1u;
    lfsr_ >>= 1;
    if (lsb) lfsr_ ^= 0xB4BCD35Cu;  // taps 32,31,29,1
    acc += static_cast<int>(lfsr_ & 0xFFu);
  }
  // acc in [0, 1020]; centre and scale to ~1/4 full scale RMS.
  return static_cast<std::int16_t>((acc - 510) * 24);
}

dsp::IQ16 JammerController::next_waveform_sample() noexcept {
  switch (waveform_) {
    case JamWaveform::kWhiteNoise:
      return dsp::IQ16{lfsr_gaussian(), lfsr_gaussian()};
    case JamWaveform::kReplay: {
      const dsp::IQ16 s = replay_[playback_pos_];
      playback_pos_ = (playback_pos_ + 1) & kReplayMask;
      return s;
    }
    case JamWaveform::kHostStream: {
      if (host_waveform_.empty()) return dsp::IQ16{};
      const dsp::IQ16 s = host_waveform_[playback_pos_ % host_waveform_.size()];
      playback_pos_ = (playback_pos_ + 1) % host_waveform_.size();
      return s;
    }
  }
  return dsp::IQ16{};
}

JammerController::TxOut JammerController::clock(bool trigger) noexcept {
  TxOut out;
  switch (state_) {
    case State::kIdle:
      if (trigger && enabled_) {
        ++jam_count_;
        // Replay starts at the oldest recorded sample; the host-stream
        // buffer always plays from its beginning.
        playback_pos_ =
            (waveform_ == JamWaveform::kReplay) ? replay_write_ : 0;
        // The trigger clock itself is the "1 cycle to initiate"; the
        // remaining kTxInitCycles-1 clocks fill the DUC, so RF energy is on
        // the air exactly kTxInitCycles (80 ns) after the trigger.
        if (delay_samples_ > 0) {
          state_ = State::kDelay;
          countdown_cycles_ = delay_samples_ * kClocksPerSample;
        } else {
          state_ = State::kInit;
          countdown_cycles_ = kTxInitCycles - 1;
        }
      }
      break;
    case State::kDelay:
      if (--countdown_cycles_ == 0) {
        state_ = State::kInit;
        countdown_cycles_ = kTxInitCycles - 1;
      }
      break;
    case State::kInit:
      if (--countdown_cycles_ == 0) {
        state_ = State::kJamming;
        remaining_samples_ = uptime_samples_ == 0 ? 1 : uptime_samples_;
        strobe_phase_ = 0;
      }
      break;
    case State::kJamming:
      out.rf_active = true;
      ++cycles_jamming_;
      if (strobe_phase_ == 0) {
        out.sample_strobe = true;
        out.sample = next_waveform_sample();
        if (--remaining_samples_ == 0) state_ = State::kIdle;
      }
      strobe_phase_ = (strobe_phase_ + 1) % kClocksPerSample;
      break;
  }
  return out;
}

void JammerController::fast_forward(std::uint64_t samples) noexcept {
  std::uint64_t cycles = samples * kClocksPerSample;
  while (cycles > 0 && state_ != State::kIdle) {
    switch (state_) {
      case State::kDelay:
      case State::kInit: {
        const std::uint64_t used = std::min<std::uint64_t>(cycles, countdown_cycles_);
        countdown_cycles_ -= static_cast<std::uint32_t>(used);
        cycles -= used;
        if (countdown_cycles_ == 0) {
          if (state_ == State::kDelay) {
            state_ = State::kInit;
            countdown_cycles_ = kTxInitCycles - 1;
          } else {
            state_ = State::kJamming;
            remaining_samples_ = uptime_samples_ == 0 ? 1 : uptime_samples_;
            strobe_phase_ = 0;
          }
        }
        break;
      }
      case State::kJamming: {
        const std::uint64_t avail = cycles / kClocksPerSample;
        const std::uint64_t used = std::min(avail, remaining_samples_);
        remaining_samples_ -= used;
        cycles -= used * kClocksPerSample;
        cycles_jamming_ += used * kClocksPerSample;
        if (remaining_samples_ == 0) {
          state_ = State::kIdle;
        } else {
          // Fewer than one full sample period left in the gap.
          cycles = 0;
        }
        break;
      }
      case State::kIdle:
        break;
    }
  }
}

void JammerController::reset() noexcept {
  state_ = State::kIdle;
  countdown_cycles_ = 0;
  remaining_samples_ = 0;
  strobe_phase_ = 0;
  playback_pos_ = 0;
  jam_count_ = 0;
  cycles_jamming_ = 0;
}

}  // namespace rjf::fpga
