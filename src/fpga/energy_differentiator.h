// Differential energy detector (paper Fig. 4).
//
// Keeps a running 32-sample energy sum y[n] = y[n-1] + x[n] - x[n-N] with
// x[n] = I^2 + Q^2, and compares it against a 64-sample-delayed copy of
// itself scaled by host-programmable Q8.8 thresholds:
//     trigger_high :  y[n]        > thresh_high * y[n-64]
//     trigger_low  :  y[n-64]     > thresh_low  * y[n]
// Users can set any energy-change threshold between 3 dB and 30 dB, for
// both rising and falling energy (paper §2.3).
#pragma once

#include <cstdint>

#include "dsp/moving_sum.h"
#include "dsp/types.h"
#include "fpga/hw_int.h"
#include "fpga/register_file.h"

namespace rjf::fpga {

inline constexpr std::size_t kEnergyWindow = 32;  // moving-sum length N
inline constexpr std::size_t kEnergyRefDelay = 64;  // Z^-64 reference delay

class EnergyDifferentiator {
 public:
  EnergyDifferentiator();

  /// Latch thresholds from the register file.
  void load_from_registers(const RegisterFile& regs) noexcept;

  /// Direct configuration (tests/ablations). Thresholds are linear power
  /// ratios in Q8.8; floor is the minimum energy sum to arm the comparators.
  void set_thresholds(std::uint32_t high_q88, std::uint32_t low_q88,
                      std::uint32_t floor) noexcept;

  struct Output {
    std::uint64_t energy_sum = 0;
    bool trigger_high = false;
    bool trigger_low = false;
  };

  /// Clock in one baseband sample (25 MSPS strobe).
  Output step(dsp::IQ16 sample) noexcept;

  void reset();

 private:
  dsp::MovingSumU64 sum_{kEnergyWindow};
  dsp::DelayLine<std::uint64_t> reference_{kEnergyRefDelay};
  hw::UInt<32> thresh_high_q88_{0xFFFFFFFFu};  // Q8.8 power ratios
  hw::UInt<32> thresh_low_q88_{0xFFFFFFFFu};
  hw::UInt<32> floor_;
  std::size_t warmup_ = 0;  // samples seen; comparators arm after the pipe fills
};

}  // namespace rjf::fpga
