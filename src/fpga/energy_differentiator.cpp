#include "fpga/energy_differentiator.h"

namespace rjf::fpga {

EnergyDifferentiator::EnergyDifferentiator() = default;

void EnergyDifferentiator::load_from_registers(const RegisterFile& regs) noexcept {
  thresh_high_q88_ = hw::UInt<32>(regs.read(Reg::kEnergyThreshHigh));
  thresh_low_q88_ = hw::UInt<32>(regs.read(Reg::kEnergyThreshLow));
  floor_ = hw::UInt<32>(regs.read(Reg::kEnergyFloor));
}

void EnergyDifferentiator::set_thresholds(std::uint32_t high_q88,
                                          std::uint32_t low_q88,
                                          std::uint32_t floor) noexcept {
  thresh_high_q88_ = hw::UInt<32>(high_q88);
  thresh_low_q88_ = hw::UInt<32>(low_q88);
  floor_ = hw::UInt<32>(floor);
}

EnergyDifferentiator::Output EnergyDifferentiator::step(dsp::IQ16 sample) noexcept {
  // x[n] = I^2 + Q^2 on the 16-bit rails: Int<32> squares, Int<33> sum —
  // non-negative by construction, so it converts exactly to the unsigned
  // power rail (at most 2^31 for full-scale-negative I and Q).
  const auto i = hw::Int<16>(sample.i);
  const auto q = hw::Int<16>(sample.q);
  const hw::UInt<33> x = (i * i + q * q).to_unsigned();
  // The 32-sample moving sum tops out at 2^36; both rails ride in UInt<37>.
  const hw::UInt<37> y(sum_.push(x.u64()));
  const hw::UInt<37> y_ref(reference_.push(y.u64()));

  Output out;
  out.energy_sum = y.u64();
  if (warmup_ < kEnergyWindow + kEnergyRefDelay) {
    ++warmup_;
    return out;  // pipeline not yet full; comparators disarmed
  }
  // Q8.8 scaling: compare 256*y against thresh*y_ref (and vice versa). The
  // full-width intermediates exceed 64 bits, so this is the 128-bit
  // comparator form — the RTL never materialises the product either.
  out.trigger_high =
      y > floor_ && hw::shifted_gt<8>(y, y_ref, thresh_high_q88_);
  out.trigger_low =
      y_ref > floor_ && hw::shifted_gt<8>(y_ref, y, thresh_low_q88_);
  return out;
}

void EnergyDifferentiator::reset() {
  sum_.reset();
  reference_.reset();
  warmup_ = 0;
}

}  // namespace rjf::fpga
