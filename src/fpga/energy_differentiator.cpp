#include "fpga/energy_differentiator.h"

namespace rjf::fpga {

EnergyDifferentiator::EnergyDifferentiator() = default;

void EnergyDifferentiator::load_from_registers(const RegisterFile& regs) noexcept {
  thresh_high_q88_ = regs.read(Reg::kEnergyThreshHigh);
  thresh_low_q88_ = regs.read(Reg::kEnergyThreshLow);
  floor_ = regs.read(Reg::kEnergyFloor);
}

void EnergyDifferentiator::set_thresholds(std::uint32_t high_q88,
                                          std::uint32_t low_q88,
                                          std::uint32_t floor) noexcept {
  thresh_high_q88_ = high_q88;
  thresh_low_q88_ = low_q88;
  floor_ = floor;
}

EnergyDifferentiator::Output EnergyDifferentiator::step(dsp::IQ16 sample) noexcept {
  // x[n] = I^2 + Q^2 on the 16-bit rails; fits in 31 bits.
  const std::uint64_t xi = static_cast<std::int64_t>(sample.i) * sample.i;
  const std::uint64_t xq = static_cast<std::int64_t>(sample.q) * sample.q;
  const std::uint64_t y = sum_.push(xi + xq);
  const std::uint64_t y_ref = reference_.push(y);

  Output out;
  out.energy_sum = y;
  if (warmup_ < kEnergyWindow + kEnergyRefDelay) {
    ++warmup_;
    return out;  // pipeline not yet full; comparators disarmed
  }
  // Q8.8 scaling: compare 256*y against thresh*y_ref (and vice versa) using
  // 128-bit intermediates so a 30 dB threshold can't overflow.
  const auto lhs_high = static_cast<__uint128_t>(y) << 8;
  const auto rhs_high = static_cast<__uint128_t>(y_ref) * thresh_high_q88_;
  const auto lhs_low = static_cast<__uint128_t>(y_ref) << 8;
  const auto rhs_low = static_cast<__uint128_t>(y) * thresh_low_q88_;
  out.trigger_high = (y > floor_) && (lhs_high > rhs_high);
  out.trigger_low = (y_ref > floor_) && (lhs_low > rhs_low);
  return out;
}

void EnergyDifferentiator::reset() {
  sum_.reset();
  reference_.reset();
  warmup_ = 0;
}

}  // namespace rjf::fpga
