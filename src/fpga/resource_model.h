// Static FPGA resource model.
//
// Reproduces the resource boxes printed inside the paper's block diagrams
// (Fig. 3 for the cross-correlator, Fig. 4 for the energy differentiator)
// and estimates utilisation of the USRP N210's Spartan-3A DSP 3400 part so
// the bench_resources target can print the same style of report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rjf::fpga {

struct ResourceUsage {
  std::string block;
  std::uint32_t slices = 0;
  std::uint32_t ffs = 0;
  std::uint32_t brams = 0;
  std::uint32_t luts = 0;
  std::uint32_t iobs = 0;
  std::uint32_t dsp48 = 0;
};

/// Per-block usage. The cross-correlator and energy differentiator rows are
/// the paper's reported synthesis numbers; the remaining blocks are
/// estimates derived from their datapath widths.
[[nodiscard]] std::vector<ResourceUsage> block_resources();

/// Sum across all blocks.
[[nodiscard]] ResourceUsage total_resources();

/// Capacity of the XC3SD3400A (USRP N210 rev 4 fabric).
struct DeviceCapacity {
  std::uint32_t slices = 23872;
  std::uint32_t ffs = 47744;
  std::uint32_t brams = 126;
  std::uint32_t luts = 47744;
  std::uint32_t dsp48 = 126;
};

/// Utilisation percentage of the custom core against the device, per field.
struct Utilisation {
  double slices_pct = 0.0;  // fabric-lint: allow(float-in-datapath)
  double ffs_pct = 0.0;  // fabric-lint: allow(float-in-datapath)
  double brams_pct = 0.0;  // fabric-lint: allow(float-in-datapath)
  double luts_pct = 0.0;  // fabric-lint: allow(float-in-datapath)
  double dsp48_pct = 0.0;  // fabric-lint: allow(float-in-datapath)
};

[[nodiscard]] Utilisation utilisation(const DeviceCapacity& device = {});

}  // namespace rjf::fpga
