#include "fpga/register_file.h"

#include <algorithm>
#include <cmath>

namespace rjf::fpga {
namespace {

constexpr std::size_t kCoefsPerReg = 8;  // 4-bit fields in a 32-bit register

std::size_t coef_reg_index(bool q_bank, std::size_t index) noexcept {
  const auto base = static_cast<std::size_t>(q_bank ? Reg::kXcorrCoefQ0
                                                    : Reg::kXcorrCoefI0);
  return base + index / kCoefsPerReg;
}

}  // namespace

void RegisterFile::set_coefficient(bool q_bank, std::size_t index,
                                   int value) noexcept {
  if (index >= 64) return;
  const int clamped = std::clamp(value, -4, 3);
  const auto field = static_cast<std::uint32_t>(clamped & 0xF);
  const std::size_t reg = coef_reg_index(q_bank, index);
  const unsigned shift = 4u * static_cast<unsigned>(index % kCoefsPerReg);
  regs_[reg] = (regs_[reg] & ~(0xFu << shift)) | (field << shift);
}

int RegisterFile::coefficient(bool q_bank, std::size_t index) const noexcept {
  if (index >= 64) return 0;
  const std::size_t reg = coef_reg_index(q_bank, index);
  const unsigned shift = 4u * static_cast<unsigned>(index % kCoefsPerReg);
  const auto field = (regs_[reg] >> shift) & 0xFu;
  // Sign-extend the 4-bit field.
  return (field & 0x8u) ? static_cast<int>(field) - 16 : static_cast<int>(field);
}

void RegisterFile::set_jammer(JamWaveform waveform, bool enable,
                              std::uint16_t delay_samples) noexcept {
  const std::uint32_t value = (static_cast<std::uint32_t>(waveform) & 0x3u) |
                              (enable ? 0x4u : 0x0u) |
                              (static_cast<std::uint32_t>(delay_samples) << 16);
  write(Reg::kJammerControl, value);
}

JamWaveform RegisterFile::jam_waveform() const noexcept {
  return static_cast<JamWaveform>(read(Reg::kJammerControl) & 0x3u);
}

bool RegisterFile::jam_enabled() const noexcept {
  return (read(Reg::kJammerControl) & 0x4u) != 0;
}

std::uint16_t RegisterFile::jam_delay_samples() const noexcept {
  return static_cast<std::uint16_t>(read(Reg::kJammerControl) >> 16);
}

void RegisterFile::set_trigger_stages(std::uint32_t mask0, std::uint32_t mask1,
                                      std::uint32_t mask2) noexcept {
  const std::uint32_t value =
      (mask0 & 0xFu) | ((mask1 & 0xFu) << 4) | ((mask2 & 0xFu) << 8);
  write(Reg::kTriggerConfig, value);
}

std::uint32_t RegisterFile::trigger_stage_mask(int stage) const noexcept {
  if (stage < 0 || stage > 2) return 0;
  return (read(Reg::kTriggerConfig) >> (4 * stage)) & 0xFu;
}

int RegisterFile::num_trigger_stages() const noexcept {
  int n = 0;
  for (int stage = 0; stage < 3; ++stage)
    if (trigger_stage_mask(stage) != 0) n = stage + 1;
  return n;
}

std::uint32_t energy_threshold_q88_from_db(double db) noexcept {
  const double ratio = std::pow(10.0, db / 10.0);
  const double q88 = std::clamp(ratio * 256.0, 0.0, 4294967295.0);
  return static_cast<std::uint32_t>(std::lround(q88));
}

double energy_threshold_db_from_q88(std::uint32_t q88) noexcept {
  if (q88 == 0) return -300.0;
  return 10.0 * std::log10(static_cast<double>(q88) / 256.0);
}

}  // namespace rjf::fpga
