#include "fpga/register_file.h"

#include "fpga/hw_int.h"

namespace rjf::fpga {
namespace {

constexpr std::size_t kCoefsPerReg = 8;  // 4-bit fields in a 32-bit register

std::size_t coef_reg_index(bool q_bank, std::size_t index) noexcept {
  const auto base = static_cast<std::size_t>(q_bank ? Reg::kXcorrCoefQ0
                                                    : Reg::kXcorrCoefI0);
  return base + index / kCoefsPerReg;
}

}  // namespace

void RegisterFile::set_coefficient(bool q_bank, std::size_t index,
                                   int value) noexcept {
  if (index >= 64) return;
  // Clamp into the 3-bit signed coefficient range, then pack the two's
  // complement bits into the 4-bit bus field (bit 3 is a spare the RTL
  // carries but the correlator never reads).
  const hw::Int<3> clamped = hw::sat_s<3>(value);
  const std::uint32_t field = hw::wrap_u<4>(clamped).zext<32>().value();
  const std::size_t reg = coef_reg_index(q_bank, index);
  const unsigned shift = 4u * static_cast<unsigned>(index % kCoefsPerReg);
  regs_[reg] = (regs_[reg] & ~(0xFu << shift)) | (field << shift);
}

int RegisterFile::coefficient(bool q_bank, std::size_t index) const noexcept {
  if (index >= 64) return 0;
  const std::size_t reg = coef_reg_index(q_bank, index);
  const unsigned shift = 4u * static_cast<unsigned>(index % kCoefsPerReg);
  // The correlator consumes 3-bit signed coefficients: bit 3 of the bus
  // field is a spare the fabric never reads, so decode wraps to 3-bit two's
  // complement exactly like the bit-plane decomposition does. (This used to
  // sign-extend all 4 bits, so a rogue raw register write made this readout
  // disagree with what the correlator actually computed.)
  return hw::wrap_s<3>(regs_[reg] >> shift).value();
}

void RegisterFile::set_jammer(JamWaveform waveform, bool enable,
                              std::uint16_t delay_samples) noexcept {
  const hw::UInt<32> value = hw::from_enum<2>(waveform).zext<32>() |
                             hw::UInt<32>(enable ? 0x4u : 0x0u) |
                             hw::UInt<16>(delay_samples).shl<16>();
  write(Reg::kJammerControl, value.value());
}

JamWaveform RegisterFile::jam_waveform() const noexcept {
  return hw::to_enum<JamWaveform>(hw::wrap_u<2>(read(Reg::kJammerControl)));
}

bool RegisterFile::jam_enabled() const noexcept {
  return (read(Reg::kJammerControl) & 0x4u) != 0;
}

std::uint16_t RegisterFile::jam_delay_samples() const noexcept {
  return hw::wrap_u<16>(read(Reg::kJammerControl) >> 16).value();
}

void RegisterFile::set_trigger_stages(std::uint32_t mask0, std::uint32_t mask1,
                                      std::uint32_t mask2) noexcept {
  const std::uint32_t value =
      (mask0 & 0xFu) | ((mask1 & 0xFu) << 4) | ((mask2 & 0xFu) << 8);
  write(Reg::kTriggerConfig, value);
}

std::uint32_t RegisterFile::trigger_stage_mask(int stage) const noexcept {
  if (stage < 0 || stage > 2) return 0;
  return (read(Reg::kTriggerConfig) >> (4 * stage)) & 0xFu;
}

int RegisterFile::num_trigger_stages() const noexcept {
  int n = 0;
  for (int stage = 0; stage < 3; ++stage)
    if (trigger_stage_mask(stage) != 0) n = stage + 1;
  return n;
}

}  // namespace rjf::fpga
