// 64-sample sign-bit weighted phase correlator (paper Fig. 3).
//
// Derived from the WARP OFDM Reference Design v15 correlator: incoming
// 16-bit I/Q samples are sliced to their sign bits (1-bit signed values),
// correlated against a template of 64 3-bit signed coefficients per rail,
// combined into a complex correlation, squared, and compared against a
// host-programmable threshold. The paper extends the WARP core with
// run-time coefficient loading over the user register bus — modelled here
// by reading the coefficient banks from the RegisterFile before each run
// (load_from_registers()).
//
// Host fast path (see DESIGN.md "Host fast path"): because the datapath is
// exactly 1-bit signs against 3-bit coefficients, the 64-tap complex
// correlation collapses to bit-plane arithmetic. The sign history of each
// rail lives in one uint64_t (one bit per tap) and each coefficient bank is
// decomposed at load time into three 64-bit plane masks (the two's-complement
// bits of the 3-bit values, weights +1, +2, -4). step() then computes every
// sign/coefficient dot product as a handful of AND + popcount operations —
// bit-identical to the scalar shift-register model, which is preserved as
// step_reference() for equivalence testing.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "dsp/types.h"
#include "fpga/hw_int.h"
#include "fpga/register_file.h"

namespace rjf::fpga {

inline constexpr std::size_t kCorrelatorLength = 64;
// Circular indexing in the reference model uses a mask, so the tap count
// must stay a power of two (it also must fit one bit per tap in a uint64_t
// for the bit-parallel fast path).
static_assert(std::has_single_bit(kCorrelatorLength));
static_assert(kCorrelatorLength <= 64);
inline constexpr std::size_t kCorrelatorMask = kCorrelatorLength - 1;

class CrossCorrelator {
 public:
  // Datapath widths (paper Fig. 3): 1-bit sign slices over a 64-tap window,
  // 3-bit signed coefficients, so each rail's dot product is at most 512 in
  // magnitude (Int<13> after the plane arithmetic, Int<14> for the summed
  // complex rail) and the squared metric wraps into the 32-bit register.
  using Coef = hw::Int<3>;
  using SignHistory = hw::UInt<kCorrelatorLength>;

  CrossCorrelator() noexcept;

  /// Latch the coefficient banks and threshold from the register file,
  /// mirroring the run-time loading path the paper added to the WARP core.
  void load_from_registers(const RegisterFile& regs) noexcept;

  /// Directly install a template (used by unit tests and ablations).
  void set_coefficients(std::span<const int> coef_i,
                        std::span<const int> coef_q) noexcept;
  void set_threshold(std::uint32_t threshold) noexcept { threshold_ = threshold; }
  [[nodiscard]] std::uint32_t threshold() const noexcept { return threshold_; }

  struct Output {
    std::uint32_t metric = 0;  // |correlation|^2
    bool trigger = false;      // metric > threshold
  };

  /// Clock in one baseband sample (one 25 MSPS strobe). The metric reflects
  /// the most recent kCorrelatorLength samples. Bit-parallel fast path;
  /// defined inline so the block-processing loop keeps the plane masks and
  /// sign words in registers.
  // rjf: realtime
  Output step(dsp::IQ16 sample) noexcept {
    // MSB slice (Fig. 3): shift the new sign bit in at the bottom; the tap
    // that ages out of the 64-sample window falls off the top.
    neg_i_ = hw::shift_in(neg_i_, sample.i < 0);
    neg_q_ = hw::shift_in(neg_q_, sample.q < 0);

    // s * conj(c): re = <si,ci> + <sq,cq>, im = <sq,ci> - <si,cq>, each dot
    // product evaluated across the three coefficient bit-planes.
    const hw::Int<14> re = dot(neg_i_, planes_i_) + dot(neg_q_, planes_q_);
    const hw::Int<14> im = dot(neg_q_, planes_i_) - dot(neg_i_, planes_q_);

    Output out;
    // Square in the exact widened type (Int<14> squares to Int<28>, the sum
    // is Int<29>) and wrap into the 32-bit metric register the way the RTL
    // accumulator does. |corr|^2 is non-negative and bounded by 2*512^2, so
    // the wrap is value-preserving; the old spelling squared in int32_t,
    // which is signed-overflow UB for |re| > 46340 before the cast.
    out.metric = hw::wrap_u<32>(re * re + im * im).value();
    out.trigger = out.metric > threshold_;
    return out;
  }

  /// Scalar shift-register model of the same datapath. Maintains its own
  /// delay-line state, so drive a given instance through either step() or
  /// step_reference(), never both; equivalence tests run two instances on
  /// the same stream and compare outputs.
  Output step_reference(dsp::IQ16 sample) noexcept;

  void reset() noexcept;

  /// Peak achievable metric for the installed template (all signs agree).
  /// Cached at coefficient-load time.
  [[nodiscard]] std::uint32_t max_metric() const noexcept { return max_metric_; }

 private:
  /// Recompute the bit-plane masks, coefficient sums, and cached max_metric
  /// after a coefficient load.
  void rebuild_derived() noexcept;

  // One coefficient bank decomposed into two's-complement bit-planes.
  // Coefficient k occupies bit (kCorrelatorLength-1-k) of each mask so the
  // oldest tap lines up with the top of the shifted-in sign history.
  struct BitPlanes {
    SignHistory b0;  // weight +1
    SignHistory b1;  // weight +2
    SignHistory b2;  // weight -4 (sign bit of the 3-bit value)
    hw::Int<9> coef_sum;  // dot product when every sign is +1, |.| <= 256
  };

  /// Dot product of a +/-1 sign vector (packed as "negative" bits) with a
  /// coefficient bank: sum_k sign[k]*coef[k]. Every width below is exact by
  /// construction: popcounts are 7 bits, the plane-weighted negative sum is
  /// Int<11>, and the result lands in Int<13> (|dot| <= 512).
  [[nodiscard]] static hw::Int<13> dot(SignHistory neg,
                                       const BitPlanes& p) noexcept {
    // sign[k] = 1 - 2*neg[k], so the dot is the all-positive sum minus
    // twice the (plane-weighted) sum over the negative taps.
    const auto n0 = hw::popcount(neg & p.b0).to_signed();
    const auto n1 = hw::popcount(neg & p.b1).to_signed();
    const auto n2 = hw::popcount(neg & p.b2).to_signed();
    const auto neg_sum = n0 + n1.shl<1>() - n2.shl<2>();
    return p.coef_sum - neg_sum.shl<1>();
  }

  std::array<Coef, kCorrelatorLength> coef_i_{};
  std::array<Coef, kCorrelatorLength> coef_q_{};

  // Bit-parallel state: sign history packed one bit per tap, bit 0 newest,
  // bit 63 oldest; a set bit means the rail was negative.
  SignHistory neg_i_;
  SignHistory neg_q_;
  BitPlanes planes_i_;
  BitPlanes planes_q_;

  // Scalar reference state (step_reference() only); +1/-1 delay lines.
  std::array<hw::Int<2>, kCorrelatorLength> sign_i_{};
  std::array<hw::Int<2>, kCorrelatorLength> sign_q_{};
  std::size_t pos_ = 0;

  std::uint32_t threshold_ = 0xFFFFFFFFu;
  std::uint32_t max_metric_ = 0;
};

/// A quantised 64-tap coefficient set, ready for the register bus. Produced
/// offline on the host (paper §2.3: "generated offline on the host based on
/// knowledge of the wireless standards' preambles") by core::make_template
/// in core/fabric_units.h — the float-domain quantiser lives on the host
/// side of the bus, never in the fabric model.
struct CorrelatorTemplate {
  std::array<int, kCorrelatorLength> coef_i{};
  std::array<int, kCorrelatorLength> coef_q{};
};

/// Write a template into the coefficient registers.
void program_template(RegisterFile& regs, const CorrelatorTemplate& tpl) noexcept;

}  // namespace rjf::fpga
