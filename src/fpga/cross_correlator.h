// 64-sample sign-bit weighted phase correlator (paper Fig. 3).
//
// Derived from the WARP OFDM Reference Design v15 correlator: incoming
// 16-bit I/Q samples are sliced to their sign bits (1-bit signed values),
// correlated against a template of 64 3-bit signed coefficients per rail,
// combined into a complex correlation, squared, and compared against a
// host-programmable threshold. The paper extends the WARP core with
// run-time coefficient loading over the user register bus — modelled here
// by reading the coefficient banks from the RegisterFile before each run
// (load_from_registers()).
#pragma once

#include <array>
#include <cstdint>

#include "dsp/types.h"
#include "fpga/register_file.h"

namespace rjf::fpga {

inline constexpr std::size_t kCorrelatorLength = 64;

class CrossCorrelator {
 public:
  CrossCorrelator() noexcept;

  /// Latch the coefficient banks and threshold from the register file,
  /// mirroring the run-time loading path the paper added to the WARP core.
  void load_from_registers(const RegisterFile& regs) noexcept;

  /// Directly install a template (used by unit tests and ablations).
  void set_coefficients(std::span<const int> coef_i,
                        std::span<const int> coef_q) noexcept;
  void set_threshold(std::uint32_t threshold) noexcept { threshold_ = threshold; }
  [[nodiscard]] std::uint32_t threshold() const noexcept { return threshold_; }

  struct Output {
    std::uint32_t metric = 0;  // |correlation|^2
    bool trigger = false;      // metric > threshold
  };

  /// Clock in one baseband sample (one 25 MSPS strobe). The metric reflects
  /// the most recent kCorrelatorLength samples.
  Output step(dsp::IQ16 sample) noexcept;

  void reset() noexcept;

  /// Peak achievable metric for the installed template (all signs agree).
  [[nodiscard]] std::uint32_t max_metric() const noexcept;

 private:
  std::array<std::int8_t, kCorrelatorLength> coef_i_{};
  std::array<std::int8_t, kCorrelatorLength> coef_q_{};
  std::array<std::int8_t, kCorrelatorLength> sign_i_{};  // delay line, +1/-1
  std::array<std::int8_t, kCorrelatorLength> sign_q_{};
  std::size_t pos_ = 0;
  std::uint32_t threshold_ = 0xFFFFFFFFu;
};

/// Offline coefficient generation (paper §2.3: "generated offline on the
/// host based on knowledge of the wireless standards' preambles").
/// Quantises the conjugate of the reference waveform's first 64 samples to
/// 3-bit signed values per rail, scaled so the largest rail magnitude is 3.
struct CorrelatorTemplate {
  std::array<int, kCorrelatorLength> coef_i{};
  std::array<int, kCorrelatorLength> coef_q{};
};

[[nodiscard]] CorrelatorTemplate make_template(std::span<const dsp::cfloat> reference);

/// Write a template into the coefficient registers.
void program_template(RegisterFile& regs, const CorrelatorTemplate& tpl) noexcept;

}  // namespace rjf::fpga
