#include "net/jamming_detector.h"

#include "dsp/db.h"

namespace rjf::net {

JammingVerdict diagnose(const LinkObservation& obs) noexcept {
  constexpr double kPdrFloor = 0.6;
  constexpr double kBusyCeiling = 0.25;
  constexpr double kStrongSnrDb = 20.0;

  // Delivery first: interference that doesn't cost packets isn't an
  // actionable attack, however busy the medium looks.
  if (obs.pdr >= kPdrFloor && obs.frames_attempted > 0)
    return JammingVerdict::kHealthy;

  // An idle window proves nothing: with zero attempts and no starvation
  // signal, PDR carries no evidence, and only a saturated medium (the
  // client never even got to transmit) still indicts a jammer below.
  if (obs.frames_attempted == 0 && obs.cca_busy_fraction <= 0.8 &&
      obs.pdr >= kPdrFloor)
    return JammingVerdict::kNoTraffic;

  // Continuous interference shows up as a persistently busy medium —
  // including the degenerate case where the client cannot send at all.
  if (obs.cca_busy_fraction > 0.8) return JammingVerdict::kContinuousJamming;

  // Losses with a busy medium or a weak link are explainable without an
  // adversary (congestion, range).
  if (obs.cca_busy_fraction > kBusyCeiling || obs.snr_db < kStrongSnrDb)
    return JammingVerdict::kCongestedOrWeak;

  // Strong signal, idle medium, packets dying anyway: the Xu et al.
  // PDR/RSSI consistency check fails -> reactive jamming.
  return JammingVerdict::kReactiveJamming;
}

LinkObservation observe(const WifiRunResult& result,
                        const WifiNetworkConfig& config) noexcept {
  LinkObservation obs;
  obs.frames_attempted = result.data_frames_sent;
  const std::uint64_t successes = result.report.datagrams_received;
  const std::uint64_t attempts = result.data_frames_sent;
  obs.pdr = attempts > 0
                ? static_cast<double>(successes) / static_cast<double>(attempts)
                : (result.cca_starved_drops > 0 ? 0.0 : 1.0);

  const std::uint64_t accesses =
      attempts + result.cca_busy_defers + result.cca_starved_drops;
  obs.cca_busy_fraction =
      accesses > 0 ? static_cast<double>(result.cca_busy_defers) /
                         static_cast<double>(accesses)
                   : 0.0;

  // Apparent SNR from the victim link budget (preamble RSSI vs noise floor)
  // — reactive bursts are too brief to move this average, which is the
  // whole stealth point.
  const double rx_power =
      config.client_tx_power *
      dsp::ratio_from_db(-channel::FivePortNetwork{}.loss_db(
          channel::kPortClient, channel::kPortAp));
  obs.snr_db = dsp::db_from_ratio(rx_power / config.ap_noise_power);
  return obs;
}

const char* verdict_name(JammingVerdict verdict) noexcept {
  switch (verdict) {
    case JammingVerdict::kHealthy: return "healthy";
    case JammingVerdict::kCongestedOrWeak: return "congested-or-weak";
    case JammingVerdict::kContinuousJamming: return "continuous-jamming";
    case JammingVerdict::kReactiveJamming: return "reactive-jamming";
    case JammingVerdict::kNoTraffic: return "no-traffic";
  }
  return "unknown";
}

}  // namespace rjf::net
