#include "net/wifi_network.h"

#include <algorithm>
#include <cmath>

#include "dsp/db.h"
#include "dsp/noise.h"
#include "dsp/resampler.h"
#include "phy80211/ofdm.h"
#include "phy80211/transmitter.h"

namespace rjf::net {
namespace {

constexpr double kFabricRate = 25e6;
constexpr double kWifiRate = phy80211::kSampleRateHz;
static_assert(kFabricRate == kJammerSampleRateHz,
              "WaveformCache resamples to the jammer fabric rate");
constexpr std::size_t kLeadSamples25 = 220;  // ~8.8 us noise head per capture

// Mean power of the fabric WGN generator (LFSR CLT shaper): measured once
// so jammer_tx_power can be dialled in exactly.
double wgn_generator_power() {
  fpga::JammerController ctl;
  ctl.configure(fpga::JamWaveform::kWhiteNoise, true, 0, 4096);
  double acc = 0.0;
  std::size_t n = 0;
  bool first = true;
  for (std::size_t c = 0; c < 4096 * fpga::kClocksPerSample + 16; ++c) {
    const auto out = ctl.clock(first);
    first = false;
    if (out.sample_strobe) {
      const dsp::cfloat s = dsp::from_iq16(out.sample);
      acc += std::norm(s);
      ++n;
    }
  }
  return n ? acc / static_cast<double>(n) : 1.0;
}

}  // namespace

WifiNetworkSim::WifiNetworkSim(const WifiNetworkConfig& config)
    : config_(config), rng_(config.seed ^ 0xC0FFEEULL) {
  if (config_.jammer) jammer_.emplace(*config_.jammer);
}

double WifiNetworkSim::nominal_sir_db() const {
  if (!config_.jammer || config_.jammer_tx_power <= 0.0) return 300.0;
  return channel::FivePortNetwork{}.loss_db(channel::kPortJammerTx,
                                            channel::kPortAp) -
         network_.loss_db(channel::kPortClient, channel::kPortAp) +
         dsp::db_from_ratio(config_.client_tx_power / config_.jammer_tx_power);
}

void WifiNetworkSim::attach_telemetry(obs::Telemetry* telemetry) {
  if (jammer_) jammer_->attach_trace(telemetry);
}

void WifiNetworkSim::sync_jammer_to(double now) {
  if (!jammer_ || now <= jammer_time_s_) return;
  const auto gap = static_cast<std::uint64_t>((now - jammer_time_s_) * kFabricRate);
  if (gap == 0) return;
  jammer_->radio().core().fast_forward(gap);
  jammer_time_s_ += static_cast<double>(gap) / kFabricRate;
}

bool WifiNetworkSim::cca_busy() {
  if (!jammer_) return false;
  if (!jammer_->radio().core().jammer().rf_active()) return false;
  const double jam_at_client =
      config_.jammer_tx_power *
      dsp::ratio_from_db(-network_.loss_db(channel::kPortJammerTx,
                                           channel::kPortClient));
  return jam_at_client > config_.cca_threshold;
}

WifiNetworkSim::ExchangeOutcome WifiNetworkSim::exchange(
    double now, phy80211::Rate rate, const Bytes& payload, std::uint16_t seq) {
  ExchangeOutcome outcome;

  // ---- Cached per-rate client waveforms (payload is the iperf datagram,
  // identical every time; the MAC sequence number lives in the header and
  // is pinned so the waveform cache stays valid).  Resolved through the
  // process-wide cache so a sweep synthesises each distinct waveform once
  // rather than once per point.  CFO bucket 0: the rig models no client
  // carrier offset.
  auto& slot = rate_wave_[static_cast<std::size_t>(rate)];
  if (!slot) {
    MacFrame frame;
    frame.type = FrameType::kData;
    frame.src = 2;
    frame.dst = 1;
    frame.sequence = seq;
    frame.payload = payload;
    const Bytes psdu = serialize(frame);
    slot = WaveformCache::instance().get_or_build(
        psdu, rate, 0x5D, config_.client_tx_power, /*cfo_bucket=*/0);
  }
  const CachedWaveform& rc = *slot;

  const double data_dur = rc.duration_s;
  const double g_client_ap = network_.path_gain(channel::kPortClient,
                                                channel::kPortAp);
  const double g_client_jam = network_.path_gain(channel::kPortClient,
                                                 channel::kPortJammerRx);
  const double g_jam_ap = network_.path_gain(channel::kPortJammerTx,
                                             channel::kPortAp);
  const double g_jam_client = network_.path_gain(channel::kPortJammerTx,
                                                 channel::kPortClient);
  const double g_ap_client = network_.path_gain(channel::kPortAp,
                                                channel::kPortClient);

  // ---- Jammer sees the data frame and reacts.
  dsp::cvec jam_tx25;           // jammer output, 25 MSPS
  double jam_t0 = 0.0;          // wall time of jam_tx25[0]
  std::vector<radio::JamBurst> bursts;
  double jam_scale = 1.0;
  if (jammer_) {
    static const double kWgnPower = wgn_generator_power();
    jam_scale = std::sqrt(config_.jammer_tx_power / kWgnPower);

    const double capture_start = now - kLeadSamples25 / kFabricRate;
    sync_jammer_to(capture_start);
    jam_t0 = jammer_time_s_;
    const auto lead = static_cast<std::size_t>(
        std::max(0.0, (now - jammer_time_s_)) * kFabricRate);
    const std::size_t tail = 64;
    dsp::cvec capture(lead + rc.w25.size() + tail);
    dsp::NoiseSource noise(config_.jammer_noise_power, rng_.next());
    for (auto& s : capture) s = noise.sample();
    for (std::size_t k = 0; k < rc.w25.size(); ++k)
      capture[lead + k] += rc.w25[k] * static_cast<float>(g_client_jam);

    auto res = jammer_->observe(capture);
    jam_tx25 = std::move(res.tx);
    for (auto& s : jam_tx25) s *= static_cast<float>(jam_scale);
    bursts = std::move(res.bursts);
    jammer_time_s_ += static_cast<double>(capture.size()) / kFabricRate;

    // Measured-SIR bookkeeping (paper: SIR at the AP during jam bursts).
    for (const auto& b : bursts) {
      for (std::size_t k = b.start_sample;
           k < b.start_sample + b.length && k < jam_tx25.size(); ++k) {
        jam_power_at_ap_acc_ += std::norm(jam_tx25[k]) * g_jam_ap * g_jam_ap;
        ++jam_power_samples_;
      }
    }
    signal_power_at_ap_acc_ +=
        config_.client_tx_power * g_client_ap * g_client_ap;
    ++signal_power_samples_;
  }

  // Helper: superimpose the jammer's output onto a 20 MSPS reception
  // window that starts at wall time `win_start` and has `win_len` samples.
  const auto add_jam = [&](dsp::cvec& rx20, double win_start, double gain) {
    if (jam_tx25.empty() || bursts.empty()) return;
    for (const auto& b : bursts) {
      const std::size_t pad = 8;
      const std::size_t s0 = b.start_sample > pad ? b.start_sample - pad : 0;
      const std::size_t s1 =
          std::min(jam_tx25.size(), b.start_sample + b.length + pad);
      if (s1 <= s0) continue;
      const dsp::cvec slice20 = dsp::resample(
          std::span<const dsp::cfloat>(jam_tx25.data() + s0, s1 - s0),
          kFabricRate, kWifiRate);
      const double slice_t0 = jam_t0 + static_cast<double>(s0) / kFabricRate;
      const auto j0 = static_cast<long>(
          std::llround((slice_t0 - win_start) * kWifiRate));
      for (std::size_t m = 0; m < slice20.size(); ++m) {
        const long idx = j0 + static_cast<long>(m);
        if (idx < 0 || idx >= static_cast<long>(rx20.size())) continue;
        rx20[static_cast<std::size_t>(idx)] +=
            slice20[m] * static_cast<float>(gain);
      }
    }
  };

  // ---- AP reception of the data frame.
  const bool jam_overlaps_data =
      !bursts.empty();  // bursts were triggered by this very frame
  if (!jam_overlaps_data) {
    // Clean channel: at the configured noise floors the decode margin is
    // tens of dB, so cache the verdict per rate.
    auto& verdict = clean_verdict_[static_cast<std::size_t>(rate)];
    if (verdict == 0) {
      dsp::cvec rx(rc.w20.size());
      dsp::NoiseSource noise(config_.ap_noise_power, rng_.next());
      for (std::size_t k = 0; k < rx.size(); ++k)
        rx[k] = rc.w20[k] * static_cast<float>(g_client_ap) + noise.sample();
      const auto decoded = rx_.receive(rx);
      verdict = (decoded.signal_valid && parse(decoded.psdu)) ? 1 : 2;
    }
    outcome.data_ok = verdict == 1;
  } else {
    dsp::cvec rx(rc.w20.size());
    dsp::NoiseSource noise(config_.ap_noise_power, rng_.next());
    for (std::size_t k = 0; k < rx.size(); ++k)
      rx[k] = rc.w20[k] * static_cast<float>(g_client_ap) + noise.sample();
    add_jam(rx, now, g_jam_ap);
    const auto decoded = rx_.receive(rx);
    const auto frame = decoded.signal_valid ? parse(decoded.psdu) : std::nullopt;
    outcome.data_ok = frame && frame->type == FrameType::kData;
  }

  outcome.airtime_s = data_dur;
  if (!outcome.data_ok) {
    outcome.airtime_s += config_.timing.ack_timeout_s();
    return outcome;
  }

  // ---- ACK exchange.
  const double ack_start = now + data_dur + config_.timing.sifs_s;
  if (!ack_wave_) {
    MacFrame ack;
    ack.type = FrameType::kAck;
    ack.src = 1;
    ack.dst = 2;
    ack_wave_ = WaveformCache::instance().get_or_build(
        serialize(ack), config_.timing.ack_rate, 0x2B,
        config_.client_tx_power, /*cfo_bucket=*/0);
  }
  const dsp::cvec& ack20 = ack_wave_->w20;
  const double ack_dur = ack_wave_->duration_s;

  // The jammer also hears (and may react to) the ACK.
  dsp::cvec ack_jam25;
  double ack_jam_t0 = 0.0;
  std::vector<radio::JamBurst> ack_bursts;
  if (jammer_) {
    // Cached alongside w20 — this used to be a fresh polyphase resample
    // on every single exchange.
    const dsp::cvec& ack25 = ack_wave_->w25;
    const double capture_start = ack_start - 64 / kFabricRate;
    sync_jammer_to(capture_start);
    ack_jam_t0 = jammer_time_s_;
    const auto lead = static_cast<std::size_t>(
        std::max(0.0, (ack_start - jammer_time_s_)) * kFabricRate);
    dsp::cvec capture(lead + ack25.size() + 32);
    dsp::NoiseSource noise(config_.jammer_noise_power, rng_.next());
    for (auto& s : capture) s = noise.sample();
    const double g_ap_jam =
        network_.path_gain(channel::kPortAp, channel::kPortJammerRx);
    for (std::size_t k = 0; k < ack25.size(); ++k)
      capture[lead + k] += ack25[k] * static_cast<float>(g_ap_jam);
    auto res = jammer_->observe(capture);
    ack_jam25 = std::move(res.tx);
    for (auto& s : ack_jam25) s *= static_cast<float>(jam_scale);
    ack_bursts = std::move(res.bursts);
    jammer_time_s_ += static_cast<double>(capture.size()) / kFabricRate;
  }

  const bool jam_overlaps_ack = !ack_bursts.empty();
  if (!jam_overlaps_ack) {
    int& ack_clean = ack_clean_verdict_;
    if (ack_clean == 0) {
      dsp::cvec rx(ack20.size());
      dsp::NoiseSource noise(config_.client_noise_power, rng_.next());
      for (std::size_t k = 0; k < rx.size(); ++k)
        rx[k] = ack20[k] * static_cast<float>(g_ap_client) + noise.sample();
      const auto decoded = rx_.receive(rx);
      ack_clean = (decoded.signal_valid && parse(decoded.psdu)) ? 1 : 2;
    }
    outcome.ack_ok = ack_clean == 1;
  } else {
    dsp::cvec rx(ack20.size());
    dsp::NoiseSource noise(config_.client_noise_power, rng_.next());
    for (std::size_t k = 0; k < rx.size(); ++k)
      rx[k] = ack20[k] * static_cast<float>(g_ap_client) + noise.sample();
    // Jam from the ACK-window capture.
    const auto saved_tx = std::move(jam_tx25);
    const auto saved_bursts = std::move(bursts);
    const auto saved_t0 = jam_t0;
    jam_tx25 = std::move(ack_jam25);
    bursts = std::move(ack_bursts);
    jam_t0 = ack_jam_t0;
    add_jam(rx, ack_start, g_jam_client);
    jam_tx25 = std::move(saved_tx);
    bursts = std::move(saved_bursts);
    jam_t0 = saved_t0;
    const auto decoded = rx_.receive(rx);
    const auto frame = decoded.signal_valid ? parse(decoded.psdu) : std::nullopt;
    outcome.ack_ok = frame && frame->type == FrameType::kAck;
  }

  outcome.airtime_s = data_dur + config_.timing.sifs_s + ack_dur;
  if (!outcome.ack_ok)
    outcome.airtime_s = data_dur + config_.timing.ack_timeout_s();
  return outcome;
}

WifiRunResult WifiNetworkSim::run() {
  WifiRunResult result;
  IperfSource source(config_.iperf);
  Backoff backoff(config_.timing, config_.seed ^ 0xB0FFULL);
  ArfRateControl arf(config_.initial_rate);
  const Bytes payload(config_.iperf.datagram_bytes, 0x42);

  double t = 0.0;
  std::size_t queued = 0;
  unsigned attempt = 0;
  double rate_acc = 0.0;
  std::uint64_t rate_samples = 0;

  // Blocking-socket semantics: arrivals are admitted only while the client
  // queue has room; a full queue paces the source instead of dropping.
  const auto admit = [&](double until) {
    while (queued < config_.iperf.queue_limit &&
           source.next_arrival_s() <= until) {
      source.pop();
      ++result.report.datagrams_offered;
      ++queued;
    }
  };

  while (t < config_.iperf.duration_s) {
    admit(t);
    if (queued == 0) {
      const double next = source.next_arrival_s();
      if (next > config_.iperf.duration_s) break;
      t = next;
      continue;
    }

    // CCA: defer while the medium reads busy at the client.
    double defer_start = t;
    bool starved = false;
    sync_jammer_to(t);
    while (cca_busy()) {
      ++result.cca_busy_defers;
      t += config_.timing.slot_s;
      sync_jammer_to(t);
      if (t - defer_start > config_.cca_starvation_s) {
        starved = true;
        break;
      }
    }
    if (starved) {
      --queued;
      ++result.cca_starved_drops;
      attempt = 0;
      backoff.on_success_or_drop();
      continue;
    }

    t += config_.timing.difs_s() + backoff.draw();
    const phy80211::Rate rate = arf.rate();
    rate_acc += phy80211::rate_params(rate).mbps;
    ++rate_samples;

    if (attempt == 0) ++result.report.datagrams_sent;
    else ++result.retries;
    ++result.data_frames_sent;

    const auto outcome = exchange(t, rate, payload, 0);
    t += outcome.airtime_s;

    if (outcome.data_ok) ++result.data_frames_delivered;
    if (outcome.data_ok && !outcome.ack_ok) ++result.acks_lost;

    if (outcome.data_ok && outcome.ack_ok) {
      ++result.report.datagrams_received;
      arf.report_success();
      backoff.on_success_or_drop();
      --queued;
      attempt = 0;
    } else {
      arf.report_failure();
      backoff.on_failure();
      if (++attempt > config_.timing.retry_limit) {
        --queued;
        attempt = 0;
        backoff.on_success_or_drop();
      }
    }
  }

  // Datagrams still sitting in the queue when time expires were never put
  // on the wire — they don't count against the server's loss report.
  result.report.datagrams_offered -= queued;

  result.report.duration_s = config_.iperf.duration_s;
  if (jammer_) result.jam_triggers = jammer_->feedback().jam_triggers;
  if (jam_power_samples_ > 0 && signal_power_samples_ > 0) {
    const double jam_p =
        jam_power_at_ap_acc_ / static_cast<double>(jam_power_samples_);
    const double sig_p =
        signal_power_at_ap_acc_ / static_cast<double>(signal_power_samples_);
    result.measured_sir_db = dsp::db_from_ratio(sig_p / jam_p);
  } else {
    result.measured_sir_db = nominal_sir_db();
  }
  result.mean_tx_rate_mbps =
      rate_samples ? rate_acc / static_cast<double>(rate_samples) : 0.0;
  return result;
}

}  // namespace rjf::net
