// The paper's full WiFi validation rig (Figs. 9-11): a Linksys-style AP on
// port 1 of the 5-port network, a wireless client on port 2, and the
// reactive jammer's TX/RX on ports 4/5, all on WiFi channel 14 (2.484 GHz).
//
// The client runs an iperf UDP upload to the AP through an event-driven
// 802.11 DCF MAC with ARF rate fallback. Every frame exchange is simulated
// at the SAMPLE level: the client's 20 MSPS waveform is resampled into the
// jammer's 25 MSPS receive chain, the actual FPGA-core model detects and
// reacts, its emitted jamming waveform is resampled back onto the AP's
// (and client's) reception through the measured insertion losses, and the
// full 802.11 receiver decodes what survives. Air time between frames is
// fast-forwarded, which is exact for jam scheduling.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "channel/five_port.h"
#include "core/reactive_jammer.h"
#include "net/arf.h"
#include "net/dcf.h"
#include "net/iperf.h"
#include "net/mac_frame.h"
#include "net/waveform_cache.h"
#include "phy80211/receiver.h"

namespace rjf::obs {
class Telemetry;
}  // namespace rjf::obs

namespace rjf::net {

struct WifiNetworkConfig {
  IperfConfig iperf;
  DcfTiming timing;

  /// Jamming personality; nullopt = jammer absent ("Jammer Off" curve).
  std::optional<core::JammerConfig> jammer;

  /// Mean jamming power injected at port 4 while the jammer transmits
  /// (set through "jammer TX power as well as stacked attenuators").
  double jammer_tx_power = 0.0;

  double client_tx_power = 1.0;   // mean power injected at port 2
  double ap_noise_power = 1e-9;   // receiver noise floors
  double client_noise_power = 1e-9;
  double jammer_noise_power = 1e-9;

  /// CCA energy-detect threshold at the client (interference power above
  /// which the medium reads busy and transmission defers).
  double cca_threshold = 1.3e-8;

  /// Give up on a datagram after deferring this long to a busy medium.
  double cca_starvation_s = 20e-3;

  phy80211::Rate initial_rate = phy80211::Rate::kMbps54;
  std::uint64_t seed = 1;
};

struct WifiRunResult {
  IperfReport report;
  double measured_sir_db = 300.0;  // at the AP, during jam bursts
  std::uint64_t data_frames_sent = 0;
  std::uint64_t data_frames_delivered = 0;
  std::uint64_t acks_lost = 0;
  std::uint64_t retries = 0;
  std::uint64_t cca_busy_defers = 0;
  std::uint64_t cca_starved_drops = 0;
  std::uint64_t jam_triggers = 0;
  double mean_tx_rate_mbps = 0.0;  // average ARF operating point
};

class WifiNetworkSim {
 public:
  explicit WifiNetworkSim(const WifiNetworkConfig& config);

  /// Run the full iperf test and report what iperf would print.
  [[nodiscard]] WifiRunResult run();

  /// Analytic SIR at the AP for this configuration (paper x-axis).
  [[nodiscard]] double nominal_sir_db() const;

  /// Attach a telemetry bundle to the embedded jammer (no-op when the rig
  /// runs without one). Safe to call before run(); the exported trace then
  /// covers the whole iperf test.
  void attach_telemetry(obs::Telemetry* telemetry);

 private:
  struct ExchangeOutcome {
    bool data_ok = false;
    bool ack_ok = false;
    double airtime_s = 0.0;
  };

  /// Simulate one data+ACK exchange starting at `now` (seconds).
  ExchangeOutcome exchange(double now, phy80211::Rate rate,
                           const Bytes& psdu_payload, std::uint16_t seq);

  /// Move the jammer's sample clock to wall time `now`.
  void sync_jammer_to(double now);

  [[nodiscard]] bool cca_busy();

  WifiNetworkConfig config_;
  channel::FivePortNetwork network_;
  std::optional<core::ReactiveJammer> jammer_;
  double jammer_time_s_ = 0.0;  // wall time of the jammer's sample clock
  dsp::Xoshiro256 rng_;
  phy80211::Receiver rx_;

  // Waveform handles resolved through the process-wide WaveformCache.
  // The cached samples are a pure function of (payload, rate, seed,
  // power) and consume no rng_ draws, so sharing them across sims and
  // threads is determinism-safe; the per-rate array just avoids a cache
  // lookup per exchange.
  std::array<std::shared_ptr<const CachedWaveform>, 8> rate_wave_;
  std::shared_ptr<const CachedWaveform> ack_wave_;

  // Clean-decode verdict caches. These MUST be members, not thread_local
  // statics: a cold verdict consumes rng_.next() draws, so cache warmth
  // inherited from another sim on the same worker thread would
  // desynchronise this sim's RNG stream and break the sweep engine's
  // any-thread-count determinism guarantee.
  std::array<int, 8> clean_verdict_{};  // per rate: 0 unknown 1 ok 2 bad
  int ack_clean_verdict_ = 0;

  // Jam-burst power bookkeeping for the measured-SIR output.
  double jam_power_at_ap_acc_ = 0.0;
  std::uint64_t jam_power_samples_ = 0;
  double signal_power_at_ap_acc_ = 0.0;
  std::uint64_t signal_power_samples_ = 0;
};

}  // namespace rjf::net
