#include "net/waveform_cache.h"

#include <bit>
#include <tuple>

#include "dsp/db.h"
#include "obs/metrics.h"
#include "dsp/resampler.h"
#include "phy80211/ofdm.h"
#include "phy80211/transmitter.h"

namespace rjf::net {
namespace {

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::shared_ptr<const CachedWaveform> build(
    std::span<const std::uint8_t> psdu, phy80211::Rate rate,
    std::uint8_t scrambler_seed, double mean_power) {
  auto wf = std::make_shared<CachedWaveform>();
  phy80211::Transmitter tx({rate, scrambler_seed});
  wf->w20 = tx.transmit(psdu);
  dsp::set_mean_power(std::span<dsp::cfloat>(wf->w20), mean_power);
  wf->w25 =
      dsp::resample(wf->w20, phy80211::kSampleRateHz, kJammerSampleRateHz);
  wf->duration_s =
      static_cast<double>(wf->w20.size()) / phy80211::kSampleRateHz;
  return wf;
}

}  // namespace

bool WaveformCache::Key::operator<(const Key& o) const noexcept {
  return std::tie(payload_hash, rate, scrambler_seed, power_bits, cfo_bucket,
                  psdu) < std::tie(o.payload_hash, o.rate, o.scrambler_seed,
                                   o.power_bits, o.cfo_bucket, o.psdu);
}

WaveformCache& WaveformCache::instance() {
  static WaveformCache cache;
  return cache;
}

std::shared_ptr<const CachedWaveform> WaveformCache::get_or_build(
    std::span<const std::uint8_t> psdu, phy80211::Rate rate,
    std::uint8_t scrambler_seed, double mean_power, std::int32_t cfo_bucket) {
  Key key;
  key.payload_hash = fnv1a(psdu);
  key.rate = static_cast<std::uint8_t>(rate);
  key.scrambler_seed = scrambler_seed;
  key.power_bits = std::bit_cast<std::uint64_t>(mean_power);
  key.cfo_bucket = cfo_bucket;
  key.psdu.assign(psdu.begin(), psdu.end());

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_) {
      // Fall through to an uncached build below.
    } else if (const auto it = entries_.find(key); it != entries_.end()) {
      ++hits_;
      return it->second;
    } else {
      ++misses_;
    }
  }

  // Build outside the lock: the value is a pure function of the key, so a
  // concurrent duplicate build produces bit-identical samples and either
  // copy may win the insert.
  auto wf = build(psdu, rate, scrambler_seed, mean_power);

  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return wf;
  const auto [it, inserted] = entries_.try_emplace(std::move(key), wf);
  if (inserted) {
    insertion_order_.push_back(it->first);
    while (entries_.size() > kMaxEntries) {
      entries_.erase(insertion_order_.front());
      insertion_order_.pop_front();
      ++evictions_;
    }
  }
  return it->second;
}

void WaveformCache::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = enabled;
}

bool WaveformCache::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

void WaveformCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  insertion_order_.clear();
}

void WaveformCache::reset_counters() {
  std::lock_guard<std::mutex> lock(mu_);
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
}

std::size_t WaveformCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::uint64_t WaveformCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t WaveformCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::uint64_t WaveformCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

void WaveformCache::export_metrics(obs::MetricsRegistry& metrics) const {
  std::lock_guard<std::mutex> lock(mu_);
  metrics.add("cache.waveform_hits", hits_);
  metrics.add("cache.waveform_misses", misses_);
  metrics.add("cache.waveform_evictions", evictions_);
  metrics.set_gauge("cache.waveform_entries",
                    static_cast<double>(entries_.size()));
}

}  // namespace rjf::net
