// Process-wide cache of synthesised 802.11 waveforms for the sweep rig.
//
// A SIR sweep runs many WifiNetworkSim points that all transmit the same
// iperf datagram (and the same ACK) at the same handful of rates; each
// point used to re-run the full transmit chain — scramble, convolve,
// interleave, map, 64-point IFFT per symbol — plus a 20→25 MSPS polyphase
// resample, only to produce byte-identical samples.  The cached value is
// a pure function of the key (no RNG is consumed while building it), so
// sharing it across sims and worker threads cannot perturb any sim's
// random stream: the sweep engine's bit-identical-at-any-thread-count
// guarantee holds with the cache on or off.  Per-sim DECODE-VERDICT
// caches do consume rng_ draws and must stay inside WifiNetworkSim.
//
// Keyed by (payload hash + bytes, rate, scrambler seed, mean power, CFO
// bucket).  The CFO bucket quantises any client carrier-frequency offset
// the rig may model; today's rig applies none, so callers pass bucket 0,
// but distinct offsets must never alias to one waveform.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "dsp/types.h"
#include "phy80211/rates.h"

namespace rjf::obs {
class MetricsRegistry;
}  // namespace rjf::obs

namespace rjf::net {

/// Jammer-domain sample rate the cached w25 is resampled to (the fabric
/// ADC clock of the paper's rig).
inline constexpr double kJammerSampleRateHz = 25e6;

struct CachedWaveform {
  dsp::cvec w20;        // client-domain waveform at the requested mean power
  dsp::cvec w25;        // same waveform resampled to kJammerSampleRateHz
  double duration_s = 0.0;  // w20 duration at phy80211::kSampleRateHz
};

class WaveformCache {
 public:
  static WaveformCache& instance();

  /// Return the cached waveform for the key, building (and storing) it on
  /// a miss.  With the cache disabled this always builds a fresh value
  /// and leaves the store untouched — results are identical either way.
  [[nodiscard]] std::shared_ptr<const CachedWaveform> get_or_build(
      std::span<const std::uint8_t> psdu, phy80211::Rate rate,
      std::uint8_t scrambler_seed, double mean_power,
      std::int32_t cfo_bucket);

  void set_enabled(bool enabled);
  [[nodiscard]] bool enabled() const;

  /// Drop every entry. Counters survive: a test or rig that clears the
  /// store between phases keeps its cumulative hit/miss/eviction history
  /// (an earlier clear() silently zeroed them, which made
  /// export_metrics() after a mid-run clear under-report). Call
  /// reset_counters() explicitly to start a fresh measurement window.
  void clear();

  /// Zero the hit/miss/eviction counters without touching the entries.
  void reset_counters();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  /// Entries displaced oldest-first after the cap was reached.
  [[nodiscard]] std::uint64_t evictions() const;

  /// Snapshot the counters into `metrics` as cache.waveform_hits / _misses /
  /// _evictions plus the cache.waveform_entries gauge. Hit/miss splits
  /// depend on cross-thread build interleaving, so campaign exports treat
  /// these as diagnostics outside the bit-identity guarantee (the cached
  /// samples themselves are deterministic; see the class comment).
  void export_metrics(obs::MetricsRegistry& metrics) const;

 private:
  WaveformCache() = default;

  // Full key: the payload hash screens fast, the remaining fields (and the
  // payload bytes themselves) guarantee a hash collision can never hand a
  // sim the wrong waveform.
  struct Key {
    std::uint64_t payload_hash = 0;
    std::uint8_t rate = 0;
    std::uint8_t scrambler_seed = 0;
    std::uint64_t power_bits = 0;  // bit pattern of the mean-power double
    std::int32_t cfo_bucket = 0;
    std::vector<std::uint8_t> psdu;
    bool operator<(const Key& o) const noexcept;
  };

  // Bounded FIFO: entries evict oldest-first once the cap is reached;
  // shared_ptr keeps evicted waveforms alive for sims still holding them.
  static constexpr std::size_t kMaxEntries = 64;

  mutable std::mutex mu_;
  std::map<Key, std::shared_ptr<const CachedWaveform>> entries_;
  std::deque<Key> insertion_order_;
  bool enabled_ = true;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace rjf::net
