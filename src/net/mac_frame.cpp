#include "net/mac_frame.h"

#include "dsp/crc32.h"

namespace rjf::net {
namespace {

constexpr std::size_t kDataHeader = 24;
constexpr std::size_t kAckHeader = 10;
constexpr std::size_t kFcsLen = 4;

void put_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

std::uint16_t get_u16(const Bytes& in, std::size_t at) {
  return static_cast<std::uint16_t>(in[at] | (in[at + 1] << 8));
}

}  // namespace

Bytes serialize(const MacFrame& frame) {
  Bytes out;
  const bool is_data = frame.type == FrameType::kData;
  out.reserve((is_data ? kDataHeader : kAckHeader) + frame.payload.size() +
              kFcsLen);
  out.push_back(static_cast<std::uint8_t>(frame.type));
  out.push_back(0);  // flags
  put_u16(out, 0);   // duration
  put_u16(out, frame.dst);
  put_u16(out, frame.src);
  if (is_data) {
    // Pad out to the 24-octet header of a real data frame (addr3 + seq ctl
    // + addr padding kept simple).
    put_u16(out, frame.sequence);
    out.resize(kDataHeader, 0);
    out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  } else {
    out.resize(kAckHeader, 0);
  }
  const std::uint32_t fcs = dsp::crc32(out);
  for (int b = 0; b < 4; ++b)
    out.push_back(static_cast<std::uint8_t>((fcs >> (8 * b)) & 0xFF));
  return out;
}

std::optional<MacFrame> parse(const Bytes& psdu) {
  if (psdu.size() < kAckHeader + kFcsLen) return std::nullopt;
  const std::size_t body = psdu.size() - kFcsLen;
  std::uint32_t fcs = 0;
  for (int b = 0; b < 4; ++b)
    fcs |= static_cast<std::uint32_t>(psdu[body + b]) << (8 * b);
  if (fcs != dsp::crc32(std::span<const std::uint8_t>(psdu.data(), body)))
    return std::nullopt;

  MacFrame frame;
  frame.type = static_cast<FrameType>(psdu[0]);
  if (frame.type != FrameType::kData && frame.type != FrameType::kAck)
    return std::nullopt;
  frame.dst = get_u16(psdu, 4);
  frame.src = get_u16(psdu, 6);
  if (frame.type == FrameType::kData) {
    if (psdu.size() < kDataHeader + kFcsLen) return std::nullopt;
    frame.sequence = get_u16(psdu, 8);
    frame.payload.assign(psdu.begin() + kDataHeader, psdu.begin() + body);
  }
  return frame;
}

std::size_t data_psdu_size(std::size_t payload_bytes) noexcept {
  return kDataHeader + payload_bytes + kFcsLen;
}

std::size_t ack_psdu_size() noexcept { return kAckHeader + kFcsLen; }

}  // namespace rjf::net
