// Jamming countermeasure: link-layer jamming diagnosis in the spirit of
// Xu et al. (MobiHoc'05) consistency checks. The paper's conclusion pitches
// the testbed for "studying and developing countermeasures"; this module is
// that study's first tool. It classifies a measurement window using the
// same signals a real AP/client has: delivery ratio, carrier-sense
// busyness, and the (apparent) link quality.
//
// The interesting case is exactly the paper's: a reactive jammer leaves
// carrier sense clean and RSSI high ("the access point ... always reported
// an 'excellent' link condition") while PDR collapses — inconsistent, and
// therefore detectable, but only by correlating the two observations.
#pragma once

#include "net/wifi_network.h"

namespace rjf::net {

enum class JammingVerdict {
  kHealthy,            // consistent: good PDR
  kCongestedOrWeak,    // low PDR, but medium busy or link weak: not jamming
  kContinuousJamming,  // medium busy nearly always + starvation
  kReactiveJamming,    // PDR collapse with clean carrier and strong signal
  kNoTraffic,          // zero frames attempted and no starvation: no evidence
};

struct LinkObservation {
  double pdr = 1.0;             // delivered / attempted data frames
  double cca_busy_fraction = 0.0;  // fraction of access attempts deferred
  double snr_db = 40.0;         // apparent link SNR (preamble RSSI based)
  std::uint64_t frames_attempted = 0;
};

/// Classify one observation window.
[[nodiscard]] JammingVerdict diagnose(const LinkObservation& obs) noexcept;

/// Build an observation from a finished simulation run (what an AP-side
/// monitor would have measured during the test).
[[nodiscard]] LinkObservation observe(const WifiRunResult& result,
                                      const WifiNetworkConfig& config) noexcept;

[[nodiscard]] const char* verdict_name(JammingVerdict verdict) noexcept;

}  // namespace rjf::net
