// Auto Rate Fallback — the rate-adaptation behaviour the paper leaves
// unconstrained ("rate back-offs are ... considered as inherent parts of
// ... 802.11 link characteristics"). Classic ARF: drop one rate after two
// consecutive transmission failures, probe one rate up after ten
// consecutive successes.
#pragma once

#include "phy80211/rates.h"

namespace rjf::net {

class ArfRateControl {
 public:
  explicit ArfRateControl(phy80211::Rate initial = phy80211::Rate::kMbps54,
                          unsigned down_after = 2,
                          unsigned up_after = 10) noexcept;

  [[nodiscard]] phy80211::Rate rate() const noexcept;

  void report_success() noexcept;
  void report_failure() noexcept;

 private:
  int index_;
  unsigned down_after_;
  unsigned up_after_;
  unsigned consecutive_failures_ = 0;
  unsigned consecutive_successes_ = 0;
};

}  // namespace rjf::net
