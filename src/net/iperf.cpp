#include "net/iperf.h"

#include <cmath>
#include <limits>

namespace rjf::net {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

// Datagram n is offered at t = n * interval; real iperf keeps sending
// through the whole test window, so arrivals span [0, duration] INCLUSIVE
// of the final interval boundary: floor(duration/interval) + 1 datagrams
// (the +1 is the one at t = 0 that a bare floor() quotient drops).
std::uint64_t datagram_count(const IperfConfig& config,
                             double interval_s) noexcept {
  if (!(interval_s > 0.0) || !std::isfinite(interval_s) ||
      config.duration_s < 0.0)
    return 0;
  return static_cast<std::uint64_t>(
             std::floor(config.duration_s / interval_s)) +
         1;
}

}  // namespace

IperfSource::IperfSource(const IperfConfig& config) noexcept
    : config_(config),
      // Guard degenerate configs (-b 0, zero-byte datagrams): an infinite
      // interval offers nothing rather than dividing by zero.
      interval_s_(config.offered_mbps > 0.0 && config.datagram_bytes > 0
                      ? static_cast<double>(config.datagram_bytes) * 8.0 /
                            (config.offered_mbps * 1e6)
                      : kInfinity),
      total_(datagram_count(config, interval_s_)) {}

double IperfSource::next_arrival_s() const noexcept {
  if (produced_ >= total_) return kInfinity;
  return static_cast<double>(produced_) * interval_s_;
}

void IperfSource::pop() noexcept { ++produced_; }

}  // namespace rjf::net
