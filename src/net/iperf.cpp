#include "net/iperf.h"

#include <cmath>
#include <limits>

namespace rjf::net {

IperfSource::IperfSource(const IperfConfig& config) noexcept
    : config_(config),
      interval_s_(static_cast<double>(config.datagram_bytes) * 8.0 /
                  (config.offered_mbps * 1e6)),
      total_(static_cast<std::uint64_t>(
          std::floor(config.duration_s / interval_s_))) {}

double IperfSource::next_arrival_s() const noexcept {
  if (produced_ >= total_) return std::numeric_limits<double>::infinity();
  return static_cast<double>(produced_) * interval_s_;
}

void IperfSource::pop() noexcept { ++produced_; }

}  // namespace rjf::net
