// 802.11 DCF timing constants and backoff machinery (ERP/802.11g short
// slot), plus the CCA model.
//
// CCA is load-bearing for the paper's headline contrast: a continuous
// jammer keeps the medium "busy" at the client (energy detect), starving
// transmission entirely at low jam power, while a reactive jammer is off
// the air between frames so "the access point had no knowledge of the
// jammer's presence and always reported an 'excellent' link condition".
#pragma once

#include <cstdint>

#include "dsp/rng.h"
#include "phy80211/rates.h"

namespace rjf::net {

struct DcfTiming {
  double slot_s = 9e-6;    // ERP short slot
  double sifs_s = 10e-6;
  unsigned cw_min = 15;
  unsigned cw_max = 1023;
  unsigned retry_limit = 7;
  phy80211::Rate ack_rate = phy80211::Rate::kMbps24;

  [[nodiscard]] double difs_s() const noexcept { return sifs_s + 2.0 * slot_s; }

  /// ACK timeout measured from the end of the data frame.
  [[nodiscard]] double ack_timeout_s() const noexcept {
    return sifs_s + slot_s + 60e-6;
  }
};

/// Binary exponential backoff state for one station.
class Backoff {
 public:
  Backoff(const DcfTiming& timing, std::uint64_t seed) noexcept
      : timing_(timing), rng_(seed), cw_(timing.cw_min) {}

  /// Draw the backoff duration (seconds) for the current contention window.
  [[nodiscard]] double draw() noexcept {
    return static_cast<double>(rng_.uniform_int(cw_ + 1)) * timing_.slot_s;
  }

  void on_failure() noexcept {
    cw_ = std::min(cw_ * 2 + 1, timing_.cw_max);
  }
  void on_success_or_drop() noexcept { cw_ = timing_.cw_min; }

  [[nodiscard]] unsigned cw() const noexcept { return cw_; }

 private:
  DcfTiming timing_;
  dsp::Xoshiro256 rng_;
  unsigned cw_;
};

}  // namespace rjf::net
