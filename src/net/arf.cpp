#include "net/arf.h"

#include <algorithm>

namespace rjf::net {

ArfRateControl::ArfRateControl(phy80211::Rate initial, unsigned down_after,
                               unsigned up_after) noexcept
    : index_(static_cast<int>(initial)),
      down_after_(down_after),
      up_after_(up_after) {}

phy80211::Rate ArfRateControl::rate() const noexcept {
  return static_cast<phy80211::Rate>(index_);
}

void ArfRateControl::report_success() noexcept {
  consecutive_failures_ = 0;
  if (++consecutive_successes_ >= up_after_) {
    consecutive_successes_ = 0;
    index_ = std::min(index_ + 1, 7);
  }
}

void ArfRateControl::report_failure() noexcept {
  consecutive_successes_ = 0;
  if (++consecutive_failures_ >= down_after_) {
    consecutive_failures_ = 0;
    index_ = std::max(index_ - 1, 0);
  }
}

}  // namespace rjf::net
