// Minimal 802.11 MAC framing: data frames carrying UDP datagrams and ACK
// control frames, with the real CRC-32 FCS so the PHY's decoded bytes are
// integrity-checked exactly the way the hardware does it.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace rjf::net {

using Bytes = std::vector<std::uint8_t>;

enum class FrameType : std::uint8_t { kData = 0x20, kAck = 0xD4 };

struct MacFrame {
  FrameType type = FrameType::kData;
  std::uint16_t src = 0;
  std::uint16_t dst = 0;
  std::uint16_t sequence = 0;
  Bytes payload;  // UDP datagram for data frames, empty for ACKs
};

/// Serialise to a PSDU: header + payload + FCS (CRC-32 over all preceding
/// octets). Data header is 24 octets like the real thing; ACKs use 10.
[[nodiscard]] Bytes serialize(const MacFrame& frame);

/// Parse and FCS-check a decoded PSDU; nullopt on CRC failure or truncation.
[[nodiscard]] std::optional<MacFrame> parse(const Bytes& psdu);

/// PSDU size for a data frame with `payload_bytes` of payload.
[[nodiscard]] std::size_t data_psdu_size(std::size_t payload_bytes) noexcept;

/// PSDU size of an ACK frame.
[[nodiscard]] std::size_t ack_psdu_size() noexcept;

}  // namespace rjf::net
