#include "secure/friendly.h"

#include <algorithm>

#include "dsp/db.h"
#include "dsp/noise.h"

namespace rjf::secure {

dsp::cvec FriendlyJammer::waveform(std::uint64_t epoch,
                                   std::size_t length) const {
  // splitmix-style epoch whitening keeps epochs statistically independent.
  std::uint64_t seed = key_ ^ (epoch * 0x9E3779B97F4A7C15ULL + 0x1234567ULL);
  dsp::NoiseSource source(power_, seed);
  return source.block(length);
}

dsp::cvec cancel_friendly_jamming(std::span<const dsp::cfloat> rx,
                                  const FriendlyJammer& jammer,
                                  std::uint64_t epoch) {
  const dsp::cvec reference = jammer.waveform(epoch, rx.size());

  // Estimate the jammer->receiver complex gain by correlating the received
  // stream with the known reference (the signal and thermal noise are
  // uncorrelated with it, so the estimate converges with length).
  dsp::cfloat num{};
  double den = 0.0;
  for (std::size_t k = 0; k < rx.size(); ++k) {
    num += rx[k] * std::conj(reference[k]);
    den += std::norm(reference[k]);
  }
  const dsp::cfloat gain = den > 0.0 ? num / static_cast<float>(den)
                                     : dsp::cfloat{};

  dsp::cvec cleaned(rx.size());
  for (std::size_t k = 0; k < rx.size(); ++k)
    cleaned[k] = rx[k] - gain * reference[k];
  return cleaned;
}

double cancellation_residual(std::span<const dsp::cfloat> rx,
                             std::span<const dsp::cfloat> cleaned,
                             std::span<const dsp::cfloat> signal) {
  // Interference+noise power before and after, with the signal removed.
  double before = 0.0, after = 0.0;
  const std::size_t n = std::min({rx.size(), cleaned.size(), signal.size()});
  for (std::size_t k = 0; k < n; ++k) {
    before += std::norm(rx[k] - signal[k]);
    after += std::norm(cleaned[k] - signal[k]);
  }
  return before > 0.0 ? after / before : 0.0;
}

}  // namespace rjf::secure
