// iJam-style self-jamming secrecy scheme (Gollakota & Katabi), one of the
// "jamming-based secure communication schemes" the paper names as a target
// application of the platform (§1).
//
// The transmitter sends every OFDM symbol TWICE. The intended receiver,
// running full duplex, jams exactly one copy of each sample pair according
// to a secret mask, then reconstructs the clean stream from the copies it
// did not jam. An eavesdropper cannot tell which copy of a sample is clean
// and so decodes through the jamming about half the time.
//
// The original prototype had to pad the PHY header with dummy samples to
// cover the USRP's detect-to-jam turnaround; this implementation rides the
// framework's 80 ns fabric response instead, which is the paper's point.
#pragma once

#include <cstdint>
#include <vector>

#include "dsp/types.h"

namespace rjf::secure {

/// Duplicate a waveform symbol-pair-wise: out = s0 s0' s1 s1' ... where
/// each block of `symbol_len` samples is repeated immediately.
[[nodiscard]] dsp::cvec ijam_duplicate(std::span<const dsp::cfloat> waveform,
                                       std::size_t symbol_len);

/// The receiver's secret per-sample mask: true = jam the FIRST copy of the
/// sample (the clean one is the second), false = jam the second.
[[nodiscard]] std::vector<bool> ijam_mask(std::size_t symbol_len,
                                          std::size_t num_symbols,
                                          std::uint64_t key);

/// Build the receiver's self-jamming waveform, aligned with the duplicated
/// transmission: jamming energy of power `jam_power` lands on whichever
/// copy the mask selects for each sample.
[[nodiscard]] dsp::cvec ijam_jamming_waveform(const std::vector<bool>& mask,
                                              std::size_t symbol_len,
                                              double jam_power,
                                              std::uint64_t noise_seed);

/// Intended receiver: knows the mask, picks the clean copy of each sample.
[[nodiscard]] dsp::cvec ijam_reconstruct(std::span<const dsp::cfloat> rx,
                                         const std::vector<bool>& mask,
                                         std::size_t symbol_len);

/// Eavesdropper strategies for picking copies without the mask.
enum class EveStrategy {
  kFirstCopy,   // always take the first copy
  kRandom,      // guess per sample
  kMinPower,    // pick the lower-power copy (energy heuristic)
};

[[nodiscard]] dsp::cvec ijam_eavesdrop(std::span<const dsp::cfloat> rx,
                                       std::size_t symbol_len,
                                       EveStrategy strategy,
                                       std::uint64_t seed);

}  // namespace rjf::secure
