#include "secure/ijam.h"

#include "dsp/noise.h"
#include "dsp/rng.h"

namespace rjf::secure {

dsp::cvec ijam_duplicate(std::span<const dsp::cfloat> waveform,
                         std::size_t symbol_len) {
  dsp::cvec out;
  out.reserve(waveform.size() * 2);
  for (std::size_t at = 0; at < waveform.size(); at += symbol_len) {
    const std::size_t len = std::min(symbol_len, waveform.size() - at);
    for (int copy = 0; copy < 2; ++copy)
      out.insert(out.end(), waveform.begin() + static_cast<long>(at),
                 waveform.begin() + static_cast<long>(at + len));
  }
  return out;
}

std::vector<bool> ijam_mask(std::size_t symbol_len, std::size_t num_symbols,
                            std::uint64_t key) {
  dsp::Xoshiro256 rng(key);
  std::vector<bool> mask(symbol_len * num_symbols);
  for (std::size_t k = 0; k < mask.size(); ++k) mask[k] = rng.next() & 1u;
  return mask;
}

dsp::cvec ijam_jamming_waveform(const std::vector<bool>& mask,
                                std::size_t symbol_len, double jam_power,
                                std::uint64_t noise_seed) {
  dsp::NoiseSource noise(jam_power, noise_seed);
  dsp::cvec out(mask.size() * 2, dsp::cfloat{});
  for (std::size_t k = 0; k < mask.size(); ++k) {
    const std::size_t symbol = k / symbol_len;
    const std::size_t offset = k % symbol_len;
    const std::size_t first = symbol * 2 * symbol_len + offset;
    const std::size_t second = first + symbol_len;
    out[mask[k] ? first : second] = noise.sample();
  }
  return out;
}

dsp::cvec ijam_reconstruct(std::span<const dsp::cfloat> rx,
                           const std::vector<bool>& mask,
                           std::size_t symbol_len) {
  dsp::cvec out(mask.size());
  for (std::size_t k = 0; k < mask.size(); ++k) {
    const std::size_t symbol = k / symbol_len;
    const std::size_t offset = k % symbol_len;
    const std::size_t first = symbol * 2 * symbol_len + offset;
    const std::size_t second = first + symbol_len;
    if (second >= rx.size()) break;
    // The mask says which copy the receiver jammed; take the other.
    out[k] = mask[k] ? rx[second] : rx[first];
  }
  return out;
}

dsp::cvec ijam_eavesdrop(std::span<const dsp::cfloat> rx,
                         std::size_t symbol_len, EveStrategy strategy,
                         std::uint64_t seed) {
  dsp::Xoshiro256 rng(seed);
  const std::size_t num_samples = rx.size() / 2;
  dsp::cvec out(num_samples);
  for (std::size_t k = 0; k < num_samples; ++k) {
    const std::size_t symbol = k / symbol_len;
    const std::size_t offset = k % symbol_len;
    const std::size_t first = symbol * 2 * symbol_len + offset;
    const std::size_t second = first + symbol_len;
    if (second >= rx.size()) break;
    switch (strategy) {
      case EveStrategy::kFirstCopy:
        out[k] = rx[first];
        break;
      case EveStrategy::kRandom:
        out[k] = (rng.next() & 1u) ? rx[first] : rx[second];
        break;
      case EveStrategy::kMinPower:
        out[k] = std::norm(rx[first]) <= std::norm(rx[second]) ? rx[first]
                                                               : rx[second];
        break;
    }
  }
  return out;
}

}  // namespace rjf::secure
