// Ally-friendly jamming (Shen et al., IEEE S&P 2013), the second class of
// jamming-based secure communication the paper targets: a jammer transmits
// continuously, but its waveform is generated from a secret key so that
// authorized receivers can regenerate and cancel it while unauthorized
// devices see broadband interference.
#pragma once

#include <cstdint>

#include "dsp/types.h"

namespace rjf::secure {

/// Key-controlled jamming source: the waveform is a deterministic function
/// of (key, epoch), so any holder of the key can reproduce it exactly.
class FriendlyJammer {
 public:
  FriendlyJammer(std::uint64_t key, double power) noexcept
      : key_(key), power_(power) {}

  /// Jamming waveform for an epoch (epochs keep long runs re-synchronisable).
  [[nodiscard]] dsp::cvec waveform(std::uint64_t epoch, std::size_t length) const;

  [[nodiscard]] double power() const noexcept { return power_; }

 private:
  std::uint64_t key_;
  double power_;
};

/// Authorized receiver: regenerates the jamming (same key), estimates the
/// jammer->receiver complex gain from a pilot correlation, and subtracts.
/// Returns the cleaned waveform.
[[nodiscard]] dsp::cvec cancel_friendly_jamming(
    std::span<const dsp::cfloat> rx, const FriendlyJammer& jammer,
    std::uint64_t epoch);

/// Residual jamming power after cancellation relative to before (linear
/// ratio; smaller is better). Diagnostic used by tests and benches.
[[nodiscard]] double cancellation_residual(std::span<const dsp::cfloat> rx,
                                           std::span<const dsp::cfloat> cleaned,
                                           std::span<const dsp::cfloat> signal);

}  // namespace rjf::secure
