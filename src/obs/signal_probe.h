// SignalProbe — a software ChipScope for the fabric.
//
// The paper's authors watched their core with ChipScope (fabric signal
// capture) and an oscilloscope (Fig. 12: per-frame detection/jam
// correspondence). This probe reproduces both: it keeps a rolling
// pre-trigger window of per-strobe fabric signals (xcorr metric, energy
// differentiator output, FSM stage, TX sample) and, on each detector
// trigger edge, freezes pre + post samples into a capture — exactly what a
// scope's single-shot acquisition around a trigger shows. Captures dump to
// CSV for Fig.-12-style waveform plots.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/events.h"

namespace rjf::obs {

struct ProbeConfig {
  std::size_t pre_samples = 16;    // strobes retained before the trigger
  std::size_t post_samples = 112;  // strobes captured after the trigger
  std::size_t max_captures = 32;   // stop arming after this many captures
};

class SignalProbe {
 public:
  explicit SignalProbe(const ProbeConfig& config = {});

  struct Capture {
    std::uint64_t trigger_vita = 0;    // vita of the triggering strobe
    std::size_t trigger_index = 0;     // index of that strobe in samples
    std::vector<FabricSignals> samples;
  };

  /// Feed one per-strobe snapshot. Arms a new capture on any detector edge
  /// (xcorr / energy-high / energy-low) when idle and below max_captures.
  void on_strobe(const FabricSignals& signals);

  [[nodiscard]] const std::vector<Capture>& captures() const noexcept {
    return captures_;
  }
  [[nodiscard]] std::uint64_t triggers_seen() const noexcept {
    return triggers_seen_;
  }
  [[nodiscard]] const ProbeConfig& config() const noexcept { return config_; }

  void clear();

  /// One row per probed strobe:
  /// capture,seq,vita_ticks,time_us,rx_i,rx_q,xcorr_metric,energy_sum,
  /// fsm_stage,xcorr_trig,energy_high,energy_low,jam_trigger,rf_active,
  /// tx_i,tx_q
  bool write_csv(const std::string& path) const;

 private:
  [[nodiscard]] static bool is_trigger(const FabricSignals& s) noexcept {
    return s.xcorr_trigger || s.energy_high || s.energy_low;
  }

  ProbeConfig config_;
  std::vector<FabricSignals> pre_ring_;
  std::size_t pre_head_ = 0;
  std::size_t pre_size_ = 0;
  std::vector<Capture> captures_;
  std::size_t post_remaining_ = 0;  // >0 while a capture is filling
  std::uint64_t triggers_seen_ = 0;
};

}  // namespace rjf::obs
