#include "obs/signal_probe.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace rjf::obs {

SignalProbe::SignalProbe(const ProbeConfig& config) : config_(config) {
  pre_ring_.resize(std::max<std::size_t>(config_.pre_samples, 1));
}

void SignalProbe::on_strobe(const FabricSignals& signals) {
  if (post_remaining_ > 0) {
    captures_.back().samples.push_back(signals);
    --post_remaining_;
  } else if (is_trigger(signals)) {
    ++triggers_seen_;
    if (captures_.size() < config_.max_captures) {
      Capture cap;
      cap.trigger_vita = signals.vita_ticks;
      cap.samples.reserve(pre_size_ + 1 + config_.post_samples);
      // Oldest pre-trigger strobe first.
      const std::size_t start =
          pre_size_ == pre_ring_.size() ? pre_head_ : 0;
      for (std::size_t k = 0; k < pre_size_; ++k)
        cap.samples.push_back(pre_ring_[(start + k) % pre_ring_.size()]);
      cap.trigger_index = cap.samples.size();
      cap.samples.push_back(signals);
      captures_.push_back(std::move(cap));
      post_remaining_ = config_.post_samples;
    }
  }
  if (config_.pre_samples > 0) {
    pre_ring_[pre_head_] = signals;
    pre_head_ = pre_head_ + 1 == pre_ring_.size() ? 0 : pre_head_ + 1;
    pre_size_ = std::min(pre_size_ + 1, pre_ring_.size());
  }
}

void SignalProbe::clear() {
  captures_.clear();
  pre_head_ = 0;
  pre_size_ = 0;
  post_remaining_ = 0;
  triggers_seen_ = 0;
}

bool SignalProbe::write_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fputs(
      "capture,seq,vita_ticks,time_us,rx_i,rx_q,xcorr_metric,energy_sum,"
      "fsm_stage,xcorr_trig,energy_high,energy_low,jam_trigger,rf_active,"
      "tx_i,tx_q\n",
      f);
  for (std::size_t c = 0; c < captures_.size(); ++c) {
    const Capture& cap = captures_[c];
    for (std::size_t k = 0; k < cap.samples.size(); ++k) {
      const FabricSignals& s = cap.samples[k];
      std::fprintf(f,
                   "%zu,%zu,%" PRIu64 ",%.3f,%d,%d,%" PRIu32 ",%" PRIu64
                   ",%u,%d,%d,%d,%d,%d,%d,%d\n",
                   c, k, s.vita_ticks, ticks_to_us(s.vita_ticks), s.rx.i,
                   s.rx.q, s.xcorr_metric, s.energy_sum, s.fsm_stage,
                   s.xcorr_trigger, s.energy_high, s.energy_low,
                   s.jam_trigger, s.rf_active, s.tx.i, s.tx.q);
    }
  }
  return std::fclose(f) == 0;
}

}  // namespace rjf::obs
