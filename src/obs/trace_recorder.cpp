#include "obs/trace_recorder.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/json_writer.h"

namespace rjf::obs {

namespace {

// Chrome trace "tid" lanes, so Perfetto draws each subsystem on its own row.
enum Lane : int {
  kLaneDetectors = 1,
  kLaneTrigger = 2,
  kLaneTx = 3,
  kLaneSettingsBus = 4,
  kLaneHost = 5,
  kLaneFaults = 6,
};

int lane_for(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kXcorrTrigger:
    case EventKind::kEnergyRise:
    case EventKind::kEnergyFall:
      return kLaneDetectors;
    case EventKind::kFsmStage:
    case EventKind::kJamTrigger:
      return kLaneTrigger;
    case EventKind::kJamStart:
    case EventKind::kJamEnd:
      return kLaneTx;
    case EventKind::kSettingsWriteIssued:
    case EventKind::kSettingsWriteApplied:
    case EventKind::kSettingsWriteDropped:
    case EventKind::kSettingsWriteRetried:
    case EventKind::kSettingsWriteAbandoned:
      return kLaneSettingsBus;
    case EventKind::kRetune:
    case EventKind::kGainChange:
    case EventKind::kStreamStart:
    case EventKind::kStreamEnd:
    case EventKind::kPersonality:
      return kLaneHost;
    case EventKind::kOverflowGap:
    case EventKind::kDetectorFlush:
    case EventKind::kFaultInjected:
      return kLaneFaults;
    case EventKind::kStreamWall:
      return kLaneHost;  // never recorded; kept for switch coverage
  }
  return kLaneHost;
}

void emit_process_name(std::FILE* f, int pid, const std::string& name,
                       bool& first) {
  std::fprintf(f,
               "%s    {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
               "\"args\":{\"name\":\"%s\"}}",
               first ? "" : ",\n", pid, JsonWriter::escape(name).c_str());
  first = false;
}

void emit_thread_name(std::FILE* f, int pid, int tid, const char* name,
                      bool& first) {
  std::fprintf(f,
               "%s    {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,"
               "\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
               first ? "" : ",\n", pid, tid, name);
  first = false;
}

void emit_instant(std::FILE* f, int pid, const TraceEvent& e, bool& first) {
  std::fprintf(f,
               "%s    {\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,"
               "\"tid\":%d,\"ts\":%.3f,\"args\":{\"value\":%" PRIu64
               ",\"vita_ticks\":%" PRIu64 "}}",
               first ? "" : ",\n", event_kind_name(e.kind), pid,
               lane_for(e.kind), ticks_to_us(e.vita_ticks), e.value,
               e.vita_ticks);
  first = false;
}

void emit_span(std::FILE* f, int pid, const char* name, int tid,
               std::uint64_t start, std::uint64_t end, std::uint64_t value,
               bool& first) {
  std::fprintf(f,
               "%s    {\"name\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,"
               "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"value\":%" PRIu64
               ",\"vita_ticks\":%" PRIu64 "}}",
               first ? "" : ",\n", name, pid, tid, ticks_to_us(start),
               ticks_to_us(end - start), value, start);
  first = false;
}

// One lane's full body: subsystem row names, the start/end pairing pass
// (jam bursts + settings writes as "X" spans, degraded to instants when the
// start was overwritten), and personality annotations. Shared between the
// single-trace and merged-campaign exports so both stay format-identical.
void emit_lane(std::FILE* f, int pid, std::span<const TraceEvent> evs,
               std::span<const TraceRecorder::Annotation> annotations,
               bool& first) {
  emit_thread_name(f, pid, kLaneDetectors, "detectors", first);
  emit_thread_name(f, pid, kLaneTrigger, "trigger fsm", first);
  emit_thread_name(f, pid, kLaneTx, "tx / jam bursts", first);
  emit_thread_name(f, pid, kLaneSettingsBus, "settings bus", first);
  emit_thread_name(f, pid, kLaneHost, "host", first);
  emit_thread_name(f, pid, kLaneFaults, "faults / recovery", first);

  // Jam bursts: pair each kJamStart with the next kJamEnd. The bus is FIFO,
  // so settings writes pair the same way per queue order.
  std::vector<std::uint64_t> settings_issues;
  std::size_t settings_next = 0;
  std::uint64_t jam_open = 0;
  bool jam_is_open = false;
  std::uint64_t last_ts = 0;

  for (const TraceEvent& e : evs) {
    last_ts = std::max(last_ts, e.vita_ticks);
    switch (e.kind) {
      case EventKind::kJamStart:
        jam_open = e.vita_ticks;
        jam_is_open = true;
        break;
      case EventKind::kJamEnd:
        if (jam_is_open) {
          emit_span(f, pid, "jam_burst", kLaneTx, jam_open, e.vita_ticks,
                    e.value, first);
          jam_is_open = false;
        } else {
          emit_instant(f, pid, e, first);  // start fell off the ring
        }
        break;
      case EventKind::kSettingsWriteIssued:
        settings_issues.push_back(e.vita_ticks);
        break;
      case EventKind::kSettingsWriteApplied:
        if (settings_next < settings_issues.size()) {
          emit_span(f, pid, "settings_write", kLaneSettingsBus,
                    settings_issues[settings_next++], e.vita_ticks, e.value,
                    first);
        } else {
          emit_instant(f, pid, e, first);
        }
        break;
      case EventKind::kSettingsWriteDropped:
        // A dropped write consumes its issue (a retry re-issues), keeping
        // the FIFO pairing intact for the writes behind it.
        if (settings_next < settings_issues.size()) {
          emit_span(f, pid, "settings_write_dropped", kLaneSettingsBus,
                    settings_issues[settings_next++], e.vita_ticks, e.value,
                    first);
        } else {
          emit_instant(f, pid, e, first);
        }
        break;
      default:
        emit_instant(f, pid, e, first);
        break;
    }
  }
  // A burst still on the air when the trace is exported: close it at the
  // last known time so the span is visible.
  if (jam_is_open)
    emit_span(f, pid, "jam_burst", kLaneTx, jam_open,
              std::max(last_ts, jam_open), 0, first);

  for (const TraceRecorder::Annotation& a : annotations) {
    std::fprintf(f,
                 "%s    {\"name\":\"personality\",\"ph\":\"i\",\"s\":\"g\","
                 "\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                 "\"args\":{\"description\":\"%s\"}}",
                 first ? "" : ",\n", pid, kLaneHost, ticks_to_us(a.first),
                 JsonWriter::escape(a.second).c_str());
    first = false;
  }
}

}  // namespace

TraceRecorder::TraceRecorder(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 2)) {}

void TraceRecorder::record(EventKind kind, std::uint64_t vita_ticks,
                           std::uint64_t value) noexcept {
  ring_[head_] = TraceEvent{vita_ticks, value, kind};
  head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
  if (size_ < ring_.size()) ++size_;
  ++recorded_;
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  // Oldest retained event sits at head_ once the ring has wrapped.
  const std::size_t start = size_ == ring_.size() ? head_ : 0;
  for (std::size_t k = 0; k < size_; ++k)
    out.push_back(ring_[(start + k) % ring_.size()]);
  return out;
}

void TraceRecorder::clear() noexcept {
  head_ = 0;
  size_ = 0;
  recorded_ = 0;
}

bool TraceRecorder::write_chrome_trace(
    const std::string& path, std::span<const Annotation> annotations) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;

  std::fputs("{\n  \"displayTimeUnit\": \"ns\",\n", f);
  std::fprintf(f,
               "  \"otherData\": {\"fabric_clock_hz\": 1e8, "
               "\"events_recorded\": %" PRIu64 ", \"events_overwritten\": %" PRIu64
               "%s",
               recorded_, overwritten(), annotations.empty() ? "" : ", ");
  if (!annotations.empty())
    std::fprintf(f, "\"personality\": \"%s\"",
                 JsonWriter::escape(annotations.back().second).c_str());
  std::fputs("},\n  \"traceEvents\": [\n", f);

  bool first = true;
  const std::vector<TraceEvent> evs = events();
  emit_lane(f, /*pid=*/1, evs, annotations, first);

  std::fputs("\n  ]\n}\n", f);
  return std::fclose(f) == 0;
}

std::uint64_t TraceRecorder::spans_truncated() const noexcept {
  // Mirror of emit_lane()'s pairing pass: every end-side event whose start
  // was overwritten by ring wraparound degrades its span to an instant.
  std::uint64_t truncated = 0;
  std::size_t issues = 0;
  std::size_t paired = 0;
  bool jam_is_open = false;
  const std::size_t start = size_ == ring_.size() ? head_ : 0;
  for (std::size_t k = 0; k < size_; ++k) {
    const TraceEvent& e = ring_[(start + k) % ring_.size()];
    switch (e.kind) {
      case EventKind::kJamStart:
        jam_is_open = true;
        break;
      case EventKind::kJamEnd:
        if (jam_is_open)
          jam_is_open = false;
        else
          ++truncated;
        break;
      case EventKind::kSettingsWriteIssued:
        ++issues;
        break;
      case EventKind::kSettingsWriteApplied:
      case EventKind::kSettingsWriteDropped:
        if (paired < issues)
          ++paired;
        else
          ++truncated;
        break;
      default:
        break;
    }
  }
  return truncated;
}

bool TraceRecorder::write_merged_chrome_trace(const std::string& path,
                                              std::span<const TraceLane> lanes) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;

  std::fputs("{\n  \"displayTimeUnit\": \"ns\",\n", f);
  std::fprintf(f,
               "  \"otherData\": {\"fabric_clock_hz\": 1e8, "
               "\"lanes\": %zu},\n  \"traceEvents\": [\n",
               lanes.size());

  bool first = true;
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    const int pid = static_cast<int>(i) + 1;
    emit_process_name(f, pid, lanes[i].name, first);
    emit_lane(f, pid, lanes[i].events, lanes[i].annotations, first);
  }

  std::fputs("\n  ]\n}\n", f);
  return std::fclose(f) == 0;
}

bool TraceRecorder::write_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fputs("vita_ticks,time_us,kind,value\n", f);
  for (const TraceEvent& e : events())
    std::fprintf(f, "%" PRIu64 ",%.3f,%s,%" PRIu64 "\n", e.vita_ticks,
                 ticks_to_us(e.vita_ticks), event_kind_name(e.kind), e.value);
  return std::fclose(f) == 0;
}

}  // namespace rjf::obs
