// Fabric telemetry event taxonomy and sink interface.
//
// The paper validates its jammer with lab instruments — oscilloscope
// captures of detection/jam correspondence (Fig. 12), ChipScope probes into
// the fabric, and latency arithmetic (T_en < 1.28 µs, T_xcorr = 2.56 µs,
// T_init ≈ 80 ns). This layer is their software twin: the fabric, radio and
// core layers publish VITA-timestamped events and per-strobe signal
// snapshots. Producers no longer call a FabricSink directly: they append
// fixed-size records to an obs::EventRing (see obs/event_ring.h), and the
// ring's drain side replays them into a FabricSink — the interface below
// survives as the consumer fan-out contract (Telemetry implements it).
// With no ring attached every hook is a skipped branch, so the
// block-processing fast path keeps its throughput (the "overhead
// contract", see DESIGN.md "Observability").
#pragma once

#include <cstdint>

#include "dsp/types.h"

namespace rjf::obs {

/// Every discrete occurrence the instrumented layers can report. Values are
/// stable across a run; exporters map them to names via event_kind_name().
enum class EventKind : std::uint8_t {
  kXcorrTrigger = 0,     // correlator trigger edge; value = |corr|^2 metric
  kEnergyRise,           // energy-differentiator high edge; value = energy sum
  kEnergyFall,           // energy-differentiator low edge; value = energy sum
  kFsmStage,             // trigger-FSM stage transition; value = new stage
  kJamTrigger,           // FSM fired the jam trigger pulse
  kJamStart,             // RF jamming energy on the air (rising edge)
  kJamEnd,               // RF jamming energy off the air (falling edge)
  kSettingsWriteIssued,  // host register write enqueued; value = reg address
  kSettingsWriteApplied, // write landed in the register file; value = address
  kRetune,               // front-end retune; value = new frequency in Hz
  kGainChange,           // front-end TX gain change; value = centi-dB
  kStreamStart,          // stream()/stream_fabric() entry; value = rx samples
  kStreamEnd,            // stream()/stream_fabric() exit; value = rx samples
  kPersonality,          // jamming personality programmed; value = history idx
  kOverflowGap,          // rx samples lost to a stream overflow ("O");
                         // value = samples lost
  kDetectorFlush,        // detector state flushed across an overflow gap;
                         // value = fabric ticks spanned by the flush
  kSettingsWriteDropped, // bus write lost in transit (fault); value = address
  kSettingsWriteRetried, // host re-issued a dropped write; value = address
  kSettingsWriteAbandoned, // write retry budget exhausted; value = address
  kFaultInjected,        // rx-path fault applied; value = fault::FaultKind id
  kStreamWall,           // wall-clock ns spent inside one stream call,
                         // measured producer-side (dispatch time would lie
                         // once records are drained after the fact). Feeds
                         // the throughput gauge only; never traced, so
                         // trace exports stay deterministic.
};

inline constexpr std::size_t kNumEventKinds = 21;

[[nodiscard]] constexpr const char* event_kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kXcorrTrigger: return "xcorr_trigger";
    case EventKind::kEnergyRise: return "energy_rise";
    case EventKind::kEnergyFall: return "energy_fall";
    case EventKind::kFsmStage: return "fsm_stage";
    case EventKind::kJamTrigger: return "jam_trigger";
    case EventKind::kJamStart: return "jam_start";
    case EventKind::kJamEnd: return "jam_end";
    case EventKind::kSettingsWriteIssued: return "settings_write_issued";
    case EventKind::kSettingsWriteApplied: return "settings_write_applied";
    case EventKind::kRetune: return "retune";
    case EventKind::kGainChange: return "gain_change";
    case EventKind::kStreamStart: return "stream_start";
    case EventKind::kStreamEnd: return "stream_end";
    case EventKind::kPersonality: return "personality";
    case EventKind::kOverflowGap: return "overflow_gap";
    case EventKind::kDetectorFlush: return "detector_flush";
    case EventKind::kSettingsWriteDropped: return "settings_write_dropped";
    case EventKind::kSettingsWriteRetried: return "settings_write_retried";
    case EventKind::kSettingsWriteAbandoned: return "settings_write_abandoned";
    case EventKind::kFaultInjected: return "fault_injected";
    case EventKind::kStreamWall: return "stream_wall";
  }
  return "unknown";
}

/// One recorded event. VITA time is the fabric clock count (100 MHz, GPS
/// locked in the real radio): 1 tick = 10 ns.
struct TraceEvent {
  std::uint64_t vita_ticks = 0;
  std::uint64_t value = 0;
  EventKind kind = EventKind::kXcorrTrigger;
};

/// Fabric-clock/wall-time conversions shared by the exporters.
inline constexpr double kTickNs = 10.0;  // 100 MHz fabric clock

[[nodiscard]] constexpr double ticks_to_us(std::uint64_t ticks) noexcept {
  return static_cast<double>(ticks) * (kTickNs / 1000.0);
}

/// Per-strobe (25 MSPS) snapshot of the fabric signals a ChipScope probe
/// would tap: detector metrics, FSM stage, and the TX path. Published on
/// sampled receive strobes while a ring is attached (1-in-N decimation;
/// detector-edge and jam strobes always pass — see EventRing::strobe_gate).
struct FabricSignals {
  std::uint64_t vita_ticks = 0;
  dsp::IQ16 rx{};              // the baseband sample clocked in
  std::uint32_t xcorr_metric = 0;
  std::uint64_t energy_sum = 0;
  std::uint8_t fsm_stage = 0;  // after this tick's FSM clock
  bool xcorr_trigger = false;  // detector edge pulses (single-strobe)
  bool energy_high = false;
  bool energy_low = false;
  bool jam_trigger = false;
  bool rf_active = false;      // jamming energy on the air this tick
  dsp::IQ16 tx{};              // most recent TX sample issued
};

/// Receiver interface the instrumented layers publish into. Implementations
/// must tolerate events from multiple layers interleaved in VITA order per
/// layer (the fabric emits in strict order; host-side events such as retune
/// carry the fabric time at which they were issued).
class FabricSink {
 public:
  virtual ~FabricSink() = default;
  virtual void on_event(EventKind kind, std::uint64_t vita_ticks,
                        std::uint64_t value) = 0;
  virtual void on_strobe(const FabricSignals& signals) = 0;
};

}  // namespace rjf::obs
