// TraceRecorder — fixed-capacity ring buffer of VITA-timestamped events.
//
// The software twin of the paper's oscilloscope + ChipScope setup: every
// instrumented layer records trigger edges, FSM transitions, jam bursts,
// settings-bus traffic and front-end changes here. The buffer keeps the
// newest `capacity` events (oldest are overwritten, like a scope's
// acquisition memory) and exports either Chrome trace-event JSON — loadable
// in Perfetto / chrome://tracing for a Fig.-12-style timeline view — or a
// flat CSV for scripted analysis.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "obs/events.h"

namespace rjf::obs {

class TraceRecorder {
 public:
  /// `capacity` is rounded up to at least 2 events.
  explicit TraceRecorder(std::size_t capacity = 1 << 16);

  void record(EventKind kind, std::uint64_t vita_ticks,
              std::uint64_t value) noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  /// Events recorded in total, including any that were overwritten.
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
  /// Events lost to ring wraparound (recorded() - size()).
  [[nodiscard]] std::uint64_t overwritten() const noexcept {
    return recorded_ - size_;
  }

  /// Copy the retained events out in chronological (recording) order.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  void clear() noexcept;

  /// Annotations are (vita, label) pairs — e.g. the jamming personality
  /// active from that time — written as process metadata and instant events.
  using Annotation = std::pair<std::uint64_t, std::string>;

  /// Export Chrome trace-event JSON (the format Perfetto and
  /// chrome://tracing load). Timestamps are microseconds of VITA time; jam
  /// bursts and settings-bus writes are emitted as complete ("X") spans by
  /// pairing their start/end events, everything else as instants.
  bool write_chrome_trace(const std::string& path,
                          std::span<const Annotation> annotations = {}) const;

  /// Spans the export degrades to instants because their start event was
  /// overwritten by ring wraparound: a kJamEnd with no surviving kJamStart,
  /// or a settings apply/drop whose issue fell off. Surfaced in metrics
  /// exports as `trace.spans_truncated` so a trace that silently lost span
  /// starts is detectable without diffing the JSON.
  [[nodiscard]] std::uint64_t spans_truncated() const noexcept;

  /// One worker's contribution to a merged campaign trace.
  struct TraceLane {
    std::string name;                     // e.g. "shard 3 / snr -2 dB"
    std::vector<TraceEvent> events;       // chronological, from events()
    std::vector<Annotation> annotations;  // personality history, optional
  };

  /// Merge per-worker lanes into one Chrome trace: each lane becomes its
  /// own process (pid = lane index + 1, named via process_name metadata)
  /// with the usual subsystem rows inside, so a whole sweep's shards line
  /// up under a shared fabric-time axis in Perfetto.
  static bool write_merged_chrome_trace(const std::string& path,
                                        std::span<const TraceLane> lanes);

  /// Export a flat CSV: vita_ticks,time_us,kind,value.
  bool write_csv(const std::string& path) const;

 private:
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  // next write position
  std::size_t size_ = 0;
  std::uint64_t recorded_ = 0;
};

}  // namespace rjf::obs
