// Minimal machine-readable result emitter: an insertion-ordered JSON object
// with scalar fields and nested objects, written in one shot.
//
// Promoted out of bench/bench_util.h so the library's own exporters
// (MetricsRegistry, TraceRecorder metadata) can use it without src/
// including from bench/. The perf benches keep using it for
// BENCH_fabric.json, so the throughput trajectory stays trackable across
// commits without scraping console tables.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace rjf::obs {

class JsonWriter {
 public:
  JsonWriter() = default;
  JsonWriter(JsonWriter&&) = default;
  JsonWriter& operator=(JsonWriter&&) = default;

  void set(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    add_raw(key, buf);
  }
  void set(const std::string& key, std::uint64_t value) {
    add_raw(key, std::to_string(value));
  }
  void set(const std::string& key, int value) {
    add_raw(key, std::to_string(value));
  }
  void set(const std::string& key, bool value) {
    add_raw(key, value ? "true" : "false");
  }
  void set(const std::string& key, const std::string& value) {
    std::string quoted = "\"";
    quoted += escape(value);
    quoted += '"';
    add_raw(key, std::move(quoted));
  }
  void set(const std::string& key, const char* value) {
    set(key, std::string(value));
  }

  /// Create (or return an existing) nested object under `key`. The returned
  /// reference stays valid for the writer's lifetime.
  JsonWriter& object(const std::string& key) {
    for (auto& f : fields_)
      if (f.child && f.key == key) return *f.child;
    fields_.push_back(Field{key, {}, std::make_unique<JsonWriter>()});
    return *fields_.back().child;
  }

  /// Render the object (and children) as pretty-printed JSON.
  [[nodiscard]] std::string to_string(int indent = 0) const {
    const std::string pad(static_cast<std::size_t>(indent) + 2, ' ');
    std::string out = "{\n";
    for (std::size_t k = 0; k < fields_.size(); ++k) {
      const Field& f = fields_[k];
      out += pad + "\"" + escape(f.key) + "\": ";
      out += f.child ? f.child->to_string(indent + 2) : f.raw;
      if (k + 1 < fields_.size()) out += ",";
      out += "\n";
    }
    out += std::string(static_cast<std::size_t>(indent), ' ') + "}";
    return out;
  }

  /// Write the rendered object to `path`. Returns false on I/O failure.
  bool write_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    const std::string body = to_string() + "\n";
    const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
    return (std::fclose(f) == 0) && ok;
  }

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

 private:
  struct Field {
    std::string key;
    std::string raw;  // pre-rendered scalar (when child is null)
    std::unique_ptr<JsonWriter> child;
  };

  void add_raw(const std::string& key, std::string raw) {
    for (auto& f : fields_)
      if (!f.child && f.key == key) {
        f.raw = std::move(raw);
        return;
      }
    fields_.push_back(Field{key, std::move(raw), nullptr});
  }

  std::vector<Field> fields_;
};

}  // namespace rjf::obs
