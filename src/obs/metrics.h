// MetricsRegistry — named counters and fixed-bin histograms for the
// quantities the paper reports as latency arithmetic and the related work
// reports as reaction-latency distributions: trigger→RF latency, detection
// inter-arrival times, jam duty cycle, per-stream throughput.
//
// Histograms bin at fabric-tick resolution (1 tick = 10 ns): bins are
// [min + k*width, min + (k+1)*width) with explicit underflow/overflow
// buckets, so the exported distribution maps directly onto the paper's
// T_en / T_xcorr / T_init arithmetic (see DESIGN.md "Observability").
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json_writer.h"

namespace rjf::obs {

class Histogram {
 public:
  Histogram() : Histogram(0, 1, 1) {}
  Histogram(std::uint64_t min, std::uint64_t bin_width, std::size_t num_bins);

  void record(std::uint64_t value) noexcept;

  /// Merge another histogram recorded with the same binning (min, width,
  /// bin count) into this one; bins, totals and extrema combine so the
  /// result equals one histogram having recorded both value streams, in
  /// any merge order. Returns false (and changes nothing) when the
  /// binnings differ. Lets sweep shards record into private histograms
  /// that the engine folds together deterministically afterwards.
  bool merge(const Histogram& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  [[nodiscard]] std::uint64_t min_seen() const noexcept { return min_seen_; }
  [[nodiscard]] std::uint64_t max_seen() const noexcept { return max_seen_; }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }

  [[nodiscard]] std::size_t num_bins() const noexcept { return bins_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t k) const noexcept {
    return bins_[k];
  }
  /// Inclusive lower edge of bin k (values < edge(k+1) land in bin k).
  [[nodiscard]] std::uint64_t bin_edge(std::size_t k) const noexcept {
    return min_ + static_cast<std::uint64_t>(k) * bin_width_;
  }
  [[nodiscard]] std::uint64_t bin_width() const noexcept { return bin_width_; }

  /// Serialise into `out`: config, count/sum/min/max/mean, and the
  /// non-empty bins as an "edge: count" object.
  void write_json(JsonWriter& out) const;

 private:
  std::uint64_t min_;
  std::uint64_t bin_width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t min_seen_ = ~std::uint64_t{0};
  std::uint64_t max_seen_ = 0;
};

class MetricsRegistry {
 public:
  /// Monotonic counter, created at zero on first use.
  std::uint64_t& counter(const std::string& name) { return counters_[name]; }
  void add(const std::string& name, std::uint64_t delta) {
    counters_[name] += delta;
  }
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;
  /// Remove a counter entirely (no-op when absent). Sweep shards use this
  /// to strip wall-clock-derived counters (stream_wall_ns) before merging,
  /// so merged campaign metrics stay bit-identical across thread counts.
  void erase_counter(const std::string& name) { counters_.erase(name); }

  /// Named gauge (a derived double, e.g. a duty cycle or a rate).
  void set_gauge(const std::string& name, double value) {
    gauges_[name] = value;
  }
  /// Remove a gauge entirely (no-op when absent) — same role as
  /// erase_counter for wall-clock-derived gauges (host_throughput_msps).
  void erase_gauge(const std::string& name) { gauges_.erase(name); }

  /// Histogram, created with the given binning on first use; later calls
  /// with the same name return the existing instance unchanged.
  Histogram& histogram(const std::string& name, std::uint64_t min,
                       std::uint64_t bin_width, std::size_t num_bins);
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double>& gauges() const {
    return gauges_;
  }

  /// Fold another registry into this one: counters add, gauges adopt the
  /// other's value (last merge wins — gauges are point-in-time readings),
  /// histograms merge bin-wise when the binning matches and are copied
  /// when absent here. Merging every shard's registry in shard-index order
  /// yields the same result on every run regardless of which threads
  /// produced the shards. Returns the number of histograms that could NOT
  /// be merged because their binning conflicted (0 on full success).
  std::size_t merge(const MetricsRegistry& other);

  /// Serialise everything into `out` under "counters" / "gauges" /
  /// "histograms" nested objects.
  void write_json(JsonWriter& out) const;
  bool write_file(const std::string& path) const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace rjf::obs
