#include "obs/event_ring.h"

#include <chrono>

namespace rjf::obs {
namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 16;
  while (p < n) p <<= 1;
  return p;
}

ObsLevel clamp_level(ObsLevel level) {
  return level > kCompiledObsLevel ? kCompiledObsLevel : level;
}

}  // namespace

EventRing::EventRing(const RingConfig& config)
    : ring_(round_up_pow2(config.capacity)),
      mask_(ring_.size() - 1),
      level_(clamp_level(config.level)),
      period_(config.strobe_sample_period == 0 ? 1
                                               : config.strobe_sample_period) {}

bool EventRing::try_push(const RingRecord& record) noexcept {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  if (head - cached_tail_ >= ring_.size()) {
    cached_tail_ = tail_.load(std::memory_order_acquire);
    if (head - cached_tail_ >= ring_.size()) {
      relaxed_inc(dropped_);
      return false;
    }
  }
  ring_[head & mask_] = record;
  head_.store(head + 1, std::memory_order_release);
  relaxed_inc(pushed_);
  return true;
}

// rjf: realtime
bool EventRing::push_event(EventKind kind, std::uint64_t vita_ticks,
                           std::uint64_t value) noexcept {
  if (level_ == ObsLevel::kOff) return false;
  RingRecord r{};
  r.vita_ticks = vita_ticks;
  r.value = value;
  r.type = kRecordEvent;
  r.kind = static_cast<std::uint8_t>(kind);
  return try_push(r);
}

// rjf: realtime
bool EventRing::push_strobe(const FabricSignals& signals) noexcept {
  RingRecord r{};
  r.vita_ticks = signals.vita_ticks;
  r.value = signals.energy_sum;
  r.metric = signals.xcorr_metric;
  r.rx_i = signals.rx.i;
  r.rx_q = signals.rx.q;
  r.tx_i = signals.tx.i;
  r.tx_q = signals.tx.q;
  r.type = kRecordStrobe;
  r.kind = signals.fsm_stage;
  r.flags = static_cast<std::uint8_t>(
      (signals.xcorr_trigger ? kStrobeXcorrTrigger : 0u) |
      (signals.energy_high ? kStrobeEnergyHigh : 0u) |
      (signals.energy_low ? kStrobeEnergyLow : 0u) |
      (signals.jam_trigger ? kStrobeJamTrigger : 0u) |
      (signals.rf_active ? kStrobeRfActive : 0u));
  return try_push(r);
}

void EventRing::dispatch(const RingRecord& record, FabricSink& sink) {
  if (record.type == kRecordStrobe) {
    FabricSignals s{};
    s.vita_ticks = record.vita_ticks;
    s.rx = {record.rx_i, record.rx_q};
    s.xcorr_metric = record.metric;
    s.energy_sum = record.value;
    s.fsm_stage = record.kind;
    s.xcorr_trigger = (record.flags & kStrobeXcorrTrigger) != 0;
    s.energy_high = (record.flags & kStrobeEnergyHigh) != 0;
    s.energy_low = (record.flags & kStrobeEnergyLow) != 0;
    s.jam_trigger = (record.flags & kStrobeJamTrigger) != 0;
    s.rf_active = (record.flags & kStrobeRfActive) != 0;
    s.tx = {record.tx_i, record.tx_q};
    sink.on_strobe(s);
  } else {
    sink.on_event(static_cast<EventKind>(record.kind), record.vita_ticks,
                  record.value);
  }
}

std::size_t EventRing::drain() {
  if (consumer_ == nullptr) return 0;
  return drain_into(*consumer_);
}

std::size_t EventRing::drain_into(FabricSink& sink) {
  std::lock_guard<std::mutex> lock(drain_mu_);
  std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  std::size_t dispatched = 0;
  while (tail != head) {
    const RingRecord record = ring_[tail & mask_];
    ++tail;
    // Free the slot before dispatching so a slow sink never extends the
    // window in which the producer sees a full ring.
    tail_.store(tail, std::memory_order_release);
    dispatch(record, sink);
    ++dispatched;
  }
  return dispatched;
}

RingDrainThread::RingDrainThread(EventRing& ring, std::uint32_t poll_us)
    : ring_(ring), thread_([this, poll_us] {
        while (!stop_.load(std::memory_order_acquire)) {
          if (ring_.drain() == 0) {
            std::this_thread::sleep_for(std::chrono::microseconds(poll_us));
          }
        }
        (void)ring_.drain();
      }) {}

RingDrainThread::~RingDrainThread() { stop(); }

void RingDrainThread::stop() {
  if (thread_.joinable()) {
    stop_.store(true, std::memory_order_release);
    thread_.join();
  }
}

}  // namespace rjf::obs
