#include "obs/metrics.h"

#include <algorithm>

namespace rjf::obs {

Histogram::Histogram(std::uint64_t min, std::uint64_t bin_width,
                     std::size_t num_bins)
    : min_(min),
      bin_width_(std::max<std::uint64_t>(bin_width, 1)),
      bins_(std::max<std::size_t>(num_bins, 1), 0) {}

void Histogram::record(std::uint64_t value) noexcept {
  ++count_;
  sum_ += value;
  min_seen_ = std::min(min_seen_, value);
  max_seen_ = std::max(max_seen_, value);
  if (value < min_) {
    ++underflow_;
    return;
  }
  const std::uint64_t bin = (value - min_) / bin_width_;
  if (bin >= bins_.size()) {
    ++overflow_;
    return;
  }
  ++bins_[bin];
}

bool Histogram::merge(const Histogram& other) noexcept {
  if (min_ != other.min_ || bin_width_ != other.bin_width_ ||
      bins_.size() != other.bins_.size())
    return false;
  for (std::size_t k = 0; k < bins_.size(); ++k) bins_[k] += other.bins_[k];
  count_ += other.count_;
  sum_ += other.sum_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  min_seen_ = std::min(min_seen_, other.min_seen_);
  max_seen_ = std::max(max_seen_, other.max_seen_);
  return true;
}

void Histogram::write_json(JsonWriter& out) const {
  out.set("min", min_);
  out.set("bin_width", bin_width_);
  out.set("num_bins", static_cast<std::uint64_t>(bins_.size()));
  out.set("count", count_);
  out.set("sum", sum_);
  out.set("mean", mean());
  out.set("underflow", underflow_);
  out.set("overflow", overflow_);
  if (count_ > 0) {
    out.set("min_seen", min_seen_);
    out.set("max_seen", max_seen_);
  }
  JsonWriter& bins = out.object("bins");
  for (std::size_t k = 0; k < bins_.size(); ++k)
    if (bins_[k] != 0) bins.set(std::to_string(bin_edge(k)), bins_[k]);
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::uint64_t min,
                                      std::uint64_t bin_width,
                                      std::size_t num_bins) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(min, bin_width, num_bins))
      .first->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::size_t MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, value] : other.gauges_) gauges_[name] = value;
  std::size_t conflicts = 0;
  for (const auto& [name, hist] : other.histograms_) {
    const auto [it, inserted] = histograms_.emplace(name, hist);
    if (!inserted && !it->second.merge(hist)) ++conflicts;
  }
  return conflicts;
}

void MetricsRegistry::write_json(JsonWriter& out) const {
  JsonWriter& counters = out.object("counters");
  for (const auto& [name, value] : counters_) counters.set(name, value);
  JsonWriter& gauges = out.object("gauges");
  for (const auto& [name, value] : gauges_) gauges.set(name, value);
  JsonWriter& hists = out.object("histograms");
  for (const auto& [name, hist] : histograms_)
    hist.write_json(hists.object(name));
}

bool MetricsRegistry::write_file(const std::string& path) const {
  JsonWriter out;
  write_json(out);
  return out.write_file(path);
}

}  // namespace rjf::obs
