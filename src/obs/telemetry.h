// Telemetry — the one-stop observability bundle examples and benches
// attach per run.
//
// Owns the obs::EventRing producers write into and bundles the three
// instruments its drain side fans out to (Telemetry is the ring's
// registered FabricSink consumer):
//   - TraceRecorder  : VITA-timestamped event ring -> Chrome trace / CSV
//   - MetricsRegistry: counters + fixed-bin histograms -> JSON
//   - SignalProbe    : pre/post waveform captures around trigger edges
// and derives the paper-facing metrics from the raw event stream as it
// arrives: trigger->RF reaction latency (the measured T_init + surgical
// delay), detector-edge->RF latency (adds FSM sequencing), detection
// inter-arrival times, jam duty cycle, settings-bus write latency, and
// per-stream host throughput (samples per wall-clock second).
//
// Attach through ReactiveJammer::attach_trace() (or
// UsrpN210::attach_ring(&telemetry.ring()) / DspCore::set_ring() at lower
// layers). Two drain modes (TelemetryConfig::drain_thread):
//   - inline (default): producers drain the ring at block/stream
//     boundaries on their own thread — no extra thread, and exports are
//     always up to date after a stream call returns.
//   - drain thread: a RingDrainThread consumes concurrently; call flush()
//     (or any export, which flushes first) after producers quiesce.
// Either way the record stream is identical, so traces and deterministic
// metrics are byte-for-byte the same in both modes. Detach before
// destroying the Telemetry object — producers keep only a raw pointer.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/event_ring.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/signal_probe.h"
#include "obs/trace_recorder.h"

namespace rjf::obs {

struct TelemetryConfig {
  std::size_t trace_capacity = 1 << 16;
  bool probe_enabled = true;
  ProbeConfig probe;
  /// Transport: ring capacity, emission level, strobe sampling.
  RingConfig ring;
  /// Consume from a background RingDrainThread instead of inline at block
  /// boundaries (for streaming runs where the producer thread must not pay
  /// even the drain cost).
  bool drain_thread = false;
  std::uint32_t drain_poll_us = 200;
};

class Telemetry final : public FabricSink {
 public:
  explicit Telemetry(const TelemetryConfig& config = {});

  /// The transport producers push into (ReactiveJammer/UsrpN210 wire this
  /// through the layers on attach).
  [[nodiscard]] EventRing& ring() noexcept { return ring_; }
  [[nodiscard]] const EventRing& ring() const noexcept { return ring_; }

  /// Dispatch every record still in the ring. Exports call this first; in
  /// drain-thread mode call it after producers quiesce to make readers
  /// (trace()/metrics()/probe()) consistent.
  void flush() { (void)ring_.drain(); }

  [[nodiscard]] TraceRecorder& trace() noexcept { return trace_; }
  [[nodiscard]] const TraceRecorder& trace() const noexcept { return trace_; }
  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] SignalProbe& probe() noexcept { return probe_; }
  [[nodiscard]] const SignalProbe& probe() const noexcept { return probe_; }

  /// Record the jamming personality active from `vita_ticks` on. Exported
  /// traces carry the full history as annotations, so every trace names the
  /// personality that produced it (JammingEventBuilder::describe() strings
  /// land here via ReactiveJammer). The trace record itself rides the ring
  /// like any other event, so it cannot race the drain thread.
  void set_personality(const std::string& description,
                       std::uint64_t vita_ticks);
  [[nodiscard]] const std::vector<TraceRecorder::Annotation>& personalities()
      const noexcept {
    return personalities_;
  }

  // FabricSink (the ring's drain side calls these) ---------------------------
  void on_event(EventKind kind, std::uint64_t vita_ticks,
                std::uint64_t value) override;
  void on_strobe(const FabricSignals& signals) override;

  /// RF-on-air ticks / streamed fabric ticks (0 when nothing streamed yet).
  [[nodiscard]] double jam_duty_cycle() const noexcept;

  // Exports (each flushes the ring first) ------------------------------------
  /// Chrome trace-event JSON with personality annotations (Perfetto).
  bool write_chrome_trace(const std::string& path);
  /// Metrics JSON; refreshes derived gauges (duty cycle, throughput) first.
  bool write_metrics_json(const std::string& path);
  bool write_probe_csv(const std::string& path) {
    flush();
    return probe_.write_csv(path);
  }

  /// Recompute derived gauges from the counters accumulated so far, plus
  /// the transport/drop accounting (obs.ring_dropped, trace.spans_truncated
  /// and friends) so lossy capture is visible in every metrics export.
  void refresh_gauges();

 private:
  TraceRecorder trace_;
  MetricsRegistry metrics_;
  SignalProbe probe_;
  bool probe_enabled_;

  std::vector<TraceRecorder::Annotation> personalities_;

  // Latency derivation state.
  bool armed_ = false;                  // detector edge seen, RF not yet up
  std::uint64_t armed_vita_ = 0;
  bool trigger_pending_ = false;        // jam trigger fired, RF not yet up
  std::uint64_t trigger_vita_ = 0;
  bool have_last_detection_ = false;
  std::uint64_t last_detection_vita_ = 0;
  bool jam_open_ = false;
  std::uint64_t jam_start_vita_ = 0;
  std::uint64_t last_vita_ = 0;
  std::deque<std::uint64_t> settings_issue_vitas_;
  bool stream_open_ = false;
  std::uint64_t stream_start_vita_ = 0;

  // Transport declared last so destruction stops the drain thread first,
  // then the ring, while the consumer instruments above still exist.
  EventRing ring_;
  std::optional<RingDrainThread> drainer_;
};

}  // namespace rjf::obs
