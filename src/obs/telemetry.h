// Telemetry — the one-stop fabric sink examples and benches attach per run.
//
// Bundles the three observability instruments behind a single FabricSink:
//   - TraceRecorder  : VITA-timestamped event ring -> Chrome trace / CSV
//   - MetricsRegistry: counters + fixed-bin histograms -> JSON
//   - SignalProbe    : pre/post waveform captures around trigger edges
// and derives the paper-facing metrics from the raw event stream as it
// arrives: trigger->RF reaction latency (the measured T_init + surgical
// delay), detector-edge->RF latency (adds FSM sequencing), detection
// inter-arrival times, jam duty cycle, settings-bus write latency, and
// per-stream host throughput (samples per wall-clock second).
//
// Attach through ReactiveJammer::attach_trace() (or UsrpN210::attach_sink()
// / DspCore::set_sink() at lower layers). Detach before destroying the
// Telemetry object — the producers keep only a raw pointer.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/signal_probe.h"
#include "obs/trace_recorder.h"

namespace rjf::obs {

struct TelemetryConfig {
  std::size_t trace_capacity = 1 << 16;
  bool probe_enabled = true;
  ProbeConfig probe;
};

class Telemetry final : public FabricSink {
 public:
  explicit Telemetry(const TelemetryConfig& config = {});

  [[nodiscard]] TraceRecorder& trace() noexcept { return trace_; }
  [[nodiscard]] const TraceRecorder& trace() const noexcept { return trace_; }
  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] SignalProbe& probe() noexcept { return probe_; }
  [[nodiscard]] const SignalProbe& probe() const noexcept { return probe_; }

  /// Record the jamming personality active from `vita_ticks` on. Exported
  /// traces carry the full history as annotations, so every trace names the
  /// personality that produced it (JammingEventBuilder::describe() strings
  /// land here via ReactiveJammer).
  void set_personality(const std::string& description,
                       std::uint64_t vita_ticks);
  [[nodiscard]] const std::vector<TraceRecorder::Annotation>& personalities()
      const noexcept {
    return personalities_;
  }

  // FabricSink --------------------------------------------------------------
  void on_event(EventKind kind, std::uint64_t vita_ticks,
                std::uint64_t value) override;
  void on_strobe(const FabricSignals& signals) override;

  /// RF-on-air ticks / streamed fabric ticks (0 when nothing streamed yet).
  [[nodiscard]] double jam_duty_cycle() const noexcept;

  // Exports -----------------------------------------------------------------
  /// Chrome trace-event JSON with personality annotations (Perfetto).
  bool write_chrome_trace(const std::string& path) const;
  /// Metrics JSON; refreshes derived gauges (duty cycle, throughput) first.
  bool write_metrics_json(const std::string& path);
  bool write_probe_csv(const std::string& path) const {
    return probe_.write_csv(path);
  }

  /// Recompute derived gauges from the counters accumulated so far.
  void refresh_gauges();

 private:
  TraceRecorder trace_;
  MetricsRegistry metrics_;
  SignalProbe probe_;
  bool probe_enabled_;

  std::vector<TraceRecorder::Annotation> personalities_;

  // Latency derivation state.
  bool armed_ = false;                  // detector edge seen, RF not yet up
  std::uint64_t armed_vita_ = 0;
  bool trigger_pending_ = false;        // jam trigger fired, RF not yet up
  std::uint64_t trigger_vita_ = 0;
  bool have_last_detection_ = false;
  std::uint64_t last_detection_vita_ = 0;
  bool jam_open_ = false;
  std::uint64_t jam_start_vita_ = 0;
  std::uint64_t last_vita_ = 0;
  std::deque<std::uint64_t> settings_issue_vitas_;
  bool stream_open_ = false;
  std::uint64_t stream_start_vita_ = 0;
  std::chrono::steady_clock::time_point stream_wall_start_{};
};

}  // namespace rjf::obs
