// EventRing — wait-free SPSC transport for always-on fabric telemetry.
//
// The original transport dispatched two virtual FabricSink calls per fabric
// tick straight into the consumer bundle; attaching telemetry also forced
// DspCore::run_block() off its straight-line fast loop, so tracing cost
// 5.35x and every large sweep ran blind. This ring decouples the producer
// side (the streaming thread: fabric core, settings bus, radio brackets,
// host facade) from the consumer fan-out (TraceRecorder / MetricsRegistry /
// SignalProbe behind a FabricSink):
//
//   - Producers append fixed-size 32-byte POD records with a plain store
//     followed by one release bump of the head index — wait-free, no locks,
//     no virtual dispatch, no allocation. A full ring drops the record and
//     counts the drop; the producer never blocks.
//   - The drain side replays records to the registered FabricSink in FIFO
//     order, either inline at block boundaries (default — same thread, so
//     the trace is identical to the old synchronous dispatch) or from a
//     RingDrainThread for streaming runs. Consumer-side draining takes a
//     mutex so an explicit flush and the drain thread serialise; producer
//     wait-freedom is untouched.
//
// Observability levels gate what producers even construct:
//   kOff      — ring attached but silent
//   kCounters — discrete events only (detector edges, jam bursts, settings
//               traffic, faults): everything the always-on counters need
//   kSpans    — + FSM stage transitions (span-class detail)
//   kProbes   — + per-strobe signal snapshots, decimated 1-in-N
// Compiling with -DRJF_OBS_MAX_LEVEL=N folds the gates for higher levels to
// constant false, so a counters-only build pays nothing for probe hooks.
//
// Strobe sampling is a deterministic 1-in-N countdown (pure function of the
// call sequence — no clocks, no RNG — so traces are bit-reproducible).
// Strobes carrying detector edges or a jam trigger bypass the decimation:
// the SignalProbe's trigger-centric captures survive any sampling period.
// Suppressed strobes and full-ring drops are both counted, so lossy capture
// is visible, never silent (obs.strobes_sampled_out / obs.ring_dropped in
// the metrics export).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/events.h"

#ifndef RJF_OBS_MAX_LEVEL
#define RJF_OBS_MAX_LEVEL 3
#endif

namespace rjf::obs {

/// What the producers are willing to construct. Runtime level is clamped by
/// the compile-time ceiling kCompiledObsLevel.
enum class ObsLevel : std::uint8_t {
  kOff = 0,
  kCounters = 1,
  kSpans = 2,
  kProbes = 3,
};

inline constexpr ObsLevel kCompiledObsLevel =
    static_cast<ObsLevel>(RJF_OBS_MAX_LEVEL);

/// One transport record. Events and strobe snapshots share the layout so
/// the ring stays an array of 32-byte PODs (two per cache line).
struct RingRecord {
  std::uint64_t vita_ticks = 0;
  std::uint64_t value = 0;   // event payload | strobe energy sum
  std::uint32_t metric = 0;  // strobe xcorr metric
  std::int16_t rx_i = 0;
  std::int16_t rx_q = 0;
  std::int16_t tx_i = 0;
  std::int16_t tx_q = 0;
  std::uint8_t type = 0;   // kRecordEvent | kRecordStrobe
  std::uint8_t kind = 0;   // EventKind (event) | FSM stage (strobe)
  std::uint8_t flags = 0;  // kStrobe* bits (strobe only)
  std::uint8_t pad = 0;
};
static_assert(sizeof(RingRecord) == 32, "two records per cache line");
static_assert(std::is_trivially_copyable_v<RingRecord>);

inline constexpr std::uint8_t kRecordEvent = 0;
inline constexpr std::uint8_t kRecordStrobe = 1;

inline constexpr std::uint8_t kStrobeXcorrTrigger = 1u << 0;
inline constexpr std::uint8_t kStrobeEnergyHigh = 1u << 1;
inline constexpr std::uint8_t kStrobeEnergyLow = 1u << 2;
inline constexpr std::uint8_t kStrobeJamTrigger = 1u << 3;
inline constexpr std::uint8_t kStrobeRfActive = 1u << 4;

struct RingConfig {
  /// Record slots; rounded up to a power of two, minimum 16.
  std::size_t capacity = std::size_t{1} << 16;
  /// Runtime emission level (clamped to kCompiledObsLevel).
  ObsLevel level = ObsLevel::kProbes;
  /// Emit 1 of every N idle strobes (detector-edge/jam strobes always
  /// pass). 1 = every strobe, like the pre-ring transport.
  std::uint32_t strobe_sample_period = 16;
};

class EventRing {
 public:
  explicit EventRing(const RingConfig& config = {});
  EventRing(const EventRing&) = delete;  // producers hold raw pointers
  EventRing& operator=(const EventRing&) = delete;

  // Producer side (single thread, wait-free) ---------------------------------

  /// Append a discrete event. Returns false (and counts the drop) when the
  /// ring is full or the level is kOff.
  bool push_event(EventKind kind, std::uint64_t vita_ticks,
                  std::uint64_t value) noexcept;

  /// Span-class detail gate (FSM stage transitions).
  [[nodiscard]] bool want_spans() const noexcept {
    if constexpr (kCompiledObsLevel < ObsLevel::kSpans)
      return false;
    else
      return level_ >= ObsLevel::kSpans;
  }

  /// Probe-class detail gate (per-strobe snapshots).
  [[nodiscard]] bool want_probes() const noexcept {
    if constexpr (kCompiledObsLevel < ObsLevel::kProbes)
      return false;
    else
      return level_ >= ObsLevel::kProbes;
  }

  /// Sampling gate, called once per rx strobe before building the snapshot.
  /// `interesting` strobes (detector edge / jam trigger) bypass decimation
  /// without perturbing the countdown, so the 1-in-N phase stays a pure
  /// function of the strobe sequence. Counts suppressed strobes.
  // rjf: realtime
  [[nodiscard]] bool strobe_gate(bool interesting) noexcept {
    if (!want_probes()) return false;
    if (strobe_countdown_ == 0) {
      strobe_countdown_ = period_ - 1;
      return true;
    }
    --strobe_countdown_;
    if (interesting) return true;
    relaxed_inc(sampled_out_);
    return false;
  }

  /// Append a strobe snapshot (call only when strobe_gate() passed).
  bool push_strobe(const FabricSignals& signals) noexcept;

  // Consumer side ------------------------------------------------------------

  /// Register the fan-out sink. `inline_drain` selects the block-boundary
  /// drain mode: producers call drain_if_inline() after each block so the
  /// same thread replays the records synchronously. With it false, a
  /// RingDrainThread (or explicit drain() calls) consumes instead.
  void set_consumer(FabricSink* sink, bool inline_drain) noexcept {
    consumer_ = sink;
    inline_drain_ = inline_drain;
  }
  [[nodiscard]] FabricSink* consumer() const noexcept { return consumer_; }

  /// Drain every pending record into the registered consumer (FIFO order).
  /// Returns the number of records dispatched. Thread-safe against
  /// concurrent drain()/drain_into() calls; NOT against two producers.
  std::size_t drain();

  /// Drain into an explicit sink (testing / ad-hoc consumers).
  std::size_t drain_into(FabricSink& sink);

  /// Block-boundary hook for producers: drains only in inline mode.
  void drain_if_inline() {
    if (inline_drain_ && consumer_ != nullptr) (void)drain();
  }

  [[nodiscard]] bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  // Accounting ---------------------------------------------------------------
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  [[nodiscard]] ObsLevel level() const noexcept { return level_; }
  [[nodiscard]] std::uint32_t strobe_sample_period() const noexcept {
    return period_;
  }
  /// Records accepted into the ring (events + strobes).
  [[nodiscard]] std::uint64_t pushed() const noexcept {
    return pushed_.load(std::memory_order_relaxed);
  }
  /// Records rejected because the ring was full (lossy capture, visible).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Idle strobes suppressed by 1-in-N decimation.
  [[nodiscard]] std::uint64_t sampled_out() const noexcept {
    return sampled_out_.load(std::memory_order_relaxed);
  }

 private:
  bool try_push(const RingRecord& record) noexcept;
  static void dispatch(const RingRecord& record, FabricSink& sink);

  /// Single-writer counter bump without a read-modify-write (the lock-free
  /// fetch_add is overkill when only one thread ever writes).
  static void relaxed_inc(std::atomic<std::uint64_t>& counter) noexcept {
    counter.store(counter.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
  }

  std::vector<RingRecord> ring_;
  std::size_t mask_ = 0;
  ObsLevel level_;
  std::uint32_t period_;

  // Producer-local state (never read by the consumer).
  std::uint32_t strobe_countdown_ = 0;
  std::uint64_t cached_tail_ = 0;

  // SPSC indices: producer publishes with a release store of head_; the
  // consumer acquires head_ before reading slots and releases tail_ after
  // freeing them. Separate cache lines keep the bumps from false sharing.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};

  // Accounting: each written by exactly one side, read relaxed by anyone.
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> sampled_out_{0};

  FabricSink* consumer_ = nullptr;
  bool inline_drain_ = true;
  std::mutex drain_mu_;  // serialises flush vs. drain thread
};

/// Consumer thread for streaming runs: polls the ring and drains into its
/// registered consumer until stopped; stop() (and the destructor) joins and
/// performs a final drain so no record is lost. Because drains preserve
/// FIFO order and the record stream is deterministic, a run consumed by
/// this thread exports byte-identical traces to the same run drained
/// inline.
class RingDrainThread {
 public:
  explicit RingDrainThread(EventRing& ring, std::uint32_t poll_us = 200);
  ~RingDrainThread();
  RingDrainThread(const RingDrainThread&) = delete;
  RingDrainThread& operator=(const RingDrainThread&) = delete;

  void stop();

 private:
  EventRing& ring_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace rjf::obs
