#include "obs/telemetry.h"

namespace rjf::obs {

namespace {

// Histogram binnings, all in fabric ticks (10 ns). Chosen so the paper's
// latency arithmetic lands mid-range: T_init = 8 ticks, T_en <= 128 ticks,
// T_xcorr = 256 ticks, settings bus ~40 ticks/write.
constexpr std::uint64_t kLatencyBins = 64;        // width 1: 0 .. 640 ns
constexpr std::uint64_t kDetectBins = 512;        // width 1: 0 .. 5.12 us
constexpr std::uint64_t kSettingsWidth = 10;      // 100 ns per bin
constexpr std::uint64_t kSettingsBins = 128;      // 0 .. 12.8 us
constexpr std::uint64_t kInterarrivalWidth = 10000;  // 100 us per bin
constexpr std::uint64_t kInterarrivalBins = 250;     // 0 .. 25 ms
constexpr std::uint64_t kRecoveryWidth = 64;         // 640 ns per bin
constexpr std::uint64_t kRecoveryBins = 256;         // 0 .. 163.84 us

}  // namespace

Telemetry::Telemetry(const TelemetryConfig& config)
    : trace_(config.trace_capacity),
      probe_(config.probe),
      probe_enabled_(config.probe_enabled),
      ring_(config.ring) {
  ring_.set_consumer(this, /*inline_drain=*/!config.drain_thread);
  if (config.drain_thread) drainer_.emplace(ring_, config.drain_poll_us);
  // Pre-create the derived histograms so exports are shaped consistently
  // even before the first event arrives.
  metrics_.histogram("trigger_to_rf_ticks", 0, 1, kLatencyBins);
  metrics_.histogram("detect_to_rf_ticks", 0, 1, kDetectBins);
  metrics_.histogram("detection_interarrival_ticks", 0, kInterarrivalWidth,
                     kInterarrivalBins);
  metrics_.histogram("settings_bus_latency_ticks", 0, kSettingsWidth,
                     kSettingsBins);
  metrics_.histogram("fault_recovery_ticks", 0, kRecoveryWidth, kRecoveryBins);
}

void Telemetry::set_personality(const std::string& description,
                                std::uint64_t vita_ticks) {
  personalities_.emplace_back(vita_ticks, description);
  // The trace record and counter ride the ring so they serialise with the
  // fabric event stream (and with the drain thread, when one is running).
  ring_.push_event(EventKind::kPersonality, vita_ticks,
                   personalities_.size() - 1);
  ring_.drain_if_inline();
}

void Telemetry::on_event(EventKind kind, std::uint64_t vita_ticks,
                         std::uint64_t value) {
  if (kind == EventKind::kStreamWall) {
    // Producer-measured wall time: feeds the throughput gauge only. Never
    // traced or counted — its value is nondeterministic, and keeping it out
    // of the trace keeps trace exports byte-reproducible across runs.
    metrics_.add("stream_wall_ns", value);
    return;
  }
  trace_.record(kind, vita_ticks, value);
  metrics_.add(std::string("events.") + event_kind_name(kind), 1);
  if (vita_ticks > last_vita_) last_vita_ = vita_ticks;

  switch (kind) {
    case EventKind::kXcorrTrigger:
    case EventKind::kEnergyRise:
    case EventKind::kEnergyFall: {
      if (have_last_detection_)
        metrics_
            .histogram("detection_interarrival_ticks", 0, kInterarrivalWidth,
                       kInterarrivalBins)
            .record(vita_ticks - last_detection_vita_);
      have_last_detection_ = true;
      last_detection_vita_ = vita_ticks;
      // Arm the detector-edge->RF measurement on the first RISING edge of a
      // potential trigger sequence (FSM stage sequencing included). Fall
      // edges mark end-of-packet: arming on them would measure the idle gap
      // between the previous burst's tail and the next frame instead of the
      // detection chain.
      if (kind != EventKind::kEnergyFall && !armed_ && !trigger_pending_ &&
          !jam_open_) {
        armed_ = true;
        armed_vita_ = vita_ticks;
      }
      break;
    }
    case EventKind::kJamTrigger:
      trigger_pending_ = true;
      trigger_vita_ = vita_ticks;
      break;
    case EventKind::kJamStart:
      jam_open_ = true;
      jam_start_vita_ = vita_ticks;
      if (trigger_pending_) {
        metrics_.histogram("trigger_to_rf_ticks", 0, 1, kLatencyBins)
            .record(vita_ticks - trigger_vita_);
        trigger_pending_ = false;
      }
      if (armed_) {
        metrics_.histogram("detect_to_rf_ticks", 0, 1, kDetectBins)
            .record(vita_ticks - armed_vita_);
        armed_ = false;
      }
      break;
    case EventKind::kJamEnd:
      if (jam_open_) {
        metrics_.add("jam_ticks_on_air", vita_ticks - jam_start_vita_);
        jam_open_ = false;
      }
      break;
    case EventKind::kSettingsWriteIssued:
      settings_issue_vitas_.push_back(vita_ticks);
      break;
    case EventKind::kSettingsWriteApplied:
      // The bus is FIFO, so issue/apply events pair in order.
      if (!settings_issue_vitas_.empty()) {
        metrics_
            .histogram("settings_bus_latency_ticks", 0, kSettingsWidth,
                       kSettingsBins)
            .record(vita_ticks - settings_issue_vitas_.front());
        settings_issue_vitas_.pop_front();
      }
      break;
    case EventKind::kStreamStart:
      stream_open_ = true;
      stream_start_vita_ = vita_ticks;
      break;
    case EventKind::kStreamEnd:
      if (stream_open_) {
        metrics_.add("stream_samples", value);
        metrics_.add("stream_fabric_ticks", vita_ticks - stream_start_vita_);
        stream_open_ = false;
      }
      break;
    case EventKind::kSettingsWriteDropped:
      // A dropped write's issue never pairs with an apply; pop it so the
      // FIFO pairing stays aligned for the writes queued behind it (the
      // retry re-emits kSettingsWriteIssued).
      if (!settings_issue_vitas_.empty()) settings_issue_vitas_.pop_front();
      metrics_.add("fault.bus_writes_dropped", 1);
      break;
    case EventKind::kSettingsWriteRetried:
      metrics_.add("fault.bus_writes_retried", 1);
      break;
    case EventKind::kSettingsWriteAbandoned:
      metrics_.add("fault.bus_writes_abandoned", 1);
      break;
    case EventKind::kOverflowGap:
      metrics_.add("fault.overflow_samples_lost", value);
      break;
    case EventKind::kDetectorFlush:
      // value = fabric ticks the stream skipped while the detector state
      // was flushed: the blind window a fault cost the jammer.
      metrics_.histogram("fault_recovery_ticks", 0, kRecoveryWidth,
                         kRecoveryBins)
          .record(value);
      // A flush invalidates any half-armed latency measurement.
      armed_ = false;
      trigger_pending_ = false;
      break;
    case EventKind::kFaultInjected:
      break;
    case EventKind::kPersonality:
      metrics_.add("personality_changes", 1);
      break;
    case EventKind::kFsmStage:
    case EventKind::kRetune:
    case EventKind::kGainChange:
    case EventKind::kStreamWall:
      break;
  }
}

void Telemetry::on_strobe(const FabricSignals& signals) {
  if (probe_enabled_) probe_.on_strobe(signals);
}

double Telemetry::jam_duty_cycle() const noexcept {
  const std::uint64_t streamed =
      metrics_.counter_value("stream_fabric_ticks");
  if (streamed == 0) return 0.0;
  std::uint64_t on_air = metrics_.counter_value("jam_ticks_on_air");
  // A burst still open at readout counts up to the last event seen.
  if (jam_open_ && last_vita_ > jam_start_vita_)
    on_air += last_vita_ - jam_start_vita_;
  return static_cast<double>(on_air) / static_cast<double>(streamed);
}

void Telemetry::refresh_gauges() {
  metrics_.set_gauge("jam_duty_cycle", jam_duty_cycle());
  const std::uint64_t wall_ns = metrics_.counter_value("stream_wall_ns");
  if (wall_ns > 0)
    metrics_.set_gauge("host_throughput_msps",
                       static_cast<double>(
                           metrics_.counter_value("stream_samples")) * 1e3 /
                           static_cast<double>(wall_ns));
  const Histogram* trig = metrics_.find_histogram("trigger_to_rf_ticks");
  if (trig != nullptr && trig->count() > 0)
    metrics_.set_gauge("trigger_to_rf_mean_ns", trig->mean() * kTickNs);
  const Histogram* det = metrics_.find_histogram("detect_to_rf_ticks");
  if (det != nullptr && det->count() > 0)
    metrics_.set_gauge("detect_to_rf_mean_ns", det->mean() * kTickNs);
  metrics_.counter("trace_events_recorded") = trace_.recorded();
  metrics_.counter("trace_events_overwritten") = trace_.overwritten();
  metrics_.counter("trace.spans_truncated") = trace_.spans_truncated();
  metrics_.counter("probe_captures") = probe_.captures().size();
  // Transport accounting: how much the ring accepted, dropped on full, and
  // decimated away — lossy capture shows up here, never silently.
  metrics_.counter("obs.ring_records") = ring_.pushed();
  metrics_.counter("obs.ring_dropped") = ring_.dropped();
  metrics_.counter("obs.strobes_sampled_out") = ring_.sampled_out();
}

bool Telemetry::write_chrome_trace(const std::string& path) {
  flush();
  return trace_.write_chrome_trace(path, personalities_);
}

bool Telemetry::write_metrics_json(const std::string& path) {
  flush();
  refresh_gauges();
  return metrics_.write_file(path);
}

}  // namespace rjf::obs
