#include "channel/awgn.h"

#include "dsp/db.h"
#include "dsp/noise.h"

namespace rjf::channel {

dsp::cvec awgn_link(std::span<const dsp::cfloat> signal, double snr_db,
                    double noise_power, std::uint64_t seed) {
  dsp::cvec out(signal.begin(), signal.end());
  const double target_signal_power =
      noise_power * dsp::ratio_from_db(snr_db);
  dsp::set_mean_power(std::span<dsp::cfloat>(out), target_signal_power);
  dsp::NoiseSource noise(noise_power, seed);
  noise.add_to(out);
  return out;
}

dsp::cvec terminated_input(std::size_t length, double noise_power,
                           std::uint64_t seed) {
  return dsp::make_wgn(length, noise_power, seed);
}

}  // namespace rjf::channel
