// The paper's wired 5-port interconnect test network (Fig. 9 / Table 1).
//
// Port 1: Linksys WRT54GL access point (behind a 20 dB attenuator)
// Port 2: wireless client            (behind a 20 dB attenuator)
// Port 3: oscilloscope tap
// Port 4: jammer transmitter (plus a variable attenuator for SIR sweeps)
// Port 5: jammer receiver
//
// The insertion-loss matrix is the paper's VNA-measured Table 1, so every
// SIR operating point in Figs. 10-11 can be reproduced exactly. The network
// is linear: the waveform arriving at a port is the loss-weighted
// superposition of all other ports' transmissions plus receiver noise.
#pragma once

#include <cstdint>
#include <vector>

#include "dsp/types.h"

namespace rjf::channel {

inline constexpr int kPortAp = 1;
inline constexpr int kPortClient = 2;
inline constexpr int kPortScope = 3;
inline constexpr int kPortJammerTx = 4;
inline constexpr int kPortJammerRx = 5;

class FivePortNetwork {
 public:
  FivePortNetwork();

  /// Insertion loss from `from` to `to` in dB (positive number, e.g. 51.0).
  /// Includes the variable attenuator when `from` or `to` is port 4.
  /// Ports are 1-based; the 4<->5 path is isolated (returns +inf dB).
  [[nodiscard]] double loss_db(int from, int to) const;

  /// Extra attenuation inserted in series with port 4 (the jammer TX path).
  void set_variable_attenuation_db(double db) noexcept { var_atten_db_ = db; }
  [[nodiscard]] double variable_attenuation_db() const noexcept {
    return var_atten_db_;
  }

  /// Amplitude gain (not dB) of the from->to path.
  [[nodiscard]] float path_gain(int from, int to) const;

  struct Contribution {
    int port;                            // injecting port
    std::span<const dsp::cfloat> tx;     // waveform at that port
    std::size_t offset = 0;              // sample offset into the rx window
  };

  /// Superimpose all contributions as seen at `dst` over `length` samples,
  /// then add complex AWGN of power `noise_power`.
  [[nodiscard]] dsp::cvec receive(int dst, std::span<const Contribution> sources,
                                  std::size_t length, double noise_power,
                                  std::uint64_t noise_seed) const;

 private:
  // Symmetric loss matrix indexed [from-1][to-1]; 0 on the diagonal and on
  // the unmeasured 4<->5 path (treated as isolated).
  double loss_[5][5];
  double var_atten_db_ = 0.0;
};

}  // namespace rjf::channel
