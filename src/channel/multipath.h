// Multipath fading channel — a tapped-delay-line with Rayleigh-distributed
// complex taps and exponential power-delay profile. The paper's testbed is
// deliberately wired ("to isolate environmental effects"), but its
// conclusion claims operation "under various channel conditions"; this
// model lets detection experiments leave the wire.
#pragma once

#include <cstdint>
#include <vector>

#include "dsp/types.h"

namespace rjf::channel {

struct MultipathProfile {
  std::size_t num_taps = 4;
  double tap_spacing_s = 50e-9;    // ~15 m excess path per tap
  double decay_db_per_tap = 3.0;   // exponential power-delay profile
  double sample_rate_hz = 25e6;
};

/// A static (block-fading) multipath realisation: taps are drawn once per
/// instance from the profile, so a frame sees one coherent channel — the
/// regime of the paper's indoor, low-mobility scenarios.
class MultipathChannel {
 public:
  MultipathChannel(const MultipathProfile& profile, std::uint64_t seed);

  /// Convolve the input with the tap line. Output has the input's length;
  /// total tap power is normalised to 1 so mean power is preserved in
  /// expectation (a given realisation still fades up or down).
  [[nodiscard]] dsp::cvec apply(std::span<const dsp::cfloat> in) const;

  [[nodiscard]] const std::vector<dsp::cfloat>& taps() const noexcept {
    return taps_;
  }
  /// |h|^2 summed — the realisation's actual gain (fading depth).
  [[nodiscard]] double realised_gain() const noexcept;

 private:
  std::vector<dsp::cfloat> taps_;   // one per delay bin, many zero
};

}  // namespace rjf::channel
