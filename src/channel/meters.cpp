#include "channel/meters.h"

#include "dsp/db.h"

namespace rjf::channel {

double sir_db(double signal_power, double interference_power) {
  if (interference_power <= 0.0) return 300.0;  // effectively no interference
  return dsp::db_from_ratio(signal_power / interference_power);
}

double sir_at_port_db(double signal_tx_power, double signal_path_loss_db,
                      double jammer_tx_power, double jammer_path_loss_db) {
  const double s = signal_tx_power * dsp::ratio_from_db(-signal_path_loss_db);
  const double j = jammer_tx_power * dsp::ratio_from_db(-jammer_path_loss_db);
  return sir_db(s, j);
}

double active_power(std::span<const dsp::cfloat> x, std::span<const bool> active) {
  double acc = 0.0;
  std::size_t count = 0;
  const std::size_t n = std::min(x.size(), active.size());
  for (std::size_t k = 0; k < n; ++k) {
    if (!active[k]) continue;
    acc += static_cast<double>(std::norm(x[k]));
    ++count;
  }
  return count == 0 ? 0.0 : acc / static_cast<double>(count);
}

}  // namespace rjf::channel
