#include "channel/five_port.h"

#include <limits>
#include <stdexcept>

#include "dsp/db.h"
#include "dsp/noise.h"

namespace rjf::channel {
namespace {

// Table 1 of the paper: measured insertion loss (dB) at the network ports.
// Row = input port, column = output port. The 4<->5 entries were not
// measured (the jammer's own TX->RX coupling is below the VNA floor).
constexpr double kTable1[5][5] = {
    //    1      2      3      4      5
    {0.0, 51.0, 25.2, 38.4, 39.3},  // from 1
    {51.0, 0.0, 31.7, 32.0, 32.8},  // from 2
    {25.2, 31.7, 0.0, 19.1, 19.9},  // from 3
    {38.4, 32.0, 19.1, 0.0, 0.0},   // from 4
    {39.2, 32.8, 19.8, 0.0, 0.0},   // from 5
};

}  // namespace

FivePortNetwork::FivePortNetwork() {
  for (int r = 0; r < 5; ++r)
    for (int c = 0; c < 5; ++c) loss_[r][c] = kTable1[r][c];
}

double FivePortNetwork::loss_db(int from, int to) const {
  if (from < 1 || from > 5 || to < 1 || to > 5)
    throw std::out_of_range("FivePortNetwork: ports are 1..5");
  if (from == to) return 0.0;
  const double base = loss_[from - 1][to - 1];
  if (base == 0.0) return std::numeric_limits<double>::infinity();  // isolated
  const bool via_jammer_tx = (from == kPortJammerTx || to == kPortJammerTx);
  return base + (via_jammer_tx ? var_atten_db_ : 0.0);
}

float FivePortNetwork::path_gain(int from, int to) const {
  const double db = loss_db(from, to);
  if (!std::isfinite(db)) return 0.0f;
  return static_cast<float>(dsp::amplitude_from_db(-db));
}

dsp::cvec FivePortNetwork::receive(int dst,
                                   std::span<const Contribution> sources,
                                   std::size_t length, double noise_power,
                                   std::uint64_t noise_seed) const {
  dsp::cvec out(length, dsp::cfloat{});
  for (const auto& src : sources) {
    if (src.port == dst) continue;
    const float g = path_gain(src.port, dst);
    if (g == 0.0f) continue;
    for (std::size_t k = 0; k < src.tx.size(); ++k) {
      const std::size_t at = src.offset + k;
      if (at >= length) break;
      out[at] += src.tx[k] * g;
    }
  }
  if (noise_power > 0.0) {
    dsp::NoiseSource noise(noise_power, noise_seed);
    noise.add_to(out);
  }
  return out;
}

}  // namespace rjf::channel
